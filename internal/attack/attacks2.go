package attack

import (
	"bytes"
	"fmt"

	"fidelius/internal/cpu"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/mmu"
	"fidelius/internal/xen"
)

// RegisterTheft inspects the CPU register file during a VMEXIT, where SEV
// (without -ES) leaves guest registers in plaintext (Section 2.2).
type RegisterTheft struct{}

// Name implements Attack.
func (RegisterTheft) Name() string { return "register-theft" }

// Description implements Attack.
func (RegisterTheft) Description() string {
	return "read guest general-purpose registers at VMEXIT (§2.2)"
}

// Run implements Attack.
func (a RegisterTheft) Run(p *Platform) Outcome {
	const marker = 0x5EC12E75EC12E75
	var observed uint64
	prev := p.X.Interpose
	p.X.Interpose = &exitSnooper{Interposer: prev, fn: func() {
		observed = p.X.M.CPU.Regs[6]
	}}
	defer func() { p.X.Interpose = prev }()
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		g.Regs[6] = marker
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	ok := observed == marker
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("guest register visible at exit: %v", ok),
	}
}

// exitSnooper wraps an interposer, running fn after the exit boundary —
// i.e. at the point ordinary hypervisor handler code executes.
type exitSnooper struct {
	xen.Interposer
	fn func()
}

func (s *exitSnooper) OnVMExit(d *xen.Domain, pa hw.PhysAddr) error {
	err := s.Interposer.OnVMExit(d, pa)
	s.fn()
	return err
}

// VMCBControlTamper rewrites the VMCB's NPT root during exit handling,
// the canonical VMCB integrity attack of Section 2.2.
type VMCBControlTamper struct{}

// Name implements Attack.
func (VMCBControlTamper) Name() string { return "vmcb-tamper" }

// Description implements Attack.
func (VMCBControlTamper) Description() string {
	return "rewrite VMCB control fields (NPT root) between exit and entry (§2.2)"
}

// Run implements Attack.
func (a VMCBControlTamper) Run(p *Platform) Outcome {
	evilRoot := uint64(p.Conspirator.NPT.Root.Addr())
	prev := p.X.Interpose
	p.X.Interpose = &vmcbTamperer{Interposer: prev, x: p.X, evil: evilRoot}
	defer func() { p.X.Interpose = prev }()
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	err := p.X.Run(p.Victim)
	if err != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("tamper detected: %v", err),
		}
	}
	// Undetected: the forged control field reached VMRUN.
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
		Detail: "forged NPT root accepted at VMRUN",
	}
}

type vmcbTamperer struct {
	xen.Interposer
	x    *xen.Xen
	evil uint64
}

func (t *vmcbTamperer) OnVMExit(d *xen.Domain, pa hw.PhysAddr) error {
	if err := t.Interposer.OnVMExit(d, pa); err != nil {
		return err
	}
	v, err := cpu.LoadVMCB(t.x.M.Ctl, pa)
	if err != nil {
		return err
	}
	v.NPTRoot = t.evil
	return cpu.StoreVMCB(t.x.M.Ctl, pa, v)
}

// DisableWP executes the MOV CR0 stub to clear write protection, then
// rewrites a page-table entry — "disable SEV protection completely"
// (Sections 2.2 and 6.2).
type DisableWP struct{}

// Name implements Attack.
func (DisableWP) Name() string { return "disable-wp" }

// Description implements Attack.
func (DisableWP) Description() string {
	return "clear CR0.WP via the privileged stub, then rewrite protected structures (§6.2)"
}

// Run implements Attack.
func (a DisableWP) Run(p *Platform) Outcome {
	c := p.X.M.CPU
	savedCR0 := c.CR0
	execErr := p.X.M.ExecStub(p.X.M.Stubs.MovCR0, savedCR0&^cpu.CR0WP)
	defer func() {
		c.TrustedContext = true
		c.CR0 = savedCR0
		c.TrustedContext = false
	}()
	if execErr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("WP clear rejected: %v", execErr),
		}
	}
	// With WP off, rewrite the victim's NPT to point its secret page at
	// a hypervisor-controlled frame.
	slot, err := p.X.NPTLeafSlot(p.Victim, p.SecretGFN<<hw.PageShift)
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	if werr := c.Write64(uint64(slot), uint64(mmu.MakePTE(1, mmu.FlagP|mmu.FlagW))); werr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("NPT write still blocked: %v", werr),
		}
	}
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
		Detail: "WP cleared and protected structure rewritten",
	}
}

// CR3Pivot switches to an attacker-built page table that maps everything
// writable, bypassing all page-level protection (Table 2's MOV CR3 row).
type CR3Pivot struct{}

// Name implements Attack.
func (CR3Pivot) Name() string { return "cr3-pivot" }

// Description implements Attack.
func (CR3Pivot) Description() string {
	return "switch CR3 to an attacker page table mapping everything writable (§4.1.2)"
}

// Run implements Attack.
func (a CR3Pivot) Run(p *Platform) Outcome {
	c := p.X.M.CPU
	// Build the evil identity table in free frames (plain data pages —
	// writable in any configuration).
	evil, err := buildEvilSpace(p.X)
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	savedCR3 := c.CR3
	restore := func() {
		c.TrustedContext = true
		c.CR3 = savedCR3
		c.TLB.FlushAll()
		c.TrustedContext = false
	}
	defer restore()
	execErr := p.X.M.ExecStub(p.X.M.Stubs.MovCR3, uint64(evil.Root.Addr()))
	if execErr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("CR3 pivot rejected: %v", execErr),
		}
	}
	pivoted := c.CR3 == uint64(evil.Root.Addr())
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: pivoted,
		Detail: fmt.Sprintf("running on attacker page table: %v", pivoted),
	}
}

// buildEvilSpace constructs an identity map with everything writable and
// executable, the attacker's dream address space.
func buildEvilSpace(x *xen.Xen) (*mmu.Space, error) {
	root, err := x.M.Alloc.Alloc(xen.UseXenData, 0)
	if err != nil {
		return nil, err
	}
	var zero [hw.PageSize]byte
	if err := x.M.Ctl.Mem.WriteRaw(root.Addr(), zero[:]); err != nil {
		return nil, err
	}
	x.M.Ctl.Cache.Invalidate(root.Addr(), hw.PageSize)
	sp := &mmu.Space{Ctl: x.M.Ctl, Root: root}
	ad := evilAlloc{x}
	for pfn := hw.PFN(0); pfn < hw.PFN(x.M.Alloc.Total()); pfn++ {
		if err := sp.Map(ad, uint64(pfn.Addr()), mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW)); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

type evilAlloc struct{ x *xen.Xen }

func (e evilAlloc) AllocFrame() (hw.PFN, error) {
	return e.x.M.Alloc.Alloc(xen.UseXenData, 0)
}

// HiddenGadget plants a VMRUN instruction in a writable data page and
// jumps to it, first clearing EFER.NXE to defeat DEP (Section 4.1.2's
// unaligned/unsanctioned instruction threat).
type HiddenGadget struct{}

// Name implements Attack.
func (HiddenGadget) Name() string { return "hidden-gadget" }

// Description implements Attack.
func (HiddenGadget) Description() string {
	return "plant and execute an unsanctioned VMRUN after disabling NX (§4.1.2)"
}

// Run implements Attack.
func (a HiddenGadget) Run(p *Platform) Outcome {
	c := p.X.M.CPU
	frame, err := p.X.M.Alloc.Alloc(xen.UseXenData, 0)
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	gadget := isa.Inst{Op: isa.OpVmrun, Reg: 0}.Encode(nil)
	gadget = isa.Inst{Op: isa.OpHlt}.Encode(gadget)
	if err := c.WriteVA(uint64(frame.Addr()), gadget); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	savedEFER := c.EFER
	defer func() {
		c.TrustedContext = true
		c.EFER = savedEFER
		c.TrustedContext = false
	}()
	// Step 1: clear NXE so the data page becomes executable.
	c.Regs[0] = cpu.MSREFER
	c.Regs[1] = savedEFER &^ cpu.EFERNXE
	if err := c.Run(p.X.M.Stubs.Wrmsr, 4); err != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("NXE clear rejected: %v", err),
		}
	}
	// Step 2: execute the gadget with the victim's VMCB.
	c.TLB.FlushAll()
	c.Regs[0] = uint64(p.Victim.VMCBPA())
	execErr := c.Run(uint64(frame.Addr()), 8)
	if execErr != nil {
		if _, isPF := execErr.(*mmu.PageFault); isPF {
			return Outcome{
				Name: a.Name(), Config: p.ConfigName(),
				Detail: fmt.Sprintf("gadget blocked: %v", execErr),
			}
		}
	}
	// Reaching the world switch (even if it then errors) means the
	// unsanctioned VMRUN executed.
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
		Detail: "unsanctioned VMRUN executed from a data page",
	}
}

// IagoCPUID forges the CPUID result the hypervisor returns to the guest
// (Section 6.2, "Other issues").
type IagoCPUID struct{}

// Name implements Attack.
func (IagoCPUID) Name() string { return "iago-cpuid" }

// Description implements Attack.
func (IagoCPUID) Description() string {
	return "return forged CPUID values to the guest (§6.2)"
}

// Run implements Attack.
func (a IagoCPUID) Run(p *Platform) Outcome {
	prev := p.X.Interpose
	p.X.Interpose = &iagoForger{Interposer: prev, x: p.X}
	defer func() { p.X.Interpose = prev }()
	var got [4]uint64
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		got = g.CPUID(0)
		return nil
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("forgery detected: %v", err),
		}
	}
	forged := got[0] == 0xBADC0DE
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: forged,
		Detail: fmt.Sprintf("guest received forged CPUID: %v", forged),
	}
}

type iagoForger struct {
	xen.Interposer
	x       *xen.Xen
	lastCPU bool
}

func (f *iagoForger) OnVMExit(d *xen.Domain, pa hw.PhysAddr) error {
	if err := f.Interposer.OnVMExit(d, pa); err != nil {
		return err
	}
	v, err := cpu.LoadVMCB(f.x.M.Ctl, pa)
	if err != nil {
		return err
	}
	f.lastCPU = v.ExitCode == cpu.ExitCPUID
	return nil
}

func (f *iagoForger) PreVMRun(d *xen.Domain, pa hw.PhysAddr) error {
	if f.lastCPU {
		v, err := cpu.LoadVMCB(f.x.M.Ctl, pa)
		if err != nil {
			return err
		}
		v.Regs[0] = 0xBADC0DE
		if err := cpu.StoreVMCB(f.x.M.Ctl, pa, v); err != nil {
			return err
		}
	}
	return f.Interposer.PreVMRun(d, pa)
}

// IODataTheft is the curious driver domain: it records everything moving
// through the PV block path and inspects the physical disk (Section 6.2,
// "I/O data stealing and tampering").
type IODataTheft struct{}

// Name implements Attack.
func (IODataTheft) Name() string { return "io-data-theft" }

// Description implements Attack.
func (IODataTheft) Description() string {
	return "driver domain snoops the PV block path and the disk (§6.2)"
}

// Run implements Attack.
func (a IODataTheft) Run(p *Platform) Outcome {
	inRing := bytes.Contains(p.Backend.Snoop, p.Secret[:16])
	onDisk := bytes.Contains(p.Disk.Snapshot(), p.Secret[:16])
	ok := inRing || onDisk
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("secret visible in ring: %v, on disk: %v", inRing, onDisk),
	}
}

// CodePatch makes a hypervisor code page writable by editing the host
// page table, then patches it (the write-forbidding policy of §5.3).
type CodePatch struct{}

// Name implements Attack.
func (CodePatch) Name() string { return "code-patch" }

// Description implements Attack.
func (CodePatch) Description() string {
	return "remap a hypervisor code page writable and patch it (§5.3)"
}

// Run implements Attack.
func (a CodePatch) Run(p *Platform) Outcome {
	c := p.X.M.CPU
	codeVA := p.X.M.Stubs.Base
	slot, err := p.X.M.HostPT.LeafSlot(codeVA)
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	writable := mmu.MakePTE(hw.PhysAddr(codeVA).Frame(), mmu.FlagP|mmu.FlagW)
	if werr := c.Write64(uint64(slot), uint64(writable)); werr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("PTE rewrite blocked: %v", werr),
		}
	}
	c.TLB.FlushAll()
	if werr := c.WriteVA(codeVA, []byte{byte(isa.OpNop)}); werr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("code write blocked: %v", werr),
		}
	}
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
		Detail: "hypervisor code page patched",
	}
}

// Rowhammer flips a bit in the victim's DRAM. With memory encryption the
// flip avalanches through the 16-byte block, denying the attacker
// controlled corruption (Section 6.2, "Violating memory integrity").
type Rowhammer struct{}

// Name implements Attack.
func (Rowhammer) Name() string { return "rowhammer" }

// Description implements Attack.
func (Rowhammer) Description() string {
	return "flip one DRAM bit in guest memory, aiming for a controlled plaintext change (§6.2)"
}

// Run implements Attack.
func (a Rowhammer) Run(p *Platform) Outcome {
	target := p.VictimFrame().Addr()
	if err := p.X.M.Ctl.Mem.FlipBit(target+3, 1); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	p.X.M.Ctl.Cache.Flush()
	got := make([]byte, len(p.Secret))
	var readErr error
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		readErr = g.Read(p.SecretGFN<<hw.PageShift, got)
		return nil
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	if readErr != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: readErr.Error()}
	}
	// Controlled corruption = exactly the targeted bit changed.
	diff := 0
	for i := range got {
		if got[i] != p.Secret[i] {
			diff++
		}
	}
	controlled := diff == 1 && got[3]^p.Secret[3] == 1<<1
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: controlled,
		Detail: fmt.Sprintf("%d bytes corrupted (controlled: %v)", diff, controlled),
	}
}
