package hw

// LineSize is the cache line size in bytes.
const LineSize = 64

// Cache is a small physically-indexed, physically-tagged cache holding
// plaintext. It reproduces the micro-architectural detail the paper's
// inter-VM remapping attack depends on: cache lines are plaintext and, on
// pre-SNP hardware, are tagged only by physical address — so a conspirator
// VM that gets the victim's page mapped into its NPT can hit a line the
// victim filled and read plaintext without ever touching the AES engine.
//
// The cache is write-through: stores update the line and propagate to DRAM
// through the engine, so DRAM is always current (ciphertext).
type Cache struct {
	lines    map[PhysAddr]*[LineSize]byte
	order    []PhysAddr // FIFO eviction order
	capacity int
	hits     uint64
	misses   uint64
}

// NewCache returns a cache holding at most capacity lines. A capacity of 0
// disables caching entirely.
func NewCache(capacity int) *Cache {
	return &Cache{lines: make(map[PhysAddr]*[LineSize]byte), capacity: capacity}
}

func lineBase(pa PhysAddr) PhysAddr { return pa &^ (LineSize - 1) }

// Lookup returns the cached plaintext line containing pa, if present.
func (c *Cache) Lookup(pa PhysAddr) (*[LineSize]byte, bool) {
	l, ok := c.lines[lineBase(pa)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return l, ok
}

// Fill inserts a plaintext line, evicting FIFO if full.
func (c *Cache) Fill(pa PhysAddr, data *[LineSize]byte) {
	if c.capacity == 0 {
		return
	}
	base := lineBase(pa)
	if _, ok := c.lines[base]; !ok {
		for len(c.lines) >= c.capacity {
			victim := c.order[0]
			c.order = c.order[1:]
			delete(c.lines, victim)
		}
		c.order = append(c.order, base)
	}
	cp := *data
	c.lines[base] = &cp
}

// Invalidate drops any line overlapping [pa, pa+n).
func (c *Cache) Invalidate(pa PhysAddr, n int) {
	first := lineBase(pa)
	last := lineBase(pa + PhysAddr(n) - 1)
	for b := first; b <= last; b += LineSize {
		if _, ok := c.lines[b]; ok {
			delete(c.lines, b)
			for i, o := range c.order {
				if o == b {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		if b+LineSize < b { // overflow guard
			break
		}
	}
}

// Flush empties the cache (WBINVD).
func (c *Cache) Flush() {
	c.lines = make(map[PhysAddr]*[LineSize]byte)
	c.order = nil
}

// Stats reports hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
