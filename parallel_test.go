package fidelius

import (
	"bytes"
	"fmt"
	"testing"
)

// TestScheduleParallelProtectedVMs is the facade-level equivalence gate:
// protected VMs launched from one owner bundle and run serially vs through
// ScheduleParallel must agree on everything an owner can observe — the
// launch measurement chain (each RECEIVE_FINISH verifies the same owner
// measurement), the re-encrypted kernel image, and the guest's written
// memory.
func TestScheduleParallelProtectedVMs(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := make([]byte, 2*PageSize)
	for i := range kernel {
		kernel[i] = byte(i * 7)
	}
	bundle, kblk, err := PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
	if err != nil {
		t.Fatal(err)
	}

	const memPages = 64
	launch := func(name string) *Domain {
		t.Helper()
		// Every launch replays the owner's RECEIVE chain; RECEIVE_FINISH
		// fails unless the firmware recomputes exactly the bundle's
		// measurement, so a successful launch IS measurement equality.
		vm, err := plat.LaunchVM(name, memPages, bundle)
		if err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
		return vm
	}
	serialVM := launch("serial")
	parA := launch("par-a")
	parB := launch("par-b")

	const (
		workGFN   = 2
		workPages = 3
		rounds    = 2
	)
	guest := func(g *GuestEnv) error {
		buf := make([]byte, PageSize)
		for r := 0; r < rounds; r++ {
			for p := uint64(0); p < workPages; p++ {
				for i := range buf {
					buf[i] = byte(uint64(r)*13 + p*31 + uint64(i))
				}
				if err := g.Write((workGFN+p)*PageSize, buf); err != nil {
					return err
				}
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
		}
		return nil
	}
	plat.StartVCPU(serialVM, guest)
	plat.StartVCPU(parA, guest)
	plat.StartVCPU(parB, guest)

	if err := plat.Run(serialVM); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if errs := plat.ScheduleParallel([]*Domain{parA, parB}, 2); len(errs) != 0 {
		t.Fatalf("parallel run: %v", errs)
	}

	// Per-domain plaintext images: working set and kernel region must be
	// byte-identical across scheduling modes (and the kernel must still
	// be the owner's plaintext).
	readPage := func(d *Domain, gfn uint64) []byte {
		t.Helper()
		pfn, ok := d.GPAFrame(gfn)
		if !ok {
			t.Fatalf("%s: gfn %d unbacked", d.Name, gfn)
		}
		var page [PageSize]byte
		if err := plat.X.M.Ctl.ReadPage(pfn, true, d.ASID, &page); err != nil {
			t.Fatalf("%s: read gfn %d: %v", d.Name, gfn, err)
		}
		return append([]byte{}, page[:]...)
	}
	for _, par := range []*Domain{parA, parB} {
		for gfn := uint64(workGFN); gfn < workGFN+workPages; gfn++ {
			if !bytes.Equal(readPage(serialVM, gfn), readPage(par, gfn)) {
				t.Errorf("gfn %d: serial and %s images differ", gfn, par.Name)
			}
		}
	}
	// The booted image is the owner's kernel with the 32-byte Kblk spliced
	// in at KblkOffset by PrepareGuest.
	wantKernel := append([]byte{}, kernel...)
	copy(wantKernel[KblkOffset:], kblk[:])
	kbase := plat.KernelBase(serialVM, bundle) // same geometry for all three
	for _, vm := range []*Domain{serialVM, parA, parB} {
		var img []byte
		for i := uint64(0); i < uint64(len(kernel)/PageSize); i++ {
			img = append(img, readPage(vm, kbase+i)...)
		}
		if !bytes.Equal(img, wantKernel) {
			t.Errorf("%s: kernel image diverged from the owner's plaintext", vm.Name)
		}
	}
}

// TestScheduleParallelFacadeUnprotected exercises the facade path on a
// stock-SEV platform: several encrypted VMs over the parallel scheduler,
// with the shared telemetry clock still monotonic and complete.
func TestScheduleParallelFacadeUnprotected(t *testing.T) {
	plat, err := NewPlatform(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var doms []*Domain
	for i := 0; i < 4; i++ {
		vm, err := plat.CreateVM(fmt.Sprintf("vm%d", i), 32, i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		id := vm.ID
		plat.StartVCPU(vm, func(g *GuestEnv) error {
			buf := make([]byte, 1024)
			for r := 0; r < 4; r++ {
				for j := range buf {
					buf[j] = byte(uint64(id)*5 + uint64(r+j))
				}
				if err := g.Write(0x3000, buf); err != nil {
					return err
				}
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
			return nil
		})
		doms = append(doms, vm)
	}
	before := plat.X.M.Ctl.Now()
	if errs := plat.ScheduleParallel(doms, 0); len(errs) != 0 {
		t.Fatalf("parallel run: %v", errs)
	}
	after := plat.X.M.Ctl.Now()
	if after <= before {
		t.Error("machine clock did not advance across the parallel run")
	}
	// All per-vCPU cycles folded back: the base counter now equals the
	// clock (no live views remain).
	if plat.X.M.Ctl.Now() != plat.X.M.Ctl.Cycles.Total() {
		t.Error("released cores left cycles outside the base counter")
	}
	for _, d := range doms {
		if plat.X.DomainCycles(d.ID) == 0 {
			t.Errorf("%s: no cycles attributed", d.Name)
		}
	}
}
