module fidelius

go 1.22
