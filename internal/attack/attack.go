// Package attack implements the adversary of the paper's threat model: an
// untrusted hypervisor (and driver domain) plus physical attacks. Every
// attack runs against two platform configurations — plain Xen (the
// baseline, where it is expected to succeed) and Fidelius (where it must
// be blocked) — reproducing the security analysis of Section 6.
package attack

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"fidelius/internal/core"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// Outcome is the result of one attack run.
type Outcome struct {
	Name      string
	Config    string // "xen" or "fidelius"
	Succeeded bool   // the attacker achieved the goal
	Detail    string

	// Metrics is the platform's telemetry snapshot after the attack
	// (filled by RunAllTo; zero for directly constructed outcomes).
	Metrics telemetry.Snapshot

	// Audit is the security audit ledger accumulated during the attack,
	// with its head hash and verification verdict (filled by RunAllTo):
	// the attack's outcome proven from the tamper-evident record rather
	// than from in-memory state the hypervisor could scrub.
	Audit     []telemetry.Record
	AuditHead [32]byte
	AuditOK   bool
}

func (o Outcome) String() string {
	verdict := "BLOCKED"
	if o.Succeeded {
		verdict = "SUCCEEDED"
	}
	return fmt.Sprintf("%-28s %-9s %-9s %s", o.Name, o.Config, verdict, o.Detail)
}

// Attack is one adversarial procedure.
type Attack interface {
	Name() string
	// Description explains the attack and which paper section covers it.
	Description() string
	// Run executes the attack against the platform and reports whether
	// the attacker's goal was achieved.
	Run(p *Platform) Outcome
}

// Platform is a booted system with a victim VM holding a known secret (in
// memory and on disk) and a conspirator VM colluding with the hypervisor.
type Platform struct {
	X *xen.Xen
	F *core.Fidelius // nil in the baseline configuration

	Victim      *xen.Domain
	Conspirator *xen.Domain

	// Secret is planted by the victim at SecretGFN and written to disk
	// at SecretLBA.
	Secret    []byte
	SecretGFN uint64
	SecretLBA uint64

	Backend *xen.BlockBackend
	Disk    *disk.Disk
}

// Protected reports whether Fidelius is active.
func (p *Platform) Protected() bool { return p.F != nil }

// ConfigName labels the configuration.
func (p *Platform) ConfigName() string {
	if p.Protected() {
		return "fidelius"
	}
	return "xen"
}

// VictimFrame returns the host frame backing the victim's secret page.
func (p *Platform) VictimFrame() hw.PFN {
	pfn, _ := p.Victim.GPAFrame(p.SecretGFN)
	return pfn
}

const (
	secretGFN = 8
	secretLBA = 40
	memPages  = 64
	ioPort    = 1
)

// plantSecret is the victim workload: write the secret into private
// memory (and read it back, so the cache holds plaintext — the state the
// remapping attacks exploit) and store it on disk through the
// configuration's I/O path.
func plantSecret(p *Platform) xen.GuestFunc {
	return func(g *xen.GuestEnv) error {
		if err := g.Write(p.SecretGFN<<hw.PageShift, p.Secret); err != nil {
			return err
		}
		tmp := make([]byte, len(p.Secret))
		if err := g.Read(p.SecretGFN<<hw.PageShift, tmp); err != nil {
			return err
		}
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		if p.Protected() {
			front := core.NewSEVFront(g, bf)
			return front.WriteSectors(p.SecretLBA, p.Secret)
		}
		return bf.WriteSectors(p.SecretLBA, p.Secret)
	}
}

// Setup boots a platform in the given configuration: machine, hypervisor,
// optionally Fidelius, a victim VM that plants the secret in memory and on
// disk (via the configuration's I/O path), and a conspirator VM.
func Setup(protected bool) (*Platform, error) {
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 2048})
	if err != nil {
		return nil, err
	}
	x, err := xen.New(m)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		X:         x,
		Secret:    bytes.Repeat([]byte("TOP-SECRET-DATA!"), 32), // 512 bytes
		SecretGFN: secretGFN,
		SecretLBA: secretLBA,
		Disk:      disk.New(256),
	}

	if protected {
		f, err := core.Enable(x)
		if err != nil {
			return nil, err
		}
		p.F = f
		owner, err := sev.NewOwner()
		if err != nil {
			return nil, err
		}
		pub, err := m.FW.PublicKey()
		if err != nil {
			return nil, err
		}
		bundle, _, err := core.PrepareGuest(owner, pub, nil, nil)
		if err != nil {
			return nil, err
		}
		p.Victim, err = f.LaunchVM("victim", memPages, bundle)
		if err != nil {
			return nil, err
		}
		if err := f.SetupIOSession(p.Victim); err != nil {
			return nil, err
		}
		p.Backend, err = f.AttachProtectedDisk(p.Victim, p.Disk, 2, ioPort, nil)
		if err != nil {
			return nil, err
		}
		bundle2, _, err := core.PrepareGuest(owner, pub, nil, nil)
		if err != nil {
			return nil, err
		}
		p.Conspirator, err = f.LaunchVM("conspirator", memPages, bundle2)
		if err != nil {
			return nil, err
		}
	} else {
		p.Victim, err = x.CreateDomain(xen.DomainConfig{Name: "victim", MemPages: memPages, SEV: true})
		if err != nil {
			return nil, err
		}
		p.Backend, err = x.AttachBlockDevice(p.Victim, p.Disk, 2, ioPort)
		if err != nil {
			return nil, err
		}
		p.Conspirator, err = x.CreateDomain(xen.DomainConfig{Name: "conspirator", MemPages: memPages, SEV: true})
		if err != nil {
			return nil, err
		}
	}
	if err := x.WriteStartInfo(p.Victim); err != nil {
		return nil, err
	}
	p.Backend.SnoopEnabled = true

	x.StartVCPU(p.Victim, plantSecret(p))
	if err := x.Run(p.Victim); err != nil {
		return nil, fmt.Errorf("attack: victim workload: %w", err)
	}
	return p, nil
}

// SetupGEK boots a protected platform whose victim uses the Section 8
// customized-key extension (GEK boot, GEK-backed I/O, no helper
// contexts). The attack surface must be no wider than the stock path.
func SetupGEK() (*Platform, error) {
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 2048})
	if err != nil {
		return nil, err
	}
	x, err := xen.New(m)
	if err != nil {
		return nil, err
	}
	f, err := core.Enable(x)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		X: x, F: f,
		Secret:    bytes.Repeat([]byte("TOP-SECRET-DATA!"), 32),
		SecretGFN: secretGFN,
		SecretLBA: secretLBA,
		Disk:      disk.New(256),
	}
	owner, err := sev.NewOwner()
	if err != nil {
		return nil, err
	}
	img, gek, err := core.PrepareGEKGuest(owner, nil)
	if err != nil {
		return nil, err
	}
	pub, err := m.FW.PublicKey()
	if err != nil {
		return nil, err
	}
	bundle, err := core.BindGEKGuest(owner, pub, img, gek)
	if err != nil {
		return nil, err
	}
	if p.Victim, err = f.LaunchVMFromGEK("victim", memPages, bundle); err != nil {
		return nil, err
	}
	if p.Backend, err = f.AttachProtectedDisk(p.Victim, p.Disk, 2, ioPort, nil); err != nil {
		return nil, err
	}
	bundle2, err := core.BindGEKGuest(owner, pub, img, gek)
	if err != nil {
		return nil, err
	}
	if p.Conspirator, err = f.LaunchVMFromGEK("conspirator", memPages, bundle2); err != nil {
		return nil, err
	}
	if err := x.WriteStartInfo(p.Victim); err != nil {
		return nil, err
	}
	p.Backend.SnoopEnabled = true
	x.StartVCPU(p.Victim, plantSecret(p))
	if err := x.Run(p.Victim); err != nil {
		return nil, fmt.Errorf("attack: gek victim workload: %w", err)
	}
	return p, nil
}

// All returns the full attack suite in a stable order.
func All() []Attack {
	return []Attack{
		ColdBoot{},
		DMASnoop{},
		HypervisorDirectRead{},
		InterVMRemap{},
		NPTReplay{},
		GrantForgery{},
		KeyAbuse{},
		RegisterTheft{},
		VMCBControlTamper{},
		DisableWP{},
		CR3Pivot{},
		HiddenGadget{},
		IagoCPUID{},
		IODataTheft{},
		CodePatch{},
		Rowhammer{},
		HypercallFuzz{},
		LedgerTamper{},
	}
}

// RunAll executes every attack against a fresh platform per attack (some
// attacks perturb global state).
func RunAll(protected bool) ([]Outcome, error) {
	return RunAllTo(protected, "")
}

// RunAllTo is RunAll with observability: each outcome carries the
// platform's telemetry snapshot, and when traceDir is non-empty a Chrome
// trace_event timeline of each attack is written to
// <traceDir>/<attack-name>.<config>.json.
func RunAllTo(protected bool, traceDir string) ([]Outcome, error) {
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return nil, err
		}
	}
	var out []Outcome
	for _, a := range All() {
		p, err := Setup(protected)
		if err != nil {
			return nil, fmt.Errorf("setting up for %s: %w", a.Name(), err)
		}
		hub := p.X.M.Ctl.Telem
		if traceDir != "" {
			hub.StartTrace(0)
		}
		led := hub.StartLedger()
		o := a.Run(p)
		o.Metrics = hub.Reg.Snapshot()
		o.Audit = led.Records()
		o.AuditHead = led.Head()
		o.AuditOK = telemetry.VerifyChain(o.Audit, o.AuditHead) == nil
		if traceDir != "" {
			name := filepath.Join(traceDir, fmt.Sprintf("%s.%s.json", a.Name(), o.Config))
			f, err := os.Create(name)
			if err != nil {
				return nil, err
			}
			if err := hub.WriteChromeTrace(f); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
		out = append(out, o)
	}
	return out, nil
}
