package main

import (
	"runtime"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: fidelius
cpu: AMD Ryzen sim
BenchmarkMemRead-4   	 1000000	      1200 ns/op	      32 B/op	       2 allocs/op
BenchmarkMemWrite-4  	  500000	      2400 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseStreamRecordsEnvironment(t *testing.T) {
	rep, err := parseStream(strings.NewReader(sampleStream), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoVersion != runtime.Version() {
		t.Errorf("go version = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if rep.NumCPU != runtime.NumCPU() {
		t.Errorf("num_cpu = %d, want %d", rep.NumCPU, runtime.NumCPU())
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD Ryzen sim" {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Metrics["ns/op"] != 1200 {
		t.Errorf("ns/op = %v, want 1200", rep.Benchmarks[0].Metrics["ns/op"])
	}
}

func mkReport(nsByName map[string]float64, allocsByName map[string]float64) Report {
	var rep Report
	for name, ns := range nsByName {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:       name,
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocsByName[name]},
		})
	}
	return rep
}

func TestDiffReports(t *testing.T) {
	oldRep := mkReport(map[string]float64{"BenchA": 100, "BenchB": 200, "BenchGone": 50},
		map[string]float64{"BenchA": 2, "BenchB": 0})
	newRep := mkReport(map[string]float64{"BenchA": 125, "BenchB": 190, "BenchNew": 10},
		map[string]float64{"BenchA": 2, "BenchB": 0})
	deltas := diffReports(oldRep, newRep)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["BenchA"]; d.NsPct < 24.9 || d.NsPct > 25.1 {
		t.Errorf("BenchA ns delta = %v, want +25%%", d.NsPct)
	}
	if d := byName["BenchB"]; d.NsPct > 0 {
		t.Errorf("BenchB should improve, got %+v", d)
	}
	if !byName["BenchGone"].Missing {
		t.Error("BenchGone should be flagged missing")
	}
	if !byName["BenchNew"].Added {
		t.Error("BenchNew should be flagged added")
	}

	var sb strings.Builder
	if regressed := writeDiff(&sb, deltas, 10, 10, true); !regressed {
		t.Error("25%% ns/op regression over a 10%% threshold must trip the gate")
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Error("diff table should flag the regression")
	}
	sb.Reset()
	if regressed := writeDiff(&sb, deltas, 30, 30, true); regressed {
		t.Error("25%% regression under a 30%% threshold must pass")
	}
}

func TestDiffWallClockUngatedAcrossEnvironments(t *testing.T) {
	oldRep := mkReport(map[string]float64{"BenchA": 100}, map[string]float64{"BenchA": 2})
	newRep := mkReport(map[string]float64{"BenchA": 200}, map[string]float64{"BenchA": 2})
	deltas := diffReports(oldRep, newRep)

	var sb strings.Builder
	if regressed := writeDiff(&sb, deltas, 10, 10, false); regressed {
		t.Error("ns/op regression must not gate when capture environments differ")
	}
	if !strings.Contains(sb.String(), "not gated") {
		t.Error("ungated wall-clock delta should still be flagged in the table")
	}
}

func TestDiffSubResolutionWallClockUngated(t *testing.T) {
	// An empty-timed-loop benchmark (all work outside the timer, results
	// reported as cycle metrics): sub-nanosecond ns/op doubling is loop
	// overhead, not a regression.
	oldRep := mkReport(map[string]float64{"BenchEmpty": 0.4}, map[string]float64{"BenchEmpty": 0})
	newRep := mkReport(map[string]float64{"BenchEmpty": 0.8}, map[string]float64{"BenchEmpty": 0})
	deltas := diffReports(oldRep, newRep)

	var sb strings.Builder
	if regressed := writeDiff(&sb, deltas, 10, 10, true); regressed {
		t.Error("sub-resolution ns/op delta must not gate even in the same environment")
	}
	if !strings.Contains(sb.String(), "sub-resolution") {
		t.Error("sub-resolution delta should be flagged as such in the table")
	}
	// The floor does not exempt real benchmarks: one above the floor on
	// either side still gates.
	deltas = diffReports(
		mkReport(map[string]float64{"BenchReal": 50}, map[string]float64{"BenchReal": 0}),
		mkReport(map[string]float64{"BenchReal": 200}, map[string]float64{"BenchReal": 0}))
	sb.Reset()
	if regressed := writeDiff(&sb, deltas, 10, 10, true); !regressed {
		t.Error("a regression crossing the floor must still gate")
	}
}

func TestDiffSimulatedCycleMetricsAlwaysGate(t *testing.T) {
	mk := func(cycles float64) Report {
		return Report{Benchmarks: []Result{{
			Name:       "BenchSim",
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": 100, "downtime-cycles": cycles, "ops/Mcycle": 5},
		}}}
	}
	deltas := diffReports(mk(1000), mk(1500))
	if len(deltas) != 1 || len(deltas[0].Sim) != 1 {
		t.Fatalf("want one sim delta (ops/Mcycle excluded), got %+v", deltas)
	}
	if d := deltas[0].Sim[0]; d.Unit != "downtime-cycles" || d.Pct < 49.9 || d.Pct > 50.1 {
		t.Errorf("sim delta = %+v, want downtime-cycles +50%%", d)
	}

	var sb strings.Builder
	if regressed := writeDiff(&sb, deltas, 10, 10, false); !regressed {
		t.Error("+50%% downtime-cycles must gate even across environments")
	}
	if !strings.Contains(sb.String(), "downtime-cycles") {
		t.Error("diff table should print the regressed cycle metric")
	}
}

func TestSameEnv(t *testing.T) {
	a := Report{GoVersion: "go1.24.0", CPU: "x", Goos: "linux", Goarch: "amd64", GOMAXPROCS: 1, NumCPU: 1}
	b := a
	if !sameEnv(a, b) {
		t.Error("identical environments must compare equal")
	}
	b.NumCPU = 8
	if sameEnv(a, b) {
		t.Error("different core counts must not compare equal")
	}
	if sameEnv(Report{}, Report{}) {
		t.Error("artifacts without environment stamps must never compare equal")
	}
}

func TestAggregateMedianOfRepeatedRuns(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", Iterations: 100, Metrics: map[string]float64{"ns/op": 1000, "put-cycles": 42}},
		{Name: "BenchmarkB", Iterations: 5, Metrics: map[string]float64{"ns/op": 7}},
		{Name: "BenchmarkA", Iterations: 90, Metrics: map[string]float64{"ns/op": 5000, "put-cycles": 42}},
		{Name: "BenchmarkA", Iterations: 110, Metrics: map[string]float64{"ns/op": 1100, "put-cycles": 42}},
	}
	out := aggregate(in)
	if len(out) != 2 || out[0].Name != "BenchmarkA" || out[1].Name != "BenchmarkB" {
		t.Fatalf("aggregate order/length wrong: %+v", out)
	}
	// The 5000 outlier must lose to the median, and the deterministic
	// cycle metric must come through unchanged.
	if got := out[0].Metrics["ns/op"]; got != 1100 {
		t.Errorf("median ns/op = %v, want 1100", got)
	}
	if got := out[0].Metrics["put-cycles"]; got != 42 {
		t.Errorf("put-cycles = %v, want 42", got)
	}
	if out[0].Iterations != 100 {
		t.Errorf("median iterations = %d, want 100", out[0].Iterations)
	}
	// Single-run benchmarks pass through untouched.
	if out[1].Metrics["ns/op"] != 7 || out[1].Iterations != 5 {
		t.Errorf("single run mutated: %+v", out[1])
	}
}
