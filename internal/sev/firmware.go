package sev

import (
	"crypto/ecdh"
	"crypto/hmac"
	"errors"
	"fmt"
	"sync/atomic"

	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
	"fidelius/internal/parallel"
	"fidelius/internal/telemetry"
)

// State is the lifecycle state of a guest context inside the firmware.
// SEND_UPDATE and RECEIVE_UPDATE are only legal in the sending/receiving
// states — the constraint that forces Fidelius to keep the s-dom and r-dom
// helper contexts around for I/O encryption (Section 4.3.5).
type State int

// Guest context states.
const (
	StateInvalid State = iota
	StateLaunching
	StateRunning
	StateSending
	StateReceiving
	StateSent
)

func (s State) String() string {
	switch s {
	case StateInvalid:
		return "invalid"
	case StateLaunching:
		return "launching"
	case StateRunning:
		return "running"
	case StateSending:
		return "sending"
	case StateReceiving:
		return "receiving"
	case StateSent:
		return "sent"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Handle identifies a guest context inside the firmware. Handles are the
// hypervisor-visible name of a context; the paper's key-sharing attack
// works precisely because the hypervisor controls the handle↔ASID binding.
type Handle uint32

// Errors returned by firmware commands.
var (
	ErrNotInitialized = errors.New("sev: platform not initialized")
	ErrUnauthorized   = errors.New("sev: command issued outside the authorized context")
	ErrBadHandle      = errors.New("sev: invalid guest handle")
	ErrBadState       = errors.New("sev: command illegal in current state")
	ErrASIDInUse      = errors.New("sev: asid already active for another handle")
	ErrASIDDirty      = errors.New("sev: asid retired without DF_FLUSH")
	ErrActive         = errors.New("sev: guest still activated")
	ErrBadMeasurement = errors.New("sev: measurement mismatch")
	ErrBadTag         = errors.New("sev: transport tag verification failed")
	ErrNotAligned     = errors.New("sev: buffer not block aligned")
	ErrBadSequence    = errors.New("sev: receive_update out of sequence")
)

// Packet is one SEND_UPDATE output / RECEIVE_UPDATE input: a chunk of
// guest data re-encrypted under the transport key, with its sequence
// number (used as the CTR tweak) and integrity tag.
type Packet struct {
	Seq  uint64
	Data []byte
	Tag  [32]byte
}

// Context is one guest's SEV state inside the firmware.
type Context struct {
	handle    Handle
	state     State
	asid      hw.ASID // 0 = not activated
	kvek      hw.Key
	cipher    *hw.PageCipher
	transport TransportKeys
	measure   Measurement
	seq       uint64
	policy    uint32

	// gek is the customized key of the Section 8 extension.
	gek    GEK
	gekSet bool
}

// State reports the context's lifecycle state.
func (c *Context) State() State { return c.state }

// ASID reports the active ASID binding (0 if inactive).
func (c *Context) ASID() hw.ASID { return c.asid }

// Firmware is the SEV firmware in the secure processor. All commands are
// issued by host software (the hypervisor, or Fidelius once it has taken
// the SEV metadata away from the hypervisor); the firmware itself is
// inside the trust boundary.
type Firmware struct {
	ctl         *hw.Controller
	priv        *ecdh.PrivateKey
	initialized bool

	// mu (lock rank: firmware) guards the shared tables below — the
	// context directory, the handle counter, the ASID bindings and the
	// dirty-ASID set — so firmware commands from concurrent lifecycle
	// operations cannot corrupt them. Commands against the SAME handle
	// are still the caller's job to serialize: the returned *Context is
	// mutated outside the lock, exactly as real PSP mailboxes process
	// one command per guest at a time.
	mu     lockrank.Mutex
	ctxs   map[Handle]*Context
	next   Handle
	active map[hw.ASID]Handle

	// dirty records ASIDs that were deactivated and not yet scrubbed by
	// DF_FLUSH. Real SEV refuses to ACTIVATE such an ASID because stale
	// cache lines tagged with it would decrypt under the new guest's key
	// — the "security-by-crash" reuse surface CROSSLINE exploits. The
	// model enforces the same refusal.
	dirty map[hw.ASID]bool

	// attest lazily holds the attestation signing identity.
	attest *attestKey

	// Authorize, when set, gates every guest-context command. Fidelius
	// installs a check requiring its trusted context, modelling the
	// self-maintained SEV metadata of Section 4.2.3: the hypervisor can
	// no longer issue ACTIVATE/DEACTIVATE and abuse the handle-ASID
	// binding.
	Authorize func() bool

	// pool bounds the bulk page-crypto fan-out of the *Pages commands.
	pool *parallel.Pool
}

// NewFirmware returns an uninitialised firmware attached to the memory
// controller.
func NewFirmware(ctl *hw.Controller) *Firmware {
	f := &Firmware{
		ctl:    ctl,
		ctxs:   make(map[Handle]*Context),
		next:   1,
		active: make(map[hw.ASID]Handle),
		dirty:  make(map[hw.ASID]bool),
		pool:   parallel.New(0),
	}
	f.mu.Init(lockrank.RankFirmware, nil)
	if ctl != nil && ctl.Telem != nil {
		f.pool.Register(ctl.Telem.Reg)
		f.pool.AttachHub(ctl.Telem)
	}
	return f
}

// SetLockInfo re-ranks the firmware table lock with a shared contention
// counter (the machine wires this up so firmware-lock waits show in the
// xen.lock_waits metric family).
func (f *Firmware) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	f.mu.Init(rank, waits)
}

// Pool exposes the bulk-crypto worker pool, so callers (and benchmarks)
// can tune its width.
func (f *Firmware) Pool() *parallel.Pool { return f.pool }

func (f *Firmware) charge(n uint64) { f.ctl.Cycles.Charge(n) }

// command accounts one successfully executed firmware command: the global
// SEV counter, a per-command labelled counter, and (when tracing) a span
// event carrying the command name and guest handle. Commands are rare
// relative to memory traffic, so the labelled-counter map lookup is fine
// here.
func (f *Firmware) command(name string, h Handle) {
	if f.ctl == nil {
		return
	}
	t := f.ctl.Telem
	if t == nil {
		return
	}
	t.M.SEVCommands.Inc()
	t.Reg.Counter("sev.cmd", "cmd", name).Inc()
	if t.Tracing() {
		t.EmitDetail(telemetry.KindSEVCommand, 0, 0, cycles.SEVCommand, uint64(h), 0, name)
		// The command cost was already charged, so the span ends now and
		// covers the fixed command constant; its parent is whatever scope
		// is ambient (a launch, a migration round, a quantum).
		asid := uint32(f.asidOf(h))
		end := t.Now()
		start := end
		if start >= cycles.SEVCommand {
			start = end - cycles.SEVCommand
		}
		t.CompleteSpan("sev:"+name, t.VMForASID(asid), asid, t.Ambient(), start, end)
	}
}

// asidOf reads a handle's ASID binding under the table lock (0 when the
// handle is unknown or inactive).
func (f *Firmware) asidOf(h Handle) hw.ASID {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.ctxs[h]; ok {
		return c.asid
	}
	return 0
}

// auditing reports whether the platform ledger is armed, so error paths
// can skip building detail strings entirely when it is not.
func (f *Firmware) auditing() bool {
	return f.ctl != nil && f.ctl.Telem.Auditing()
}

// audit appends a security record to the platform's audit ledger (no-op
// when none is armed), resolving the VM from the context's ASID.
func (f *Firmware) audit(class string, asid hw.ASID, detail string) {
	if f.ctl == nil {
		return
	}
	t := f.ctl.Telem
	t.Audit(class, t.VMForASID(uint32(asid)), detail)
}

// openGuarded is openPacket plus an audit record on failure — a transport
// packet whose tag does not verify is a migration-stream tampering
// attempt caught in the act.
func (f *Firmware) openGuarded(c *Context, pkt Packet) ([]byte, error) {
	plain, err := openPacket(c.transport, pkt)
	if err != nil && f.auditing() {
		f.audit("transport-tag", c.asid, err.Error())
	}
	return plain, err
}

// setState moves a context through its lifecycle and records the
// transition in the audit ledger: "Insecure Until Proven Updated" showed
// that unrecorded firmware state is exactly what a rollback hides behind.
func (f *Firmware) setState(c *Context, to State) {
	from := c.state
	c.state = to
	if from != to && f.auditing() {
		f.audit("sev-state", c.asid,
			"handle "+fmt.Sprint(uint32(c.handle))+": "+from.String()+" -> "+to.String())
	}
}

// Init generates the platform identity and moves the platform to the
// initialized state (the SEV INIT command Fidelius issues during system
// initialisation, Section 4.3.1).
func (f *Firmware) Init() error {
	if f.initialized {
		return nil
	}
	priv, err := GenerateIdentity()
	if err != nil {
		return err
	}
	f.priv = priv
	f.initialized = true
	f.charge(cycles.SEVCommand)
	f.command("init", 0)
	return nil
}

// PublicKey returns the platform's ECDH public key used in key agreement.
func (f *Firmware) PublicKey() (*ecdh.PublicKey, error) {
	if !f.initialized {
		return nil, ErrNotInitialized
	}
	return f.priv.PublicKey(), nil
}

func (f *Firmware) guard() error {
	if f.Authorize != nil && !f.Authorize() {
		if f.auditing() {
			f.audit("sev-unauthorized", 0, ErrUnauthorized.Error())
		}
		return ErrUnauthorized
	}
	return nil
}

func (f *Firmware) ctx(h Handle) (*Context, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	c, ok := f.ctxs[h]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	return c, nil
}

// Lookup returns the context for a handle, for inspection by trusted
// tooling and tests.
func (f *Firmware) Lookup(h Handle) (*Context, error) { return f.ctx(h) }

func (f *Firmware) newContext() (*Context, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	if !f.initialized {
		return nil, ErrNotInitialized
	}
	kvek, err := randomKey()
	if err != nil {
		return nil, err
	}
	c := &Context{kvek: hw.Key(kvek)}
	c.cipher, err = hw.NewPageCipher(c.kvek)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	c.handle = f.next
	f.ctxs[f.next] = c
	f.next++
	f.mu.Unlock()
	return c, nil
}

// LaunchStart creates a guest context with a fresh Kvek and returns its
// handle.
func (f *Firmware) LaunchStart(policy uint32) (Handle, error) {
	c, err := f.newContext()
	if err != nil {
		return 0, err
	}
	f.setState(c, StateLaunching)
	c.policy = policy
	f.charge(cycles.SEVCommand)
	f.command("launch-start", c.handle)
	return c.handle, nil
}

// LaunchHelper creates a context sharing the Kvek of an existing guest.
// This is Fidelius's use of the LAUNCH API to build the s-dom and r-dom
// helper contexts for SEV-based I/O encryption.
func (f *Firmware) LaunchHelper(h Handle) (Handle, error) {
	base, err := f.ctx(h)
	if err != nil {
		return 0, err
	}
	c, err := f.newContext()
	if err != nil {
		return 0, err
	}
	c.kvek = base.kvek
	c.cipher = base.cipher
	f.setState(c, StateRunning)
	c.policy = base.policy
	f.charge(cycles.SEVCommand)
	f.command("launch-helper", c.handle)
	return c.handle, nil
}

// LaunchUpdateData encrypts a plaintext page in place with the guest's
// Kvek and folds it into the launch measurement.
func (f *Firmware) LaunchUpdateData(h Handle, pfn hw.PFN) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateLaunching {
		return fmt.Errorf("%w: launch_update in %v", ErrBadState, c.state)
	}
	var page [hw.PageSize]byte
	if err := f.ctl.Mem.ReadRaw(pfn.Addr(), page[:]); err != nil {
		return err
	}
	tag := transportMAC([32]byte(c.kvek), uint64(pfn), page[:])
	c.measure = measureChain(c.measure, tag)
	c.cipher.EncryptPage(pfn.Addr(), page[:])
	f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
	f.command("launch-update-data", h)
	return f.ctl.FirmwareWrite(pfn.Addr(), page[:])
}

// LaunchMeasure returns the running launch measurement.
func (f *Firmware) LaunchMeasure(h Handle) (Measurement, error) {
	c, err := f.ctx(h)
	if err != nil {
		return Measurement{}, err
	}
	if c.state != StateLaunching {
		return Measurement{}, fmt.Errorf("%w: launch_measure in %v", ErrBadState, c.state)
	}
	f.charge(cycles.SEVCommand)
	f.command("launch-measure", h)
	return c.measure, nil
}

// LaunchFinish completes launching; the guest context becomes runnable.
func (f *Firmware) LaunchFinish(h Handle) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateLaunching {
		return fmt.Errorf("%w: launch_finish in %v", ErrBadState, c.state)
	}
	f.setState(c, StateRunning)
	f.charge(cycles.SEVCommand)
	f.command("launch-finish", h)
	return nil
}

// Activate installs the context's Kvek into the memory controller under
// the given ASID. The firmware checks only liveness of the binding, not
// its rightfulness — the handle↔ASID relationship is hypervisor-managed
// state, which is the key-sharing attack surface Fidelius closes by
// self-maintaining the SEV metadata (Section 4.2.3).
func (f *Firmware) Activate(h Handle, asid hw.ASID) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if asid == hw.HostASID {
		return fmt.Errorf("sev: asid 0 is reserved for the host key")
	}
	f.mu.Lock()
	if owner, busy := f.active[asid]; busy && owner != h {
		f.mu.Unlock()
		if f.auditing() {
			f.audit("asid-reuse", asid,
				fmt.Sprintf("activate handle %d on asid %d held by handle %d", h, asid, owner))
		}
		return fmt.Errorf("%w: asid %d held by handle %d", ErrASIDInUse, asid, owner)
	}
	if f.dirty[asid] {
		// CROSSLINE's opening move: rebind a previously used ASID
		// without scrubbing the data fabric, so stale lines tagged with
		// it decrypt under the new guest's key. Real SEV makes this a
		// hard ACTIVATE failure only after DF_FLUSH discipline is
		// enforced; the model refuses unconditionally.
		f.mu.Unlock()
		if f.auditing() {
			f.audit("asid-reuse", asid,
				fmt.Sprintf("activate handle %d on asid %d retired without DF_FLUSH", h, asid))
		}
		return fmt.Errorf("%w: asid %d", ErrASIDDirty, asid)
	}
	if c.asid != 0 && c.asid != asid {
		prev := c.asid
		f.mu.Unlock()
		if f.auditing() {
			f.audit("asid-reuse", prev,
				fmt.Sprintf("rebind of handle %d from asid %d to %d", h, prev, asid))
		}
		return fmt.Errorf("sev: handle %d already active as asid %d", h, prev)
	}
	if err := f.ctl.Eng.Install(asid, c.kvek); err != nil {
		f.mu.Unlock()
		return err
	}
	c.asid = asid
	f.active[asid] = h
	f.mu.Unlock()
	f.charge(cycles.SEVCommand)
	f.command("activate", h)
	return nil
}

// Deactivate unbinds the context's ASID and removes its key from the
// memory controller. The ASID is marked dirty: until a DF_FLUSH scrubs
// the fabric, Activate refuses to hand it to any guest.
func (f *Firmware) Deactivate(h Handle) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if c.asid != 0 {
		f.ctl.Eng.Uninstall(c.asid)
		delete(f.active, c.asid)
		f.dirty[c.asid] = true
		c.asid = 0
	}
	f.mu.Unlock()
	f.charge(cycles.SEVCommand)
	f.command("deactivate", h)
	return nil
}

// Decommission erases the guest context. The guest must be deactivated.
func (f *Firmware) Decommission(h Handle) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if c.asid != 0 {
		asid := c.asid
		f.mu.Unlock()
		return fmt.Errorf("%w: handle %d as asid %d", ErrActive, h, asid)
	}
	delete(f.ctxs, h)
	f.mu.Unlock()
	f.charge(cycles.SEVCommand)
	f.command("decommission", h)
	return nil
}

// DFFlush is the DF_FLUSH command: a data-fabric write-back/invalidate
// that scrubs every cache line still tagged with a retired ASID, after
// which those ASIDs may be activated again. It deliberately bypasses
// the Authorize guard — flushing only destroys stale key state, so the
// hypervisor being able to issue it grants nothing (whereas SKIPPING it
// is what CROSSLINE exploits, and Activate enforces that it cannot be
// skipped).
func (f *Firmware) DFFlush() error {
	if !f.initialized {
		return ErrNotInitialized
	}
	f.mu.Lock()
	f.dirty = make(map[hw.ASID]bool)
	f.mu.Unlock()
	f.charge(cycles.DFFlush)
	f.command("df-flush", 0)
	return nil
}

// DirtyASID reports whether asid has been retired without an intervening
// DF_FLUSH (test and tooling visibility).
func (f *Firmware) DirtyASID(asid hw.ASID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dirty[asid]
}

// SendStart opens a SEND session: it generates fresh transport keys,
// wraps them under the ECDH agreement with peerPub and the nonce, and
// moves the context to the sending state (stopping guest execution — the
// reason Fidelius does not support live migration, Section 4.3.6).
func (f *Firmware) SendStart(h Handle, peerPub *ecdh.PublicKey, nonce []byte) (WrappedKeys, error) {
	c, err := f.ctx(h)
	if err != nil {
		return WrappedKeys{}, err
	}
	if c.state != StateRunning {
		return WrappedKeys{}, fmt.Errorf("%w: send_start in %v", ErrBadState, c.state)
	}
	tek, err := randomKey()
	if err != nil {
		return WrappedKeys{}, err
	}
	tik, err := randomKey()
	if err != nil {
		return WrappedKeys{}, err
	}
	c.transport = TransportKeys{TEK: tek, TIK: tik}
	shared, err := ECDHAgree(f.priv, peerPub)
	if err != nil {
		return WrappedKeys{}, err
	}
	w, err := wrapKeys(deriveKEK(shared, nonce), c.transport)
	if err != nil {
		return WrappedKeys{}, err
	}
	f.setState(c, StateSending)
	c.measure = Measurement{}
	c.seq = 0
	f.charge(cycles.SEVCommand)
	f.command("send-start", h)
	return w, nil
}

// SendUpdate re-encrypts one guest page from Kvek to the transport key
// and returns the transport packet.
func (f *Firmware) SendUpdate(h Handle, pfn hw.PFN) (Packet, error) {
	c, err := f.ctx(h)
	if err != nil {
		return Packet{}, err
	}
	if c.state != StateSending {
		return Packet{}, fmt.Errorf("%w: send_update in %v", ErrBadState, c.state)
	}
	var page [hw.PageSize]byte
	if err := f.ctl.Mem.ReadRaw(pfn.Addr(), page[:]); err != nil {
		return Packet{}, err
	}
	c.cipher.DecryptPage(pfn.Addr(), page[:])
	seq := c.seq
	c.seq++
	pkt, err := sealPacket(c.transport, seq, page[:])
	if err != nil {
		return Packet{}, err
	}
	c.measure = measureChain(c.measure, pkt.Tag)
	f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
	f.command("send-update", h)
	return pkt, nil
}

// SendUpdateBuf is the buffer-granularity variant Fidelius uses on the
// I/O path: it reads n bytes of guest data at pa (encrypted with Kvek),
// and returns them re-encrypted under the transport key with the
// caller-chosen sequence tweak (a sector number for disk I/O).
func (f *Firmware) SendUpdateBuf(h Handle, pa hw.PhysAddr, n int, seq uint64) (Packet, error) {
	c, err := f.ctx(h)
	if err != nil {
		return Packet{}, err
	}
	if c.state != StateSending {
		return Packet{}, fmt.Errorf("%w: send_update in %v", ErrBadState, c.state)
	}
	if pa%hw.BlockSize != 0 || n%hw.BlockSize != 0 {
		return Packet{}, ErrNotAligned
	}
	buf := make([]byte, n)
	if err := f.ctl.Mem.ReadRaw(pa, buf); err != nil {
		return Packet{}, err
	}
	c.cipher.DecryptLine(pa, buf)
	pkt, err := sealPacket(c.transport, seq, buf)
	if err != nil {
		return Packet{}, err
	}
	f.charge(cycles.SEVCommand + uint64(n)/hw.BlockSize*cycles.AESBlockSEV)
	f.command("send-update-buf", h)
	return pkt, nil
}

func sealPacket(tk TransportKeys, seq uint64, plain []byte) (Packet, error) {
	data := append([]byte{}, plain...)
	if err := transportXOR(tk.TEK, seq, data); err != nil {
		return Packet{}, err
	}
	return Packet{Seq: seq, Data: data, Tag: transportMAC(tk.TIK, seq, data)}, nil
}

func openPacket(tk TransportKeys, pkt Packet) ([]byte, error) {
	want := transportMAC(tk.TIK, pkt.Seq, pkt.Data)
	if !hmac.Equal(want[:], pkt.Tag[:]) {
		return nil, ErrBadTag
	}
	plain := append([]byte{}, pkt.Data...)
	if err := transportXOR(tk.TEK, pkt.Seq, plain); err != nil {
		return nil, err
	}
	return plain, nil
}

// SendIO is the I/O-path variant of SEND_UPDATE: it reads n bytes of
// guest data at pa (Kvek-encrypted) and returns the TEK ciphertext, with
// the caller-chosen per-sector sequence tweak but no integrity tag. The
// paper's I/O protection provides confidentiality only; integrity is the
// hardware suggestion of Section 8.
func (f *Firmware) SendIO(h Handle, pa hw.PhysAddr, n int, seq uint64) ([]byte, error) {
	c, err := f.ctx(h)
	if err != nil {
		return nil, err
	}
	if c.state != StateSending {
		return nil, fmt.Errorf("%w: send_io in %v", ErrBadState, c.state)
	}
	if pa%hw.BlockSize != 0 || n%hw.BlockSize != 0 {
		return nil, ErrNotAligned
	}
	buf := make([]byte, n)
	if err := f.ctl.Mem.ReadRaw(pa, buf); err != nil {
		return nil, err
	}
	c.cipher.DecryptLine(pa, buf)
	if err := transportXOR(c.transport.TEK, seq, buf); err != nil {
		return nil, err
	}
	f.charge(uint64(n) / hw.BlockSize * cycles.AESBlockSEV)
	f.command("send-io", h)
	return buf, nil
}

// ReceiveIO is the I/O-path variant of RECEIVE_UPDATE: it decrypts TEK
// ciphertext with the per-sector sequence tweak and writes it
// Kvek-encrypted at pa.
func (f *Firmware) ReceiveIO(h Handle, pa hw.PhysAddr, data []byte, seq uint64) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateReceiving {
		return fmt.Errorf("%w: receive_io in %v", ErrBadState, c.state)
	}
	if pa%hw.BlockSize != 0 || len(data)%hw.BlockSize != 0 {
		return ErrNotAligned
	}
	plain := append([]byte{}, data...)
	if err := transportXOR(c.transport.TEK, seq, plain); err != nil {
		return err
	}
	c.cipher.EncryptLine(pa, plain)
	f.charge(uint64(len(plain)) / hw.BlockSize * cycles.AESBlockSEV)
	f.command("receive-io", h)
	return f.ctl.FirmwareWrite(pa, plain)
}

// SendCancel aborts a SEND session (the SEND_CANCEL command): the
// transport keys and partial measurement are scrubbed and the context
// returns to the running state, so a failed migration resumes the source
// guest instead of leaving it stranded mid-send. Cancelling from the
// sent state is also allowed: in this retrofit the memory key never
// leaves the controller during a send, so until the owner destroys the
// context "sent" only records a finalized transport measurement — if the
// target rejects that measurement, the source rolls back and keeps
// running.
func (f *Firmware) SendCancel(h Handle) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateSending && c.state != StateSent {
		return fmt.Errorf("%w: send_cancel in %v", ErrBadState, c.state)
	}
	c.transport = TransportKeys{}
	c.measure = Measurement{}
	c.seq = 0
	f.setState(c, StateRunning)
	f.charge(cycles.SEVCommand)
	f.command("send-cancel", h)
	return nil
}

// SendFinish closes the SEND session and returns the snapshot measurement
// (the paper's Mvm).
func (f *Firmware) SendFinish(h Handle) (Measurement, error) {
	c, err := f.ctx(h)
	if err != nil {
		return Measurement{}, err
	}
	if c.state != StateSending {
		return Measurement{}, fmt.Errorf("%w: send_finish in %v", ErrBadState, c.state)
	}
	f.setState(c, StateSent)
	f.charge(cycles.SEVCommand)
	f.command("send-finish", h)
	return c.measure, nil
}

// ReceiveStart opens a RECEIVE session: it creates a context with a fresh
// Kvek and unwraps the transport keys using the ECDH agreement with the
// origin's public key and nonce.
func (f *Firmware) ReceiveStart(w WrappedKeys, originPub *ecdh.PublicKey, nonce []byte) (Handle, error) {
	if !f.initialized {
		return 0, ErrNotInitialized
	}
	shared, err := ECDHAgree(f.priv, originPub)
	if err != nil {
		return 0, err
	}
	tk, err := unwrapKeys(deriveKEK(shared, nonce), w)
	if err != nil {
		return 0, err
	}
	c, err := f.newContext()
	if err != nil {
		return 0, err
	}
	c.transport = tk
	f.setState(c, StateReceiving)
	f.charge(cycles.SEVCommand)
	f.command("receive-start", c.handle)
	return c.handle, nil
}

// ReceiveHelperStart opens a RECEIVE session on a helper context that
// shares an existing guest's Kvek — the r-dom of Fidelius's I/O path.
func (f *Firmware) ReceiveHelperStart(base Handle, w WrappedKeys, originPub *ecdh.PublicKey, nonce []byte) (Handle, error) {
	h, err := f.LaunchHelper(base)
	if err != nil {
		return 0, err
	}
	shared, err := ECDHAgree(f.priv, originPub)
	if err != nil {
		return 0, err
	}
	tk, err := unwrapKeys(deriveKEK(shared, nonce), w)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	c := f.ctxs[h]
	f.mu.Unlock()
	c.transport = tk
	f.setState(c, StateReceiving)
	f.command("receive-helper-start", h)
	return h, nil
}

// ReceiveUpdate decrypts one transport packet and writes the page
// re-encrypted with the context's Kvek at pfn. Packets must arrive in
// sequence order: the context tracks the next expected sequence number,
// so replayed or reordered packets are rejected before they can perturb
// the measurement chain. (The buffer/I/O variants use caller-chosen
// sector tweaks and are exempt.)
func (f *Firmware) ReceiveUpdate(h Handle, pfn hw.PFN, pkt Packet) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateReceiving {
		return fmt.Errorf("%w: receive_update in %v", ErrBadState, c.state)
	}
	if pkt.Seq != c.seq {
		return fmt.Errorf("%w: got %d, want %d", ErrBadSequence, pkt.Seq, c.seq)
	}
	plain, err := f.openGuarded(c, pkt)
	if err != nil {
		return err
	}
	c.seq++
	if len(plain) != hw.PageSize {
		return fmt.Errorf("sev: receive_update packet is %d bytes, want a page", len(plain))
	}
	c.measure = measureChain(c.measure, pkt.Tag)
	c.cipher.EncryptPage(pfn.Addr(), plain)
	f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
	f.command("receive-update", h)
	return f.ctl.FirmwareWrite(pfn.Addr(), plain)
}

// ReceiveUpdateBuf is the buffer-granularity variant for the I/O read
// path: the packet's payload is decrypted from the transport key and
// written Kvek-encrypted at pa.
func (f *Firmware) ReceiveUpdateBuf(h Handle, pa hw.PhysAddr, pkt Packet) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateReceiving {
		return fmt.Errorf("%w: receive_update in %v", ErrBadState, c.state)
	}
	if pa%hw.BlockSize != 0 || len(pkt.Data)%hw.BlockSize != 0 {
		return ErrNotAligned
	}
	plain, err := f.openGuarded(c, pkt)
	if err != nil {
		return err
	}
	c.cipher.EncryptLine(pa, plain)
	f.ctl.Cache.Invalidate(pa, len(plain))
	f.charge(cycles.SEVCommand + uint64(len(plain))/hw.BlockSize*cycles.AESBlockSEV)
	f.command("receive-update-buf", h)
	return f.ctl.Mem.WriteRaw(pa, plain)
}

// LaunchUpdatePages is the bulk form of LaunchUpdateData: it encrypts and
// measures a batch of distinct plaintext pages, fanning the per-page AES
// and MAC work across the firmware's worker pool. The measurement chain is
// folded and the pages committed to DRAM serially in slice order, so the
// resulting measurement and memory image are byte-identical to calling
// LaunchUpdateData once per pfn. On error nothing past the parallel phase
// is committed.
func (f *Firmware) LaunchUpdatePages(h Handle, pfns []hw.PFN) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateLaunching {
		return fmt.Errorf("%w: launch_update in %v", ErrBadState, c.state)
	}
	pages := make([][hw.PageSize]byte, len(pfns))
	tags := make([][32]byte, len(pfns))
	if err := f.pool.ForEach(len(pfns), func(i int) error {
		pfn := pfns[i]
		if err := f.ctl.Mem.ReadRaw(pfn.Addr(), pages[i][:]); err != nil {
			return err
		}
		tags[i] = transportMAC([32]byte(c.kvek), uint64(pfn), pages[i][:])
		c.cipher.EncryptPage(pfn.Addr(), pages[i][:])
		return nil
	}); err != nil {
		return err
	}
	for i := range pfns {
		c.measure = measureChain(c.measure, tags[i])
		f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
		f.command("launch-update-data", h)
		if err := f.ctl.FirmwareWrite(pfns[i].Addr(), pages[i][:]); err != nil {
			return err
		}
	}
	return nil
}

// SendUpdatePages is the bulk form of SendUpdate: it produces one
// transport packet per pfn, with the per-page decrypt/seal work spread
// across the worker pool. Sequence numbers are pre-assigned by slice index
// and the measurement chain folded serially afterwards, so the packets and
// the measurement are byte-identical to calling SendUpdate once per pfn in
// the same order.
func (f *Firmware) SendUpdatePages(h Handle, pfns []hw.PFN) ([]Packet, error) {
	c, err := f.ctx(h)
	if err != nil {
		return nil, err
	}
	if c.state != StateSending {
		return nil, fmt.Errorf("%w: send_update in %v", ErrBadState, c.state)
	}
	base := c.seq
	pkts := make([]Packet, len(pfns))
	if err := f.pool.ForEach(len(pfns), func(i int) error {
		var page [hw.PageSize]byte
		if err := f.ctl.Mem.ReadRaw(pfns[i].Addr(), page[:]); err != nil {
			return err
		}
		c.cipher.DecryptPage(pfns[i].Addr(), page[:])
		pkt, err := sealPacket(c.transport, base+uint64(i), page[:])
		if err != nil {
			return err
		}
		pkts[i] = pkt
		return nil
	}); err != nil {
		return nil, err
	}
	c.seq = base + uint64(len(pfns))
	for i := range pkts {
		c.measure = measureChain(c.measure, pkts[i].Tag)
		f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
		f.command("send-update", h)
	}
	return pkts, nil
}

// ReceiveUpdatePages is the bulk form of ReceiveUpdate: packet i lands at
// pfns[i]. Tag verification, transport decryption and Kvek re-encryption
// run across the worker pool; sequence numbers are checked against the
// expected window by index, and the measurement fold plus DRAM commit run
// serially in slice order — byte-identical to the one-page command, except
// that a mid-batch failure commits nothing.
func (f *Firmware) ReceiveUpdatePages(h Handle, pfns []hw.PFN, pkts []Packet) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateReceiving {
		return fmt.Errorf("%w: receive_update in %v", ErrBadState, c.state)
	}
	if len(pfns) != len(pkts) {
		return fmt.Errorf("sev: receive_update_pages: %d pfns, %d packets", len(pfns), len(pkts))
	}
	base := c.seq
	pages := make([][]byte, len(pfns))
	if err := f.pool.ForEach(len(pfns), func(i int) error {
		if pkts[i].Seq != base+uint64(i) {
			return fmt.Errorf("%w: got %d, want %d", ErrBadSequence, pkts[i].Seq, base+uint64(i))
		}
		plain, err := f.openGuarded(c, pkts[i])
		if err != nil {
			return err
		}
		if len(plain) != hw.PageSize {
			return fmt.Errorf("sev: receive_update packet is %d bytes, want a page", len(plain))
		}
		c.cipher.EncryptPage(pfns[i].Addr(), plain)
		pages[i] = plain
		return nil
	}); err != nil {
		return err
	}
	c.seq = base + uint64(len(pfns))
	for i := range pfns {
		c.measure = measureChain(c.measure, pkts[i].Tag)
		f.charge(cycles.SEVCommand + cycles.PageCopy + hw.PageSize/hw.BlockSize*cycles.AESBlockSEV)
		f.command("receive-update", h)
		if err := f.ctl.FirmwareWrite(pfns[i].Addr(), pages[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReceiveFinish verifies the accumulated measurement against the
// sender's Mvm and makes the context runnable.
func (f *Firmware) ReceiveFinish(h Handle, expect Measurement) error {
	c, err := f.ctx(h)
	if err != nil {
		return err
	}
	if c.state != StateReceiving {
		return fmt.Errorf("%w: receive_finish in %v", ErrBadState, c.state)
	}
	if c.measure != expect {
		if f.auditing() {
			f.audit("measurement-mismatch", c.asid,
				fmt.Sprintf("receive_finish on handle %d: migrated image does not match sender's Mvm", h))
		}
		return ErrBadMeasurement
	}
	f.setState(c, StateRunning)
	f.charge(cycles.SEVCommand)
	f.command("receive-finish", h)
	return nil
}
