package kv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// memDev is an in-memory BlockDev for unit tests; the integration path
// through the real protected front-ends is exercised in
// examples/kvstore and the root integration tests.
type memDev struct {
	data []byte
}

func newMemDev(sectors int) *memDev { return &memDev{data: make([]byte, sectors*SectorSize)} }

func (m *memDev) WriteSectors(lba uint64, data []byte) error {
	if int(lba)*SectorSize+len(data) > len(m.data) {
		return errors.New("memdev: out of range")
	}
	copy(m.data[lba*SectorSize:], data)
	return nil
}

func (m *memDev) ReadSectors(lba uint64, buf []byte) error {
	if int(lba)*SectorSize+len(buf) > len(m.data) {
		return errors.New("memdev: out of range")
	}
	copy(buf, m.data[lba*SectorSize:])
	return nil
}

func TestPutGetDelete(t *testing.T) {
	s, err := Open(newMemDev(64), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", []byte("balance=100")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bob", []byte("balance=250")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("alice")
	if err != nil || string(v) != "balance=100" {
		t.Fatalf("get alice: %q %v", v, err)
	}
	// Overwrite.
	if err := s.Put("alice", []byte("balance=50")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("alice")
	if string(v) != "balance=50" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := s.Delete("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("bob"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestReplayRecoversState(t *testing.T) {
	dev := newMemDev(128)
	s, _ := Open(dev, 4, 100)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k3")
	s.Put("k5", []byte("updated"))

	// "Reboot": reopen over the same device.
	s2, err := Open(dev, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("recovered %d keys, want 9", s2.Len())
	}
	if _, err := s2.Get("k3"); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone not replayed")
	}
	v, err := s2.Get("k5")
	if err != nil || string(v) != "updated" {
		t.Fatalf("k5 = %q, %v", v, err)
	}
	if s2.UsedSectors() != s.UsedSectors() {
		t.Fatal("log length mismatch after replay")
	}
}

func TestStoreFull(t *testing.T) {
	s, _ := Open(newMemDev(8), 0, 4)
	big := bytes.Repeat([]byte{1}, 3*SectorSize)
	if err := s.Put("a", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", big); err == nil {
		t.Fatal("overfull store accepted a record")
	}
}

func TestCorruptLogDetected(t *testing.T) {
	dev := newMemDev(16)
	s, _ := Open(dev, 0, 16)
	s.Put("x", []byte("y"))
	dev.data[0] ^= 0xFF // smash the magic
	if _, err := Open(dev, 0, 16); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := Open(newMemDev(8), 0, 8)
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestDeleteTombstoneReplay is the regression test for the old conflated
// semantics, where Delete was Put(key, nil): an empty value used to act
// as a deletion, and a deletion replayed as an empty value. Tombstones
// are now a distinct record type.
func TestDeleteTombstoneReplay(t *testing.T) {
	dev := newMemDev(128)
	s, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store, phase string) {
		t.Helper()
		if _, err := s.Get("gone"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: deleted key resurrected: %v", phase, err)
		}
		v, err := s.Get("empty")
		if err != nil {
			t.Fatalf("%s: empty value lost: %v", phase, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s: empty value = %q", phase, v)
		}
		if s.Len() != 1 {
			t.Fatalf("%s: len %d, want 1 (keys %v)", phase, s.Len(), s.Keys())
		}
	}
	check(s, "live")

	s2, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	check(s2, "replayed")
	if s2.UsedSectors() != s.UsedSectors() {
		t.Fatal("log length mismatch after replay")
	}

	// Deleting an absent key is a logged no-op that replays cleanly.
	if err := s2.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dev, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	check(s3, "replayed-after-noop-delete")
}

func TestPropertyPutGetReplay(t *testing.T) {
	f := func(pairs map[string]string) bool {
		dev := newMemDev(2048)
		s, err := Open(dev, 0, 2048)
		if err != nil {
			return false
		}
		want := map[string]string{}
		for k, v := range pairs {
			if k == "" || len(k) > 64 || len(v) > 256 {
				continue
			}
			if err := s.Put(k, []byte(v)); err != nil {
				return false
			}
			want[k] = v
		}
		s2, err := Open(dev, 0, 2048)
		if err != nil {
			return false
		}
		if s2.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, err := s2.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
