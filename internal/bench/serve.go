package bench

import (
	"fmt"
	"io"
	"strings"

	"fidelius/internal/core"
	"fidelius/internal/serve"
	"fidelius/internal/xen"
)

// Serving sweep: the multi-tenant KV front end driven at increasing
// open-loop offered rates. Because arrivals never slow down for the
// server, the sweep exposes the knee directly — sustained throughput
// tracks the offered rate until the put path saturates, after which
// completed ops plateau and the arrival-to-response quantiles absorb the
// growing queue instead. A closed-loop generator would show neither.
//
// Since the group-commit work the sweep also reports disk seeks per op
// (from the xen.disk_seeks counters the blkio seek model exports): the
// knee moving is only meaningful if the seeks column falls with it.

// ServeRow is one offered rate evaluated end to end.
type ServeRow struct {
	Rate       float64 // offered, ops per Mcycle per tenant
	Ops        uint64  // completed
	Throughput float64 // completed ops per Mcycle (fleet)
	P50        float64 // arrival-to-response cycles
	P99        float64
	Timeouts   uint64  // ops past their deadline
	Seeks      uint64  // non-sequential disk requests, fleet total
	SeeksPerOp float64 // seeks / completed ops
	// CacheHitPct is the guest read cache's hit rate across the fleet,
	// as a percentage of store lookups (overlay answers excluded).
	CacheHitPct float64
	// Holds counts doorbells the fill handler answered empty to let
	// arrivals accumulate into a deeper group commit.
	Holds   uint64
	P50Pass bool // stock serve-p50 objective verdict
	P99Pass bool
}

// serveSweepConfig is the per-rate scenario shape (small enough that the
// whole sweep stays in benchmark time). putFrac/delFrac zero means the
// package-default mix.
func serveSweepConfig(rate, putFrac, delFrac float64) serve.Config {
	return serve.Config{
		Tenants:          4,
		ClientsPerTenant: 16,
		OpsPerClient:     2,
		RatePerMCycle:    rate,
		PutFrac:          putFrac,
		DelFrac:          delFrac,
		Seed:             7,
	}
}

// getHeavySweepConfig is the read-dominated shape: a hot 3-key-per-client
// working set and a 93% get mix, so repeated reads land in the guest's
// read cache (a larger per-client op count gives reuse a chance to show).
func getHeavySweepConfig(rate float64) serve.Config {
	return serve.Config{
		Tenants:          4,
		ClientsPerTenant: 8,
		OpsPerClient:     8,
		RatePerMCycle:    rate,
		PutFrac:          0.05,
		DelFrac:          0.02,
		KeySpace:         3,
		Seed:             7,
	}
}

// defaultSweepRates covers well below the old seek-bound knee
// (~1.4 ops/Mcycle fleet) up past the group-commit knee, so before/after
// comparisons land on the same offered points.
var defaultSweepRates = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}

// ServeSweep runs the serving scenario once per offered rate, each on a
// fresh protected platform, with the package-default op mix.
func ServeSweep(rates []float64) ([]ServeRow, error) {
	return sweepShape(rates, func(rate float64) serve.Config {
		return serveSweepConfig(rate, 0, 0)
	})
}

// ServePutHeavySweep is ServeSweep on a mutation-dominated mix (70% put,
// 10% delete) — the workload whose knee the kv group commit moves.
func ServePutHeavySweep(rates []float64) ([]ServeRow, error) {
	return sweepShape(rates, func(rate float64) serve.Config {
		return serveSweepConfig(rate, 0.7, 0.1)
	})
}

// ServeGetHeavySweep is the read-dominated counterpart: a hot working
// set driven at 93% gets, where the guest read cache's hit rate (the
// hit% column) is the number to watch.
func ServeGetHeavySweep(rates []float64) ([]ServeRow, error) {
	return sweepShape(rates, getHeavySweepConfig)
}

func sweepShape(rates []float64, shape func(rate float64) serve.Config) ([]ServeRow, error) {
	if len(rates) == 0 {
		rates = defaultSweepRates
	}
	rows := make([]ServeRow, 0, len(rates))
	for _, rate := range rates {
		m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
		if err != nil {
			return nil, err
		}
		x, err := xen.New(m)
		if err != nil {
			return nil, err
		}
		f, err := core.Enable(x)
		if err != nil {
			return nil, err
		}
		svc, err := serve.New(f, shape(rate))
		if err != nil {
			return nil, err
		}
		for dom, err := range svc.Run() {
			if err != nil {
				return nil, fmt.Errorf("rate %.3g, domain %d: %v", rate, dom, err)
			}
		}
		row := ServeRow{Rate: rate}
		for _, r := range svc.Reports() {
			row.Ops += r.Ops
			row.Timeouts += r.Timeouts
		}
		if el := svc.Elapsed(); el > 0 {
			row.Throughput = float64(row.Ops) / (float64(el) / 1e6)
		}
		tel := x.M.Ctl.Telem.M
		row.Seeks = tel.DiskSeekReads.Value() + tel.DiskSeekWrites.Value()
		if row.Ops > 0 {
			row.SeeksPerOp = float64(row.Seeks) / float64(row.Ops)
		}
		if hits, misses := tel.KVCacheHits.Value(), tel.KVCacheMisses.Value(); hits+misses > 0 {
			row.CacheHitPct = 100 * float64(hits) / float64(hits+misses)
		}
		row.Holds = tel.ServeHolds.Value()
		for _, ev := range svc.EvaluateSLOs() {
			switch ev.Name {
			case "serve-p50":
				row.P50, row.P50Pass = ev.Value, ev.Pass
			case "serve-p99":
				row.P99, row.P99Pass = ev.Value, ev.Pass
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatServeSweep renders the sweep as a table.
func FormatServeSweep(title string, rows []ServeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving: %s\n", title)
	fmt.Fprintf(&b, "%10s %6s %12s %12s %12s %8s %9s %6s %6s %6s %6s\n",
		"ops/Mc/ten", "ops", "done/Mcyc", "p50(cyc)", "p99(cyc)", "tmo", "seeks/op", "hit%", "holds", "p50", "p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.3g %6d %12.3f %12.0f %12.0f %8d %9.2f %6.1f %6d %6s %6s\n",
			r.Rate, r.Ops, r.Throughput, r.P50, r.P99, r.Timeouts, r.SeeksPerOp,
			r.CacheHitPct, r.Holds, verdict(r.P50Pass), verdict(r.P99Pass))
	}
	return b.String()
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// WriteServeCSV emits the sweep as CSV.
func WriteServeCSV(w io.Writer, rows []ServeRow) error {
	if _, err := fmt.Fprintln(w, "rate_per_mcycle,ops,throughput_per_mcycle,p50_cycles,p99_cycles,timeouts,seeks,seeks_per_op,cache_hit_pct,holds,p50_pass,p99_pass"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%g,%d,%f,%f,%f,%d,%d,%f,%f,%d,%t,%t\n",
			r.Rate, r.Ops, r.Throughput, r.P50, r.P99, r.Timeouts, r.Seeks, r.SeeksPerOp, r.CacheHitPct, r.Holds, r.P50Pass, r.P99Pass); err != nil {
			return err
		}
	}
	return nil
}
