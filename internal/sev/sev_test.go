package sev

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"fidelius/internal/hw"
)

func newFW(t *testing.T, pages int) (*Firmware, *hw.Controller) {
	t.Helper()
	ctl := hw.NewController(hw.NewMemory(pages), 64)
	fw := NewFirmware(ctl)
	if err := fw.Init(); err != nil {
		t.Fatal(err)
	}
	return fw, ctl
}

func TestInitRequired(t *testing.T) {
	ctl := hw.NewController(hw.NewMemory(4), 0)
	fw := NewFirmware(ctl)
	if _, err := fw.LaunchStart(0); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("want ErrNotInitialized, got %v", err)
	}
	if _, err := fw.PublicKey(); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("want ErrNotInitialized, got %v", err)
	}
	if err := fw.Init(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Init(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestLaunchLifecycle(t *testing.T) {
	fw, ctl := newFW(t, 16)
	h, err := fw.LaunchStart(0x1)
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte("kernel page bits"), hw.PageSize/16)
	if err := ctl.Mem.WriteRaw(hw.PFN(2).Addr(), plain); err != nil {
		t.Fatal(err)
	}
	if err := fw.LaunchUpdateData(h, 2); err != nil {
		t.Fatal(err)
	}
	// DRAM now holds ciphertext.
	raw := make([]byte, hw.PageSize)
	ctl.Mem.ReadRaw(hw.PFN(2).Addr(), raw)
	if bytes.Equal(raw, plain) {
		t.Fatal("launch_update left plaintext in DRAM")
	}
	m, err := fw.LaunchMeasure(h)
	if err != nil {
		t.Fatal(err)
	}
	if m == (Measurement{}) {
		t.Fatal("empty measurement after update")
	}
	if err := fw.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	// Activate installs the key; guest reads see plaintext.
	if err := fw.Activate(h, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, hw.PageSize)
	if err := ctl.Read(hw.Access{PA: hw.PFN(2).Addr(), Encrypted: true, ASID: 3}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("activated guest cannot decrypt its launched image")
	}
	// State machine: update after finish is illegal.
	if err := fw.LaunchUpdateData(h, 2); !errors.Is(err, ErrBadState) {
		t.Fatalf("want ErrBadState, got %v", err)
	}
}

func TestActivateBindings(t *testing.T) {
	fw, _ := newFW(t, 8)
	h1, _ := fw.LaunchStart(0)
	h2, _ := fw.LaunchStart(0)
	if err := fw.Activate(h1, 1); err != nil {
		t.Fatal(err)
	}
	if err := fw.Activate(h2, 1); !errors.Is(err, ErrASIDInUse) {
		t.Fatalf("want ErrASIDInUse, got %v", err)
	}
	if err := fw.Activate(h1, 2); err == nil {
		t.Fatal("re-activating a handle under a different ASID must fail")
	}
	if err := fw.Activate(h1, 1); err != nil { // idempotent re-activate
		t.Fatal(err)
	}
	// The key-sharing attack path: deactivate the victim, then bind its
	// handle to the attacker's ASID. The firmware permits this — it
	// cannot know better; Fidelius prevents it by owning the metadata.
	if err := fw.Deactivate(h1); err != nil {
		t.Fatal(err)
	}
	if err := fw.Activate(h1, 9); err != nil {
		t.Fatalf("rebinding after deactivate should be permitted by firmware: %v", err)
	}
	if err := fw.Decommission(h1); !errors.Is(err, ErrActive) {
		t.Fatalf("decommission while active: want ErrActive, got %v", err)
	}
	fw.Deactivate(h1)
	if err := fw.Decommission(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Lookup(h1); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("context survived decommission: %v", err)
	}
	if err := fw.Activate(h2, 0); err == nil {
		t.Fatal("asid 0 must be rejected")
	}
}

func TestOwnerImageReceiveBoot(t *testing.T) {
	// Full VM-preparing + bootup protocol from Sections 4.3.2-4.3.3.
	fw, ctl := newFW(t, 64)
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	platformPub, _ := fw.PublicKey()
	kernel := bytes.Repeat([]byte("FIDELIUS-KERNEL!"), 600) // ~2.3 pages
	img, kwrap, err := owner.PrepareImage(platformPub, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if img.NumPages() != 3 {
		t.Fatalf("image pages = %d, want 3", img.NumPages())
	}

	h, err := fw.ReceiveStart(kwrap, owner.PublicKey(), owner.Nonce())
	if err != nil {
		t.Fatal(err)
	}
	base := hw.PFN(10)
	for i, pkt := range img.Pages {
		if err := fw.ReceiveUpdate(h, base+hw.PFN(i), pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.ReceiveFinish(h, img.Measurement); err != nil {
		t.Fatal(err)
	}
	if err := fw.Activate(h, 4); err != nil {
		t.Fatal(err)
	}
	// The guest sees its kernel in plaintext; DRAM holds ciphertext.
	got := make([]byte, len(kernel))
	if err := ctl.Read(hw.Access{PA: base.Addr(), Encrypted: true, ASID: 4}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, kernel) {
		t.Fatal("booted kernel mismatch")
	}
	raw := make([]byte, len(kernel))
	ctl.Mem.ReadRaw(base.Addr(), raw)
	if bytes.Contains(raw, []byte("FIDELIUS-KERNEL!")) {
		t.Fatal("kernel visible in DRAM")
	}
}

func TestReceiveDetectsTamper(t *testing.T) {
	fw, _ := newFW(t, 64)
	owner, _ := NewOwner()
	platformPub, _ := fw.PublicKey()
	kernel := bytes.Repeat([]byte{7}, hw.PageSize)
	img, kwrap, err := owner.PrepareImage(platformPub, kernel)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fw.ReceiveStart(kwrap, owner.PublicKey(), owner.Nonce())
	if err != nil {
		t.Fatal(err)
	}
	// Hypervisor tampers the ciphertext while loading it.
	bad := img.Pages[0]
	bad.Data = append([]byte{}, bad.Data...)
	bad.Data[100] ^= 0xFF
	if err := fw.ReceiveUpdate(h, 5, bad); !errors.Is(err, ErrBadTag) {
		t.Fatalf("want ErrBadTag, got %v", err)
	}
	// Replaying an already-consumed packet is rejected by the sequence
	// check before it can touch the measurement chain.
	h2, err := fw.ReceiveStart(kwrap, owner.PublicKey(), owner.Nonce())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ReceiveUpdate(h2, 5, img.Pages[0]); err != nil {
		t.Fatal(err)
	}
	if err := fw.ReceiveUpdate(h2, 6, img.Pages[0]); !errors.Is(err, ErrBadSequence) {
		t.Fatalf("want ErrBadSequence on replay, got %v", err)
	}
	// A forged final measurement still fails RECEIVE_FINISH.
	badMvm := img.Measurement
	badMvm[0] ^= 0xFF
	if err := fw.ReceiveFinish(h2, badMvm); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("want ErrBadMeasurement, got %v", err)
	}
}

func TestWrongOwnerKeyCannotUnwrap(t *testing.T) {
	fw, _ := newFW(t, 8)
	owner, _ := NewOwner()
	mallory, _ := NewOwner()
	platformPub, _ := fw.PublicKey()
	_, kwrap, err := owner.PrepareImage(platformPub, make([]byte, hw.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	// A hypervisor presenting the wrong origin identity fails to unwrap.
	if _, err := fw.ReceiveStart(kwrap, mallory.PublicKey(), owner.Nonce()); !errors.Is(err, ErrBadWrap) {
		t.Fatalf("want ErrBadWrap, got %v", err)
	}
	// Wrong nonce also fails.
	if _, err := fw.ReceiveStart(kwrap, owner.PublicKey(), []byte("bad")); !errors.Is(err, ErrBadWrap) {
		t.Fatalf("want ErrBadWrap, got %v", err)
	}
}

func TestMigrationSendReceive(t *testing.T) {
	// Origin and target are two firmwares over two machines.
	origin, octl := newFW(t, 32)
	target, tctl := newFW(t, 32)

	// Launch a multi-page guest on the origin with known content.
	h, _ := origin.LaunchStart(0)
	srcPFNs := []hw.PFN{3, 4, 5}
	secrets := make([][]byte, len(srcPFNs))
	for i, pfn := range srcPFNs {
		secrets[i] = bytes.Repeat([]byte(fmt.Sprintf("migrate me %04d!", i)), hw.PageSize/16)
		octl.Mem.WriteRaw(pfn.Addr(), secrets[i])
		if err := origin.LaunchUpdateData(h, pfn); err != nil {
			t.Fatal(err)
		}
	}
	if err := origin.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}

	// SEND on origin, wrapped for the target platform.
	targetPub, _ := target.PublicKey()
	nonce := []byte("migration-nonce")
	kwrap, err := origin.SendStart(h, targetPub, nonce)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]Packet, len(srcPFNs))
	for i, pfn := range srcPFNs {
		if pkts[i], err = origin.SendUpdate(h, pfn); err != nil {
			t.Fatal(err)
		}
	}
	mvm, err := origin.SendFinish(h)
	if err != nil {
		t.Fatal(err)
	}

	// RECEIVE on target.
	originPub, _ := origin.PublicKey()
	th, err := target.ReceiveStart(kwrap, originPub, nonce)
	if err != nil {
		t.Fatal(err)
	}
	dstPFNs := []hw.PFN{7, 8, 9}
	// Out-of-order delivery is rejected by the sequence check.
	if err := target.ReceiveUpdate(th, dstPFNs[1], pkts[1]); !errors.Is(err, ErrBadSequence) {
		t.Fatalf("want ErrBadSequence for out-of-order packet, got %v", err)
	}
	for i, pfn := range dstPFNs {
		if err := target.ReceiveUpdate(th, pfn, pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying a consumed packet is rejected too.
	if err := target.ReceiveUpdate(th, dstPFNs[0], pkts[0]); !errors.Is(err, ErrBadSequence) {
		t.Fatalf("want ErrBadSequence for replayed packet, got %v", err)
	}
	if err := target.ReceiveFinish(th, mvm); err != nil {
		t.Fatal(err)
	}
	if err := target.Activate(th, 2); err != nil {
		t.Fatal(err)
	}
	for i, pfn := range dstPFNs {
		got := make([]byte, hw.PageSize)
		if err := tctl.Read(hw.Access{PA: pfn.Addr(), Encrypted: true, ASID: 2}, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secrets[i]) {
			t.Fatalf("migrated page %d mismatch", i)
		}
		// The transported packets themselves are ciphertext.
		if bytes.Contains(pkts[i].Data, []byte("migrate me")) {
			t.Fatalf("transport packet %d holds plaintext", i)
		}
	}
	// SEND_FINISH retired the origin context: further updates illegal.
	if _, err := origin.SendUpdate(h, srcPFNs[0]); !errors.Is(err, ErrBadState) {
		t.Fatalf("want ErrBadState after finish, got %v", err)
	}
}

func TestSendCancelResumesGuest(t *testing.T) {
	// SEND_CANCEL aborts an in-progress migration and returns the context
	// to the running state with the transport session scrubbed.
	origin, octl := newFW(t, 32)
	target, _ := newFW(t, 32)
	h, _ := origin.LaunchStart(0)
	octl.Mem.WriteRaw(hw.PFN(3).Addr(), bytes.Repeat([]byte{9}, hw.PageSize))
	if err := origin.LaunchUpdateData(h, 3); err != nil {
		t.Fatal(err)
	}
	if err := origin.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	targetPub, _ := target.PublicKey()
	if _, err := origin.SendStart(h, targetPub, []byte("cancelled-run!")); err != nil {
		t.Fatal(err)
	}
	if _, err := origin.SendUpdate(h, 3); err != nil {
		t.Fatal(err)
	}
	if err := origin.SendCancel(h); err != nil {
		t.Fatal(err)
	}
	// Back to running: a fresh SEND session starts from scratch.
	if _, err := origin.SendUpdate(h, 3); !errors.Is(err, ErrBadState) {
		t.Fatalf("want ErrBadState outside a session, got %v", err)
	}
	if err := origin.SendCancel(h); !errors.Is(err, ErrBadState) {
		t.Fatalf("want ErrBadState cancelling outside a session, got %v", err)
	}
	if _, err := origin.SendStart(h, targetPub, []byte("second-attempt")); err != nil {
		t.Fatalf("fresh SEND after cancel: %v", err)
	}
	pkt, err := origin.SendUpdate(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Seq != 0 {
		t.Fatalf("cancel must reset the transport sequence, got %d", pkt.Seq)
	}
}

func TestHelperContextsIOPath(t *testing.T) {
	// The s-dom / r-dom construction of Section 4.3.5: helper contexts
	// sharing the guest's Kvek, one in sending and one in receiving
	// state, with a common TEK agreed platform-to-itself.
	fw, ctl := newFW(t, 64)
	h, _ := fw.LaunchStart(0)
	if err := fw.LaunchFinish(h); err != nil {
		t.Fatal(err)
	}
	if err := fw.Activate(h, 5); err != nil {
		t.Fatal(err)
	}

	selfPub, _ := fw.PublicKey()
	nonce := []byte("io-session")
	sdom, err := fw.LaunchHelper(h)
	if err != nil {
		t.Fatal(err)
	}
	kwrap, err := fw.SendStart(sdom, selfPub, nonce)
	if err != nil {
		t.Fatal(err)
	}
	rdom, err := fw.ReceiveHelperStart(h, kwrap, selfPub, nonce)
	if err != nil {
		t.Fatal(err)
	}

	// Guest writes plaintext into its encrypted buffer Md.
	md := hw.PFN(20).Addr()
	data := bytes.Repeat([]byte("disk sector data"), 32) // 512 bytes
	if err := ctl.Write(hw.Access{PA: md, Encrypted: true, ASID: 5}, data); err != nil {
		t.Fatal(err)
	}
	// I/O write: SEND_UPDATE re-encrypts Kvek -> TEK into a packet for
	// the shared buffer.
	pkt, err := fw.SendUpdateBuf(sdom, md, len(data), 42)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pkt.Data, []byte("disk sector data")) {
		t.Fatal("I/O packet leaks plaintext")
	}
	// I/O read: RECEIVE_UPDATE re-encrypts TEK -> Kvek into another
	// guest buffer.
	dst := hw.PFN(21).Addr()
	if err := fw.ReceiveUpdateBuf(rdom, dst, pkt); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := ctl.Read(hw.Access{PA: dst, Encrypted: true, ASID: 5}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("I/O round trip through s-dom/r-dom mismatch")
	}
	// Alignment enforcement.
	if _, err := fw.SendUpdateBuf(sdom, md+1, 16, 0); !errors.Is(err, ErrNotAligned) {
		t.Fatalf("want ErrNotAligned, got %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateInvalid: "invalid", StateLaunching: "launching", StateRunning: "running",
		StateSending: "sending", StateReceiving: "receiving", StateSent: "sent",
		State(42): "state(42)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestPropertyWrapUnwrapRoundTrip(t *testing.T) {
	f := func(tek, tik [32]byte, nonce []byte) bool {
		kekSeed := append([]byte("shared"), nonce...)
		kek := deriveKEK(kekSeed, nonce)
		w, err := wrapKeys(kek, TransportKeys{TEK: tek, TIK: tik})
		if err != nil {
			return false
		}
		got, err := unwrapKeys(kek, w)
		if err != nil {
			return false
		}
		return got.TEK == tek && got.TIK == tik
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransportRoundTripAndTagging(t *testing.T) {
	tk := TransportKeys{}
	copy(tk.TEK[:], bytes.Repeat([]byte{1}, 32))
	copy(tk.TIK[:], bytes.Repeat([]byte{2}, 32))
	f := func(seq uint64, payload []byte) bool {
		pkt, err := sealPacket(tk, seq, payload)
		if err != nil {
			return false
		}
		plain, err := openPacket(tk, pkt)
		if err != nil {
			return false
		}
		if !bytes.Equal(plain, payload) {
			return false
		}
		if len(pkt.Data) > 0 {
			bad := pkt
			bad.Data = append([]byte{}, pkt.Data...)
			bad.Data[0] ^= 1
			if _, err := openPacket(tk, bad); err == nil {
				return false // tamper must be detected
			}
		}
		// Changing the seq breaks the tag too.
		bad2 := pkt
		bad2.Seq++
		if _, err := openPacket(tk, bad2); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
