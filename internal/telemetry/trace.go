package telemetry

import "sync"

// DefaultTraceCap is the tracer ring capacity used when none is given:
// large enough to hold a full demo run, small enough to bound memory.
const DefaultTraceCap = 1 << 16

// Tracer is a bounded ring buffer of events. When full, the oldest events
// are overwritten (the interesting window is usually the most recent one),
// and Dropped reports how many were lost. Recording takes a short mutex;
// the simulator is effectively single-threaded per machine (the vCPU
// handoff is synchronous), so the lock is uncontended in practice but
// keeps concurrent recorders safe under the race detector.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; next % cap is the write slot

	// Spans live in their own ring so a flood of fine-grained events
	// cannot evict the causal skeleton (there are far fewer spans than
	// events). Same overwrite-oldest policy.
	sbuf  []Span
	snext uint64
}

// NewTracer returns a tracer holding at most capacity events
// (DefaultTraceCap when capacity <= 0) and as many spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity), sbuf: make([]Span, capacity)}
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	e.Seq = t.next
	t.buf[t.next%uint64(len(t.buf))] = e
	t.next++
	t.mu.Unlock()
}

func (t *Tracer) recordSpan(s Span) {
	t.mu.Lock()
	t.sbuf[t.snext%uint64(len(t.sbuf))] = s
	t.snext++
	t.mu.Unlock()
}

// Cap reports the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total reports how many events were ever recorded, including overwritten
// ones.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped reports how many events were overwritten by wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// SpanTotal reports how many spans were ever recorded, including
// overwritten ones.
func (t *Tracer) SpanTotal() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snext
}

// Spans returns the retained finished spans, oldest-first (close order).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.snext
	capacity := uint64(len(t.sbuf))
	if n <= capacity {
		out := make([]Span, n)
		copy(out, t.sbuf[:n])
		return out
	}
	out := make([]Span, 0, capacity)
	start := n % capacity
	out = append(out, t.sbuf[start:]...)
	out = append(out, t.sbuf[:start]...)
	return out
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capacity := uint64(len(t.buf))
	if n <= capacity {
		out := make([]Event, n)
		copy(out, t.buf[:n])
		return out
	}
	out := make([]Event, 0, capacity)
	start := n % capacity // oldest retained slot
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}
