package cycles

import (
	"sync"
	"testing"
)

// TestClockAttachFold covers the aggregating clock behind per-vCPU cycle
// counters: attached parts contribute to Total while live, and Fold merges
// a part back into the base without losing or double-counting cycles.
func TestClockAttachFold(t *testing.T) {
	base := &Counter{}
	k := NewClock(base)
	if k.Base() != base {
		t.Fatal("Base() does not return the wrapped counter")
	}
	base.Charge(100)
	if k.Total() != 100 {
		t.Fatalf("Total() = %d, want 100", k.Total())
	}

	a := k.Attach()
	b := k.Attach()
	a.Charge(10)
	b.Charge(20)
	if k.Total() != 130 {
		t.Fatalf("Total() with live parts = %d, want 130", k.Total())
	}
	// The base counter alone has not moved.
	if base.Total() != 100 {
		t.Fatalf("base = %d, want 100", base.Total())
	}

	k.Fold(a)
	if base.Total() != 110 {
		t.Fatalf("base after fold = %d, want 110", base.Total())
	}
	if k.Total() != 130 {
		t.Fatalf("Total() after fold = %d, want 130 (fold must preserve the sum)", k.Total())
	}
	k.Fold(b)
	if base.Total() != 130 || k.Total() != 130 {
		t.Fatalf("after folding all parts: base=%d total=%d, want 130/130", base.Total(), k.Total())
	}

	// Folding an unknown or nil counter must not corrupt the sum.
	k.Fold(&Counter{})
	k.Fold(nil)
	if k.Total() != 130 {
		t.Fatalf("Total() after no-op folds = %d, want 130", k.Total())
	}
}

// TestClockConcurrent attaches one part per goroutine, charges from all of
// them while a reader polls Total, and checks the final sum — the exact
// traffic pattern of parallel domain runners against the machine clock.
func TestClockConcurrent(t *testing.T) {
	const (
		workers = 8
		iters   = 1000
	)
	base := &Counter{}
	k := NewClock(base)
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		// Total must be monotonic while parts only charge (no folds yet).
		defer rd.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := k.Total()
			if cur < last {
				t.Errorf("Total went backwards: %d -> %d", last, cur)
				return
			}
			last = cur
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := k.Attach()
			for i := 0; i < iters; i++ {
				c.Charge(3)
			}
			k.Fold(c)
		}()
	}
	wg.Wait()
	close(stop)
	rd.Wait()
	want := uint64(workers * iters * 3)
	if k.Total() != want {
		t.Fatalf("Total() = %d, want %d", k.Total(), want)
	}
	if base.Total() != want {
		t.Fatalf("base after all folds = %d, want %d", base.Total(), want)
	}
}

// TestCounterAtomic pins the Counter's atomic operations used by
// concurrent charging: Sub against an earlier snapshot and Reset/SetTotal
// round trips.
func TestCounterAtomic(t *testing.T) {
	c := &Counter{}
	c.Charge(50)
	start := c.Total()
	c.Charge(25)
	if d := c.Sub(start); d != 25 {
		t.Fatalf("Sub = %d, want 25", d)
	}
	c.SetTotal(7)
	if c.Total() != 7 {
		t.Fatalf("SetTotal/Total = %d, want 7", c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Reset left %d", c.Total())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Charge(1)
			}
		}()
	}
	wg.Wait()
	if c.Total() != 4000 {
		t.Fatalf("concurrent charges lost: %d, want 4000", c.Total())
	}
}
