package mmu

import (
	"testing"

	"fidelius/internal/hw"
)

func TestDirtyLogBasics(t *testing.T) {
	l := NewDirtyLog(130) // straddles two bitmap words plus a partial one
	if l.Enabled() {
		t.Fatal("new log must start disabled")
	}
	if l.Mark(5) {
		t.Fatal("disabled log must not mark")
	}
	l.Start()
	if !l.Mark(5) || !l.Mark(64) || !l.Mark(129) {
		t.Fatal("in-range marks must record")
	}
	if l.Mark(5) {
		t.Fatal("second mark of the same gfn must report not-new")
	}
	if l.Mark(130) || l.Mark(1<<40) {
		t.Fatal("out-of-range gfn must be ignored")
	}
	if l.Count() != 3 {
		t.Fatalf("count = %d, want 3", l.Count())
	}
	if !l.Test(64) || l.Test(63) {
		t.Fatal("Test disagrees with marks")
	}
	got := l.Collect()
	want := []uint64{5, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("collect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collect = %v, want %v (ascending)", got, want)
		}
	}
	if l.Count() != 0 || len(l.Collect()) != 0 {
		t.Fatal("collect must drain the log")
	}
	// Marks() survives draining: it is the lifetime total.
	if l.Marks() != 3 {
		t.Fatalf("lifetime marks = %d, want 3", l.Marks())
	}
	if !l.Mark(7) {
		t.Fatal("log must keep recording after a drain")
	}
	l.Stop()
	if l.Mark(8) {
		t.Fatal("stopped log must not mark")
	}
}

func TestDirtyLogNilSafe(t *testing.T) {
	var l *DirtyLog
	l.Start()
	l.Stop()
	if l.Enabled() || l.Mark(1) || l.MarkGPA(4096) || l.Test(1) {
		t.Fatal("nil log must be inert")
	}
	if l.Count() != 0 || l.Marks() != 0 || l.Collect() != nil {
		t.Fatal("nil log must be empty")
	}
}

func TestDirtyLogMarkGPA(t *testing.T) {
	l := NewDirtyLog(16)
	l.Start()
	if !l.MarkGPA(3*hw.PageSize + 123) {
		t.Fatal("MarkGPA must mark the containing frame")
	}
	if !l.Test(3) {
		t.Fatal("gfn 3 not marked")
	}
}
