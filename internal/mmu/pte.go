// Package mmu implements the simulator's paging machinery: page-table
// entries, three-level walks, TLBs with ASID tags, and the nested (guest PT
// over NPT) translation AMD-V performs for SEV guests.
//
// Virtual addresses are 39 bits: three 9-bit levels over 4 KiB pages. The
// page-table entry carries the C-bit ("encrypt me") exactly as AMD's SME and
// SEV define it; the nested translation applies the paper's priority rule —
// the guest page table's C-bit takes priority over the nested table's.
package mmu

import (
	"fmt"

	"fidelius/internal/hw"
)

// Flags are PTE permission and attribute bits.
type Flags uint64

const (
	// FlagP marks the entry present.
	FlagP Flags = 1 << 0
	// FlagW permits writes. Supervisor writes to read-only pages fault
	// only while CR0.WP is set — the hinge of Fidelius's type 1 gate.
	FlagW Flags = 1 << 1
	// FlagU permits user-mode access.
	FlagU Flags = 1 << 2
	// FlagC requests encryption of the mapped page (the C-bit).
	FlagC Flags = 1 << 51
	// FlagNX forbids instruction fetch.
	FlagNX Flags = 1 << 63
)

const (
	pfnShift = 12
	pfnMask  = (uint64(1)<<39 - 1) << pfnShift // bits 12..50

	// Levels is the number of page-table levels.
	Levels = 3
	// EntriesPerPage is the number of PTEs in one table page.
	EntriesPerPage = hw.PageSize / 8
	// VABits is the virtual address width.
	VABits = 39
)

// PTE is one page-table entry.
type PTE uint64

// MakePTE builds an entry mapping the frame with the given flags.
func MakePTE(pfn hw.PFN, flags Flags) PTE {
	return PTE((uint64(pfn) << pfnShift & pfnMask) | uint64(flags))
}

// Present reports the P bit.
func (p PTE) Present() bool { return p&PTE(FlagP) != 0 }

// Writable reports the W bit.
func (p PTE) Writable() bool { return p&PTE(FlagW) != 0 }

// User reports the U bit.
func (p PTE) User() bool { return p&PTE(FlagU) != 0 }

// Encrypted reports the C bit.
func (p PTE) Encrypted() bool { return p&PTE(FlagC) != 0 }

// NoExec reports the NX bit.
func (p PTE) NoExec() bool { return p&PTE(FlagNX) != 0 }

// PFN returns the mapped frame number.
func (p PTE) PFN() hw.PFN { return hw.PFN((uint64(p) & pfnMask) >> pfnShift) }

// WithFlags returns the entry with the given flags added.
func (p PTE) WithFlags(f Flags) PTE { return p | PTE(f) }

// WithoutFlags returns the entry with the given flags removed.
func (p PTE) WithoutFlags(f Flags) PTE { return p &^ PTE(f) }

func (p PTE) String() string {
	if !p.Present() {
		return "<not present>"
	}
	s := fmt.Sprintf("pfn=%#x", uint64(p.PFN()))
	if p.Writable() {
		s += " W"
	}
	if p.User() {
		s += " U"
	}
	if p.Encrypted() {
		s += " C"
	}
	if p.NoExec() {
		s += " NX"
	}
	return s
}

// Index returns the page-table index of va at the given level (level 0 is
// the leaf, Levels-1 the root).
func Index(va uint64, level int) int {
	return int(va >> (pfnShift + 9*uint(level)) & (EntriesPerPage - 1))
}

// PageBase masks va down to its page base.
func PageBase(va uint64) uint64 { return va &^ (hw.PageSize - 1) }

// CanonicalVA reports whether va fits the 39-bit address space.
func CanonicalVA(va uint64) bool { return va < 1<<VABits }
