// Package bench is the evaluation harness: it reproduces every table and
// figure of the paper's Section 7 on the simulated platform, comparing the
// three configurations of the paper — original Xen, Fidelius (protection
// without memory encryption), and Fidelius-enc (protection with SME-based
// encryption of all guest memory).
package bench

import (
	"fmt"
	"strings"

	"fidelius/internal/core"
	"fidelius/internal/cycles"
	"fidelius/internal/disk"
	"fidelius/internal/telemetry"
	"fidelius/internal/workload"
	"fidelius/internal/xen"
)

// Configuration names.
const (
	ConfigXen         = "xen"
	ConfigFidelius    = "fidelius"
	ConfigFideliusEnc = "fidelius-enc"
)

// Configs lists the evaluated configurations in presentation order.
var Configs = []string{ConfigXen, ConfigFidelius, ConfigFideliusEnc}

// Platform is one booted benchmark machine with a workload domain.
type Platform struct {
	X *xen.Xen
	F *core.Fidelius // nil for ConfigXen
	D *xen.Domain
}

// NewPlatform boots a machine in the named configuration with one
// (non-SEV, per the paper's SME-based methodology) workload domain.
func NewPlatform(config string, memPages int) (*Platform, error) {
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		return nil, err
	}
	x, err := xen.New(m)
	if err != nil {
		return nil, err
	}
	p := &Platform{X: x}
	if config != ConfigXen {
		if p.F, err = core.Enable(x); err != nil {
			return nil, err
		}
	}
	p.D, err = x.CreateDomain(xen.DomainConfig{Name: "bench", MemPages: memPages})
	if err != nil {
		return nil, err
	}
	if config == ConfigFideliusEnc {
		// Set the C-bits in the nested page tables (Section 7.1's
		// methodology): all subsequent guest memory traffic is
		// encrypted by the SME engine.
		if err := x.Interpose.EnableSME(p.D); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// FigRow is one benchmark's overhead row for Figures 5 and 6, annotated
// with the telemetry counters of the Fidelius-configuration run — the same
// registry metrics every tool reports (gate.type1/2/3, cpu.vmexits).
type FigRow struct {
	Name     string
	Fid      float64 // measured Fidelius overhead (%)
	Enc      float64 // measured Fidelius-enc overhead (%)
	PaperFid float64
	PaperEnc float64

	// Telemetry counters from the Fidelius run.
	Gate1   uint64
	Gate2   uint64
	Gate3   uint64
	VMExits uint64
}

// runSuite measures one suite's overheads across the three configurations.
func runSuite(profiles []workload.Profile, iters int) ([]FigRow, error) {
	var rows []FigRow
	for _, prof := range profiles {
		var results [3]workload.Result
		var fidSnap telemetry.Snapshot
		for i, cfg := range Configs {
			p, err := NewPlatform(cfg, workload.GuestMemPages)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", prof.Name, cfg, err)
			}
			results[i], err = workload.Run(p.X, p.D, prof, iters)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", prof.Name, cfg, err)
			}
			if cfg == ConfigFidelius {
				fidSnap = p.X.M.Ctl.Telem.Reg.Snapshot()
			}
		}
		rows = append(rows, FigRow{
			Name:     prof.Name,
			Fid:      results[1].Overhead(results[0]),
			Enc:      results[2].Overhead(results[0]),
			PaperFid: prof.PaperFid,
			PaperEnc: prof.PaperEnc,
			Gate1:    fidSnap.Counters["gate.type1"],
			Gate2:    fidSnap.Counters["gate.type2"],
			Gate3:    fidSnap.Counters["gate.type3"],
			VMExits:  fidSnap.Counters["cpu.vmexits"],
		})
	}
	return rows, nil
}

// CaptureTelemetry boots a Fidelius platform, runs one SPEC profile, and
// returns the full registry snapshot — the whole metric namespace as
// exercised by a protected run, for export next to the paper tables.
func CaptureTelemetry(iters int) (telemetry.Snapshot, error) {
	p, err := NewPlatform(ConfigFidelius, workload.GuestMemPages)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	if _, err := workload.Run(p.X, p.D, workload.SPEC()[0], iters); err != nil {
		return telemetry.Snapshot{}, err
	}
	return p.X.M.Ctl.Telem.Reg.Snapshot(), nil
}

// SLOReport boots a Fidelius platform, runs one SPEC profile, and
// evaluates the stock latency objectives against the captured
// histograms — the pass/fail table benchtab prints next to the paper
// figures.
func SLOReport(iters int) ([]telemetry.Evaluation, error) {
	snap, err := CaptureTelemetry(iters)
	if err != nil {
		return nil, err
	}
	return telemetry.EvaluateSLOs(snap, telemetry.DefaultObjectives()), nil
}

// Figure5 reproduces the SPEC CPU 2006 overhead figure.
func Figure5(iters int) ([]FigRow, error) { return runSuite(workload.SPEC(), iters) }

// Figure6 reproduces the PARSEC overhead figure.
func Figure6(iters int) ([]FigRow, error) { return runSuite(workload.PARSEC(), iters) }

// Average appends the arithmetic-mean row, as the figures print it.
func Average(rows []FigRow) FigRow {
	var avg FigRow
	avg.Name = "average"
	for _, r := range rows {
		avg.Fid += r.Fid
		avg.Enc += r.Enc
		avg.PaperFid += r.PaperFid
		avg.PaperEnc += r.PaperEnc
		avg.Gate1 += r.Gate1
		avg.Gate2 += r.Gate2
		avg.Gate3 += r.Gate3
		avg.VMExits += r.VMExits
	}
	n := float64(len(rows))
	avg.Fid /= n
	avg.Enc /= n
	avg.PaperFid /= n
	avg.PaperEnc /= n
	un := uint64(len(rows))
	avg.Gate1 /= un
	avg.Gate2 /= un
	avg.Gate3 /= un
	avg.VMExits /= un
	return avg
}

// FormatFigure renders a figure's rows as a table.
func FormatFigure(title string, rows []FigRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %12s %12s %14s %14s\n", "benchmark", "fidelius(%)", "fid-enc(%)", "paper fid(%)", "paper enc(%)")
	all := append(append([]FigRow{}, rows...), Average(rows))
	for _, r := range all {
		fmt.Fprintf(&b, "%-14s %12.2f %12.2f %14.2f %14.2f\n", r.Name, r.Fid, r.Enc, r.PaperFid, r.PaperEnc)
	}
	return b.String()
}

// FioRow is one Table 3 row.
type FioRow struct {
	Pattern       workload.FioPattern
	BaseCycles    float64 // per sector, original Xen
	FidCycles     float64 // per sector, Fidelius AES-NI
	Slowdown      float64 // percent
	PaperSlowdown float64
}

const (
	fioRegionSectors = 192
	fioDomainPages   = 64
	fioDataPages     = 2
	fioPort          = 1
)

// fioKblk is the benchmark's fixed block key.
var fioKblk = func() [32]byte {
	var k [32]byte
	copy(k[:], "fidelius-benchmark-block-key-000")
	return k
}()

// runFio executes one pattern under one configuration.
func runFio(config string, pattern workload.FioPattern, totalSectors int) (workload.FioResult, error) {
	p, err := NewPlatform(config, fioDomainPages)
	if err != nil {
		return workload.FioResult{}, err
	}
	dk := disk.New(fioRegionSectors + 64)
	if config == ConfigXen {
		if _, err := p.X.AttachBlockDevice(p.D, dk, fioDataPages, fioPort); err != nil {
			return workload.FioResult{}, err
		}
	} else {
		if _, err := p.F.AttachProtectedDisk(p.D, dk, fioDataPages, fioPort, nil); err != nil {
			return workload.FioResult{}, err
		}
	}
	if err := p.X.WriteStartInfo(p.D); err != nil {
		return workload.FioResult{}, err
	}
	var res workload.FioResult
	res.Config = config
	open := func(g *xen.GuestEnv) (workload.BlockDev, error) {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return nil, err
		}
		if config == ConfigXen {
			return bf, nil
		}
		return core.NewAESNIFront(g, bf, fioKblk)
	}
	p.X.StartVCPU(p.D, workload.FioGuest(pattern, totalSectors, fioRegionSectors, open, &res))
	if err := p.X.Run(p.D); err != nil {
		return workload.FioResult{}, err
	}
	return res, nil
}

// Table3 reproduces the fio comparison: original Xen vs Fidelius with
// AES-NI I/O protection, across the four patterns.
func Table3(totalSectors int) ([]FioRow, error) {
	var rows []FioRow
	for _, pat := range []workload.FioPattern{RandReadPattern, SeqReadPattern, RandWritePattern, SeqWritePattern} {
		base, err := runFio(ConfigXen, pat, totalSectors)
		if err != nil {
			return nil, fmt.Errorf("fio %v/xen: %w", pat, err)
		}
		fid, err := runFio(ConfigFidelius, pat, totalSectors)
		if err != nil {
			return nil, fmt.Errorf("fio %v/fidelius: %w", pat, err)
		}
		rows = append(rows, FioRow{
			Pattern:       pat,
			BaseCycles:    base.CyclesPerSector(),
			FidCycles:     fid.CyclesPerSector(),
			Slowdown:      fid.Slowdown(base),
			PaperSlowdown: pat.PaperSlowdown(),
		})
	}
	return rows, nil
}

// Pattern aliases in Table 3's row order.
const (
	RandReadPattern  = workload.RandRead
	SeqReadPattern   = workload.SeqRead
	RandWritePattern = workload.RandWrite
	SeqWritePattern  = workload.SeqWrite
)

// FormatTable3 renders Table 3.
func FormatTable3(rows []FioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: fio — Xen vs Fidelius AES-NI\n")
	fmt.Fprintf(&b, "%-12s %16s %16s %12s %14s\n", "operation", "xen (cyc/sec)", "fid (cyc/sec)", "slowdown(%)", "paper(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %16.0f %16.0f %12.2f %14.2f\n", r.Pattern, r.BaseCycles, r.FidCycles, r.Slowdown, r.PaperSlowdown)
	}
	return b.String()
}

// MicroGates holds the gate-cost micro-benchmark (Section 7.2, question 1).
type MicroGates struct {
	Gate1, Gate2, Gate3          uint64
	PaperG1, PaperG2, PaperG3    uint64
	Gate3TLBFlush, Gate3CacheWrt uint64
}

// MicroBenchGates measures the three gate transition costs.
func MicroBenchGates(n int) (MicroGates, error) {
	p, err := NewPlatform(ConfigFidelius, 16)
	if err != nil {
		return MicroGates{}, err
	}
	flush, wrt := core.GateCostBreakdown()
	return MicroGates{
		Gate1:         p.F.BenchGate1(n),
		Gate2:         p.F.BenchGate2(n),
		Gate3:         p.F.BenchGate3(n),
		PaperG1:       306,
		PaperG2:       16,
		PaperG3:       339,
		Gate3TLBFlush: flush,
		Gate3CacheWrt: wrt,
	}, nil
}

// MicroShadow holds the shadowing micro-benchmark (question 2): void
// hypercall round trips under both configurations.
type MicroShadow struct {
	XenRT      uint64 // cycles per void hypercall round trip, Xen
	FideliusRT uint64 // same under Fidelius
	Shadow     uint64 // attributable to shadow-and-check
	Paper      uint64 // 661
}

// MicroBenchShadow measures the void-hypercall round trip in both
// configurations; the shadowing cost is the difference minus the type 3
// gate on the re-entry path.
func MicroBenchShadow(n int) (MicroShadow, error) {
	rt := func(config string) (uint64, error) {
		p, err := NewPlatform(config, 16)
		if err != nil {
			return 0, err
		}
		var total uint64
		p.X.StartVCPU(p.D, func(g *xen.GuestEnv) error {
			start := g.Cycles()
			for i := 0; i < n; i++ {
				if _, err := g.Hypercall(xen.HCVoid); err != nil {
					return err
				}
			}
			total = g.Cycles() - start
			return nil
		})
		if err := p.X.Run(p.D); err != nil {
			return 0, err
		}
		return total / uint64(n), nil
	}
	xenRT, err := rt(ConfigXen)
	if err != nil {
		return MicroShadow{}, err
	}
	fidRT, err := rt(ConfigFidelius)
	if err != nil {
		return MicroShadow{}, err
	}
	return MicroShadow{
		XenRT:      xenRT,
		FideliusRT: fidRT,
		Shadow:     fidRT - xenRT - cycles.Gate3,
		Paper:      661,
	}, nil
}

// MicroIOCrypt holds the bulk-copy encryption comparison (question 3):
// slowdown of a large in-guest memory copy under the three encryption
// techniques.
type MicroIOCrypt struct {
	AESNISlowdown float64 // percent; paper: 11.49
	SEVSlowdown   float64 // percent; paper: 8.69 (SME)
	SoftwareRatio float64 // x over plain copy; paper: >20x overhead
}

// MicroBenchIOCrypt models copying nBytes of guest memory under each
// encryption technique at streaming throughput.
func MicroBenchIOCrypt(nBytes int) MicroIOCrypt {
	blocks := uint64(nBytes / 16)
	var c cycles.Counter
	run := func(perBlockEnc uint64) uint64 {
		c.Reset()
		for b := uint64(0); b < blocks; b += 4096 {
			n := blocks - b
			if n > 4096 {
				n = 4096
			}
			c.Charge(n * (cycles.CopyBlock + perBlockEnc))
		}
		return c.Total()
	}
	plain := run(0)
	aesni := run(cycles.EncAESNI)
	sev := run(cycles.EncSEVTput)
	sw := run(cycles.EncSoftware)
	return MicroIOCrypt{
		AESNISlowdown: 100 * float64(aesni-plain) / float64(plain),
		SEVSlowdown:   100 * float64(sev-plain) / float64(plain),
		SoftwareRatio: float64(sw-plain) / float64(plain),
	}
}
