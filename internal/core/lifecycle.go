package core

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"

	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// GuestBundle is everything the guest owner prepares offline and hands to
// the platform (Section 4.3.2): the encrypted kernel image produced with
// the SEND APIs, the wrapped transport keys Kwrap, the owner's public
// ECDH key and nonce Nvm, and the Kblk-encrypted disk image. Kblk itself
// is embedded in the encrypted kernel image and never visible to the
// hypervisor.
type GuestBundle struct {
	Image    *sev.EncryptedImage
	Kwrap    sev.WrappedKeys
	OwnerPub *ecdh.PublicKey
	Nonce    []byte
	// DiskImage is the Kblk-encrypted disk content, mounted by the
	// backend at bootup.
	DiskImage []byte
}

// KblkOffset is where the owner embeds the 32-byte Kblk inside the first
// kernel page. The guest kernel reads it from its (decrypted) memory at
// boot; the hypervisor only ever sees the encrypted image.
const KblkOffset = 64

// PrepareGuest is the owner-side helper: it builds the kernel image with
// Kblk embedded, encrypts the disk image under Kblk, and runs the SEND
// protocol against the target platform's public key.
func PrepareGuest(owner *sev.Owner, platformPub *ecdh.PublicKey, kernel, diskPlain []byte) (*GuestBundle, [32]byte, error) {
	var kblk [32]byte
	if _, err := io.ReadFull(rand.Reader, kblk[:]); err != nil {
		return nil, kblk, err
	}
	if len(kernel) < KblkOffset+32 {
		padded := make([]byte, KblkOffset+32)
		copy(padded, kernel)
		kernel = padded
	}
	kernel = append([]byte{}, kernel...)
	copy(kernel[KblkOffset:], kblk[:])

	img, kwrap, err := owner.PrepareImage(platformPub, kernel)
	if err != nil {
		return nil, kblk, err
	}
	ic, err := disk.NewImageCipher(kblk)
	if err != nil {
		return nil, kblk, err
	}
	encDisk, err := ic.EncryptImage(diskPlain)
	if err != nil {
		return nil, kblk, err
	}
	return &GuestBundle{
		Image:     img,
		Kwrap:     kwrap,
		OwnerPub:  owner.PublicKey(),
		Nonce:     owner.Nonce(),
		DiskImage: encDisk,
	}, kblk, nil
}

// LaunchVM boots a protected VM from an encrypted kernel image (Section
// 4.3.3): RECEIVE_START unwraps the transport keys and creates the guest
// context, RECEIVE_UPDATE re-encrypts each loaded page in place with the
// fresh Kvek, RECEIVE_FINISH verifies the measurement against Mvm, and
// ACTIVATE installs the key. The hypervisor only ever handles ciphertext.
func (f *Fidelius) LaunchVM(name string, memPages int, b *GuestBundle) (*xen.Domain, error) {
	defer f.enterTrusted()()
	sp := f.hub().OpenScope("launch-vm", 0, 0).Attr("name", name)
	defer sp.Close()
	if b.Image.NumPages() > memPages {
		return nil, fmt.Errorf("core: kernel image (%d pages) exceeds VM memory", b.Image.NumPages())
	}
	d, err := f.X.CreateDomain(xen.DomainConfig{
		Name:        name,
		MemPages:    memPages,
		SEV:         true,
		ExternalSEV: true,
	})
	if err != nil {
		return nil, err
	}
	h, err := f.M.FW.ReceiveStart(b.Kwrap, b.OwnerPub, b.Nonce)
	if err != nil {
		return nil, err
	}
	// The hypervisor loads the encrypted image; Fidelius has the
	// firmware re-encrypt it in place with Kvek — in bulk, so the
	// per-page AES work fans across the firmware's worker pool. Kernel
	// pages occupy the top of guest memory, clear of the shared I/O
	// window.
	base := uint64(memPages - b.Image.NumPages())
	pfns := make([]hw.PFN, len(b.Image.Pages))
	for i := range b.Image.Pages {
		pfn, ok := d.GPAFrame(base + uint64(i))
		if !ok {
			return nil, fmt.Errorf("core: kernel gfn %d unbacked", base+uint64(i))
		}
		pfns[i] = pfn
	}
	if err := f.M.FW.ReceiveUpdatePages(h, pfns, b.Image.Pages); err != nil {
		return nil, err
	}
	if err := f.M.FW.ReceiveFinish(h, b.Image.Measurement); err != nil {
		return nil, err
	}
	if err := f.M.FW.Activate(h, d.ASID); err != nil {
		return nil, err
	}
	f.storeVM(&VMState{Dom: d, Handle: h})
	return d, nil
}

// KernelBase returns the guest frame where the kernel image of a
// protected VM was loaded.
func (f *Fidelius) KernelBase(d *xen.Domain, b *GuestBundle) uint64 {
	return uint64(d.MemPages - b.Image.NumPages())
}

// SetupIOSession creates the s-dom and r-dom helper contexts for the
// SEV-based I/O protection (Section 4.3.5): both share the guest's Kvek;
// the s-dom is put in sending state and the r-dom in receiving state with
// a common transport key agreed platform-to-itself.
func (f *Fidelius) SetupIOSession(d *xen.Domain) error {
	defer f.enterTrusted()()
	st, _ := f.lookupVM(d.ID)
	if st == nil {
		return fmt.Errorf("core: domain %d is not a Fidelius-protected VM", d.ID)
	}
	if st.IOSessionReady {
		return nil
	}
	selfPub, err := f.M.FW.PublicKey()
	if err != nil {
		return err
	}
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return err
	}
	sdom, err := f.M.FW.LaunchHelper(st.Handle)
	if err != nil {
		return err
	}
	kwrap, err := f.M.FW.SendStart(sdom, selfPub, nonce)
	if err != nil {
		return err
	}
	rdom, err := f.M.FW.ReceiveHelperStart(st.Handle, kwrap, selfPub, nonce)
	if err != nil {
		return err
	}
	st.SDom, st.RDom = sdom, rdom
	st.IOSessionReady = true
	return nil
}

// AttachProtectedDisk declares the shared I/O pages in the GIT (on behalf
// of the guest's front-end driver), attaches the block device, and loads
// the owner's encrypted disk image onto it.
func (f *Fidelius) AttachProtectedDisk(d *xen.Domain, dk *disk.Disk, dataPages int, port uint32, b *GuestBundle) (*xen.BlockBackend, error) {
	gk := f.X.Interpose.(*Gatekeeper)
	// Ring page + data pages are shared with dom0 read-write.
	if err := gk.PreSharing(d.ID, xen.Dom0, xen.BlkRingGFN, uint64(dataPages)+1, 0); err != nil {
		return nil, err
	}
	backend, err := f.X.AttachBlockDevice(d, dk, dataPages, port)
	if err != nil {
		return nil, err
	}
	if b != nil {
		for lba := 0; lba*disk.SectorSize < len(b.DiskImage); lba++ {
			if err := dk.WriteSector(uint64(lba), b.DiskImage[lba*disk.SectorSize:]); err != nil {
				return nil, err
			}
		}
	}
	return backend, nil
}

// ShutdownVM terminates a protected VM (Section 4.3.8): DEACTIVATE
// disengages the ASID and uninstalls the key, DECOMMISSION erases the
// firmware contexts (including the I/O helpers), and domain teardown
// scrubs the PIT and GIT through the DomainDestroyed hook.
func (f *Fidelius) ShutdownVM(d *xen.Domain) error {
	defer f.enterTrusted()()
	st, _ := f.lookupVM(d.ID)
	if st == nil {
		return fmt.Errorf("core: domain %d is not a Fidelius-protected VM", d.ID)
	}
	if err := f.M.FW.Deactivate(st.Handle); err != nil {
		return err
	}
	if err := f.M.FW.Decommission(st.Handle); err != nil {
		return err
	}
	if st.IOSessionReady {
		for _, h := range []sev.Handle{st.SDom, st.RDom} {
			if err := f.M.FW.Deactivate(h); err != nil {
				return err
			}
			if err := f.M.FW.Decommission(h); err != nil {
				return err
			}
		}
	}
	return f.X.DestroyDomain(d, true)
}

// MigrationBundle is an offline VM snapshot in transit: transport packets
// for every guest page plus the measurement, produced by the SEND APIs
// and consumed by RECEIVE on the target (Section 4.3.6).
type MigrationBundle struct {
	Name     string
	MemPages int
	Kwrap    sev.WrappedKeys
	Nonce    []byte
	Packets  []sev.Packet
	Mvm      sev.Measurement
}

// MigrateOut snapshots a (stopped) protected VM for the target platform
// identified by targetPub. SEND_START moves the guest to the sending
// state, which stops execution — Fidelius does not support live
// migration, exactly as the paper notes.
func (f *Fidelius) MigrateOut(d *xen.Domain, targetPub *ecdh.PublicKey) (*MigrationBundle, error) {
	defer f.enterTrusted()()
	st, _ := f.lookupVM(d.ID)
	if st == nil {
		return nil, fmt.Errorf("core: domain %d is not a Fidelius-protected VM", d.ID)
	}
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	kwrap, err := f.M.FW.SendStart(st.Handle, targetPub, nonce)
	if err != nil {
		return nil, err
	}
	bundle := &MigrationBundle{
		Name:     d.Name,
		MemPages: d.MemPages,
		Kwrap:    kwrap,
		Nonce:    nonce,
	}
	var pfns []hw.PFN
	for gfn := uint64(0); gfn < uint64(d.MemPages); gfn++ {
		if pfn, ok := d.GPAFrame(gfn); ok {
			pfns = append(pfns, pfn)
		}
	}
	bundle.Packets, err = f.M.FW.SendUpdatePages(st.Handle, pfns)
	if err != nil {
		return nil, err
	}
	bundle.Mvm, err = f.M.FW.SendFinish(st.Handle)
	if err != nil {
		return nil, err
	}
	return bundle, nil
}

// MigrateIn materialises a migrated VM on this platform: a fresh domain
// and Kvek, RECEIVE of every page, measurement verification, activation.
// originPub is the source platform's public key.
func (f *Fidelius) MigrateIn(bundle *MigrationBundle, originPub *ecdh.PublicKey) (*xen.Domain, error) {
	defer f.enterTrusted()()
	d, err := f.X.CreateDomain(xen.DomainConfig{
		Name:        bundle.Name,
		MemPages:    bundle.MemPages,
		SEV:         true,
		ExternalSEV: true,
	})
	if err != nil {
		return nil, err
	}
	h, err := f.M.FW.ReceiveStart(bundle.Kwrap, originPub, bundle.Nonce)
	if err != nil {
		return nil, err
	}
	pfns := make([]hw.PFN, len(bundle.Packets))
	for i := range bundle.Packets {
		pfn, ok := d.GPAFrame(uint64(i))
		if !ok {
			return nil, fmt.Errorf("core: migration gfn %d unbacked", i)
		}
		pfns[i] = pfn
	}
	if err := f.M.FW.ReceiveUpdatePages(h, pfns, bundle.Packets); err != nil {
		return nil, err
	}
	if err := f.M.FW.ReceiveFinish(h, bundle.Mvm); err != nil {
		return nil, err
	}
	if err := f.M.FW.Activate(h, d.ASID); err != nil {
		return nil, err
	}
	f.storeVM(&VMState{Dom: d, Handle: h})
	return d, nil
}

// Attest produces a signed platform quote over the hypervisor-code
// measurement taken at Enable time and the current integrity-tree root
// (zero when the Section 8 engine is off), bound to the verifier's nonce
// (Section 4.3.1's remote attestation).
func (f *Fidelius) Attest(nonce []byte) (*sev.Quote, error) {
	defer f.enterTrusted()()
	var root [32]byte
	if f.M.Ctl.Integ != nil {
		root = f.M.Ctl.Integ.Root()
	}
	return f.M.FW.Attest(nonce, f.HypervisorMeasurement, root)
}

// AttestVM produces a signed quote bound to one protected VM: the
// platform fields of Attest plus the VM's launch measurement held in its
// firmware context. Remote clients verify it against the measurement of
// the image they prepared before provisioning any secret (the serving
// layer's admission handshake).
func (f *Fidelius) AttestVM(d *xen.Domain, nonce []byte) (*sev.Quote, error) {
	defer f.enterTrusted()()
	st, _ := f.lookupVM(d.ID)
	if st == nil {
		return nil, fmt.Errorf("core: domain %d is not a Fidelius-protected VM", d.ID)
	}
	var root [32]byte
	if f.M.Ctl.Integ != nil {
		root = f.M.Ctl.Integ.Root()
	}
	return f.M.FW.AttestGuest(st.Handle, nonce, f.HypervisorMeasurement, root)
}

// SnapshotVM captures a stopped protected VM as an encrypted bundle the
// same platform can later restore — the snapshot/restore interface the
// paper notes SEV already provides (Section 4.3.6). It is migration to
// self: the transport keys wrap under the platform's own identity.
func (f *Fidelius) SnapshotVM(d *xen.Domain) (*MigrationBundle, error) {
	selfPub, err := func() (pub *ecdh.PublicKey, err error) {
		defer f.enterTrusted()()
		return f.M.FW.PublicKey()
	}()
	if err != nil {
		return nil, err
	}
	return f.MigrateOut(d, selfPub)
}

// RestoreVM materialises a snapshot taken on this platform.
func (f *Fidelius) RestoreVM(bundle *MigrationBundle) (*xen.Domain, error) {
	selfPub, err := func() (pub *ecdh.PublicKey, err error) {
		defer f.enterTrusted()()
		return f.M.FW.PublicKey()
	}()
	if err != nil {
		return nil, err
	}
	return f.MigrateIn(bundle, selfPub)
}

// PreShare lets trusted tooling declare a sharing on behalf of a guest
// (the guest itself uses the pre_sharing_op hypercall).
func (f *Fidelius) PreShare(initiator, target xen.DomID, gfn, count, flags uint64) error {
	gk := f.X.Interpose.(*Gatekeeper)
	return gk.PreSharing(initiator, target, gfn, count, flags)
}
