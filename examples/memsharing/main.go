// Memory sharing: two cooperative protected VMs share a page through the
// grant-table mechanism, guarded by Fidelius's pre_sharing_op hypercall
// and GIT policy (Section 4.3.7). A malicious hypervisor then tries to
// forge the grant's permissions and to map the page elsewhere — both are
// blocked.
//
// Run with: go run ./examples/memsharing
package main

import (
	"fmt"
	"log"

	"fidelius"
	"fidelius/internal/mmu"
	"fidelius/internal/xen"
)

func main() {
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	owner, _ := fidelius.NewOwner()
	mkVM := func(name string) *fidelius.Domain {
		bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		vm, err := plat.LaunchVM(name, 32, bundle)
		if err != nil {
			log.Fatal(err)
		}
		return vm
	}
	producer := mkVM("producer")
	consumer := mkVM("consumer")

	// The producer declares the sharing to Fidelius (read-only), fills
	// the page, and creates the grant.
	const sharedGFN = 7
	message := []byte("readings: 21.5C 1013hPa")
	var ref uint64
	plat.StartVCPU(producer, func(g *fidelius.GuestEnv) error {
		// Shared memory must be plaintext — each VM has its own key.
		if err := g.WriteUnencrypted(sharedGFN*fidelius.PageSize, message); err != nil {
			return err
		}
		if _, err := g.Hypercall(fidelius.HCPreSharingOp, uint64(consumer.ID), sharedGFN, 1, uint64(xen.GrantReadOnly)); err != nil {
			return err
		}
		r, err := g.Hypercall(fidelius.HCGrantTableOp, xen.GntOpGrant, uint64(consumer.ID), sharedGFN, uint64(xen.GrantReadOnly))
		ref = r
		return err
	})
	if err := plat.Run(producer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer granted gfn %d read-only as ref %d\n", sharedGFN, ref)

	// The consumer maps the grant and reads the data; its attempt to
	// write is stopped by the read-only mapping.
	plat.StartVCPU(consumer, func(g *fidelius.GuestEnv) error {
		dst := uint64(consumer.MemPages)
		if _, err := g.Hypercall(fidelius.HCGrantTableOp, xen.GntOpMap, uint64(producer.ID), ref, dst); err != nil {
			return err
		}
		buf := make([]byte, len(message))
		if err := g.ReadUnencrypted(dst*fidelius.PageSize, buf); err != nil {
			return err
		}
		fmt.Printf("consumer read: %q\n", buf)
		if err := g.WriteUnencrypted(dst*fidelius.PageSize, []byte("!")); err != nil {
			fmt.Printf("consumer write attempt: BLOCKED (%v)\n", err)
		}
		return nil
	})
	if err := plat.Run(consumer); err != nil {
		log.Fatal(err)
	}

	// The malicious hypervisor now tries the two grant attacks of §2.2.
	// 1. Forge the grant entry to writable: the grant table is
	// write-protected.
	slot, _ := producer.Grant.SlotPA(int(ref))
	forged := xen.GrantEntry{Flags: xen.GrantInUse, Grantee: consumer.ID, GFN: sharedGFN}
	var buf [xen.GrantEntrySize]byte
	forged.Marshal(buf[:])
	if err := plat.X.M.CPU.WriteVA(uint64(slot), buf[:]); err != nil {
		fmt.Printf("hypervisor grant forgery: BLOCKED (%v)\n", err)
	}
	// 2. Map the producer's *private* memory into the consumer: PIT
	// policy veto (no GIT record covers it).
	privateFrame, _ := producer.GPAFrame(3)
	err = plat.X.MapNPT(consumer, uint64(consumer.MemPages+1)*fidelius.PageSize,
		mmu.MakePTE(privateFrame, mmu.FlagP|mmu.FlagU))
	if err != nil {
		fmt.Printf("hypervisor private-page remap: BLOCKED (%v)\n", err)
	}

	fmt.Printf("violations logged by Fidelius: %d\n", len(plat.Violations()))
}
