// fidelius-migrate drives live-migration scenarios between two simulated
// protected platforms and reports the pre-copy engine's statistics: how
// many rounds it took to converge, how much the guest re-dirtied, what
// crossed the wire and how long the vCPU was actually frozen.
//
// Usage:
//
//	fidelius-migrate [-pages N] [-wset N] [-rounds N] [-final N]
//	                 [-stopcopy] [-faulty] [-tamper]
//
// -wset sets the guest's writable working set (pages it rewrites in a
// loop while the migration streams). -stopcopy runs the offline baseline
// instead. -faulty migrates across a dropping/duplicating/corrupting
// link to show the retry protocol absorbing transport faults. -tamper
// corrupts every page frame persistently, demonstrating the bounded
// retries, the measurement-protected abort, and the source VM surviving.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"fidelius"
)

func main() {
	pages := flag.Int("pages", 96, "guest memory size in pages")
	wset := flag.Int("wset", 8, "writable working set the guest keeps rewriting")
	rounds := flag.Int("rounds", 8, "maximum pre-copy rounds before the final round is forced")
	final := flag.Int("final", 8, "dirty-page threshold that triggers the final round")
	stopcopy := flag.Bool("stopcopy", false, "run the stop-and-copy baseline instead of pre-copy")
	faulty := flag.Bool("faulty", false, "migrate across a lossy link (drops, duplicates, bit flips)")
	tamper := flag.Bool("tamper", false, "persistently corrupt page frames and show the abort path")
	flag.Parse()

	source, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}

	owner, err := fidelius.NewOwner()
	if err != nil {
		log.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("MIGRATE-SCENARIO"), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, source.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := source.LaunchVM("traveller", *pages, bundle)
	if err != nil {
		log.Fatal(err)
	}

	// The workload: a server loop that never finishes, rewriting its
	// working set and yielding once per sweep. Live migration freezes it
	// mid-flight; the baseline needs a bounded guest, so it stops after
	// enough sweeps to populate its pages.
	ws := uint64(*wset)
	source.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		for s := uint64(0); *stopcopy == false || s < 64; s++ {
			for w := uint64(0); w < ws; w++ {
				if err := g.Write64(0x2000+w*0x1000, s); err != nil {
					return err
				}
			}
			g.Halt()
		}
		return nil
	})
	if *stopcopy {
		if err := source.Run(vm); err != nil {
			log.Fatal(err)
		}
	}

	cfg := fidelius.MigrateConfig{
		MaxRounds:   *rounds,
		FinalPages:  *final,
		StopAndCopy: *stopcopy,
		AckTimeout:  20 * time.Millisecond,
		MaxRetries:  3,
	}

	switch {
	case *tamper:
		runTampered(source, target, vm, cfg)
	case *faulty:
		runFaulty(source, target, vm, cfg)
	default:
		d2, stats, err := fidelius.LiveMigrate(source, vm, target, cfg)
		if err != nil {
			log.Fatal(err)
		}
		report(stats)
		if err := target.Shutdown(d2); err != nil {
			log.Fatal(err)
		}
	}
}

func report(s *fidelius.MigrateStats) {
	mode := "pre-copy"
	if s.Rounds == 1 {
		mode = "single round"
	}
	if s.ForcedFinal {
		mode += ", forced final"
	}
	fmt.Printf("migration complete (%s)\n", mode)
	fmt.Printf("  rounds:       %d, pages per round %v\n", s.Rounds, s.PagesPerRound)
	fmt.Printf("  pages sent:   %d (%d re-dirtied while streaming)\n", s.PagesSent, s.Redirtied)
	fmt.Printf("  wire traffic: %d bytes, %d retries\n", s.BytesOnWire, s.Retries)
	fmt.Printf("  downtime:     %d cycles (%.3f ms at 3.4 GHz)\n",
		s.DowntimeCycles, float64(s.DowntimeCycles)/3.4e6)
}

// runFaulty migrates across a link that drops every 5th frame,
// duplicates every 7th and flips a bit in every 11th: the sequence
// numbers, acks and bounded retries deliver the VM anyway.
func runFaulty(source, target *fidelius.Platform, vm *fidelius.Domain, cfg fidelius.MigrateConfig) {
	a, b := fidelius.NewMigrationPipe(16)
	net := &fidelius.MigrateFaulty{Conn: a, DropEvery: 5, DupEvery: 7, CorruptEvery: 11}
	done := make(chan error, 1)
	var d2 *fidelius.Domain
	go func() {
		var err error
		d2, err = target.MigrateInLive(b, source)
		done <- err
	}()
	stats, err := source.MigrateOutLive(vm, target, net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("lossy link: drops/duplicates/corruption absorbed by the retry protocol")
	report(stats)
	if err := target.Shutdown(d2); err != nil {
		log.Fatal(err)
	}
}

// pageTamper corrupts every page frame it forwards — a man-in-the-middle
// no retry can get past.
type pageTamper struct{ fidelius.MigrateConn }

func (p pageTamper) Send(f *fidelius.MigrateFrame) error {
	if f.Type == fidelius.MigrateFramePage {
		c := *f
		c.Pkt.Data = append([]byte{}, f.Pkt.Data...)
		c.Pkt.Data[0] ^= 1
		return p.MigrateConn.Send(&c)
	}
	return p.MigrateConn.Send(f)
}

// runTampered shows the abort path: the target rejects every corrupted
// page, the sender exhausts its retries and cancels, and the source VM
// keeps running as if nothing happened.
func runTampered(source, target *fidelius.Platform, vm *fidelius.Domain, cfg fidelius.MigrateConfig) {
	a, b := fidelius.NewMigrationPipe(16)
	done := make(chan error, 1)
	go func() {
		_, err := target.MigrateInLive(b, source)
		done <- err
	}()
	_, err := source.MigrateOutLive(vm, target, pageTamper{a}, cfg)
	fmt.Printf("tampered link: sender aborted: %v\n", err)
	fmt.Printf("tampered link: receiver scrubbed: %v\n", <-done)
	if err == nil {
		log.Fatal("tampered migration unexpectedly succeeded")
	}
	// The source guest is still live and its memory intact: stop its
	// workload loop and retire it cleanly.
	if err := source.Shutdown(vm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("source VM intact after abort (clean shutdown)")
}
