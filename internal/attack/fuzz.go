package attack

import (
	"bytes"
	"fmt"

	"fidelius/internal/xen"
)

// HypercallFuzz is the conspirator guest hammering the hypercall interface
// with adversarial arguments: out-of-range domains, wild GFNs, forged
// grant references, bogus sub-ops. The attacker's goal is to reach any
// state that discloses the victim's secret or corrupts the platform —
// modelling the XSA-style interface bugs of Section 6.2's quantitative
// analysis.
type HypercallFuzz struct{}

// Name implements Attack.
func (HypercallFuzz) Name() string { return "hypercall-fuzz" }

// Description implements Attack.
func (HypercallFuzz) Description() string {
	return "adversarial guest fuzzes the hypercall interface for leaks or corruption (§6.2)"
}

// Run implements Attack.
func (a HypercallFuzz) Run(p *Platform) Outcome {
	const rounds = 400
	lcg := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg >> 11
	}

	var reached []byte
	p.X.StartVCPU(p.Conspirator, func(g *xen.GuestEnv) error {
		dst := uint64(p.Conspirator.MemPages)
		for i := 0; i < rounds; i++ {
			nr := next() % 8
			a1, a2, a3, a4 := next()%512, next()%4096, next()%64, next()%8
			// The fuzzer aims some calls at the victim specifically.
			if i%5 == 0 {
				a1 = uint64(p.Victim.ID)
			}
			res, err := g.Hypercall(nr, a1, a2, a3, a4)
			_ = err // errors are expected; crashes and leaks are not
			// If any call produced a mapping at the grant window,
			// probe it for the secret.
			if nr == xen.HCGrantTableOp && err == nil && res < 1024 {
				buf := make([]byte, 16)
				if rerr := g.ReadUnencrypted(dst<<12, buf); rerr == nil {
					if bytes.Contains(p.Secret, buf) && !bytes.Equal(buf, make([]byte, 16)) {
						reached = append([]byte{}, buf...)
					}
				}
			}
		}
		return nil
	})
	if err := p.X.Run(p.Conspirator); err != nil {
		// The platform must survive adversarial guests: a scheduler
		// error here is itself a finding.
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
			Detail: fmt.Sprintf("platform destabilised: %v", err),
		}
	}
	// Victim integrity check: its secret is still intact and private.
	got := make([]byte, len(p.Secret))
	var readErr error
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		readErr = g.Read(p.SecretGFN<<12, got)
		return nil
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Succeeded: true, Detail: err.Error()}
	}
	if readErr != nil || !bytes.Equal(got, p.Secret) {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
			Detail: "fuzzing corrupted the victim's memory",
		}
	}
	if reached != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
			Detail: "fuzzed grant mapping exposed victim data",
		}
	}
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(),
		Detail: fmt.Sprintf("%d adversarial hypercalls survived without leak or corruption", rounds),
	}
}
