package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives counters, gauges, histograms and the tracer
// from many goroutines at once. Run under -race this proves the lock-free
// paths are data-race free; the totals prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	h := New(func() uint64 { return 42 })
	h.StartTrace(1 << 10)

	const workers = 8
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			g := reg.Gauge("hammer.gauge")
			hist := reg.Histogram("hammer.hist", CycleBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				hist.Observe(uint64(i))
				h.M.VMExits.Inc()
				h.Emit(KindVMExit, uint32(w), uint32(w), 100, uint64(i), 0)
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perWorker
	if got := reg.Counter("hammer.count").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("hammer.gauge").Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	hist := reg.Histogram("hammer.hist", CycleBuckets)
	if got := hist.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.M.VMExits.Value(); got != want {
		t.Errorf("hub vmexits = %d, want %d", got, want)
	}
	if got := h.Trace().Total(); got != want {
		t.Errorf("tracer total = %d, want %d", got, want)
	}
	// Snapshot while another goroutine keeps writing: must not race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			reg.Counter("hammer.count").Inc()
		}
	}()
	for i := 0; i < 10; i++ {
		_ = reg.Snapshot()
	}
	<-done
}

// TestNilSafety exercises every nil-receiver no-op path: call sites never
// branch on whether telemetry is wired, so nil handles must be inert.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	var hist *Histogram
	hist.Observe(7)
	if hist.Count() != 0 || hist.Sum() != 0 {
		t.Error("nil histogram not zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", CycleBuckets) != nil {
		t.Error("nil registry returned non-nil handle")
	}
	r.RegisterFunc("x", func() uint64 { return 1 })
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var h *Hub
	if h.Tracing() {
		t.Error("nil hub claims tracing")
	}
	if h.Now() != 0 {
		t.Error("nil hub clock not zero")
	}
	h.Emit(KindGate1, 1, 1, 306, 0, 0)
	h.EmitDetail(KindViolation, 1, 1, 0, 0, 0, "x")
	h.NameVM(1, "vm")
	if len(h.VMNames()) != 0 {
		t.Error("nil hub has names")
	}
	if h.StartTrace(8) != nil || h.StopTrace() != nil || h.Trace() != nil {
		t.Error("nil hub returned tracer")
	}
	var tr *Tracer
	if tr.Cap() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer not inert")
	}
}

// TestTracerWraparound fills a small ring past capacity and checks that
// the retained window is the most recent events, oldest-first, with
// Dropped accounting for the rest.
func TestTracerWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity)
	const total = 21
	for i := 0; i < total; i++ {
		tr.record(Event{Kind: KindGate1, Arg1: uint64(i)})
	}
	if got := tr.Total(); got != total {
		t.Errorf("Total = %d, want %d", got, total)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Errorf("Dropped = %d, want %d", got, total-capacity)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events len = %d, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		wantArg := uint64(total - capacity + i)
		if e.Arg1 != wantArg {
			t.Errorf("event %d: Arg1 = %d, want %d", i, e.Arg1, wantArg)
		}
		if e.Seq != wantArg {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, wantArg)
		}
	}
}

// TestTracerUnderCapacity checks the pre-wrap path.
func TestTracerUnderCapacity(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		tr.record(Event{Arg1: uint64(i)})
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("Events len = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Arg1 != uint64(i) {
			t.Errorf("event %d out of order: Arg1 = %d", i, e.Arg1)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 2} // <=10, <=100, overflow
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1+10+11+100+101+5000 {
		t.Errorf("Sum = %d", s.Sum)
	}
	if m := s.Mean(); m < 870 || m > 871 {
		t.Errorf("Mean = %v", m)
	}
}

func TestMetricName(t *testing.T) {
	if got := MetricName("gate.type1"); got != "gate.type1" {
		t.Errorf("got %q", got)
	}
	if got := MetricName("blk.requests", "vm", "1", "op", "read"); got != "blk.requests{vm=1,op=read}" {
		t.Errorf("got %q", got)
	}
}

// TestRegistryFuncAndSnapshot checks that RegisterFunc readings land in
// the snapshot's gauges (external accounting served without duplication)
// and that the snapshot JSON round-trips.
func TestRegistryFuncAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(7)
	reg.Gauge("a.gauge").Set(-3)
	ext := uint64(12345)
	reg.RegisterFunc("cycles.total", func() uint64 { return ext })
	reg.Histogram("a.hist", []uint64{10}).Observe(4)

	s := reg.Snapshot()
	if s.Counters["a.count"] != 7 {
		t.Errorf("counter = %d", s.Counters["a.count"])
	}
	if s.Gauges["cycles.total"] != 12345 {
		t.Errorf("func gauge = %d", s.Gauges["cycles.total"])
	}
	if s.Histograms["a.hist"].Count != 1 {
		t.Errorf("hist count = %d", s.Histograms["a.hist"].Count)
	}

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.count"] != 7 || back.Gauges["cycles.total"] != 12345 {
		t.Error("round-tripped snapshot lost values")
	}

	var tbl strings.Builder
	if err := s.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"a.count", "cycles.total", "a.hist", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestRegistrySameHandle checks registration is idempotent: the same name
// always yields the same handle, so two call sites share one count.
func TestRegistrySameHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x", "vm", "1")
	b := reg.Counter("x", "vm", "1")
	if a != b {
		t.Error("same name produced distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles do not share state")
	}
}

// TestHubTraceLifecycle checks Start/Stop/Tracing transitions and that
// emission is a no-op when no tracer is attached.
func TestHubTraceLifecycle(t *testing.T) {
	clock := uint64(0)
	h := New(func() uint64 { return clock })
	if h.Tracing() {
		t.Error("fresh hub tracing")
	}
	h.Emit(KindGate1, 1, 1, 306, 0, 0) // must be dropped
	tr := h.StartTrace(0)
	if !h.Tracing() {
		t.Error("not tracing after StartTrace")
	}
	if tr.Cap() != DefaultTraceCap {
		t.Errorf("default cap = %d", tr.Cap())
	}
	clock = 1000
	h.EmitDetail(KindSEVCommand, 2, 3, 5000, 9, 0, "activate")
	got := h.StopTrace()
	if h.Tracing() {
		t.Error("still tracing after StopTrace")
	}
	evs := got.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.TS != 1000 || e.Kind != KindSEVCommand || e.VM != 2 || e.ASID != 3 ||
		e.Dur != 5000 || e.Arg1 != 9 || e.Detail != "activate" {
		t.Errorf("event mismatch: %+v", e)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("out-of-range kind: %q", Kind(200).String())
	}
	if KindGate2.Category() != "gate" || KindMemEncrypt.Category() != "mem" {
		t.Error("category mismatch")
	}
}
