package cpu

import (
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/mmu"
	"fidelius/internal/telemetry"
)

// fetch reads up to 10 instruction bytes at RIP through execute-checked
// translation, splitting at page boundaries. A fetch fault on the *first*
// byte is the "instruction page unmapped" event type 3 gates rely on; a
// fault on a continuation byte is the MOV-CR3-at-page-end subtlety from
// Section 4.1.2.
func (c *CPU) fetch(va uint64) ([]byte, error) {
	var buf [10]byte
	// First byte decides the length.
	pa, tr, err := c.translate(va, mmu.Execute)
	if err != nil {
		return nil, err
	}
	if err := c.Ctl.Read(hw.Access{PA: pa, Encrypted: tr.Encrypted, ASID: hw.HostASID}, buf[:1]); err != nil {
		return nil, err
	}
	n := isa.Op(buf[0]).Len()
	if n == 0 {
		return nil, fmt.Errorf("cpu: invalid opcode %#x at rip %#x", buf[0], va)
	}
	for i := 1; i < n; i++ {
		pa, tr, err := c.translate(va+uint64(i), mmu.Execute)
		if err != nil {
			return nil, err
		}
		if err := c.Ctl.Read(hw.Access{PA: pa, Encrypted: tr.Encrypted, ASID: hw.HostASID}, buf[i:i+1]); err != nil {
			return nil, err
		}
	}
	return buf[:n], nil
}

// Step fetches, decodes and executes one instruction at RIP in host mode.
// It returns ErrHalted on HLT and the fault or policy error otherwise.
func (c *CPU) Step() error {
	if hook, ok := c.Hooks.Addr[c.RIP]; ok {
		if err := hook(c); err != nil {
			return err
		}
	}
	raw, err := c.fetch(c.RIP)
	if err != nil {
		if pf, ok := err.(*mmu.PageFault); ok && c.PageFaultFn != nil && c.PageFaultFn(c, pf) {
			return nil // handled: Run retries at same RIP
		}
		return err
	}
	in, n, err := isa.Decode(raw)
	if err != nil {
		return err
	}
	if c.Hooks.Exec != nil {
		if err := c.Hooks.Exec(c, c.RIP, in.Op); err != nil {
			return err
		}
	}
	next := c.RIP + uint64(n)
	switch in.Op {
	case isa.OpNop:
		c.charge(cycles.ALUOp)
	case isa.OpALU:
		c.charge(cycles.ALUOp)
		c.Regs[0] = c.Regs[0]*6364136223846793005 + uint64(in.Reg) + 1442695040888963407
	case isa.OpMovImm:
		c.charge(cycles.ALUOp)
		c.Regs[in.Reg%NumRegs] = in.Imm
	case isa.OpLoad:
		v, err := c.Read64(in.Imm)
		if err != nil {
			return err
		}
		c.Regs[in.Reg%NumRegs] = v
	case isa.OpStore:
		if err := c.Write64(in.Imm, c.Regs[in.Reg%NumRegs]); err != nil {
			return err
		}
	case isa.OpJmp:
		c.charge(cycles.ALUOp)
		next = c.RIP + uint64(int64(in.Rel))
	case isa.OpCall:
		c.Regs[SP] -= 8
		if err := c.Write64(c.Regs[SP], next); err != nil {
			return err
		}
		next = c.RIP + uint64(int64(in.Rel))
	case isa.OpRet:
		ret, err := c.Read64(c.Regs[SP])
		if err != nil {
			return err
		}
		c.Regs[SP] += 8
		next = ret
	case isa.OpHlt:
		c.RIP = next
		return ErrHalted
	case isa.OpCpuid:
		c.charge(100)
		c.Regs[0], c.Regs[1], c.Regs[2], c.Regs[3] = 0x0F1DE115, 0x414D44, 0x5345, 0x56
	case isa.OpVmmcall:
		return fmt.Errorf("cpu: vmmcall executed in host mode at %#x", c.RIP)
	case isa.OpMovCR0:
		if err := c.writeCR0(c.Regs[in.Reg%NumRegs]); err != nil {
			return err
		}
	case isa.OpMovCR3:
		if err := c.writeCR3(c.Regs[in.Reg%NumRegs]); err != nil {
			return err
		}
	case isa.OpMovCR4:
		if err := c.writeCR4(c.Regs[in.Reg%NumRegs]); err != nil {
			return err
		}
	case isa.OpWrmsr:
		// Convention: R0 holds the MSR index, R1 the value.
		if err := c.writeMSR(uint32(c.Regs[0]), c.Regs[1]); err != nil {
			return err
		}
	case isa.OpVmrun:
		if c.VMRunFn == nil {
			return fmt.Errorf("cpu: vmrun with no world switch installed")
		}
		c.charge(cycles.VMEntry)
		h := c.Ctl.Telem
		h.M.VMRuns.Inc()
		if h.Tracing() {
			h.Emit(telemetry.KindVMRun, 0, 0, cycles.VMEntry, c.Regs[in.Reg%NumRegs], 0)
		}
		if err := c.VMRunFn(c.Regs[in.Reg%NumRegs]); err != nil {
			return err
		}
	case isa.OpLgdt, isa.OpLidt:
		c.charge(50)
	default:
		return fmt.Errorf("cpu: unimplemented opcode %v", in.Op)
	}
	c.RIP = next
	return nil
}

// Run executes starting at entry until HLT, a fault, or maxInst
// instructions (0 means no limit). It returns nil on a clean HLT.
func (c *CPU) Run(entry uint64, maxInst int) error {
	c.RIP = entry
	for i := 0; maxInst == 0 || i < maxInst; i++ {
		if err := c.Step(); err != nil {
			if err == ErrHalted {
				return nil
			}
			return err
		}
	}
	return fmt.Errorf("cpu: instruction budget exhausted at rip %#x", c.RIP)
}

// writeCR0 applies a CR0 write with hook veto and TLB maintenance.
func (c *CPU) writeCR0(v uint64) error {
	old := c.CR0
	if c.Hooks.CR0Write != nil {
		if err := c.Hooks.CR0Write(c, old, v); err != nil {
			return err
		}
	}
	c.charge(cycles.WPToggle)
	c.CR0 = v
	if old&CR0PG != v&CR0PG {
		c.TLB.FlushAll()
		c.charge(cycles.TLBFlushFull)
	}
	return nil
}

// writeCR3 switches the address space, flushing the TLB (no PCID).
func (c *CPU) writeCR3(v uint64) error {
	old := c.CR3
	if c.Hooks.CR3Write != nil {
		if err := c.Hooks.CR3Write(c, old, v); err != nil {
			return err
		}
	}
	c.CR3 = v
	c.TLB.FlushAll()
	c.charge(cycles.TLBFlushFull)
	return nil
}

func (c *CPU) writeCR4(v uint64) error {
	old := c.CR4
	if c.Hooks.CR4Write != nil {
		if err := c.Hooks.CR4Write(c, old, v); err != nil {
			return err
		}
	}
	c.charge(cycles.WPToggle)
	c.CR4 = v
	return nil
}

func (c *CPU) writeMSR(msr uint32, v uint64) error {
	var old uint64
	if msr == MSREFER {
		old = c.EFER
	}
	if c.Hooks.MSRWrite != nil {
		if err := c.Hooks.MSRWrite(c, msr, old, v); err != nil {
			return err
		}
	}
	c.charge(100)
	if msr == MSREFER {
		c.EFER = v
	}
	return nil
}

// SetWP sets or clears CR0.WP directly through the same hook path as the
// MOV CR0 instruction. Fidelius's type 1 gate uses this from its own
// (sanctioned) context.
func (c *CPU) SetWP(on bool) error {
	v := c.CR0 &^ CR0WP
	if on {
		v |= CR0WP
	}
	return c.writeCR0(v)
}
