package hw

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Integrity is the hardware-based integrity engine the paper proposes in
// Section 8 ("this can be addressed by integrating a Bonsai Merkle Tree
// (BMT) to enable hardware-based integrity in the secure processor"): a
// hash tree over protected cache lines whose root lives inside the secure
// processor. Writes through the memory controller update the tree; reads
// verify the stored line against it; physical tampering (rowhammer, DMA
// overwrites, bus-level replay) breaks verification because the attacker
// cannot update the tree.
//
// The implementation keeps per-line keyed MACs as leaves and folds them
// into a binary Merkle tree; only the root would need on-chip storage in
// hardware. Leaf MACs are keyed and address-bound, so splicing ciphertext
// between addresses is also caught.
type Integrity struct {
	mem  *Memory
	key  [32]byte
	leaf map[PhysAddr][32]byte // line base -> MAC
	// protected marks pages under integrity protection.
	protected map[PFN]bool
	// Verifies and Updates count engine operations for benchmarks; they
	// are mutated under mu, like the maps.
	Verifies uint64
	Updates  uint64

	// mu guards the maps and counters: concurrent vCPUs hit the engine
	// from their own controller views. It is a leaf lock — nothing is
	// acquired while it is held except DRAM reads.
	mu sync.Mutex
}

// ErrIntegrity reports a line whose contents do not match the tree.
var ErrIntegrity = errors.New("hw: integrity verification failed")

// NewIntegrity builds an engine over the memory with a device-internal
// key.
func NewIntegrity(mem *Memory, key [32]byte) *Integrity {
	return &Integrity{
		mem:       mem,
		key:       key,
		leaf:      make(map[PhysAddr][32]byte),
		protected: make(map[PFN]bool),
	}
}

func (ig *Integrity) mac(base PhysAddr, line []byte) [32]byte {
	m := hmac.New(sha256.New, ig.key[:])
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], uint64(base))
	m.Write(a[:])
	m.Write(line)
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Protect places a page under integrity protection, capturing its current
// contents as the trusted state.
func (ig *Integrity) Protect(pfn PFN) error {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	ig.protected[pfn] = true
	var line [LineSize]byte
	for off := PhysAddr(0); off < PageSize; off += LineSize {
		base := pfn.Addr() + off
		if err := ig.mem.ReadRaw(base, line[:]); err != nil {
			return err
		}
		ig.leaf[base] = ig.mac(base, line[:])
	}
	return nil
}

// Unprotect removes a page from protection (teardown).
func (ig *Integrity) Unprotect(pfn PFN) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	delete(ig.protected, pfn)
	for off := PhysAddr(0); off < PageSize; off += LineSize {
		delete(ig.leaf, pfn.Addr()+off)
	}
}

// Protected reports whether a page is under protection.
func (ig *Integrity) Protected(pfn PFN) bool {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	return ig.protected[pfn]
}

// Update refreshes the tree for a legitimate (controller-mediated) write
// covering [pa, pa+n).
func (ig *Integrity) Update(pa PhysAddr, n int) error {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	first := pa &^ (LineSize - 1)
	last := (pa + PhysAddr(n) - 1) &^ (LineSize - 1)
	var line [LineSize]byte
	for base := first; base <= last; base += LineSize {
		if !ig.protected[base.Frame()] {
			continue
		}
		if err := ig.mem.ReadRaw(base, line[:]); err != nil {
			return err
		}
		ig.leaf[base] = ig.mac(base, line[:])
		ig.Updates++
	}
	return nil
}

// Verify checks [pa, pa+n) against the tree before data is consumed.
func (ig *Integrity) Verify(pa PhysAddr, n int) error {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	first := pa &^ (LineSize - 1)
	last := (pa + PhysAddr(n) - 1) &^ (LineSize - 1)
	var line [LineSize]byte
	for base := first; base <= last; base += LineSize {
		if !ig.protected[base.Frame()] {
			continue
		}
		if err := ig.mem.ReadRaw(base, line[:]); err != nil {
			return err
		}
		want, ok := ig.leaf[base]
		if !ok {
			return fmt.Errorf("%w: no leaf for line %#x", ErrIntegrity, base)
		}
		if got := ig.mac(base, line[:]); !hmac.Equal(got[:], want[:]) {
			return fmt.Errorf("%w: line %#x tampered", ErrIntegrity, base)
		}
		ig.Verifies++
	}
	return nil
}

// Root folds every leaf into a single digest — the value a hardware BMT
// keeps on-chip. It is order-independent over (address, mac) pairs.
func (ig *Integrity) Root() [32]byte {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	h := sha256.New()
	var acc [32]byte
	for base, mac := range ig.leaf {
		var a [8]byte
		binary.LittleEndian.PutUint64(a[:], uint64(base))
		h.Reset()
		h.Write(a[:])
		h.Write(mac[:])
		s := h.Sum(nil)
		for i := range acc {
			acc[i] ^= s[i]
		}
	}
	return sha256.Sum256(acc[:])
}
