package xen

import (
	"errors"
	"fmt"

	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
	"fidelius/internal/telemetry"
)

// GuestFunc is a guest kernel: it runs on a vCPU goroutine against a
// GuestEnv and returns when the guest shuts down.
type GuestFunc func(g *GuestEnv) error

// exitEvent carries guest state across the guest→host world switch.
type exitEvent struct {
	reason cpu.ExitReason
	info1  uint64
	info2  uint64
	regs   [cpu.NumRegs]uint64
	rip    uint64
	done   bool
	err    error
}

// resumeMsg carries (possibly hypervisor-modified) state back into the
// guest on VMRUN.
type resumeMsg struct {
	regs [cpu.NumRegs]uint64
	// fault injects a failure for the guest's faulting access: the
	// hypervisor could not (or refused to) resolve the exit.
	fault bool
}

// VCPU is a guest virtual CPU: a goroutine running the guest function,
// synchronously handing control to the host on every VMEXIT. Exactly one
// side runs at any time; the channels provide the happens-before edges.
type VCPU struct {
	dom    *Domain
	x      *Xen
	exitCh chan exitEvent
	resume chan resumeMsg
	halted bool
	err    error

	// ctl is the controller port the guest side of this vCPU drives: the
	// machine's root controller under serial scheduling, a per-vCPU view
	// while a parallel runner owns the domain. The runner swaps it only
	// while the guest is parked in exit(), so the resume channel provides
	// the happens-before edge.
	ctl *hw.Controller
}

// GuestEnv is the machine as seen from inside the guest: virtual memory
// through the two-dimensional SEV translation, hypercalls, CPUID, and the
// guest's register file.
type GuestEnv struct {
	v    *VCPU
	Regs [cpu.NumRegs]uint64
	RIP  uint64

	nested *mmu.Nested
	paging bool

	// tlb caches completed translations per page; it flushes whenever
	// the host mutates this domain's NPT (tracked by Domain.NPTGen),
	// mirroring a per-vCPU hardware TLB.
	tlb    map[gTLBKey]hw.Access
	tlbGen uint64

	// Info is the guest's start info (read from the start-info page at
	// boot).
	Info StartInfo
}

type gTLBKey struct {
	page uint64
	acc  mmu.AccessType
	raw  bool // the unencrypted (rawGPA) window
}

// Dom returns the domain this environment belongs to.
func (g *GuestEnv) Dom() *Domain { return g.v.dom }

// exit performs a VMEXIT and blocks until the hypervisor resumes the
// guest. The register file crosses the boundary in both directions —
// unencrypted, exactly as on SEV without -ES.
func (g *GuestEnv) exit(reason cpu.ExitReason, info1, info2 uint64) bool {
	g.v.exitCh <- exitEvent{reason: reason, info1: info1, info2: info2, regs: g.Regs, rip: g.RIP}
	r := <-g.v.resume
	g.Regs = r.regs
	if gen := g.v.dom.NPTGen; gen != g.tlbGen {
		g.tlb = nil
		g.tlbGen = gen
	}
	// A scheduler may have handed the vCPU a different controller port
	// (serial root vs parallel per-vCPU view) while the guest was parked.
	if g.nested.Ctl != g.v.ctl {
		g.nested.Ctl = g.v.ctl
	}
	return r.fault
}

// ErrInjectedFault is returned to guest code whose memory access the
// hypervisor could not or would not back.
var ErrInjectedFault = errors.New("xen: hypervisor injected fault")

// translate resolves a guest address. Before paging is enabled, addresses
// are guest-physical and — when SEV is on — accesses are encrypted with
// the guest key (early boot runs entirely in encrypted memory). After
// EnablePaging, the full two-dimensional walk applies, including the
// C-bit priority rule. NPT violations exit to the hypervisor and retry.
func (g *GuestEnv) translate(addr uint64, acc mmu.AccessType) (hw.Access, error) {
	d := g.v.dom
	key := gTLBKey{page: mmu.PageBase(addr), acc: acc}
	if a, ok := g.tlb[key]; ok {
		a.PA += hw.PhysAddr(addr & (hw.PageSize - 1))
		g.v.ctl.Cycles.Charge(1)
		return a, nil
	}
	for {
		if !g.paging {
			tr, err := g.nested.NPT.Translate(addr, acc, true, false)
			if err != nil {
				if pf, ok := err.(*mmu.PageFault); ok {
					if g.exit(cpu.ExitNPF, uint64(pf.Access), mmu.PageBase(addr)) {
						return hw.Access{}, ErrInjectedFault
					}
					continue
				}
				return hw.Access{}, err
			}
			a := hw.Access{PA: tr.HPA + hw.PhysAddr(addr&(hw.PageSize-1))}
			switch {
			case d.SEV:
				a.Encrypted, a.ASID = true, d.ASID
			case tr.PTE.Encrypted():
				// NPT C-bit: SME host-key encryption, the
				// Fidelius-enc methodology of Section 7.1.
				a.Encrypted, a.ASID = true, hw.HostASID
			}
			g.tlbInsert(key, a, addr)
			return a, nil
		}
		tr, err := g.nested.Translate(addr, acc, false)
		if err != nil {
			if nv, ok := err.(*mmu.NPTViolation); ok {
				if g.exit(cpu.ExitNPF, uint64(nv.Access), mmu.PageBase(nv.GPA)) {
					return hw.Access{}, ErrInjectedFault
				}
				continue
			}
			return hw.Access{}, err // guest-side page fault: guest kernel's problem
		}
		a := hw.Access{
			PA:        tr.HPA + hw.PhysAddr(addr&(hw.PageSize-1)),
			Encrypted: tr.Encrypted,
			ASID:      tr.ASID,
		}
		g.tlbInsert(key, a, addr)
		return a, nil
	}
}

// tlbInsert caches the page-base translation for key.
func (g *GuestEnv) tlbInsert(key gTLBKey, a hw.Access, addr uint64) {
	if g.tlb == nil {
		g.tlb = make(map[gTLBKey]hw.Access)
	}
	base := a
	base.PA -= hw.PhysAddr(addr & (hw.PageSize - 1))
	g.tlb[key] = base
}

func (g *GuestEnv) access(addr uint64, buf []byte, acc mmu.AccessType) error {
	done := 0
	for done < len(buf) {
		cur := addr + uint64(done)
		n := int(hw.PageSize - cur&(hw.PageSize-1))
		if n > len(buf)-done {
			n = len(buf) - done
		}
		a, err := g.translate(cur, acc)
		if err != nil {
			return err
		}
		if acc == mmu.Write {
			err = g.v.ctl.Write(a, buf[done:done+n])
		} else {
			err = g.v.ctl.Read(a, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// Read reads guest memory at a guest (virtual, once paging is on) address.
func (g *GuestEnv) Read(addr uint64, buf []byte) error { return g.access(addr, buf, mmu.Read) }

// Write writes guest memory.
func (g *GuestEnv) Write(addr uint64, data []byte) error { return g.access(addr, data, mmu.Write) }

// Read64 reads a little-endian word from guest memory.
func (g *GuestEnv) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := g.Read(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// Write64 writes a little-endian word to guest memory.
func (g *GuestEnv) Write64(addr, val uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(val >> (8 * i))
	}
	return g.Write(addr, b[:])
}

// WriteUnencrypted writes guest memory forcing the C-bit off — used by PV
// drivers to fill DMA-visible shared buffers before paging-based C-bit
// control is set up.
func (g *GuestEnv) WriteUnencrypted(gpa uint64, data []byte) error {
	return g.rawGPA(gpa, data, mmu.Write)
}

// ReadUnencrypted reads guest memory forcing the C-bit off.
func (g *GuestEnv) ReadUnencrypted(gpa uint64, buf []byte) error {
	return g.rawGPA(gpa, buf, mmu.Read)
}

func (g *GuestEnv) rawGPA(gpa uint64, buf []byte, acc mmu.AccessType) error {
	done := 0
	for done < len(buf) {
		cur := gpa + uint64(done)
		n := int(hw.PageSize - cur&(hw.PageSize-1))
		if n > len(buf)-done {
			n = len(buf) - done
		}
		var a hw.Access
		key := gTLBKey{page: mmu.PageBase(cur), acc: acc, raw: true}
		if c, ok := g.tlb[key]; ok {
			a = c
			a.PA += hw.PhysAddr(cur & (hw.PageSize - 1))
			g.v.ctl.Cycles.Charge(1)
		} else {
			for {
				tr, err := g.nested.NPT.Translate(cur, acc, true, false)
				if err != nil {
					if pf, ok := err.(*mmu.PageFault); ok {
						if g.exit(cpu.ExitNPF, uint64(pf.Access), mmu.PageBase(cur)) {
							return ErrInjectedFault
						}
						continue
					}
					return err
				}
				a = hw.Access{PA: tr.HPA + hw.PhysAddr(cur&(hw.PageSize-1))}
				g.tlbInsert(key, a, cur)
				break
			}
		}
		var err error
		if acc == mmu.Write {
			err = g.v.ctl.Write(a, buf[done:done+n])
		} else {
			err = g.v.ctl.Read(a, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// Hypercall issues a hypercall: nr in R0, up to five arguments in R1..R5;
// the result comes back in R0 and the error code in R1 (0 = ok).
func (g *GuestEnv) Hypercall(nr uint64, args ...uint64) (uint64, error) {
	g.Regs[0] = nr
	for i := 1; i <= 5; i++ {
		g.Regs[i] = 0
	}
	for i, a := range args {
		if i >= 5 {
			break
		}
		g.Regs[1+i] = a
	}
	g.exit(cpu.ExitVMMCALL, nr, 0)
	if g.Regs[1] != 0 {
		return g.Regs[0], fmt.Errorf("xen: hypercall %d failed: errno %d", nr, g.Regs[1])
	}
	return g.Regs[0], nil
}

// CPUID executes CPUID, exiting to the hypervisor which fills R0..R3.
func (g *GuestEnv) CPUID(leaf uint32) [4]uint64 {
	g.Regs[0] = uint64(leaf)
	g.exit(cpu.ExitCPUID, uint64(leaf), 0)
	return [4]uint64{g.Regs[0], g.Regs[1], g.Regs[2], g.Regs[3]}
}

// Halt exits with HLT (idle); the hypervisor resumes the guest
// immediately in this synchronous model.
func (g *GuestEnv) Halt() { g.exit(cpu.ExitHLT, 0, 0) }

// Charge adds guest compute cycles to this vCPU's counter (the ALU work
// of the synthetic workloads).
func (g *GuestEnv) Charge(n uint64) { g.v.ctl.Cycles.Charge(n) }

// Cycles reads the machine's global cycle clock (the guest's TSC): the
// base counter plus every live per-vCPU counter.
func (g *GuestEnv) Cycles() uint64 { return g.v.ctl.Now() }

// ConsolePrint writes a string to the domain's console through the
// console hypercall, eight bytes per exit.
func (g *GuestEnv) ConsolePrint(s string) error {
	for len(s) > 0 {
		n := len(s)
		if n > 8 {
			n = 8
		}
		var word uint64
		for i := 0; i < n; i++ {
			word |= uint64(s[i]) << (8 * i)
		}
		if _, err := g.Hypercall(HCConsoleIO, word, uint64(n)); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// BuildIdentityPT constructs an identity-mapped guest page table (GVA ==
// GPA) in the top frames of guest memory, with the C-bit set on every
// leaf except the frames listed in plainGFNs (the DMA-shared pages). It
// returns the guest root GPA. Runs pre-paging, writing through
// guest-physical access.
func (g *GuestEnv) BuildIdentityPT(plainGFNs map[uint64]bool) (uint64, error) {
	d := g.v.dom
	n := uint64(d.MemPages)
	// Table pages from the top of guest memory downward.
	nextTable := n
	allocTable := func() (uint64, error) {
		if nextTable == 0 {
			return 0, fmt.Errorf("xen: guest out of frames for page tables")
		}
		nextTable--
		zero := make([]byte, hw.PageSize)
		if err := g.rawGPAEncrypted(nextTable<<hw.PageShift, zero); err != nil {
			return 0, err
		}
		return nextTable, nil
	}
	rootGFN, err := allocTable()
	if err != nil {
		return 0, err
	}
	// Walk-and-fill: 3 levels over [0, n) frames.
	writePTE := func(tableGFN uint64, idx int, pte mmu.PTE) error {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(pte) >> (8 * i))
		}
		return g.rawGPAEncrypted(tableGFN<<hw.PageShift+uint64(idx*8), b[:])
	}
	readPTE := func(tableGFN uint64, idx int) (mmu.PTE, error) {
		var b [8]byte
		if err := g.rawGPAReadEncrypted(tableGFN<<hw.PageShift+uint64(idx*8), b[:]); err != nil {
			return 0, err
		}
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		return mmu.PTE(v), nil
	}
	// Map the guest's own memory plus the grant window above it, where
	// foreign shared pages appear. Shared memory must be plaintext
	// (no C-bit): each guest has its own key, so cross-VM sharing and
	// DMA both require unencrypted pages (Section 2.2).
	for gfn := uint64(0); gfn < n+GrantWindowPages; gfn++ {
		va := gfn << hw.PageShift
		table := rootGFN
		for level := mmu.Levels - 1; level > 0; level-- {
			idx := mmu.Index(va, level)
			entry, err := readPTE(table, idx)
			if err != nil {
				return 0, err
			}
			if !entry.Present() {
				nt, err := allocTable()
				if err != nil {
					return 0, err
				}
				entry = mmu.MakePTE(hw.PFN(nt), mmu.FlagP|mmu.FlagW|mmu.FlagU)
				if err := writePTE(table, idx, entry); err != nil {
					return 0, err
				}
			}
			table = uint64(entry.PFN())
		}
		flags := mmu.FlagP | mmu.FlagW | mmu.FlagC
		if plainGFNs[gfn] || gfn >= n {
			flags &^= mmu.FlagC
		}
		if err := writePTE(table, mmu.Index(va, 0), mmu.MakePTE(hw.PFN(gfn), flags)); err != nil {
			return 0, err
		}
	}
	return rootGFN << hw.PageShift, nil
}

// rawGPAEncrypted writes guest-physical memory with the guest key (the
// pre-paging default when SEV is on).
func (g *GuestEnv) rawGPAEncrypted(gpa uint64, data []byte) error {
	return g.access(gpa, data, mmu.Write)
}

func (g *GuestEnv) rawGPAReadEncrypted(gpa uint64, buf []byte) error {
	return g.access(gpa, buf, mmu.Read)
}

// EnablePaging switches the guest to virtual addressing with the page
// table rooted at rootGPA.
func (g *GuestEnv) EnablePaging(rootGPA uint64) {
	g.nested.GuestRoot = rootGPA
	g.paging = true
}

// PagingEnabled reports whether the guest has enabled paging.
func (g *GuestEnv) PagingEnabled() bool { return g.paging }

// StartVCPU launches the guest function on a new vCPU goroutine. The
// guest blocks immediately, waiting for the first VMRUN.
func (x *Xen) StartVCPU(d *Domain, fn GuestFunc) *VCPU {
	v := &VCPU{
		dom:    d,
		x:      x,
		exitCh: make(chan exitEvent),
		resume: make(chan resumeMsg),
		ctl:    x.M.Ctl,
	}
	d.vcpu = v
	go func() {
		r := <-v.resume // first VMRUN
		g := &GuestEnv{
			v:    v,
			Regs: r.regs,
			Info: d.Info,
			nested: &mmu.Nested{
				Ctl:              v.ctl,
				NPT:              d.NPT,
				ASID:             d.ASID,
				GuestPTEncrypted: d.SEV,
				Dirty:            d.Dirty,
			},
		}
		err := fn(g)
		v.exitCh <- exitEvent{reason: cpu.ExitShutdown, regs: g.Regs, done: true, err: err}
	}()
	return v
}

// worldSwitch is installed as the CPU's VMRUN handler: it resumes the
// guest goroutine with the register file from the VMCB, waits for the
// next exit, and writes the guest state back into the VMCB and the CPU's
// (plaintext!) register file. It runs under the gate lock (the VMRUN
// stub executes on the boot CPU); the registry read lock is released
// right after the lookup.
func (x *Xen) worldSwitch(vmcbPA uint64) error {
	x.domsMu.RLock()
	d, ok := x.vmcbToDom[hw.PhysAddr(vmcbPA)]
	x.domsMu.RUnlock()
	if !ok {
		return fmt.Errorf("xen: vmrun with unknown vmcb %#x", vmcbPA)
	}
	v := d.vcpu
	if v == nil {
		return fmt.Errorf("xen: domain %d has no vcpu", d.ID)
	}
	if v.halted {
		return fmt.Errorf("xen: domain %d vcpu already shut down", d.ID)
	}
	vmcb, err := cpu.LoadVMCB(x.M.Ctl, hw.PhysAddr(vmcbPA))
	if err != nil {
		return err
	}
	v.resume <- resumeMsg{regs: vmcb.Regs, fault: d.pendingFault}
	d.pendingFault = false
	ev := <-v.exitCh
	x.M.Ctl.Cycles.Charge(cycles.VMExit)
	tel := x.M.Ctl.Telem
	tel.M.VMExits.Inc()
	if tel.Tracing() {
		tel.Emit(telemetry.KindVMExit, uint32(d.ID), uint32(d.ASID),
			cycles.VMExit, uint64(ev.reason), 0)
	}
	if ev.done {
		v.halted = true
		v.err = ev.err
	}
	vmcb.ExitCode = ev.reason
	vmcb.ExitInfo1 = ev.info1
	vmcb.ExitInfo2 = ev.info2
	vmcb.Regs = ev.regs
	vmcb.RIP = ev.rip
	if err := cpu.StoreVMCB(x.M.Ctl, hw.PhysAddr(vmcbPA), vmcb); err != nil {
		return err
	}
	// The guest's general purpose registers land in the host register
	// file in plaintext — the SEV-without-ES exposure of Section 2.2.
	x.M.CPU.Regs = ev.regs
	return nil
}
