package hw

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ASID is an address space identifier tagging encrypted accesses. ASID 0 is
// reserved for the host (SME) key.
type ASID uint16

// HostASID is the key slot used for host (SME) encryption, i.e. pages the
// hypervisor itself marks with the C-bit.
const HostASID ASID = 0

// KeySize is the size in bytes of a VM encryption key (Kvek).
const KeySize = 32

// Key is a raw VM encryption key. The engine derives independent data and
// tweak AES-128 subkeys from it, giving an XEX construction tweaked by the
// physical block address — matching AMD's documented physical-address
// tweak, which is what makes the replay/remap analysis in the paper
// meaningful (the same plaintext encrypts differently at different
// addresses).
type Key [KeySize]byte

// ErrNoKey reports an encrypted access whose ASID has no installed key.
var ErrNoKey = errors.New("hw: no key installed for ASID")

// PageCipher is the XEX transform for one key: AES over 16-byte blocks,
// tweaked by physical address. The SEV firmware holds one per guest
// context (it must encrypt pages before the key is ever installed in the
// controller), and the Engine holds one per active ASID.
type PageCipher struct {
	data  cipher.Block
	tweak cipher.Block
}

// NewPageCipher derives the data and tweak AES subkeys from a raw key.
func NewPageCipher(key Key) (*PageCipher, error) {
	dk := sha256.Sum256(append([]byte("fidelius-data-key:"), key[:]...))
	tk := sha256.Sum256(append([]byte("fidelius-tweak-key:"), key[:]...))
	data, err := aes.NewCipher(dk[:16])
	if err != nil {
		return nil, err
	}
	tweak, err := aes.NewCipher(tk[:16])
	if err != nil {
		return nil, err
	}
	return &PageCipher{data: data, tweak: tweak}, nil
}

// EncryptBlock encrypts one 16-byte block in place, tweaked by its
// physical address.
func (s *PageCipher) EncryptBlock(pa PhysAddr, b []byte) {
	t := s.tweakFor(pa)
	for i := range b {
		b[i] ^= t[i]
	}
	s.data.Encrypt(b, b)
	for i := range b {
		b[i] ^= t[i]
	}
}

// DecryptBlock decrypts one 16-byte block in place, tweaked by its
// physical address.
func (s *PageCipher) DecryptBlock(pa PhysAddr, b []byte) {
	t := s.tweakFor(pa)
	for i := range b {
		b[i] ^= t[i]
	}
	s.data.Decrypt(b, b)
	for i := range b {
		b[i] ^= t[i]
	}
}

// Engine is the inline AES memory-encryption engine living in the memory
// controller. Keys are installed per ASID by the SEV firmware (ACTIVATE)
// and never leave the engine.
type Engine struct {
	mu    sync.RWMutex
	slots map[ASID]*PageCipher
}

// NewEngine returns an engine with no keys installed.
func NewEngine() *Engine {
	return &Engine{slots: make(map[ASID]*PageCipher)}
}

// Install loads a key into the slot for the given ASID, overwriting any
// previous key. Hardware-wise this is the effect of the SEV ACTIVATE
// command (or BIOS SME enablement for ASID 0).
func (e *Engine) Install(asid ASID, key Key) error {
	slot, err := NewPageCipher(key)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slots[asid] = slot
	return nil
}

// Uninstall removes the key for the ASID (SEV DEACTIVATE).
func (e *Engine) Uninstall(asid ASID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.slots, asid)
}

// Keys reports how many key slots are populated.
func (e *Engine) Keys() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.slots)
}

// Installed reports whether a key is present for the ASID.
func (e *Engine) Installed(asid ASID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.slots[asid]
	return ok
}

func (e *Engine) slot(asid ASID) (*PageCipher, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.slots[asid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoKey, asid)
	}
	return s, nil
}

// tweakFor computes the XEX tweak block for the 16-byte-aligned physical
// address.
func (s *PageCipher) tweakFor(pa PhysAddr) [BlockSize]byte {
	var in, out [BlockSize]byte
	binary.LittleEndian.PutUint64(in[:8], uint64(pa))
	s.tweak.Encrypt(out[:], in[:])
	return out
}

// EncryptBlock encrypts one 16-byte block in place, tweaked by its
// physical address. pa must be block aligned and len(b) == BlockSize.
func (e *Engine) EncryptBlock(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.slot(asid)
	if err != nil {
		return err
	}
	s.EncryptBlock(pa, b)
	return nil
}

// DecryptBlock decrypts one 16-byte block in place, tweaked by its
// physical address.
func (e *Engine) DecryptBlock(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.slot(asid)
	if err != nil {
		return err
	}
	s.DecryptBlock(pa, b)
	return nil
}
