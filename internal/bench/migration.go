package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"fidelius/internal/core"
	"fidelius/internal/migrate"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// Migration table: live pre-copy downtime against the guest's writable
// working set, with the frozen stop-and-copy transfer as the baseline.
// The paper migrates with a plain stop-and-copy SEND/RECEIVE pass
// (Section 4.3.6); the live engine bounds downtime by the final dirty
// residue instead of the whole memory image, so the interesting axis is
// how fast the guest re-dirties pages while the migration streams.

// MigRow is one working-set size evaluated under both modes.
type MigRow struct {
	WSetPages int // pages the guest keeps rewriting

	// Live pre-copy run.
	Rounds       int
	PagesSent    int
	Redirtied    int
	BytesOnWire  uint64
	LiveDowntime uint64 // cycles the source vCPU was frozen
	ForcedFinal  bool

	// Stop-and-copy baseline for the same guest.
	StopCopyDowntime uint64
}

// migGuestPages is the benchmark guest's memory size.
const migGuestPages = 96

// migSweeps is how many passes the guest makes over its working set
// before finishing; enough to keep dirtying memory through several
// pre-copy rounds.
const migSweeps = 40

// migPair boots a source and target protected platform and launches the
// benchmark guest on the source.
func migPair() (src, tgt *core.Fidelius, d *xen.Domain, err error) {
	boot := func() (*core.Fidelius, error) {
		m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
		if err != nil {
			return nil, err
		}
		x, err := xen.New(m)
		if err != nil {
			return nil, err
		}
		return core.Enable(x)
	}
	if src, err = boot(); err != nil {
		return nil, nil, nil, err
	}
	if tgt, err = boot(); err != nil {
		return nil, nil, nil, err
	}
	owner, err := sev.NewOwner()
	if err != nil {
		return nil, nil, nil, err
	}
	platformPub, err := src.M.FW.PublicKey()
	if err != nil {
		return nil, nil, nil, err
	}
	kernel := bytes.Repeat([]byte("MIG-BENCH-KERN!!"), 256)
	b, _, err := core.PrepareGuest(owner, platformPub, kernel, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	d, err = src.LaunchVM("mig-bench", migGuestPages, b)
	if err != nil {
		return nil, nil, nil, err
	}
	return src, tgt, d, nil
}

// migGuest sweeps a working set of wset pages, yielding once per sweep.
// The live runs use the looping variant — a server that never finishes,
// dirtying memory until the final round freezes it — while the
// stop-and-copy baseline runs the bounded variant to completion first.
func migGuest(wset int, loop bool) func(*xen.GuestEnv) error {
	return func(g *xen.GuestEnv) error {
		for s := uint64(0); loop || s < migSweeps; s++ {
			for w := 0; w < wset; w++ {
				if err := g.Write64(0x2000+uint64(w)*0x1000, s); err != nil {
					return err
				}
			}
			g.Halt()
		}
		return nil
	}
}

// runMigration migrates the benchmark guest once and returns the stats.
func runMigration(wset int, stopCopy bool) (*migrate.Stats, error) {
	src, tgt, d, err := migPair()
	if err != nil {
		return nil, err
	}
	src.X.StartVCPU(d, migGuest(wset, !stopCopy))
	if stopCopy {
		// The baseline freezes the finished guest for the whole transfer.
		if err := src.X.Run(d); err != nil {
			return nil, err
		}
	}
	targetPub, err := tgt.M.FW.PublicKey()
	if err != nil {
		return nil, err
	}
	originPub, err := src.M.FW.PublicKey()
	if err != nil {
		return nil, err
	}
	a, b := migrate.Pipe(8)
	link := &migrate.Link{
		Conn:          a,
		Counter:       src.M.Ctl.Cycles,
		CyclesPerByte: migrate.DefaultCyclesPerByte,
		LatencyCycles: migrate.DefaultLatencyCycles,
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := tgt.MigrateInLive(b, originPub)
		recvErr <- err
	}()
	stats, err := src.MigrateOutLive(d, targetPub, link,
		migrate.Config{StopAndCopy: stopCopy, AckTimeout: time.Second})
	if err != nil {
		return nil, err
	}
	if err := <-recvErr; err != nil {
		return nil, err
	}
	return stats, nil
}

// MigrationTable runs the live/stop-and-copy comparison across working-set
// sizes. A nil wsets uses the default sweep.
func MigrationTable(wsets []int) ([]MigRow, error) {
	if wsets == nil {
		wsets = []int{2, 4, 8, 16, 32, 48}
	}
	var rows []MigRow
	for _, ws := range wsets {
		live, err := runMigration(ws, false)
		if err != nil {
			return nil, fmt.Errorf("bench migration wset=%d live: %w", ws, err)
		}
		sc, err := runMigration(ws, true)
		if err != nil {
			return nil, fmt.Errorf("bench migration wset=%d stop-copy: %w", ws, err)
		}
		rows = append(rows, MigRow{
			WSetPages:        ws,
			Rounds:           live.Rounds,
			PagesSent:        live.PagesSent,
			Redirtied:        live.Redirtied,
			BytesOnWire:      live.BytesOnWire,
			LiveDowntime:     live.DowntimeCycles,
			ForcedFinal:      live.ForcedFinal,
			StopCopyDowntime: sc.DowntimeCycles,
		})
	}
	return rows, nil
}

// FormatMigrationTable renders the migration comparison.
func FormatMigrationTable(rows []MigRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Migration: pre-copy downtime vs writable working set (%d-page guest)\n", migGuestPages)
	fmt.Fprintf(&b, "%-10s %7s %7s %10s %12s %14s %16s %7s\n",
		"wset(pg)", "rounds", "sent", "redirtied", "wire(bytes)", "live-down(cyc)", "stopcopy-down", "forced")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %7d %7d %10d %12d %14d %16d %7v\n",
			r.WSetPages, r.Rounds, r.PagesSent, r.Redirtied, r.BytesOnWire,
			r.LiveDowntime, r.StopCopyDowntime, r.ForcedFinal)
	}
	return b.String()
}
