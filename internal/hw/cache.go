package hw

import (
	"sync"
	"sync/atomic"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// DefaultWays is the associativity used when a cache is built from a bare
// line count.
const DefaultWays = 8

// Cache is a small physically-indexed, physically-tagged cache holding
// plaintext. It reproduces the micro-architectural detail the paper's
// inter-VM remapping attack depends on: cache lines are plaintext and, on
// pre-SNP hardware, are tagged only by physical address — so a conspirator
// VM that gets the victim's page mapped into its NPT can hit a line the
// victim filled and read plaintext without ever touching the AES engine.
//
// The cache is write-through: stores update the line and propagate to DRAM
// through the engine, so DRAM is always current (ciphertext).
//
// Organisation is set-associative with CLOCK (second-chance) replacement
// per set: the line index selects a set, and lookup, fill and invalidate
// all touch only that set's ways. Line storage is one flat preallocated
// array, so filling a line never allocates and Invalidate is O(ways)
// instead of the old map+FIFO-slice's O(capacity) order scan.
//
// Locking is sharded per set (the lock order is the set index, and no
// operation ever holds two set locks at once), so concurrent vCPUs racing
// on different sets never contend. Statistics are atomics. ReadAt, WriteAt,
// Fill, Invalidate and Flush are safe for concurrent use; Lookup and Peek
// return a pointer into line storage and are for single-threaded callers
// (tests and the attack demos) only.
type Cache struct {
	sets int // power of two; 0 disables the cache
	ways int

	// Flat per-way state, indexed set*ways+way, guarded by the set's lock.
	data  [][LineSize]byte
	tags  []PhysAddr
	valid []bool
	ref   []bool
	hand  []int // CLOCK hand, one per set

	locks []sync.Mutex // one per set

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	live      atomic.Int64
}

// NewCache returns a cache holding at least capacity lines (rounded up to
// the nearest set-associative geometry: min(capacity, DefaultWays) ways ×
// a power-of-two number of sets). A capacity of 0 disables caching
// entirely.
func NewCache(capacity int) *Cache {
	return NewCacheWays(capacity, DefaultWays)
}

// NewCacheWays builds a cache with explicit associativity. ways is clamped
// to [1, capacity]; the set count is the smallest power of two covering
// capacity/ways lines.
func NewCacheWays(capacity, ways int) *Cache {
	if capacity <= 0 {
		return &Cache{}
	}
	if ways < 1 {
		ways = 1
	}
	if ways > capacity {
		ways = capacity
	}
	sets := 1
	for sets*ways < capacity {
		sets <<= 1
	}
	n := sets * ways
	return &Cache{
		sets:  sets,
		ways:  ways,
		data:  make([][LineSize]byte, n),
		tags:  make([]PhysAddr, n),
		valid: make([]bool, n),
		ref:   make([]bool, n),
		hand:  make([]int, sets),
		locks: make([]sync.Mutex, sets),
	}
}

func lineBase(pa PhysAddr) PhysAddr { return pa &^ (LineSize - 1) }

// setOf maps a line base address to its set index (physically indexed).
func (c *Cache) setOf(base PhysAddr) int {
	return int(uint64(base)/LineSize) & (c.sets - 1)
}

// findInSet returns the flat way index holding base within set, or -1.
// The caller must hold the set's lock.
func (c *Cache) findInSet(set int, base PhysAddr) int {
	i := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[i+w] && c.tags[i+w] == base {
			return i + w
		}
	}
	return -1
}

// ReadAt copies cached plaintext for pa into dst, which must not cross the
// line boundary. It reports whether the line was present, counting a hit
// or a miss. This is the memory controller's load path: the bytes are
// copied out under the set lock, so concurrent fills never tear a read.
func (c *Cache) ReadAt(pa PhysAddr, dst []byte) bool {
	if c.sets == 0 {
		c.misses.Add(1)
		return false
	}
	base := lineBase(pa)
	set := c.setOf(base)
	c.locks[set].Lock()
	i := c.findInSet(set, base)
	if i < 0 {
		c.locks[set].Unlock()
		c.misses.Add(1)
		return false
	}
	c.ref[i] = true
	off := int(pa - base)
	copy(dst, c.data[i][off:])
	c.locks[set].Unlock()
	c.hits.Add(1)
	return true
}

// WriteAt updates cached plaintext for pa in place if the line is present
// (no write-allocate), without touching hit/miss statistics or replacement
// state — the write-buffer's view, mirroring Peek. data must not cross the
// line boundary.
func (c *Cache) WriteAt(pa PhysAddr, data []byte) bool {
	if c.sets == 0 {
		return false
	}
	base := lineBase(pa)
	set := c.setOf(base)
	c.locks[set].Lock()
	i := c.findInSet(set, base)
	if i < 0 {
		c.locks[set].Unlock()
		return false
	}
	off := int(pa - base)
	copy(c.data[i][off:], data)
	c.locks[set].Unlock()
	return true
}

// Lookup returns the cached plaintext line containing pa, if present.
// The returned pointer aliases line storage; single-threaded callers only.
func (c *Cache) Lookup(pa PhysAddr) (*[LineSize]byte, bool) {
	if c.sets == 0 {
		c.misses.Add(1)
		return nil, false
	}
	base := lineBase(pa)
	set := c.setOf(base)
	c.locks[set].Lock()
	defer c.locks[set].Unlock()
	if i := c.findInSet(set, base); i >= 0 {
		c.hits.Add(1)
		c.ref[i] = true
		return &c.data[i], true
	}
	c.misses.Add(1)
	return nil, false
}

// Peek returns the cached line containing pa without touching hit/miss
// statistics or replacement state. The returned pointer aliases line
// storage; single-threaded callers only.
func (c *Cache) Peek(pa PhysAddr) (*[LineSize]byte, bool) {
	if c.sets == 0 {
		return nil, false
	}
	base := lineBase(pa)
	set := c.setOf(base)
	c.locks[set].Lock()
	defer c.locks[set].Unlock()
	if i := c.findInSet(set, base); i >= 0 {
		return &c.data[i], true
	}
	return nil, false
}

// Fill inserts a plaintext line, running CLOCK replacement in its set if
// every way is occupied.
func (c *Cache) Fill(pa PhysAddr, data *[LineSize]byte) {
	if c.sets == 0 {
		return
	}
	base := lineBase(pa)
	set := c.setOf(base)
	c.locks[set].Lock()
	defer c.locks[set].Unlock()
	if i := c.findInSet(set, base); i >= 0 {
		c.data[i] = *data
		c.ref[i] = true
		return
	}
	first := set * c.ways
	w := -1
	for v := 0; v < c.ways; v++ {
		if !c.valid[first+v] {
			w = first + v
			break
		}
	}
	if w < 0 {
		// CLOCK: sweep the hand, clearing reference bits, until a way
		// without a second chance comes up.
		for {
			h := first + c.hand[set]
			c.hand[set] = (c.hand[set] + 1) % c.ways
			if !c.ref[h] {
				w = h
				break
			}
			c.ref[h] = false
		}
		c.evictions.Add(1)
		c.live.Add(-1)
	}
	c.data[w] = *data
	c.tags[w] = base
	c.valid[w] = true
	c.ref[w] = true
	c.live.Add(1)
}

// Invalidate drops any line overlapping [pa, pa+n), taking one set lock at
// a time.
func (c *Cache) Invalidate(pa PhysAddr, n int) {
	if c.sets == 0 || n <= 0 {
		return
	}
	first := lineBase(pa)
	last := lineBase(pa + PhysAddr(n) - 1)
	for b := first; b <= last; b += LineSize {
		set := c.setOf(b)
		c.locks[set].Lock()
		if i := c.findInSet(set, b); i >= 0 {
			c.valid[i] = false
			c.ref[i] = false
			c.live.Add(-1)
		}
		c.locks[set].Unlock()
		if b+LineSize < b { // overflow guard
			break
		}
	}
}

// Flush empties the cache (WBINVD), sweeping the sets in ascending order
// one lock at a time.
func (c *Cache) Flush() {
	for s := 0; s < c.sets; s++ {
		c.locks[s].Lock()
		first := s * c.ways
		for w := 0; w < c.ways; w++ {
			if c.valid[first+w] {
				c.valid[first+w] = false
				c.live.Add(-1)
			}
			c.ref[first+w] = false
		}
		c.hand[s] = 0
		c.locks[s].Unlock()
	}
}

// Len reports the number of valid lines currently held.
func (c *Cache) Len() int { return int(c.live.Load()) }

// Evictions reports how many lines CLOCK replacement has pushed out.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }

// Stats reports hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits.Load(), c.misses.Load() }
