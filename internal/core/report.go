package core

import (
	"fmt"
	"sort"
	"strings"

	"fidelius/internal/cpu"
)

// Report is an operator-facing snapshot of the trusted context's activity:
// gate traffic, shadowing volume, protected-VM inventory, and the audit
// log — the observability a production deployment would watch.
type Report struct {
	Config        string
	Measurement   [32]byte
	IntegrityRoot *[32]byte // nil when the BMT engine is off
	Gates         GateStats
	ProtectedVMs  []string
	ExitCounts    map[cpu.ExitReason]uint64
	Violations    []Violation
	TotalCycles   uint64
}

// Snapshot collects the current report. The VM inventory is read under
// the gate lock and the audit log under its leaf lock, so snapshots are
// safe while domains run in parallel.
func (f *Fidelius) Snapshot() Report {
	r := Report{
		Config:      f.Name(),
		Measurement: f.HypervisorMeasurement,
		Gates:       f.Stats(),
		ExitCounts:  f.X.ExitCountsSnapshot(),
		Violations:  f.ViolationLog(),
		TotalCycles: f.M.Ctl.Cycles.Total(),
	}
	f.M.Host.Lock()
	for _, st := range f.vms {
		name := st.Dom.Name
		switch {
		case st.GEKReady:
			name += " (gek)"
		case st.IOSessionReady:
			name += " (sev-io)"
		}
		r.ProtectedVMs = append(r.ProtectedVMs, name)
	}
	f.M.Host.Unlock()
	sort.Strings(r.ProtectedVMs)
	if f.M.Ctl.Integ != nil {
		root := f.M.Ctl.Integ.Root()
		r.IntegrityRoot = &root
	}
	return r
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fidelius status (%s)\n", r.Config)
	fmt.Fprintf(&b, "  hypervisor measurement: %x\n", r.Measurement[:16])
	if r.IntegrityRoot != nil {
		fmt.Fprintf(&b, "  integrity root:         %x\n", r.IntegrityRoot[:16])
	}
	fmt.Fprintf(&b, "  gates: type1=%d type2=%d type3=%d shadows=%d\n",
		r.Gates.Gate1, r.Gates.Gate2, r.Gates.Gate3, r.Gates.Shadows)
	fmt.Fprintf(&b, "  protected VMs (%d): %s\n", len(r.ProtectedVMs), strings.Join(r.ProtectedVMs, ", "))
	var reasons []cpu.ExitReason
	for k := range r.ExitCounts {
		reasons = append(reasons, k)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	fmt.Fprintf(&b, "  exits:")
	for _, k := range reasons {
		fmt.Fprintf(&b, " %v=%d", k, r.ExitCounts[k])
	}
	fmt.Fprintf(&b, "\n  total cycles: %d\n", r.TotalCycles)
	fmt.Fprintf(&b, "  violations (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    [%s] %s\n", v.Kind, v.Detail)
	}
	return b.String()
}
