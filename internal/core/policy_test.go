package core

import (
	"errors"
	"strings"
	"testing"

	"fidelius/internal/cpu"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
	"fidelius/internal/xen"
)

// expectVeto asserts err is a policy veto (ProtectionError).
func expectVeto(t *testing.T, err error, why string) {
	t.Helper()
	var pe *cpu.ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("%s: want ProtectionError, got %v", why, err)
	}
}

func TestPTEWriteIntoUntrackedPageVetoed(t *testing.T) {
	x, f := newPlatform(t)
	_ = f
	// A frame the PIT knows nothing about (freshly allocated data page).
	pfn, err := x.M.Alloc.Alloc(xen.UseXenData, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = x.Interpose.WritePTE(nil, pfn.Addr(), mmu.MakePTE(1, mmu.FlagP))
	expectVeto(t, err, "PTE write into untracked page")
}

func TestPTEWriteIntoFideliusPageVetoed(t *testing.T) {
	x, f := newPlatform(t)
	// The GIT page is Fidelius-private: even through the gate, a "PTE"
	// write into it must be refused.
	err := x.Interpose.WritePTE(nil, f.GIT.PagePFN.Addr(), mmu.MakePTE(1, mmu.FlagP))
	expectVeto(t, err, "PTE write into Fidelius page")
}

func TestNPTWriteWrongDomainVetoed(t *testing.T) {
	x, f := newPlatform(t)
	b1, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	b2, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d1, err := f.LaunchVM("d1", 16, b1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f.LaunchVM("d2", 16, b2)
	if err != nil {
		t.Fatal(err)
	}
	slot, err := x.NPTLeafSlot(d1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The hypervisor presents d2 as the domain while writing d1's NPT.
	err = x.Interpose.WritePTE(d2, slot, mmu.MakePTE(d1.Frames[0], mmu.FlagP))
	expectVeto(t, err, "NPT write attributed to the wrong domain")
	// And with no domain at all.
	err = x.Interpose.WritePTE(nil, slot, mmu.MakePTE(d1.Frames[0], mmu.FlagP))
	expectVeto(t, err, "NPT write with nil domain")
}

func TestHostPTWritableAliasVetoed(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("alias", 16, b)
	if err != nil {
		t.Fatal(err)
	}
	// Locate a host-PT leaf slot for some unused high VA region by
	// using an existing mapping slot: take the leaf slot of a plain
	// data page's VA.
	dataPFN, err := x.M.Alloc.Alloc(xen.UseXenData, 0)
	if err != nil {
		t.Fatal(err)
	}
	slot, err := x.M.HostPT.LeafSlot(uint64(dataPFN.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	nptPage := d.NPTPages[0]
	// Writable alias of a protected NPT page: vetoed.
	err = x.Interpose.WritePTE(nil, slot, mmu.MakePTE(nptPage, mmu.FlagP|mmu.FlagW))
	expectVeto(t, err, "writable alias of NPT page")
	// Read-only alias: permitted (reads are always allowed).
	if err := x.Interpose.WritePTE(nil, slot, mmu.MakePTE(nptPage, mmu.FlagP)); err != nil {
		t.Fatalf("read-only alias should pass: %v", err)
	}
	// Mapping a guest page at all: vetoed.
	err = x.Interpose.WritePTE(nil, slot, mmu.MakePTE(d.Frames[2], mmu.FlagP))
	expectVeto(t, err, "alias of protected guest page")
	// Writable alias of hypervisor code: vetoed.
	err = x.Interpose.WritePTE(nil, slot, mmu.MakePTE(x.M.Stubs.Pages[0], mmu.FlagP|mmu.FlagW))
	expectVeto(t, err, "writable alias of code page")
	// Restore the identity mapping for hygiene.
	if err := x.Interpose.WritePTE(nil, slot, mmu.MakePTE(dataPFN, mmu.FlagP|mmu.FlagW|mmu.FlagNX)); err != nil {
		t.Fatal(err)
	}
}

func TestGrantWriteIntoForeignTableVetoed(t *testing.T) {
	x, f := newPlatform(t)
	b1, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	b2, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d1, _ := f.LaunchVM("g1", 16, b1)
	d2, _ := f.LaunchVM("g2", 16, b2)
	slot, err := d1.Grant.SlotPA(0)
	if err != nil {
		t.Fatal(err)
	}
	// d2's grant creation directed at d1's grant table page.
	err = x.Interpose.WriteGrant(d2, slot, xen.GrantEntry{Flags: xen.GrantInUse, Grantee: 0, GFN: 1})
	expectVeto(t, err, "grant write into a foreign grant table")
	// Nil domain.
	err = x.Interpose.WriteGrant(nil, slot, xen.GrantEntry{Flags: xen.GrantInUse})
	expectVeto(t, err, "grant write without a domain")
}

func TestPreSharingValidation(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("share", 16, b)
	if err != nil {
		t.Fatal(err)
	}
	gk := x.Interpose.(*Gatekeeper)
	// Unknown initiator.
	expectVeto(t, gk.PreSharing(99, 0, 1, 1, 0), "unknown initiator")
	// Zero count.
	expectVeto(t, gk.PreSharing(d.ID, 0, 1, 0, 0), "zero count")
	// Range beyond the initiator's memory.
	expectVeto(t, gk.PreSharing(d.ID, 0, 10, 20, 0), "range beyond memory")
	// Valid declaration succeeds.
	if err := gk.PreSharing(d.ID, 0, 3, 2, 0); err != nil {
		t.Fatalf("valid pre-sharing rejected: %v", err)
	}
}

func TestIOCryptValidation(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("iov", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	gk := x.Interpose.(*Gatekeeper)
	// No I/O session.
	expectVeto(t, gk.IOCrypt(d, true, 5, 0, 1, 0), "no I/O session")
	if err := f.SetupIOSession(d); err != nil {
		t.Fatal(err)
	}
	dk := fideliusTestDisk(t, f, d)
	_ = dk
	// Md beyond the guest.
	expectVeto(t, gk.IOCrypt(d, true, 10_000, 0, 1, 0), "Md beyond guest memory")
	// Count beyond one page of sectors.
	expectVeto(t, gk.IOCrypt(d, true, 5, 0, 9, 0), "count beyond Md page")
	// Shared index beyond the data area.
	expectVeto(t, gk.IOCrypt(d, true, 5, 0, 1, 10_000), "shared sector beyond data area")
	// A valid request passes.
	if err := gk.IOCrypt(d, true, 5, 0, 1, 0); err != nil {
		t.Fatalf("valid iocrypt rejected: %v", err)
	}
}

func fideliusTestDisk(t *testing.T, f *Fidelius, d *xen.Domain) *xen.BlockBackend {
	t.Helper()
	backend, err := f.AttachProtectedDisk(d, disk.New(64), 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.X.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}
	return backend
}

func TestPITBeyondCoverage(t *testing.T) {
	_, f := newPlatform(t)
	if _, err := f.PIT.Get(1 << 40); err == nil {
		t.Fatal("PIT lookup beyond coverage should error")
	}
	if err := f.PIT.Set(1<<40, MakePITEntry(xen.UseGuest, 1, 1)); err == nil {
		t.Fatal("PIT set beyond coverage should error")
	}
}

func TestGITFull(t *testing.T) {
	_, f := newPlatform(t)
	for i := 0; i < GITEntriesPerPage; i++ {
		if err := f.GIT.Add(GITEntry{Initiator: 1, Target: 2, Count: 1}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := f.GIT.Add(GITEntry{Initiator: 1, Target: 2, Count: 1}); !errors.Is(err, ErrGITFull) {
		t.Fatalf("want ErrGITFull, got %v", err)
	}
	if _, err := f.GIT.Entry(-1); err == nil {
		t.Fatal("negative index should error")
	}
}

func TestViolationLogIsDescriptive(t *testing.T) {
	x, f := newPlatform(t)
	pfn, _ := x.M.Alloc.Alloc(xen.UseXenData, 0)
	_ = x.Interpose.WritePTE(nil, pfn.Addr(), mmu.MakePTE(1, mmu.FlagP))
	if len(f.Violations) == 0 {
		t.Fatal("no violation logged")
	}
	last := f.Violations[len(f.Violations)-1]
	if last.Kind == "" || !strings.Contains(last.Detail, "untracked") {
		t.Fatalf("violation lacks detail: %+v", last)
	}
}
