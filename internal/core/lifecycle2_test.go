package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

func TestAttestation(t *testing.T) {
	x, f := newPlatform(t)
	nonce := []byte("verifier-nonce-123")
	q, err := f.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if q.HVMeasurement != f.HypervisorMeasurement {
		t.Fatal("quote carries the wrong measurement")
	}
	pub, err := x.M.FW.AttestationKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := sev.VerifyQuote(pub, q, nonce); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	// Replay under a different nonce fails.
	if err := sev.VerifyQuote(pub, q, []byte("other")); err == nil {
		t.Fatal("stale quote accepted")
	}
	// A tampered measurement fails.
	bad := *q
	bad.HVMeasurement[0] ^= 1
	if err := sev.VerifyQuote(pub, &bad, nonce); err == nil {
		t.Fatal("tampered quote accepted")
	}
	// The hypervisor cannot mint quotes: the guard rejects it.
	if _, err := x.M.FW.Attest(nonce, [32]byte{}, [32]byte{}); !errors.Is(err, sev.ErrUnauthorized) {
		t.Fatalf("hypervisor-minted quote: %v", err)
	}
}

func TestAttestationIncludesIntegrityRoot(t *testing.T) {
	_, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("att", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := f.Attest([]byte("n1"))
	if err != nil {
		t.Fatal(err)
	}
	if q1.IntegrityRoot != ([32]byte{}) {
		t.Fatal("integrity root should be zero before EnableIntegrity")
	}
	if err := f.EnableIntegrity(d); err != nil {
		t.Fatal(err)
	}
	q2, err := f.Attest([]byte("n2"))
	if err != nil {
		t.Fatal(err)
	}
	if q2.IntegrityRoot == ([32]byte{}) {
		t.Fatal("integrity root missing from quote")
	}
}

func TestSnapshotRestore(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("snap", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		return g.Write(0x4000, []byte("checkpoint state"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	snap, err := f.SnapshotVM(d)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is ciphertext.
	for _, pkt := range snap.Packets {
		if bytes.Contains(pkt.Data, []byte("checkpoint state")) {
			t.Fatal("snapshot leaks plaintext")
		}
	}
	// Tear the original down, then restore.
	if err := f.ShutdownVM(d); err != nil {
		t.Fatal(err)
	}
	d2, err := f.RestoreVM(snap)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	x.StartVCPU(d2, func(g *xen.GuestEnv) error {
		return g.Read(0x4000, got)
	})
	if err := x.Run(d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("checkpoint state")) {
		t.Fatalf("restored state %q", got)
	}
}

func TestShutdownWithIOSession(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("io-shutdown", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetupIOSession(d); err != nil {
		t.Fatal(err)
	}
	// Idempotent setup.
	if err := f.SetupIOSession(d); err != nil {
		t.Fatal(err)
	}
	if err := f.ShutdownVM(d); err != nil {
		t.Fatal(err)
	}
	if _, ok := x.Dom(d.ID); ok {
		t.Fatal("domain survived shutdown")
	}
	// Shutdown of a non-Fidelius domain errors cleanly.
	plain, _ := x.CreateDomain(xen.DomainConfig{Name: "plain", MemPages: 8})
	if err := f.ShutdownVM(plain); err == nil {
		t.Fatal("shutting down an unmanaged domain should error")
	}
}

func TestLaunchVMImageTooLarge(t *testing.T) {
	_, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, 40*hw.PageSize), nil)
	if _, err := f.LaunchVM("big", 16, b); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestSetupIOSessionUnmanagedDomain(t *testing.T) {
	x, f := newPlatform(t)
	d, _ := x.CreateDomain(xen.DomainConfig{Name: "um", MemPages: 8})
	if err := f.SetupIOSession(d); err == nil {
		t.Fatal("IO session on unmanaged domain should error")
	}
}

func TestMultipleProtectedVMsScheduled(t *testing.T) {
	// Shadow state separation under interleaved scheduling: each VM's
	// registers and VMCB must stay its own.
	x, f := newPlatform(t)
	var doms []*xen.Domain
	for i := 0; i < 3; i++ {
		b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
		d, err := f.LaunchVM("multi", 32, b)
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		marker := uint64(0x1000 + i)
		x.StartVCPU(d, func(g *xen.GuestEnv) error {
			g.Regs[6] = marker
			for r := 0; r < 4; r++ {
				if _, err := g.Hypercall(xen.HCVoid); err != nil {
					return err
				}
				if g.Regs[6] != marker {
					t.Errorf("register cross-contamination: %#x vs %#x", g.Regs[6], marker)
				}
			}
			return g.Write(0x5000, []byte{byte(marker)})
		})
	}
	if errs := x.Schedule(doms); len(errs) != 0 {
		t.Fatalf("scheduler errors: %v", errs)
	}
}

func TestSnapshotReport(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("reported", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetupIOSession(d); err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	// Provoke one violation for the audit section.
	_ = x.M.CPU.WriteVA(x.M.Stubs.Base, []byte{0})
	r := f.Snapshot()
	if r.Config != "fidelius" || r.Gates.Gate1 == 0 || r.Gates.Shadows == 0 {
		t.Fatalf("report missing activity: %+v", r.Gates)
	}
	if len(r.ProtectedVMs) != 1 || !strings.Contains(r.ProtectedVMs[0], "sev-io") {
		t.Fatalf("vm inventory: %v", r.ProtectedVMs)
	}
	if len(r.Violations) == 0 {
		t.Fatal("violation not in report")
	}
	s := r.String()
	for _, want := range []string{"fidelius status", "gates:", "protected VMs (1)", "write-forbidding"} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
	if err := f.EnableIntegrity(d); err != nil {
		t.Fatal(err)
	}
	if r2 := f.Snapshot(); r2.IntegrityRoot == nil {
		t.Fatal("integrity root missing from report")
	}
}

func TestGuestPagingUnderFidelius(t *testing.T) {
	// The full two-dimensional path under protection: a guest builds its
	// own page tables, enables paging, controls C-bits per page, and
	// shares a plaintext page — all while Fidelius polices the NPT.
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("paging", 64, b)
	if err != nil {
		t.Fatal(err)
	}
	const plainGFN = 9
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		root, err := g.BuildIdentityPT(map[uint64]bool{plainGFN: true})
		if err != nil {
			return err
		}
		g.EnablePaging(root)
		if !g.PagingEnabled() {
			t.Error("paging not enabled")
		}
		if err := g.Write(5<<hw.PageShift, []byte("private via paging")); err != nil {
			return err
		}
		if err := g.Write(plainGFN<<hw.PageShift, []byte("deliberately plain")); err != nil {
			return err
		}
		buf := make([]byte, 18)
		if err := g.Read(5<<hw.PageShift, buf); err != nil {
			return err
		}
		if string(buf) != "private via paging" {
			t.Errorf("paged read-back: %q", buf)
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	// DRAM: C-bit page is ciphertext, C=0 page plaintext — guest C-bit
	// control survives Fidelius's NPT policing.
	p5, _ := d.GPAFrame(5)
	p9, _ := d.GPAFrame(plainGFN)
	raw := make([]byte, 18)
	x.M.Ctl.Mem.ReadRaw(p5.Addr(), raw)
	if bytes.Equal(raw, []byte("private via paging")) {
		t.Fatal("C-bit page plaintext in DRAM")
	}
	x.M.Ctl.Mem.ReadRaw(p9.Addr(), raw)
	if !bytes.Equal(raw, []byte("deliberately plain")) {
		t.Fatal("C=0 page not plaintext in DRAM")
	}
	// The hypervisor still cannot touch either page through its own
	// mapping (unmapped by the PIT claim).
	if err := x.M.CPU.ReadVA(uint64(p9.Addr()), make([]byte, 4)); err == nil {
		t.Fatal("hypervisor mapped a guest page")
	}
}
