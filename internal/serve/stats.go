package serve

import (
	"fmt"
	"io"

	"fidelius/internal/telemetry"
)

// TenantReport is one tenant's serving scorecard, computed from the
// telemetry registry's labelled latency histogram plus the handler-owned
// counters after Run returns.
type TenantReport struct {
	Name       string `json:"name"`
	VM         uint32 `json:"vm"`
	Clients    int    `json:"clients"`
	Admitted   bool   `json:"admitted"`
	Ops        uint64 `json:"ops"`
	Gets       uint64 `json:"gets"`
	Puts       uint64 `json:"puts"`
	Dels       uint64 `json:"dels"`
	Timeouts   uint64 `json:"timeouts"`
	Mismatches uint64 `json:"mismatches"`
	// Errors counts completions that came back StatusError (e.g. a put
	// whose group commit failed); these are excluded from serve.ops.
	Errors uint64  `json:"errors"`
	P50    float64 `json:"p50_cycles"`
	P99    float64 `json:"p99_cycles"`
	// Throughput is completed ops per million cycles of the Run window.
	Throughput float64 `json:"ops_per_mcycle"`
}

// Elapsed reports the Run window in cycles (0 before Run).
func (s *Service) Elapsed() uint64 { return s.elapsed }

// Clients reports the total simulated client-session count.
func (s *Service) Clients() int { return s.cfg.Tenants * s.cfg.ClientsPerTenant }

// Reports builds the per-tenant scorecards. Call after Run.
func (s *Service) Reports() []TenantReport {
	snap := s.hub().Reg.Snapshot()
	out := make([]TenantReport, 0, len(s.tenants))
	for _, t := range s.tenants {
		r := TenantReport{
			Name:       t.name,
			VM:         uint32(t.dom.ID),
			Clients:    s.cfg.ClientsPerTenant,
			Admitted:   t.admitted,
			Ops:        t.ops,
			Gets:       t.gets,
			Puts:       t.puts,
			Dels:       t.dels,
			Timeouts:   t.timeouts,
			Mismatches: t.mismatches + t.stray,
			Errors:     t.errs,
		}
		if h, ok := snap.Histograms[telemetry.MetricName("serve.latency", "tenant", t.name)]; ok && h.Count > 0 {
			r.P50 = h.Quantile(0.50)
			r.P99 = h.Quantile(0.99)
		}
		if s.elapsed > 0 {
			r.Throughput = float64(r.Ops) / (float64(s.elapsed) / 1e6)
		}
		out = append(out, r)
	}
	return out
}

// Objectives returns the scenario's SLO set: the stock fleet-wide serve
// objectives plus the same objectives scoped to every tenant's labelled
// histogram.
func (s *Service) Objectives() []telemetry.Objective {
	objs := telemetry.DefaultServeObjectives()
	for _, t := range s.tenants {
		objs = append(objs, telemetry.TenantServeObjectives(t.name)...)
	}
	return objs
}

// EvaluateSLOs runs the scenario's objectives through the hub's SLO
// engine (burn-rate alerts and audit records included).
func (s *Service) EvaluateSLOs() []telemetry.Evaluation {
	return s.hub().EvaluateSLOs(s.Objectives())
}

// WriteReportTable renders the per-tenant scorecards.
func WriteReportTable(w io.Writer, reports []TenantReport) error {
	if _, err := fmt.Fprintf(w, "%-10s %3s %8s %6s %6s %6s %6s %5s %5s %12s %12s %10s\n",
		"tenant", "vm", "clients", "ops", "gets", "puts", "dels", "tmo", "bad", "p50(cyc)", "p99(cyc)", "ops/Mcyc"); err != nil {
		return err
	}
	for _, r := range reports {
		if !r.Admitted {
			if _, err := fmt.Fprintf(w, "%-10s %3d %8d %s\n",
				r.Name, r.VM, r.Clients, "ADMISSION REFUSED (attestation mismatch; no key material sent)"); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-10s %3d %8d %6d %6d %6d %6d %5d %5d %12.0f %12.0f %10.3f\n",
			r.Name, r.VM, r.Clients, r.Ops, r.Gets, r.Puts, r.Dels, r.Timeouts, r.Mismatches,
			r.P50, r.P99, r.Throughput); err != nil {
			return err
		}
	}
	return nil
}
