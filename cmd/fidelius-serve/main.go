// fidelius-serve boots a protected platform and runs the multi-tenant KV
// serving scenario: per-tenant Fidelius-protected VMs each running the kv
// store over the protected block path, fed by thousands of simulated
// client sessions through sector-framed request rings. Load is open-loop
// (Poisson arrivals at a configured offered rate), so the reported tail
// latency includes queueing delay — coordinated omission cannot hide it.
//
// Every client session is admitted through the attestation gate: the
// session data key is provisioned only after the client verifies a
// VM-bound quote against the launch measurement of the image it prepared.
// -tamper N corrupts the expected measurement of the last N tenants'
// clients, demonstrating the refusal path: those sessions are denied
// before any key material exists, and the denials land in the
// hash-chained audit ledger.
//
// Usage:
//
//	fidelius-serve [-tenants N] [-clients N] [-ops N] [-rate R]
//	               [-parallel] [-width N] [-tamper N] [-duration M]
//	               [-getfrac G] [-compact-smoke] [-json] [-trace out.json]
//
// -rate is each tenant's offered load in operations per million cycles.
// -duration M resizes the workload so arrivals span roughly M million
// cycles (the smoke-test knob). -putfrac/-delfrac override the op mix.
// -getfrac G selects the read-dominated profile instead: G of the ops
// are gets over a hot 3-key-per-client working set (the rest split
// put-heavy 5:2), which is the shape that exercises the guest read
// cache. -smoke turns the run into a pass/fail gate: exit nonzero if
// any evaluated SLO burns its budget or any op misses its deadline — CI
// runs this at the old seek-bound knee's offered rate, where the
// group-commit put path must now cruise. -compact-smoke replaces the
// scenario with the long-lived-tenant gate: one tenant whose write
// volume overwrites its store region several times, passing only if
// online compaction kept it alive (at least one compaction, zero
// errored or mismatched ops). -json dumps the per-tenant reports as
// JSON; -trace captures the run (serve-request spans included) as a
// Chrome trace_event timeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"fidelius"
	"fidelius/internal/telemetry"
)

func main() {
	tenants := flag.Int("tenants", 8, "number of tenant VMs")
	clients := flag.Int("clients", 128, "simulated client sessions per tenant")
	ops := flag.Int("ops", 2, "operations per client session")
	rate := flag.Float64("rate", 0.15, "offered load per tenant, ops per million cycles")
	parallel := flag.Bool("parallel", false, "schedule tenants with the parallel scheduler")
	width := flag.Int("width", 4, "parallel scheduler width")
	tamper := flag.Int("tamper", 0, "tamper the expected measurement of the last N tenants (admission must refuse them)")
	duration := flag.Float64("duration", 0, "resize the workload so arrivals span ~this many million cycles (0 = use -ops)")
	putFrac := flag.Float64("putfrac", 0, "fraction of ops that are puts (0 = package default mix)")
	delFrac := flag.Float64("delfrac", 0, "fraction of ops that are deletes (0 = package default mix)")
	getFrac := flag.Float64("getfrac", 0, "get-heavy profile: this fraction of ops are gets over a hot keyspace (overrides -putfrac/-delfrac)")
	smoke := flag.Bool("smoke", false, "gate mode: exit nonzero on any SLO burn or deadline miss")
	compactSmoke := flag.Bool("compact-smoke", false, "long-lived-tenant gate: overwrite the store region several times; exit nonzero unless compaction kept the tenant alive")
	jsonOut := flag.Bool("json", false, "dump per-tenant reports as JSON")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline to this file")
	flag.Parse()

	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	plat.StartAudit()
	if *traceOut != "" {
		plat.StartTrace(0)
	}

	cfg := fidelius.ServeConfig{
		Tenants:          *tenants,
		ClientsPerTenant: *clients,
		OpsPerClient:     *ops,
		RatePerMCycle:    *rate,
		PutFrac:          *putFrac,
		DelFrac:          *delFrac,
		Parallel:         *parallel,
		Width:            *width,
	}
	if *getFrac > 0 {
		g := *getFrac
		if g > 1 {
			g = 1
		}
		// Split the non-get remainder put-heavy (5:2, like the bench
		// sweep's get-heavy profile) and shrink the keyspace so repeated
		// gets actually revisit keys — the cache-friendly shape.
		cfg.PutFrac = (1 - g) * 5 / 7
		cfg.DelFrac = (1 - g) * 2 / 7
		cfg.KeySpace = 3
	}
	if *duration > 0 {
		// Fit the arrival window: rate ops/Mcycle/tenant for M Mcycles.
		total := int(*rate * *duration)
		cfg.OpsPerClient = total / *clients
		if cfg.OpsPerClient < 1 {
			cfg.OpsPerClient = 1
		}
	}
	if *compactSmoke {
		// The long-lived-tenant shape: 8 clients churn a 4-key-per-client
		// working set with 90% puts into a 128-sector region — several
		// times the region's capacity, so the run only completes cleanly
		// if online compaction keeps reclaiming the overwritten records.
		cfg.Tenants = 1
		cfg.ClientsPerTenant = 8
		cfg.OpsPerClient = 64
		cfg.RatePerMCycle = 2.0
		cfg.PutFrac = 0.9
		cfg.DelFrac = 0.05
		cfg.KeySpace = 4
		cfg.StoreSectors = 128
		cfg.Seed = 5
		cfg.TamperTenants = nil
	}
	for i := 0; i < *tamper && i < *tenants; i++ {
		cfg.TamperTenants = append(cfg.TamperTenants, *tenants-1-i)
	}

	svc, err := plat.NewServeService(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving: %d tenants x %d clients = %d sessions, %d ops each, offered %.3g ops/Mcycle/tenant\n",
		cfg.Tenants, cfg.ClientsPerTenant, svc.Clients(), cfg.OpsPerClient, cfg.RatePerMCycle)

	if errs := svc.Run(); len(errs) != 0 {
		for dom, err := range errs {
			if err != nil {
				log.Fatalf("domain %d: %v", dom, err)
			}
		}
	}

	reports := svc.Reports()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Fatal(err)
		}
	} else {
		var totalOps, timeouts uint64
		admitted := 0
		for _, r := range reports {
			totalOps += r.Ops
			timeouts += r.Timeouts
			if r.Admitted {
				admitted++
			}
		}
		elapsed := svc.Elapsed()
		fmt.Printf("run: %d/%d tenants admitted, %d ops in %d cycles (%.2f ms at 3.4 GHz), %.3f ops/Mcycle, %d deadline misses\n\n",
			admitted, cfg.Tenants, totalOps, elapsed, float64(elapsed)/3.4e6,
			float64(totalOps)/(float64(elapsed)/1e6), timeouts)
		if err := fidelius.WriteServeReportTable(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
		snap := plat.Metrics()
		hits, misses := snap.Counters["kv.cache_hits"], snap.Counters["kv.cache_misses"]
		hitPct := 0.0
		if hits+misses > 0 {
			hitPct = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("kv: %d compactions reclaimed %d sectors; read cache %.1f%% hits (%d/%d); %d doorbell holds\n",
			snap.Counters["kv.compactions"], snap.Counters["kv.compact_reclaimed"],
			hitPct, hits, hits+misses, snap.Counters["serve.holds"])
		fmt.Println()
		fmt.Println("serving service-level objectives:")
		if err := telemetry.WriteSLOTable(os.Stdout, svc.EvaluateSLOs()); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		recs := plat.AuditRecords()
		head := plat.AuditHead()
		if err := fidelius.VerifyAuditChain(recs, head); err != nil {
			fmt.Printf("audit ledger: %d records, VERIFICATION FAILED: %v\n", len(recs), err)
			os.Exit(1)
		}
		rejects := 0
		for _, rec := range recs {
			if rec.Class == "attest-reject" {
				rejects++
			}
		}
		fmt.Printf("audit ledger: %d records (%d admission refusals), hash chain verified (head %x..)\n",
			len(recs), rejects, head[:8])
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := plat.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *smoke {
		var timeouts uint64
		for _, r := range reports {
			timeouts += r.Timeouts
		}
		burned := 0
		for _, ev := range svc.EvaluateSLOs() {
			if !ev.Skipped && !ev.Pass {
				fmt.Fprintf(os.Stderr, "smoke: SLO %q burned (value %.0f)\n", ev.Name, ev.Value)
				burned++
			}
		}
		if timeouts > 0 {
			fmt.Fprintf(os.Stderr, "smoke: %d ops missed their deadline\n", timeouts)
		}
		if burned > 0 || timeouts > 0 {
			os.Exit(1)
		}
		fmt.Println("smoke: all evaluated SLOs within budget, zero deadline misses")
	}
	if *compactSmoke {
		snap := plat.Metrics()
		var totalOps, mismatches, errs uint64
		for _, r := range reports {
			totalOps += r.Ops
			mismatches += r.Mismatches
			errs += r.Errors
		}
		compactions := snap.Counters["kv.compactions"]
		fail := false
		if compactions == 0 {
			fmt.Fprintln(os.Stderr, "compact-smoke: the run never compacted — the scenario did not exercise reclamation")
			fail = true
		}
		if errs > 0 || mismatches > 0 {
			fmt.Fprintf(os.Stderr, "compact-smoke: %d errored and %d mismatched ops — compaction did not keep the store serving\n", errs, mismatches)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		fmt.Printf("compact-smoke: %d compactions reclaimed %d sectors; %d ops served with zero errors\n",
			compactions, snap.Counters["kv.compact_reclaimed"], totalOps)
	}
	if err := svc.Shutdown(); err != nil {
		log.Fatal(err)
	}
}
