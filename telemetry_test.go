package fidelius

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fidelius/internal/telemetry"
)

// TestTelemetryEndToEnd drives a protected VM session with tracing on and
// checks the whole observability chain: the unified registry serves the
// gate statistics, the trace carries every event family the paper's hot
// paths emit, and the Chrome export labels tracks per VM.
func TestTelemetryEndToEnd(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	plat.StartTrace(0)

	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("telemetry-kernel"), 256)
	diskImg := bytes.Repeat([]byte("disk-content-16b"), 64)
	bundle, kblk, err := PrepareGuest(owner, plat.PlatformKey(), kernel, diskImg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := plat.LaunchVM("traced-guest", 64, bundle)
	if err != nil {
		t.Fatal(err)
	}
	dk := NewDisk(128)
	if _, err := plat.AttachDisk(vm, dk, 2, 1, bundle); err != nil {
		t.Fatal(err)
	}
	plat.StartVCPU(vm, func(g *GuestEnv) error {
		if err := g.Write(0x8000, []byte("traced payload00")); err != nil {
			return err
		}
		buf := make([]byte, 16)
		if err := g.Read(0x8000, buf); err != nil {
			return err
		}
		if _, err := g.Hypercall(HCVoid); err != nil {
			return err
		}
		bf, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		front, err := NewAESNIFront(g, bf, kblk)
		if err != nil {
			return err
		}
		sector := make([]byte, SectorSize)
		return front.ReadSectors(0, sector)
	})
	if err := plat.Run(vm); err != nil {
		t.Fatal(err)
	}

	// One accounting mechanism: GateStats is a read-out of the registry.
	snap := plat.Metrics()
	stats := plat.F.Stats()
	if stats.Gate1 != snap.Counters["gate.type1"] ||
		stats.Gate2 != snap.Counters["gate.type2"] ||
		stats.Gate3 != snap.Counters["gate.type3"] ||
		stats.Shadows != snap.Counters["vmcb.shadows"] {
		t.Fatalf("GateStats diverges from registry: %+v vs %v", stats, snap.Counters)
	}
	if stats.Gate1 == 0 || stats.Shadows == 0 {
		t.Fatalf("protected run recorded no gate activity: %+v", stats)
	}
	if snap.Counters["cpu.vmexits"] == 0 || snap.Counters["sev.commands"] == 0 {
		t.Fatalf("missing core counters: %v", snap.Counters)
	}
	if snap.Counters["blk.requests"] == 0 {
		t.Fatal("block request counter not driven by the PV ring")
	}

	// The trace must carry the paper's event families.
	tr := plat.Telemetry().Trace()
	if tr == nil || len(tr.Events()) == 0 {
		t.Fatal("no trace captured")
	}
	seen := map[telemetry.Kind]bool{}
	for _, e := range tr.Events() {
		seen[e.Kind] = true
	}
	for _, k := range []telemetry.Kind{
		telemetry.KindVMRun, telemetry.KindVMExit,
		telemetry.KindGate1, telemetry.KindGate3,
		telemetry.KindShadowSave, telemetry.KindShadowVerify,
		telemetry.KindSEVCommand,
		telemetry.KindMemEncrypt, telemetry.KindMemDecrypt,
		telemetry.KindBlkRequest, telemetry.KindHypercall,
	} {
		if !seen[k] {
			t.Errorf("event kind %v missing from trace", k)
		}
	}

	// Chrome export: valid JSON, and the VM's track is named.
	var out strings.Builder
	if err := plat.WriteTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			PID  uint32          `json:"pid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var named bool
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.PID == uint32(vm.ID) &&
			strings.Contains(string(e.Args), "traced-guest") {
			named = true
		}
	}
	if !named {
		t.Fatal("VM process track not labeled with the domain name")
	}

	// Violation audit log rides the same stream: the start-info page is
	// under the write-once policy and AttachDisk already wrote it, so a
	// second write must raise a violation in registry, trace and log.
	pre := snap.Counters["violations.total"]
	if err := plat.X.WriteStartInfo(vm); err == nil {
		t.Fatal("second start-info write should be vetoed")
	}
	post := plat.Metrics().Counters["violations.total"]
	if post <= pre {
		t.Fatalf("violation not counted: %d -> %d", pre, post)
	}
	var gotViolation bool
	for _, e := range plat.Telemetry().Trace().Events() {
		if e.Kind == telemetry.KindViolation {
			gotViolation = true
		}
	}
	if !gotViolation {
		t.Fatal("violation missing from event stream")
	}
	if len(plat.Violations()) == 0 {
		t.Fatal("violation missing from audit log")
	}
	var dump strings.Builder
	plat.DumpViolations(&dump)
	if !strings.Contains(dump.String(), "violation") {
		t.Fatalf("DumpViolations output: %q", dump.String())
	}
}
