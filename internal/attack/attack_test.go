package attack

import (
	"testing"
)

// expectedBaseline is the paper's security analysis as a table: which
// attacks succeed against plain Xen with SEV guests. Cold boot, DMA
// snooping and rowhammer are already defeated by the SEV hardware itself
// (Section 6.1); everything else exploits the hypervisor's management
// role and succeeds until Fidelius revokes it.
var expectedBaseline = map[string]bool{
	// SEV encrypts the guest's own pages, but the baseline PV front-end
	// stages I/O *plaintext* in the shared pages — so a physical dump
	// still finds the secret there. Fidelius closes exactly this hole.
	"cold-boot":         true,
	"dma-snoop":         false, // targets the guest's own page: ciphertext
	"rowhammer":         false, // SEV hardware: flip avalanches
	"direct-map-read":   true,
	"inter-vm-remap":    true,
	"npt-replay":        true,
	"grant-forgery":     true,
	"key-sharing-abuse": true,
	"register-theft":    true,
	"vmcb-tamper":       true,
	"disable-wp":        true,
	"cr3-pivot":         true,
	"hidden-gadget":     true,
	"iago-cpuid":        true,
	"io-data-theft":     true,
	"code-patch":        true,
	// Interface fuzzing finds no leak even on the baseline: the modelled
	// hypervisor has no memory-safety bugs, only excessive authority.
	// (The XSA corpus quantifies the real-world bug class instead.)
	"hypercall-fuzz": false,
	// The audit ledger's hash chain is pure arithmetic, independent of
	// which configuration is booted: rewriting or truncating the trail is
	// detected even on the unprotected baseline.
	"audit-ledger-tamper": false,
}

func TestAttackMatrixBaseline(t *testing.T) {
	outcomes, err := RunAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(All()) {
		t.Fatalf("ran %d attacks, want %d", len(outcomes), len(All()))
	}
	for _, o := range outcomes {
		want, ok := expectedBaseline[o.Name]
		if !ok {
			t.Errorf("attack %q missing from the expectation table", o.Name)
			continue
		}
		if o.Succeeded != want {
			t.Errorf("baseline %s: got succeeded=%v want %v (%s)", o.Name, o.Succeeded, want, o.Detail)
		}
	}
}

func TestAttackMatrixFidelius(t *testing.T) {
	outcomes, err := RunAll(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Succeeded {
			t.Errorf("fidelius %s: attack succeeded (%s)", o.Name, o.Detail)
		}
	}
}

func TestAttackMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name() == "" || a.Description() == "" {
			t.Errorf("attack %T lacks metadata", a)
		}
		if seen[a.Name()] {
			t.Errorf("duplicate attack name %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Name: "x", Config: "xen", Succeeded: true, Detail: "d"}
	if s := o.String(); s == "" {
		t.Fatal("empty outcome string")
	}
	o.Succeeded = false
	if s := o.String(); s == "" {
		t.Fatal("empty outcome string")
	}
}

// TestAttackMatrixGEKPlatform runs the data-exposure attacks against a
// platform whose victim booted through the Section 8 customized-key
// extension: protection must be identical.
func TestAttackMatrixGEKPlatform(t *testing.T) {
	p, err := SetupGEK()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Attack{
		ColdBoot{}, DMASnoop{}, HypervisorDirectRead{}, IODataTheft{}, KeyAbuse{},
	} {
		if o := a.Run(p); o.Succeeded {
			t.Errorf("gek platform: %s succeeded (%s)", o.Name, o.Detail)
		}
	}
}
