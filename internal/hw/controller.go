package hw

import (
	"sync/atomic"

	"fidelius/internal/cycles"
	"fidelius/internal/telemetry"
)

// Access describes one memory transaction as seen by the memory controller:
// the physical address, whether the translation carried the C-bit, and the
// ASID tag of the issuing context.
type Access struct {
	PA        PhysAddr
	Encrypted bool
	ASID      ASID
}

// ctlStats is the controller's transaction accounting, shared between the
// root controller and every per-vCPU view. Atomics, because concurrent
// domain runners bump them from their own goroutines; they are served
// through Telem.Reg as reader funcs — one accounting mechanism, no
// duplicate registrations per view.
type ctlStats struct {
	reads, writes         atomic.Uint64
	readBytes, writeBytes atomic.Uint64
	decLines, encLines    atomic.Uint64 // cache lines through the AES engine
	dmaReads, dmaWrites   atomic.Uint64
}

// Controller is the memory controller: every CPU-originated access goes
// through it, consulting the cache and the AES engine. DMA bypasses it via
// the DMA type.
//
// A Controller value is a *port* on the memory system: Mem, Eng, Cache,
// Integ, Telem and the transaction stats are shared machine state (each
// thread-safe on its own), while Cycles and the rmw staging buffer are
// private to the port's owning goroutine. View clones a port for another
// vCPU; the serial platform just uses the root controller everywhere.
type Controller struct {
	Mem    *Memory
	Eng    *Engine
	Cache  *Cache
	Cycles *cycles.Counter

	// Clock is the machine's global cycle clock: the root controller's
	// Cycles plus the private counter of every live view. Telemetry
	// timestamps and the guest-visible TSC read it via Now.
	Clock *cycles.Clock

	// Telem is this machine's telemetry hub: the controller owns it
	// because every layer above (MMU, CPU, SEV firmware, hypervisor)
	// already holds a controller reference, and the hub's clock is the
	// controller's cycle clock. Hub methods are nil-safe, so a
	// hand-built Controller{} without a hub still works.
	Telem *telemetry.Hub

	// Integ, when non-nil, is the optional Bonsai-Merkle integrity
	// engine of Section 8: protected lines are verified on every read
	// from DRAM and re-hashed on every mediated write. Physical writes
	// that bypass the controller (DMA, rowhammer) break verification.
	Integ *Integrity

	stats *ctlStats

	// rmw is the write path's read-modify-write staging buffer, reused
	// across transactions. It is the one piece of genuinely per-owner
	// scratch state, which is why views get their own.
	rmw []byte
}

// NewController wires a controller over memory with a cache of cacheLines
// lines.
func NewController(mem *Memory, cacheLines int) *Controller {
	c := &Controller{
		Mem:    mem,
		Eng:    NewEngine(),
		Cache:  NewCache(cacheLines),
		Cycles: &cycles.Counter{},
		stats:  &ctlStats{},
	}
	c.Clock = cycles.NewClock(c.Cycles)
	c.Telem = telemetry.New(c.Clock.Total)
	reg := c.Telem.Reg
	s := c.stats
	reg.RegisterFunc("cycles.total", c.Clock.Total)
	reg.RegisterFunc("mem.reads", s.reads.Load)
	reg.RegisterFunc("mem.writes", s.writes.Load)
	reg.RegisterFunc("mem.read_bytes", s.readBytes.Load)
	reg.RegisterFunc("mem.write_bytes", s.writeBytes.Load)
	reg.RegisterFunc("mem.dec_lines", s.decLines.Load)
	reg.RegisterFunc("mem.enc_lines", s.encLines.Load)
	reg.RegisterFunc("dma.reads", s.dmaReads.Load)
	reg.RegisterFunc("dma.writes", s.dmaWrites.Load)
	reg.RegisterFunc("cache.hits", func() uint64 { h, _ := c.Cache.Stats(); return h })
	reg.RegisterFunc("cache.misses", func() uint64 { _, m := c.Cache.Stats(); return m })
	reg.RegisterFunc("cache.lines", func() uint64 { return uint64(c.Cache.Len()) })
	reg.RegisterFunc("cache.evictions", func() uint64 { return c.Cache.Evictions() })
	reg.RegisterFunc("engine.keys", func() uint64 { return uint64(c.Eng.Keys()) })
	return c
}

// View returns a per-vCPU port on the same memory system: shared DRAM,
// engine, cache, integrity tree, telemetry and transaction stats, but a
// private cycle counter (attached to the machine clock) and a private rmw
// staging buffer. Release the view when its owner goes offline.
func (c *Controller) View() *Controller {
	v := *c
	if c.Clock != nil {
		v.Cycles = c.Clock.Attach()
	} else {
		v.Cycles = &cycles.Counter{}
	}
	v.rmw = nil
	return &v
}

// Release folds a view's private cycle counter back into the machine
// clock. The view must not be used afterwards.
func (c *Controller) Release() {
	if c.Clock != nil {
		c.Clock.Fold(c.Cycles)
	}
}

// Now reads the machine's global clock — the cycles of every port, not
// just this one. This is what a guest TSC read observes.
func (c *Controller) Now() uint64 {
	if c.Clock != nil {
		return c.Clock.Total()
	}
	if c.Cycles != nil {
		return c.Cycles.Total()
	}
	return 0
}

func (c *Controller) charge(n uint64) {
	if c.Cycles != nil {
		c.Cycles.Charge(n)
	}
}

// touchedLines counts the cache lines overlapped by [pa, pa+n); n must be
// positive (an empty transfer touches no lines and must not reach here, or
// the end-address arithmetic underflows).
func touchedLines(pa PhysAddr, n int) uint64 {
	return uint64((pa+PhysAddr(n)-1)/LineSize - pa/LineSize + 1)
}

// Read performs a CPU read. Plaintext is returned for encrypted pages only
// when the issuing ASID's key is installed; a missing key is a fault.
//
// Cache hits return the cached plaintext regardless of the accessing ASID —
// this deliberately reproduces the pre-SNP micro-architecture the paper's
// inter-VM remapping attack exploits (Section 6.2, "a cache-hit may happen
// in a high probability to leak privacy"). The key slot is therefore
// resolved lazily, on the first line actually fetched from DRAM: a fully
// cache-resident read never consults the engine, exactly as the hardware
// never would.
func (c *Controller) Read(a Access, buf []byte) error {
	if err := c.Mem.check(a.PA, len(buf)); err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	if s := c.stats; s != nil {
		s.reads.Add(1)
		s.readBytes.Add(uint64(len(buf)))
	}
	var slot *PageCipher // resolved once, on the first decrypting miss
	decrypted := uint64(0)
	done := 0
	for done < len(buf) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if c.Cache.ReadAt(pa, buf[done:done+n]) {
			c.charge(cycles.CacheAccess)
			done += n
			continue
		}
		c.charge(cycles.MemAccess)
		if a.Encrypted {
			c.charge(cycles.MemEncryptExtra)
		}
		if c.Integ != nil && c.Integ.Protected(base.Frame()) {
			c.charge(cycles.IntegrityCheck)
			if err := c.Integ.Verify(base, LineSize); err != nil {
				// A failed tag is physical tampering caught in the act:
				// ledger it before surfacing the machine-check.
				if c.Telem.Auditing() {
					c.Telem.Audit("integrity-fail", c.Telem.VMForASID(uint32(a.ASID)), err.Error())
				}
				return err
			}
		}
		var fill [LineSize]byte
		end := base + LineSize
		span := LineSize
		if uint64(end) > c.Mem.Size() {
			span = int(PhysAddr(c.Mem.Size()) - base)
		}
		if err := c.Mem.ReadRaw(base, fill[:span]); err != nil {
			return err
		}
		if a.Encrypted {
			if slot == nil {
				s, err := c.Eng.Slot(a.ASID)
				if err != nil {
					return err
				}
				slot = s
			}
			slot.DecryptLine(base, fill[:span])
			if s := c.stats; s != nil {
				s.decLines.Add(1)
			}
			decrypted++
		}
		if span == LineSize {
			c.Cache.Fill(base, &fill)
		}
		copy(buf[done:done+n], fill[off:off+n])
		done += n
	}
	if decrypted > 0 && c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemDecrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			decrypted*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(buf)))
	}
	return nil
}

// Write performs a CPU write. The cache is write-through: DRAM always holds
// the current (ciphertext, for encrypted pages) contents.
func (c *Controller) Write(a Access, data []byte) error {
	if err := c.Mem.check(a.PA, len(data)); err != nil {
		return err
	}
	if len(data) == 0 {
		// An empty store touches no lines; falling through would
		// underflow the touched-line count below and charge ~2^64
		// cycles.
		return nil
	}
	// Resolve the key slot before touching any state: a write with no
	// installed key must fault without mutating cached plaintext, or the
	// cache and DRAM fall out of sync.
	var slot *PageCipher
	if a.Encrypted {
		s, err := c.Eng.Slot(a.ASID)
		if err != nil {
			return err
		}
		slot = s
	}
	if s := c.stats; s != nil {
		s.writes.Add(1)
		s.writeBytes.Add(uint64(len(data)))
	}
	// Update any cached plaintext lines in place (no write-allocate).
	done := 0
	for done < len(data) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(data)-done {
			n = len(data) - done
		}
		c.Cache.WriteAt(pa, data[done:done+n])
		done += n
	}
	// Charge per cache line touched, as the write buffer drains them.
	lines := touchedLines(a.PA, len(data))
	c.charge(lines * cycles.MemAccess)
	if !a.Encrypted {
		if err := c.Mem.WriteRaw(a.PA, data); err != nil {
			return err
		}
		return c.integUpdate(a.PA, len(data), lines)
	}
	c.charge(lines * cycles.MemEncryptExtra)
	if s := c.stats; s != nil {
		s.encLines.Add(lines)
	}
	if c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemEncrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			lines*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(data)))
	}
	// Read-modify-write the whole overlapped block-aligned span through
	// the engine in one DRAM round trip. Only partially-overwritten edge
	// blocks need decrypting; interior blocks are fully replaced. The
	// span is clamped to the installed memory, mirroring Read: trailing
	// sub-block bytes at the very top of DRAM are stored raw.
	end := a.PA + PhysAddr(len(data))
	first := a.PA &^ (BlockSize - 1)
	spanEnd := (end + BlockSize - 1) &^ (BlockSize - 1)
	if uint64(spanEnd) > c.Mem.Size() {
		spanEnd = PhysAddr(c.Mem.Size())
	}
	span := int(spanEnd - first)
	if cap(c.rmw) < span {
		c.rmw = make([]byte, span)
	}
	buf := c.rmw[:span]
	if err := c.Mem.ReadRaw(first, buf); err != nil {
		return err
	}
	// fullEnd bounds the whole blocks in the span; a clamped span may
	// leave a raw sub-block tail past it. Only edge blocks that keep
	// pre-existing bytes need decrypting; interior blocks are replaced
	// wholesale.
	fullEnd := first + PhysAddr(span-span%BlockSize)
	if fullEnd > first {
		if first < a.PA || first+BlockSize > end {
			slot.DecryptBlock(first, buf[:BlockSize])
		}
		if tail := fullEnd - BlockSize; tail > first && fullEnd > end {
			o := int(tail - first)
			slot.DecryptBlock(tail, buf[o:o+BlockSize])
		}
	}
	copy(buf[a.PA-first:], data)
	slot.EncryptLine(first, buf)
	if err := c.Mem.WriteRaw(first, buf); err != nil {
		return err
	}
	return c.integUpdate(a.PA, len(data), lines)
}

// integUpdate re-hashes the protected lines of a store that reached DRAM.
// It runs only on the success path: if the RMW round trip failed, the
// store never landed, and re-hashing would fold whatever DRAM actually
// holds — including a physical tamper — into the trusted tree.
func (c *Controller) integUpdate(pa PhysAddr, n int, lines uint64) error {
	if c.Integ == nil {
		return nil
	}
	c.charge(lines * cycles.IntegrityCheck)
	return c.Integ.Update(pa, n)
}

// ReadPage reads a full page.
func (c *Controller) ReadPage(pfn PFN, encrypted bool, asid ASID, buf *[PageSize]byte) error {
	return c.Read(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, buf[:])
}

// WritePage writes a full page.
func (c *Controller) WritePage(pfn PFN, encrypted bool, asid ASID, data *[PageSize]byte) error {
	return c.Write(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, data[:])
}

// FirmwareWrite stores bytes on behalf of the SEV firmware: raw DRAM
// write with cache invalidation and — because the firmware lives in the
// secure processor next to the BMT root — an integrity-tree update.
func (c *Controller) FirmwareWrite(pa PhysAddr, data []byte) error {
	c.Cache.Invalidate(pa, len(data))
	if err := c.Mem.WriteRaw(pa, data); err != nil {
		return err
	}
	if c.Integ != nil {
		return c.Integ.Update(pa, len(data))
	}
	return nil
}

// DMA is the I/O device view of memory: raw DRAM, no keys. SEV hardware
// forbids DMA into encrypted pages precisely because this path cannot
// decrypt; a DMA read of an encrypted page observes ciphertext.
type DMA struct {
	ctl *Controller
}

// DMA returns the DMA port of the controller.
func (c *Controller) DMA() *DMA { return &DMA{ctl: c} }

// Read copies raw DRAM bytes (ciphertext for encrypted pages), charging
// per overlapped cache line like the CPU path — a page-sized DMA is 64
// line beats on the bus, not one.
func (d *DMA) Read(pa PhysAddr, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	d.ctl.charge(touchedLines(pa, len(buf)) * cycles.MemAccess)
	if s := d.ctl.stats; s != nil {
		s.dmaReads.Add(1)
	}
	return d.ctl.Mem.ReadRaw(pa, buf)
}

// Write stores raw bytes and invalidates overlapping cache lines, exactly
// as a coherent DMA write would. Charged per overlapped cache line.
func (d *DMA) Write(pa PhysAddr, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	d.ctl.charge(touchedLines(pa, len(data)) * cycles.MemAccess)
	if s := d.ctl.stats; s != nil {
		s.dmaWrites.Add(1)
	}
	d.ctl.Cache.Invalidate(pa, len(data))
	return d.ctl.Mem.WriteRaw(pa, data)
}
