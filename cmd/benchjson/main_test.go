package main

import (
	"runtime"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: fidelius
cpu: AMD Ryzen sim
BenchmarkMemRead-4   	 1000000	      1200 ns/op	      32 B/op	       2 allocs/op
BenchmarkMemWrite-4  	  500000	      2400 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseStreamRecordsEnvironment(t *testing.T) {
	rep, err := parseStream(strings.NewReader(sampleStream), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoVersion != runtime.Version() {
		t.Errorf("go version = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if rep.NumCPU != runtime.NumCPU() {
		t.Errorf("num_cpu = %d, want %d", rep.NumCPU, runtime.NumCPU())
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD Ryzen sim" {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Metrics["ns/op"] != 1200 {
		t.Errorf("ns/op = %v, want 1200", rep.Benchmarks[0].Metrics["ns/op"])
	}
}

func mkReport(nsByName map[string]float64, allocsByName map[string]float64) Report {
	var rep Report
	for name, ns := range nsByName {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:       name,
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocsByName[name]},
		})
	}
	return rep
}

func TestDiffReports(t *testing.T) {
	oldRep := mkReport(map[string]float64{"BenchA": 100, "BenchB": 200, "BenchGone": 50},
		map[string]float64{"BenchA": 2, "BenchB": 0})
	newRep := mkReport(map[string]float64{"BenchA": 125, "BenchB": 190, "BenchNew": 10},
		map[string]float64{"BenchA": 2, "BenchB": 0})
	deltas := diffReports(oldRep, newRep)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["BenchA"]; d.NsPct < 24.9 || d.NsPct > 25.1 {
		t.Errorf("BenchA ns delta = %v, want +25%%", d.NsPct)
	}
	if d := byName["BenchB"]; d.NsPct > 0 {
		t.Errorf("BenchB should improve, got %+v", d)
	}
	if !byName["BenchGone"].Missing {
		t.Error("BenchGone should be flagged missing")
	}
	if !byName["BenchNew"].Added {
		t.Error("BenchNew should be flagged added")
	}

	var sb strings.Builder
	if regressed := writeDiff(&sb, deltas, 10); !regressed {
		t.Error("25%% ns/op regression over a 10%% threshold must trip the gate")
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Error("diff table should flag the regression")
	}
	sb.Reset()
	if regressed := writeDiff(&sb, deltas, 30); regressed {
		t.Error("25%% regression under a 30%% threshold must pass")
	}
}
