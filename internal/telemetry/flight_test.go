package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// ---- causal spans -------------------------------------------------------

// clockHub returns a hub whose clock the test advances by hand.
func clockHub() (*Hub, *uint64) {
	now := new(uint64)
	return New(func() uint64 { return *now }), now
}

func TestSpanScopeNesting(t *testing.T) {
	h, now := clockHub()
	h.StartTrace(64)

	outer := h.OpenScope("outer", 1, 7)
	if outer.ID() == 0 {
		t.Fatal("scoped span got no identity")
	}
	*now = 10
	inner := h.OpenScope("inner", 1, 7).Attr("k", "v")
	if got := inner.ID(); got == outer.ID() {
		t.Fatal("inner span reused outer's identity")
	}
	if h.Ambient() != inner.ID() {
		t.Fatalf("ambient = %d, want inner %d", h.Ambient(), inner.ID())
	}
	*now = 20
	inner.Close()
	if h.Ambient() != outer.ID() {
		t.Fatalf("ambient after inner close = %d, want outer %d", h.Ambient(), outer.ID())
	}
	*now = 30
	outer.Close()
	if h.Ambient() != 0 {
		t.Fatalf("ambient after outer close = %d, want 0", h.Ambient())
	}

	spans := h.Trace().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Close order: inner first.
	in, out := spans[0], spans[1]
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("span order wrong: %q, %q", in.Name, out.Name)
	}
	if in.Parent != out.ID {
		t.Errorf("inner parent = %d, want %d", in.Parent, out.ID)
	}
	if out.Parent != 0 {
		t.Errorf("outer parent = %d, want root", out.Parent)
	}
	if in.Start != 10 || in.End != 20 {
		t.Errorf("inner interval = [%d,%d], want [10,20]", in.Start, in.End)
	}
	if len(in.Attrs) != 1 || in.Attrs[0] != (Attr{"k", "v"}) {
		t.Errorf("inner attrs = %v", in.Attrs)
	}
	if in.VM != 1 || in.ASID != 7 {
		t.Errorf("inner vm/asid = %d/%d, want 1/7", in.VM, in.ASID)
	}
}

func TestSpanExplicitParentAndComplete(t *testing.T) {
	h, _ := clockHub()
	h.StartTrace(64)

	parent := h.OpenScope("session", 0, 0)
	child := h.OpenSpan("quantum", 2, 9, parent.ID())
	// Explicit-parent spans must not disturb the ambient register.
	if h.Ambient() != parent.ID() {
		t.Fatalf("OpenSpan moved the ambient register to %d", h.Ambient())
	}
	child.CloseDur(100)
	h.CompleteSpan("sev:activate", 2, 9, parent.ID(), 5, 25, Attr{"cmd", "activate"})
	parent.Close()

	spans := h.Trace().Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	q, sev := spans[0], spans[1]
	if q.Parent != parent.ID() || sev.Parent != parent.ID() {
		t.Errorf("parents = %d,%d, want both %d", q.Parent, sev.Parent, parent.ID())
	}
	if q.End != q.Start+100 {
		t.Errorf("CloseDur end = %d, want start+100", q.End)
	}
	if sev.Start != 5 || sev.End != 25 {
		t.Errorf("CompleteSpan interval = [%d,%d], want [5,25]", sev.Start, sev.End)
	}
}

// TestSpanRingSurvivesEventFlood pins the design point that spans live in
// their own ring: an event flood must not evict the causal skeleton.
func TestSpanRingSurvivesEventFlood(t *testing.T) {
	h, _ := clockHub()
	h.StartTrace(8)
	sp := h.OpenScope("root", 0, 0)
	for i := 0; i < 1000; i++ {
		h.Emit(KindVMExit, 1, 1, 10, 0, 0)
	}
	sp.Close()
	spans := h.Trace().Spans()
	if len(spans) != 1 || spans[0].Name != "root" {
		t.Fatalf("span ring lost the root span: %v", spans)
	}
	if got := h.Trace().SpanTotal(); got != 1 {
		t.Fatalf("span total = %d, want 1", got)
	}
}

func TestSpanWraparound(t *testing.T) {
	h, _ := clockHub()
	h.StartTrace(4)
	for i := 0; i < 10; i++ {
		h.OpenSpan(fmt.Sprintf("s%d", i), 0, 0, 0).Close()
	}
	spans := h.Trace().Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want capacity 4", len(spans))
	}
	if spans[0].Name != "s6" || spans[3].Name != "s9" {
		t.Fatalf("ring kept wrong window: %q..%q", spans[0].Name, spans[3].Name)
	}
	if got := h.Trace().SpanTotal(); got != 10 {
		t.Fatalf("span total = %d, want 10", got)
	}
}

// TestDisabledFlightRecorderAllocFree proves the disabled span and ledger
// paths allocate nothing — the property the <5% hot-path overhead guard
// in internal/hw depends on.
func TestDisabledFlightRecorderAllocFree(t *testing.T) {
	h, _ := clockHub() // no tracer, no ledger
	allocs := testing.AllocsPerRun(200, func() {
		sp := h.OpenScope("off", 1, 1)
		sp.Attr("k", "v")
		sp.Close()
		h.OpenSpan("off", 1, 1, 0).CloseDur(10)
		h.CompleteSpan("off", 1, 1, 0, 0, 10)
		h.SetAmbient(99)
		h.Audit("off", 1, "no ledger armed")
	})
	if allocs != 0 {
		t.Fatalf("disabled flight-recorder path allocates %.1f objects/op, want 0", allocs)
	}
}

// ---- quantile estimator -------------------------------------------------

func TestHistogramQuantile(t *testing.T) {
	// Bounds 10/100/1000 with an overflow bucket.
	bounds := []uint64{10, 100, 1000}
	tests := []struct {
		name    string
		buckets []uint64 // len(bounds)+1
		count   uint64
		q       float64
		want    float64
	}{
		{"empty", []uint64{0, 0, 0, 0}, 0, 0.99, 0},
		{"single bucket median", []uint64{4, 0, 0, 0}, 4, 0.50, 5},  // rank 2 of 4 in (0,10]
		{"single bucket p100", []uint64{4, 0, 0, 0}, 4, 1.0, 10},    // rank 4 → bucket top
		{"second bucket", []uint64{2, 2, 0, 0}, 4, 0.75, 55},        // rank 3 → halfway into (10,100]
		{"overflow saturates", []uint64{0, 0, 0, 5}, 5, 0.99, 1000}, // no upper bound: last finite bound
		{"mixed tail in overflow", []uint64{8, 0, 0, 2}, 10, 0.95, 1000},
		{"q clamped low", []uint64{4, 0, 0, 0}, 4, -1, 2.5}, // rank floor 1 of 4
		{"q clamped high", []uint64{4, 0, 0, 0}, 4, 2, 10},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := HistogramSnapshot{Bounds: bounds, Buckets: tc.buckets, Count: tc.count}
			if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramFracAtMost(t *testing.T) {
	bounds := []uint64{10, 100}
	tests := []struct {
		name    string
		buckets []uint64
		count   uint64
		v       float64
		want    float64
	}{
		{"empty is vacuously within", []uint64{0, 0, 0}, 0, 50, 1},
		{"all below", []uint64{4, 0, 0}, 4, 10, 1},
		{"half of straddled bucket", []uint64{0, 4, 0}, 4, 55, 0.5},
		{"overflow counts above", []uint64{2, 0, 2}, 4, 1e9, 0.5},
		{"below first bucket", []uint64{4, 0, 0}, 4, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := HistogramSnapshot{Bounds: bounds, Buckets: tc.buckets, Count: tc.count}
			if got := s.FracAtMost(tc.v); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("FracAtMost(%v) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// ---- audit ledger -------------------------------------------------------

func TestLedgerAppendAndVerify(t *testing.T) {
	var now uint64
	l := NewLedger(func() uint64 { now += 7; return now })
	for i := 0; i < 5; i++ {
		l.Append("gate-denial", uint32(i), fmt.Sprintf("detail %d", i))
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d, want 5", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("honest ledger failed verification: %v", err)
	}
	recs := l.Records()
	if recs[0].Prev != ([32]byte{}) {
		t.Error("genesis record must chain from zero")
	}
	if recs[4].Hash != l.Head() {
		t.Error("head must equal the last record's hash")
	}
	if err := VerifyChain(recs, l.Head()); err != nil {
		t.Fatalf("exported copy failed verification: %v", err)
	}
	if err := VerifyChain(nil, [32]byte{}); err != nil {
		t.Fatalf("empty chain with zero head must verify: %v", err)
	}
}

func TestLedgerTamperDetection(t *testing.T) {
	l := NewLedger(nil)
	for i := 0; i < 4; i++ {
		l.Append("integrity-fail", 1, fmt.Sprintf("page %d", i))
	}
	recs := l.Records()
	head := l.Head()

	tamper := func(name string, mutate func([]Record) []Record) {
		t.Run(name, func(t *testing.T) {
			forged := mutate(append([]Record{}, recs...))
			if VerifyChain(forged, head) == nil {
				t.Fatalf("%s passed verification", name)
			}
		})
	}
	tamper("rewrite detail", func(r []Record) []Record {
		r[2].Detail = "benign"
		return r
	})
	tamper("rewrite with rehash", func(r []Record) []Record {
		r[2].Detail = "benign"
		r[2].Hash = HashRecord(r[2])
		return r
	})
	tamper("reorder", func(r []Record) []Record {
		r[1], r[2] = r[2], r[1]
		return r
	})
	tamper("truncate", func(r []Record) []Record {
		return r[:3]
	})
	tamper("delete middle", func(r []Record) []Record {
		return append(r[:1], r[2:]...)
	})
	tamper("splice foreign record", func(r []Record) []Record {
		other := NewLedger(nil)
		other.Append("gate-denial", 9, "foreign")
		return append(r, other.Records()...)
	})

	// Full rewrite-and-rechain from the edit point is internally
	// consistent — only the externally held head exposes it.
	rechained := NewLedger(nil)
	for i, r := range recs {
		d := r.Detail
		if i == 2 {
			d = "benign"
		}
		rechained.Append(r.Class, r.VM, d)
	}
	if err := rechained.Verify(); err != nil {
		t.Fatalf("rechained forgery should self-verify: %v", err)
	}
	if VerifyChain(rechained.Records(), head) == nil {
		t.Fatal("rechained forgery passed against the live head")
	}
}

func TestHubLedgerLifecycle(t *testing.T) {
	h, _ := clockHub()
	if h.Auditing() {
		t.Fatal("fresh hub must not be auditing")
	}
	h.Audit("dropped", 1, "no ledger") // must be a no-op
	led := h.StartLedger()
	if !h.Auditing() || h.Ledger() != led {
		t.Fatal("StartLedger did not arm the hub")
	}
	h.Audit("gate-denial", 3, "type1 write")
	if led.Len() != 1 {
		t.Fatalf("ledger has %d records, want 1", led.Len())
	}
	if got := h.M.AuditRecords.Value(); got != 1 {
		t.Fatalf("audit.records = %d, want 1", got)
	}
	rec := led.Records()[0]
	if rec.Class != "gate-denial" || rec.VM != 3 {
		t.Fatalf("record = %+v", rec)
	}
	stopped := h.StopLedger()
	if stopped != led || h.Auditing() {
		t.Fatal("StopLedger did not disarm the hub")
	}
	h.Audit("dropped", 1, "after stop")
	if led.Len() != 1 {
		t.Fatal("audit after StopLedger still appended")
	}
}

// ---- SLO engine ---------------------------------------------------------

// sloSnapshot builds a snapshot whose vmexit histogram has good
// observations at ~50 cycles and bad ones in the overflow bucket.
func sloSnapshot(good, bad uint64) Snapshot {
	r := NewRegistry()
	h := r.Histogram("vmexit.cycles", CycleBuckets)
	for i := uint64(0); i < good; i++ {
		h.Observe(50)
	}
	for i := uint64(0); i < bad; i++ {
		h.Observe(1 << 40)
	}
	return r.Snapshot()
}

func TestEvaluateSLOs(t *testing.T) {
	obj := Objective{Name: "p50", Metric: "vmexit.cycles", Quantile: 0.5, Max: 4096, Target: 0.9, MinCount: 8}

	t.Run("pass", func(t *testing.T) {
		evals := EvaluateSLOs(sloSnapshot(20, 0), []Objective{obj})
		ev := evals[0]
		if ev.Skipped || !ev.Pass {
			t.Fatalf("healthy workload failed: %+v", ev)
		}
		if ev.BurnRate != 0 {
			t.Errorf("burn rate = %v, want 0", ev.BurnRate)
		}
	})
	t.Run("fail with burn rate", func(t *testing.T) {
		// 5 bad of 20: BadFrac 0.25, budget 0.1 → burn 2.5.
		evals := EvaluateSLOs(sloSnapshot(15, 5), []Objective{obj})
		ev := evals[0]
		if ev.Skipped || ev.Pass {
			t.Fatalf("burning workload passed: %+v", ev)
		}
		if math.Abs(ev.BurnRate-2.5) > 1e-9 {
			t.Errorf("burn rate = %v, want 2.5", ev.BurnRate)
		}
	})
	t.Run("skip below min count", func(t *testing.T) {
		evals := EvaluateSLOs(sloSnapshot(3, 0), []Objective{obj})
		if !evals[0].Skipped {
			t.Fatalf("3 < MinCount 8 must skip: %+v", evals[0])
		}
	})
	t.Run("skip absent metric", func(t *testing.T) {
		o := obj
		o.Metric = "no.such.metric"
		evals := EvaluateSLOs(sloSnapshot(20, 0), []Objective{o})
		if !evals[0].Skipped {
			t.Fatalf("absent metric must skip: %+v", evals[0])
		}
	})
	t.Run("pure quantile check when target unset", func(t *testing.T) {
		o := obj
		o.Target = 0
		evals := EvaluateSLOs(sloSnapshot(20, 0), []Objective{o})
		if !evals[0].Pass {
			t.Fatalf("quantile-only objective failed: %+v", evals[0])
		}
	})
}

func TestHubEvaluateSLOsEmitsAlert(t *testing.T) {
	h, _ := clockHub()
	h.StartTrace(64)
	led := h.StartLedger()
	hist := h.Reg.Histogram("vmexit.cycles", CycleBuckets)
	for i := 0; i < 15; i++ {
		hist.Observe(50)
	}
	for i := 0; i < 5; i++ {
		hist.Observe(1 << 40)
	}
	obj := Objective{Name: "p50", Metric: "vmexit.cycles", Quantile: 0.5, Max: 4096, Target: 0.9, MinCount: 8}
	evals := h.EvaluateSLOs([]Objective{obj})
	if len(evals) != 1 || evals[0].Pass {
		t.Fatalf("expected one failing evaluation: %+v", evals)
	}
	if got := h.M.SLOAlerts.Value(); got != 1 {
		t.Fatalf("slo.alerts = %d, want 1", got)
	}
	var alert *Event
	for _, e := range h.Trace().Events() {
		if e.Kind == KindSLOAlert {
			ev := e
			alert = &ev
		}
	}
	if alert == nil {
		t.Fatal("no KindSLOAlert event emitted")
	}
	if alert.Arg1 != 2500 {
		t.Errorf("alert burn arg = %d, want 2500 (burn x1000)", alert.Arg1)
	}
	if led.Len() != 1 || led.Records()[0].Class != "slo-burn" {
		t.Fatalf("burn must land in the audit ledger: %v", led.Records())
	}
}

func TestWriteSLOTable(t *testing.T) {
	evals := []Evaluation{
		{Objective: Objective{Name: "b-fail", Metric: "m"}, Count: 10, BurnRate: 3, Pass: false},
		{Objective: Objective{Name: "a-pass", Metric: "m"}, Count: 10, Pass: true},
		{Objective: Objective{Name: "c-skip", Metric: "m"}, Skipped: true},
	}
	var sb strings.Builder
	if err := WriteSLOTable(&sb, evals); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PASS", "FAIL", "SKIP (insufficient samples)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a-pass before b-fail before c-skip.
	if ia, ib := strings.Index(out, "a-pass"), strings.Index(out, "b-fail"); ia > ib {
		t.Error("table not sorted by objective name")
	}
}

// ---- concurrency (run under -race via make stress) ----------------------

// TestConcurrentSpanAndLedger opens and closes spans and appends audit
// records from many goroutines at once: under -race this proves the span
// ring, ambient register and ledger chain are data-race free, and the
// chain must still verify afterwards with nothing lost.
func TestConcurrentSpanAndLedger(t *testing.T) {
	h := New(nil)
	h.StartTrace(1 << 12)
	led := h.StartLedger()

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := h.OpenScope("scope", uint32(w), uint32(w))
				child := h.OpenSpan("child", uint32(w), uint32(w), sp.ID())
				child.CloseDur(5)
				h.Audit("gate-denial", uint32(w), "concurrent append")
				sp.Close()
			}
		}(w)
	}
	wg.Wait()

	const wantSpans = workers * perWorker * 2
	if got := h.Trace().SpanTotal(); got != wantSpans {
		t.Errorf("span total = %d, want %d", got, wantSpans)
	}
	if got := led.Len(); got != workers*perWorker {
		t.Errorf("ledger len = %d, want %d", got, workers*perWorker)
	}
	if err := led.Verify(); err != nil {
		t.Fatalf("ledger chain broken after concurrent appends: %v", err)
	}
	// Note: h.Ambient() may legitimately be non-zero here. Unsynchronized
	// concurrent scopes hand the register back via compare-and-swap, so a
	// scope whose successor already closed restores its own predecessor —
	// possibly a span from another goroutine. That is the documented
	// reason ScheduleParallel's quanta pass an explicit parent (OpenSpan)
	// instead of relying on scope nesting.
}
