// fidelius-demo walks through the full protected-VM life cycle of the
// paper (Section 4.3): system initialisation, VM preparation, encrypted
// boot, runtime memory and I/O protection, secure memory sharing,
// migration, and shutdown — narrating what each step guarantees.
//
// Usage:
//
//	fidelius-demo [-trace out.json] [-metrics]
//
// -trace captures the whole session as a Chrome trace_event timeline
// (loadable in chrome://tracing or Perfetto); -metrics prints the
// telemetry registry snapshot after the run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"fidelius"
	"fidelius/internal/xen"
)

func step(n int, title string) { fmt.Printf("\n[%d] %s\n", n, title) }

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of the session to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metric snapshot after the run")
	flag.Parse()

	step(1, "System initialisation (§4.3.1): boot machine, hypervisor, late-launch Fidelius")
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	var traceFile *os.File
	if *traceOut != "" {
		// Create the output file up front so a bad path fails before the
		// walkthrough, and start before LaunchVM so the SEV boot commands
		// are on the timeline too.
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		plat.StartTrace(0)
	}
	plat.StartAudit()
	fmt.Printf("    hypervisor code measured: %x…\n", plat.F.HypervisorMeasurement[:12])
	fmt.Println("    privileged instructions monopolised, page tables write-protected,")
	fmt.Println("    VMRUN and MOV CR3 stub pages unmapped, SEV metadata self-maintained")

	step(2, "VM preparing (§4.3.2): the owner builds encrypted kernel and disk images offline")
	owner, err := fidelius.NewOwner()
	if err != nil {
		log.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("DEMO-KERNEL-TEXT"), 512)
	diskImage := bytes.Repeat([]byte("root-filesystem."), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, diskImage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    kernel image: %d pages under the transport key; Kblk embedded at offset %d\n",
		bundle.Image.NumPages(), fidelius.KblkOffset)
	fmt.Printf("    Kwrap (wrapped TEK/TIK) is public: %d bytes\n", len(bundle.Kwrap.Ciphertext))

	step(3, "VM bootup (§4.3.3): RECEIVE_START / UPDATE / FINISH, then ACTIVATE")
	vm, err := plat.LaunchVM("demo", 64, bundle)
	if err != nil {
		log.Fatal(err)
	}
	if err := plat.SetupIOSession(vm); err != nil {
		log.Fatal(err)
	}
	dk := fidelius.NewDisk(256)
	backend, err := plat.AttachDisk(vm, dk, 2, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	backend.SnoopEnabled = true
	fmt.Printf("    vm %q booted: ASID %d, measurement verified against Mvm\n", vm.Name, vm.ASID)

	step(4, "Runtime protection (§4.3.4-4.3.5): memory and I/O")
	kbase := plat.KernelBase(vm, bundle) * fidelius.PageSize
	payload := bytes.Repeat([]byte("telemetry-record"), fidelius.SectorSize/16)
	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		head := make([]byte, 16)
		if err := g.Read(kbase, head); err != nil {
			return err
		}
		fmt.Printf("    guest reads its kernel: %q\n", head)
		if err := g.Write(0x8000, []byte("runtime secret")); err != nil {
			return err
		}
		bf, err := fidelius.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		front := fidelius.NewSEVFront(g, bf)
		if err := front.WriteSectors(10, payload); err != nil {
			return err
		}
		back := make([]byte, len(payload))
		if err := front.ReadSectors(10, back); err != nil {
			return err
		}
		fmt.Printf("    guest disk round trip ok: %v\n", bytes.Equal(back, payload))
		return nil
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}
	pfn, _ := vm.GPAFrame(8)
	if err := plat.X.M.CPU.ReadVA(uint64(pfn.Addr()), make([]byte, 4)); err != nil {
		fmt.Println("    hypervisor read of guest memory: BLOCKED")
	}
	fmt.Printf("    driver domain saw plaintext on the I/O path: %v\n",
		bytes.Contains(backend.Snoop, []byte("telemetry-record")))

	step(5, "Secure memory sharing (§4.3.7): pre_sharing_op + GIT policy")
	bundle2, _, _ := fidelius.PrepareGuest(owner, plat.PlatformKey(), nil, nil)
	peer, err := plat.LaunchVM("peer", 32, bundle2)
	if err != nil {
		log.Fatal(err)
	}
	var ref uint64
	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		if err := g.WriteUnencrypted(12*fidelius.PageSize, []byte("shared channel")); err != nil {
			return err
		}
		if _, err := g.Hypercall(fidelius.HCPreSharingOp, uint64(peer.ID), 12, 1, 0); err != nil {
			return err
		}
		ref, err = g.Hypercall(fidelius.HCGrantTableOp, xen.GntOpGrant, uint64(peer.ID), 12, 0)
		return err
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}
	plat.StartVCPU(peer, func(g *fidelius.GuestEnv) error {
		dst := uint64(peer.MemPages)
		if _, err := g.Hypercall(fidelius.HCGrantTableOp, xen.GntOpMap, uint64(vm.ID), ref, dst); err != nil {
			return err
		}
		buf := make([]byte, 14)
		if err := g.ReadUnencrypted(dst*fidelius.PageSize, buf); err != nil {
			return err
		}
		fmt.Printf("    peer read through sanctioned grant: %q\n", buf)
		return nil
	})
	if err := plat.Run(peer); err != nil {
		log.Fatal(err)
	}

	step(6, "Migration (§4.3.6): SEND/RECEIVE to a second machine")
	target, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := plat.MigrateOut(peer, target)
	if err != nil {
		log.Fatal(err)
	}
	moved, err := target.MigrateIn(snap, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    vm %q migrated: %d encrypted pages, measurement verified\n", moved.Name, len(snap.Packets))

	step(7, "Remote attestation (§4.3.1): a verifier checks the platform quote")
	nonce := []byte("tenant-verifier-nonce")
	quote, err := plat.Attest(nonce)
	if err != nil {
		log.Fatal(err)
	}
	akey, _ := plat.AttestationKey()
	fmt.Printf("    quote over measurement %x… verifies: %v\n",
		quote.HVMeasurement[:8], fidelius.VerifyQuote(akey, quote, nonce) == nil)

	step(8, "Shutdown (§4.3.8): DEACTIVATE, DECOMMISSION, PIT/GIT scrub")
	if err := plat.Shutdown(vm); err != nil {
		log.Fatal(err)
	}
	if err := target.Shutdown(moved); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    done; policy violations during the benign session: %d\n", len(plat.Violations()))

	step(9, "Observability: audit ledger, SLOs, metrics, timeline")
	fmt.Print("    ")
	plat.DumpViolations(os.Stdout)
	recs := plat.AuditRecords()
	head := plat.AuditHead()
	if err := fidelius.VerifyAuditChain(recs, head); err != nil {
		fmt.Printf("    audit ledger: %d records, VERIFICATION FAILED: %v\n", len(recs), err)
	} else {
		fmt.Printf("    audit ledger: %d records, hash chain verified (head %x…)\n",
			len(recs), head[:8])
	}
	for _, ev := range plat.EvaluateSLOs(fidelius.DefaultSLOs()) {
		verdict := "PASS"
		switch {
		case ev.Skipped:
			verdict = "SKIP"
		case !ev.Pass:
			verdict = "FAIL"
		}
		fmt.Printf("    slo %-12s q%.2f of %s ≤ %.0f cycles: %s (burn %.2f over %d samples)\n",
			ev.Name, ev.Quantile, ev.Metric, ev.Max, verdict, ev.BurnRate, ev.Count)
	}
	if *metrics {
		if err := plat.Metrics().WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if traceFile != nil {
		if err := plat.WriteTrace(traceFile); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		if tr := plat.Telemetry().Trace(); tr != nil {
			fmt.Printf("    timeline: %d events (%d dropped), %d causal spans written to %s\n",
				len(tr.Events()), tr.Dropped(), len(tr.Spans()), *traceOut)
		}
	}
}
