package xen

import (
	"bytes"
	"testing"
	"testing/quick"

	"fidelius/internal/disk"
)

func TestPropertyGrantEntryMarshal(t *testing.T) {
	f := func(flags, grantee uint16, gfn uint64) bool {
		e := GrantEntry{Flags: flags, Grantee: DomID(grantee), GFN: gfn}
		var b [GrantEntrySize]byte
		e.Marshal(b[:])
		return UnmarshalGrantEntry(b[:]) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStartInfoMarshal(t *testing.T) {
	f := func(dom uint16, mem, ring, data, n uint32, port, serveGFN, servePort uint32) bool {
		si := &StartInfo{
			DomID:     DomID(dom),
			MemPages:  uint64(mem),
			RingGFN:   uint64(ring),
			DataGFN:   uint64(data),
			DataLen:   uint64(n),
			Port:      port,
			ServeGFN:  uint64(serveGFN),
			ServePort: servePort,
		}
		got, err := UnmarshalStartInfo(si.Marshal())
		return err == nil && *got == *si
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRequestBeyondDisk(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "oob", MemPages: 32, SEV: true})
	dk := disk.New(16) // tiny disk
	if _, err := x.AttachBlockDevice(d, dk, 2, 1); err != nil {
		t.Fatal(err)
	}
	x.WriteStartInfo(d)
	var werr, rerr error
	x.StartVCPU(d, func(g *GuestEnv) error {
		f, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		werr = f.WriteSectors(12, make([]byte, 8*disk.SectorSize)) // crosses the end
		rerr = f.ReadSectors(100, make([]byte, disk.SectorSize))
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if werr == nil {
		t.Error("write beyond disk should fail")
	}
	if rerr == nil {
		t.Error("read beyond disk should fail")
	}
}

func TestBlockUnalignedTransfersRejected(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "una", MemPages: 32, SEV: true})
	if _, err := x.AttachBlockDevice(d, disk.New(64), 1, 1); err != nil {
		t.Fatal(err)
	}
	x.WriteStartInfo(d)
	x.StartVCPU(d, func(g *GuestEnv) error {
		f, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		if err := f.WriteSectors(0, make([]byte, 100)); err == nil {
			t.Error("unaligned write accepted")
		}
		if err := f.ReadSectors(0, make([]byte, 700)); err == nil {
			t.Error("unaligned read accepted")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestAttachBlockDeviceValidation(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "v", MemPages: 8, SEV: true})
	if _, err := x.AttachBlockDevice(d, disk.New(64), 0, 1); err == nil {
		t.Error("zero data pages accepted")
	}
	if _, err := x.AttachBlockDevice(d, disk.New(64), 20, 1); err == nil {
		t.Error("data area larger than the domain accepted")
	}
	if _, ok := x.Backend(d.ID); ok {
		t.Error("failed attach registered a backend")
	}
}

func TestFrontendWithoutDevice(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "nodev", MemPages: 16, SEV: true})
	x.StartVCPU(d, func(g *GuestEnv) error {
		if _, err := NewBlockFrontend(g); err == nil {
			t.Error("front-end without a device should fail")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestSeekModelChargesRandomAccess(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "seek", MemPages: 32, SEV: true})
	dk := disk.New(256)
	x.AttachBlockDevice(d, dk, 2, 1)
	x.WriteStartInfo(d)
	buf := make([]byte, 8*disk.SectorSize)
	var seqCycles, randCycles uint64
	x.StartVCPU(d, func(g *GuestEnv) error {
		f, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		// Warm up (first request of each op direction seeks once).
		f.ReadSectors(0, buf)
		c0 := g.Cycles()
		for i := 1; i <= 4; i++ {
			if err := f.ReadSectors(uint64(i*8), buf); err != nil {
				return err
			}
		}
		seqCycles = g.Cycles() - c0
		c0 = g.Cycles()
		for _, lba := range []uint64{96, 16, 120, 48} {
			if err := f.ReadSectors(lba, buf); err != nil {
				return err
			}
		}
		randCycles = g.Cycles() - c0
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if randCycles < 3*seqCycles {
		t.Fatalf("random reads (%d) should dwarf sequential (%d)", randCycles, seqCycles)
	}
}

func TestBackendSnoopDisabledByDefault(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "nosnoop", MemPages: 32, SEV: true})
	backend, err := x.AttachBlockDevice(d, disk.New(64), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x.WriteStartInfo(d)
	x.StartVCPU(d, func(g *GuestEnv) error {
		f, _ := NewBlockFrontend(g)
		return f.WriteSectors(0, bytes.Repeat([]byte{1}, disk.SectorSize))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if len(backend.Snoop) != 0 {
		t.Fatal("snoop captured data while disabled")
	}
}
