package fidelius

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"fidelius/internal/telemetry"
)

// TestFlightRecorderEndToEnd drives a full protected session — launch,
// scheduled workload, live migration — with the whole flight recorder
// armed, and checks the three pillars together: every causal span in the
// hot families has a resolvable parent and survives the Chrome export as
// flow-linked slices, the stock SLOs actually evaluate (not skip), and
// the audit ledger records the session's denials in a chain that defeats
// rewrite and truncation.
func TestFlightRecorderEndToEnd(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	plat.StartTrace(0)
	plat.StartAudit()

	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("flight-rec-kern!"), 256)

	var doms []*Domain
	for i := 0; i < 2; i++ {
		bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := plat.LaunchVM(fmt.Sprintf("flight-%d", i), 32, bundle)
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		plat.StartVCPU(d, func(g *GuestEnv) error {
			buf := make([]byte, 32)
			for j := 0; j < 12; j++ {
				if err := g.Write(0x6000+uint64(j%4)*64, buf); err != nil {
					return err
				}
				if err := g.Read(0x6000+uint64(j%4)*64, buf); err != nil {
					return err
				}
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if errs := plat.Schedule(doms); len(errs) != 0 {
		t.Fatal(errs)
	}

	target, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LiveMigrate(plat, doms[0], target, MigrateConfig{}); err != nil {
		t.Fatal(err)
	}

	// Provoke an audited denial: the start-info page is write-once, so a
	// second write is vetoed by the gatekeeper and must land in the ledger.
	if err := plat.X.WriteStartInfo(doms[1]); err != nil {
		t.Fatal(err)
	}
	if err := plat.X.WriteStartInfo(doms[1]); err == nil {
		t.Fatal("second start-info write should be vetoed")
	}

	// --- causal spans: the hot families all parent into the tree -------
	spans := plat.Telemetry().Trace().Spans()
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	family := func(name string) string {
		switch {
		case name == "quantum":
			return "quantum"
		case strings.HasPrefix(name, "sev:"):
			return "sev"
		case name == "migrate-round":
			return "migrate-round"
		}
		return ""
	}
	counts := map[string]int{}
	for _, s := range spans {
		f := family(s.Name)
		if f == "" {
			continue
		}
		counts[f]++
		if s.Parent == 0 {
			t.Errorf("span %d %q (vm %d) has no parent", s.ID, s.Name, s.VM)
		} else if !ids[s.Parent] {
			t.Errorf("span %d %q has unresolvable parent %d", s.ID, s.Name, s.Parent)
		}
	}
	for _, f := range []string{"quantum", "sev", "migrate-round"} {
		if counts[f] == 0 {
			t.Errorf("no %s spans recorded", f)
		}
	}

	// --- Chrome export: spans become slices with matching flow pairs ---
	var out strings.Builder
	if err := plat.WriteTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			ID   uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	slices := 0
	flowOut := map[uint64]bool{}
	flowIn := map[uint64]bool{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Cat == "span" && e.Ph == "X":
			slices++
		case e.Ph == "s":
			flowOut[e.ID] = true
		case e.Ph == "f":
			flowIn[e.ID] = true
		}
	}
	if slices == 0 {
		t.Fatal("no span slices in the Chrome export")
	}
	if len(flowOut) == 0 {
		t.Fatal("no causal flow arrows in the Chrome export")
	}
	for id := range flowIn {
		if !flowOut[id] {
			t.Errorf("flow finish %d has no matching start", id)
		}
	}
	for id := range flowOut {
		if !flowIn[id] {
			t.Errorf("flow start %d has no matching finish", id)
		}
	}

	// --- SLO engine: the stock objectives evaluate on this workload ----
	evals := plat.EvaluateSLOs(DefaultSLOs())
	evaluated := 0
	for _, ev := range evals {
		if !ev.Skipped {
			evaluated++
			if !ev.Pass {
				t.Errorf("objective %s failed on a healthy run: %+v", ev.Name, ev)
			}
		}
	}
	if evaluated == 0 {
		t.Fatalf("no objective evaluated (all skipped): %+v", evals)
	}

	// --- audit ledger: the denial is recorded, the chain is tamper-proof
	recs := plat.AuditRecords()
	head := plat.AuditHead()
	var denial bool
	for _, r := range recs {
		if r.Class == "gate-denial" {
			denial = true
		}
	}
	if !denial {
		t.Fatalf("vetoed write left no gate-denial record: %+v", recs)
	}
	if err := VerifyAuditChain(recs, head); err != nil {
		t.Fatalf("honest ledger failed verification: %v", err)
	}
	last := len(recs) - 1
	rewritten := append([]AuditRecord{}, recs...)
	rewritten[last].Detail = "benign: nothing happened"
	if VerifyAuditChain(rewritten, head) == nil {
		t.Fatal("rewritten ledger passed verification")
	}
	rehashed := append([]AuditRecord{}, recs...)
	rehashed[last].Detail = "benign: nothing happened"
	rehashed[last].Hash = telemetry.HashRecord(rehashed[last])
	if VerifyAuditChain(rehashed, head) == nil {
		t.Fatal("rehashed forgery passed verification against the live head")
	}
	if VerifyAuditChain(recs[:last], head) == nil {
		t.Fatal("truncated ledger passed verification")
	}
}
