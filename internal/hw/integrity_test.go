package hw

import (
	"bytes"
	"errors"
	"testing"
)

func integController(t *testing.T) *Controller {
	t.Helper()
	c := NewController(NewMemory(8), 0)
	var key [32]byte
	key[0] = 0x42
	c.Integ = NewIntegrity(c.Mem, key)
	return c
}

func TestIntegrityBenignReadWrite(t *testing.T) {
	c := integController(t)
	if err := c.Integ.Protect(1); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("guarded line...."), 4)
	if err := c.Write(Access{PA: 0x1000}, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(Access{PA: 0x1000}, got); err != nil {
		t.Fatalf("benign read must verify: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if c.Integ.Verifies == 0 || c.Integ.Updates == 0 {
		t.Fatal("engine not exercised")
	}
}

func TestIntegrityDetectsPhysicalTamper(t *testing.T) {
	c := integController(t)
	c.Integ.Protect(1)
	if err := c.Write(Access{PA: 0x1000}, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	// Rowhammer-style flip bypassing the controller.
	if err := c.Mem.FlipBit(0x1010, 0); err != nil {
		t.Fatal(err)
	}
	err := c.Read(Access{PA: 0x1000}, make([]byte, 64))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestIntegrityDMAWriteDetectedButFirmwareWriteTrusted(t *testing.T) {
	c := integController(t)
	c.Integ.Protect(2)
	base := PFN(2).Addr()
	if err := c.Write(Access{PA: base}, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	// DMA overwrite: detected.
	if err := c.DMA().Write(base, bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(Access{PA: base}, make([]byte, 64)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("DMA tamper not detected: %v", err)
	}
	// Firmware write: tree updated, read verifies again.
	if err := c.FirmwareWrite(base, bytes.Repeat([]byte{5}, 64)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := c.Read(Access{PA: base}, got); err != nil {
		t.Fatalf("firmware write should re-arm the tree: %v", err)
	}
	if got[0] != 5 {
		t.Fatal("firmware write content lost")
	}
}

func TestIntegrityUnprotectedPagesUnaffected(t *testing.T) {
	c := integController(t)
	c.Integ.Protect(3)
	// Page 4 is not protected: tampering goes unnoticed (by design —
	// the engine costs cycles only where enabled).
	if err := c.Write(Access{PA: PFN(4).Addr()}, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.Mem.FlipBit(PFN(4).Addr(), 0)
	if err := c.Read(Access{PA: PFN(4).Addr()}, make([]byte, 3)); err != nil {
		t.Fatalf("unprotected page read errored: %v", err)
	}
}

func TestIntegrityUnprotectAndRoot(t *testing.T) {
	c := integController(t)
	c.Integ.Protect(1)
	root1 := c.Integ.Root()
	if err := c.Write(Access{PA: 0x1000}, []byte("change")); err != nil {
		t.Fatal(err)
	}
	root2 := c.Integ.Root()
	if root1 == root2 {
		t.Fatal("root unchanged after update")
	}
	c.Integ.Unprotect(1)
	if c.Integ.Protected(1) {
		t.Fatal("still protected after Unprotect")
	}
	// Tampering after unprotect is no longer detected.
	c.Mem.FlipBit(0x1000, 1)
	if err := c.Read(Access{PA: 0x1000}, make([]byte, 8)); err != nil {
		t.Fatalf("read after unprotect: %v", err)
	}
}

func TestIntegrityAddressBinding(t *testing.T) {
	// Splicing identical content between two protected lines must fail
	// verification: leaves are address-bound.
	c := integController(t)
	c.Integ.Protect(1)
	same := bytes.Repeat([]byte{0xAB}, 64)
	if err := c.Write(Access{PA: 0x1000}, same); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(Access{PA: 0x1040}, same); err != nil {
		t.Fatal(err)
	}
	// Physically swap the two (identical!) lines' stored bytes with two
	// different lines elsewhere... instead, copy line at 0x1000 over
	// 0x1080 (a third protected line with different content).
	if err := c.Write(Access{PA: 0x1080}, bytes.Repeat([]byte{0xCD}, 64)); err != nil {
		t.Fatal(err)
	}
	var line [64]byte
	c.Mem.ReadRaw(0x1000, line[:])
	c.Mem.WriteRaw(0x1080, line[:])
	if err := c.Read(Access{PA: 0x1080}, make([]byte, 64)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("line splice not detected: %v", err)
	}
}

// TestPropertyControllerCoherence: for unencrypted pages, a controller
// read always observes the most recent write, whether it arrived through
// the controller or via DMA, across random interleavings.
func TestPropertyControllerCoherence(t *testing.T) {
	c := NewController(NewMemory(8), 32)
	shadow := make([]byte, 8*PageSize)
	lcg := uint64(1)
	rnd := func(n uint64) uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % n
	}
	for i := 0; i < 3000; i++ {
		pa := PhysAddr(rnd(8*PageSize - 32))
		n := int(rnd(31)) + 1
		switch rnd(3) {
		case 0: // controller write
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rnd(256))
			}
			if err := c.Write(Access{PA: pa}, data); err != nil {
				t.Fatal(err)
			}
			copy(shadow[pa:], data)
		case 1: // DMA write
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rnd(256))
			}
			if err := c.DMA().Write(pa, data); err != nil {
				t.Fatal(err)
			}
			copy(shadow[pa:], data)
		case 2: // controller read must match the shadow
			got := make([]byte, n)
			if err := c.Read(Access{PA: pa}, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[pa:int(pa)+n]) {
				t.Fatalf("coherence violation at %#x after %d ops", pa, i)
			}
		}
	}
}
