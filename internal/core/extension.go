package core

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"

	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// This file implements the paper's Section 8 hardware suggestions on the
// Fidelius side:
//
//  1. Hardware-based integrity checking (Bonsai Merkle Tree): protected
//     guest pages are tracked by the hw.Integrity engine, so rowhammer
//     flips and DMA overwrites are *detected* rather than merely
//     scrambled by encryption.
//  2. Customized keys (SETENC_GEK / ENC / DEC): portable encrypted kernel
//     images, late binding of images to platforms, and an I/O encryption
//     path that needs no s-dom/r-dom helper contexts.

// EnableIntegrity places every page of a protected VM under the
// Bonsai-Merkle integrity engine. Subsequent physical tampering of those
// pages (rowhammer, DMA writes) is detected at the next read.
func (f *Fidelius) EnableIntegrity(d *xen.Domain) error {
	ctl := f.M.Ctl
	if ctl.Integ == nil {
		var key [32]byte
		if _, err := io.ReadFull(rand.Reader, key[:]); err != nil {
			return err
		}
		ctl.Integ = hw.NewIntegrity(ctl.Mem, key)
	}
	for _, pfn := range d.Frames {
		if pfn == 0 {
			continue
		}
		if err := ctl.Integ.Protect(pfn); err != nil {
			return err
		}
	}
	return nil
}

// IntegrityRoot reports the engine's current tree root (the value a
// hardware BMT keeps on-chip), for attestation.
func (f *Fidelius) IntegrityRoot() ([32]byte, bool) {
	if f.M.Ctl.Integ == nil {
		return [32]byte{}, false
	}
	return f.M.Ctl.Integ.Root(), true
}

// GEKBundle is the portable counterpart of GuestBundle: the kernel image
// is encrypted under the owner's customized key and can be deployed to
// any platform by wrapping the GEK for it at deployment time.
type GEKBundle struct {
	Image    *sev.GEKImage
	GEKWrap  sev.WrappedKeys
	OwnerPub *ecdh.PublicKey
	Nonce    []byte
}

// PrepareGEKGuest builds a portable image; BindGEKGuest wraps its key for
// one platform. The two steps are independent — the late binding the
// paper asks for.
func PrepareGEKGuest(owner *sev.Owner, kernel []byte) (*sev.GEKImage, sev.GEK, error) {
	return owner.PrepareGEKImage(kernel)
}

// BindGEKGuest authorises one platform to run a previously prepared
// image.
func BindGEKGuest(owner *sev.Owner, platformPub *ecdh.PublicKey, img *sev.GEKImage, gek sev.GEK) (*GEKBundle, error) {
	wrap, err := owner.WrapGEK(platformPub, gek)
	if err != nil {
		return nil, err
	}
	return &GEKBundle{
		Image:    img,
		GEKWrap:  wrap,
		OwnerPub: owner.PublicKey(),
		Nonce:    owner.Nonce(),
	}, nil
}

// LaunchVMFromGEK boots a protected VM from a portable GEK image using
// the extension instructions: LAUNCH_START creates the context,
// SETENC_GEK installs the customized key, DEC re-encrypts each image page
// in place with the fresh Kvek, LAUNCH_FINISH and ACTIVATE complete the
// boot. The same firmware context also serves the I/O path afterwards —
// no helper contexts needed.
func (f *Fidelius) LaunchVMFromGEK(name string, memPages int, b *GEKBundle) (*xen.Domain, error) {
	defer f.enterTrusted()()
	if b.Image.NumPages() > memPages {
		return nil, fmt.Errorf("core: kernel image (%d pages) exceeds VM memory", b.Image.NumPages())
	}
	d, err := f.X.CreateDomain(xen.DomainConfig{
		Name:        name,
		MemPages:    memPages,
		SEV:         true,
		ExternalSEV: true,
	})
	if err != nil {
		return nil, err
	}
	h, err := f.M.FW.LaunchStart(0)
	if err != nil {
		return nil, err
	}
	if err := f.M.FW.SetEncGEK(h, b.GEKWrap, b.OwnerPub, b.Nonce); err != nil {
		return nil, err
	}
	base := uint64(memPages - b.Image.NumPages())
	for i, page := range b.Image.Pages {
		pfn, ok := d.GPAFrame(base + uint64(i))
		if !ok {
			return nil, fmt.Errorf("core: kernel gfn %d unbacked", base+uint64(i))
		}
		if err := f.M.FW.DecPage(h, pfn, page, uint64(i)); err != nil {
			return nil, err
		}
	}
	if err := f.M.FW.LaunchFinish(h); err != nil {
		return nil, err
	}
	if err := f.M.FW.Activate(h, d.ASID); err != nil {
		return nil, err
	}
	f.storeVM(&VMState{Dom: d, Handle: h, GEKReady: true})
	return d, nil
}
