package hw

// LineSize is the cache line size in bytes.
const LineSize = 64

// DefaultWays is the associativity used when a cache is built from a bare
// line count.
const DefaultWays = 8

// Cache is a small physically-indexed, physically-tagged cache holding
// plaintext. It reproduces the micro-architectural detail the paper's
// inter-VM remapping attack depends on: cache lines are plaintext and, on
// pre-SNP hardware, are tagged only by physical address — so a conspirator
// VM that gets the victim's page mapped into its NPT can hit a line the
// victim filled and read plaintext without ever touching the AES engine.
//
// The cache is write-through: stores update the line and propagate to DRAM
// through the engine, so DRAM is always current (ciphertext).
//
// Organisation is set-associative with CLOCK (second-chance) replacement
// per set: the line index selects a set, and lookup, fill and invalidate
// all touch only that set's ways. Line storage is one flat preallocated
// array, so filling a line never allocates and Invalidate is O(ways)
// instead of the old map+FIFO-slice's O(capacity) order scan.
type Cache struct {
	sets int // power of two; 0 disables the cache
	ways int

	// Flat per-way state, indexed set*ways+way.
	data  [][LineSize]byte
	tags  []PhysAddr
	valid []bool
	ref   []bool
	hand  []int // CLOCK hand, one per set

	hits      uint64
	misses    uint64
	evictions uint64
	live      int
}

// NewCache returns a cache holding at least capacity lines (rounded up to
// the nearest set-associative geometry: min(capacity, DefaultWays) ways ×
// a power-of-two number of sets). A capacity of 0 disables caching
// entirely.
func NewCache(capacity int) *Cache {
	return NewCacheWays(capacity, DefaultWays)
}

// NewCacheWays builds a cache with explicit associativity. ways is clamped
// to [1, capacity]; the set count is the smallest power of two covering
// capacity/ways lines.
func NewCacheWays(capacity, ways int) *Cache {
	if capacity <= 0 {
		return &Cache{}
	}
	if ways < 1 {
		ways = 1
	}
	if ways > capacity {
		ways = capacity
	}
	sets := 1
	for sets*ways < capacity {
		sets <<= 1
	}
	n := sets * ways
	return &Cache{
		sets:  sets,
		ways:  ways,
		data:  make([][LineSize]byte, n),
		tags:  make([]PhysAddr, n),
		valid: make([]bool, n),
		ref:   make([]bool, n),
		hand:  make([]int, sets),
	}
}

func lineBase(pa PhysAddr) PhysAddr { return pa &^ (LineSize - 1) }

// setOf maps a line base address to its set index (physically indexed).
func (c *Cache) setOf(base PhysAddr) int {
	return int(uint64(base)/LineSize) & (c.sets - 1)
}

// find returns the flat way index holding base, or -1.
func (c *Cache) find(base PhysAddr) int {
	if c.sets == 0 {
		return -1
	}
	i := c.setOf(base) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[i+w] && c.tags[i+w] == base {
			return i + w
		}
	}
	return -1
}

// Lookup returns the cached plaintext line containing pa, if present.
func (c *Cache) Lookup(pa PhysAddr) (*[LineSize]byte, bool) {
	if i := c.find(lineBase(pa)); i >= 0 {
		c.hits++
		c.ref[i] = true
		return &c.data[i], true
	}
	c.misses++
	return nil, false
}

// Peek returns the cached line containing pa without touching hit/miss
// statistics or replacement state — the write-buffer's view, used to
// update cached plaintext in place on stores.
func (c *Cache) Peek(pa PhysAddr) (*[LineSize]byte, bool) {
	if i := c.find(lineBase(pa)); i >= 0 {
		return &c.data[i], true
	}
	return nil, false
}

// Fill inserts a plaintext line, running CLOCK replacement in its set if
// every way is occupied.
func (c *Cache) Fill(pa PhysAddr, data *[LineSize]byte) {
	if c.sets == 0 {
		return
	}
	base := lineBase(pa)
	if i := c.find(base); i >= 0 {
		c.data[i] = *data
		c.ref[i] = true
		return
	}
	set := c.setOf(base)
	first := set * c.ways
	w := -1
	for v := 0; v < c.ways; v++ {
		if !c.valid[first+v] {
			w = first + v
			break
		}
	}
	if w < 0 {
		// CLOCK: sweep the hand, clearing reference bits, until a way
		// without a second chance comes up.
		for {
			h := first + c.hand[set]
			c.hand[set] = (c.hand[set] + 1) % c.ways
			if !c.ref[h] {
				w = h
				break
			}
			c.ref[h] = false
		}
		c.evictions++
		c.live--
	}
	c.data[w] = *data
	c.tags[w] = base
	c.valid[w] = true
	c.ref[w] = true
	c.live++
}

// Invalidate drops any line overlapping [pa, pa+n).
func (c *Cache) Invalidate(pa PhysAddr, n int) {
	if c.sets == 0 || n <= 0 {
		return
	}
	first := lineBase(pa)
	last := lineBase(pa + PhysAddr(n) - 1)
	for b := first; b <= last; b += LineSize {
		if i := c.find(b); i >= 0 {
			c.valid[i] = false
			c.ref[i] = false
			c.live--
		}
		if b+LineSize < b { // overflow guard
			break
		}
	}
}

// Flush empties the cache (WBINVD).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.ref[i] = false
	}
	for s := range c.hand {
		c.hand[s] = 0
	}
	c.live = 0
}

// Len reports the number of valid lines currently held.
func (c *Cache) Len() int { return c.live }

// Evictions reports how many lines CLOCK replacement has pushed out.
func (c *Cache) Evictions() uint64 { return c.evictions }

// Stats reports hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
