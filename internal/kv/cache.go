package kv

// ValueCache is a fixed-capacity LRU of byte slices. The serve guest
// keeps one in front of its store, holding *session-encrypted* hot
// values: a repeated get is answered from the cache without recharging
// the session cipher or touching the index, and the cached bytes are
// ciphertext, so even a disclosure of the cache pages would not hand
// the hypervisor plaintext. The cache is a plain map + intrusive list
// (no locking): the guest is single-threaded per ring.
//
// Coherence is the caller's problem and is simple by construction: the
// guest invalidates a key when a mutation on it is staged, and only
// repopulates from the store after a successful commit — never from
// in-flight request bytes, so a failed commit cannot leave a stale
// entry behind.
type ValueCache struct {
	cap     int
	entries map[string]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key        string
	val        []byte
	prev, next *cacheEntry
}

// NewValueCache returns a cache holding at most capacity entries.
// Capacity must be positive.
func NewValueCache(capacity int) *ValueCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &ValueCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry, capacity),
	}
}

func (c *ValueCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *ValueCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached bytes for key and refreshes its recency. The
// returned slice is the cache's own storage — callers must not mutate
// it. Every call counts as a hit or a miss.
func (c *ValueCache) Get(key string) ([]byte, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Put inserts or replaces an entry, evicting the least recently used
// one if the cache is at capacity. The cache keeps val itself (no
// copy); callers hand over ownership.
func (c *ValueCache) Put(key string, val []byte) {
	if e, ok := c.entries[key]; ok {
		e.val = val
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.entries) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
	e := &cacheEntry{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
}

// Invalidate drops an entry if present.
func (c *ValueCache) Invalidate(key string) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	c.unlink(e)
	delete(c.entries, key)
}

// Len reports the number of cached entries.
func (c *ValueCache) Len() int { return len(c.entries) }

// Stats reports lookup counters accumulated since creation.
func (c *ValueCache) Stats() (hits, misses uint64) { return c.hits, c.misses }
