package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, lock-free metric. All methods are
// safe for concurrent use and safe on a nil receiver (a nil counter is a
// no-op sink, so call sites never need to branch on whether telemetry is
// wired up).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Like Counter it is lock-free
// and nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reports the current reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CycleBuckets is the default fixed bucket layout for cycle-cost
// histograms: roughly one bucket per factor of four from a cache hit
// (4 cycles) up past a disk seek (~10^6 cycles).
var CycleBuckets = []uint64{16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// ServeLatencyBuckets is the bucket layout for request-serving latency
// histograms: serving latency spans from a ring round trip (~10^4
// cycles) through seek-dominated puts (~10^6) up to deep open-loop
// queueing (~10^8), so the range sits two decades above CycleBuckets.
var ServeLatencyBuckets = []uint64{4096, 16384, 65536, 262144, 1048576,
	4194304, 16777216, 67108864, 268435456, 1073741824}

// Histogram is a fixed-bucket, lock-free histogram. Bucket i counts
// observations v <= bounds[i]; one extra overflow bucket counts the rest.
// Observe is safe for concurrent use and nil-safe.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // len(Bounds)+1, last is overflow
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
}

// Mean reports the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the bucket that holds the q*Count-th observation,
// Prometheus-style: bucket i spans (Bounds[i-1], Bounds[i]] with the
// first bucket starting at 0. An empty snapshot reports 0. When the rank
// falls in the overflow bucket there is no upper bound to interpolate
// toward, so the estimate saturates at the last finite bound — a
// deliberate underestimate that keeps SLO checks against "value <= max"
// conservative rather than inventing a tail.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: saturate at the last finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// FracAtMost estimates the fraction of observations <= v, interpolating
// linearly inside the bucket that straddles v. Values beyond the last
// finite bound count the overflow bucket as entirely above v (the
// conservative direction for an error-budget check). Empty snapshots
// report 1 (vacuously within any bound).
func (s HistogramSnapshot) FracAtMost(v float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 1
	}
	var atMost float64
	for i, c := range s.Buckets {
		if i >= len(s.Bounds) {
			break // overflow: all above any finite v
		}
		lo := 0.0
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		switch {
		case v >= hi:
			atMost += float64(c)
		case v > lo:
			atMost += float64(c) * (v - lo) / (hi - lo)
		}
	}
	return atMost / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]uint64{}, h.bounds...),
		Buckets: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// MetricName builds the canonical registry key: base{k1=v1,k2=v2} with
// labels given as alternating key, value pairs.
func MetricName(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is the process-wide (per machine) metrics registry: named
// counters, gauges, external readers and histograms. Registration takes a
// lock; the returned handles are lock-free, so hot paths resolve their
// metric once and then only touch atomics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() uint64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the counter for base+labels.
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(base string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	name := MetricName(base, labels...)
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering on first use) the gauge for base+labels.
func (r *Registry) Gauge(base string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	name := MetricName(base, labels...)
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// RegisterFunc publishes an external reader under base+labels. This is how
// pre-existing accounting (the cycle counter, cache hit counts, TLB flush
// statistics) is served from the unified registry without duplicating it:
// the original variable stays the single source of truth and the registry
// reads it at snapshot time.
func (r *Registry) RegisterFunc(base string, fn func() uint64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	name := MetricName(base, labels...)
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// UnregisterFunc removes an external reader registered under base+labels.
// Lifecycle churn depends on it: a destroyed domain's per-VM readers must
// not accumulate (nor keep the domain reachable) across thousands of
// create/destroy cycles.
func (r *Registry) UnregisterFunc(base string, labels ...string) {
	if r == nil {
		return
	}
	name := MetricName(base, labels...)
	r.mu.Lock()
	delete(r.funcs, name)
	r.mu.Unlock()
}

// Histogram returns (registering on first use) a fixed-bucket histogram.
// The bounds of the first registration win.
func (r *Registry) Histogram(base string, bounds []uint64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	name := MetricName(base, labels...)
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Registered reader funcs appear in Gauges (they are instantaneous
// readings of externally owned state).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry. Safe to call while the simulation runs.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]uint64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() uint64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = uint64(v.Value())
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}
