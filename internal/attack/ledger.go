package attack

import (
	"fmt"

	"fidelius/internal/telemetry"
)

// LedgerTamper is the forensic-erasure adversary: after one of its
// operations is denied and recorded, the hypervisor tries to launder the
// audit trail — first by rewriting the incriminating record (with and
// without recomputing its hash), then by truncating the trail as if the
// denial never happened. SEVered and "Insecure Until Proven Updated"
// both rely on the victim having no tamper-evident record of
// hypervisor-side actions; the hash-chained ledger is the counterpart,
// and unlike the other attacks its defence is configuration-independent
// — the chain is pure hash arithmetic, so the attack is blocked on the
// plain-Xen baseline too.
type LedgerTamper struct{}

// Name implements Attack.
func (LedgerTamper) Name() string { return "audit-ledger-tamper" }

// Description implements Attack.
func (LedgerTamper) Description() string {
	return "rewrite and truncate the security audit ledger to erase the record of a denied operation (forensic counterpart of SEVered's unrecorded remaps)"
}

// Run implements Attack.
func (at LedgerTamper) Run(p *Platform) Outcome {
	o := Outcome{Name: at.Name(), Config: p.ConfigName()}
	hub := p.X.M.Ctl.Telem
	led := hub.Ledger()
	if led == nil {
		led = hub.StartLedger()
	}

	// Step 1: get an operation denied and recorded. The hypervisor mints
	// a fresh firmware context and tries to steal the victim's ASID
	// binding (the key-sharing primitive). On the baseline the firmware
	// itself refuses the live binding (asid-reuse record); under Fidelius
	// the authorization guard refuses the command outright
	// (sev-unauthorized record). Either way the ledger must have grown.
	before := led.Len()
	fw := p.X.M.FW
	if h, err := fw.LaunchStart(0); err == nil {
		_ = fw.Activate(h, p.Victim.ASID)
	}
	recs := led.Records()
	head := led.Head()
	if len(recs) <= before {
		o.Succeeded = true
		o.Detail = "denied operation left no forensic record"
		return o
	}
	if err := telemetry.VerifyChain(recs, head); err != nil {
		o.Succeeded = true
		o.Detail = fmt.Sprintf("honest ledger fails its own verification: %v", err)
		return o
	}
	last := len(recs) - 1

	// Step 2a: naive rewrite of the incriminating record.
	forged := append([]telemetry.Record{}, recs...)
	forged[last].Detail = "benign: routine maintenance"
	if telemetry.VerifyChain(forged, head) == nil {
		o.Succeeded = true
		o.Detail = "rewritten record passed verification"
		return o
	}

	// Step 2b: smarter rewrite — recompute the edited record's hash so it
	// is internally consistent; only the externally held head can expose
	// it.
	rehashed := append([]telemetry.Record{}, recs...)
	rehashed[last].Detail = "benign: routine maintenance"
	rehashed[last].Hash = telemetry.HashRecord(rehashed[last])
	if telemetry.VerifyChain(rehashed, head) == nil {
		o.Succeeded = true
		o.Detail = "rehashed forgery passed verification against the live head"
		return o
	}

	// Step 3: truncation — present the prefix from before the denial.
	if telemetry.VerifyChain(recs[:last], head) == nil {
		o.Succeeded = true
		o.Detail = "truncated ledger passed verification"
		return o
	}

	o.Detail = fmt.Sprintf("rewrite, rehash and truncation all detected across %d records", len(recs))
	return o
}
