package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CyclesPerMicrosecond converts the deterministic cycle clock to the
// microsecond timestamps the Chrome trace_event format expects, using the
// paper's 3.4 GHz AMD Ryzen as the reference frequency.
const CyclesPerMicrosecond = 3400.0

// chromeEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  uint32         `json:"pid"`
	TID  uint32         `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"` // flow-event binding ID
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events in Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto. Each VM becomes a process (labelled from
// vmNames), each ASID a thread, spans carry their modelled cycle duration,
// and everything else is an instant event.
func WriteChromeTrace(w io.Writer, events []Event, vmNames map[uint32]string) error {
	return WriteChromeTraceSpans(w, events, nil, vmNames)
}

// WriteChromeTraceSpans is WriteChromeTrace plus the causal span tree:
// each Span becomes a complete ("X") event carrying its span/parent IDs
// and attributes, and each parent→child edge whose parent is present in
// the capture becomes a flow-event pair ("s" on the parent's track, "f"
// on the child's), which trace viewers draw as causal arrows.
func WriteChromeTraceSpans(w io.Writer, events []Event, spans []Span, vmNames map[uint32]string) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].TS != sorted[j].TS {
			return sorted[i].TS < sorted[j].TS
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	sspans := make([]Span, len(spans))
	copy(sspans, spans)
	sort.SliceStable(sspans, func(i, j int) bool {
		if sspans[i].Start != sspans[j].Start {
			return sspans[i].Start < sspans[j].Start
		}
		return sspans[i].ID < sspans[j].ID
	})

	type track struct{ pid, tid uint32 }
	seenPID := map[uint32]bool{}
	seenTID := map[track]bool{}
	// Non-nil so an empty capture serialises as "traceEvents": [] — null
	// is not a valid event array for trace viewers.
	out := []chromeEvent{}

	// Metadata first so viewers label tracks before any event references
	// them.
	var pids []uint32
	tids := map[uint32][]uint32{}
	note := func(vm, asid uint32) {
		if !seenPID[vm] {
			seenPID[vm] = true
			pids = append(pids, vm)
		}
		tr := track{vm, asid}
		if !seenTID[tr] {
			seenTID[tr] = true
			tids[vm] = append(tids[vm], asid)
		}
	}
	for _, e := range sorted {
		note(e.VM, e.ASID)
	}
	for _, s := range sspans {
		note(s.VM, s.ASID)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		name := vmNames[pid]
		if name == "" {
			name = fmt.Sprintf("vm-%d", pid)
		}
		if pid == 0 && vmNames[0] == "" {
			name = "host"
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		sort.Slice(tids[pid], func(i, j int) bool { return tids[pid][i] < tids[pid][j] })
		for _, tid := range tids[pid] {
			tname := fmt.Sprintf("asid-%d", tid)
			if tid == 0 {
				tname = "cpu"
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": tname},
			})
		}
	}

	for _, e := range sorted {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.Category(),
			TS:   float64(e.TS) / CyclesPerMicrosecond,
			PID:  e.VM,
			TID:  e.ASID,
			Args: map[string]any{"cycles_ts": e.TS},
		}
		if e.Arg1 != 0 || e.Arg2 != 0 {
			ce.Args["arg1"] = e.Arg1
			ce.Args["arg2"] = e.Arg2
		}
		if e.Detail != "" {
			ce.Args["detail"] = e.Detail
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			d := float64(e.Dur) / CyclesPerMicrosecond
			ce.Dur = &d
			ce.Args["cycles"] = e.Dur
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}

	byID := make(map[uint64]*Span, len(sspans))
	for i := range sspans {
		byID[sspans[i].ID] = &sspans[i]
	}
	for i := range sspans {
		s := &sspans[i]
		dur := float64(s.End-s.Start) / CyclesPerMicrosecond
		if s.End < s.Start {
			dur = 0
		}
		args := map[string]any{"span": s.ID, "parent": s.Parent, "cycles_ts": s.Start}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			TS: float64(s.Start) / CyclesPerMicrosecond, Dur: &dur,
			PID: s.VM, TID: s.ASID, Args: args,
		})
		p, ok := byID[s.Parent]
		if s.Parent == 0 || !ok {
			continue
		}
		// Causal arrow parent→child. The flow-start timestamp must fall
		// inside the parent slice for viewers to bind it, so clamp the
		// child's start into the parent interval.
		ts := s.Start
		if ts < p.Start {
			ts = p.Start
		}
		if ts > p.End {
			ts = p.End
		}
		out = append(out,
			chromeEvent{
				Name: "causal", Cat: "flow", Ph: "s", ID: s.ID,
				TS: float64(ts) / CyclesPerMicrosecond, PID: p.VM, TID: p.ASID,
			},
			chromeEvent{
				Name: "causal", Cat: "flow", Ph: "f", BP: "e", ID: s.ID,
				TS: float64(s.Start) / CyclesPerMicrosecond, PID: s.VM, TID: s.ASID,
			},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// WriteChromeTrace exports the hub's current trace buffer, spans included.
func (h *Hub) WriteChromeTrace(w io.Writer) error {
	t := h.Trace()
	return WriteChromeTraceSpans(w, t.Events(), t.Spans(), h.VMNames())
}

// WriteJSON renders the snapshot as one JSON object (the expvar-style
// machine-readable export).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable renders the snapshot as a sorted, human-readable table.
func (s Snapshot) WriteTable(w io.Writer) error {
	section := func(title string, m map[string]uint64) error {
		if len(m) == 0 {
			return nil
		}
		names := make([]string, 0, len(m))
		width := 0
		for k := range m {
			names = append(names, k)
			if len(k) > width {
				width = len(k)
			}
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "%s:\n", title); err != nil {
			return err
		}
		for _, k := range names {
			if _, err := fmt.Fprintf(w, "  %-*s %12d\n", width, k, m[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := section("counters", s.Counters); err != nil {
		return err
	}
	if err := section("gauges", s.Gauges); err != nil {
		return err
	}
	if len(s.Histograms) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "histograms:"); err != nil {
		return err
	}
	for _, k := range names {
		h := s.Histograms[k]
		var b strings.Builder
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			if b.Len() > 0 {
				b.WriteString(" ")
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, "<=%d:%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, ">%d:%d", h.Bounds[len(h.Bounds)-1], c)
			}
		}
		if _, err := fmt.Fprintf(w, "  %s  count=%d mean=%.1f  [%s]\n", k, h.Count, h.Mean(), b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Publish exposes the registry under name via the standard expvar
// machinery (visible on /debug/vars when an HTTP server is running).
// Publishing the same name twice panics in expvar, so callers own
// uniqueness.
func Publish(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
