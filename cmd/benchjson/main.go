// benchjson converts `go test -bench` text output into a stable JSON
// artifact for the perf CI lane. It reads the benchmark stream on stdin,
// tees the raw text to stderr so the run stays readable, and writes one
// JSON document (benchmark name → metric map) to the -o file. The report
// records the capture environment (Go version, GOMAXPROCS, CPU count) so
// multi-core wins stay attributable.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_4.json
//	benchjson -diff BENCH_4.json BENCH_5.json -threshold 10
//
// -diff compares two reports benchmark-by-benchmark (ns/op and allocs/op
// deltas) and exits 1 when any ns/op regression exceeds the threshold
// percentage — the CI regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the standard metrics emitted by
// the testing package plus any custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document written to the output file.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses a single `Benchmark...` result line. Format after the
// name and iteration count is a sequence of "value unit" pairs, e.g.
//
//	BenchmarkX/case-4   100   12293 ns/op   666.37 MB/s   32 B/op   2 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// parseStream consumes a `go test -bench` text stream, teeing each line
// to echo (nil to discard), and returns the assembled report stamped with
// the capture environment.
func parseStream(in io.Reader, echo io.Writer) (Report, error) {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, sc.Err()
}

// Delta is one benchmark's old-vs-new comparison. Percentages are
// (new-old)/old*100; NaN-free because a zero old value reports 0.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsPct     float64
	OldAllocs float64
	NewAllocs float64
	AllocsPct float64
	Missing   bool // present in old, absent in new
	Added     bool // absent in old, present in new
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// diffReports matches benchmarks by name (old report order, then
// new-only additions) and computes the metric deltas.
func diffReports(oldRep, newRep Report) []Delta {
	byName := make(map[string]Result, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		byName[b.Name] = b
	}
	var out []Delta
	seen := map[string]bool{}
	for _, ob := range oldRep.Benchmarks {
		seen[ob.Name] = true
		d := Delta{
			Name:      ob.Name,
			OldNs:     ob.Metrics["ns/op"],
			OldAllocs: ob.Metrics["allocs/op"],
		}
		nb, ok := byName[ob.Name]
		if !ok {
			d.Missing = true
			out = append(out, d)
			continue
		}
		d.NewNs = nb.Metrics["ns/op"]
		d.NewAllocs = nb.Metrics["allocs/op"]
		d.NsPct = pct(d.OldNs, d.NewNs)
		d.AllocsPct = pct(d.OldAllocs, d.NewAllocs)
		out = append(out, d)
	}
	for _, nb := range newRep.Benchmarks {
		if !seen[nb.Name] {
			out = append(out, Delta{
				Name:      nb.Name,
				NewNs:     nb.Metrics["ns/op"],
				NewAllocs: nb.Metrics["allocs/op"],
				Added:     true,
			})
		}
	}
	return out
}

// writeDiff renders the comparison table and reports whether any ns/op
// regression exceeds threshold percent.
func writeDiff(w io.Writer, deltas []Delta, threshold float64) bool {
	regressed := false
	fmt.Fprintf(w, "%-56s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "ns %", "allocs %")
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-56s %14.1f %14s %8s %10s  (removed)\n", d.Name, d.OldNs, "-", "-", "-")
		case d.Added:
			fmt.Fprintf(w, "%-56s %14s %14.1f %8s %10s  (added)\n", d.Name, "-", d.NewNs, "-", "-")
		default:
			flag := ""
			if d.NsPct > threshold {
				flag = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(w, "%-56s %14.1f %14.1f %+7.1f%% %+9.1f%%%s\n",
				d.Name, d.OldNs, d.NewNs, d.NsPct, d.AllocsPct, flag)
		}
	}
	return regressed
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	diff := flag.Bool("diff", false, "compare two report files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op regression threshold percent for -diff exit code")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -diff needs exactly two report paths: old.json new.json")
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if writeDiff(os.Stdout, diffReports(oldRep, newRep), *threshold) {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression over %.1f%% detected\n", *threshold)
			os.Exit(1)
		}
		return
	}

	rep, err := parseStream(os.Stdin, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
