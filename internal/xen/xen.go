package xen

import (
	"errors"
	"fmt"
	"sync"

	"fidelius/internal/cpu"
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
)

// ErrNoSuchHypercall reports an unimplemented hypercall number.
var ErrNoSuchHypercall = errors.New("xen: no such hypercall")

// CPUIDModel is the canonical CPUID response of the simulated processor.
// Fidelius's Iago policy verifies the hypervisor returns exactly these
// values (Section 6.2, "the Iago attacks can be avoided since ...
// appropriate policies can be defined to check the values returned by the
// hypervisor before VMRUN").
var CPUIDModel = [4]uint64{0x0F1DE115, 0x414D44, 0x5345, 0x56}

// Xen is the hypervisor. It provides services (exit handling, scheduling,
// hypercalls, I/O backends) and — in the unprotected baseline — also
// manages every critical resource directly.
type Xen struct {
	M *Machine

	// mu is the big hypervisor lock, held by ScheduleParallel runners for
	// every host-side step (boundary hooks, VMCB load/store, VMEXIT
	// dispatch) and released only while their guest runs. Serial entry
	// points (Run, RunOnce, Schedule) do not take it: they are the
	// deterministic single-threaded mode and are never mixed with a
	// concurrent ScheduleParallel. Lock order: mu > shootdown bus >
	// cache-set/TLB/integrity leaf locks.
	mu sync.Mutex

	// Interpose is the resource-management seam; Fidelius replaces it.
	Interpose Interposer

	Doms      map[DomID]*Domain
	nextDom   DomID
	nextASID  hw.ASID
	Store     *XenStore
	Events    *EventBus
	vmcbToDom map[hw.PhysAddr]*Domain

	// backends maps domain ID to its block backend.
	backends map[DomID]*BlockBackend

	// console holds each domain's console output (HCConsoleIO).
	console map[DomID][]byte

	// CycleAccount attributes simulated cycles to the domain whose
	// quantum consumed them (filled by RunOnce).
	CycleAccount map[DomID]uint64

	// Stats for tests and benchmarks.
	ExitCounts map[cpu.ExitReason]uint64
}

// New boots the hypervisor on a machine.
func New(m *Machine) (*Xen, error) {
	x := &Xen{
		M:            m,
		Doms:         make(map[DomID]*Domain),
		nextDom:      1, // dom0 is the host itself
		nextASID:     1,
		Store:        newXenStore(),
		vmcbToDom:    make(map[hw.PhysAddr]*Domain),
		backends:     make(map[DomID]*BlockBackend),
		console:      make(map[DomID][]byte),
		CycleAccount: make(map[DomID]uint64),
		ExitCounts:   make(map[cpu.ExitReason]uint64),
	}
	x.Events = newEventBus(func(n uint64) { m.Ctl.Cycles.Charge(n) }, m.Ctl.Telem)
	x.Interpose = Direct{X: x}
	m.CPU.VMRunFn = x.worldSwitch
	if err := m.FW.Init(); err != nil {
		return nil, err
	}
	return x, nil
}

// RunOnce executes one scheduling quantum of the domain: enter the
// guest, take one VMEXIT through the interposer boundary hooks, and
// dispatch it. It returns done=true when the guest function has
// returned.
func (x *Xen) RunOnce(d *Domain) (done bool, err error) {
	v := d.vcpu
	if v == nil {
		return true, fmt.Errorf("xen: domain %d not started", d.ID)
	}
	if v.halted {
		return true, v.err
	}
	start := x.M.Ctl.Cycles.Total()
	sp := x.M.Ctl.Telem.OpenScope("quantum", uint32(d.ID), uint32(d.ASID))
	defer func() {
		spent := x.M.Ctl.Cycles.Sub(start)
		x.CycleAccount[d.ID] += spent
		x.M.Ctl.Telem.M.ExitCycles.Observe(spent)
		sp.Close()
	}()
	if err := x.Interpose.PreVMRun(d, d.VMCBPA()); err != nil {
		return true, fmt.Errorf("xen: entry to %s vetoed: %w", d.Name, err)
	}
	if err := x.Interpose.VMRun(d.VMCBPA()); err != nil {
		return true, fmt.Errorf("xen: vmrun for %s: %w", d.Name, err)
	}
	// Guest has exited; the boundary hook shadows before any hypervisor
	// code inspects the state.
	if err := x.Interpose.OnVMExit(d, d.VMCBPA()); err != nil {
		return true, err
	}
	if v.halted {
		return true, v.err
	}
	if err := x.handleExit(d); err != nil {
		return true, err
	}
	return false, nil
}

// Run schedules the domain's vCPU until the guest function returns,
// dispatching every VMEXIT through the interposer boundary hooks and the
// hypervisor's handlers. It returns the guest function's error.
func (x *Xen) Run(d *Domain) error {
	sp := x.M.Ctl.Telem.OpenScope("run", uint32(d.ID), uint32(d.ASID))
	defer sp.Close()
	for {
		done, err := x.RunOnce(d)
		if done {
			return err
		}
	}
}

// Schedule round-robins a set of started domains, one exit per quantum,
// until every guest function has returned — the hypervisor's scheduling
// service, which Fidelius deliberately leaves in its hands (Section 3.1).
// It returns the first error of each domain, keyed by ID.
func (x *Xen) Schedule(doms []*Domain) map[DomID]error {
	sp := x.M.Ctl.Telem.OpenScope("schedule", 0, 0)
	defer sp.Close()
	errs := make(map[DomID]error)
	pending := append([]*Domain{}, doms...)
	for len(pending) > 0 {
		next := pending[:0]
		for _, d := range pending {
			done, err := x.RunOnce(d)
			if done {
				if err != nil {
					errs[d.ID] = err
				}
				continue
			}
			next = append(next, d)
		}
		pending = next
	}
	return errs
}

// handleExit is the hypervisor's VMEXIT dispatcher.
func (x *Xen) handleExit(d *Domain) error {
	vmcb, err := cpu.LoadVMCB(x.M.Ctl, d.VMCBPA())
	if err != nil {
		return err
	}
	x.ExitCounts[vmcb.ExitCode]++
	switch vmcb.ExitCode {
	case cpu.ExitVMMCALL:
		res, errno := x.hypercall(d, vmcb.Regs)
		vmcb.Regs[0] = res
		vmcb.Regs[1] = errno
	case cpu.ExitCPUID:
		// Only these four registers may change — the Section 5.1
		// policy example.
		copy(vmcb.Regs[:4], CPUIDModel[:])
	case cpu.ExitNPF:
		if err := x.handleNPF(d, vmcb.ExitInfo2, mmu.AccessType(vmcb.ExitInfo1)); err != nil {
			// Unresolvable (or policy-vetoed) fault: inject it into
			// the guest rather than killing the platform. Either way it
			// is a security-relevant decision worth a forensic record.
			if h := x.M.Ctl.Telem; h.Auditing() {
				h.Audit("npf-unresolved", uint32(d.ID), err.Error())
			}
			d.pendingFault = true
		}
	case cpu.ExitHLT:
		// Idle: nothing to do in the synchronous model.
	default:
		return fmt.Errorf("xen: unhandled exit %v", vmcb.ExitCode)
	}
	return cpu.StoreVMCB(x.M.Ctl, d.VMCBPA(), vmcb)
}

// handleNPF backs an unmapped GPA with a fresh frame (lazy population) or
// upgrades permissions. Every NPT write goes through the interposer gate.
// When the domain's dirty log is armed, a write fault on an already-backed
// page is dirty-logging in action: the GFN is recorded before the W bit is
// restored.
func (x *Xen) handleNPF(d *Domain, gpa uint64, access mmu.AccessType) error {
	x.M.Ctl.Telem.M.NPFHandled.Inc()
	gfn := gpa >> hw.PageShift
	if gfn >= uint64(len(d.Frames)) {
		return fmt.Errorf("xen: domain %d faulted beyond its memory at gpa %#x", d.ID, gpa)
	}
	pfn := d.Frames[gfn]
	fresh := pfn == 0
	if fresh {
		var err error
		pfn, err = x.M.Alloc.Alloc(UseGuest, d.ID)
		if err != nil {
			return err
		}
		d.Frames[gfn] = pfn
	}
	if access == mmu.Write && d.Dirty.Mark(gfn) {
		x.M.Ctl.Telem.M.DirtyMarks.Inc()
	}
	pte := mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW|mmu.FlagU)
	if fresh && access != mmu.Write && d.Dirty.Enabled() {
		// A page populated by a read while dirty logging is armed must
		// stay write-protected, or its first write would go unlogged.
		pte = mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagU)
	}
	if slot, err := x.NPTLeafSlot(d, gpa); err == nil {
		// Re-permitting an existing mapping (the dirty-logging W restore)
		// must keep the leaf's other attributes — the C-bit under
		// fidelius-enc in particular.
		if cur, err := x.readPTE(slot); err == nil && cur.Present() && cur.PFN() == pfn {
			pte = cur.WithFlags(mmu.FlagW)
		}
	}
	return x.MapNPT(d, gpa&^uint64(hw.PageSize-1), pte)
}

// Dom returns a domain by ID.
func (x *Xen) Dom(id DomID) (*Domain, bool) {
	d, ok := x.Doms[id]
	return d, ok
}

// DomByVMCB returns the domain whose VMCB lives at the given physical
// address.
func (x *Xen) DomByVMCB(pa hw.PhysAddr) (*Domain, bool) {
	d, ok := x.vmcbToDom[pa]
	return d, ok
}

// ConsoleLog returns everything a domain has written through the console
// hypercall.
func (x *Xen) ConsoleLog(id DomID) []byte {
	return append([]byte{}, x.console[id]...)
}
