// Migration: move a protected VM between two physical machines over the
// SEV SEND/RECEIVE transport (Section 4.3.6) — live. The pre-copy engine
// streams encrypted pages while the guest keeps running, tracks what it
// re-dirties through NPT write-protection faults, and freezes the vCPU
// only for the final residue. The stop-and-copy path of the paper is
// demonstrated as the baseline it improves on. Everything on the wire is
// ciphertext under a transport key agreed between the two platforms'
// firmware identities; tampering is caught by the measurement.
//
// Run with: go run ./examples/migration
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

func newPair() (*fidelius.Platform, *fidelius.Platform) {
	source, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	return source, target
}

func launch(source *fidelius.Platform) *fidelius.Domain {
	owner, _ := fidelius.NewOwner()
	kernel := bytes.Repeat([]byte("MIGRATABLE-KERN!"), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, source.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := source.LaunchVM("traveller", 48, bundle)
	if err != nil {
		log.Fatal(err)
	}
	return vm
}

func main() {
	// ---- Live pre-copy migration: the guest runs while its memory moves.
	source, target := newPair()
	vm := launch(source)

	// The workload keeps mutating a small working set, yielding once per
	// sweep — exits are the only points the engine can interleave quanta.
	source.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		for s := uint64(0); s < 30; s++ {
			for w := uint64(0); w < 3; w++ {
				if err := g.Write64(0x6000+w*0x1000, 0x1000+s); err != nil {
					return err
				}
			}
			g.Halt()
		}
		return g.Write(0x9000, []byte("session state v7"))
	})

	vm2, stats, err := fidelius.LiveMigrate(source, vm, target, fidelius.MigrateConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live migration: %d rounds, %d pages sent (%d re-dirtied)\n",
		stats.Rounds, stats.PagesSent, stats.Redirtied)
	fmt.Printf("live downtime:  %d cycles — the vCPU ran through the rest\n", stats.DowntimeCycles)

	// The guest's final state arrived under the target's key.
	target.StartVCPU(vm2, func(g *fidelius.GuestEnv) error {
		v, err := g.Read64(0x6000)
		if err != nil {
			return err
		}
		state := make([]byte, 16)
		if err := g.Read(0x9000, state); err != nil {
			return err
		}
		fmt.Printf("target vm resumed: counter=%#x, state=%q\n", v, state)
		return nil
	})
	if err := target.Run(vm2); err != nil {
		log.Fatal(err)
	}
	if err := target.Shutdown(vm2); err != nil {
		log.Fatal(err)
	}

	// ---- Stop-and-copy baseline: the paper's offline path, same guest.
	source, target = newPair()
	vm = launch(source)
	source.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		for i := uint64(0); i < 8; i++ {
			if err := g.Write64(0x6000+8*i, 0x1000+i); err != nil {
				return err
			}
		}
		return g.Write(0x9000, []byte("session state v7"))
	})
	if err := source.Run(vm); err != nil {
		log.Fatal(err)
	}

	snap, err := source.MigrateOut(vm, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstop-and-copy snapshot: %d pages, measurement %x…\n", len(snap.Packets), snap.Mvm[:8])

	// The wire format is ciphertext.
	leaky := false
	for _, pkt := range snap.Packets {
		if bytes.Contains(pkt.Data, []byte("session state")) || bytes.Contains(pkt.Data, []byte("MIGRATABLE")) {
			leaky = true
		}
	}
	fmt.Printf("snapshot leaks plaintext: %v\n", leaky)

	// A man-in-the-middle altering a page is caught at RECEIVE_FINISH.
	evil := *snap
	evil.Packets = append(evil.Packets[:0:0], snap.Packets...)
	evil.Packets[2].Data = append([]byte{}, snap.Packets[2].Data...)
	evil.Packets[2].Data[0] ^= 0xFF
	if _, err := target.MigrateIn(&evil, source); err != nil {
		fmt.Printf("tampered snapshot rejected: %v\n", err)
	}

	// The genuine snapshot restores, and the guest state survives.
	vm2, err = target.MigrateIn(snap, source)
	if err != nil {
		log.Fatal(err)
	}
	target.StartVCPU(vm2, func(g *fidelius.GuestEnv) error {
		v, err := g.Read64(0x6000 + 8*7)
		if err != nil {
			return err
		}
		state := make([]byte, 16)
		if err := g.Read(0x9000, state); err != nil {
			return err
		}
		fmt.Printf("target vm resumed: counter=%#x, state=%q\n", v, state)
		return nil
	})
	if err := target.Run(vm2); err != nil {
		log.Fatal(err)
	}
	if err := target.Shutdown(vm2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("migration complete")
}
