// Package migrate implements iterative pre-copy live migration for
// protected VMs over the SEV SEND*/RECEIVE* transport: dirty-page
// tracking on the source keeps the vCPU running while memory streams as
// ciphertext packets, rounds iterate until the writable working set is
// small enough (or provably never will be), and a final stop-and-copy
// round ships the residue before the measurement is verified on the
// target.
//
// The wire protocol is a stop-and-wait ARQ: every frame carries a
// transport sequence number, the receiver acknowledges each one, and the
// sender retries with exponential backoff until a bounded retry budget is
// exhausted — at which point the migration aborts cleanly and the source
// VM resumes. Guest data only ever crosses a Conn inside sev.Packet
// ciphertext; the transport layer never sees plaintext.
package migrate

import (
	"errors"
	"sync"
	"time"

	"fidelius/internal/cycles"
	"fidelius/internal/sev"
)

// FrameType discriminates protocol frames.
type FrameType uint8

// Protocol frame types.
const (
	// FrameStart opens a migration: guest geometry plus the wrapped
	// transport keys from SEND_START.
	FrameStart FrameType = iota + 1
	// FramePage carries one SEND_UPDATE ciphertext packet for a GFN.
	FramePage
	// FrameFinish carries the sender's measurement (Mvm); a successful
	// ack means the target verified and activated.
	FrameFinish
	// FrameAbort tears the migration down (either direction).
	FrameAbort
	// FrameAck acknowledges (OK) or rejects (!OK) the frame with AckSeq.
	FrameAck
)

func (t FrameType) String() string {
	switch t {
	case FrameStart:
		return "start"
	case FramePage:
		return "page"
	case FrameFinish:
		return "finish"
	case FrameAbort:
		return "abort"
	case FrameAck:
		return "ack"
	}
	return "frame(?)"
}

// Frame is one protocol message. Only the fields for its Type are
// meaningful.
type Frame struct {
	Type FrameType
	// Seq is the transport sequence number (sender-assigned, starting at
	// 0); acks echo it in AckSeq instead.
	Seq   uint64
	Round int

	// FrameStart fields.
	Name     string
	MemPages int
	Kwrap    sev.WrappedKeys
	Nonce    []byte

	// FramePage fields.
	GFN uint64
	Pkt sev.Packet

	// FrameFinish fields.
	Mvm sev.Measurement

	// FrameAck fields.
	AckSeq uint64
	OK     bool
	Err    string
}

// WireSize models the serialized footprint of a frame in bytes, for the
// bandwidth model and the bytes-on-wire accounting.
func WireSize(f *Frame) uint64 {
	n := uint64(32) // type, seq, round, geometry, lengths
	n += uint64(len(f.Name) + len(f.Nonce) + len(f.Kwrap.Ciphertext) + len(f.Kwrap.Nonce))
	if f.Type == FramePage {
		n += 8 + uint64(len(f.Pkt.Data)) + uint64(len(f.Pkt.Tag)) + 8
	}
	if f.Type == FrameFinish {
		n += uint64(len(f.Mvm))
	}
	return n
}

// Transport errors.
var (
	ErrClosed  = errors.New("migrate: connection closed")
	ErrTimeout = errors.New("migrate: receive timed out")
)

// Conn is one endpoint of a bidirectional migration channel.
type Conn interface {
	// Send enqueues a frame to the peer.
	Send(f *Frame) error
	// Recv returns the next frame from the peer. A timeout <= 0 blocks
	// until a frame arrives or the connection closes; otherwise ErrTimeout
	// is returned when the wait expires (the sender's ack wait, which is
	// what turns a lost frame into a retry).
	Recv(timeout time.Duration) (*Frame, error)
	// Close tears the channel down in both directions.
	Close() error
}

type pipeEnd struct {
	send chan<- *Frame
	recv <-chan *Frame
	done chan struct{}
	once *sync.Once
}

// Pipe returns two connected in-memory endpoints with the given per
// direction buffer (minimum 1). Closing either end closes both.
func Pipe(buf int) (Conn, Conn) {
	if buf < 1 {
		buf = 1
	}
	ab := make(chan *Frame, buf)
	ba := make(chan *Frame, buf)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeEnd{send: ab, recv: ba, done: done, once: once}
	b := &pipeEnd{send: ba, recv: ab, done: done, once: once}
	return a, b
}

func (p *pipeEnd) Send(f *Frame) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case p.send <- f:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (p *pipeEnd) Recv(timeout time.Duration) (*Frame, error) {
	if timeout <= 0 {
		select {
		case f := <-p.recv:
			return f, nil
		case <-p.done:
			// Drain frames that raced with the close.
			select {
			case f := <-p.recv:
				return f, nil
			default:
				return nil, ErrClosed
			}
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f := <-p.recv:
		return f, nil
	case <-p.done:
		select {
		case f := <-p.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-t.C:
		return nil, ErrTimeout
	}
}

func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// Link wraps one endpoint with a bandwidth/latency cost model: every Send
// charges this side's cycle counter the link latency plus a per-byte
// serialization cost, tying wire time into the platform's deterministic
// clock. Each endpoint wraps with its own machine's counter, so the model
// stays single-writer per counter.
type Link struct {
	Conn
	// Counter is the sending machine's cycle counter.
	Counter *cycles.Counter
	// CyclesPerByte models bandwidth (cycles of wire time per byte).
	CyclesPerByte uint64
	// LatencyCycles models fixed per-frame latency.
	LatencyCycles uint64
}

// DefaultCyclesPerByte approximates a 10 Gb/s link on the paper's 3.4 GHz
// clock: ~2.7 cycles per byte on the wire.
const DefaultCyclesPerByte = 3

// DefaultLatencyCycles approximates a ~10 µs datacenter RTT share per
// frame at 3.4 GHz.
const DefaultLatencyCycles = 34_000

func (l *Link) Send(f *Frame) error {
	if l.Counter != nil {
		l.Counter.Charge(l.LatencyCycles + WireSize(f)*l.CyclesPerByte)
	}
	return l.Conn.Send(f)
}

// Faulty wraps an endpoint with deterministic fault injection on Send:
// every DropEvery-th frame is silently discarded, every CorruptEvery-th
// page frame is delivered with a flipped ciphertext byte, and every
// DupEvery-th frame is delivered twice. Counters are 1-based; zero
// disables that fault. Corruption copies the frame so the sender's retry
// of the original is unaffected — exactly a man-in-the-middle, not a
// sender-side bug.
type Faulty struct {
	Conn
	DropEvery    int
	CorruptEvery int
	DupEvery     int
	sent         int
}

func (f *Faulty) Send(fr *Frame) error {
	f.sent++
	if f.DropEvery > 0 && f.sent%f.DropEvery == 0 {
		return nil // eaten by the network
	}
	if f.CorruptEvery > 0 && f.sent%f.CorruptEvery == 0 {
		fr = corruptCopy(fr)
	}
	if err := f.Conn.Send(fr); err != nil {
		return err
	}
	if f.DupEvery > 0 && f.sent%f.DupEvery == 0 {
		return f.Conn.Send(fr)
	}
	return nil
}

func corruptCopy(fr *Frame) *Frame {
	c := *fr
	if len(fr.Pkt.Data) > 0 {
		c.Pkt.Data = append([]byte{}, fr.Pkt.Data...)
		c.Pkt.Data[0] ^= 0xFF
	} else if len(fr.Nonce) > 0 {
		c.Nonce = append([]byte{}, fr.Nonce...)
		c.Nonce[0] ^= 0xFF
	} else {
		c.Mvm[0] ^= 0xFF
	}
	return &c
}
