package xen

import (
	"errors"
	"fmt"
	"sync/atomic"

	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
)

// PageUse classifies what a physical frame is used for. Fidelius's page
// information table tracks the same classification (Section 5.2); the
// allocator is the ground truth it is initialised from.
type PageUse uint8

// Frame usages.
const (
	UseFree PageUse = iota
	UseReserved
	UseXenCode
	UseXenData
	UseXenPageTable
	UseNPT
	UseVMCB
	UseGrantTable
	UseGuest
	UseFidelius
	UseShared
)

func (u PageUse) String() string {
	switch u {
	case UseFree:
		return "free"
	case UseReserved:
		return "reserved"
	case UseXenCode:
		return "xen-code"
	case UseXenData:
		return "xen-data"
	case UseXenPageTable:
		return "xen-pt"
	case UseNPT:
		return "npt"
	case UseVMCB:
		return "vmcb"
	case UseGrantTable:
		return "grant-table"
	case UseGuest:
		return "guest"
	case UseFidelius:
		return "fidelius"
	case UseShared:
		return "shared"
	}
	return fmt.Sprintf("use(%d)", uint8(u))
}

// ErrNoMemory reports frame exhaustion.
var ErrNoMemory = errors.New("xen: out of physical frames")

// FrameInfo records the owner domain and usage of one physical frame.
type FrameInfo struct {
	Use   PageUse
	Owner DomID
}

// FrameAlloc is the hypervisor's physical frame allocator with per-frame
// ownership and usage accounting. Its internal mutex (lock rank: alloc)
// sits near the bottom of the lock order, so any path may allocate.
type FrameAlloc struct {
	mu     lockrank.Mutex
	frames []FrameInfo
	free   []hw.PFN // LIFO free list
}

// SetLockInfo ranks the allocator lock and wires its contention counter.
func (a *FrameAlloc) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	a.mu.Init(rank, waits)
}

// NewFrameAlloc covers frames [start, total). Frames below start are
// marked reserved.
func NewFrameAlloc(start, total int) *FrameAlloc {
	a := &FrameAlloc{frames: make([]FrameInfo, total)}
	for i := 0; i < start; i++ {
		a.frames[i].Use = UseReserved
	}
	for i := total - 1; i >= start; i-- {
		a.free = append(a.free, hw.PFN(i))
	}
	return a
}

// Alloc takes a free frame and tags it.
func (a *FrameAlloc) Alloc(use PageUse, owner DomID) (hw.PFN, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) == 0 {
		return 0, ErrNoMemory
	}
	pfn := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.frames[pfn] = FrameInfo{Use: use, Owner: owner}
	return pfn, nil
}

// Free returns a frame to the pool.
func (a *FrameAlloc) Free(pfn hw.PFN) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(pfn) >= len(a.frames) || a.frames[pfn].Use == UseFree {
		return
	}
	a.frames[pfn] = FrameInfo{}
	a.free = append(a.free, pfn)
}

// Info reports a frame's accounting record.
func (a *FrameAlloc) Info(pfn hw.PFN) FrameInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(pfn) >= len(a.frames) {
		return FrameInfo{Use: UseReserved}
	}
	return a.frames[pfn]
}

// SetUse retags a frame (e.g. a guest page becoming shared).
func (a *FrameAlloc) SetUse(pfn hw.PFN, use PageUse, owner DomID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(pfn) < len(a.frames) {
		a.frames[pfn] = FrameInfo{Use: use, Owner: owner}
	}
}

// FreeCount reports the number of free frames.
func (a *FrameAlloc) FreeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// Total reports the number of tracked frames.
func (a *FrameAlloc) Total() int { return len(a.frames) }

// ForEach visits every frame's info in PFN order.
func (a *FrameAlloc) ForEach(fn func(pfn hw.PFN, info FrameInfo)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, fi := range a.frames {
		fn(hw.PFN(i), fi)
	}
}

// allocAdapter exposes FrameAlloc as an mmu.FrameAllocator with a fixed
// tag, for page-table construction.
type allocAdapter struct {
	a     *FrameAlloc
	use   PageUse
	owner DomID
}

func (ad allocAdapter) AllocFrame() (hw.PFN, error) { return ad.a.Alloc(ad.use, ad.owner) }
