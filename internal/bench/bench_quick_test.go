package bench

import (
	"math"
	"strings"
	"testing"

	"fidelius/internal/workload"
)

// TestFigure5Shape verifies the SPEC overhead shape (E1) at reduced
// iteration counts: who suffers, by roughly what factor.
func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(12)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FigRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Memory-bound benchmarks suffer most from encryption.
	if byName["mcf"].Enc < 10 {
		t.Errorf("mcf enc overhead %.2f%%, want >10%%", byName["mcf"].Enc)
	}
	if byName["omnetpp"].Enc < 10 {
		t.Errorf("omnetpp enc overhead %.2f%%, want >10%%", byName["omnetpp"].Enc)
	}
	// Compute-bound benchmarks see almost none.
	for _, n := range []string{"bzip2", "hmmer", "h264ref"} {
		if byName[n].Enc > 2 {
			t.Errorf("%s enc overhead %.2f%%, want <2%%", n, byName[n].Enc)
		}
	}
	// Fidelius alone is ~1%.
	avg := Average(rows)
	if avg.Fid < 0 || avg.Fid > 2.5 {
		t.Errorf("average fidelius overhead %.2f%%, want ~1%%", avg.Fid)
	}
	if avg.Enc < 3 || avg.Enc > 9 {
		t.Errorf("average enc overhead %.2f%%, want ~5.4%%", avg.Enc)
	}
	// Ordering: enc >= fid for every benchmark (encryption only adds).
	for _, r := range rows {
		if r.Enc+0.5 < r.Fid {
			t.Errorf("%s: enc (%.2f) below fidelius (%.2f)", r.Name, r.Enc, r.Fid)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(12)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FigRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["canneal"].Enc < 8 {
		t.Errorf("canneal enc overhead %.2f%%, want >8%% (paper: 14.27%%)", byName["canneal"].Enc)
	}
	for _, r := range rows {
		if r.Name == "canneal" {
			continue
		}
		if r.Enc > 6 {
			t.Errorf("%s enc overhead %.2f%%, want <6%%", r.Name, r.Enc)
		}
	}
	avg := Average(rows)
	if avg.Fid > 1.5 {
		t.Errorf("average fidelius overhead %.2f%%, want ~0.4%%", avg.Fid)
	}
	if avg.Enc < 0.8 || avg.Enc > 4.5 {
		t.Errorf("average enc overhead %.2f%%, want ~2%%", avg.Enc)
	}
	out := FormatFigure("fig6", rows)
	if !strings.Contains(out, "canneal") || !strings.Contains(out, "average") {
		t.Error("formatted figure incomplete")
	}
}

// TestTable3Shape verifies the fio asymmetry (E3): seq-read suffers most,
// writes little, random patterns least.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3(320)
	if err != nil {
		t.Fatal(err)
	}
	byPat := map[workload.FioPattern]FioRow{}
	for _, r := range rows {
		byPat[r.Pattern] = r
	}
	sr := byPat[workload.SeqRead].Slowdown
	sw := byPat[workload.SeqWrite].Slowdown
	rr := byPat[workload.RandRead].Slowdown
	rw := byPat[workload.RandWrite].Slowdown
	if sr < 15 || sr > 32 {
		t.Errorf("seq-read slowdown %.2f%%, want ~23%% (paper: 22.91%%)", sr)
	}
	if sw < 1 || sw > 8 {
		t.Errorf("seq-write slowdown %.2f%%, want ~3.6%%", sw)
	}
	if rr > 4 {
		t.Errorf("rand-read slowdown %.2f%%, want <4%% (paper: 1.38%%)", rr)
	}
	if rw > 2.5 {
		t.Errorf("rand-write slowdown %.2f%%, want <2.5%% (paper: 0.70%%)", rw)
	}
	// The ordering of Table 3.
	if !(sr > sw && sw > rw) {
		t.Errorf("slowdown ordering violated: sr=%.2f sw=%.2f rr=%.2f rw=%.2f", sr, sw, rr, rw)
	}
	if s := FormatTable3(rows); !strings.Contains(s, "seq-read") {
		t.Error("formatted table incomplete")
	}
}

// TestMicroGates verifies E4 exactly: the gate costs are the paper's
// measured 306/16/339 cycles.
func TestMicroGates(t *testing.T) {
	g, err := MicroBenchGates(100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Gate1 != 306 {
		t.Errorf("type 1 gate = %d cycles, want 306", g.Gate1)
	}
	if g.Gate2 != 16 {
		t.Errorf("type 2 gate = %d cycles, want 16", g.Gate2)
	}
	if g.Gate3 != 339 {
		t.Errorf("type 3 gate = %d cycles, want 339", g.Gate3)
	}
	if g.Gate3TLBFlush != 128 {
		t.Errorf("TLB flush share = %d, want 128", g.Gate3TLBFlush)
	}
	if g.Gate3CacheWrt >= 2+1 {
		t.Errorf("page-table write share = %d, want <2 per paper", g.Gate3CacheWrt)
	}
}

// TestMicroShadow verifies E5: the shadow-and-check cost per void
// hypercall round trip is ~661 cycles.
func TestMicroShadow(t *testing.T) {
	s, err := MicroBenchShadow(200)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shadow < 600 || s.Shadow > 730 {
		t.Errorf("shadow cost = %d cycles, want ~661", s.Shadow)
	}
	if s.FideliusRT <= s.XenRT {
		t.Error("Fidelius round trip should exceed Xen's")
	}
}

// TestMicroIOCrypt verifies E6: AES-NI ~11.49%, SEV/SME ~8.69%, software
// >20x.
func TestMicroIOCrypt(t *testing.T) {
	r := MicroBenchIOCrypt(1 << 20)
	if math.Abs(r.AESNISlowdown-11.49) > 1.0 {
		t.Errorf("AES-NI slowdown %.2f%%, want ~11.49%%", r.AESNISlowdown)
	}
	if math.Abs(r.SEVSlowdown-8.69) > 1.0 {
		t.Errorf("SEV slowdown %.2f%%, want ~8.69%%", r.SEVSlowdown)
	}
	if r.SoftwareRatio < 20 {
		t.Errorf("software ratio %.1fx, want >20x", r.SoftwareRatio)
	}
}

func TestNewPlatformConfigs(t *testing.T) {
	for _, cfg := range Configs {
		p, err := NewPlatform(cfg, 32)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if (p.F != nil) != (cfg != ConfigXen) {
			t.Errorf("%s: fidelius presence wrong", cfg)
		}
	}
}
