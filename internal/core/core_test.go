package core

import (
	"bytes"
	"errors"
	"testing"

	"fidelius/internal/cpu"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// newPlatform boots a machine, the hypervisor, and Fidelius on top.
func newPlatform(t *testing.T) (*xen.Xen, *Fidelius) {
	t.Helper()
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	x, err := xen.New(m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Enable(x)
	if err != nil {
		t.Fatal(err)
	}
	return x, f
}

// newBundle prepares an owner bundle with the given kernel and disk
// payloads.
func newBundle(t *testing.T, f *Fidelius, kernel, diskPlain []byte) (*GuestBundle, [32]byte) {
	t.Helper()
	owner, err := sev.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := f.M.FW.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	b, kblk, err := PrepareGuest(owner, pub, kernel, diskPlain)
	if err != nil {
		t.Fatal(err)
	}
	return b, kblk
}

func TestEnableMeasuresAndProtects(t *testing.T) {
	x, f := newPlatform(t)
	if f.HypervisorMeasurement == [32]byte{} {
		t.Fatal("no hypervisor measurement")
	}
	// The hypervisor's page-table-pages are read-only: a direct CPU
	// write faults.
	pages, err := x.M.HostPT.TablePages()
	if err != nil {
		t.Fatal(err)
	}
	err = x.M.CPU.Write64(uint64(pages[0].Addr()), 0xE711)
	var pf *mmu.PageFault
	if !errors.As(err, &pf) || pf.Reason != mmu.WriteProtected {
		t.Fatalf("want WP fault on page-table write, got %v", err)
	}
	// The VMRUN and MOV CR3 stub pages are unmapped.
	for _, va := range []uint64{x.M.Stubs.VmrunPg, x.M.Stubs.MovCR3Pg} {
		if err := x.M.CPU.ReadVA(va, make([]byte, 1)); err == nil {
			t.Fatalf("stub page %#x still mapped", va)
		}
	}
}

func TestEnableRejectsUnsanctionedPrivilegedCode(t *testing.T) {
	m, err := xen.NewMachine(xen.Config{MemPages: 512, CacheLines: 64})
	if err != nil {
		t.Fatal(err)
	}
	x, err := xen.New(m)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a privileged gadget in the code region before enabling.
	gadget := []byte{0xF4} // vmrun opcode byte inside the code page
	if err := m.Ctl.Mem.WriteRaw(m.Stubs.Pages[0].Addr()+2000, gadget); err != nil {
		t.Fatal(err)
	}
	if _, err := Enable(x); !errors.Is(err, ErrNotMonopolised) {
		t.Fatalf("want ErrNotMonopolised, got %v", err)
	}
}

func TestProtectedVMLifecycle(t *testing.T) {
	x, f := newPlatform(t)
	kernel := bytes.Repeat([]byte("KERNELKERNELKERN"), 512) // 2 pages
	b, _ := newBundle(t, f, kernel, nil)
	d, err := f.LaunchVM("guest", 64, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}

	// The guest can read its decrypted kernel and its embedded Kblk.
	kbase := f.KernelBase(d, b) << hw.PageShift
	var guestKernel []byte
	var guestKblk [32]byte
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		guestKernel = make([]byte, 64)
		if err := g.Read(kbase, guestKernel); err != nil {
			return err
		}
		if err := g.Read(kbase+KblkOffset, guestKblk[:]); err != nil {
			return err
		}
		// Normal computation with hypercalls mixed in.
		if _, err := g.Hypercall(xen.HCVoid); err != nil {
			return err
		}
		return g.Write(0x8000, []byte("runtime state"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(guestKernel[:16], []byte("KERNELKERNELKERN")) {
		// Bytes 64..96 hold Kblk, the rest is kernel text.
		t.Fatalf("guest kernel mismatch: %q", guestKernel[:16])
	}
	if guestKblk == ([32]byte{}) {
		t.Fatal("guest did not receive Kblk")
	}

	// The hypervisor cannot read the guest's memory: the frame is
	// unmapped from the host space.
	pfn, _ := d.GPAFrame(8)
	err = x.M.CPU.ReadVA(uint64(pfn.Addr()), make([]byte, 8))
	if err == nil {
		t.Fatal("hypervisor can still touch protected guest memory")
	}
	// And the DRAM view is ciphertext.
	raw := make([]byte, 13)
	x.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
	if bytes.Equal(raw, []byte("runtime state")) {
		t.Fatal("guest memory is plaintext in DRAM")
	}

	// Shutdown scrubs everything.
	if err := f.ShutdownVM(d); err != nil {
		t.Fatal(err)
	}
	if _, ok := x.Dom(d.ID); ok {
		t.Fatal("domain survived shutdown")
	}
	e, _ := f.PIT.Get(pfn)
	if e.Valid() {
		t.Fatal("PIT entry survived shutdown")
	}
}

func TestLaunchRejectsTamperedImage(t *testing.T) {
	_, f := newPlatform(t)
	b, _ := newBundle(t, f, bytes.Repeat([]byte{1}, hw.PageSize), nil)
	b.Image.Pages[0].Data[7] ^= 0xFF
	if _, err := f.LaunchVM("tampered", 32, b); err == nil {
		t.Fatal("tampered kernel image booted")
	}
}

func TestShadowingMasksGuestState(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("shadow", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	secret := uint64(0xDEAD5EC0)
	var observedRegs [cpu.NumRegs]uint64
	hooked := false
	// Observe what the hypervisor sees at a void-hypercall exit.
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		g.Regs[6] = secret // a register the exit reason does not expose
		_, err := g.Hypercall(xen.HCVoid)
		if err != nil {
			return err
		}
		if g.Regs[6] != secret {
			t.Error("guest register not restored after exit")
		}
		return nil
	})
	// Wrap the exit path: record the CPU register file as the
	// hypervisor would see it during handling.
	prev := x.Interpose
	x.Interpose = &snoopInterposer{Interposer: prev, onExit: func() {
		observedRegs = x.M.CPU.Regs
		hooked = true
	}}
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatal("snoop did not run")
	}
	if observedRegs[6] == secret {
		t.Fatal("guest register leaked to the hypervisor despite masking")
	}
}

// snoopInterposer delegates to Fidelius but observes the post-shadow
// state, standing in for hypervisor code inspecting registers.
type snoopInterposer struct {
	xen.Interposer
	onExit func()
}

func (s *snoopInterposer) OnVMExit(d *xen.Domain, pa hw.PhysAddr) error {
	err := s.Interposer.OnVMExit(d, pa)
	s.onExit()
	return err
}

func TestVMCBTamperDetected(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("tamper", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	// A malicious exit handler rewrites the (masked) guest RIP in the
	// VMCB, attempting to redirect execution.
	prev := x.Interpose
	x.Interpose = &tamperInterposer{Interposer: prev, x: x, d: d}
	err = x.Run(d)
	var pe *cpu.ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("VMCB tamper not detected: %v", err)
	}
}

type tamperInterposer struct {
	xen.Interposer
	x *xen.Xen
	d *xen.Domain
}

func (ti *tamperInterposer) OnVMExit(d *xen.Domain, pa hw.PhysAddr) error {
	if err := ti.Interposer.OnVMExit(d, pa); err != nil {
		return err
	}
	v, err := cpu.LoadVMCB(ti.x.M.Ctl, pa)
	if err != nil {
		return err
	}
	v.RIP = 0xBAD
	return cpu.StoreVMCB(ti.x.M.Ctl, pa, v)
}

func TestWriteOncePolicy(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("once", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatalf("first start-info write must succeed: %v", err)
	}
	if err := x.WriteStartInfo(d); err == nil {
		t.Fatal("second start-info write must be blocked")
	}
	found := false
	for _, v := range f.Violations {
		if v.Kind == "write-once" {
			found = true
		}
	}
	if !found {
		t.Fatal("write-once violation not logged")
	}
}

func TestWriteForbiddingCodePages(t *testing.T) {
	x, f := newPlatform(t)
	err := x.M.CPU.WriteVA(x.M.Stubs.Base+100, []byte{0x90})
	if err == nil {
		t.Fatal("write to hypervisor code page succeeded")
	}
	found := false
	for _, v := range f.Violations {
		if v.Kind == "write-forbidding" {
			found = true
		}
	}
	if !found {
		t.Fatal("write-forbidding violation not logged")
	}
}

func TestExecuteOncePolicy(t *testing.T) {
	x, f := newPlatform(t)
	if err := f.ExecPrivStub(x.M.Stubs.Lgdt, 0); err != nil {
		t.Fatalf("first lgdt must succeed: %v", err)
	}
	err := f.ExecPrivStub(x.M.Stubs.Lgdt, 0)
	var pe *cpu.ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("second lgdt must be vetoed, got %v", err)
	}
}

func TestTable2Policies(t *testing.T) {
	x, f := newPlatform(t)
	c := x.M.CPU
	// MOV CR0: PG and WP cannot be cleared.
	if err := c.SetWP(false); err == nil {
		t.Fatal("WP clear permitted")
	}
	if c.WP() == false {
		t.Fatal("WP actually cleared")
	}
	if err := f.ExecPrivStub(x.M.Stubs.MovCR0, c.CR0&^cpu.CR0PG); err == nil {
		t.Fatal("PG clear permitted")
	}
	// MOV CR4: SMEP cannot be cleared.
	if err := f.ExecPrivStub(x.M.Stubs.MovCR4, c.CR4&^cpu.CR4SMEP); err == nil {
		t.Fatal("SMEP clear permitted")
	}
	// WRMSR: EFER.NXE cannot be cleared.
	c.Regs[1] = c.EFER &^ cpu.EFERNXE
	c.Regs[0] = cpu.MSREFER
	if err := c.Run(x.M.Stubs.Wrmsr, 4); err == nil {
		t.Fatal("NXE clear permitted")
	}
	if c.EFER&cpu.EFERNXE == 0 {
		t.Fatal("NXE actually cleared")
	}
	// MOV CR3: the target must be a valid page table root.
	err := f.gate3(x.M.Stubs.MovCR3Pg, f.savedMovCR3PTE, func() error {
		c.Regs[0] = 0x41414000 // not a page table
		return c.Run(x.M.Stubs.MovCR3, 4)
	})
	var pe *cpu.ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("invalid CR3 target permitted: %v", err)
	}
}

func TestGateStatsAccumulate(t *testing.T) {
	x, f := newPlatform(t)
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	d, err := f.LaunchVM("stats", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().Gate1 == 0 {
		t.Fatal("no type 1 gate transitions during domain build")
	}
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		_, err := g.Hypercall(xen.HCVoid)
		return err
	})
	g3 := f.Stats().Gate3
	sh := f.Stats().Shadows
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Gate3 <= g3 {
		t.Fatal("VMRUN did not use the type 3 gate")
	}
	if f.Stats().Shadows <= sh {
		t.Fatal("exits were not shadowed")
	}
}

func TestSecureMemorySharing(t *testing.T) {
	x, f := newPlatform(t)
	b1, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	b2, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	granter, err := f.LaunchVM("granter", 32, b1)
	if err != nil {
		t.Fatal(err)
	}
	grantee, err := f.LaunchVM("grantee", 32, b2)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("cooperatively shared")
	var ref uint64
	x.StartVCPU(granter, func(g *xen.GuestEnv) error {
		if err := g.WriteUnencrypted(7<<hw.PageShift, msg); err != nil {
			return err
		}
		// Declare the sharing first (pre_sharing_op), then grant.
		if _, err := g.Hypercall(xen.HCPreSharingOp, uint64(grantee.ID), 7, 1, 0); err != nil {
			return err
		}
		r, err := g.Hypercall(xen.HCGrantTableOp, xen.GntOpGrant, uint64(grantee.ID), 7, 0)
		ref = r
		return err
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(msg))
	x.StartVCPU(grantee, func(g *xen.GuestEnv) error {
		dst := uint64(grantee.MemPages)
		if _, err := g.Hypercall(xen.HCGrantTableOp, xen.GntOpMap, uint64(granter.ID), ref, dst); err != nil {
			return err
		}
		return g.ReadUnencrypted(dst<<hw.PageShift, got)
	})
	if err := x.Run(grantee); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("shared read %q want %q", got, msg)
	}
}

func TestGrantWithoutPreSharingVetoed(t *testing.T) {
	x, f := newPlatform(t)
	b1, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	granter, err := f.LaunchVM("granter", 32, b1)
	if err != nil {
		t.Fatal(err)
	}
	var grantErr error
	x.StartVCPU(granter, func(g *xen.GuestEnv) error {
		_, grantErr = g.Hypercall(xen.HCGrantTableOp, xen.GntOpGrant, 99, 7, 0)
		return nil
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}
	if grantErr == nil {
		t.Fatal("grant without pre_sharing_op succeeded")
	}
}

func TestGrantPermissionEscalationVetoed(t *testing.T) {
	x, f := newPlatform(t)
	b1, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	b2, _ := newBundle(t, f, make([]byte, hw.PageSize), nil)
	granter, _ := f.LaunchVM("granter", 32, b1)
	grantee, _ := f.LaunchVM("grantee", 32, b2)
	var escalateErr error
	x.StartVCPU(granter, func(g *xen.GuestEnv) error {
		// Declared read-only...
		if _, err := g.Hypercall(xen.HCPreSharingOp, uint64(grantee.ID), 7, 1, uint64(xen.GrantReadOnly)); err != nil {
			return err
		}
		// ...but the grant-table entry (which a malicious hypervisor
		// could forge) asks for writable.
		_, escalateErr = g.Hypercall(xen.HCGrantTableOp, xen.GntOpGrant, uint64(grantee.ID), 7, 0)
		return nil
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}
	if escalateErr == nil {
		t.Fatal("read-only declaration escalated to writable grant")
	}
}

func TestSEVIOPathEndToEnd(t *testing.T) {
	x, f := newPlatform(t)
	diskPlain := bytes.Repeat([]byte("DISK-CONTENT-16B"), 96) // 3 sectors
	b, _ := newBundle(t, f, make([]byte, hw.PageSize), diskPlain)
	d, err := f.LaunchVM("sevio", 64, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetupIOSession(d); err != nil {
		t.Fatal(err)
	}
	dk := disk.New(128)
	backend, err := f.AttachProtectedDisk(d, dk, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	backend.SnoopEnabled = true
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte("SEV-IO-SECRET!!!"), disk.SectorSize/16*2) // 2 sectors
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		front := NewSEVFront(g, bf)
		if err := front.WriteSectors(5, payload); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := front.ReadSectors(5, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("SEV I/O round trip mismatch")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	// Neither the snooping backend nor the disk ever sees plaintext.
	if bytes.Contains(backend.Snoop, []byte("SEV-IO-SECRET!!!")) {
		t.Fatal("backend observed plaintext on the SEV I/O path")
	}
	if bytes.Contains(dk.Snapshot(), []byte("SEV-IO-SECRET!!!")) {
		t.Fatal("disk holds plaintext on the SEV I/O path")
	}
}

func TestAESNIIOPathEndToEnd(t *testing.T) {
	x, f := newPlatform(t)
	diskPlain := bytes.Repeat([]byte("FS-IMAGE-BLOCK.."), 32*8) // 8 sectors
	b, kblk := newBundle(t, f, make([]byte, hw.PageSize), diskPlain)
	d, err := f.LaunchVM("aesni", 64, b)
	if err != nil {
		t.Fatal(err)
	}
	dk := disk.New(128)
	backend, err := f.AttachProtectedDisk(d, dk, 2, 1, b)
	if err != nil {
		t.Fatal(err)
	}
	backend.SnoopEnabled = true
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}

	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		// The guest reads Kblk out of its decrypted kernel image.
		var guestKblk [32]byte
		kbase := f.KernelBase(d, b) << hw.PageShift
		if err := g.Read(kbase+KblkOffset, guestKblk[:]); err != nil {
			return err
		}
		if guestKblk != kblk {
			t.Error("guest recovered the wrong Kblk")
		}
		front, err := NewAESNIFront(g, bf, guestKblk)
		if err != nil {
			return err
		}
		// Read the owner-prepared disk image: it decrypts correctly.
		got := make([]byte, 2*disk.SectorSize)
		if err := front.ReadSectors(0, got); err != nil {
			return err
		}
		if !bytes.Equal(got, diskPlain[:len(got)]) {
			t.Error("owner disk image did not decrypt")
		}
		// Write fresh data and read it back.
		fresh := bytes.Repeat([]byte("fresh-write-data"), disk.SectorSize/16)
		if err := front.WriteSectors(20, fresh); err != nil {
			return err
		}
		back := make([]byte, len(fresh))
		if err := front.ReadSectors(20, back); err != nil {
			return err
		}
		if !bytes.Equal(back, fresh) {
			t.Error("AES-NI round trip mismatch")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(backend.Snoop, []byte("FS-IMAGE-BLOCK..")) ||
		bytes.Contains(backend.Snoop, []byte("fresh-write-data")) {
		t.Fatal("backend observed plaintext on the AES-NI path")
	}
	if bytes.Contains(dk.Snapshot(), []byte("fresh-write-data")) {
		t.Fatal("disk holds plaintext on the AES-NI path")
	}
}

func TestMigration(t *testing.T) {
	// Two machines, each with its own hypervisor and Fidelius.
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)

	kernel := bytes.Repeat([]byte("MIGRATING-KERNEL"), 256) // 1 page
	b, _ := newBundle(t, f1, kernel, nil)
	d, err := f1.LaunchVM("migrator", 32, b)
	if err != nil {
		t.Fatal(err)
	}
	// Run it and leave state in memory.
	x1.StartVCPU(d, func(g *xen.GuestEnv) error {
		return g.Write(0x6000, []byte("pre-migration state"))
	})
	if err := x1.Run(d); err != nil {
		t.Fatal(err)
	}

	targetPub, err := f2.M.FW.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := f1.MigrateOut(d, targetPub)
	if err != nil {
		t.Fatal(err)
	}
	// Transport packets are ciphertext.
	for _, pkt := range bundle.Packets {
		if bytes.Contains(pkt.Data, []byte("pre-migration state")) ||
			bytes.Contains(pkt.Data, []byte("MIGRATING-KERNEL")) {
			t.Fatal("migration stream holds plaintext")
		}
	}

	originPub, _ := f1.M.FW.PublicKey()
	d2, err := f2.MigrateIn(bundle, originPub)
	if err != nil {
		t.Fatal(err)
	}
	// The migrated guest sees its state.
	x2 := f2.X
	var got []byte
	x2.StartVCPU(d2, func(g *xen.GuestEnv) error {
		got = make([]byte, 19)
		return g.Read(0x6000, got)
	})
	if err := x2.Run(d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("pre-migration state")) {
		t.Fatalf("migrated state mismatch: %q", got)
	}
}

func TestMigrationTamperDetected(t *testing.T) {
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	_ = x1
	b, _ := newBundle(t, f1, make([]byte, hw.PageSize), nil)
	d, err := f1.LaunchVM("m", 16, b)
	if err != nil {
		t.Fatal(err)
	}
	targetPub, _ := f2.M.FW.PublicKey()
	bundle, err := f1.MigrateOut(d, targetPub)
	if err != nil {
		t.Fatal(err)
	}
	bundle.Packets[3].Data[0] ^= 1
	originPub, _ := f1.M.FW.PublicKey()
	if _, err := f2.MigrateIn(bundle, originPub); err == nil {
		t.Fatal("tampered migration stream accepted")
	}
}

func TestFideliusEncConfiguration(t *testing.T) {
	x, f := newPlatform(t)
	// Fidelius-enc: a non-SEV guest whose memory gets SME-encrypted by
	// setting NPT C-bits via the hypercall (Section 7.1).
	d, err := x.CreateDomain(xen.DomainConfig{Name: "enc", MemPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *xen.GuestEnv) error {
		if err := g.Write(0x5000, []byte("before enc")); err != nil {
			return err
		}
		if _, err := g.Hypercall(xen.HCEnableSME); err != nil {
			return err
		}
		// Earlier data must still read back (re-encrypted in place).
		buf := make([]byte, 10)
		if err := g.Read(0x5000, buf); err != nil {
			return err
		}
		if string(buf) != "before enc" {
			t.Errorf("pre-enc data lost: %q", buf)
		}
		return g.Write(0x6000, []byte("after enc!"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !f.EncryptAll {
		t.Fatal("EnableSME did not mark the configuration")
	}
	// DRAM holds ciphertext for both pages now.
	for _, gfn := range []uint64{5, 6} {
		pfn, _ := d.GPAFrame(gfn)
		raw := make([]byte, 10)
		x.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
		if bytes.Equal(raw, []byte("before enc")) || bytes.Equal(raw, []byte("after enc!")) {
			t.Fatalf("gfn %d plaintext in DRAM after EnableSME", gfn)
		}
	}
}

func TestPITEntryRoundTrip(t *testing.T) {
	e := MakePITEntry(xen.UseGuest, 42, 7)
	if !e.Valid() || e.Use() != xen.UseGuest || e.Owner() != 42 || e.ASID() != 7 {
		t.Fatalf("entry fields wrong: %v", e)
	}
	if PITEntry(0).Valid() {
		t.Fatal("zero entry must be invalid")
	}
}

func TestPITStorage(t *testing.T) {
	_, f := newPlatform(t)
	if err := f.PIT.Set(1234, MakePITEntry(xen.UseGuest, 3, 9)); err != nil {
		t.Fatal(err)
	}
	e, err := f.PIT.Get(1234)
	if err != nil {
		t.Fatal(err)
	}
	if e.Owner() != 3 || e.ASID() != 9 {
		t.Fatalf("lookup mismatch: %v", e)
	}
	// Frames in different 1024-groups land in different leaf pages.
	if err := f.PIT.Set(3000, MakePITEntry(xen.UseNPT, 1, 1)); err != nil {
		t.Fatal(err)
	}
	e2, _ := f.PIT.Get(3000)
	if e2.Use() != xen.UseNPT {
		t.Fatal("second group lookup")
	}
	// Unset frames are invalid.
	if e3, _ := f.PIT.Get(2000); e3.Valid() {
		t.Fatal("unset frame should be invalid")
	}
	if err := f.PIT.Clear(1234); err != nil {
		t.Fatal(err)
	}
	if e4, _ := f.PIT.Get(1234); e4.Valid() {
		t.Fatal("cleared entry still valid")
	}
}

func TestGITStorage(t *testing.T) {
	_, f := newPlatform(t)
	e := GITEntry{Initiator: 1, Target: 2, GFNStart: 10, PFNStart: 100, Count: 4, ReadOnly: true}
	if err := f.GIT.Add(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := f.GIT.Find(func(g GITEntry) bool { return g.Initiator == 1 })
	if err != nil || !ok {
		t.Fatalf("find: %v %v", ok, err)
	}
	if !got.CoversPFN(103) || got.CoversPFN(104) {
		t.Fatal("PFN coverage wrong")
	}
	if !got.CoversGFN(13) || got.CoversGFN(14) {
		t.Fatal("GFN coverage wrong")
	}
	if !got.ReadOnly {
		t.Fatal("flags lost")
	}
	if err := f.GIT.RemoveFor(2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.GIT.Find(func(g GITEntry) bool { return g.Initiator == 1 }); ok {
		t.Fatal("RemoveFor left the record")
	}
}
