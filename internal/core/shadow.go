package core

import (
	"fmt"

	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// shadowState is Fidelius's private copy of a guest's VMCB and register
// file, kept in memory unmapped from the hypervisor (Section 4.2.1). The
// in-memory VMCB the hypervisor sees is masked by exit reason; before
// VMRUN the true state is restored and any disallowed modification is
// detected — a software SEV-ES.
type shadowState struct {
	valid bool
	vmcb  cpu.VMCB
	regs  [cpu.NumRegs]uint64
}

// maskedVMCB returns the exit-reason-classified view the hypervisor is
// allowed to see (Section 5.1):
//
//   - NPF: all guest state masked; the hypervisor only needs the fault
//     address in the exitinfo fields.
//   - CPUID: all state masked except the four registers.
//   - VMMCALL: the hypercall number and argument registers stay visible.
//   - everything else: all guest state masked.
//
// Control-area fields (NPT root, ASID, intercepts) are not secret — the
// hypervisor configured them — but their integrity is verified on re-entry.
func maskedVMCB(v *cpu.VMCB) *cpu.VMCB {
	m := *v
	m.RIP, m.RSP, m.CR0, m.CR3, m.CR4, m.EFER = 0, 0, 0, 0, 0, 0
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	switch v.ExitCode {
	case cpu.ExitCPUID:
		copy(m.Regs[:4], v.Regs[:4])
	case cpu.ExitVMMCALL:
		copy(m.Regs[:6], v.Regs[:6])
	}
	return &m
}

// allowedRegs reports which registers the hypervisor may legitimately
// update for the exit reason.
func allowedRegs(reason cpu.ExitReason) int {
	switch reason {
	case cpu.ExitCPUID:
		return 4 // the "specific four registers" of Section 5.1
	case cpu.ExitVMMCALL:
		return 2 // result and errno
	}
	return 0
}

// onVMExit shadows the guest state at the guest→host boundary and leaves
// only the masked view in hypervisor-visible memory.
func (f *Fidelius) onVMExit(d *xen.Domain, vmcbPA hw.PhysAddr) error {
	h := f.hub()
	h.M.Shadows.Inc()
	if h.Tracing() {
		h.Emit(telemetry.KindShadowSave, uint32(d.ID), uint32(d.ASID),
			cycles.ShadowCheck/2+1, uint64(vmcbPA), 0)
	}
	f.M.Ctl.Cycles.Charge(cycles.ShadowCheck/2 + 1)
	// The copy and mask costs are modelled by the ShadowCheck constant;
	// the mechanics below run in a quiet section.
	t0 := f.M.Ctl.Cycles.Total()
	defer f.M.Ctl.Cycles.SetTotal(t0)
	v, err := cpu.LoadVMCB(f.M.Ctl, vmcbPA)
	if err != nil {
		return err
	}
	sh := f.shadows[d.ID]
	if sh == nil {
		sh = &shadowState{}
		f.shadows[d.ID] = sh
	}
	sh.valid = true
	sh.vmcb = *v
	sh.regs = f.M.CPU.Regs

	masked := maskedVMCB(v)
	if err := cpu.StoreVMCB(f.M.Ctl, vmcbPA, masked); err != nil {
		return err
	}
	f.M.CPU.Regs = masked.Regs
	return nil
}

// preVMRun verifies the hypervisor's modifications against the shadow and
// restores the true guest state at the host→guest boundary.
func (f *Fidelius) preVMRun(d *xen.Domain, vmcbPA hw.PhysAddr) error {
	if h := f.hub(); h.Tracing() {
		h.Emit(telemetry.KindShadowVerify, uint32(d.ID), uint32(d.ASID),
			cycles.ShadowCheck/2, uint64(vmcbPA), 0)
	}
	f.M.Ctl.Cycles.Charge(cycles.ShadowCheck / 2)
	// Verification and restore costs are modelled by ShadowCheck.
	t0 := f.M.Ctl.Cycles.Total()
	defer f.M.Ctl.Cycles.SetTotal(t0)
	cur, err := cpu.LoadVMCB(f.M.Ctl, vmcbPA)
	if err != nil {
		return err
	}
	sh := f.shadows[d.ID]
	if sh == nil || !sh.valid {
		// First entry: the hypervisor built this VMCB; verify it is
		// consistent with Fidelius's own records before admitting it.
		if cur.NPTRoot != uint64(d.NPT.Root.Addr()) {
			return f.violation("vmcb", "initial NPT root mismatch")
		}
		if cur.GuestASID != uint32(d.ASID) {
			return f.violation("vmcb", "initial ASID mismatch")
		}
		if cur.SEVEnabled != d.SEV {
			return f.violation("vmcb", "initial SEV flag mismatch")
		}
		return nil
	}

	masked := maskedVMCB(&sh.vmcb)
	// Control-area integrity: these fields must be exactly what the
	// guest exited with; any change is an attack (Section 2.2's VMCB
	// tampering).
	if cur.NPTRoot != masked.NPTRoot {
		return f.violation("vmcb", fmt.Sprintf("NPT root tampered: %#x != %#x", cur.NPTRoot, masked.NPTRoot))
	}
	if cur.GuestASID != masked.GuestASID {
		return f.violation("vmcb", "ASID tampered")
	}
	if cur.Intercepts != masked.Intercepts {
		return f.violation("vmcb", "intercept mask tampered")
	}
	if cur.SEVEnabled != masked.SEVEnabled {
		return f.violation("vmcb", "SEV enable bit tampered")
	}
	// Save-area integrity: everything the mask zeroed must still be
	// zero; writing there is tampering with hidden guest state.
	if cur.RIP != masked.RIP || cur.RSP != masked.RSP ||
		cur.CR0 != masked.CR0 || cur.CR3 != masked.CR3 ||
		cur.CR4 != masked.CR4 || cur.EFER != masked.EFER {
		return f.violation("vmcb", "masked guest state tampered")
	}
	nAllowed := allowedRegs(sh.vmcb.ExitCode)
	for i := nAllowed; i < cpu.NumRegs; i++ {
		if cur.Regs[i] != masked.Regs[i] {
			return f.violation("vmcb", fmt.Sprintf("masked register r%d tampered", i))
		}
	}
	// Iago policy: values the hypervisor returns must be plausible. For
	// CPUID they must be exactly the platform's canonical response.
	if sh.vmcb.ExitCode == cpu.ExitCPUID {
		for i := 0; i < 4; i++ {
			if cur.Regs[i] != xen.CPUIDModel[i] {
				return f.violation("iago", fmt.Sprintf("CPUID r%d forged: %#x", i, cur.Regs[i]))
			}
		}
	}

	// Merge: restore the true state, taking only the allowed register
	// updates from the hypervisor.
	merged := sh.vmcb
	copy(merged.Regs[:nAllowed], cur.Regs[:nAllowed])
	if err := cpu.StoreVMCB(f.M.Ctl, vmcbPA, &merged); err != nil {
		return err
	}
	regs := sh.regs
	copy(regs[:nAllowed], cur.Regs[:nAllowed])
	f.M.CPU.Regs = regs
	return nil
}
