// Quickstart: boot a Fidelius-protected VM from an owner-encrypted kernel
// image, run a small guest workload, inspect what the hypervisor and the
// physical DRAM can see, and shut the VM down.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

func main() {
	// 1. Boot a protected platform: machine + hypervisor + Fidelius
	// (late launch, hypervisor code measured and monopolisation
	// verified).
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform booted, hypervisor measurement: %x…\n", plat.F.HypervisorMeasurement[:8])

	// 2. The guest owner prepares the encrypted kernel image offline,
	// wrapped for this platform's SEV identity.
	owner, err := fidelius.NewOwner()
	if err != nil {
		log.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("QUICKSTART-KERN!"), 512) // 2 pages
	bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner prepared a %d-page encrypted kernel image\n", bundle.Image.NumPages())

	// 3. Fidelius boots the VM through the RECEIVE API: the hypervisor
	// only ever touches ciphertext, and the measurement is verified
	// before the first instruction runs.
	vm, err := plat.LaunchVM("quickstart", 64, bundle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm %q launched with ASID %d\n", vm.Name, vm.ASID)

	// 4. Run a guest workload: it can read its decrypted kernel and
	// compute over private memory.
	kbase := plat.KernelBase(vm, bundle) * fidelius.PageSize
	secret := []byte("in-guest secret: 42")
	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		head := make([]byte, 16)
		if err := g.Read(kbase, head); err != nil {
			return err
		}
		fmt.Printf("guest sees its kernel: %q\n", head)
		if err := g.Write(0x8000, secret); err != nil {
			return err
		}
		if _, err := g.Hypercall(fidelius.HCVoid); err != nil {
			return err
		}
		sum := g.CPUID(0)
		fmt.Printf("guest CPUID: %#x (verified against forgery by the Iago policy)\n", sum[0])
		return nil
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}

	// 5. What the adversary sees. The hypervisor cannot map the guest's
	// memory, and DRAM holds ciphertext.
	pfn, _ := vm.GPAFrame(8)
	if err := plat.X.M.CPU.ReadVA(uint64(pfn.Addr()), make([]byte, 8)); err != nil {
		fmt.Printf("hypervisor read of guest page: BLOCKED (%v)\n", err)
	}
	raw := make([]byte, len(secret))
	plat.X.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
	fmt.Printf("cold-boot view of the secret page: %x (ciphertext)\n", raw[:8])

	// 6. Shutdown: keys uninstalled, firmware contexts erased, PIT and
	// GIT scrubbed.
	if err := plat.Shutdown(vm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("vm shut down; no policy violations:", len(plat.Violations()) == 0)
}
