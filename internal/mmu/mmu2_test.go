package mmu

import (
	"errors"
	"testing"

	"fidelius/internal/hw"
)

func TestMapNonCanonical(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 16)
	if err := s.Map(alloc, 1<<45, MakePTE(1, FlagP)); err == nil {
		t.Fatal("non-canonical map accepted")
	}
}

func TestWalkNonCanonical(t *testing.T) {
	s, _, _ := newTestSpace(t, 16)
	if _, _, _, err := s.Walk(1 << 45); err == nil {
		t.Fatal("non-canonical walk accepted")
	}
}

func TestLeafOnUnmappedIsZero(t *testing.T) {
	s, _, _ := newTestSpace(t, 16)
	leaf, err := s.Leaf(0x123000)
	if err != nil {
		t.Fatal(err)
	}
	if leaf != 0 {
		t.Fatalf("leaf %v for unmapped va", leaf)
	}
}

func TestSetLeafOnUnmappedFails(t *testing.T) {
	s, _, _ := newTestSpace(t, 16)
	if err := s.SetLeaf(0x123000, MakePTE(1, FlagP)); err == nil {
		t.Fatal("SetLeaf without a walk path should fail")
	}
	if _, err := s.LeafSlot(0x123000); err == nil {
		t.Fatal("LeafSlot without a walk path should fail")
	}
}

func TestTranslateNotPresentLeaf(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	// Build intermediate levels but a zero leaf.
	if err := s.Map(alloc, 0x4000, 0); err != nil {
		t.Fatal(err)
	}
	_, err := s.Translate(0x4000, Read, true, false)
	var pf *PageFault
	if !errors.As(err, &pf) || pf.Reason != NotPresent || pf.Level != 0 {
		t.Fatalf("want leaf not-present fault, got %v", err)
	}
}

func TestNestedExecutePermission(t *testing.T) {
	n, _, _, _ := buildNested(t)
	// The guest leaf at 0x4000 has no NX bit: execute passes the guest
	// dimension and reaches the NPT.
	if _, err := n.Translate(0x4000, Execute, false); err != nil {
		t.Fatalf("execute should pass: %v", err)
	}
}

func TestNestedWriteToGuestReadOnly(t *testing.T) {
	n, _, ctl, _ := buildNested(t)
	// Rewrite the guest leaf for 0x5000 as read-only.
	pte := MakePTE(6, FlagP)
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(pte) >> (8 * i))
	}
	pa := hw.PFN(2+64).Addr() + hw.PhysAddr(Index(0x5000, 0)*8)
	if err := ctl.Write(hw.Access{PA: pa, Encrypted: true, ASID: 7}, b[:]); err != nil {
		t.Fatal(err)
	}
	_, err := n.Translate(0x5000, Write, false)
	var pf *PageFault
	if !errors.As(err, &pf) || pf.Reason != WriteProtected {
		t.Fatalf("want guest write-protect fault, got %v", err)
	}
}

func TestFaultStrings(t *testing.T) {
	pf := &PageFault{VA: 0x1000, Access: Write, Reason: WriteProtected, Level: 0}
	if pf.Error() == "" {
		t.Fatal("empty page fault message")
	}
	nv := &NPTViolation{GPA: 0x2000, Access: Read, Reason: NotPresent}
	if nv.Error() == "" {
		t.Fatal("empty violation message")
	}
	for _, a := range []AccessType{Read, Write, Execute, AccessType(9)} {
		if a.String() == "" {
			t.Fatal("empty access string")
		}
	}
	for _, r := range []FaultReason{NotPresent, WriteProtected, NXViolation, UserSupervisor, NonCanonical, FaultReason(9)} {
		if r.String() == "" {
			t.Fatal("empty reason string")
		}
	}
	if PageBase(0x12345) != 0x12000 {
		t.Fatal("PageBase")
	}
	if !CanonicalVA(1<<VABits-1) || CanonicalVA(1<<VABits) {
		t.Fatal("CanonicalVA")
	}
}

func TestTLBDoesNotMixAccessTypes(t *testing.T) {
	tlb := NewTLB()
	tlb.Insert(1, 0x1000, Read, Translation{HPA: 0xAA000})
	if _, ok := tlb.Lookup(1, 0x1000, Write); ok {
		t.Fatal("write lookup hit a read entry")
	}
	if _, ok := tlb.Lookup(1, 0x1000, Execute); ok {
		t.Fatal("execute lookup hit a read entry")
	}
}
