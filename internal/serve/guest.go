package serve

import (
	"errors"
	"fmt"

	"fidelius/internal/core"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/kv"
	"fidelius/internal/xen"
)

// storeLBA is where the kv log region starts on each tenant disk.
const storeLBA = 8

// guestMain is the tenant VM's kernel: it opens the kv store over the
// protected block path (Kblk read from its own encrypted kernel image),
// then serves ring batches until the front door posts the stop flag.
//
// The loop is a doorbell poll: kicking the doorbell port traps to the
// host, which fills request frames *while the vCPU is parked in the
// VMEXIT*; on resume the guest reads the batch, executes it against the
// store, posts responses, and kicks the completion port so the host can
// match latencies. An empty batch without the stop flag halts for a
// quantum — burning simulated cycles, which is exactly how open-loop
// arrivals become due.
func (s *Service) guestMain(t *tenant) xen.GuestFunc {
	kbase := t.kbase
	sectors := s.cfg.StoreSectors
	return func(g *xen.GuestEnv) error {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return err
		}
		var kblk [32]byte
		if err := g.Read(kbase+core.KblkOffset, kblk[:]); err != nil {
			return err
		}
		dev, err := core.NewAESNIFront(g, bf, kblk)
		if err != nil {
			return err
		}
		if err := kv.Format(dev, storeLBA); err != nil {
			return err
		}
		store, err := kv.Open(dev, storeLBA, sectors)
		if err != nil {
			return err
		}

		reqGPA := g.Info.ServeGFN << hw.PageShift
		respGPA := reqGPA + hw.PageSize
		doorbell := uint64(g.Info.ServePort)
		completion := doorbell + 1

		var sessionKey [32]byte
		haveKey := false
		var ctl, frame, out [SectorSize]byte
		served := 0
		for {
			if _, err := g.Hypercall(xen.HCEventChannelOp, xen.EvtOpSend, doorbell); err != nil {
				return err
			}
			if err := g.ReadUnencrypted(reqGPA, ctl[:]); err != nil {
				return err
			}
			count, flags, err := decodeReqCtl(ctl[:])
			if err != nil {
				return err
			}
			if count > RingFrames {
				return fmt.Errorf("serve: host posted %d requests", count)
			}
			if count == 0 {
				if flags&FlagStop != 0 {
					return g.ConsolePrint(fmt.Sprintf("served %d ops", served))
				}
				g.Halt()
				continue
			}
			for i := uint32(0); i < count; i++ {
				if err := g.ReadUnencrypted(reqGPA+uint64((i+1)*SectorSize), frame[:]); err != nil {
					return err
				}
				id, op, key, val, err := decodeRequest(frame[:])
				if err != nil {
					return err
				}
				status, respVal := execOp(g, store, &sessionKey, &haveKey, op, key, val)
				if op != OpInstallKey {
					served++
				}
				if err := encodeResponse(out[:], id, status, respVal); err != nil {
					return err
				}
				if err := g.WriteUnencrypted(respGPA+uint64((i+1)*SectorSize), out[:]); err != nil {
					return err
				}
			}
			encodeRespCtl(out[:], count)
			if err := g.WriteUnencrypted(respGPA, out[:]); err != nil {
				return err
			}
			if _, err := g.Hypercall(xen.HCEventChannelOp, xen.EvtOpSend, completion); err != nil {
				return err
			}
		}
	}
}

// execOp runs one request against the store. Values cross the
// (hypervisor-visible) ring encrypted under the session key: puts arrive
// as ciphertext and are decrypted here, get responses are encrypted
// before they leave guest memory. The session-cipher work is charged at
// AES-NI hardware cost, like the disk path's.
func execOp(g *xen.GuestEnv, store *kv.Store, sessionKey *[32]byte, haveKey *bool, op uint32, key string, val []byte) (uint32, []byte) {
	switch op {
	case OpInstallKey:
		if len(val) != 32 {
			return StatusError, nil
		}
		copy(sessionKey[:], val)
		*haveKey = true
		return StatusOK, nil
	case OpPut:
		if !*haveKey {
			return StatusError, nil
		}
		chargeSessionCipher(g, len(val))
		xorSession(*sessionKey, key, val)
		if err := store.Put(key, val); err != nil {
			return StatusError, nil
		}
		return StatusOK, nil
	case OpGet:
		if !*haveKey {
			return StatusError, nil
		}
		v, err := store.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return StatusNotFound, nil
		}
		if err != nil {
			return StatusError, nil
		}
		chargeSessionCipher(g, len(v))
		xorSession(*sessionKey, key, v)
		return StatusOK, v
	case OpDelete:
		if !*haveKey {
			return StatusError, nil
		}
		if err := store.Delete(key); err != nil {
			return StatusError, nil
		}
		return StatusOK, nil
	}
	return StatusError, nil
}

// chargeSessionCipher accounts the session-key crypto on the cycle clock.
func chargeSessionCipher(g *xen.GuestEnv, n int) {
	blocks := uint64((n + 15) / 16)
	if blocks == 0 {
		blocks = 1
	}
	g.Charge(blocks * cycles.AESBlockHW)
}
