package hw

import (
	"errors"
	"sync"
	"testing"
)

// linePat fills a cache line with a pattern derived from its address, so
// any cross-line smearing under concurrency is detectable.
func linePat(base PhysAddr) [LineSize]byte {
	var l [LineSize]byte
	for i := range l {
		l[i] = byte(uint64(base)>>6) ^ byte(i*13)
	}
	return l
}

// TestCacheConcurrentOps drives every cache entry point from many
// goroutines over deliberately overlapping sets. Each worker owns a
// disjoint tag range but aliases into the same sets as every other worker,
// so per-set locking is exercised on both contention and eviction. The
// invariant: any hit returns exactly the line's own pattern — lines may be
// evicted or invalidated at any time, but never torn or mixed.
func TestCacheConcurrentOps(t *testing.T) {
	geoms := []struct {
		name           string
		capacity, ways int
	}{
		{"direct-64", 64, 1},
		{"assoc-256x8", 256, 8},
		{"tiny-8x2", 8, 2},
	}
	for _, g := range geoms {
		t.Run(g.name, func(t *testing.T) {
			c := NewCacheWays(g.capacity, g.ways)
			sets := g.capacity / g.ways
			const workers = 8
			const iters = 400
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					stride := PhysAddr(sets * LineSize)
					for i := 0; i < iters; i++ {
						// Alias into set (i % sets) with a per-worker tag.
						base := PhysAddr(i%sets)*LineSize + PhysAddr(w+1)*stride
						line := linePat(base)
						switch i % 5 {
						case 0:
							c.Fill(base, &line)
						case 1:
							var dst [LineSize]byte
							if c.ReadAt(base, dst[:]) && dst != line {
								t.Errorf("worker %d: torn line at %#x", w, base)
								return
							}
						case 2:
							c.WriteAt(base, line[:LineSize/2])
						case 3:
							c.Invalidate(base, LineSize)
						case 4:
							// Partial read at an offset inside the line.
							var dst [LineSize / 4]byte
							off := PhysAddr(LineSize / 2)
							if c.ReadAt(base+off, dst[:]) {
								for j, b := range dst {
									if b != line[int(off)+j] {
										t.Errorf("worker %d: torn partial read at %#x", w, base)
										return
									}
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			// Post-run sanity: the structure is still coherent.
			if c.Len() < 0 || c.Len() > g.capacity {
				t.Fatalf("cache claims %d live lines, capacity %d", c.Len(), g.capacity)
			}
			c.Flush()
			if c.Len() != 0 {
				t.Fatalf("flush left %d lines", c.Len())
			}
		})
	}
}

// TestEngineConcurrentSlots races key install/uninstall against encrypting
// readers: a slot churned by one goroutine while others run line crypto on
// their own (stable) ASIDs. Readers of the churned ASID must see either a
// working slot or ErrNoKey — never a torn key.
func TestEngineConcurrentSlots(t *testing.T) {
	e := NewEngine()
	stable := []ASID{1, 2, 3}
	for _, a := range stable {
		if err := e.Install(a, Key{byte(a)}); err != nil {
			t.Fatal(err)
		}
	}
	const churnASID = ASID(7)
	churnKey := Key{77}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				if err := e.Install(churnASID, churnKey); err != nil {
					t.Errorf("install: %v", err)
					return
				}
			} else {
				e.Uninstall(churnASID)
			}
		}
	}()
	for _, a := range stable {
		wg.Add(1)
		go func(a ASID) {
			defer wg.Done()
			var line [LineSize]byte
			want := linePat(0)
			for i := 0; i < 2000; i++ {
				pa := PhysAddr(i%64) * LineSize
				line = linePat(0)
				if err := e.EncryptLine(a, pa, line[:]); err != nil {
					t.Errorf("asid %d encrypt: %v", a, err)
					return
				}
				if err := e.DecryptLine(a, pa, line[:]); err != nil {
					t.Errorf("asid %d decrypt: %v", a, err)
					return
				}
				if line != want {
					t.Errorf("asid %d: crypto round trip corrupted line", a)
					return
				}
			}
		}(a)
	}
	// A reader on the churned ASID tolerates ErrNoKey but nothing else,
	// and a successful round trip must still be correct.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			line := linePat(0)
			err := e.EncryptLine(churnASID, 0, line[:])
			if err != nil {
				if !errors.Is(err, ErrNoKey) {
					t.Errorf("churned asid: %v", err)
					return
				}
				continue
			}
			// The slot may be replaced between the two calls; a reinstall
			// writes the same key, so decrypt either works or faults.
			if err := e.DecryptLine(churnASID, 0, line[:]); err != nil {
				if !errors.Is(err, ErrNoKey) {
					t.Errorf("churned asid decrypt: %v", err)
				}
				continue
			}
			if line != linePat(0) {
				t.Error("churned asid: torn key material")
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-churnDone
}

// TestControllerConcurrentViews runs full encrypted read/write traffic
// from per-vCPU controller views over disjoint pages — the memory
// subsystem configuration ScheduleParallel creates — and then checks both
// the data and the shared transaction accounting.
func TestControllerConcurrentViews(t *testing.T) {
	const (
		nViews = 6
		pages  = 2 // per view
		rounds = 25
	)
	root := NewController(NewMemory(nViews*pages+4), 128)
	root.Integ = NewIntegrity(root.Mem, [32]byte{5})
	for v := 0; v < nViews; v++ {
		if err := root.Eng.Install(ASID(v+1), Key{byte(v + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for v := 0; v < nViews; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ctl := root.View()
			defer ctl.Release()
			asid := ASID(v + 1)
			enc := v%2 == 0
			basePFN := PFN(v * pages)
			if enc {
				// Half the views also run under integrity protection.
				if err := ctl.Integ.Protect(basePFN); err != nil {
					t.Error(err)
					return
				}
			}
			buf := make([]byte, PageSize)
			got := make([]byte, PageSize)
			for r := 0; r < rounds; r++ {
				for p := 0; p < pages; p++ {
					pa := (basePFN + PFN(p)).Addr()
					for i := range buf {
						buf[i] = byte(v*31 + p*17 + r*7 + i)
					}
					a := Access{PA: pa, Encrypted: enc, ASID: asid}
					if err := ctl.Write(a, buf); err != nil {
						t.Errorf("view %d write: %v", v, err)
						return
					}
					if err := ctl.Read(a, got); err != nil {
						t.Errorf("view %d read: %v", v, err)
						return
					}
					for i := range got {
						if got[i] != buf[i] {
							t.Errorf("view %d page %d round %d: byte %d got %#x want %#x",
								v, p, r, i, got[i], buf[i])
							return
						}
					}
				}
			}
		}(v)
	}
	wg.Wait()
	// Shared accounting: every view's transactions landed in the one
	// stats block, and every private cycle counter folded into the clock.
	snap := root.Telem.Reg.Snapshot()
	wantOps := uint64(nViews * pages * rounds)
	if snap.Gauges["mem.writes"] != wantOps || snap.Gauges["mem.reads"] != wantOps {
		t.Errorf("shared stats lost transactions: reads=%d writes=%d want %d",
			snap.Gauges["mem.reads"], snap.Gauges["mem.writes"], wantOps)
	}
	if want := wantOps * PageSize; snap.Gauges["mem.write_bytes"] != want {
		t.Errorf("write bytes %d, want %d", snap.Gauges["mem.write_bytes"], want)
	}
	if root.Clock.Total() != root.Cycles.Total() {
		t.Errorf("released views left cycles outside the base counter: clock %d base %d",
			root.Clock.Total(), root.Cycles.Total())
	}
	if root.Cycles.Total() == 0 {
		t.Error("no cycles folded back from views")
	}
}
