// Package kv is a small append-only key-value store designed to run
// *inside* a protected guest: it keeps its index in guest (encrypted)
// memory and persists records through any of the platform's block
// front-ends. Running it under Fidelius demonstrates the paper's
// motivating scenario — a tenant service whose data stays confidential
// against the hypervisor, the driver domain and the physical disk.
//
// On-disk layout: a sequence of sector-aligned records,
//
//	[4B magic][4B keyLen][4B valLen][4B crc][key][value][padding to sector]
//
// terminated by a zero sector. A valLen of 0xFFFFFFFF marks a tombstone
// (the key is deleted; no value bytes follow), so an empty value and a
// deletion are distinct on disk. The crc (IEEE CRC-32 over the length
// fields, key and value) exists for group commit: a batch is written as
// one contiguous record span after the terminator, so a crash can tear
// the span mid-record, leaving a head sector whose lengths parse but
// whose tail was never written. Replay detects that with the crc and
// truncates the log at the torn record — the longest valid prefix wins.
// The store is crash-simple: reopening scans the log and rebuilds the
// index.
//
// Write ordering: every commit (single Put/Delete or a batched Apply)
// writes the *new* terminator first, then the record span. A torn
// sequence therefore always replays to a valid prefix of the committed
// ops. When the device implements Flusher (see WriteCoalescer), the
// store inserts a flush barrier between the terminator and the span so
// coalescing cannot reorder them into one request.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// BlockDev is the sector interface the store persists through — satisfied
// by the baseline and both protected front-ends.
type BlockDev interface {
	WriteSectors(lba uint64, data []byte) error
	ReadSectors(lba uint64, buf []byte) error
}

// SectorSize matches the platform's disk sector size.
const SectorSize = 512

const magic = 0xF1DE1105

// headerSize is the fixed record prefix: magic, keyLen, valLen, crc.
const headerSize = 16

// Bounds enforced on both the write path (append/Apply) and replay. The
// pair must agree: a record accepted by Put but rejected by replay would
// make the store unopenable.
const (
	MaxKeyLen   = 4096
	MaxValueLen = 1 << 20
)

// tombstoneLen in the valLen header field marks a deletion record. The
// sentinel keeps tombstones distinct from legitimate empty values, which
// earlier versions conflated (a Put of an empty value acted as a Delete).
const tombstoneLen = ^uint32(0)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kv: key not found")

// ErrCorrupt reports an undecodable log.
var ErrCorrupt = errors.New("kv: corrupt log")

// ErrTooLarge reports a key or value exceeding the on-disk bounds. It is
// returned at append time — before this check existed an oversized Put
// succeeded and then poisoned the log, so the *next* Open failed with
// ErrCorrupt.
var ErrTooLarge = errors.New("kv: key or value too large")

// Flusher is implemented by buffering devices (WriteCoalescer). The
// store flushes at its two commit barriers: after the terminator write
// and after the record span.
type Flusher interface {
	Flush() error
}

// Op is one mutation in a group commit. Delete ignores Value.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// Format initialises a fresh store region by writing the log terminator.
// It is required before the first Open when the device is an encrypting
// front-end: a never-written disk does not read back as zeros through an
// encryption layer.
func Format(dev BlockDev, baseLBA uint64) error {
	return dev.WriteSectors(baseLBA, make([]byte, SectorSize))
}

// Store is one open key-value store.
type Store struct {
	dev     BlockDev
	fl      Flusher // dev's flush barrier, nil when dev does not buffer
	baseLBA uint64
	maxLBA  uint64
	nextLBA uint64
	index   map[string][]byte
}

// Open creates or recovers a store occupying [baseLBA, baseLBA+sectors)
// on the device, replaying any existing log.
func Open(dev BlockDev, baseLBA uint64, sectors int) (*Store, error) {
	s := &Store{
		dev:     dev,
		baseLBA: baseLBA,
		maxLBA:  baseLBA + uint64(sectors),
		nextLBA: baseLBA,
		index:   make(map[string][]byte),
	}
	s.fl, _ = dev.(Flusher)
	if err := s.replay(); err != nil {
		return nil, err
	}
	return s, nil
}

func recordSectors(keyLen, valLen int) int {
	return (headerSize + keyLen + valLen + SectorSize - 1) / SectorSize
}

// recordCRC covers the length fields plus payload so a torn or patched
// record cannot keep a stale checksum from a different geometry.
func recordCRC(hdr []byte, key string, value []byte) uint32 {
	c := crc32.ChecksumIEEE(hdr[4:12])
	c = crc32.Update(c, crc32.IEEETable, []byte(key))
	return crc32.Update(c, crc32.IEEETable, value)
}

// replay scans the log rebuilding the index. Each record is read exactly
// once: the head sector is parsed in place and only the tail sectors
// (if any) are fetched afterwards — an earlier version re-read the head
// inside the full-record read, doubling replay's sector traffic.
func (s *Store) replay() error {
	var buf []byte
	head := make([]byte, SectorSize)
	for s.nextLBA < s.maxLBA {
		if err := s.dev.ReadSectors(s.nextLBA, head); err != nil {
			return err
		}
		m := binary.LittleEndian.Uint32(head[0:])
		if m == 0 {
			return nil // end of log
		}
		if m != magic {
			return fmt.Errorf("%w: bad magic %#x at lba %d", ErrCorrupt, m, s.nextLBA)
		}
		keyLen := int(binary.LittleEndian.Uint32(head[4:]))
		rawVal := binary.LittleEndian.Uint32(head[8:])
		dead := rawVal == tombstoneLen
		valLen := int(rawVal)
		if dead {
			valLen = 0
		}
		if keyLen <= 0 || keyLen > MaxKeyLen || valLen < 0 || valLen > MaxValueLen {
			return fmt.Errorf("%w: silly lengths %d/%d", ErrCorrupt, keyLen, valLen)
		}
		n := recordSectors(keyLen, valLen)
		if s.nextLBA+uint64(n) > s.maxLBA {
			return fmt.Errorf("%w: record overruns the region", ErrCorrupt)
		}
		if cap(buf) < n*SectorSize {
			buf = make([]byte, n*SectorSize)
		}
		buf = buf[:n*SectorSize]
		copy(buf, head)
		if n > 1 {
			if err := s.dev.ReadSectors(s.nextLBA+1, buf[SectorSize:]); err != nil {
				return err
			}
		}
		key := string(buf[headerSize : headerSize+keyLen])
		val := buf[headerSize+keyLen : headerSize+keyLen+valLen]
		if binary.LittleEndian.Uint32(buf[12:]) != recordCRC(buf, key, val) {
			// Torn tail of a group commit: the head sector landed but the
			// rest of the span did not. Everything before this record is
			// the longest valid prefix — stop here and let the next commit
			// overwrite the debris.
			return nil
		}
		if dead {
			delete(s.index, key) // tombstone
		} else {
			s.index[key] = append([]byte{}, val...)
		}
		s.nextLBA += uint64(n)
	}
	return nil
}

// validate enforces the same bounds replay does, at append time.
func validate(op Op) error {
	if op.Key == "" {
		return errors.New("kv: empty key")
	}
	if len(op.Key) > MaxKeyLen {
		return fmt.Errorf("%w: key is %d bytes (max %d)", ErrTooLarge, len(op.Key), MaxKeyLen)
	}
	if !op.Delete && len(op.Value) > MaxValueLen {
		return fmt.Errorf("%w: value is %d bytes (max %d)", ErrTooLarge, len(op.Value), MaxValueLen)
	}
	return nil
}

// encodeRecord fills buf (recordSectors worth, pre-zeroed) with op's
// on-disk record.
func encodeRecord(buf []byte, op Op) {
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(op.Key)))
	if op.Delete {
		binary.LittleEndian.PutUint32(buf[8:], tombstoneLen)
	} else {
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(op.Value)))
	}
	val := op.Value
	if op.Delete {
		val = nil
	}
	binary.LittleEndian.PutUint32(buf[12:], recordCRC(buf, op.Key, val))
	copy(buf[headerSize:], op.Key)
	copy(buf[headerSize+len(op.Key):], val)
}

func (s *Store) flush() error {
	if s.fl != nil {
		return s.fl.Flush()
	}
	return nil
}

// Apply group-commits a batch of mutations: one terminator write plus
// one contiguous record span, so a batch of N ops costs the same two
// non-sequential disk writes a single Put used to. Ops land in the index
// in slice order (a later op on the same key wins), and the resulting
// log bytes are identical to issuing the ops serially. On error nothing
// is applied to the index; a torn span on disk replays to a valid prefix
// of the batch.
func (s *Store) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	total := uint64(0)
	for _, op := range ops {
		if err := validate(op); err != nil {
			return err
		}
		valLen := len(op.Value)
		if op.Delete {
			valLen = 0
		}
		total += uint64(recordSectors(len(op.Key), valLen))
	}
	if s.nextLBA+total > s.maxLBA {
		return errors.New("kv: store full")
	}
	// Terminator first, then the span: a torn sequence still replays.
	if s.nextLBA+total < s.maxLBA {
		if err := Format(s.dev, s.nextLBA+total); err != nil {
			return err
		}
	}
	// Barrier: the terminator must reach the device before any record so
	// a buffering device cannot merge them into one (reorderable) write.
	if err := s.flush(); err != nil {
		return err
	}
	lba := s.nextLBA
	for _, op := range ops {
		valLen := len(op.Value)
		if op.Delete {
			valLen = 0
		}
		n := recordSectors(len(op.Key), valLen)
		buf := make([]byte, n*SectorSize)
		encodeRecord(buf, op)
		if err := s.dev.WriteSectors(lba, buf); err != nil {
			return err
		}
		lba += uint64(n)
	}
	if err := s.flush(); err != nil {
		return err
	}
	s.nextLBA = lba
	for _, op := range ops {
		if op.Delete {
			delete(s.index, op.Key)
		} else {
			s.index[op.Key] = append([]byte{}, op.Value...)
		}
	}
	return nil
}

// PutBatch group-commits a set of puts. It is Apply restricted to
// non-tombstone ops.
func (s *Store) PutBatch(ops []Op) error {
	for _, op := range ops {
		if op.Delete {
			return errors.New("kv: PutBatch cannot carry tombstones, use Apply")
		}
	}
	return s.Apply(ops)
}

// Put appends a record and updates the index. An empty (or nil) value is
// a real value: it is stored, returned by Get as an empty slice, and the
// key stays live — deletion is a distinct tombstone record (see Delete).
// The new log terminator is written first so a crash between the two
// writes leaves a valid log.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Key: key, Value: value}})
}

// Get returns the current value of a key.
func (s *Store) Get(key string) ([]byte, error) {
	v, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte{}, v...), nil
}

// Delete writes a tombstone record and drops the key from the index.
// Deleting an absent key still logs a tombstone (idempotent on replay).
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Key: key, Delete: true}})
}

// Len reports the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Keys returns the live keys (order unspecified).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// UsedSectors reports the log length in sectors.
func (s *Store) UsedSectors() uint64 { return s.nextLBA - s.baseLBA }
