// Package cycles provides the deterministic cycle cost model used by the
// platform simulator.
//
// The paper's prototype measures wall-clock overhead on an 8-core AMD Ryzen
// at 3.4 GHz. We have no such hardware, so every simulated operation is
// charged a deterministic cycle cost instead. The constants below are either
// taken directly from the paper's micro-benchmarks (Section 7.2) or set to
// widely published figures for the corresponding micro-architectural events.
// Macro results (Figures 5 and 6, Table 3) are then *derived* from the same
// model that the micro-benchmarks validate, which keeps the two consistent
// in exactly the way the paper argues they are.
package cycles

import (
	"sync"
	"sync/atomic"
)

// Cost constants, in CPU cycles.
//
// Paper-anchored values (Section 7.2):
//   - type 1 gate (clear/restore CR0.WP) totals 306 cycles,
//   - type 2 gate (checking loop) totals 16 cycles,
//   - type 3 gate (add/remove a mapping) totals 339 cycles, of which the
//     targeted TLB flush is 128 cycles and the page-table write <2 cycles,
//   - shadow-and-check of VMCB+registers totals 661 cycles per round trip.
const (
	// MemAccess is the cost of a memory access that misses the cache and
	// reaches DRAM through the memory controller, with encryption disabled.
	MemAccess = 80

	// MemEncryptExtra is the additional latency of the inline AES engine
	// when the accessed page has the C-bit set. AMD documents the SME
	// engine as adding a small, fixed DRAM latency.
	MemEncryptExtra = 14

	// CacheAccess is the cost of a cache hit; encryption is invisible to
	// cache hits because caches hold plaintext.
	CacheAccess = 4

	// ALUOp is the cost of one simulated ALU instruction.
	ALUOp = 1

	// TLBFlushEntry is the cost of flushing a single TLB entry (INVLPG),
	// as measured for the type 3 gate in the paper.
	TLBFlushEntry = 128

	// TLBFlushFull is the cost of a full TLB flush as incurred by a CR3
	// switch without PCID on AMD; the paper cites this as the reason a
	// separate-address-space design is too expensive.
	TLBFlushFull = 2000

	// PTWrite is the cost of writing one page-table entry ("writing data
	// into cache uses less than 2 cycles").
	PTWrite = 2

	// WPToggle is the cost of one CR0.WP write. The type 1 gate performs
	// two of them plus interrupt gating, a stack switch and sanity checks,
	// totalling Gate1 cycles.
	WPToggle = 110

	// IRQToggle is the cost of disabling or re-enabling interrupts.
	IRQToggle = 10

	// StackSwitch is the cost of switching to the Fidelius stack.
	StackSwitch = 24

	// SanityCheck is the cost of the gate sanity-check logic.
	SanityCheck = 16

	// Gate1 is the end-to-end cost of the type 1 gate: two WP toggles,
	// two IRQ toggles, a stack switch and the sanity check.
	// 2*110 + 2*10 + 24 + 16 + 26(policy dispatch) = 306.
	Gate1 = 2*WPToggle + 2*IRQToggle + StackSwitch + SanityCheck + 26

	// Gate2 is the end-to-end cost of the type 2 gate: only the checking
	// loop around a monopolised instruction.
	Gate2 = SanityCheck

	// Gate3 is the end-to-end cost of the type 3 gate: map, check,
	// execute, unmap, flush the affected TLB entries.
	// 2*PTWrite + SanityCheck + IRQToggle*2 + StackSwitch + 128 + 147 = 339.
	Gate3 = 2*PTWrite + SanityCheck + 2*IRQToggle + StackSwitch + TLBFlushEntry + 147

	// VMExit and VMEntry are the world-switch costs of AMD-V.
	VMExit  = 1200
	VMEntry = 1100

	// ShadowCheck is the cost Fidelius adds to every VMEXIT/VMRUN round
	// trip: copying VMCB and registers to the private shadow, masking by
	// exit reason, and verifying integrity before re-entry.
	ShadowCheck = 661

	// Hypercall is the guest-side cost of a void hypercall round trip
	// (VMEXIT + dispatch + VMENTRY), before Fidelius interposition.
	Hypercall = VMExit + VMEntry + 200

	// AESBlockHW is the per-16-byte-block *latency* of AES-NI as seen by
	// the block driver (single-block dependency chain, ~1.5 cycles/byte
	// plus key-schedule and XEX tweak work).
	AESBlockHW = 24

	// AESBlockSW is the per-block cost of constant-time software AES; the
	// paper reports software encryption at more than 20x the hardware
	// paths.
	AESBlockSW = 900

	// AESBlockSEV is the effective per-block cost of pushing data through
	// the SEV firmware SEND/RECEIVE path; the paper measures the SME
	// engine path as slightly cheaper than AES-NI in throughput terms
	// (8.69% vs 11.49% slowdown on a 512 MB copy).
	AESBlockSEV = 1

	// SEVCommand is the fixed cost of issuing one SEV firmware command
	// (mailbox write, PSP dispatch, completion poll).
	SEVCommand = 5000

	// PageCopy is the cost of copying one 4 KiB page, excluding
	// encryption.
	PageCopy = 1024

	// NPTViolation is the hardware cost of a nested page fault before any
	// software handling.
	NPTViolation = 1500

	// DiskSectorAccess is the cost charged by the backend for moving one
	// 512-byte sector between the disk image and the shared ring.
	DiskSectorAccess = 3500

	// DiskSeekRead and DiskSeekWrite are charged per non-sequential
	// request (random read head movement; random writes absorb most of
	// it in the write cache). They set the fio rand/seq base ratio.
	DiskSeekRead  = 800_000
	DiskSeekWrite = 400_000

	// Bulk-copy model for the Section 7.2 I/O-encryption micro-benchmark
	// (512 MB copy): per-16-byte-block costs with the engines running at
	// streaming *throughput* rather than latency.
	CopyBlock   = 200  // plain copy
	EncAESNI    = 23   // AES-NI pipelined: ~11.5% over CopyBlock
	EncSEVTput  = 17   // SME/SEV engine: ~8.5% over CopyBlock
	EncSoftware = 4600 // software AES: >20x

	// EventChannelSignal is the cost of kicking an event channel.
	EventChannelSignal = 600

	// DFFlush is the cost of the DF_FLUSH firmware command: a data-fabric
	// write-back/invalidate that scrubs every stale cache line tagged with
	// a deactivated ASID, the step real SEV requires before an ASID may be
	// activated again (CROSSLINE shows skipping it breaks isolation).
	DFFlush = 20000

	// IntegrityCheck is the per-line cost of the optional Bonsai-Merkle
	// integrity engine (the Section 8 hardware suggestion).
	IntegrityCheck = 40
)

// Counter accumulates simulated cycles. The zero value is ready to use.
// The counter is a single atomic word, so each simulated CPU can charge
// its own counter from its own goroutine; cross-counter aggregation is
// the Clock's job.
type Counter struct {
	total atomic.Uint64
}

// Charge adds n cycles to the counter.
func (c *Counter) Charge(n uint64) { c.total.Add(n) }

// Total reports the cycles accumulated so far.
func (c *Counter) Total() uint64 { return c.total.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.total.Store(0) }

// Sub returns the cycles elapsed since an earlier reading.
func (c *Counter) Sub(earlier uint64) uint64 { return c.total.Load() - earlier }

// SetTotal rewinds the counter to an earlier reading. Trusted-context
// mechanics whose cost is already represented by a modelled constant
// (the gate costs) use it to avoid double charging.
func (c *Counter) SetTotal(v uint64) { c.total.Store(v) }

// Clock is the machine's global cycle clock: a base counter (the boot
// CPU's, charged by all single-owner hypervisor work) plus any number of
// attached per-vCPU counters, each charged only by its owning goroutine.
// Total sums them all, so telemetry timestamps and the guest-visible TSC
// advance with work done on every core, while the hot path still charges
// a private uncontended counter.
type Clock struct {
	base *Counter

	mu    sync.RWMutex
	parts []*Counter
}

// NewClock returns a clock over the given base counter.
func NewClock(base *Counter) *Clock {
	return &Clock{base: base}
}

// Base returns the base counter.
func (k *Clock) Base() *Counter { return k.base }

// Attach creates a fresh per-vCPU counter and includes it in Total until
// it is folded back with Fold.
func (k *Clock) Attach() *Counter {
	c := &Counter{}
	k.mu.Lock()
	k.parts = append(k.parts, c)
	k.mu.Unlock()
	return c
}

// Fold detaches a counter obtained from Attach and merges its cycles into
// the base counter, keeping Total unchanged. The counter must not be
// charged after folding. The base charge happens under the write lock so
// that a concurrent Total never observes the in-between state (part gone,
// base not yet credited) — the clock is monotonic across folds.
func (k *Clock) Fold(c *Counter) {
	if c == nil {
		return
	}
	k.mu.Lock()
	for i, p := range k.parts {
		if p == c {
			k.parts = append(k.parts[:i], k.parts[i+1:]...)
			break
		}
	}
	k.base.Charge(c.Total())
	k.mu.Unlock()
}

// Total reports the global clock: base plus every attached counter. The
// base is read under the same lock that Fold holds, so a fold is atomic
// from this reader's point of view.
func (k *Clock) Total() uint64 {
	k.mu.RLock()
	t := k.base.Total()
	for _, p := range k.parts {
		t += p.Total()
	}
	k.mu.RUnlock()
	return t
}
