// Package lockrank is the debug lock-rank checker behind the
// hypervisor's sharded locking discipline (DESIGN.md §4f).
//
// The big hypervisor lock is gone; in its place every shared structure
// carries its own mutex with a static *rank*, and the documented lock
// order
//
//	domain → shared-shard → shootdown bus → tracer/ledger leaves
//
// is the rule that ranks held by one goroutine must strictly increase.
// In normal builds the checker is off and a ranked mutex costs one
// atomic load over a plain sync.Mutex; with FIDELIUS_LOCKRANK=1 (or
// SetEnabled) every acquisition is validated against the goroutine's
// held-rank stack and any inversion panics with both ranks named.
//
// Ranked mutexes also count contention: a Lock that cannot TryLock
// immediately bumps the wait counter wired in at Init, which the
// hypervisor exports as the xen.lock_waits metric family. That counter
// is how the "quanta of distinct domains do not contend" property is
// asserted, not just claimed.
package lockrank

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Rank is a static position in the lock order. Lower ranks are acquired
// first; a goroutine may only acquire a lock whose rank is strictly
// greater than every rank it already holds. Rank 0 marks an unranked
// lock the checker ignores (zero-value mutexes before Init).
type Rank int

// The lock order. Gaps leave room for future shards without renumbering.
const (
	// RankUnranked is the zero value: the checker skips these locks.
	RankUnranked Rank = 0

	// RankDomain is a domain's own lock (VMCB, interposer seam, NPT,
	// dirty log, console). Acquired first: a quantum holds it for its
	// whole duration.
	RankDomain Rank = 10

	// Shared-structure shards, each independently locked.
	RankEvents   Rank = 20 // event-channel bus handler table
	RankStore    Rank = 21 // XenStore key/value space
	RankASIDPool Rank = 22 // ASID allocator free/dirty lists
	RankGate     Rank = 30 // host/gate lock: shared-CPU state, gate transitions, grant bytes
	RankDoms     Rank = 31 // domain registry (Doms, vmcbToDom, backends)
	RankFirmware Rank = 32 // SEV firmware context/active/dirty tables
	RankFrames   Rank = 33 // a domain's gfn→pfn backing map
	RankAlloc    Rank = 34 // physical page allocator

	// RankBus is the TLB shootdown bus, below only the leaves.
	RankBus Rank = 40

	// RankLeaf is for leaf locks that never acquire anything else
	// (violation log; the tracer and ledger use their own unranked
	// internal locks and are leaves by construction).
	RankLeaf Rank = 50
)

// String names a rank for panic messages and docs.
func (r Rank) String() string {
	switch r {
	case RankUnranked:
		return "unranked"
	case RankDomain:
		return "domain"
	case RankEvents:
		return "events"
	case RankStore:
		return "store"
	case RankASIDPool:
		return "asid-pool"
	case RankGate:
		return "gate"
	case RankDoms:
		return "doms"
	case RankFirmware:
		return "firmware"
	case RankFrames:
		return "frames"
	case RankAlloc:
		return "alloc"
	case RankBus:
		return "bus"
	case RankLeaf:
		return "leaf"
	}
	return fmt.Sprintf("rank(%d)", int(r))
}

var enabled atomic.Bool

func init() {
	if os.Getenv("FIDELIUS_LOCKRANK") == "1" {
		enabled.Store(true)
	}
}

// SetEnabled turns the checker on or off at runtime (tests use this; CI
// uses the FIDELIUS_LOCKRANK=1 environment variable).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether acquisitions are being validated.
func Enabled() bool { return enabled.Load() }

// Per-goroutine held-rank stacks. Only maintained while the checker is
// enabled; the map is keyed by goroutine ID parsed from runtime.Stack
// (the same trick the runtime's own lockrank debug mode documents).
var (
	heldMu sync.Mutex
	held   = map[int64][]Rank{}
)

var goroutinePrefix = []byte("goroutine ")

func gid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], goroutinePrefix)
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64)
	return id
}

func checkAcquire(r Rank) {
	g := gid()
	heldMu.Lock()
	defer heldMu.Unlock()
	for _, h := range held[g] {
		if h >= r {
			panic(fmt.Sprintf("lockrank: acquiring %v while holding %v (ranks must strictly increase)", r, h))
		}
	}
	held[g] = append(held[g], r)
}

func checkRelease(r Rank) {
	g := gid()
	heldMu.Lock()
	defer heldMu.Unlock()
	s := held[g]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == r {
			s = append(s[:i], s[i+1:]...)
			if len(s) == 0 {
				delete(held, g)
			} else {
				held[g] = s
			}
			return
		}
	}
	panic(fmt.Sprintf("lockrank: releasing %v which this goroutine does not hold", r))
}

// AssertHeld panics (checker enabled only) unless the calling goroutine
// holds a lock of rank r. The gate primitives use it: they stay
// lock-free themselves but require the host/gate lock around them.
func AssertHeld(r Rank) {
	if !enabled.Load() {
		return
	}
	g := gid()
	heldMu.Lock()
	defer heldMu.Unlock()
	for _, h := range held[g] {
		if h == r {
			return
		}
	}
	panic(fmt.Sprintf("lockrank: %v lock required but not held", r))
}

// Mutex is a rank-checked, contention-counted mutual exclusion lock.
// The zero value is usable (unranked, uncounted); Init wires the rank
// and the shared wait counter.
type Mutex struct {
	mu    sync.Mutex
	rank  Rank
	waits *atomic.Uint64
}

// Init sets the lock's rank and (optionally) the counter bumped once
// per contended acquisition. Call before the lock is shared.
func (m *Mutex) Init(rank Rank, waits *atomic.Uint64) {
	m.rank = rank
	m.waits = waits
}

// Lock acquires the mutex, validating rank order when the checker is
// enabled and counting the acquisition as a wait if it could not be
// satisfied immediately.
func (m *Mutex) Lock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkAcquire(m.rank)
	}
	if m.mu.TryLock() {
		return
	}
	if m.waits != nil {
		m.waits.Add(1)
	}
	m.mu.Lock()
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkRelease(m.rank)
	}
	m.mu.Unlock()
}

// RWMutex is the reader/writer variant of Mutex. Read acquisitions
// follow the same rank order as writes (a read lock still blocks a
// writer, so an inverted read is still a deadlock).
type RWMutex struct {
	mu    sync.RWMutex
	rank  Rank
	waits *atomic.Uint64
}

// Init sets the lock's rank and contended-acquisition counter.
func (m *RWMutex) Init(rank Rank, waits *atomic.Uint64) {
	m.rank = rank
	m.waits = waits
}

// Lock acquires the write lock.
func (m *RWMutex) Lock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkAcquire(m.rank)
	}
	if m.mu.TryLock() {
		return
	}
	if m.waits != nil {
		m.waits.Add(1)
	}
	m.mu.Lock()
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkRelease(m.rank)
	}
	m.mu.Unlock()
}

// RLock acquires the read lock.
func (m *RWMutex) RLock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkAcquire(m.rank)
	}
	if m.mu.TryRLock() {
		return
	}
	if m.waits != nil {
		m.waits.Add(1)
	}
	m.mu.RLock()
}

// RUnlock releases the read lock.
func (m *RWMutex) RUnlock() {
	if enabled.Load() && m.rank != RankUnranked {
		checkRelease(m.rank)
	}
	m.mu.RUnlock()
}
