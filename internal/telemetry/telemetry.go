// Package telemetry is the platform's unified observability layer: a
// metrics registry (lock-free counters, gauges and fixed-bucket cycle
// histograms), a bounded ring-buffer event tracer with cycle timestamps,
// and exporters (JSON snapshot, human-readable table, Chrome trace_event
// timeline for chrome://tracing / Perfetto).
//
// The paper's entire evaluation (Section 7) is built on observing
// micro-architectural events — gate transitions, VMEXIT round trips,
// encrypted-memory latencies — and related attack work (SEVered,
// CROSSLINE) found its attacks by watching hypervisor-visible event
// streams. This package makes both first-class: every layer of the
// simulator publishes into one registry and, when tracing is enabled, one
// typed event stream.
//
// Cost model: metrics are always on (single atomic or plain-field
// increments on paths that already do map lookups); the tracer is off by
// default and its disabled path is one nil-safe atomic load
// (Hub.Tracing), proven near-free by BenchmarkTelemetryOff in
// internal/hw.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind is the type of one traced event.
type Kind uint8

// Event kinds, covering every hot path the paper measures.
const (
	KindNone          Kind = iota
	KindVMRun              // VMRUN executed (arg1 = VMCB PA)
	KindVMExit             // VMEXIT taken (arg1 = exit reason)
	KindGate1              // type 1 gate: clear/restore CR0.WP
	KindGate2              // type 2 gate: checking loop
	KindGate3              // type 3 gate: add/remove mapping (arg1 = stub page VA)
	KindShadowSave         // VMCB+regs shadowed at guest→host boundary
	KindShadowVerify       // shadow verified/restored at host→guest boundary
	KindSEVCommand         // SEV firmware command (detail = name, arg1 = handle)
	KindNPTViolation       // nested-page-table violation (arg1 = GPA)
	KindTLBFlushFull       // full TLB flush
	KindTLBFlushEntry      // single-entry TLB flush (arg1 = VA)
	KindTLBFlushASID       // ASID-wide TLB flush (arg1 = entries removed)
	KindMemEncrypt         // memory-controller inline encrypt (arg1 = PA, arg2 = bytes)
	KindMemDecrypt         // memory-controller inline decrypt (arg1 = PA, arg2 = bytes)
	KindHypercall          // hypercall dispatched (arg1 = number)
	KindBlkRequest         // PV block-ring request (arg1 = LBA, arg2 = sectors)
	KindIOCrypt            // SEV I/O re-encryption op (arg1 = LBA, arg2 = sectors)
	KindEvtSignal          // event-channel kick (arg1 = port)
	KindViolation          // policy violation recorded (detail = kind: detail)
	KindMigrateRound       // one pre-copy round shipped (arg1 = round, arg2 = pages)
	KindMigrateDone        // migration finished (arg1 = rounds, arg2 = downtime cycles)
	KindAudit              // security audit record appended (detail = class: detail)
	KindSLOAlert           // SLO burn-rate alert (detail = objective, arg1 = burn rate x1000)
	KindServeReq           // serve-ring request injected (arg1 = op id, arg2 = op kind)
	KindServeDone          // serve-ring response completed (arg1 = op id, arg2 = latency cycles)

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:          "none",
	KindVMRun:         "vmrun",
	KindVMExit:        "vmexit",
	KindGate1:         "gate1",
	KindGate2:         "gate2",
	KindGate3:         "gate3",
	KindShadowSave:    "shadow-save",
	KindShadowVerify:  "shadow-verify",
	KindSEVCommand:    "sev-command",
	KindNPTViolation:  "npt-violation",
	KindTLBFlushFull:  "tlb-flush-full",
	KindTLBFlushEntry: "tlb-flush-entry",
	KindTLBFlushASID:  "tlb-flush-asid",
	KindMemEncrypt:    "mem-encrypt",
	KindMemDecrypt:    "mem-decrypt",
	KindHypercall:     "hypercall",
	KindBlkRequest:    "blk-request",
	KindIOCrypt:       "io-crypt",
	KindEvtSignal:     "evt-signal",
	KindViolation:     "violation",
	KindMigrateRound:  "migrate-round",
	KindMigrateDone:   "migrate-done",
	KindAudit:         "audit",
	KindSLOAlert:      "slo-alert",
	KindServeReq:      "serve-req",
	KindServeDone:     "serve-done",
}

var kindCats = [numKinds]string{
	KindNone:          "",
	KindVMRun:         "cpu",
	KindVMExit:        "cpu",
	KindGate1:         "gate",
	KindGate2:         "gate",
	KindGate3:         "gate",
	KindShadowSave:    "vmcb",
	KindShadowVerify:  "vmcb",
	KindSEVCommand:    "sev",
	KindNPTViolation:  "mmu",
	KindTLBFlushFull:  "mmu",
	KindTLBFlushEntry: "mmu",
	KindTLBFlushASID:  "mmu",
	KindMemEncrypt:    "mem",
	KindMemDecrypt:    "mem",
	KindHypercall:     "xen",
	KindBlkRequest:    "io",
	KindIOCrypt:       "io",
	KindEvtSignal:     "xen",
	KindViolation:     "policy",
	KindMigrateRound:  "migrate",
	KindMigrateDone:   "migrate",
	KindAudit:         "audit",
	KindSLOAlert:      "slo",
	KindServeReq:      "serve",
	KindServeDone:     "serve",
}

// String reports the event name used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Category groups kinds for trace viewers.
func (k Kind) Category() string {
	if int(k) < len(kindCats) {
		return kindCats[k]
	}
	return ""
}

// Event is one traced platform event. TS is the simulated cycle timestamp
// at emission; Dur, when non-zero, is the modelled duration in cycles (the
// gate constants, the shadow-check halves, the SEV command cost), making
// the event a span rather than an instant in the timeline export.
type Event struct {
	Seq    uint64
	TS     uint64
	Dur    uint64
	Kind   Kind
	VM     uint32 // domain ID; 0 = host/hypervisor context
	ASID   uint32
	Arg1   uint64
	Arg2   uint64
	Detail string
}

// Metrics is the set of pre-resolved handles for the platform's canonical
// counters and histograms, so hot paths pay a single atomic increment and
// never a map lookup. Every handle is resolved from the hub's registry at
// construction; the field names mirror the registry metric names.
type Metrics struct {
	Gate1, Gate2, Gate3 *Counter // gate.type1/2/3
	Shadows             *Counter // vmcb.shadows
	Violations          *Counter // violations.total
	VMRuns, VMExits     *Counter // cpu.vmruns, cpu.vmexits
	Hypercalls          *Counter // xen.hypercalls
	NPFHandled          *Counter // xen.npf_handled
	NPTWalks            *Counter // mmu.npt_walks
	NPTViolations       *Counter // mmu.npt_violations
	PTWalks             *Counter // mmu.pt_walks
	SEVCommands         *Counter // sev.commands
	DirtyMarks          *Counter // mmu.dirty_marks
	BlkRequests         *Counter // blk.requests
	BlkSectors          *Counter // blk.sectors
	EvtSignals          *Counter // evt.signals
	IOCryptSectors      *Counter // io.crypt_sectors
	AuditRecords        *Counter // audit.records
	SLOAlerts           *Counter // slo.alerts
	ServeOps            *Counter // serve.ops: completed serve requests
	ServeTimeouts       *Counter // serve.timeouts: responses past their deadline
	ServeRejects        *Counter // serve.rejects: sessions denied at admission
	DiskSeekReads       *Counter // xen.disk_seeks{kind=read}: non-sequential read LBAs
	DiskSeekWrites      *Counter // xen.disk_seeks{kind=write}: non-sequential write LBAs
	KVSeqWrites         *Counter // kv.seq_writes: store writes coalesced onto a pending span
	KVGroupCommits      *Counter // kv.group_commits: multi-write spans flushed as one request
	KVCacheHits         *Counter // kv.cache_hits: gets answered from the guest read cache
	KVCacheMisses       *Counter // kv.cache_misses: gets that had to recharge the session cipher
	KVCompactions       *Counter // kv.compactions: log compaction cycles completed
	KVReclaimed         *Counter // kv.compact_reclaimed: log sectors reclaimed by compaction
	ServeHolds          *Counter // serve.holds: doorbells answered empty to deepen the next batch

	ExitCycles      *Histogram // vmexit.cycles: per-quantum round-trip cost
	BlkReqSectors   *Histogram // blk.request_sectors: request size distribution
	ServeLatency    *Histogram // serve.latency: arrival-to-response cycles, all tenants
	ServeBatchDepth *Histogram // serve.batch_depth: ops posted per non-empty doorbell fill
}

func newMetrics(r *Registry) Metrics {
	return Metrics{
		Gate1:          r.Counter("gate.type1"),
		Gate2:          r.Counter("gate.type2"),
		Gate3:          r.Counter("gate.type3"),
		Shadows:        r.Counter("vmcb.shadows"),
		Violations:     r.Counter("violations.total"),
		VMRuns:         r.Counter("cpu.vmruns"),
		VMExits:        r.Counter("cpu.vmexits"),
		Hypercalls:     r.Counter("xen.hypercalls"),
		NPFHandled:     r.Counter("xen.npf_handled"),
		NPTWalks:       r.Counter("mmu.npt_walks"),
		NPTViolations:  r.Counter("mmu.npt_violations"),
		PTWalks:        r.Counter("mmu.pt_walks"),
		SEVCommands:    r.Counter("sev.commands"),
		DirtyMarks:     r.Counter("mmu.dirty_marks"),
		BlkRequests:    r.Counter("blk.requests"),
		BlkSectors:     r.Counter("blk.sectors"),
		EvtSignals:     r.Counter("evt.signals"),
		IOCryptSectors: r.Counter("io.crypt_sectors"),
		AuditRecords:   r.Counter("audit.records"),
		SLOAlerts:      r.Counter("slo.alerts"),
		ServeOps:       r.Counter("serve.ops"),
		ServeTimeouts:  r.Counter("serve.timeouts"),
		ServeRejects:   r.Counter("serve.rejects"),
		DiskSeekReads:  r.Counter("xen.disk_seeks", "kind", "read"),
		DiskSeekWrites: r.Counter("xen.disk_seeks", "kind", "write"),
		KVSeqWrites:    r.Counter("kv.seq_writes"),
		KVGroupCommits: r.Counter("kv.group_commits"),
		KVCacheHits:    r.Counter("kv.cache_hits"),
		KVCacheMisses:  r.Counter("kv.cache_misses"),
		KVCompactions:  r.Counter("kv.compactions"),
		KVReclaimed:    r.Counter("kv.compact_reclaimed"),
		ServeHolds:     r.Counter("serve.holds"),
		ExitCycles:     r.Histogram("vmexit.cycles", CycleBuckets),
		BlkReqSectors:  r.Histogram("blk.request_sectors", []uint64{1, 2, 4, 8, 16, 32, 64, 128}),
		ServeLatency:   r.Histogram("serve.latency", ServeLatencyBuckets),
		ServeBatchDepth: r.Histogram("serve.batch_depth",
			[]uint64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
	}
}

// Hub is one machine's telemetry: the registry, the canonical metric
// handles, and the (optional) event tracer. The hub is created by the
// memory controller and shared by every layer above it; the clock is the
// machine's deterministic cycle counter.
type Hub struct {
	now    func() uint64
	Reg    *Registry
	M      Metrics
	tracer atomic.Pointer[Tracer]
	ledger atomic.Pointer[Ledger]

	// spanSeq allocates span IDs; ambient is the current-span register
	// used by OpenScope to build parent links (see span.go).
	spanSeq atomic.Uint64
	ambient atomic.Uint64

	mu      sync.Mutex
	vmNames map[uint32]string
	asidVM  map[uint32]uint32
}

// New builds a hub whose event timestamps come from now (the machine's
// cycle counter).
func New(now func() uint64) *Hub {
	reg := NewRegistry()
	h := &Hub{
		now:     now,
		Reg:     reg,
		M:       newMetrics(reg),
		vmNames: map[uint32]string{0: "host"},
		asidVM:  map[uint32]uint32{},
	}
	return h
}

// Now reads the hub clock. Nil-safe.
func (h *Hub) Now() uint64 {
	if h == nil || h.now == nil {
		return 0
	}
	return h.now()
}

// Tracing reports whether an event tracer is attached. This is the
// disabled-path fast check: a nil test plus one atomic load.
func (h *Hub) Tracing() bool {
	return h != nil && h.tracer.Load() != nil
}

// StartTrace attaches a fresh ring-buffer tracer of the given capacity
// (DefaultTraceCap when <= 0) and returns it.
func (h *Hub) StartTrace(capacity int) *Tracer {
	if h == nil {
		return nil
	}
	t := NewTracer(capacity)
	h.tracer.Store(t)
	return t
}

// StopTrace detaches and returns the current tracer (nil if none).
func (h *Hub) StopTrace() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer.Swap(nil)
}

// Trace returns the attached tracer without detaching it.
func (h *Hub) Trace() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer.Load()
}

// NameVM records a display name for a domain ID, used by the timeline
// export to label per-VM tracks.
func (h *Hub) NameVM(id uint32, name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.vmNames[id] = name
	h.mu.Unlock()
}

// MapASID records which domain an ASID belongs to, letting layers that
// only see ASIDs (the memory controller, the AES engine) label their
// events per-VM.
func (h *Hub) MapASID(asid, vm uint32) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.asidVM[asid] = vm
	h.mu.Unlock()
}

// VMForASID resolves an ASID to its owning domain (0 = host/unknown).
func (h *Hub) VMForASID(asid uint32) uint32 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	vm := h.asidVM[asid]
	h.mu.Unlock()
	return vm
}

// VMNames returns a copy of the VM display-name table.
func (h *Hub) VMNames() map[uint32]string {
	out := make(map[uint32]string)
	if h == nil {
		return out
	}
	h.mu.Lock()
	for k, v := range h.vmNames {
		out[k] = v
	}
	h.mu.Unlock()
	return out
}

// Emit records one event if tracing is enabled. dur is the modelled span
// length in cycles (0 for an instant event).
func (h *Hub) Emit(k Kind, vm, asid uint32, dur, arg1, arg2 uint64) {
	h.EmitDetail(k, vm, asid, dur, arg1, arg2, "")
}

// StartLedger attaches a fresh hash-chained audit ledger (replacing any
// current one) and returns it.
func (h *Hub) StartLedger() *Ledger {
	if h == nil {
		return nil
	}
	l := NewLedger(h.now)
	h.ledger.Store(l)
	return l
}

// StopLedger detaches and returns the current ledger (nil if none).
func (h *Hub) StopLedger() *Ledger {
	if h == nil {
		return nil
	}
	return h.ledger.Swap(nil)
}

// Ledger returns the attached audit ledger without detaching it.
func (h *Hub) Ledger() *Ledger {
	if h == nil {
		return nil
	}
	return h.ledger.Load()
}

// Auditing reports whether an audit ledger is attached — the disabled-path
// fast check (a nil test plus one atomic load), so call sites that would
// build a detail string can skip the work entirely.
func (h *Hub) Auditing() bool {
	return h != nil && h.ledger.Load() != nil
}

// Audit appends one security-relevant record (a gatekeeper denial, an
// integrity-tag failure, an NPT remap or ASID-reuse detection, an
// attestation state transition) to the hash-chained ledger. No-op when no
// ledger is attached; when tracing is also on, the record is mirrored as
// a KindAudit event so the timeline and the ledger cross-reference.
func (h *Hub) Audit(class string, vm uint32, detail string) {
	if h == nil {
		return
	}
	l := h.ledger.Load()
	if l == nil {
		return
	}
	l.Append(class, vm, detail)
	h.M.AuditRecords.Inc()
	if h.tracer.Load() != nil {
		h.EmitDetail(KindAudit, vm, 0, 0, 0, 0, class+": "+detail)
	}
}

// EmitDetail is Emit with an attached detail string.
func (h *Hub) EmitDetail(k Kind, vm, asid uint32, dur, arg1, arg2 uint64, detail string) {
	if h == nil {
		return
	}
	t := h.tracer.Load()
	if t == nil {
		return
	}
	t.record(Event{
		TS:     h.Now(),
		Dur:    dur,
		Kind:   k,
		VM:     vm,
		ASID:   asid,
		Arg1:   arg1,
		Arg2:   arg2,
		Detail: detail,
	})
}
