package cpu

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/mmu"
)

type bumpAlloc struct{ next, max hw.PFN }

func (a *bumpAlloc) AllocFrame() (hw.PFN, error) {
	if a.next >= a.max {
		return 0, errors.New("out of frames")
	}
	f := a.next
	a.next++
	return f, nil
}

// testMachine builds a CPU over `pages` pages of physical memory with an
// identity-mapped host page table (VA == PA) covering all of it, paging and
// WP enabled. Page-table pages are allocated from the top of memory.
func testMachine(t *testing.T, pages int) (*CPU, *mmu.Space, *bumpAlloc) {
	t.Helper()
	ctl := hw.NewController(hw.NewMemory(pages), 512)
	alloc := &bumpAlloc{next: hw.PFN(pages / 2), max: hw.PFN(pages)}
	root, err := alloc.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	sp := &mmu.Space{Ctl: ctl, Root: root}
	zero := make([]byte, hw.PageSize)
	if err := ctl.Write(hw.Access{PA: root.Addr()}, zero); err != nil {
		t.Fatal(err)
	}
	for pfn := hw.PFN(0); pfn < hw.PFN(pages); pfn++ {
		if err := sp.Map(alloc, uint64(pfn.Addr()), mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW)); err != nil {
			t.Fatal(err)
		}
	}
	c := New(ctl)
	c.CR3 = uint64(root.Addr())
	c.CR0 = CR0PG | CR0WP
	return c, sp, alloc
}

func loadCode(t *testing.T, c *CPU, va uint64, prog []isa.Inst) {
	t.Helper()
	code := isa.Assemble(prog)
	if err := c.WriteVA(va, code); err != nil {
		t.Fatal(err)
	}
}

func TestRunBasicProgram(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 2, Imm: 0xABCD},
		{Op: isa.OpStore, Reg: 2, Imm: 0x8000},
		{Op: isa.OpMovImm, Reg: 3, Imm: 0},
		{Op: isa.OpLoad, Reg: 3, Imm: 0x8000},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 0xABCD {
		t.Fatalf("r3 = %#x, want 0xABCD", c.Regs[3])
	}
}

func TestCallRet(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	c.Regs[SP] = 0x9000
	// 0x1000: call +15 (to 0x100f); hlt
	// 0x100f: movi r1, 7; ret
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpCall, Rel: 15}, // call is 5 bytes; jmp/call rel from inst start
		{Op: isa.OpHlt},
	})
	loadCode(t, c, 0x100f, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 1, Imm: 7},
		{Op: isa.OpRet},
	})
	if err := c.Run(0x1000, 100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[1] != 7 {
		t.Fatalf("r1 = %d, want 7", c.Regs[1])
	}
	if c.Regs[SP] != 0x9000 {
		t.Fatalf("stack imbalance: sp=%#x", c.Regs[SP])
	}
}

func TestJmpLoop(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	// alu; jmp -2 — infinite loop, must exhaust budget.
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpALU, Reg: 1},
		{Op: isa.OpJmp, Rel: -2},
	})
	err := c.Run(0x1000, 10)
	if err == nil || err == ErrHalted {
		t.Fatalf("expected budget exhaustion, got %v", err)
	}
}

func TestWPBlocksSupervisorWrite(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	// Make page 8 read-only.
	if err := sp.SetLeaf(0x8000, mmu.MakePTE(8, mmu.FlagP)); err != nil {
		t.Fatal(err)
	}
	err := c.WriteVA(0x8000, []byte{1})
	var pf *mmu.PageFault
	if !errors.As(err, &pf) || pf.Reason != mmu.WriteProtected {
		t.Fatalf("want WP fault, got %v", err)
	}
	// Clear WP: write goes through.
	if err := c.SetWP(false); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteVA(0x8000, []byte{1}); err != nil {
		t.Fatalf("WP=0 write failed: %v", err)
	}
}

func TestCR0HookVeto(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	c.Hooks.CR0Write = func(c *CPU, old, new uint64) error {
		if old&CR0WP != 0 && new&CR0WP == 0 && !c.TrustedContext {
			return &ProtectionError{Op: "mov cr0", Detail: "WP cannot be cleared"}
		}
		return nil
	}
	// Untrusted clear: vetoed, CR0 unchanged.
	err := c.SetWP(false)
	var pe *ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProtectionError, got %v", err)
	}
	if !c.WP() {
		t.Fatal("WP changed despite veto")
	}
	// Trusted clear: allowed.
	c.TrustedContext = true
	if err := c.SetWP(false); err != nil {
		t.Fatal(err)
	}
	if c.WP() {
		t.Fatal("trusted WP clear did not apply")
	}
}

func TestMovCR0Instruction(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 1, Imm: CR0PG}, // PG on, WP off
		{Op: isa.OpMovCR0, Reg: 1},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 100); err != nil {
		t.Fatal(err)
	}
	if c.WP() {
		t.Fatal("mov cr0 did not clear WP")
	}
}

func TestPagingDisableGivesRawAccess(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.SetLeaf(0x8000, mmu.MakePTE(8, mmu.FlagP)); err != nil { // read-only
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	if err := c.WriteVA(0x8000, []byte{1}); err == nil {
		t.Fatal("expected WP fault")
	}
	// Disabling paging removes all protection — the attack the MOV CR0
	// PG policy exists to stop.
	c.CR0 &^= CR0PG
	if err := c.WriteVA(0x8000, []byte{1}); err != nil {
		t.Fatalf("raw write failed: %v", err)
	}
}

func TestNXAndNXEInteraction(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.SetLeaf(0x8000, mmu.MakePTE(8, mmu.FlagP|mmu.FlagW|mmu.FlagNX)); err != nil {
		t.Fatal(err)
	}
	loadCode(t, c, 0x8000, []isa.Inst{{Op: isa.OpHlt}})
	err := c.Run(0x8000, 10)
	var pf *mmu.PageFault
	if !errors.As(err, &pf) || pf.Reason != mmu.NXViolation {
		t.Fatalf("want NX fault, got %v", err)
	}
	// Clearing EFER.NXE disables NX enforcement — the WRMSR attack.
	c.EFER &^= EFERNXE
	c.TLB.FlushAll()
	if err := c.Run(0x8000, 10); err != nil {
		t.Fatalf("with NXE clear execution should proceed: %v", err)
	}
}

func TestWRMSRHook(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	c.Hooks.MSRWrite = func(c *CPU, msr uint32, old, new uint64) error {
		if msr == MSREFER && old&EFERNXE != 0 && new&EFERNXE == 0 {
			return &ProtectionError{Op: "wrmsr", Detail: "NXE cannot be cleared"}
		}
		return nil
	}
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 0, Imm: MSREFER},
		{Op: isa.OpMovImm, Reg: 1, Imm: 0},
		{Op: isa.OpWrmsr},
		{Op: isa.OpHlt},
	})
	err := c.Run(0x1000, 100)
	var pe *ProtectionError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProtectionError, got %v", err)
	}
	if c.EFER&EFERNXE == 0 {
		t.Fatal("EFER changed despite veto")
	}
}

func TestSMEPBlocksUserPageExec(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.SetLeaf(0x8000, mmu.MakePTE(8, mmu.FlagP|mmu.FlagW|mmu.FlagU)); err != nil {
		t.Fatal(err)
	}
	loadCode(t, c, 0x8000, []isa.Inst{{Op: isa.OpHlt}})
	c.CR4 |= CR4SMEP
	c.TLB.FlushAll()
	if err := c.Run(0x8000, 10); err == nil {
		t.Fatal("SMEP should block supervisor exec of user page")
	}
	c.CR4 &^= CR4SMEP
	c.TLB.FlushAll()
	if err := c.Run(0x8000, 10); err != nil {
		t.Fatalf("without SMEP should run: %v", err)
	}
}

func TestCR3SwitchChangesSpaceAndFlushesTLB(t *testing.T) {
	c, _, alloc := testMachine(t, 128)
	// Build a second space with a different mapping for VA 0x8000.
	root2, _ := alloc.AllocFrame()
	zero := make([]byte, hw.PageSize)
	if err := c.Ctl.Write(hw.Access{PA: root2.Addr()}, zero); err != nil {
		t.Fatal(err)
	}
	sp2 := &mmu.Space{Ctl: c.Ctl, Root: root2}
	for pfn := hw.PFN(0); pfn < 64; pfn++ {
		target := pfn
		if pfn == 8 {
			target = 9 // VA 0x8000 -> PA 0x9000 in space 2
		}
		if err := sp2.Map(alloc, uint64(pfn.Addr()), mmu.MakePTE(target, mmu.FlagP|mmu.FlagW)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ctl.Write(hw.Access{PA: 0x9000}, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ctl.Write(hw.Access{PA: 0x8000}, []byte{0x11}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	c.ReadVA(0x8000, b[:])
	if b[0] != 0x11 {
		t.Fatalf("space 1 read got %#x", b[0])
	}
	flushes := c.TLB.FullFlushes
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 1, Imm: uint64(root2.Addr())},
		{Op: isa.OpMovCR3, Reg: 1},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
	if c.TLB.FullFlushes != flushes+1 {
		t.Fatal("CR3 switch must flush the TLB")
	}
	c.ReadVA(0x8000, b[:])
	if b[0] != 0xEE {
		t.Fatalf("space 2 read got %#x, want 0xEE", b[0])
	}
}

func TestMovCR3AtPageEndFaultsIfNextPageUnmapped(t *testing.T) {
	// The Section 4.1.2 subtlety: mov CR3 placed at the end of a page
	// whose successor is not mapped in the *new* address space faults on
	// the continuation fetch.
	c, _, alloc := testMachine(t, 128)
	root2, _ := alloc.AllocFrame()
	zero := make([]byte, hw.PageSize)
	if err := c.Ctl.Write(hw.Access{PA: root2.Addr()}, zero); err != nil {
		t.Fatal(err)
	}
	sp2 := &mmu.Space{Ctl: c.Ctl, Root: root2}
	// Space 2 maps ONLY page 1 (the code page), not page 2.
	if err := sp2.Map(alloc, 0x1000, mmu.MakePTE(1, mmu.FlagP|mmu.FlagW)); err != nil {
		t.Fatal(err)
	}
	// Code: movi r1, root2; (at 0x1ffe) mov cr3 r1; (at 0x2000) hlt.
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 1, Imm: uint64(root2.Addr())},
		{Op: isa.OpJmp, Rel: int32(0x1ffe - 0x100a)},
	})
	loadCode(t, c, 0x1ffe, []isa.Inst{{Op: isa.OpMovCR3, Reg: 1}})
	loadCode(t, c, 0x2000, []isa.Inst{{Op: isa.OpHlt}})
	err := c.Run(0x1000, 10)
	var pf *mmu.PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("want page fault on continuation fetch, got %v", err)
	}
	if pf.VA != 0x2000 {
		t.Fatalf("fault at %#x, want 0x2000", pf.VA)
	}
}

func TestFetchFromUnmappedPageFaults(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.Unmap(0x5000); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	err := c.Run(0x5000, 10)
	var pf *mmu.PageFault
	if !errors.As(err, &pf) || pf.Access != mmu.Execute {
		t.Fatalf("want execute fault, got %v", err)
	}
}

func TestAddrHookFires(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	fired := false
	c.Hooks.Addr = map[uint64]func(*CPU) error{
		0x1001: func(c *CPU) error { fired = true; return nil },
	}
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("address hook did not fire")
	}
}

func TestPageFaultHandlerRetries(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.SetLeaf(0x8000, mmu.MakePTE(8, mmu.FlagP)); err != nil { // read-only
		t.Fatal(err)
	}
	calls := 0
	c.PageFaultFn = func(c *CPU, f *mmu.PageFault) bool {
		calls++
		// Fix up: make it writable (as a Fidelius handler would after a
		// policy check).
		if err := sp.SetLeaf(mmu.PageBase(f.VA), mmu.MakePTE(8, mmu.FlagP|mmu.FlagW)); err != nil {
			return false
		}
		return true
	}
	if err := c.WriteVA(0x8000, []byte{1}); err != nil {
		t.Fatalf("handled fault should retry: %v", err)
	}
	if calls != 1 {
		t.Fatalf("handler called %d times, want 1", calls)
	}
}

func TestVMRunDispatch(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	var got uint64
	c.VMRunFn = func(pa uint64) error { got = pa; return nil }
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 2, Imm: 0xB000},
		{Op: isa.OpVmrun, Reg: 2},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
	if got != 0xB000 {
		t.Fatalf("vmrun got pa %#x", got)
	}
}

func TestVMCBRoundTrip(t *testing.T) {
	v := &VMCB{
		ExitCode: ExitNPF, ExitInfo1: 0x1, ExitInfo2: 0xdead000,
		GuestASID: 5, NPTRoot: 0x7000, Intercepts: 0xFF, SEVEnabled: true,
		RIP: 0x1234, RSP: 0x9000, CR0: CR0PG, CR3: 0x2000, CR4: CR4SMEP, EFER: EFERNXE,
	}
	for i := range v.Regs {
		v.Regs[i] = uint64(i * 1111)
	}
	got, err := UnmarshalVMCB(v.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestVMCBMemoryRoundTrip(t *testing.T) {
	ctl := hw.NewController(hw.NewMemory(4), 0)
	v := &VMCB{ExitCode: ExitCPUID, GuestASID: 3, RIP: 42}
	if err := StoreVMCB(ctl, 0x1000, v); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVMCB(ctl, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatal("memory round trip mismatch")
	}
	if _, err := UnmarshalVMCB(make([]byte, 3)); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestPropertyVMCBRoundTrip(t *testing.T) {
	f := func(exit uint8, asid uint32, info1, info2, rip, cr3 uint64, regs [NumRegs]uint64, sev bool) bool {
		v := &VMCB{
			ExitCode: ExitReason(exit), GuestASID: asid,
			ExitInfo1: info1, ExitInfo2: info2, RIP: rip, CR3: cr3,
			Regs: regs, SEVEnabled: sev,
		}
		got, err := UnmarshalVMCB(v.Marshal())
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExitReasonString(t *testing.T) {
	if ExitNPF.String() != "npf" || ExitVMMCALL.String() != "vmmcall" {
		t.Fatal("exit reason names")
	}
	if ExitReason(99).String() != "exit(99)" {
		t.Fatal("unknown exit reason")
	}
}

func TestCPUIDInstruction(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpCpuid},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[0] != 0x0F1DE115 {
		t.Fatalf("cpuid r0 = %#x", c.Regs[0])
	}
}

func TestVmmcallInHostModeErrors(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{{Op: isa.OpVmmcall}})
	if err := c.Run(0x1000, 10); err == nil {
		t.Fatal("vmmcall in host mode should error")
	}
}

func TestInvalidOpcode(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	if err := c.WriteVA(0x1000, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0x1000, 10); err == nil {
		t.Fatal("invalid opcode should error")
	}
}
