// Package isa defines the simulator's instruction set, its binary encoding,
// and the binary scanner Fidelius uses to prove privileged-instruction
// monopolisation.
//
// The machine does not need a full x86 model: what the paper's mechanism
// depends on is (a) privileged instructions with a recognisable binary
// encoding that can occur at arbitrary byte offsets inside other
// instructions' operands, and (b) variable-length encodings so that "no
// matter aligned to instruction boundaries or not" (Section 4.1.2) is a
// meaningful scan. The ISA therefore has variable-length instructions and
// reserves the 0xF0-0xFF opcode space for privileged operations.
package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is an opcode byte.
type Op byte

// Unprivileged opcodes.
const (
	OpNop     Op = 0x01 // 1 byte
	OpALU     Op = 0x02 // 2 bytes: op, fn
	OpLoad    Op = 0x03 // 10 bytes: op, reg, addr64
	OpStore   Op = 0x04 // 10 bytes: op, reg, addr64
	OpJmp     Op = 0x05 // 5 bytes: op, rel32
	OpCall    Op = 0x06 // 5 bytes: op, rel32
	OpRet     Op = 0x07 // 1 byte
	OpHlt     Op = 0x08 // 1 byte
	OpCpuid   Op = 0x09 // 1 byte
	OpVmmcall Op = 0x0A // 1 byte (hypercall)
	OpMovImm  Op = 0x0B // 10 bytes: op, reg, imm64
)

// Privileged opcodes (Table 2 of the paper, plus the execute-once pair).
const (
	OpMovCR0 Op = 0xF0 // 2 bytes: op, reg — may disable PG and WP
	OpMovCR3 Op = 0xF1 // 2 bytes — may switch address space
	OpMovCR4 Op = 0xF2 // 2 bytes — may disable SMEP
	OpWrmsr  Op = 0xF3 // 2 bytes — may disable NX (EFER.NXE)
	OpVmrun  Op = 0xF4 // 2 bytes — may change the control flow
	OpLgdt   Op = 0xF5 // 2 bytes — execute-once
	OpLidt   Op = 0xF6 // 2 bytes — execute-once
)

// Privileged reports whether op is in the privileged opcode space.
func Privileged(op Op) bool { return op >= 0xF0 }

// names for diagnostics.
var names = map[Op]string{
	OpNop: "nop", OpALU: "alu", OpLoad: "load", OpStore: "store",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpHlt: "hlt",
	OpCpuid: "cpuid", OpVmmcall: "vmmcall", OpMovImm: "movimm",
	OpMovCR0: "mov cr0", OpMovCR3: "mov cr3", OpMovCR4: "mov cr4",
	OpWrmsr: "wrmsr", OpVmrun: "vmrun", OpLgdt: "lgdt", OpLidt: "lidt",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if s, ok := names[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%#x)", byte(op))
}

// Len returns the encoded length of an instruction with this opcode, or 0
// if the opcode is unknown.
func (op Op) Len() int {
	switch op {
	case OpNop, OpRet, OpHlt, OpCpuid, OpVmmcall:
		return 1
	case OpALU, OpMovCR0, OpMovCR3, OpMovCR4, OpWrmsr, OpVmrun, OpLgdt, OpLidt:
		return 2
	case OpJmp, OpCall:
		return 5
	case OpLoad, OpStore, OpMovImm:
		return 10
	}
	return 0
}

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Reg uint8  // register operand for 2- and 10-byte forms
	Imm uint64 // immediate / address for 10-byte forms
	Rel int32  // relative displacement for jmp/call
}

// ErrBadEncoding reports an undecodable byte sequence.
var ErrBadEncoding = errors.New("isa: bad encoding")

// Encode appends the binary encoding of the instruction to dst.
func (i Inst) Encode(dst []byte) []byte {
	switch l := i.Op.Len(); l {
	case 1:
		return append(dst, byte(i.Op))
	case 2:
		return append(dst, byte(i.Op), i.Reg)
	case 5:
		var b [5]byte
		b[0] = byte(i.Op)
		binary.LittleEndian.PutUint32(b[1:], uint32(i.Rel))
		return append(dst, b[:]...)
	case 10:
		var b [10]byte
		b[0] = byte(i.Op)
		b[1] = i.Reg
		binary.LittleEndian.PutUint64(b[2:], i.Imm)
		return append(dst, b[:]...)
	default:
		panic(fmt.Sprintf("isa: encoding unknown opcode %v", i.Op))
	}
}

// Decode decodes one instruction from b, returning it and its length.
func Decode(b []byte) (Inst, int, error) {
	if len(b) == 0 {
		return Inst{}, 0, fmt.Errorf("%w: empty", ErrBadEncoding)
	}
	op := Op(b[0])
	l := op.Len()
	if l == 0 {
		return Inst{}, 0, fmt.Errorf("%w: opcode %#x", ErrBadEncoding, b[0])
	}
	if len(b) < l {
		return Inst{}, 0, fmt.Errorf("%w: truncated %v", ErrBadEncoding, op)
	}
	in := Inst{Op: op}
	switch l {
	case 2:
		in.Reg = b[1]
	case 5:
		in.Rel = int32(binary.LittleEndian.Uint32(b[1:]))
	case 10:
		in.Reg = b[1]
		in.Imm = binary.LittleEndian.Uint64(b[2:])
	}
	return in, l, nil
}

// Assemble encodes a sequence of instructions.
func Assemble(prog []Inst) []byte {
	var out []byte
	for _, i := range prog {
		out = i.Encode(out)
	}
	return out
}

// Disassemble decodes a full code region, failing on any undecodable tail.
func Disassemble(code []byte) ([]Inst, error) {
	var out []Inst
	for off := 0; off < len(code); {
		in, n, err := Decode(code[off:])
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", off, err)
		}
		out = append(out, in)
		off += n
	}
	return out, nil
}
