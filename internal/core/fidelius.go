package core

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/lockrank"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// Violation is one rejected operation, recorded for auditing (the paper
// logs write-forbidding hits for "further auditing", Section 5.3).
type Violation struct {
	Kind   string
	Detail string
}

// GateStats reports trusted-context transition counts, for the Section
// 7.2 micro-benchmarks. It is a read-out of the machine's telemetry
// registry (see Fidelius.Stats), not separate accounting.
type GateStats struct {
	Gate1   uint64 // type 1: clear WP
	Gate2   uint64 // type 2: checking loop
	Gate3   uint64 // type 3: add new mapping
	Shadows uint64 // VMEXIT shadow+verify round trips
}

// VMState is Fidelius's private record of one protected VM: the SEV
// metadata the hypervisor is no longer allowed to touch (Section 4.2.3).
type VMState struct {
	Dom    *xen.Domain
	Handle sev.Handle
	// SDom and RDom are the I/O helper contexts (Section 4.3.5).
	SDom, RDom     sev.Handle
	IOSessionReady bool
	// GEKReady marks a VM booted through the Section 8 customized-key
	// extension: its own context serves ENC/DEC on the I/O path, with no
	// helper contexts.
	GEKReady bool
}

type onceVec struct {
	// used is the bit-vector of Section 5.3 (one bit per byte of the
	// page); a write to any already-written byte is rejected.
	used [hw.PageSize / 8]byte
}

func (o *onceVec) markRange(off, n int) (fresh bool) {
	fresh = true
	for i := off; i < off+n && i < hw.PageSize; i++ {
		if o.used[i/8]&(1<<(i%8)) != 0 {
			fresh = false
		}
		o.used[i/8] |= 1 << (i % 8)
	}
	return fresh
}

func (o *onceVec) anyUsed() bool {
	for _, b := range o.used {
		if b != 0 {
			return true
		}
	}
	return false
}

// Fidelius is the trusted context. Its state (PIT, GIT, shadows, SEV
// metadata) is conceptually unmapped from the hypervisor; its entry points
// are the three gates and the CPU policy hooks.
type Fidelius struct {
	X *xen.Xen
	M *xen.Machine

	PIT *PIT
	GIT *GIT

	// HypervisorMeasurement is the boot-time measurement of the
	// hypervisor's code region (Section 4.3.1), used in attestation.
	HypervisorMeasurement [32]byte

	// EncryptAll marks the "Fidelius-enc" configuration: EnableSME sets
	// NPT C-bits so guest memory is SME-encrypted (Section 7.1).
	EncryptAll bool

	// vmu (lock rank: leaf) guards Violations. It is a leaf because
	// violations are recorded from gate contexts at any point in the lock
	// order — policy hooks, page-fault mediation, VMCB verification — and
	// the record itself acquires nothing further. Concurrent readers use
	// ViolationLog; serial tests may read Violations directly.
	vmu        lockrank.Mutex
	Violations []Violation

	// shadows and vms are trusted-context state, guarded by the machine's
	// gate lock like the rest of Fidelius's private structures. The
	// lifecycle entry points (which run without the gate lock held) go
	// through lookupVM/storeVM.
	shadows map[xen.DomID]*shadowState
	vms     map[xen.DomID]*VMState

	writeOnce map[hw.PFN]*onceVec
	// pendingReprotect lists write-once pages temporarily writable for a
	// mediated write, re-armed by the post-fault hook.
	pendingReprotect []hw.PFN

	execCount map[uint64]int // stub address -> executions (execute-once)

	// savedVmrunPTE and savedMovCR3PTE restore the unmapped stub pages
	// through the type 3 gate.
	savedVmrunPTE  mmu.PTE
	savedMovCR3PTE mmu.PTE
}

// ErrNotMonopolised reports that binary scanning found unsanctioned
// privileged instructions in the hypervisor code region.
var ErrNotMonopolised = errors.New("core: privileged instructions not monopolised")

// Enable late-launches Fidelius on a booted hypervisor (Section 4.3.1):
// it measures the hypervisor's code, verifies privileged-instruction
// monopolisation, builds the PIT and GIT, write-protects the hypervisor's
// page tables and every existing critical structure, unmaps the VMRUN and
// MOV CR3 stub pages, installs the policy hooks, and takes over the
// resource-management seam.
func Enable(x *xen.Xen) (*Fidelius, error) {
	f := &Fidelius{
		X:         x,
		M:         x.M,
		shadows:   make(map[xen.DomID]*shadowState),
		vms:       make(map[xen.DomID]*VMState),
		writeOnce: make(map[hw.PFN]*onceVec),
		execCount: make(map[uint64]int),
	}
	f.vmu.Init(lockrank.RankLeaf, nil)

	// 1. Measure the hypervisor code and verify monopolisation.
	code, err := x.M.CodeRegion()
	if err != nil {
		return nil, err
	}
	f.HypervisorMeasurement = sha256.Sum256(code)
	allowed := map[int]isa.Op{}
	base := x.M.Stubs.Base
	for addr, op := range map[uint64]isa.Op{
		x.M.Stubs.MovCR0: isa.OpMovCR0,
		x.M.Stubs.MovCR4: isa.OpMovCR4,
		x.M.Stubs.Wrmsr:  isa.OpWrmsr,
		x.M.Stubs.Lgdt:   isa.OpLgdt,
		x.M.Stubs.Lidt:   isa.OpLidt,
		x.M.Stubs.Vmrun:  isa.OpVmrun,
		x.M.Stubs.MovCR3: isa.OpMovCR3,
	} {
		allowed[int(addr-base)] = op
	}
	if !isa.Monopolised(code, allowed) {
		return nil, ErrNotMonopolised
	}

	// 2. PIT and GIT.
	if f.PIT, err = NewPIT(x.M.Ctl, x.M.Alloc); err != nil {
		return nil, err
	}
	if f.GIT, err = NewGIT(x.M.Ctl, x.M.Alloc); err != nil {
		return nil, err
	}
	type frameRec struct {
		pfn hw.PFN
		fi  xen.FrameInfo
	}
	var inUse []frameRec
	x.M.Alloc.ForEach(func(pfn hw.PFN, fi xen.FrameInfo) {
		if fi.Use != xen.UseFree {
			inUse = append(inUse, frameRec{pfn, fi})
		}
	})
	for _, r := range inUse {
		if err := f.PIT.Set(r.pfn, MakePITEntry(r.fi.Use, r.fi.Owner, 0)); err != nil {
			return nil, err
		}
	}

	// 3. Write-protect the hypervisor's page-table-pages, the PIT and
	// GIT pages, and the structures of any pre-existing domains.
	hostPTPages, err := x.M.HostPT.TablePages()
	if err != nil {
		return nil, err
	}
	var toProtect []hw.PFN
	toProtect = append(toProtect, hostPTPages...)
	toProtect = append(toProtect, f.PIT.Pages...)
	toProtect = append(toProtect, f.GIT.PagePFN)
	for _, d := range x.Doms {
		toProtect = append(toProtect, d.NPTPages...)
		toProtect = append(toProtect, d.Grant.PagePFN)
	}
	for _, pfn := range toProtect {
		if err := f.protectRO(pfn); err != nil {
			return nil, err
		}
	}

	// 4. Unmap the VMRUN and MOV CR3 stub pages (type 3 gate targets).
	if f.savedVmrunPTE, err = f.unmapStub(x.M.Stubs.VmrunPg); err != nil {
		return nil, err
	}
	if f.savedMovCR3PTE, err = f.unmapStub(x.M.Stubs.MovCR3Pg); err != nil {
		return nil, err
	}
	x.M.TLBs.FlushAll()

	// 5. The SEV metadata becomes self-maintained: firmware commands now
	// require Fidelius's trusted context (Section 4.2.3).
	x.M.FW.Authorize = func() bool { return x.M.CPU.TrustedContext }

	// 6. Policy hooks and the resource-management seam.
	f.installHooks()
	x.Interpose = &Gatekeeper{F: f}
	return f, nil
}

// hub returns the machine's telemetry hub (always present: the memory
// controller creates it).
func (f *Fidelius) hub() *telemetry.Hub { return f.M.Ctl.Telem }

// Stats reads the gate-transition counts from the unified telemetry
// registry. The counters themselves live on the hub — the gates increment
// them directly — so there is exactly one accounting mechanism.
func (f *Fidelius) Stats() GateStats {
	m := f.hub().M
	return GateStats{
		Gate1:   m.Gate1.Value(),
		Gate2:   m.Gate2.Value(),
		Gate3:   m.Gate3.Value(),
		Shadows: m.Shadows.Value(),
	}
}

// Name reports the configuration label.
func (f *Fidelius) Name() string {
	if f.EncryptAll {
		return "fidelius-enc"
	}
	return "fidelius"
}

// enterTrusted raises the trusted-context flag for the duration of a
// Fidelius entry point; the returned function restores the previous state.
func (f *Fidelius) enterTrusted() func() {
	c := f.M.CPU
	prev := c.TrustedContext
	c.TrustedContext = true
	return func() { c.TrustedContext = prev }
}

// trusted runs fn with the trusted-context flag set (Fidelius's own
// sanctioned operations).
func (f *Fidelius) trusted(fn func() error) error {
	c := f.M.CPU
	prev := c.TrustedContext
	c.TrustedContext = true
	defer func() { c.TrustedContext = prev }()
	return fn()
}

// protectRO maps a frame read-only in the hypervisor's address space.
func (f *Fidelius) protectRO(pfn hw.PFN) error {
	leaf, err := f.M.HostPT.Leaf(uint64(pfn.Addr()))
	if err != nil {
		return err
	}
	if !leaf.Present() {
		return nil // already unmapped: stronger than read-only
	}
	if err := f.M.HostPT.SetLeaf(uint64(pfn.Addr()), leaf.WithoutFlags(mmu.FlagW)); err != nil {
		return err
	}
	f.M.TLBs.FlushEntry(hw.HostASID, uint64(pfn.Addr()))
	return nil
}

// unprotect restores a writable mapping (teardown path).
func (f *Fidelius) unprotect(pfn hw.PFN) error {
	leaf, err := f.M.HostPT.Leaf(uint64(pfn.Addr()))
	if err != nil {
		return err
	}
	if !leaf.Present() {
		leaf = mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagNX)
	}
	if err := f.M.HostPT.SetLeaf(uint64(pfn.Addr()), leaf.WithFlags(mmu.FlagW)); err != nil {
		return err
	}
	f.M.TLBs.FlushEntry(hw.HostASID, uint64(pfn.Addr()))
	return nil
}

// unmapFromHypervisor removes a frame from the hypervisor's address space
// entirely (protected guest pages, Section 4.3.4).
func (f *Fidelius) unmapFromHypervisor(pfn hw.PFN) error {
	if err := f.M.HostPT.SetLeaf(uint64(pfn.Addr()), 0); err != nil {
		return err
	}
	f.M.TLBs.FlushEntry(hw.HostASID, uint64(pfn.Addr()))
	return nil
}

// remapToHypervisor restores a plain data mapping (shared pages).
func (f *Fidelius) remapToHypervisor(pfn hw.PFN) error {
	if err := f.M.HostPT.SetLeaf(uint64(pfn.Addr()), mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW|mmu.FlagNX)); err != nil {
		return err
	}
	f.M.TLBs.FlushEntry(hw.HostASID, uint64(pfn.Addr()))
	return nil
}

func (f *Fidelius) unmapStub(pageVA uint64) (mmu.PTE, error) {
	leaf, err := f.M.HostPT.Leaf(pageVA)
	if err != nil {
		return 0, err
	}
	if err := f.M.HostPT.SetLeaf(pageVA, 0); err != nil {
		return 0, err
	}
	f.M.TLBs.FlushEntry(hw.HostASID, pageVA)
	return leaf, nil
}

// GateCostBreakdown reports the type 3 gate's internal composition for
// the Section 7.2 discussion (TLB-entry flush and page-table write).
func GateCostBreakdown() (tlbFlush, ptWrite uint64) {
	return cycles.TLBFlushEntry, cycles.PTWrite
}

// recordViolation appends to the audit log and publishes the violation on
// the telemetry hub (counter always; event when tracing) — the "further
// auditing" surface of Section 5.3.
func (f *Fidelius) recordViolation(kind, detail string) {
	f.vmu.Lock()
	f.Violations = append(f.Violations, Violation{Kind: kind, Detail: detail})
	f.vmu.Unlock()
	h := f.hub()
	h.M.Violations.Inc()
	if h.Tracing() {
		h.EmitDetail(telemetry.KindViolation, 0, 0, 0, 0, 0, kind+": "+detail)
	}
	// Every gatekeeper denial also lands in the hash-chained audit
	// ledger, so an attack's outcome can be proven from the ledger rather
	// than asserted from in-memory state the hypervisor could scrub.
	h.Audit("gate-denial", 0, kind+": "+detail)
}

func (f *Fidelius) violation(kind, detail string) *cpu.ProtectionError {
	f.recordViolation(kind, detail)
	return &cpu.ProtectionError{Op: kind, Detail: detail}
}

// gate1 is the type 1 gate: disable interrupts, switch stacks, clear
// CR0.WP, sanity-check, run the policy-checked update, restore.
func (f *Fidelius) gate1(fn func() error) error {
	c := f.M.CPU
	h := f.hub()
	h.M.Gate1.Inc()
	if h.Tracing() {
		h.Emit(telemetry.KindGate1, 0, 0, cycles.Gate1, 0, 0)
	}
	c.Ctl.Cycles.Charge(cycles.Gate1)
	savedIF := c.IF
	c.IF = false
	return f.trusted(func() error {
		savedCR0 := c.CR0
		c.CR0 &^= cpu.CR0WP
		err := fn()
		c.CR0 = savedCR0
		c.IF = savedIF
		return err
	})
}

// Gate2Check is the type 2 gate: the checking-loop logic around a
// monopolised instruction. It is invoked as an address hook immediately
// after the instruction executes, verifying the policy held and reverting
// otherwise.
func (f *Fidelius) gate2Check(c *cpu.CPU) error {
	h := f.hub()
	h.M.Gate2.Inc()
	if h.Tracing() {
		h.Emit(telemetry.KindGate2, 0, 0, cycles.Gate2, 0, 0)
	}
	c.Ctl.Cycles.Charge(cycles.Gate2)
	if c.TrustedContext {
		return nil
	}
	// Post-instruction sanity: protection-relevant state must still
	// hold. A control-flow hijack that jumped straight to the
	// instruction is caught here (Section 6.2, "Disabling protection").
	if !c.WP() || !c.PagingEnabled() {
		c.CR0 |= cpu.CR0WP | cpu.CR0PG
		return f.violation("checking-loop", "protection bits cleared by direct execution")
	}
	if c.CR4&cpu.CR4SMEP == 0 {
		c.CR4 |= cpu.CR4SMEP
		return f.violation("checking-loop", "SMEP cleared by direct execution")
	}
	if c.EFER&cpu.EFERNXE == 0 {
		c.EFER |= cpu.EFERNXE
		return f.violation("checking-loop", "NXE cleared by direct execution")
	}
	return nil
}

// quiet runs fn without accumulating simulated cycles: used for trusted
// mechanics whose cost the gate constants already model (the paper's
// 306/16/339-cycle figures are end-to-end).
func (f *Fidelius) quiet(fn func() error) error {
	t := f.M.Ctl.Cycles.Total()
	err := fn()
	f.M.Ctl.Cycles.SetTotal(t)
	return err
}

// gate3 is the type 3 gate: temporarily add the mapping for an unmapped
// stub page, sanity-check, execute, withdraw the mapping and flush the
// affected TLB entries.
func (f *Fidelius) gate3(pageVA uint64, saved mmu.PTE, exec func() error) error {
	c := f.M.CPU
	h := f.hub()
	h.M.Gate3.Inc()
	if h.Tracing() {
		h.Emit(telemetry.KindGate3, 0, 0, cycles.Gate3, pageVA, 0)
	}
	c.Ctl.Cycles.Charge(cycles.Gate3)
	return f.trusted(func() error {
		if err := f.quiet(func() error { return f.M.HostPT.SetLeaf(pageVA, saved) }); err != nil {
			return err
		}
		err := exec()
		if uerr := f.quiet(func() error { return f.M.HostPT.SetLeaf(pageVA, 0) }); uerr != nil && err == nil {
			err = uerr
		}
		f.M.TLBs.FlushEntry(hw.HostASID, pageVA)
		return err
	})
}

// BenchGate1 measures the type 1 gate transition cost (Section 7.2). Like
// any other gate traversal it runs under the gate lock.
func (f *Fidelius) BenchGate1(n int) uint64 {
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	start := f.M.Ctl.Cycles.Total()
	for i := 0; i < n; i++ {
		_ = f.gate1(func() error { return nil })
	}
	return f.M.Ctl.Cycles.Sub(start) / uint64(n)
}

// BenchGate2 measures the type 2 gate (checking loop) cost.
func (f *Fidelius) BenchGate2(n int) uint64 {
	start := f.M.Ctl.Cycles.Total()
	for i := 0; i < n; i++ {
		_ = f.gate2Check(f.M.CPU)
	}
	return f.M.Ctl.Cycles.Sub(start) / uint64(n)
}

// BenchGate3 measures the type 3 gate (add new mapping) cost, excluding
// the gated instruction itself.
func (f *Fidelius) BenchGate3(n int) uint64 {
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	start := f.M.Ctl.Cycles.Total()
	for i := 0; i < n; i++ {
		_ = f.gate3(f.M.Stubs.VmrunPg, f.savedVmrunPTE, func() error { return nil })
	}
	return f.M.Ctl.Cycles.Sub(start) / uint64(n)
}

// installHooks wires the Table 2 instruction policies, the execute-once
// policy, the checking loops, and the page-fault mediation for write-once
// and write-forbidding policies.
func (f *Fidelius) installHooks() {
	c := f.M.CPU

	c.Hooks.CR0Write = func(c *cpu.CPU, old, new uint64) error {
		if c.TrustedContext {
			return nil
		}
		if old&cpu.CR0PG != 0 && new&cpu.CR0PG == 0 {
			return f.violation("mov cr0", "PG bit cannot be cleared")
		}
		if old&cpu.CR0WP != 0 && new&cpu.CR0WP == 0 {
			return f.violation("mov cr0", "WP bit cannot be cleared")
		}
		return nil
	}
	c.Hooks.CR4Write = func(c *cpu.CPU, old, new uint64) error {
		if c.TrustedContext {
			return nil
		}
		if old&cpu.CR4SMEP != 0 && new&cpu.CR4SMEP == 0 {
			return f.violation("mov cr4", "SMEP bit cannot be cleared")
		}
		return nil
	}
	c.Hooks.MSRWrite = func(c *cpu.CPU, msr uint32, old, new uint64) error {
		if c.TrustedContext {
			return nil
		}
		if msr == cpu.MSREFER && old&cpu.EFERNXE != 0 && new&cpu.EFERNXE == 0 {
			return f.violation("wrmsr", "NXE bit in EFER cannot be cleared")
		}
		return nil
	}
	c.Hooks.CR3Write = func(c *cpu.CPU, old, new uint64) error {
		// No trusted-context exemption: Fidelius itself never switches
		// address spaces (that is the whole point of the WP-based type
		// 1 gate), so every CR3 target must be a valid root.
		e, err := f.PIT.Get(hw.PhysAddr(new).Frame())
		if err != nil {
			return err
		}
		if !e.Valid() || e.Use() != xen.UseXenPageTable {
			return f.violation("mov cr3", fmt.Sprintf("target cr3 %#x is not a valid page table", new))
		}
		return nil
	}
	c.Hooks.Exec = func(c *cpu.CPU, addr uint64, op isa.Op) error {
		if op == isa.OpLgdt || op == isa.OpLidt {
			f.execCount[addr]++
			if f.execCount[addr] > 1 && !c.TrustedContext {
				return f.violation("execute-once", fmt.Sprintf("%v at %#x executed more than once", op, addr))
			}
		}
		return nil
	}
	// Checking loops (type 2 gates) immediately after the monopolised
	// instructions: each stub is two bytes, so the hook sits at +2.
	c.Hooks.Addr = map[uint64]func(*cpu.CPU) error{
		f.M.Stubs.MovCR0 + 2: f.gate2Check,
		f.M.Stubs.MovCR4 + 2: f.gate2Check,
		f.M.Stubs.Wrmsr + 2:  f.gate2Check,
		f.M.Stubs.Lgdt + 2:   f.gate2Check,
		f.M.Stubs.Lidt + 2:   f.gate2Check,
	}

	c.PageFaultFn = f.pageFault
	c.PageFaultDoneFn = func(*cpu.CPU) { f.settlePending() }
}

// pageFault mediates write faults: write-once pages get their single
// sanctioned write; writes to hypervisor code pages are impeded and
// logged (write-forbidding); everything else propagates.
func (f *Fidelius) pageFault(c *cpu.CPU, pf *mmu.PageFault) bool {
	if pf.Access != mmu.Write || pf.Reason != mmu.WriteProtected {
		return false
	}
	pfn := hw.PhysAddr(pf.VA).Frame() // direct map: VA == PA
	if vec, ok := f.writeOnce[pfn]; ok {
		if vec.anyUsed() {
			f.recordViolation("write-once", fmt.Sprintf("second write to page %#x", uint64(pfn)))
			return false
		}
		vec.markRange(0, hw.PageSize)
		if err := f.trusted(func() error {
			leaf, err := f.M.HostPT.Leaf(uint64(pfn.Addr()))
			if err != nil {
				return err
			}
			return f.M.HostPT.SetLeaf(uint64(pfn.Addr()), leaf.WithFlags(mmu.FlagW))
		}); err != nil {
			return false
		}
		f.M.TLBs.FlushEntry(hw.HostASID, uint64(pfn.Addr()))
		f.pendingReprotect = append(f.pendingReprotect, pfn)
		return true
	}
	e, err := f.PIT.Get(pfn)
	if err == nil && e.Valid() && e.Use() == xen.UseXenCode {
		f.recordViolation("write-forbidding", fmt.Sprintf("write to code page %#x", uint64(pfn)))
		return false
	}
	return false
}

// settlePending re-arms write-once pages after their mediated write.
func (f *Fidelius) settlePending() {
	for _, pfn := range f.pendingReprotect {
		_ = f.protectRO(pfn)
	}
	f.pendingReprotect = nil
}

// ExecPrivStub runs one of the monopolised, still-mapped privileged stubs
// through its type 2 gate (benchmark entry point).
func (f *Fidelius) ExecPrivStub(addr, r0 uint64) error {
	return f.M.ExecStub(addr, r0)
}

// VMState returns Fidelius's record for a protected domain.
func (f *Fidelius) VM(d *xen.Domain) (*VMState, bool) {
	return f.lookupVM(d.ID)
}

// lookupVM reads a VM record under the gate lock (the map is trusted
// state shared with the gatekeeper's hot paths).
func (f *Fidelius) lookupVM(id xen.DomID) (*VMState, bool) {
	f.M.Host.Lock()
	defer f.M.Host.Unlock()
	st, ok := f.vms[id]
	return st, ok
}

// storeVM publishes a VM record under the gate lock.
func (f *Fidelius) storeVM(st *VMState) {
	f.M.Host.Lock()
	f.vms[st.Dom.ID] = st
	f.M.Host.Unlock()
}

// ViolationLog returns a copy of the audit log, safe against concurrent
// gate activity.
func (f *Fidelius) ViolationLog() []Violation {
	f.vmu.Lock()
	defer f.vmu.Unlock()
	return append([]Violation{}, f.Violations...)
}
