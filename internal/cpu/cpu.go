// Package cpu models the processor core the simulator runs on: general
// purpose registers, control registers with x86 semantics (CR0.PG/WP,
// CR4.SMEP, EFER.NXE), guest/host modes, an interpreter for the tiny ISA,
// and the VMCB world-switch structure of AMD-V.
//
// The properties Fidelius builds on are reproduced faithfully:
//
//   - Supervisor stores honour the page-table W bit only while CR0.WP is
//     set; clearing WP is how the type 1 gate opens its write window, and
//     "WP cannot be cleared by the hypervisor" is what the MOV CR0 policy
//     enforces.
//   - Clearing CR0.PG disables translation entirely (raw physical access),
//     which is why the PG policy exists.
//   - MOV CR3 switches the address space and flushes the whole TLB, which
//     is why Fidelius avoids the separate-address-space design.
//   - Instruction fetch honours NX (when EFER.NXE is set) and SMEP, and a
//     fetch from an unmapped page faults — the mechanism behind type 3
//     gates for VMRUN and MOV CR3.
package cpu

import (
	"errors"
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/mmu"
)

// Control register bits.
const (
	CR0PG = uint64(1) << 31 // paging enable
	CR0WP = uint64(1) << 16 // supervisor write protection

	CR4SMEP = uint64(1) << 20 // supervisor-mode execution prevention

	EFERNXE = uint64(1) << 11 // no-execute enable

	// MSREFER is the MSR index of EFER.
	MSREFER = 0xC0000080
)

// NumRegs is the number of general purpose registers.
const NumRegs = 8

// SP is the register used as the stack pointer by call/ret.
const SP = 7

// Mode is the processor world.
type Mode int

// Processor worlds.
const (
	Host Mode = iota
	GuestMode
)

// ErrHalted is returned by Run when the code executes HLT.
var ErrHalted = errors.New("cpu: halted")

// ProtectionError reports an operation rejected by an installed policy
// hook (the simulated Fidelius checking loop reverting an invalid
// privileged operation).
type ProtectionError struct {
	Op     string
	Detail string
}

func (e *ProtectionError) Error() string {
	return fmt.Sprintf("cpu: protection violation in %s: %s", e.Op, e.Detail)
}

// Hooks let a trusted context interpose on the instruction stream. They
// model the sanity-check logic Fidelius places around monopolised
// privileged instructions: AddrHooks fire when RIP reaches an address
// (the checking loop "right after the instruction"), and the CR/MSR hooks
// fire on writes so a policy can reject them.
type Hooks struct {
	// Addr maps a code virtual address to a callback run when RIP
	// reaches it during Run.
	Addr map[uint64]func(c *CPU) error
	// CR0Write, CR3Write, CR4Write and MSRWrite, when non-nil, may veto
	// a control-state write by returning an error; the write is then
	// reverted before the error propagates.
	CR0Write func(c *CPU, old, new uint64) error
	CR3Write func(c *CPU, old, new uint64) error
	CR4Write func(c *CPU, old, new uint64) error
	MSRWrite func(c *CPU, msr uint32, old, new uint64) error
	// Exec fires before executing each instruction, with its address;
	// used by execute-once policies.
	Exec func(c *CPU, addr uint64, op isa.Op) error
}

// CPU is one simulated core. It is owned by a single goroutine at a time;
// the guest/host world switch hands ownership across a channel.
type CPU struct {
	Ctl *hw.Controller
	TLB *mmu.TLB

	Regs [NumRegs]uint64
	RIP  uint64
	CR0  uint64
	CR3  uint64
	CR4  uint64
	EFER uint64

	Mode Mode
	// IF is the interrupt flag; gates disable interrupts during
	// transitions.
	IF bool

	// TrustedContext is set while execution is inside the Fidelius
	// context (entered through a gate). Policy hooks consult it: the
	// single sanctioned copy of each privileged instruction lives in
	// Fidelius's code and runs with this flag set; the same operation
	// from hypervisor context is vetoed.
	TrustedContext bool

	// VMRunFn is invoked by the VMRUN instruction with the VMCB physical
	// address; the platform installs the world switch here.
	VMRunFn func(vmcbPA uint64) error

	// Hook points for Fidelius.
	Hooks Hooks

	// PageFaultFn, when non-nil, is offered every host page fault before
	// it propagates; returning true retries the faulting operation.
	PageFaultFn func(c *CPU, f *mmu.PageFault) bool

	// PageFaultDoneFn, when non-nil, runs after an access whose fault
	// PageFaultFn handled has completed. Fidelius uses it to re-arm
	// write-once protection immediately after the mediated write.
	PageFaultDoneFn func(c *CPU)
}

// New returns a CPU in host mode with paging disabled and interrupts on.
func New(ctl *hw.Controller) *CPU {
	c := &CPU{Ctl: ctl, TLB: mmu.NewTLB(), IF: true, CR0: 0, EFER: EFERNXE}
	if ctl != nil {
		c.TLB.Register(ctl.Telem)
	}
	return c
}

func (c *CPU) charge(n uint64) { c.Ctl.Cycles.Charge(n) }

// Cycles exposes the shared cycle counter.
func (c *CPU) Cycles() *cycles.Counter { return c.Ctl.Cycles }

// PagingEnabled reports CR0.PG.
func (c *CPU) PagingEnabled() bool { return c.CR0&CR0PG != 0 }

// WP reports CR0.WP.
func (c *CPU) WP() bool { return c.CR0&CR0WP != 0 }

// hostSpace returns the current host page-table space.
func (c *CPU) hostSpace() *mmu.Space {
	return &mmu.Space{Ctl: c.Ctl, Root: hw.PhysAddr(c.CR3).Frame()}
}

// translate resolves a host virtual address for the given access,
// honouring CR0.PG, CR0.WP, EFER.NXE and CR4.SMEP. Successful read and
// execute translations are cached in the TLB under ASID 0; writes always
// walk so that WP transitions take immediate effect.
func (c *CPU) translate(va uint64, access mmu.AccessType) (hw.PhysAddr, mmu.Translation, error) {
	if !c.PagingEnabled() {
		// Paging off: raw physical addressing, no protection at all.
		return hw.PhysAddr(va), mmu.Translation{HPA: hw.PhysAddr(mmu.PageBase(va))}, nil
	}
	if access != mmu.Write {
		if tr, ok := c.TLB.Lookup(hw.HostASID, va, access); ok {
			c.charge(1)
			return tr.HPA + hw.PhysAddr(va&(hw.PageSize-1)), tr, nil
		}
	}
	tr, err := c.hostSpace().Translate(va, access, c.WP(), false)
	if err != nil {
		pf, ok := err.(*mmu.PageFault)
		if ok && pf.Reason == mmu.NXViolation && c.EFER&EFERNXE == 0 {
			// NX ignored with NXE clear — why the WRMSR policy
			// forbids clearing it.
			tr, err = c.hostSpace().Translate(va, mmu.Read, c.WP(), false)
			if err != nil {
				return 0, mmu.Translation{}, err
			}
		} else {
			return 0, mmu.Translation{}, err
		}
	}
	if access == mmu.Execute && c.CR4&CR4SMEP != 0 && tr.PTE.User() {
		return 0, mmu.Translation{}, &mmu.PageFault{VA: va, Access: access, Reason: mmu.UserSupervisor}
	}
	if access != mmu.Write {
		c.TLB.Insert(hw.HostASID, va, access, tr)
	}
	return tr.HPA + hw.PhysAddr(va&(hw.PageSize-1)), tr, nil
}

// access performs a paged host access, splitting at page boundaries and
// retrying after a handled page fault.
func (c *CPU) access(va uint64, buf []byte, acc mmu.AccessType) error {
	done := 0
	handled := false
	defer func() {
		if handled && c.PageFaultDoneFn != nil {
			c.PageFaultDoneFn(c)
		}
	}()
	for done < len(buf) {
		cur := va + uint64(done)
		n := int(hw.PageSize - cur&(hw.PageSize-1))
		if n > len(buf)-done {
			n = len(buf) - done
		}
		pa, tr, err := c.translate(cur, acc)
		if err != nil {
			if pf, ok := err.(*mmu.PageFault); ok && c.PageFaultFn != nil && c.PageFaultFn(c, pf) {
				handled = true
				continue // handled: retry
			}
			return err
		}
		ha := hw.Access{PA: pa, Encrypted: tr.Encrypted, ASID: hw.HostASID}
		if acc == mmu.Write {
			err = c.Ctl.Write(ha, buf[done:done+n])
		} else {
			err = c.Ctl.Read(ha, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ReadVA reads host virtual memory with supervisor permissions.
func (c *CPU) ReadVA(va uint64, buf []byte) error { return c.access(va, buf, mmu.Read) }

// WriteVA writes host virtual memory with supervisor permissions,
// honouring CR0.WP. This is the path hypervisor code uses for every store,
// including page-table and grant-table updates — which is exactly where
// Fidelius's write protection bites.
func (c *CPU) WriteVA(va uint64, data []byte) error { return c.access(va, data, mmu.Write) }

// Read64 reads a little-endian uint64 at va.
func (c *CPU) Read64(va uint64) (uint64, error) {
	var b [8]byte
	if err := c.ReadVA(va, b[:]); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// Write64 writes a little-endian uint64 at va.
func (c *CPU) Write64(va, val uint64) error {
	var b [8]byte
	put64(b[:], val)
	return c.WriteVA(va, b[:])
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
