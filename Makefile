GO ?= go

.PHONY: all build test race bench benchsmoke benchdiff vet fmt check fuzz stress lockrank migrate trace examples tables attacks xsa demo serve serve-smoke clean

all: build test

check: build vet test lockrank race stress fuzz benchsmoke serve-smoke
	$(GO) run ./examples/migration
	$(GO) run ./cmd/fidelius-serve -tenants 2 -clients 16 -duration 100 -tamper 1

# The whole test suite with the debug lock-rank checker armed: every
# ranked acquisition is validated against the documented lock order
# (domain -> shared shards -> gate -> registries -> bus -> leaves), and
# any inversion panics with both ranks named.
lockrank:
	FIDELIUS_LOCKRANK=1 $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short bursts over each bundle-unmarshaling fuzz target; the corpus
# seeds cover the valid shapes, fuzzing hunts for parser panics and
# validation gaps in attacker-supplied wire bytes.
fuzz:
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzUnmarshalGuestBundle -fuzztime 5s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzUnmarshalMigrationBundle -fuzztime 5s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzUnmarshalGEKBundle -fuzztime 5s

# Concurrency stress: the parallel-scheduling, shared-memory-path,
# lifecycle-churn and grant/event-storm suites, repeated under the race
# detector at several core counts so both the contended and the fully
# serialized interleavings get exercised. The suites arm the lock-rank
# checker themselves; FIDELIUS_LOCKRANK=1 extends it to every test.
# (-short skips the single-domain parity guard, which is a wall-clock
# benchmark, not a race hunt; plain `make race` still runs it once.)
stress:
	GOMAXPROCS=1 $(GO) test -race -short -count=5 -run 'Concurrent|Parallel' ./...
	GOMAXPROCS=2 $(GO) test -race -short -count=5 -run 'Concurrent|Parallel' ./...
	GOMAXPROCS=4 $(GO) test -race -short -count=5 -run 'Concurrent|Parallel' ./...

migrate:
	$(GO) run ./cmd/fidelius-migrate
	$(GO) run ./cmd/fidelius-migrate -faulty
	$(GO) run ./cmd/fidelius-migrate -tamper

# Full benchmark run, captured as a JSON artifact for regression
# diffing. -count=3 lets benchjson take the per-metric median, so one
# wall-clock outlier on a busy container cannot poison the artifact.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 . 2>&1 | $(GO) run ./cmd/benchjson -o BENCH_10.json

# One-iteration pass over every benchmark: catches bit-rot in the
# benchmark harness without paying for a full measurement run.
benchsmoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

# Regression gate between two captured benchmark artifacts, e.g.
# `make benchdiff BENCH_OLD=BENCH_8.json BENCH_NEW=BENCH_9.json`.
# Deterministic cycle metrics gate tight (they are bit-reproducible);
# wall-clock ns/op gets a looser threshold because goroutine-heavy
# benchmarks on the shared 1-CPU container swing ±15% run-to-run even
# under the median-of-3 capture.
BENCH_OLD ?= BENCH_9.json
BENCH_NEW ?= BENCH_10.json
BENCH_THRESHOLD ?= 10
BENCH_WALL_THRESHOLD ?= 20
benchdiff:
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) -wall-threshold $(BENCH_WALL_THRESHOLD) $(BENCH_OLD) $(BENCH_NEW)

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secureio
	$(GO) run ./examples/migration
	$(GO) run ./examples/memsharing
	$(GO) run ./examples/extensions

tables:
	$(GO) run ./cmd/benchtab

attacks:
	$(GO) run ./cmd/attacksim

xsa:
	$(GO) run ./cmd/xsastats -mechanisms

demo:
	$(GO) run ./cmd/fidelius-demo

# Multi-tenant KV serving scenario: 8 tenant VMs, 1024 client sessions,
# open-loop load, attestation-gated admission, per-tenant SLO table.
serve:
	$(GO) run ./cmd/fidelius-serve

# Serving smoke gates, in escalating order:
#  1. put-heavy at the *old* seek-bound knee (~1.4 ops/Mcycle fleet =
#     0.35/tenant x 4): group commit must cruise here.
#  2. put-heavy at the *new* knee (1.6/tenant x 4 = 6.4 fleet): the
#     adaptive-depth hold policy must keep the p50 objective passing.
#  3. get-heavy (93% gets over a hot working set): the guest read cache
#     path must hold its SLOs while serving repeated reads.
#  4. the long-lived tenant: one tenant overwrites its store region
#     several times; online compaction must keep it serving (at least
#     one compaction, zero errored or mismatched ops).
# Each gate exits nonzero on failure.
serve-smoke:
	$(GO) run ./cmd/fidelius-serve -tenants 4 -clients 16 -rate 0.35 -duration 60 -putfrac 0.7 -delfrac 0.1 -smoke
	$(GO) run ./cmd/fidelius-serve -tenants 4 -clients 16 -ops 2 -rate 1.6 -putfrac 0.7 -delfrac 0.1 -smoke
	$(GO) run ./cmd/fidelius-serve -tenants 4 -clients 8 -ops 8 -rate 1.0 -getfrac 0.93 -smoke
	$(GO) run ./cmd/fidelius-serve -compact-smoke

trace:
	$(GO) run ./cmd/fidelius-demo -trace fidelius-trace.json -metrics
	@echo "load fidelius-trace.json in chrome://tracing or https://ui.perfetto.dev"

clean:
	$(GO) clean ./...
