package hw

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// ASID is an address space identifier tagging encrypted accesses. ASID 0 is
// reserved for the host (SME) key.
type ASID uint16

// HostASID is the key slot used for host (SME) encryption, i.e. pages the
// hypervisor itself marks with the C-bit.
const HostASID ASID = 0

// NumSlots is the number of key slots in the engine — the full ASID space,
// so slot lookup is a single bounds-check-free array index.
const NumSlots = 1 << 16

// KeySize is the size in bytes of a VM encryption key (Kvek).
const KeySize = 32

// Key is a raw VM encryption key. The engine derives independent data and
// tweak AES-128 subkeys from it, giving an XEX construction tweaked by the
// physical block address — matching AMD's documented physical-address
// tweak, which is what makes the replay/remap analysis in the paper
// meaningful (the same plaintext encrypts differently at different
// addresses).
type Key [KeySize]byte

// ErrNoKey reports an encrypted access whose ASID has no installed key.
var ErrNoKey = errors.New("hw: no key installed for ASID")

// PageCipher is the XEX transform for one key: AES over 16-byte blocks,
// tweaked by physical address. The SEV firmware holds one per guest
// context (it must encrypt pages before the key is ever installed in the
// controller), and the Engine holds one per active ASID.
//
// All methods are safe for concurrent use: the underlying cipher.Block
// values are stateless after construction, so the bulk-crypto worker pool
// can drive one PageCipher from several goroutines at once.
type PageCipher struct {
	data  cipher.Block
	tweak cipher.Block
}

// NewPageCipher derives the data and tweak AES subkeys from a raw key.
func NewPageCipher(key Key) (*PageCipher, error) {
	dk := sha256.Sum256(append([]byte("fidelius-data-key:"), key[:]...))
	tk := sha256.Sum256(append([]byte("fidelius-tweak-key:"), key[:]...))
	data, err := aes.NewCipher(dk[:16])
	if err != nil {
		return nil, err
	}
	tweak, err := aes.NewCipher(tk[:16])
	if err != nil {
		return nil, err
	}
	return &PageCipher{data: data, tweak: tweak}, nil
}

// tweakFor computes the XEX tweak block for the 16-byte-aligned physical
// address.
func (s *PageCipher) tweakFor(pa PhysAddr) [BlockSize]byte {
	var in, out [BlockSize]byte
	binary.LittleEndian.PutUint64(in[:8], uint64(pa))
	s.tweak.Encrypt(out[:], in[:])
	return out
}

// EncryptBlock encrypts one 16-byte block in place, tweaked by its
// physical address.
func (s *PageCipher) EncryptBlock(pa PhysAddr, b []byte) {
	t := s.tweakFor(pa)
	for i := range b {
		b[i] ^= t[i]
	}
	s.data.Encrypt(b, b)
	for i := range b {
		b[i] ^= t[i]
	}
}

// DecryptBlock decrypts one 16-byte block in place, tweaked by its
// physical address.
func (s *PageCipher) DecryptBlock(pa PhysAddr, b []byte) {
	t := s.tweakFor(pa)
	for i := range b {
		b[i] ^= t[i]
	}
	s.data.Decrypt(b, b)
	for i := range b {
		b[i] ^= t[i]
	}
}

// EncryptLine encrypts a block-aligned span in place, tweaked block by
// block exactly as repeated EncryptBlock calls would — same ciphertext
// bytes — but with the tweak input buffer reused across blocks and no
// per-block function-call or error overhead. pa must be 16-byte aligned;
// any trailing sub-block bytes are left untouched.
func (s *PageCipher) EncryptLine(pa PhysAddr, b []byte) {
	var in, t [BlockSize]byte
	for off := 0; off+BlockSize <= len(b); off += BlockSize {
		binary.LittleEndian.PutUint64(in[:8], uint64(pa)+uint64(off))
		s.tweak.Encrypt(t[:], in[:])
		blk := b[off : off+BlockSize]
		for i := range blk {
			blk[i] ^= t[i]
		}
		s.data.Encrypt(blk, blk)
		for i := range blk {
			blk[i] ^= t[i]
		}
	}
}

// DecryptLine decrypts a block-aligned span in place; the inverse of
// EncryptLine with identical per-block tweak semantics.
func (s *PageCipher) DecryptLine(pa PhysAddr, b []byte) {
	var in, t [BlockSize]byte
	for off := 0; off+BlockSize <= len(b); off += BlockSize {
		binary.LittleEndian.PutUint64(in[:8], uint64(pa)+uint64(off))
		s.tweak.Encrypt(t[:], in[:])
		blk := b[off : off+BlockSize]
		for i := range blk {
			blk[i] ^= t[i]
		}
		s.data.Decrypt(blk, blk)
		for i := range blk {
			blk[i] ^= t[i]
		}
	}
}

// EncryptPage encrypts one full page in place. b must be PageSize bytes
// and pa page aligned.
func (s *PageCipher) EncryptPage(pa PhysAddr, b []byte) { s.EncryptLine(pa, b) }

// DecryptPage decrypts one full page in place.
func (s *PageCipher) DecryptPage(pa PhysAddr, b []byte) { s.DecryptLine(pa, b) }

// Engine is the inline AES memory-encryption engine living in the memory
// controller. Keys are installed per ASID by the SEV firmware (ACTIVATE)
// and never leave the engine.
//
// The slot table is a fixed array of atomically published cipher pointers
// indexed directly by ASID — the software analogue of the hardware key
// RAM. The memory hot path (one lookup per cache line, previously one
// RWMutex acquisition plus a map probe per 16-byte block) resolves a slot
// with a single atomic load.
type Engine struct {
	slots [NumSlots]atomic.Pointer[PageCipher]
	keys  atomic.Int64
}

// NewEngine returns an engine with no keys installed.
func NewEngine() *Engine {
	return &Engine{}
}

// Install loads a key into the slot for the given ASID, overwriting any
// previous key. Hardware-wise this is the effect of the SEV ACTIVATE
// command (or BIOS SME enablement for ASID 0).
func (e *Engine) Install(asid ASID, key Key) error {
	slot, err := NewPageCipher(key)
	if err != nil {
		return err
	}
	if e.slots[asid].Swap(slot) == nil {
		e.keys.Add(1)
	}
	return nil
}

// Uninstall removes the key for the ASID (SEV DEACTIVATE).
func (e *Engine) Uninstall(asid ASID) {
	if e.slots[asid].Swap(nil) != nil {
		e.keys.Add(-1)
	}
}

// Keys reports how many key slots are populated.
func (e *Engine) Keys() int {
	return int(e.keys.Load())
}

// Installed reports whether a key is present for the ASID.
func (e *Engine) Installed(asid ASID) bool {
	return e.slots[asid].Load() != nil
}

// Slot resolves the cipher for an ASID. Hot paths call this once per
// transaction and then drive the returned PageCipher directly, instead of
// re-resolving (and re-checking the error) per block.
func (e *Engine) Slot(asid ASID) (*PageCipher, error) {
	s := e.slots[asid].Load()
	if s == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoKey, asid)
	}
	return s, nil
}

// EncryptBlock encrypts one 16-byte block in place, tweaked by its
// physical address. pa must be block aligned and len(b) == BlockSize.
func (e *Engine) EncryptBlock(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.Slot(asid)
	if err != nil {
		return err
	}
	s.EncryptBlock(pa, b)
	return nil
}

// DecryptBlock decrypts one 16-byte block in place, tweaked by its
// physical address.
func (e *Engine) DecryptBlock(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.Slot(asid)
	if err != nil {
		return err
	}
	s.DecryptBlock(pa, b)
	return nil
}

// EncryptLine encrypts a block-aligned span in place with the ASID's key,
// resolving the slot once.
func (e *Engine) EncryptLine(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.Slot(asid)
	if err != nil {
		return err
	}
	s.EncryptLine(pa, b)
	return nil
}

// DecryptLine decrypts a block-aligned span in place with the ASID's key.
func (e *Engine) DecryptLine(asid ASID, pa PhysAddr, b []byte) error {
	s, err := e.Slot(asid)
	if err != nil {
		return err
	}
	s.DecryptLine(pa, b)
	return nil
}

// EncryptPage encrypts one page in place with the ASID's key.
func (e *Engine) EncryptPage(asid ASID, pa PhysAddr, b []byte) error {
	return e.EncryptLine(asid, pa, b)
}

// DecryptPage decrypts one page in place with the ASID's key.
func (e *Engine) DecryptPage(asid ASID, pa PhysAddr, b []byte) error {
	return e.DecryptLine(asid, pa, b)
}
