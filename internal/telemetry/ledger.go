package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Security audit ledger: an append-only, hash-chained record of the
// platform's security-relevant decisions — gatekeeper denials,
// integrity-tag failures, NPT remap and ASID-reuse detections,
// attestation state transitions. SEVered and "Insecure Until Proven
// Updated" both succeed against real SEV partly because the victim has no
// forensic record of hypervisor-side mappings and firmware state; the
// ledger is the defensive counterpart: each record's hash covers the
// previous record's hash, so a hypervisor that exfiltrates and then edits
// the trail cannot produce a consistent chain, and a holder of the live
// head hash detects truncation as well as tampering.
//
// Hash-chain invariant: Hash_i = SHA-256(Prev_i ‖ Seq_i ‖ TS_i ‖ VM_i ‖
// len(Class_i) ‖ Class_i ‖ len(Detail_i) ‖ Detail_i) with Prev_0 = 0 and
// Prev_i = Hash_{i-1}; the ledger head equals the last record's hash.
// Length prefixes make the class/detail boundary unambiguous.
//
// Lock order: the ledger mutex is a leaf — Append and Records never call
// out while holding it, so it can be taken under any platform lock (a
// domain lock, the gate lock, a shared-structure shard) without ordering
// concerns.

// Record is one audit ledger entry.
type Record struct {
	Seq    uint64   `json:"seq"`
	TS     uint64   `json:"ts"` // cycle timestamp at append
	Class  string   `json:"class"`
	VM     uint32   `json:"vm"`
	Detail string   `json:"detail"`
	Prev   [32]byte `json:"prev"`
	Hash   [32]byte `json:"hash"`
}

func (r *Record) computeHash() [32]byte {
	h := sha256.New()
	h.Write(r.Prev[:])
	var num [8]byte
	binary.LittleEndian.PutUint64(num[:], r.Seq)
	h.Write(num[:])
	binary.LittleEndian.PutUint64(num[:], r.TS)
	h.Write(num[:])
	binary.LittleEndian.PutUint64(num[:], uint64(r.VM))
	h.Write(num[:])
	binary.LittleEndian.PutUint64(num[:], uint64(len(r.Class)))
	h.Write(num[:])
	h.Write([]byte(r.Class))
	binary.LittleEndian.PutUint64(num[:], uint64(len(r.Detail)))
	h.Write(num[:])
	h.Write([]byte(r.Detail))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashRecord recomputes the hash a record should carry given its fields
// and Prev link. Exposed for external verifiers (and for the tamper
// attack simulation, whose adversary re-hashes edited records).
func HashRecord(r Record) [32]byte { return r.computeHash() }

// Ledger is the append-only chain. Unlike the event tracer it never
// drops: security records are few and each one matters.
type Ledger struct {
	now func() uint64

	mu   sync.Mutex
	recs []Record
	head [32]byte
}

// NewLedger returns an empty ledger stamping records with now (nil for an
// always-zero clock).
func NewLedger(now func() uint64) *Ledger {
	return &Ledger{now: now}
}

// Append adds one record to the chain and returns it.
func (l *Ledger) Append(class string, vm uint32, detail string) Record {
	if l == nil {
		return Record{}
	}
	var ts uint64
	if l.now != nil {
		ts = l.now()
	}
	l.mu.Lock()
	r := Record{
		Seq:    uint64(len(l.recs)),
		TS:     ts,
		Class:  class,
		VM:     vm,
		Detail: detail,
		Prev:   l.head,
	}
	r.Hash = r.computeHash()
	l.recs = append(l.recs, r)
	l.head = r.Hash
	l.mu.Unlock()
	return r
}

// Len reports the number of records.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the chain, oldest first.
func (l *Ledger) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record{}, l.recs...)
}

// Head returns the current chain head (the last record's hash; zero when
// empty). A verifier holding the head detects truncation of an exported
// copy, not just in-place tampering.
func (l *Ledger) Head() [32]byte {
	if l == nil {
		return [32]byte{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Verify checks the ledger's own chain.
func (l *Ledger) Verify() error {
	if l == nil {
		return nil
	}
	return VerifyChain(l.Records(), l.Head())
}

// VerifyChain checks an exported copy of the ledger against the expected
// head hash: the genesis record must chain from zero, sequence numbers
// must be contiguous from zero, every record's hash must recompute, each
// Prev must equal the previous Hash, and the final hash must equal head.
// Any mutation, reorder, insertion, deletion or truncation fails.
func VerifyChain(recs []Record, head [32]byte) error {
	var prev [32]byte
	for i := range recs {
		r := &recs[i]
		if r.Seq != uint64(i) {
			return fmt.Errorf("telemetry: ledger record %d has seq %d (chain spliced)", i, r.Seq)
		}
		if r.Prev != prev {
			return fmt.Errorf("telemetry: ledger record %d breaks the chain (prev mismatch)", i)
		}
		if got := r.computeHash(); got != r.Hash {
			return fmt.Errorf("telemetry: ledger record %d tampered (hash mismatch)", i)
		}
		prev = r.Hash
	}
	if prev != head {
		return fmt.Errorf("telemetry: ledger head mismatch after %d records (truncated or forked)", len(recs))
	}
	return nil
}
