package telemetry

// Causal span tracing: a Span is an interval with an identity, a parent
// link and labelled attributes, so a whole domain lifetime — scheduler
// session, per-quantum VMEXIT round trips, the SEV firmware commands a
// launch performs, pre-copy migration rounds, bulk-crypto pool batches —
// reads as one causal tree instead of a flat event stream.
//
// Cost model matches the event tracer: the disabled path (no tracer
// attached) is a nil test plus one atomic load in OpenSpan/OpenScope,
// which then return a nil *OpenSpan whose every method is a nil-safe
// no-op — proven allocation-free by TestDisabledFlightRecorderAllocFree
// and the <5% overhead guard in internal/hw.
//
// Parent propagation uses an "ambient" current-span register on the hub
// (one lock-free atomic): OpenScope parents under the current ambient
// span and installs itself as the new ambient until Close, which restores
// the previous value with a compare-and-swap so concurrent scopes cannot
// clobber each other. In the deterministic serial mode this yields exact
// nesting; under ScheduleParallel, code that needs exact attribution
// passes an explicit parent (OpenSpan — what the parallel scheduler's
// quanta do) or pins the ambient register with Hub.SetAmbient while
// holding a lock that serializes the region, so cross-domain quanta
// never mis-parent.

// Attr is one labelled span attribute.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one finished causal interval. ID is unique per hub (1-based;
// 0 means "no span" and is the root parent). Start/End are cycle
// timestamps from the hub clock.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	VM     uint32
	ASID   uint32
	Start  uint64
	End    uint64
	Attrs  []Attr
}

// OpenSpan is an in-flight span handle. All methods are nil-safe, so
// call sites never branch on whether tracing is enabled:
//
//	sp := hub.OpenScope("quantum", vm, asid)
//	defer sp.Close()
type OpenSpan struct {
	h      *Hub
	s      Span
	prev   uint64 // ambient value to restore on Close
	scoped bool
}

// OpenSpan opens a span under an explicit parent (0 = root). Returns nil
// (a no-op handle) when no tracer is attached.
func (h *Hub) OpenSpan(name string, vm, asid uint32, parent uint64) *OpenSpan {
	if h == nil || h.tracer.Load() == nil {
		return nil
	}
	return &OpenSpan{h: h, s: Span{
		ID:     h.spanSeq.Add(1),
		Parent: parent,
		Name:   name,
		VM:     vm,
		ASID:   asid,
		Start:  h.Now(),
	}}
}

// OpenScope opens a span parented under the current ambient span and
// installs it as the new ambient parent until Close. This is the default
// way to build the causal tree on a single logical flow of control.
func (h *Hub) OpenScope(name string, vm, asid uint32) *OpenSpan {
	if h == nil || h.tracer.Load() == nil {
		return nil
	}
	parent := h.ambient.Load()
	sp := &OpenSpan{h: h, prev: parent, scoped: true, s: Span{
		ID:     h.spanSeq.Add(1),
		Parent: parent,
		Name:   name,
		VM:     vm,
		ASID:   asid,
		Start:  h.Now(),
	}}
	h.ambient.Store(sp.s.ID)
	return sp
}

// Ambient reads the current ambient span ID (0 = none). Nil-safe.
func (h *Hub) Ambient() uint64 {
	if h == nil {
		return 0
	}
	return h.ambient.Load()
}

// SetAmbient installs id as the ambient parent and returns the previous
// value, for code that must pin attribution across a region it has
// otherwise serialized (a lock, a single-goroutine phase). No-op
// returning 0 when tracing is disabled.
func (h *Hub) SetAmbient(id uint64) uint64 {
	if h == nil || h.tracer.Load() == nil {
		return 0
	}
	return h.ambient.Swap(id)
}

// CompleteSpan records an already-finished span in one call, for sites
// whose cost model charges the clock before the fact (the SEV firmware
// command constant): start/end are explicit cycle timestamps.
func (h *Hub) CompleteSpan(name string, vm, asid uint32, parent, start, end uint64, attrs ...Attr) {
	if h == nil {
		return
	}
	t := h.tracer.Load()
	if t == nil {
		return
	}
	t.recordSpan(Span{
		ID:     h.spanSeq.Add(1),
		Parent: parent,
		Name:   name,
		VM:     vm,
		ASID:   asid,
		Start:  start,
		End:    end,
		Attrs:  attrs,
	})
}

// ID reports the span's identity (0 on a nil handle, i.e. tracing off).
func (sp *OpenSpan) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.s.ID
}

// Attr attaches one labelled attribute and returns the handle for
// chaining. No-op on a nil handle.
func (sp *OpenSpan) Attr(key, val string) *OpenSpan {
	if sp != nil {
		sp.s.Attrs = append(sp.s.Attrs, Attr{Key: key, Val: val})
	}
	return sp
}

// Close stamps the end timestamp, restores the ambient parent (for scoped
// spans) and records the span in the tracer ring. Safe to call on a nil
// handle; closing twice records twice, so don't.
func (sp *OpenSpan) Close() {
	if sp == nil {
		return
	}
	if sp.scoped {
		// Restore only if we are still the ambient span: a concurrent
		// scope that replaced us owns the register now and will restore
		// its own predecessor.
		sp.h.ambient.CompareAndSwap(sp.s.ID, sp.prev)
	}
	sp.s.End = sp.h.Now()
	if t := sp.h.tracer.Load(); t != nil {
		t.recordSpan(sp.s)
	}
}

// CloseDur is Close with an explicit modelled duration in cycles,
// overriding the wall-clock delta (End = Start + dur).
func (sp *OpenSpan) CloseDur(dur uint64) {
	if sp == nil {
		return
	}
	if sp.scoped {
		sp.h.ambient.CompareAndSwap(sp.s.ID, sp.prev)
	}
	sp.s.End = sp.s.Start + dur
	if t := sp.h.tracer.Load(); t != nil {
		t.recordSpan(sp.s)
	}
}
