package lockrank

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withChecker runs fn with the checker forced on, restoring the prior
// state (tests must not leak enablement into each other).
func withChecker(t *testing.T, fn func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	fn()
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected lockrank panic", name)
		}
	}()
	fn()
}

func TestRankOrderEnforced(t *testing.T) {
	withChecker(t, func() {
		var lo, hi Mutex
		lo.Init(RankDomain, nil)
		hi.Init(RankGate, nil)

		// Increasing order is fine.
		lo.Lock()
		hi.Lock()
		hi.Unlock()
		lo.Unlock()

		// Decreasing order panics.
		hi.Lock()
		defer hi.Unlock()
		mustPanic(t, "inversion", func() { lo.Lock() })
	})
}

func TestSameRankForbidden(t *testing.T) {
	withChecker(t, func() {
		var a, b Mutex
		a.Init(RankFrames, nil)
		b.Init(RankFrames, nil)
		a.Lock()
		defer a.Unlock()
		mustPanic(t, "same-rank", func() { b.Lock() })
	})
}

func TestRWMutexRanked(t *testing.T) {
	withChecker(t, func() {
		var doms RWMutex
		doms.Init(RankDoms, nil)
		var bus Mutex
		bus.Init(RankBus, nil)

		doms.RLock()
		bus.Lock()
		bus.Unlock()
		doms.RUnlock()

		bus.Lock()
		defer bus.Unlock()
		mustPanic(t, "read-after-bus", func() { doms.RLock() })
	})
}

func TestAssertHeld(t *testing.T) {
	withChecker(t, func() {
		var gate Mutex
		gate.Init(RankGate, nil)
		mustPanic(t, "not-held", func() { AssertHeld(RankGate) })
		gate.Lock()
		AssertHeld(RankGate)
		gate.Unlock()
	})
}

func TestUnrankedSkipped(t *testing.T) {
	withChecker(t, func() {
		var hi Mutex
		hi.Init(RankLeaf, nil)
		var zero Mutex // zero value: unranked
		hi.Lock()
		zero.Lock() // would invert if it were ranked; must be ignored
		zero.Unlock()
		hi.Unlock()
	})
}

func TestWaitCounter(t *testing.T) {
	var waits atomic.Uint64
	var m Mutex
	m.Init(RankLeaf, &waits)

	// Uncontended: no waits.
	m.Lock()
	m.Unlock()
	if got := waits.Load(); got != 0 {
		t.Fatalf("uncontended lock counted %d waits", got)
	}

	// Contended: the second goroutine must count at least one wait.
	m.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Lock()
		m.Unlock()
	}()
	for waits.Load() == 0 {
		// Spin until the waiter has registered; it can only proceed
		// once we unlock below.
		if t.Failed() {
			break
		}
	}
	m.Unlock()
	wg.Wait()
	if got := waits.Load(); got == 0 {
		t.Fatal("contended lock counted no waits")
	}
}

// TestConcurrentRankTracking exercises the per-goroutine stacks under
// the race detector: many goroutines taking disjoint rank chains.
func TestConcurrentRankTracking(t *testing.T) {
	withChecker(t, func() {
		var dom, gate, bus Mutex
		dom.Init(RankDomain, nil)
		gate.Init(RankGate, nil)
		bus.Init(RankBus, nil)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					dom.Lock()
					gate.Lock()
					bus.Lock()
					bus.Unlock()
					gate.Unlock()
					dom.Unlock()
				}
			}()
		}
		wg.Wait()
	})
}
