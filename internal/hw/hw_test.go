package hw

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testController(t *testing.T, pages, cacheLines int) *Controller {
	t.Helper()
	c := NewController(NewMemory(pages), cacheLines)
	return c
}

func installKey(t testing.TB, c *Controller, asid ASID, seed byte) Key {
	t.Helper()
	var k Key
	for i := range k {
		k[i] = seed + byte(i)
	}
	if err := c.Eng.Install(asid, k); err != nil {
		t.Fatalf("Install(%d): %v", asid, err)
	}
	return k
}

func TestPlainReadWriteRoundTrip(t *testing.T) {
	c := testController(t, 4, 64)
	data := []byte("hello physical world")
	a := Access{PA: 100}
	if err := c.Write(a, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
	// Raw view matches, since the page is unencrypted.
	raw := make([]byte, len(data))
	if err := c.Mem.ReadRaw(100, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatalf("raw %q want %q", raw, data)
	}
}

func TestEncryptedWriteCiphertextInDRAM(t *testing.T) {
	c := testController(t, 4, 64)
	installKey(t, c, 5, 1)
	data := bytes.Repeat([]byte("secret! "), 8) // 64 bytes
	a := Access{PA: 4096, Encrypted: true, ASID: 5}
	if err := c.Write(a, data); err != nil {
		t.Fatal(err)
	}
	// Through the controller with the right key: plaintext.
	got := make([]byte, len(data))
	if err := c.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("controller read mismatch")
	}
	// Raw DRAM (cold boot): ciphertext.
	raw := make([]byte, len(data))
	if err := c.Mem.ReadRaw(4096, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, data) {
		t.Fatal("DRAM holds plaintext for an encrypted page")
	}
	// DMA read: also ciphertext.
	dma := make([]byte, len(data))
	if err := c.DMA().Read(4096, dma); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dma, data) {
		t.Fatal("DMA observes plaintext for an encrypted page")
	}
	if !bytes.Equal(dma, raw) {
		t.Fatal("DMA and raw views differ")
	}
}

func TestWrongKeyReadsGarbage(t *testing.T) {
	c := testController(t, 4, 0) // no cache: force engine path
	installKey(t, c, 1, 10)
	installKey(t, c, 2, 99)
	data := bytes.Repeat([]byte{0xAB}, 32)
	if err := c.Write(Access{PA: 0, Encrypted: true, ASID: 1}, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 2}, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("read with wrong ASID key returned plaintext")
	}
}

func TestMissingKeyFaults(t *testing.T) {
	c := testController(t, 1, 0)
	err := c.Write(Access{PA: 0, Encrypted: true, ASID: 7}, []byte("x"))
	if err == nil {
		t.Fatal("expected fault for missing key")
	}
}

func TestAddressTweakDiffersAcrossAddresses(t *testing.T) {
	c := testController(t, 4, 0)
	installKey(t, c, 1, 3)
	data := bytes.Repeat([]byte{0x5A}, 16)
	if err := c.Write(Access{PA: 0, Encrypted: true, ASID: 1}, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(Access{PA: 16, Encrypted: true, ASID: 1}, data); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 16)
	b := make([]byte, 16)
	c.Mem.ReadRaw(0, a)
	c.Mem.ReadRaw(16, b)
	if bytes.Equal(a, b) {
		t.Fatal("identical plaintext at different addresses produced identical ciphertext; tweak missing")
	}
}

func TestCacheHitLeaksPlaintextAcrossASID(t *testing.T) {
	// The pre-SNP micro-architectural property the paper's inter-VM
	// remapping attack relies on: a physically-tagged plaintext cache hit
	// crosses ASID boundaries.
	c := testController(t, 4, 64)
	installKey(t, c, 1, 7)
	installKey(t, c, 2, 8)
	secret := bytes.Repeat([]byte("victim data pack"), 4)
	if err := c.Write(Access{PA: 0, Encrypted: true, ASID: 1}, secret); err != nil {
		t.Fatal(err)
	}
	// Victim reads it back, filling the cache with plaintext.
	tmp := make([]byte, len(secret))
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 1}, tmp); err != nil {
		t.Fatal(err)
	}
	// Attacker (ASID 2) reads the same physical address and hits.
	got := make([]byte, len(secret))
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 2}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("expected cross-ASID cache hit to leak plaintext (attack substrate)")
	}
	// After a cache flush the same read yields garbage.
	c.Cache.Flush()
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 2}, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, secret) {
		t.Fatal("post-flush read with wrong key returned plaintext")
	}
}

func TestDMAWriteInvalidatesCache(t *testing.T) {
	c := testController(t, 4, 64)
	data := []byte("cached plain data and more bytes to fill the line......padding")
	if err := c.Write(Access{PA: 0}, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	c.Read(Access{PA: 0}, got) // fill cache
	if err := c.DMA().Write(0, []byte("OVERWRITTEN")); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(Access{PA: 0}, got[:11]); err != nil {
		t.Fatal(err)
	}
	if string(got[:11]) != "OVERWRITTEN" {
		t.Fatalf("stale cache after DMA write: %q", got[:11])
	}
}

func TestUnalignedEncryptedRMW(t *testing.T) {
	c := testController(t, 1, 0)
	installKey(t, c, 1, 5)
	base := bytes.Repeat([]byte{0x11}, 64)
	if err := c.Write(Access{PA: 0, Encrypted: true, ASID: 1}, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite an unaligned span crossing block boundaries.
	if err := c.Write(Access{PA: 13, Encrypted: true, ASID: 1}, []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 1}, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[13:], "abcdefghij")
	if !bytes.Equal(got, want) {
		t.Fatalf("RMW corrupted surrounding bytes:\n got %x\nwant %x", got, want)
	}
}

func TestFlipBitCorruptsDecryption(t *testing.T) {
	c := testController(t, 1, 0)
	installKey(t, c, 1, 2)
	data := bytes.Repeat([]byte{0x42}, 16)
	if err := c.Write(Access{PA: 0, Encrypted: true, ASID: 1}, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Mem.FlipBit(3, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 1}, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("rowhammer flip survived decryption unchanged")
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff < 8 {
		t.Fatalf("expected avalanche from block cipher, only %d bytes differ", diff)
	}
}

func TestEngineUninstall(t *testing.T) {
	c := testController(t, 1, 0)
	installKey(t, c, 3, 9)
	if !c.Eng.Installed(3) {
		t.Fatal("key not installed")
	}
	c.Eng.Uninstall(3)
	if c.Eng.Installed(3) {
		t.Fatal("key still installed after uninstall")
	}
	if err := c.Read(Access{PA: 0, Encrypted: true, ASID: 3}, make([]byte, 16)); err == nil {
		t.Fatal("read succeeded after key uninstall")
	}
}

func TestOutOfRange(t *testing.T) {
	c := testController(t, 1, 0)
	if err := c.Read(Access{PA: PageSize - 4}, make([]byte, 8)); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := c.Write(Access{PA: PageSize}, []byte{1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := c.Mem.ReadRaw(1<<40, make([]byte, 1)); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestPropertyEncryptDecryptRoundTrip(t *testing.T) {
	c := testController(t, 16, 0)
	installKey(t, c, 1, 77)
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 512 {
			payload = payload[:512]
		}
		pa := PhysAddr(off) % (15 * PageSize)
		a := Access{PA: pa, Encrypted: true, ASID: 1}
		if err := c.Write(a, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := c.Read(a, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCiphertextNeverEqualsPlaintext(t *testing.T) {
	c := testController(t, 16, 0)
	installKey(t, c, 9, 31)
	f := func(blockIdx uint8, payload [16]byte) bool {
		pa := PhysAddr(blockIdx) * BlockSize
		a := Access{PA: pa, Encrypted: true, ASID: 9}
		if err := c.Write(a, payload[:]); err != nil {
			return false
		}
		raw := make([]byte, 16)
		if err := c.Mem.ReadRaw(pa, raw); err != nil {
			return false
		}
		// A 16-byte block matching its AES encryption is a 2^-128 event.
		return !bytes.Equal(raw, payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	cache := NewCache(2)
	var l [LineSize]byte
	cache.Fill(0, &l)
	cache.Fill(64, &l)
	cache.Fill(128, &l) // evicts line 0
	if _, ok := cache.Lookup(0); ok {
		t.Fatal("line 0 should have been evicted")
	}
	if _, ok := cache.Lookup(64); !ok {
		t.Fatal("line 64 missing")
	}
	if _, ok := cache.Lookup(128); !ok {
		t.Fatal("line 128 missing")
	}
}

func TestCycleCharging(t *testing.T) {
	c := testController(t, 4, 64)
	before := c.Cycles.Total()
	buf := make([]byte, 8)
	c.Read(Access{PA: 0}, buf) // miss
	miss := c.Cycles.Sub(before)
	before = c.Cycles.Total()
	c.Read(Access{PA: 0}, buf) // hit
	hit := c.Cycles.Sub(before)
	if hit >= miss {
		t.Fatalf("cache hit (%d) should be cheaper than miss (%d)", hit, miss)
	}
}
