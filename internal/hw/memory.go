// Package hw models the physical hardware substrate the rest of the
// simulator runs on: DRAM, the inline AES memory-encryption engine with
// per-ASID key slots (AMD SME/SEV), a small physically-tagged cache, and the
// memory controller that mediates every access.
//
// The central property reproduced from the hardware is: DRAM always holds
// ciphertext for pages accessed with the C-bit set, plaintext only ever
// exists inside the package boundary (caches and register file), and an
// access with the wrong key — or no key at all, as in a cold-boot dump, bus
// snoop or DMA — observes ciphertext.
package hw

import (
	"errors"
	"fmt"
)

// PageSize is the size of a physical page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// BlockSize is the encryption granularity of the AES engine in bytes.
const BlockSize = 16

// PhysAddr is a host physical address.
type PhysAddr uint64

// PFN is a physical frame number (PhysAddr >> PageShift).
type PFN uint64

// Addr returns the base physical address of the frame.
func (p PFN) Addr() PhysAddr { return PhysAddr(p) << PageShift }

// Frame returns the frame number containing the address.
func (a PhysAddr) Frame() PFN { return PFN(a >> PageShift) }

// Offset returns the offset of the address within its page.
func (a PhysAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// ErrOutOfRange reports an access beyond the installed physical memory.
var ErrOutOfRange = errors.New("hw: physical address out of range")

// Memory is a flat physical memory. All contents are stored exactly as a
// bus analyser would see them: ciphertext for encrypted pages.
type Memory struct {
	data []byte

	// fault, when non-nil, is a one-shot injected DRAM fault armed by
	// InjectFault (test instrumentation for channel-error paths).
	fault *memFault
}

// memFault describes one injected DRAM fault window.
type memFault struct {
	pa  PhysAddr
	n   int
	err error
}

// NewMemory returns a memory of the given number of 4 KiB pages.
func NewMemory(pages int) *Memory {
	return &Memory{data: make([]byte, pages*PageSize)}
}

// NewMemoryBytes returns a memory of an arbitrary byte size, not
// necessarily page- or block-aligned — the shape a trimmed top-of-memory
// region (e.g. one stolen by firmware) presents to the controller, which
// must clamp partial-block traffic at the very end of DRAM.
func NewMemoryBytes(n int) *Memory {
	return &Memory{data: make([]byte, n)}
}

// Pages reports the number of physical pages installed.
func (m *Memory) Pages() int { return len(m.data) / PageSize }

// Size reports the installed memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

func (m *Memory) check(pa PhysAddr, n int) error {
	if uint64(pa)+uint64(n) > uint64(len(m.data)) {
		return fmt.Errorf("%w: %#x+%d > %#x", ErrOutOfRange, pa, n, len(m.data))
	}
	return nil
}

// InjectFault arms a one-shot DRAM fault: the next ReadRaw or WriteRaw
// overlapping [pa, pa+n) fails with err before touching memory, then the
// fault disarms. Tests use it to model a channel error striking mid-
// transaction (e.g. during the write path's read-modify-write round trip).
func (m *Memory) InjectFault(pa PhysAddr, n int, err error) {
	m.fault = &memFault{pa: pa, n: n, err: err}
}

// takeFault consumes the armed fault if the access overlaps its window.
func (m *Memory) takeFault(pa PhysAddr, n int) error {
	f := m.fault
	if f == nil || n <= 0 {
		return nil
	}
	if pa < f.pa+PhysAddr(f.n) && f.pa < pa+PhysAddr(n) {
		m.fault = nil
		return f.err
	}
	return nil
}

// ReadRaw copies bytes exactly as stored in DRAM. This is the view of a
// cold-boot attacker, a bus snooper, or a DMA engine.
func (m *Memory) ReadRaw(pa PhysAddr, buf []byte) error {
	if err := m.check(pa, len(buf)); err != nil {
		return err
	}
	if err := m.takeFault(pa, len(buf)); err != nil {
		return err
	}
	copy(buf, m.data[pa:])
	return nil
}

// WriteRaw stores bytes directly into DRAM, bypassing the encryption
// engine. This is the view of a DMA write or a physical tamper.
func (m *Memory) WriteRaw(pa PhysAddr, data []byte) error {
	if err := m.check(pa, len(data)); err != nil {
		return err
	}
	if err := m.takeFault(pa, len(data)); err != nil {
		return err
	}
	copy(m.data[pa:], data)
	return nil
}

// FlipBit flips a single bit in DRAM, modelling a rowhammer disturbance.
func (m *Memory) FlipBit(pa PhysAddr, bit uint) error {
	if err := m.check(pa, 1); err != nil {
		return err
	}
	m.data[pa] ^= 1 << (bit & 7)
	return nil
}
