package xen

import (
	"bytes"
	"fmt"
	"testing"

	"fidelius/internal/disk"
)

func newTestDiskXS() *disk.Disk { return disk.New(64) }

func TestScheduleInterleavesDomains(t *testing.T) {
	x := newXen(t)
	const n = 3
	var doms []*Domain
	order := []DomID{}
	for i := 0; i < n; i++ {
		d, err := x.CreateDomain(DomainConfig{Name: fmt.Sprintf("g%d", i), MemPages: 16, SEV: true})
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		id := d.ID
		rounds := 2 + i // different lifetimes
		x.StartVCPU(d, func(g *GuestEnv) error {
			for r := 0; r < rounds; r++ {
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
				order = append(order, id)
			}
			return nil
		})
	}
	errs := x.Schedule(doms)
	if len(errs) != 0 {
		t.Fatalf("scheduler errors: %v", errs)
	}
	// Each guest ran to completion.
	counts := map[DomID]int{}
	for _, id := range order {
		counts[id]++
	}
	for i, d := range doms {
		if counts[d.ID] != 2+i {
			t.Errorf("domain %d ran %d rounds, want %d", d.ID, counts[d.ID], 2+i)
		}
	}
	// Round-robin: the first three entries come from three distinct
	// domains (one quantum each), not from one domain monopolising.
	if len(order) < n {
		t.Fatal("too few scheduling events")
	}
	seen := map[DomID]bool{}
	for _, id := range order[:n] {
		seen[id] = true
	}
	if len(seen) != n {
		t.Errorf("first %d quanta came from %d domains; scheduling is not interleaved: %v", n, len(seen), order)
	}
}

func TestScheduleCollectsPerDomainErrors(t *testing.T) {
	x := newXen(t)
	good, _ := x.CreateDomain(DomainConfig{Name: "good", MemPages: 16, SEV: true})
	bad, _ := x.CreateDomain(DomainConfig{Name: "bad", MemPages: 16, SEV: true})
	x.StartVCPU(good, func(g *GuestEnv) error {
		_, err := g.Hypercall(HCVoid)
		return err
	})
	x.StartVCPU(bad, func(g *GuestEnv) error {
		return fmt.Errorf("guest panic")
	})
	errs := x.Schedule([]*Domain{good, bad})
	if len(errs) != 1 {
		t.Fatalf("want one error, got %v", errs)
	}
	if errs[bad.ID] == nil {
		t.Fatal("bad domain's error missing")
	}
}

func TestConsoleHypercall(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "con", MemPages: 16, SEV: true})
	msg := "hello from the guest kernel! booting..."
	x.StartVCPU(d, func(g *GuestEnv) error {
		return g.ConsolePrint(msg)
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if got := x.ConsoleLog(d.ID); !bytes.Equal(got, []byte(msg)) {
		t.Fatalf("console log %q, want %q", got, msg)
	}
	// Console logs are per-domain.
	if got := x.ConsoleLog(d.ID + 1); len(got) != 0 {
		t.Fatal("foreign domain has console output")
	}
}

func TestRunOnceAfterCompletion(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "done", MemPages: 16, SEV: true})
	x.StartVCPU(d, func(g *GuestEnv) error { return nil })
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	done, err := x.RunOnce(d)
	if !done || err != nil {
		t.Fatalf("RunOnce on a completed domain: done=%v err=%v", done, err)
	}
}

func TestRunUnstartedDomain(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "idle", MemPages: 16, SEV: true})
	if err := x.Run(d); err == nil {
		t.Fatal("running an unstarted domain should error")
	}
}

func TestXenStoreDevicePublication(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "xs", MemPages: 32, SEV: true})
	if _, err := x.AttachBlockDevice(d, newTestDiskXS(), 2, 7); err != nil {
		t.Fatal(err)
	}
	prefix := fmt.Sprintf("device/vbd/%d/", d.ID)
	for key, want := range map[string]string{
		"ring-gfn":      "1",
		"data-gfn":      "2",
		"data-pages":    "2",
		"event-channel": "7",
	} {
		if got, ok := x.Store.Get(prefix + key); !ok || got != want {
			t.Errorf("xenstore %s = %q (%v), want %q", key, got, ok, want)
		}
	}
}
