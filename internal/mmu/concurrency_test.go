package mmu

import (
	"sync"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
)

func tlbTr(pfn hw.PFN) Translation {
	return Translation{HPA: pfn.Addr()}
}

// TestFlushASIDAccounting pins the FlushASID bugfix: an ASID-wide sweep
// used to update neither EntryFlushes nor the trace, so gate-cost analysis
// silently missed ASID invalidations. Now every dropped entry counts as an
// entry flush, the sweep bumps the new asid_flushes statistic, and a
// tlb-flush-asid event lands on the hub.
func TestFlushASIDAccounting(t *testing.T) {
	hub := telemetry.New(nil)
	tr := hub.StartTrace(64)
	tlb := NewTLB()
	tlb.Hub = hub
	tlb.Register(hub)

	// Three entries for ASID 1 (distinct pages/access types), two for ASID 2.
	tlb.Insert(1, 0x1000, Read, tlbTr(1))
	tlb.Insert(1, 0x2000, Write, tlbTr(2))
	tlb.Insert(1, 0x3000, Execute, tlbTr(3))
	tlb.Insert(2, 0x1000, Read, tlbTr(4))
	tlb.Insert(2, 0x4000, Write, tlbTr(5))

	tlb.FlushASID(1)

	if tlb.EntryFlushes != 3 {
		t.Errorf("EntryFlushes = %d, want 3 (one per dropped entry)", tlb.EntryFlushes)
	}
	if tlb.ASIDFlushes != 1 {
		t.Errorf("ASIDFlushes = %d, want 1", tlb.ASIDFlushes)
	}
	if tlb.Len() != 2 {
		t.Errorf("TLB holds %d entries after FlushASID(1), want ASID 2's 2", tlb.Len())
	}
	if _, ok := tlb.Lookup(1, 0x1000, Read); ok {
		t.Error("ASID 1 entry survived its flush")
	}
	if _, ok := tlb.Lookup(2, 0x1000, Read); !ok {
		t.Error("ASID 2 entry was collaterally flushed")
	}
	snap := hub.Reg.Snapshot()
	if snap.Gauges["tlb.asid_flushes"] != 1 {
		t.Errorf("tlb.asid_flushes metric = %d, want 1", snap.Gauges["tlb.asid_flushes"])
	}
	if snap.Gauges["tlb.entry_flushes"] != 3 {
		t.Errorf("tlb.entry_flushes metric = %d, want 3", snap.Gauges["tlb.entry_flushes"])
	}
	var ev telemetry.Event
	found := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindTLBFlushASID {
			ev, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("no tlb-flush-asid trace event emitted")
	}
	if ev.ASID != 1 {
		t.Errorf("event ASID = %d, want 1", ev.ASID)
	}
	if ev.Arg1 != 3 {
		t.Errorf("event arg1 (entries removed) = %d, want 3", ev.Arg1)
	}

	// Flushing an ASID with no entries still counts the sweep but drops
	// nothing.
	tlb.FlushASID(9)
	if tlb.ASIDFlushes != 2 || tlb.EntryFlushes != 3 {
		t.Errorf("empty sweep: ASIDFlushes=%d EntryFlushes=%d, want 2/3",
			tlb.ASIDFlushes, tlb.EntryFlushes)
	}
}

// TestShootdownBusBroadcast checks the INVLPGA-IPI model: invalidations
// sent through the bus reach every registered core's TLB, and a core that
// goes offline stops receiving them.
func TestShootdownBusBroadcast(t *testing.T) {
	bus := &ShootdownBus{}
	a, b := NewTLB(), NewTLB()
	bus.Register(a)
	bus.Register(b)
	if bus.Cores() != 2 {
		t.Fatalf("Cores() = %d, want 2", bus.Cores())
	}

	fill := func() {
		for _, tlb := range []*TLB{a, b} {
			tlb.Insert(1, 0x1000, Read, tlbTr(1))
			tlb.Insert(1, 0x2000, Read, tlbTr(2))
			tlb.Insert(2, 0x1000, Read, tlbTr(3))
		}
	}
	fill()
	bus.FlushEntry(1, 0x1000)
	for name, tlb := range map[string]*TLB{"a": a, "b": b} {
		if _, ok := tlb.Lookup(1, 0x1000, Read); ok {
			t.Errorf("core %s kept the shot-down entry", name)
		}
		if _, ok := tlb.Lookup(1, 0x2000, Read); !ok {
			t.Errorf("core %s lost an unrelated entry", name)
		}
	}

	bus.FlushASID(1)
	for name, tlb := range map[string]*TLB{"a": a, "b": b} {
		if _, ok := tlb.Lookup(1, 0x2000, Read); ok {
			t.Errorf("core %s kept ASID 1 after bus FlushASID", name)
		}
		if _, ok := tlb.Lookup(2, 0x1000, Read); !ok {
			t.Errorf("core %s lost ASID 2 collaterally", name)
		}
	}

	bus.FlushAll()
	if a.Len() != 0 || b.Len() != 0 {
		t.Errorf("FlushAll left entries: a=%d b=%d", a.Len(), b.Len())
	}
	if bus.Broadcasts() != 3 {
		t.Errorf("Broadcasts() = %d, want 3", bus.Broadcasts())
	}

	// Offline core stops receiving IPIs.
	bus.Unregister(b)
	if bus.Cores() != 1 {
		t.Fatalf("Cores() = %d after unregister, want 1", bus.Cores())
	}
	fill()
	bus.FlushEntry(1, 0x1000)
	if _, ok := a.Lookup(1, 0x1000, Read); ok {
		t.Error("online core kept the shot-down entry")
	}
	if _, ok := b.Lookup(1, 0x1000, Read); !ok {
		t.Error("offline core received a shootdown")
	}

	// Nil bus is inert (hand-built machines without a bus).
	var nilBus *ShootdownBus
	nilBus.Register(a)
	nilBus.FlushEntry(1, 0)
	nilBus.FlushAll()
	if nilBus.Cores() != 0 || nilBus.Broadcasts() != 0 {
		t.Error("nil bus is not inert")
	}
}

// TestShootdownBusConcurrent hammers the bus from several cores at once —
// registration churn racing broadcast storms, with every TLB also serving
// local lookups — under -race.
func TestShootdownBusConcurrent(t *testing.T) {
	bus := &ShootdownBus{}
	fixed := NewTLB()
	bus.Register(fixed)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := NewTLB()
			for i := 0; i < 300; i++ {
				switch i % 4 {
				case 0:
					bus.Register(mine)
				case 1:
					mine.Insert(hw.ASID(w), uint64(i)<<12, Read, tlbTr(hw.PFN(i)))
					bus.FlushEntry(hw.ASID(w), uint64(i)<<12)
				case 2:
					bus.FlushASID(hw.ASID(w))
				case 3:
					bus.Unregister(mine)
				}
				fixed.Insert(hw.ASID(w), uint64(i)<<12, Read, tlbTr(hw.PFN(i)))
				fixed.Lookup(hw.ASID(w), uint64(i)<<12, Read)
			}
			bus.Unregister(mine)
		}(w)
	}
	wg.Wait()
	if bus.Cores() != 1 {
		t.Errorf("Cores() = %d after churn, want 1 (the fixed core)", bus.Cores())
	}
}
