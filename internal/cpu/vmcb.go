package cpu

import (
	"encoding/binary"
	"fmt"

	"fidelius/internal/hw"
)

// ExitReason is a VMEXIT code.
type ExitReason uint32

// Exit reasons, mirroring the AMD-V exit codes the paper's exit-reason
// classified policies dispatch on (Section 5.1).
const (
	ExitNone    ExitReason = iota
	ExitCPUID              // guest executed CPUID
	ExitHLT                // guest halted
	ExitVMMCALL            // guest hypercall
	ExitNPF                // nested page fault; ExitInfo2 = faulting GPA
	ExitIOIO               // port I/O
	ExitWRMSR              // guest MSR write
	ExitINTR               // external interrupt
	ExitShutdown
)

func (r ExitReason) String() string {
	switch r {
	case ExitNone:
		return "none"
	case ExitCPUID:
		return "cpuid"
	case ExitHLT:
		return "hlt"
	case ExitVMMCALL:
		return "vmmcall"
	case ExitNPF:
		return "npf"
	case ExitIOIO:
		return "ioio"
	case ExitWRMSR:
		return "wrmsr"
	case ExitINTR:
		return "intr"
	case ExitShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("exit(%d)", uint32(r))
}

// VMCB is the virtual machine control block: the control area steering VM
// entry/exit plus the guest save area. SEV (without -ES) leaves this
// structure in plaintext hypervisor memory — the root of the attacks in
// Section 2.2 — so it marshals to/from simulated physical memory where the
// hypervisor (or Fidelius's shadow logic) manipulates it.
type VMCB struct {
	// Control area.
	ExitCode   ExitReason
	ExitInfo1  uint64
	ExitInfo2  uint64
	GuestASID  uint32
	NPTRoot    uint64 // nested page table root (physical address)
	Intercepts uint64 // bitmask of intercepted events
	SEVEnabled bool

	// Save area.
	RIP  uint64
	RSP  uint64
	CR0  uint64
	CR3  uint64 // guest page-table root (GPA)
	CR4  uint64
	EFER uint64
	Regs [NumRegs]uint64
}

// VMCBSize is the marshalled size in bytes. A VMCB occupies one page on
// real hardware; the fields we model fit well within it.
const VMCBSize = 4 + 4 + 8*6 + 1 + 7 + 8*6 + 8*NumRegs

// Marshal encodes the VMCB little-endian into a fixed-size buffer.
func (v *VMCB) Marshal() []byte {
	b := make([]byte, VMCBSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(v.ExitCode))
	le.PutUint32(b[4:], v.GuestASID)
	le.PutUint64(b[8:], v.ExitInfo1)
	le.PutUint64(b[16:], v.ExitInfo2)
	le.PutUint64(b[24:], v.NPTRoot)
	le.PutUint64(b[32:], v.Intercepts)
	if v.SEVEnabled {
		b[56] = 1
	}
	le.PutUint64(b[64:], v.RIP)
	le.PutUint64(b[72:], v.RSP)
	le.PutUint64(b[80:], v.CR0)
	le.PutUint64(b[88:], v.CR3)
	le.PutUint64(b[96:], v.CR4)
	le.PutUint64(b[104:], v.EFER)
	for i := 0; i < NumRegs; i++ {
		le.PutUint64(b[112+8*i:], v.Regs[i])
	}
	return b
}

// UnmarshalVMCB decodes a VMCB from its binary form.
func UnmarshalVMCB(b []byte) (*VMCB, error) {
	if len(b) < VMCBSize {
		return nil, fmt.Errorf("cpu: short VMCB: %d < %d", len(b), VMCBSize)
	}
	le := binary.LittleEndian
	v := &VMCB{
		ExitCode:   ExitReason(le.Uint32(b[0:])),
		GuestASID:  le.Uint32(b[4:]),
		ExitInfo1:  le.Uint64(b[8:]),
		ExitInfo2:  le.Uint64(b[16:]),
		NPTRoot:    le.Uint64(b[24:]),
		Intercepts: le.Uint64(b[32:]),
		SEVEnabled: b[56] == 1,
		RIP:        le.Uint64(b[64:]),
		RSP:        le.Uint64(b[72:]),
		CR0:        le.Uint64(b[80:]),
		CR3:        le.Uint64(b[88:]),
		CR4:        le.Uint64(b[96:]),
		EFER:       le.Uint64(b[104:]),
	}
	for i := 0; i < NumRegs; i++ {
		v.Regs[i] = le.Uint64(b[112+8*i:])
	}
	return v, nil
}

// LoadVMCB reads a VMCB from physical memory through the controller.
// VMCBs are plaintext host memory (the SEV weakness Fidelius papers over),
// so the access carries no C-bit.
func LoadVMCB(ctl *hw.Controller, pa hw.PhysAddr) (*VMCB, error) {
	buf := make([]byte, VMCBSize)
	if err := ctl.Read(hw.Access{PA: pa}, buf); err != nil {
		return nil, err
	}
	return UnmarshalVMCB(buf)
}

// StoreVMCB writes a VMCB to physical memory through the controller.
func StoreVMCB(ctl *hw.Controller, pa hw.PhysAddr, v *VMCB) error {
	return ctl.Write(hw.Access{PA: pa}, v.Marshal())
}
