package hw

import (
	"errors"
	"fmt"
	"testing"

	"fidelius/internal/cycles"
)

// TestEmptyAccessIsNoOp pins the empty-transfer fix: a zero-length write
// used to fall into the touched-line arithmetic, underflow to ~2^64 lines,
// and charge (and count) accordingly. Empty reads and writes must now be
// complete no-ops: no cycles, no transaction counters, no engine lines.
func TestEmptyAccessIsNoOp(t *testing.T) {
	for _, enc := range []bool{false, true} {
		t.Run(fmt.Sprintf("encrypted=%v", enc), func(t *testing.T) {
			c := NewController(NewMemory(16), 64)
			if enc {
				if err := c.Eng.Install(1, Key{1, 2, 3}); err != nil {
					t.Fatal(err)
				}
			}
			// No key installed for ASID 2: an empty encrypted access must
			// not even reach slot resolution.
			for _, a := range []Access{
				{PA: 0, Encrypted: enc, ASID: 1},
				{PA: 4096, Encrypted: enc, ASID: 2},
			} {
				before := c.Cycles.Total()
				snap := c.Telem.Reg.Snapshot()
				if err := c.Write(a, nil); err != nil {
					t.Fatalf("empty write %+v: %v", a, err)
				}
				if err := c.Read(a, nil); err != nil {
					t.Fatalf("empty read %+v: %v", a, err)
				}
				if d := c.Cycles.Total() - before; d != 0 {
					t.Fatalf("empty access at %+v charged %d cycles, want 0", a, d)
				}
				after := c.Telem.Reg.Snapshot()
				for _, k := range []string{"mem.reads", "mem.writes", "mem.read_bytes",
					"mem.write_bytes", "mem.enc_lines", "mem.dec_lines"} {
					if after.Gauges[k] != snap.Gauges[k] {
						t.Fatalf("empty access at %+v bumped %s: %d -> %d",
							a, k, snap.Gauges[k], after.Gauges[k])
					}
				}
			}
		})
	}
}

// TestDMAChargesPerLine pins the DMA accounting fix: transfers used to
// cost a flat cycles.MemAccess regardless of size. A DMA burst drains the
// bus once per overlapped cache line, so the charge scales with the span.
func TestDMAChargesPerLine(t *testing.T) {
	cases := []struct {
		pa   PhysAddr
		n    int
		want uint64 // overlapped cache lines
	}{
		{0, 1, 1},
		{0, LineSize, 1},
		{0, LineSize + 1, 2},
		{LineSize - 1, 2, 2}, // straddles a line boundary
		{32, LineSize, 2},    // unaligned full line
		{0, PageSize, PageSize / LineSize},
		{128, 3 * LineSize, 3}, // aligned interior burst
		{160, 3 * LineSize, 4}, // unaligned burst spills into a 4th line
	}
	for _, dir := range []string{"read", "write"} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/pa=%d,n=%d", dir, tc.pa, tc.n), func(t *testing.T) {
				c := NewController(NewMemory(16), 64)
				dma := c.DMA()
				buf := make([]byte, tc.n)
				before := c.Cycles.Total()
				var err error
				if dir == "read" {
					err = dma.Read(tc.pa, buf)
				} else {
					err = dma.Write(tc.pa, buf)
				}
				if err != nil {
					t.Fatal(err)
				}
				if d := c.Cycles.Total() - before; d != tc.want*cycles.MemAccess {
					t.Fatalf("%s of %d bytes at %#x charged %d cycles, want %d lines * %d = %d",
						dir, tc.n, tc.pa, d, tc.want, cycles.MemAccess, tc.want*cycles.MemAccess)
				}
			})
		}
	}
	// Empty DMA transfers are no-ops too (same underflow hazard as the
	// controller path).
	c := NewController(NewMemory(16), 64)
	dma := c.DMA()
	before := c.Cycles.Total()
	if err := dma.Read(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := dma.Write(0, nil); err != nil {
		t.Fatal(err)
	}
	if d := c.Cycles.Total() - before; d != 0 {
		t.Fatalf("empty DMA charged %d cycles", d)
	}
	snap := c.Telem.Reg.Snapshot()
	if snap.Gauges["dma.reads"] != 0 || snap.Gauges["dma.writes"] != 0 {
		t.Fatalf("empty DMA counted as a transaction: %+v", snap.Gauges)
	}
}

// TestIntegrityNotLaunderedByFailedWrite pins the integrity-on-failure
// fix. A write whose DRAM round trip fails must NOT update the Merkle
// tree: the old code ran Integ.Update in a defer even when ReadRaw or
// WriteRaw errored, re-MACing whatever DRAM held at that moment — so a
// physically tampered line was folded into the trusted state and the
// tamper went undetectable ("laundered").
func TestIntegrityNotLaunderedByFailedWrite(t *testing.T) {
	injected := errors.New("simulated DRAM fault")
	cases := []struct {
		name string
		enc  bool
	}{
		// Encrypted writes fail in the RMW ReadRaw (the fault window is
		// consumed by the first overlapping raw access); unencrypted
		// writes fail in WriteRaw directly — both legs of the fix.
		{"encrypted-rmw", true},
		{"unencrypted", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// No cache: every read goes to DRAM so verification always runs.
			c := NewController(NewMemory(16), 0)
			c.Integ = NewIntegrity(c.Mem, [32]byte{42})
			const asid = ASID(1)
			if err := c.Eng.Install(asid, Key{9, 9, 9}); err != nil {
				t.Fatal(err)
			}
			pfn := PFN(3)
			pa := pfn.Addr()
			acc := Access{PA: pa, Encrypted: tc.enc, ASID: asid}

			data := make([]byte, LineSize)
			for i := range data {
				data[i] = byte(i)
			}
			if err := c.Write(acc, data); err != nil {
				t.Fatal(err)
			}
			if err := c.Integ.Protect(pfn); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, LineSize)
			if err := c.Read(acc, got); err != nil {
				t.Fatalf("read of protected page: %v", err)
			}

			// Physical tamper behind the controller's back.
			if err := c.Mem.FlipBit(pa+7, 3); err != nil {
				t.Fatal(err)
			}
			if err := c.Read(acc, got); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("tampered read: got %v, want ErrIntegrity", err)
			}

			// A write to the tampered page whose DRAM round trip faults:
			// the store never lands, so the tree must keep the old MAC.
			updatesBefore := c.Integ.Updates
			c.Mem.InjectFault(pa, LineSize, injected)
			if err := c.Write(acc, data); !errors.Is(err, injected) {
				t.Fatalf("faulted write: got %v, want injected fault", err)
			}
			if c.Integ.Updates != updatesBefore {
				t.Fatalf("failed write ran %d integrity updates",
					c.Integ.Updates-updatesBefore)
			}
			if err := c.Read(acc, got); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("tamper was laundered by the failed write: read returned %v, want ErrIntegrity", err)
			}

			// A subsequent successful write repairs the line legitimately.
			if err := c.Write(acc, data); err != nil {
				t.Fatal(err)
			}
			if err := c.Read(acc, got); err != nil {
				t.Fatalf("read after repair: %v", err)
			}
		})
	}
}
