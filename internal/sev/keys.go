// Package sev models the SEV firmware running in AMD's secure processor:
// the guest-context state machine (LAUNCH/ACTIVATE/SEND/RECEIVE/
// DEACTIVATE/DECOMMISSION), per-guest VM encryption keys, the ECDH key
// agreement and wrapped transport keys used by migration, and the
// measurement chain.
//
// Fidelius's central trick — reusing SEND/RECEIVE to boot from an encrypted
// kernel image and to encrypt disk I/O — is a protocol over this API, so
// the firmware is modelled at full API granularity with real cryptography:
// ECDH over P-256, AES-256-GCM key wrapping, AES-CTR transport encryption
// and HMAC-SHA256 integrity, all from the standard library.
package sev

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// TransportKeys are the transport encryption key (TEK) and transport
// integrity key (TIK) protecting a SEND/RECEIVE session.
type TransportKeys struct {
	TEK [32]byte
	TIK [32]byte
}

// WrappedKeys is Kwrap: the TEK and TIK wrapped under the key-encryption
// key derived from the ECDH agreement between the two endpoints. It is
// public data — the paper sends it to Fidelius offline.
type WrappedKeys struct {
	Nonce      [12]byte
	Ciphertext []byte // AES-256-GCM(TEK || TIK)
}

// ErrBadWrap reports a wrapped-key blob that fails authentication.
var ErrBadWrap = errors.New("sev: wrapped keys fail authentication")

// deriveKEK derives the key-encryption key from an ECDH shared secret and
// the session nonce (the paper's Nvm).
func deriveKEK(shared []byte, nonce []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("sev-kek-v1"))
	h.Write(shared)
	h.Write(nonce)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func newGCM(key [32]byte) (cipher.AEAD, error) {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

// wrapKeys seals TEK||TIK under the KEK.
func wrapKeys(kek [32]byte, tk TransportKeys) (WrappedKeys, error) {
	aead, err := newGCM(kek)
	if err != nil {
		return WrappedKeys{}, err
	}
	var w WrappedKeys
	if _, err := io.ReadFull(rand.Reader, w.Nonce[:]); err != nil {
		return WrappedKeys{}, err
	}
	plain := append(append([]byte{}, tk.TEK[:]...), tk.TIK[:]...)
	w.Ciphertext = aead.Seal(nil, w.Nonce[:], plain, []byte("sev-kwrap"))
	return w, nil
}

// unwrapKeys opens Kwrap with the KEK.
func unwrapKeys(kek [32]byte, w WrappedKeys) (TransportKeys, error) {
	aead, err := newGCM(kek)
	if err != nil {
		return TransportKeys{}, err
	}
	plain, err := aead.Open(nil, w.Nonce[:], w.Ciphertext, []byte("sev-kwrap"))
	if err != nil {
		return TransportKeys{}, fmt.Errorf("%w: %v", ErrBadWrap, err)
	}
	if len(plain) != 64 {
		return TransportKeys{}, ErrBadWrap
	}
	var tk TransportKeys
	copy(tk.TEK[:], plain[:32])
	copy(tk.TIK[:], plain[32:])
	return tk, nil
}

// transportXOR applies the AES-256-CTR transport keystream for a chunk
// identified by seq (page index or I/O request counter). Encrypt and
// decrypt are the same operation.
func transportXOR(tek [32]byte, seq uint64, data []byte) error {
	blk, err := aes.NewCipher(tek[:])
	if err != nil {
		return err
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[:8], seq)
	ctr := cipher.NewCTR(blk, iv[:])
	ctr.XORKeyStream(data, data)
	return nil
}

// transportMAC computes the HMAC-SHA256 tag of one transport chunk.
func transportMAC(tik [32]byte, seq uint64, ciphertext []byte) [32]byte {
	m := hmac.New(sha256.New, tik[:])
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	m.Write(s[:])
	m.Write(ciphertext)
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Measurement is a running integrity measurement (the paper's Mvm).
type Measurement [32]byte

// measureChain folds a chunk tag into the running measurement.
func measureChain(cur Measurement, tag [32]byte) Measurement {
	h := sha256.New()
	h.Write(cur[:])
	h.Write(tag[:])
	var out Measurement
	copy(out[:], h.Sum(nil))
	return out
}

// ECDHAgree computes the raw shared secret between a private and a peer
// public key.
func ECDHAgree(priv *ecdh.PrivateKey, pub *ecdh.PublicKey) ([]byte, error) {
	return priv.ECDH(pub)
}

// GenerateIdentity creates a fresh P-256 ECDH identity.
func GenerateIdentity() (*ecdh.PrivateKey, error) {
	return ecdh.P256().GenerateKey(rand.Reader)
}

func randomKey() ([32]byte, error) {
	var k [32]byte
	_, err := io.ReadFull(rand.Reader, k[:])
	return k, err
}
