package xen

import (
	"errors"
	"fmt"
	"sync/atomic"

	"fidelius/internal/cpu"
	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
)

// ErrNoSuchHypercall reports an unimplemented hypercall number.
var ErrNoSuchHypercall = errors.New("xen: no such hypercall")

// CPUIDModel is the canonical CPUID response of the simulated processor.
// Fidelius's Iago policy verifies the hypervisor returns exactly these
// values (Section 6.2, "the Iago attacks can be avoided since ...
// appropriate policies can be defined to check the values returned by the
// hypervisor before VMRUN").
var CPUIDModel = [4]uint64{0x0F1DE115, 0x414D44, 0x5345, 0x56}

// Xen is the hypervisor. It provides services (exit handling, scheduling,
// hypercalls, I/O backends) and — in the unprotected baseline — also
// manages every critical resource directly.
//
// There is no big hypervisor lock. Each domain carries its own lock
// (rank: domain) held for the whole quantum; shared structures — the
// domain registry, grant-table bytes, event-channel handler table,
// XenStore, frame and ASID allocators, SEV firmware tables — are each
// independently locked at their documented rank. The documented order is
//
//	domain → shared-shard → shootdown bus → tracer/ledger leaves
//
// enforced in debug builds by internal/lockrank (FIDELIUS_LOCKRANK=1).
// Quanta of distinct domains only meet at genuine sharing points: grant
// map/unmap (gate lock for the grant bytes), event-channel signalling
// (handler invocation under the gate lock) and serve-ring doorbells.
type Xen struct {
	M *Machine

	// Interpose is the resource-management seam; Fidelius replaces it.
	Interpose Interposer

	// ASIDs hands out guest ASIDs with DF_FLUSH-gated recycling, the
	// real SEV resource discipline (the pool's batch flush is wired to
	// the firmware's DFFlush).
	ASIDs *sev.ASIDPool

	// domsMu (lock rank: doms) guards the domain registry: Doms,
	// vmcbToDom, backends and the ID counter. Mutating entries *inside*
	// a Domain needs that domain's own lock, not this one.
	domsMu    lockrank.RWMutex
	Doms      map[DomID]*Domain
	nextDom   DomID
	vmcbToDom map[hw.PhysAddr]*Domain

	Store  *XenStore
	Events *EventBus

	// backends maps domain ID to its block backend (under domsMu).
	backends map[DomID]*BlockBackend

	// exitCounts tallies VMEXITs by reason, atomically (ExitCount reads).
	exitCounts [exitReasonSlots]atomic.Uint64
}

// exitReasonSlots bounds the exit-reason tally array; cpu.ExitReason
// values are small consecutive constants well below this.
const exitReasonSlots = 16

// New boots the hypervisor on a machine.
func New(m *Machine) (*Xen, error) {
	x := &Xen{
		M:         m,
		Doms:      make(map[DomID]*Domain),
		nextDom:   1, // dom0 is the host itself
		Store:     newXenStore(),
		vmcbToDom: make(map[hw.PhysAddr]*Domain),
		backends:  make(map[DomID]*BlockBackend),
	}
	x.domsMu.Init(lockrank.RankDoms, &m.Waits.Doms)
	x.Store.SetLockInfo(lockrank.RankStore, &m.Waits.Store)
	x.ASIDs = sev.NewASIDPool(0, m.FW.DFFlush)
	x.ASIDs.SetLockInfo(lockrank.RankASIDPool, &m.Waits.ASIDPool)
	x.Events = newEventBus(func(n uint64) { m.Ctl.Cycles.Charge(n) }, m.Ctl.Telem)
	x.Events.SetLockInfo(lockrank.RankEvents, &m.Waits.Events)
	// Event handlers touch shared host-side state (ring pages, disk,
	// the boot controller), so they run under the gate lock — one of the
	// genuine sharing points where concurrent quanta may contend.
	x.Events.invoke = func(h func() error) error {
		m.Host.Lock()
		defer m.Host.Unlock()
		return h()
	}
	x.Interpose = Direct{X: x}
	m.CPU.VMRunFn = x.worldSwitch
	if err := m.FW.Init(); err != nil {
		return nil, err
	}
	if tel := m.Ctl.Telem; tel != nil {
		w := m.Waits
		for _, lw := range []struct {
			name string
			c    *atomic.Uint64
		}{
			{"domain", &w.Domain}, {"events", &w.Events}, {"store", &w.Store},
			{"asid-pool", &w.ASIDPool}, {"gate", &w.Gate}, {"doms", &w.Doms},
			{"firmware", &w.Firmware}, {"frames", &w.Frames},
			{"alloc", &w.Alloc}, {"bus", &w.Bus},
		} {
			c := lw.c
			tel.Reg.RegisterFunc("xen.lock_waits", func() uint64 { return c.Load() },
				"lock", lw.name)
		}
		tel.Reg.RegisterFunc("sev.asid_flushes", x.ASIDs.Flushes)
		tel.Reg.RegisterFunc("sev.asid_recycles", x.ASIDs.Recycles)
	}
	return x, nil
}

// RunOnce executes one scheduling quantum of the domain: enter the
// guest, take one VMEXIT through the interposer boundary hooks, and
// dispatch it. It returns done=true when the guest function has
// returned. The domain's own lock is held for the whole quantum; shared
// locks (gate, doms, firmware, ...) are acquired inside it, per the
// documented order.
func (x *Xen) RunOnce(d *Domain) (done bool, err error) {
	v := d.vcpu
	if v == nil {
		return true, fmt.Errorf("xen: domain %d not started", d.ID)
	}
	if v.halted {
		return true, v.err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	start := x.M.Ctl.Cycles.Total()
	sp := x.M.Ctl.Telem.OpenScope("quantum", uint32(d.ID), uint32(d.ASID))
	defer func() {
		spent := x.M.Ctl.Cycles.Sub(start)
		d.cycles.Add(spent)
		x.M.Ctl.Telem.M.ExitCycles.Observe(spent)
		sp.Close()
	}()
	if err := x.Interpose.PreVMRun(d, d.VMCBPA()); err != nil {
		return true, fmt.Errorf("xen: entry to %s vetoed: %w", d.Name, err)
	}
	if err := x.vmrunStub(d.VMCBPA()); err != nil {
		return true, fmt.Errorf("xen: vmrun for %s: %w", d.Name, err)
	}
	// Guest has exited; the boundary hook shadows before any hypervisor
	// code inspects the state.
	if err := x.Interpose.OnVMExit(d, d.VMCBPA()); err != nil {
		return true, err
	}
	if v.halted {
		return true, v.err
	}
	if err := x.handleExit(d); err != nil {
		return true, err
	}
	return false, nil
}

// vmrunStub executes the interposer's VMRUN under the gate lock: the
// stub runs on the single shared boot CPU, so entry to it is a genuine
// shared-machine step (the serial scheduler's world switch).
func (x *Xen) vmrunStub(vmcbPA hw.PhysAddr) error {
	x.M.Host.Lock()
	defer x.M.Host.Unlock()
	return x.Interpose.VMRun(vmcbPA)
}

// Run schedules the domain's vCPU until the guest function returns,
// dispatching every VMEXIT through the interposer boundary hooks and the
// hypervisor's handlers. It returns the guest function's error.
func (x *Xen) Run(d *Domain) error {
	sp := x.M.Ctl.Telem.OpenScope("run", uint32(d.ID), uint32(d.ASID))
	defer sp.Close()
	for {
		done, err := x.RunOnce(d)
		if done {
			return err
		}
	}
}

// Schedule round-robins a set of started domains, one exit per quantum,
// until every guest function has returned — the hypervisor's scheduling
// service, which Fidelius deliberately leaves in its hands (Section 3.1).
// It returns the first error of each domain, keyed by ID.
func (x *Xen) Schedule(doms []*Domain) map[DomID]error {
	sp := x.M.Ctl.Telem.OpenScope("schedule", 0, 0)
	defer sp.Close()
	errs := make(map[DomID]error)
	pending := append([]*Domain{}, doms...)
	for len(pending) > 0 {
		next := pending[:0]
		for _, d := range pending {
			done, err := x.RunOnce(d)
			if done {
				if err != nil {
					errs[d.ID] = err
				}
				continue
			}
			next = append(next, d)
		}
		pending = next
	}
	return errs
}

// handleExit is the hypervisor's VMEXIT dispatcher. It runs with the
// domain's lock held (by RunOnce or a parallel runner) and performs VMCB
// I/O through the domain's controller port, so concurrent quanta of
// different domains dispatch without sharing anything.
func (x *Xen) handleExit(d *Domain) error {
	vmcb, err := cpu.LoadVMCB(d.ctl, d.VMCBPA())
	if err != nil {
		return err
	}
	if int(vmcb.ExitCode) < len(x.exitCounts) {
		x.exitCounts[vmcb.ExitCode].Add(1)
	}
	switch vmcb.ExitCode {
	case cpu.ExitVMMCALL:
		res, errno := x.hypercall(d, vmcb.Regs)
		vmcb.Regs[0] = res
		vmcb.Regs[1] = errno
	case cpu.ExitCPUID:
		// Only these four registers may change — the Section 5.1
		// policy example.
		copy(vmcb.Regs[:4], CPUIDModel[:])
	case cpu.ExitNPF:
		if err := x.handleNPF(d, vmcb.ExitInfo2, mmu.AccessType(vmcb.ExitInfo1)); err != nil {
			// Unresolvable (or policy-vetoed) fault: inject it into
			// the guest rather than killing the platform. Either way it
			// is a security-relevant decision worth a forensic record.
			if h := x.M.Ctl.Telem; h.Auditing() {
				h.Audit("npf-unresolved", uint32(d.ID), err.Error())
			}
			d.pendingFault = true
		}
	case cpu.ExitHLT:
		// Idle: nothing to do in the synchronous model.
	default:
		return fmt.Errorf("xen: unhandled exit %v", vmcb.ExitCode)
	}
	return cpu.StoreVMCB(d.ctl, d.VMCBPA(), vmcb)
}

// handleNPF backs an unmapped GPA with a fresh frame (lazy population) or
// upgrades permissions. Every NPT write goes through the interposer gate.
// When the domain's dirty log is armed, a write fault on an already-backed
// page is dirty-logging in action: the GFN is recorded before the W bit is
// restored.
func (x *Xen) handleNPF(d *Domain, gpa uint64, access mmu.AccessType) error {
	d.ctl.Telem.M.NPFHandled.Inc()
	gfn := gpa >> hw.PageShift
	// The backing map is consulted and possibly grown under framesMu —
	// released before MapNPT, whose interposed PTE write takes the gate
	// lock (rank below frames).
	d.framesMu.Lock()
	if gfn >= uint64(len(d.Frames)) {
		d.framesMu.Unlock()
		return fmt.Errorf("xen: domain %d faulted beyond its memory at gpa %#x", d.ID, gpa)
	}
	pfn := d.Frames[gfn]
	fresh := pfn == 0
	if fresh {
		var err error
		pfn, err = x.M.Alloc.Alloc(UseGuest, d.ID)
		if err != nil {
			d.framesMu.Unlock()
			return err
		}
		d.Frames[gfn] = pfn
	}
	d.framesMu.Unlock()
	if access == mmu.Write && d.Dirty.Mark(gfn) {
		d.ctl.Telem.M.DirtyMarks.Inc()
	}
	pte := mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagW|mmu.FlagU)
	if fresh && access != mmu.Write && d.Dirty.Enabled() {
		// A page populated by a read while dirty logging is armed must
		// stay write-protected, or its first write would go unlogged.
		pte = mmu.MakePTE(pfn, mmu.FlagP|mmu.FlagU)
	}
	if slot, err := x.NPTLeafSlot(d, gpa); err == nil {
		// Re-permitting an existing mapping (the dirty-logging W restore)
		// must keep the leaf's other attributes — the C-bit under
		// fidelius-enc in particular.
		if cur, err := x.readPTE(d, slot); err == nil && cur.Present() && cur.PFN() == pfn {
			pte = cur.WithFlags(mmu.FlagW)
		}
	}
	return x.MapNPT(d, gpa&^uint64(hw.PageSize-1), pte)
}

// Dom returns a domain by ID.
func (x *Xen) Dom(id DomID) (*Domain, bool) {
	x.domsMu.RLock()
	d, ok := x.Doms[id]
	x.domsMu.RUnlock()
	return d, ok
}

// DomByVMCB returns the domain whose VMCB lives at the given physical
// address.
func (x *Xen) DomByVMCB(pa hw.PhysAddr) (*Domain, bool) {
	x.domsMu.RLock()
	d, ok := x.vmcbToDom[pa]
	x.domsMu.RUnlock()
	return d, ok
}

// ConsoleLog returns everything a domain has written through the console
// hypercall. The registry lock is released before the domain lock is
// taken (doms ranks above domain), so the lookup and the copy are two
// steps.
func (x *Xen) ConsoleLog(id DomID) []byte {
	d, ok := x.Dom(id)
	if !ok {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte{}, d.console...)
}

// DomainCycles reports the simulated cycles charged to a domain's quanta
// so far — the per-domain successor of the old global cycle-account map.
func (x *Xen) DomainCycles(id DomID) uint64 {
	d, ok := x.Dom(id)
	if !ok {
		return 0
	}
	return d.cycles.Load()
}

// ExitCount reports how many VMEXITs with the given reason the
// hypervisor has dispatched.
func (x *Xen) ExitCount(r cpu.ExitReason) uint64 {
	if int(r) >= len(x.exitCounts) {
		return 0
	}
	return x.exitCounts[r].Load()
}

// ExitCountsSnapshot returns the non-zero exit-reason tallies as a map.
func (x *Xen) ExitCountsSnapshot() map[cpu.ExitReason]uint64 {
	out := make(map[cpu.ExitReason]uint64)
	for i := range x.exitCounts {
		if n := x.exitCounts[i].Load(); n > 0 {
			out[cpu.ExitReason(i)] = n
		}
	}
	return out
}
