package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"fidelius/internal/telemetry"
	"fidelius/internal/workload"
)

// CSV export, so the figure data can be re-plotted outside Go.

// WriteFigureCSV streams a figure's rows (plus the average) as CSV. The
// trailing columns are named after the telemetry registry metrics they
// carry, so plots can join them against WriteTelemetryCSV output.
func WriteFigureCSV(w io.Writer, rows []FigRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "fidelius_pct", "fidelius_enc_pct", "paper_fid_pct", "paper_enc_pct",
		"gate.type1", "gate.type2", "gate.type3", "cpu.vmexits",
	}); err != nil {
		return err
	}
	all := append(append([]FigRow{}, rows...), Average(rows))
	for _, r := range all {
		rec := []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Fid),
			fmt.Sprintf("%.3f", r.Enc),
			fmt.Sprintf("%.3f", r.PaperFid),
			fmt.Sprintf("%.3f", r.PaperEnc),
			fmt.Sprint(r.Gate1),
			fmt.Sprint(r.Gate2),
			fmt.Sprint(r.Gate3),
			fmt.Sprint(r.VMExits),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTelemetryCSV streams a registry snapshot as metric,value CSV rows,
// sorted by metric name. Histograms expand to .count, .sum and .mean rows.
func WriteTelemetryCSV(w io.Writer, s telemetry.Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "value"}); err != nil {
		return err
	}
	rows := make(map[string]string, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms))
	for k, v := range s.Counters {
		rows[k] = fmt.Sprint(v)
	}
	for k, v := range s.Gauges {
		rows[k] = fmt.Sprint(v)
	}
	for k, h := range s.Histograms {
		rows[k+".count"] = fmt.Sprint(h.Count)
		rows[k+".sum"] = fmt.Sprint(h.Sum)
		rows[k+".mean"] = fmt.Sprintf("%.3f", h.Mean())
	}
	names := make([]string, 0, len(rows))
	for k := range rows {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := cw.Write([]string{k, rows[k]}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFioCSV streams Table 3 as CSV.
func WriteFioCSV(w io.Writer, rows []FioRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"operation", "xen_cycles_per_sector", "fidelius_cycles_per_sector", "slowdown_pct", "paper_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Pattern.String(),
			fmt.Sprintf("%.1f", r.BaseCycles),
			fmt.Sprintf("%.1f", r.FidCycles),
			fmt.Sprintf("%.3f", r.Slowdown),
			fmt.Sprintf("%.3f", r.PaperSlowdown),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMigrationCSV streams the migration table as CSV.
func WriteMigrationCSV(w io.Writer, rows []MigRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"wset_pages", "rounds", "pages_sent", "redirtied", "bytes_on_wire",
		"live_downtime_cycles", "stopcopy_downtime_cycles", "forced_final",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprint(r.WSetPages),
			fmt.Sprint(r.Rounds),
			fmt.Sprint(r.PagesSent),
			fmt.Sprint(r.Redirtied),
			fmt.Sprint(r.BytesOnWire),
			fmt.Sprint(r.LiveDowntime),
			fmt.Sprint(r.StopCopyDowntime),
			fmt.Sprint(r.ForcedFinal),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FioPatterns lists Table 3's patterns in row order, for callers driving
// runFio themselves.
var FioPatterns = []workload.FioPattern{
	workload.RandRead, workload.SeqRead, workload.RandWrite, workload.SeqWrite,
}
