// attacksim runs the adversary suite of Section 6 against one or both
// platform configurations and prints the outcome matrix.
//
// Usage:
//
//	attacksim [-config xen|fidelius|both]
package main

import (
	"flag"
	"fmt"
	"log"

	"fidelius/internal/attack"
)

func run(protected bool) {
	outcomes, err := attack.RunAll(protected)
	if err != nil {
		log.Fatal(err)
	}
	blocked := 0
	for _, o := range outcomes {
		fmt.Println(o)
		if !o.Succeeded {
			blocked++
		}
	}
	fmt.Printf("-- %d/%d attacks blocked --\n\n", blocked, len(outcomes))
}

func main() {
	config := flag.String("config", "both", "configuration to attack: xen, fidelius, or both")
	flag.Parse()

	fmt.Printf("%-28s %-9s %-9s %s\n", "attack", "config", "verdict", "detail")
	fmt.Println("--------------------------------------------------------------------------------")
	switch *config {
	case "xen":
		run(false)
	case "fidelius":
		run(true)
	case "both":
		run(false)
		run(true)
	default:
		log.Fatalf("unknown config %q", *config)
	}
}
