package xen

import (
	"errors"
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
)

// The para-virtualized block protocol (Section 2.3): the front-end driver
// in the guest shares a ring page and a set of persistent data pages with
// the back-end in the driver domain, fills requests, and kicks an event
// channel; the back-end moves sectors between the data pages and the disk
// and posts a response.
//
// Ring page layout (one outstanding request, synchronous):
//
//	offset   0: request  {id, op, lba, count, dataOff} (5×u64)
//	offset 256: response {id, status}                  (2×u64)
//
// The shared pages are necessarily unencrypted (C=0): the driver domain
// could not read them otherwise. What privacy the guest gets is decided by
// what the front-end chooses to place there — plaintext in the baseline,
// Kblk- or TEK-ciphertext under Fidelius's two I/O protection modes.

// Block operations.
const (
	// BlkOpRead requests sectors from disk into the data area.
	BlkOpRead = 0
	// BlkOpWrite requests sectors from the data area to disk.
	BlkOpWrite = 1
)

// Block response status.
const (
	// BlkStatusOK reports success.
	BlkStatusOK = 0
	// BlkStatusError reports failure.
	BlkStatusError = 1
)

// SectorsPerPage is the number of 512-byte sectors in one data page.
const SectorsPerPage = hw.PageSize / disk.SectorSize

const (
	reqOffset  = 0
	respOffset = 256
)

// BlkRingGFN and BlkDataGFN fix where the shared pages live in the
// guest's physical space.
const (
	BlkRingGFN = 1
	BlkDataGFN = 2
)

// BlockBackend is the driver-domain half of the PV block device. It is
// untrusted: everything it observes (Snoop) is available to the
// adversary of the threat model.
type BlockBackend struct {
	x       *Xen
	d       *Domain
	disk    *disk.Disk
	ringPA  hw.PhysAddr
	dataPA  []hw.PhysAddr
	port    uint32
	baseLBA uint64

	// Snoop, when enabled, captures every byte the backend moves —
	// modelling a curious driver domain on the I/O path.
	SnoopEnabled bool
	Snoop        []byte

	// nextRead and nextWrite track sequentiality for the seek model.
	nextRead  uint64
	nextWrite uint64
}

// AttachBlockDevice wires a disk to a domain: it establishes the
// persistent grants for the ring and data pages, binds the event channel,
// and records the layout in the domain's start info (which the toolstack
// publishes afterwards with WriteStartInfo).
func (x *Xen) AttachBlockDevice(d *Domain, dk *disk.Disk, dataPages int, port uint32) (*BlockBackend, error) {
	if dataPages < 1 {
		return nil, errors.New("xen: block device needs at least one data page")
	}
	need := uint64(BlkDataGFN + dataPages)
	if need >= uint64(d.MemPages) {
		return nil, fmt.Errorf("xen: domain too small for %d data pages", dataPages)
	}
	b := &BlockBackend{x: x, d: d, disk: dk, port: port}

	// Persistent grants for ring + data pages, created on behalf of the
	// front-end during driver initialisation.
	pas, err := x.SharePages(d, BlkRingGFN, dataPages+1)
	if err != nil {
		return nil, err
	}
	b.ringPA = pas[0]
	b.dataPA = pas[1:]

	x.Events.Bind(d.ID, port, b.handleKick)
	d.Info.RingGFN = BlkRingGFN
	d.Info.DataGFN = BlkDataGFN
	d.Info.DataLen = uint64(dataPages)
	d.Info.Port = port
	x.domsMu.Lock()
	x.backends[d.ID] = b
	x.domsMu.Unlock()
	// Advertise the device in the XenStore, as the toolstack would.
	prefix := fmt.Sprintf("device/vbd/%d/", d.ID)
	x.Store.Set(prefix+"ring-gfn", fmt.Sprint(BlkRingGFN))
	x.Store.Set(prefix+"data-gfn", fmt.Sprint(BlkDataGFN))
	x.Store.Set(prefix+"data-pages", fmt.Sprint(dataPages))
	x.Store.Set(prefix+"event-channel", fmt.Sprint(port))
	return b, nil
}

// SharePages establishes persistent dom0 grants for count consecutive
// guest frames starting at startGFN (on behalf of the guest's front-end
// driver, as the toolstack does during device attach) and returns the
// backing physical addresses in order. Each page gets a grant-table
// entry through the interposer — Fidelius's gatekeeper verifies the
// sharing was pre-declared — and is retyped UseShared in the allocator.
func (x *Xen) SharePages(d *Domain, startGFN uint64, count int) ([]hw.PhysAddr, error) {
	pas := make([]hw.PhysAddr, 0, count)
	for i := 0; i < count; i++ {
		gfn := startGFN + uint64(i)
		pfn, ok := d.GPAFrame(gfn)
		if !ok {
			return nil, fmt.Errorf("xen: shared gfn %d unbacked", gfn)
		}
		// Grant bytes are shared host state: raw reads take the gate
		// lock, released before the interposed write takes its own.
		x.M.Host.Lock()
		ref, err := d.Grant.FreeRef()
		x.M.Host.Unlock()
		if err != nil {
			return nil, err
		}
		slot, err := d.Grant.SlotPA(ref)
		if err != nil {
			return nil, err
		}
		entry := GrantEntry{Flags: GrantInUse, Grantee: Dom0, GFN: gfn}
		if err := x.Interpose.WriteGrant(d, slot, entry); err != nil {
			return nil, err
		}
		x.M.Alloc.SetUse(pfn, UseShared, d.ID)
		pas = append(pas, pfn.Addr())
	}
	return pas, nil
}

// Backend returns the block backend attached to a domain.
func (x *Xen) Backend(id DomID) (*BlockBackend, bool) {
	x.domsMu.RLock()
	b, ok := x.backends[id]
	x.domsMu.RUnlock()
	return b, ok
}

func (b *BlockBackend) read64(pa hw.PhysAddr) (uint64, error) {
	var buf [8]byte
	if err := b.x.M.Ctl.Read(hw.Access{PA: pa}, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

func (b *BlockBackend) write64(pa hw.PhysAddr, v uint64) error {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return b.x.M.Ctl.Write(hw.Access{PA: pa}, buf[:])
}

// dataSector returns the physical address of the idx'th sector of the
// data area.
func (b *BlockBackend) dataSector(idx uint64) (hw.PhysAddr, error) {
	page := idx / SectorsPerPage
	if page >= uint64(len(b.dataPA)) {
		return 0, fmt.Errorf("xen: data sector %d beyond shared area", idx)
	}
	return b.dataPA[page] + hw.PhysAddr(idx%SectorsPerPage)*disk.SectorSize, nil
}

// handleKick services one request from the ring.
func (b *BlockBackend) handleKick() error {
	var req [5]uint64
	for i := range req {
		v, err := b.read64(b.ringPA + reqOffset + hw.PhysAddr(8*i))
		if err != nil {
			return err
		}
		req[i] = v
	}
	id, op, lba, count, dataOff := req[0], req[1], req[2], req[3], req[4]
	tel := b.x.M.Ctl.Telem
	tel.M.BlkRequests.Inc()
	tel.M.BlkSectors.Add(count)
	tel.M.BlkReqSectors.Observe(count)
	if tel.Tracing() {
		dir := "read"
		if op == BlkOpWrite {
			dir = "write"
		}
		tel.EmitDetail(telemetry.KindBlkRequest, uint32(b.d.ID), uint32(b.d.ASID),
			count*cycles.DiskSectorAccess, lba, count, dir)
	}
	// Seek model: non-sequential requests pay head movement (reads) or a
	// smaller write-cache penalty (writes). The xen.disk_seeks counters
	// are the per-kind seek totals benchtab and fideliustop divide by
	// serve.ops to show seeks-per-op.
	switch op {
	case BlkOpRead:
		if lba != b.nextRead {
			b.x.M.Ctl.Cycles.Charge(cycles.DiskSeekRead)
			tel.M.DiskSeekReads.Inc()
		}
		b.nextRead = lba + count
	case BlkOpWrite:
		if lba != b.nextWrite {
			b.x.M.Ctl.Cycles.Charge(cycles.DiskSeekWrite)
			tel.M.DiskSeekWrites.Inc()
		}
		b.nextWrite = lba + count
	}
	status := uint64(BlkStatusOK)
	buf := make([]byte, disk.SectorSize)
	for s := uint64(0); s < count; s++ {
		pa, err := b.dataSector(dataOff + s)
		if err != nil {
			status = BlkStatusError
			break
		}
		b.x.M.Ctl.Cycles.Charge(cycles.DiskSectorAccess)
		switch op {
		case BlkOpWrite:
			if err := b.x.M.Ctl.Read(hw.Access{PA: pa}, buf); err != nil {
				status = BlkStatusError
				break
			}
			if b.SnoopEnabled {
				b.Snoop = append(b.Snoop, buf...)
			}
			if err := b.disk.WriteSector(b.baseLBA+lba+s, buf); err != nil {
				status = BlkStatusError
			}
		case BlkOpRead:
			if err := b.disk.ReadSector(b.baseLBA+lba+s, buf); err != nil {
				status = BlkStatusError
				break
			}
			if b.SnoopEnabled {
				b.Snoop = append(b.Snoop, buf...)
			}
			if err := b.x.M.Ctl.Write(hw.Access{PA: pa}, buf); err != nil {
				status = BlkStatusError
			}
		default:
			status = BlkStatusError
		}
		if status != BlkStatusOK {
			break
		}
	}
	if err := b.write64(b.ringPA+respOffset, id); err != nil {
		return err
	}
	return b.write64(b.ringPA+respOffset+8, status)
}

// BlockFrontend is the guest half of the PV block device. This baseline
// front-end moves plaintext through the shared pages; the Fidelius I/O
// protection layers (internal/core) wrap it with encryption.
type BlockFrontend struct {
	g        *GuestEnv
	ringGPA  uint64
	dataGPA  uint64
	dataLen  uint64
	port     uint32
	nextID   uint64
	requests uint64
}

// NewBlockFrontend initialises the front-end from the guest's start info.
func NewBlockFrontend(g *GuestEnv) (*BlockFrontend, error) {
	if g.Info.DataLen == 0 {
		return nil, errors.New("xen: no block device in start info")
	}
	return &BlockFrontend{
		g:       g,
		ringGPA: g.Info.RingGFN << hw.PageShift,
		dataGPA: g.Info.DataGFN << hw.PageShift,
		dataLen: g.Info.DataLen,
		port:    g.Info.Port,
	}, nil
}

// DataSectors reports the capacity of the shared data area in sectors.
func (f *BlockFrontend) DataSectors() uint64 { return f.dataLen * SectorsPerPage }

// Requests reports how many ring round trips the front-end has issued.
func (f *BlockFrontend) Requests() uint64 { return f.requests }

// Request posts one ring request and waits for its response. Exposed so
// protected front-ends (internal/core) can drive the ring themselves
// after staging ciphertext in the shared area.
func (f *BlockFrontend) Request(op, lba, count, dataOff uint64) error {
	id := f.nextID
	f.nextID++
	f.requests++
	req := [5]uint64{id, op, lba, count, dataOff}
	var buf [40]byte
	for i, v := range req {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(v >> (8 * j))
		}
	}
	if err := f.g.WriteUnencrypted(f.ringGPA+reqOffset, buf[:]); err != nil {
		return err
	}
	if _, err := f.g.Hypercall(HCEventChannelOp, EvtOpSend, uint64(f.port)); err != nil {
		return err
	}
	var resp [16]byte
	if err := f.g.ReadUnencrypted(f.ringGPA+respOffset, resp[:]); err != nil {
		return err
	}
	var gotID, status uint64
	for j := 0; j < 8; j++ {
		gotID |= uint64(resp[j]) << (8 * j)
		status |= uint64(resp[8+j]) << (8 * j)
	}
	if gotID != id {
		return fmt.Errorf("xen: response id %d for request %d", gotID, id)
	}
	if status != BlkStatusOK {
		return fmt.Errorf("xen: block request failed (status %d)", status)
	}
	return nil
}

// PutData copies bytes into the shared data area at a sector index.
func (f *BlockFrontend) PutData(sectorIdx uint64, data []byte) error {
	return f.g.WriteUnencrypted(f.dataGPA+sectorIdx*disk.SectorSize, data)
}

// GetData copies bytes out of the shared data area at a sector index.
func (f *BlockFrontend) GetData(sectorIdx uint64, buf []byte) error {
	return f.g.ReadUnencrypted(f.dataGPA+sectorIdx*disk.SectorSize, buf)
}

// WriteSectors writes len(data)/512 sectors at lba, staging through the
// shared area in plaintext (the unprotected baseline).
func (f *BlockFrontend) WriteSectors(lba uint64, data []byte) error {
	if len(data)%disk.SectorSize != 0 {
		return fmt.Errorf("xen: write of %d bytes is not sector aligned", len(data))
	}
	total := uint64(len(data) / disk.SectorSize)
	window := f.DataSectors()
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		chunk := data[done*disk.SectorSize : (done+n)*disk.SectorSize]
		if err := f.PutData(0, chunk); err != nil {
			return err
		}
		if err := f.Request(BlkOpWrite, lba+done, n, 0); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ReadSectors reads len(buf)/512 sectors at lba through the shared area.
func (f *BlockFrontend) ReadSectors(lba uint64, buf []byte) error {
	if len(buf)%disk.SectorSize != 0 {
		return fmt.Errorf("xen: read of %d bytes is not sector aligned", len(buf))
	}
	total := uint64(len(buf) / disk.SectorSize)
	window := f.DataSectors()
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		if err := f.Request(BlkOpRead, lba+done, n, 0); err != nil {
			return err
		}
		if err := f.GetData(0, buf[done*disk.SectorSize:(done+n)*disk.SectorSize]); err != nil {
			return err
		}
		done += n
	}
	return nil
}
