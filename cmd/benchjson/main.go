// benchjson converts `go test -bench` text output into a stable JSON
// artifact for the perf CI lane. It reads the benchmark stream on stdin,
// tees the raw text to stderr so the run stays readable, and writes one
// JSON document (benchmark name → metric map) to the -o file.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the standard metrics emitted by
// the testing package plus any custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document written to the output file.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses a single `Benchmark...` result line. Format after the
// name and iteration count is a sequence of "value unit" pairs, e.g.
//
//	BenchmarkX/case-4   100   12293 ns/op   666.37 MB/s   32 B/op   2 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
