package core

import (
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/xen"
)

// The two para-virtualized I/O protection interfaces of Section 4.3.5.
// Both run inside the guest, so the data placed in the shared (plaintext)
// pages is already ciphertext by the time the driver domain can see it.

// AESNIFront is the AES-NI path: the front-end driver encrypts and
// decrypts block data with Kblk directly, using the hardware AES
// instruction set. Write requests are batched; reads are decrypted at
// sector granularity, which can duplicate work — exactly the asymmetry the
// paper's fio results show (Table 3).
type AESNIFront struct {
	g      *xen.GuestEnv
	f      *xen.BlockFrontend
	cipher *disk.ImageCipher
}

// NewAESNIFront builds the protected front-end. kblk is read by the guest
// kernel from its own (decrypted) kernel image.
func NewAESNIFront(g *xen.GuestEnv, f *xen.BlockFrontend, kblk [32]byte) (*AESNIFront, error) {
	c, err := disk.NewImageCipher(kblk)
	if err != nil {
		return nil, err
	}
	return &AESNIFront{g: g, f: f, cipher: c}, nil
}

// aesniSectorCost is the AES-NI cost of one 512-byte sector.
const aesniSectorCost = disk.SectorSize / 16 * cycles.AESBlockHW

// WriteSectors encrypts data with Kblk and writes it through the PV path.
// Encryption happens in a batched manner off the critical path.
func (a *AESNIFront) WriteSectors(lba uint64, data []byte) error {
	if len(data)%disk.SectorSize != 0 {
		return fmt.Errorf("core: write of %d bytes is not sector aligned", len(data))
	}
	total := uint64(len(data) / disk.SectorSize)
	window := a.f.DataSectors()
	buf := make([]byte, disk.SectorSize)
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		// Batched write encryption overlaps the previous request's disk
		// time: large batches hide ~70% of the AES latency, small ones
		// only ~30% (the fio write asymmetry of Table 3).
		factor := uint64(7)
		if n >= 16 {
			factor = 3
		}
		a.g.Charge(n * aesniSectorCost * factor / 10)
		for s := uint64(0); s < n; s++ {
			copy(buf, data[(done+s)*disk.SectorSize:])
			if err := a.cipher.EncryptSector(lba+done+s, buf); err != nil {
				return err
			}
			if err := a.f.PutData(s, buf); err != nil {
				return err
			}
		}
		if err := a.f.Request(xen.BlkOpWrite, lba+done, n, 0); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ReadSectors reads through the PV path and decrypts with Kblk. The
// decryption sits on the critical path and — because requests complete at
// sector granularity — can be duplicated, which the paper identifies as
// the seq-read overhead source; the duplication is modelled in the cost.
func (a *AESNIFront) ReadSectors(lba uint64, buf []byte) error {
	if len(buf)%disk.SectorSize != 0 {
		return fmt.Errorf("core: read of %d bytes is not sector aligned", len(buf))
	}
	total := uint64(len(buf) / disk.SectorSize)
	window := a.f.DataSectors()
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		if err := a.f.Request(xen.BlkOpRead, lba+done, n, 0); err != nil {
			return err
		}
		for s := uint64(0); s < n; s++ {
			sector := buf[(done+s)*disk.SectorSize : (done+s+1)*disk.SectorSize]
			if err := a.f.GetData(s, sector); err != nil {
				return err
			}
			// Decryption on the critical path, duplicated at sector
			// granularity.
			a.g.Charge(2 * aesniSectorCost)
			if err := a.cipher.DecryptSector(lba+done+s, sector); err != nil {
				return err
			}
		}
		done += n
	}
	return nil
}

// SEVFront is the SEV-API path for processors without AES-NI: the guest
// stages plaintext in its dedicated encrypted buffer Md and asks Fidelius
// (via the retrofitted event channel hypercall) to have the firmware
// re-encrypt it into the shared area under the transport key.
type SEVFront struct {
	g     *xen.GuestEnv
	f     *xen.BlockFrontend
	mdGFN uint64
}

// NewSEVFront builds the SEV-path front-end. The Md buffer is the first
// guest page past the shared data area.
func NewSEVFront(g *xen.GuestEnv, f *xen.BlockFrontend) *SEVFront {
	return &SEVFront{g: g, f: f, mdGFN: g.Info.DataGFN + g.Info.DataLen}
}

// MdGFN reports the dedicated buffer's guest frame.
func (s *SEVFront) MdGFN() uint64 { return s.mdGFN }

// window is the per-request sector budget: bounded by both the shared
// area and the one-page Md buffer.
func (s *SEVFront) window() uint64 {
	w := s.f.DataSectors()
	if w > xen.SectorsPerPage {
		w = xen.SectorsPerPage
	}
	return w
}

// WriteSectors copies plaintext into Md (ordinary encrypted guest
// memory), has the firmware re-encrypt it into the shared area, then
// issues the ring request.
func (s *SEVFront) WriteSectors(lba uint64, data []byte) error {
	if len(data)%disk.SectorSize != 0 {
		return fmt.Errorf("core: write of %d bytes is not sector aligned", len(data))
	}
	total := uint64(len(data) / disk.SectorSize)
	window := s.window()
	mdBase := s.mdGFN << hw.PageShift
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		if err := s.g.Write(mdBase, data[done*disk.SectorSize:(done+n)*disk.SectorSize]); err != nil {
			return err
		}
		if _, err := s.g.Hypercall(xen.HCFideliusIO, 1, s.mdGFN, lba+done, n, 0); err != nil {
			return err
		}
		if err := s.f.Request(xen.BlkOpWrite, lba+done, n, 0); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ReadSectors issues the ring request, then has the firmware re-encrypt
// the shared-area ciphertext into Md under Kvek, and copies it out.
func (s *SEVFront) ReadSectors(lba uint64, buf []byte) error {
	if len(buf)%disk.SectorSize != 0 {
		return fmt.Errorf("core: read of %d bytes is not sector aligned", len(buf))
	}
	total := uint64(len(buf) / disk.SectorSize)
	window := s.window()
	mdBase := s.mdGFN << hw.PageShift
	for done := uint64(0); done < total; {
		n := total - done
		if n > window {
			n = window
		}
		if err := s.f.Request(xen.BlkOpRead, lba+done, n, 0); err != nil {
			return err
		}
		if _, err := s.g.Hypercall(xen.HCFideliusIO, 0, s.mdGFN, lba+done, n, 0); err != nil {
			return err
		}
		if err := s.g.Read(mdBase, buf[done*disk.SectorSize:(done+n)*disk.SectorSize]); err != nil {
			return err
		}
		done += n
	}
	return nil
}
