package workload

import (
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/xen"
)

// probesPerIter is the number of real memory accesses issued per
// iteration to *measure* the machine's DRAM-access cost under the current
// configuration (encrypted or not, through the real controller and
// engine); the profile's remaining modelled misses are charged at the
// measured rate. This makes encryption overhead an emergent property of
// the actual machine state rather than an input.
const probesPerIter = 16

// wsBaseGFN is the first guest frame of the probing working set.
const wsBaseGFN = 16

// wsPages is the working-set size in pages. With a stride-64 cyclic sweep
// and a working set larger than the cache, every probe misses.
const wsPages = 96

// Result is one workload execution.
type Result struct {
	Profile    Profile
	Config     string
	Iterations int
	Cycles     uint64
}

// CyclesPerIter reports the average cost of one iteration.
func (r Result) CyclesPerIter() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Iterations)
}

// Overhead returns the normalized overhead of r against a baseline, in
// percent — the metric of Figures 5 and 6.
func (r Result) Overhead(base Result) float64 {
	b := base.CyclesPerIter()
	if b == 0 {
		return 0
	}
	return 100 * (r.CyclesPerIter() - b) / b
}

// GuestMemPages is the memory a workload guest needs.
const GuestMemPages = wsBaseGFN + wsPages + 8

// GuestFunc returns the guest kernel that executes the profile for iters
// iterations. It must run on a domain with at least GuestMemPages pages.
func GuestFunc(p Profile, iters int, out *Result) xen.GuestFunc {
	return func(g *xen.GuestEnv) error {
		// Warm the working set so lazily populated NPTs, PIT claims and
		// translation caches settle before measurement.
		var w [8]byte
		for pg := 0; pg < wsPages; pg++ {
			if err := g.Read(uint64(wsBaseGFN+pg)<<hw.PageShift, w[:]); err != nil {
				return fmt.Errorf("warmup: %w", err)
			}
		}
		if _, err := g.Hypercall(xen.HCVoid); err != nil {
			return err
		}

		nMiss := int(float64(p.MemPerIter) * p.MissRate)
		nHit := p.MemPerIter - nMiss
		base := uint64(wsBaseGFN) << hw.PageShift
		const wsBytes = uint64(wsPages) << hw.PageShift
		var off uint64
		hcDebt := 0

		start := g.Cycles()
		for i := 0; i < iters; i++ {
			// Compute phase.
			g.Charge(uint64(p.ALUPerIter) * cycles.ALUOp)

			// Cache-hit accesses.
			g.Charge(uint64(nHit) * cycles.CacheAccess)

			// Probe phase: real DRAM accesses through the controller
			// measure the per-miss cost under this configuration.
			p0 := g.Cycles()
			for k := 0; k < probesPerIter; k++ {
				if err := g.Read(base+off, w[:]); err != nil {
					return fmt.Errorf("probe: %w", err)
				}
				off = (off + hw.LineSize) % wsBytes
			}
			perMiss := (g.Cycles() - p0) / probesPerIter
			if nMiss > probesPerIter {
				g.Charge(uint64(nMiss-probesPerIter) * perMiss)
			}

			// Service exits.
			hcDebt += p.HCPerKIter
			for hcDebt >= 1000 {
				if _, err := g.Hypercall(xen.HCVoid); err != nil {
					return err
				}
				hcDebt -= 1000
			}
		}
		out.Cycles = g.Cycles() - start
		out.Iterations = iters
		out.Profile = p
		return nil
	}
}

// Run executes the profile on an existing domain and returns the result.
func Run(x *xen.Xen, d *xen.Domain, p Profile, iters int) (Result, error) {
	var res Result
	res.Config = x.Interpose.Name()
	x.StartVCPU(d, GuestFunc(p, iters, &res))
	if err := x.Run(d); err != nil {
		return res, err
	}
	return res, nil
}
