package core

import (
	"testing"
	"testing/quick"

	"fidelius/internal/hw"
	"fidelius/internal/xen"
)

// Property tests on the two information tables: whatever is stored in
// their memory-resident representation must read back identically.

func TestPropertyPITEntryBits(t *testing.T) {
	f := func(use uint8, owner uint16, asid uint16) bool {
		u := xen.PageUse(use % 11)
		o := xen.DomID(owner & 0x1FFF)
		a := hw.ASID(asid & 0x3FFF)
		e := MakePITEntry(u, o, a)
		return e.Valid() && e.Use() == u && e.Owner() == o && e.ASID() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPITStorageRoundTrip(t *testing.T) {
	_, fid := newPlatform(t)
	f := func(pfnSeed uint32, use uint8, owner uint16) bool {
		pfn := hw.PFN(pfnSeed % (1 << 20)) // within coverage
		e := MakePITEntry(xen.PageUse(use%11), xen.DomID(owner&0x1FFF), 3)
		if err := fid.PIT.Set(pfn, e); err != nil {
			return false
		}
		got, err := fid.PIT.Get(pfn)
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGITStorageRoundTrip(t *testing.T) {
	_, fid := newPlatform(t)
	slot := 0
	f := func(init, target uint16, gfn, pfn uint32, count uint16, ro bool) bool {
		if slot >= GITEntriesPerPage {
			return true // table full; earlier iterations covered it
		}
		e := GITEntry{
			Initiator: xen.DomID(init),
			Target:    xen.DomID(target),
			ReadOnly:  ro,
			GFNStart:  uint64(gfn),
			PFNStart:  hw.PFN(pfn),
			Count:     uint64(count%64) + 1,
		}
		if err := fid.GIT.Add(e); err != nil {
			return false
		}
		got, err := fid.GIT.Entry(slot)
		slot++
		if err != nil || !got.Valid {
			return false
		}
		e.Valid = true
		return got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGITCoverage(t *testing.T) {
	f := func(pfnStart uint32, count uint16, probe uint32) bool {
		e := GITEntry{Valid: true, PFNStart: hw.PFN(pfnStart), Count: uint64(count)}
		in := e.CoversPFN(hw.PFN(probe))
		want := uint64(probe) >= uint64(pfnStart) && uint64(probe)-uint64(pfnStart) < uint64(count)
		return in == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOnceVec checks the §5.3 bit-vector: any byte written once
// flips markRange's freshness for overlapping ranges.
func TestPropertyOnceVec(t *testing.T) {
	f := func(off1, n1, off2, n2 uint16) bool {
		o1, l1 := int(off1)%hw.PageSize, int(n1)%256+1
		o2, l2 := int(off2)%hw.PageSize, int(n2)%256+1
		var v onceVec
		if !v.markRange(o1, l1) {
			return false // first mark of a fresh vec is always fresh
		}
		overlap := o1 < o2+l2 && o2 < o1+l1
		fresh2 := v.markRange(o2, l2)
		// Second mark is fresh iff the ranges do not overlap (within
		// the page).
		e1 := min(o1+l1, hw.PageSize)
		e2 := min(o2+l2, hw.PageSize)
		overlap = o1 < e2 && o2 < e1
		return fresh2 == !overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
