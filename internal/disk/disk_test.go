package disk

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDiskReadWrite(t *testing.T) {
	d := New(16)
	if d.Sectors() != 16 {
		t.Fatalf("sectors = %d", d.Sectors())
	}
	sector := bytes.Repeat([]byte{0xAB}, SectorSize)
	if err := d.WriteSector(3, sector); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := d.ReadSector(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sector) {
		t.Fatal("sector round trip mismatch")
	}
	if err := d.ReadSector(16, got); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := d.WriteSector(2, []byte{1, 2}); err == nil {
		t.Fatal("expected short-write error")
	}
}

func TestImageCipherRoundTrip(t *testing.T) {
	var kblk [32]byte
	kblk[0] = 9
	c, err := NewImageCipher(kblk)
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte("filesystem block"), SectorSize/16)
	buf := append([]byte{}, plain...)
	if err := c.EncryptSector(7, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, plain) {
		t.Fatal("encryption is identity")
	}
	if err := c.DecryptSector(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, plain) {
		t.Fatal("decrypt(encrypt) != identity")
	}
	// Decrypting at the wrong LBA yields garbage (address tweak).
	if err := c.EncryptSector(7, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.DecryptSector(8, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, plain) {
		t.Fatal("tweak is not LBA dependent")
	}
}

func TestSameSectorDifferentLBACiphertext(t *testing.T) {
	var kblk [32]byte
	c, _ := NewImageCipher(kblk)
	plain := bytes.Repeat([]byte{0x42}, SectorSize)
	a := append([]byte{}, plain...)
	b := append([]byte{}, plain...)
	c.EncryptSector(0, a)
	c.EncryptSector(1, b)
	if bytes.Equal(a, b) {
		t.Fatal("identical sectors at different LBAs encrypt identically")
	}
}

func TestEncryptImage(t *testing.T) {
	var kblk [32]byte
	kblk[5] = 1
	c, _ := NewImageCipher(kblk)
	plain := []byte("a short filesystem image, not sector aligned")
	enc, err := c.EncryptImage(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc)%SectorSize != 0 {
		t.Fatal("image not padded to sector size")
	}
	if bytes.Contains(enc, []byte("filesystem")) {
		t.Fatal("image plaintext visible")
	}
	// Decrypt sector 0 recovers the prefix.
	if err := c.DecryptSector(0, enc[:SectorSize]); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, plain[:len(plain)]) {
		t.Fatal("decrypted image mismatch")
	}
}

func TestUnalignedBufferRejected(t *testing.T) {
	var kblk [32]byte
	c, _ := NewImageCipher(kblk)
	if err := c.EncryptSector(0, make([]byte, 15)); err == nil {
		t.Fatal("unaligned buffer must be rejected")
	}
}

func TestPropertyImageCipherRoundTrip(t *testing.T) {
	var kblk [32]byte
	kblk[1] = 77
	c, _ := NewImageCipher(kblk)
	f := func(lba uint16, seed byte) bool {
		sector := bytes.Repeat([]byte{seed}, SectorSize)
		buf := append([]byte{}, sector...)
		if err := c.EncryptSector(uint64(lba), buf); err != nil {
			return false
		}
		if err := c.DecryptSector(uint64(lba), buf); err != nil {
			return false
		}
		return bytes.Equal(buf, sector)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSnapshotIsCopy(t *testing.T) {
	d := New(2)
	d.WriteSector(0, bytes.Repeat([]byte{1}, SectorSize))
	snap := d.Snapshot()
	d.WriteSector(0, bytes.Repeat([]byte{2}, SectorSize))
	if snap[0] != 1 {
		t.Fatal("snapshot aliases live disk")
	}
}
