// Package kv is a small append-only key-value store designed to run
// *inside* a protected guest: it keeps its index in guest (encrypted)
// memory and persists records through any of the platform's block
// front-ends. Running it under Fidelius demonstrates the paper's
// motivating scenario — a tenant service whose data stays confidential
// against the hypervisor, the driver domain and the physical disk.
//
// On-disk layout: a sequence of sector-aligned records,
//
//	[4B magic][4B keyLen][4B valLen][8B epoch][4B crc][key][value][padding to sector]
//
// terminated by a zero sector. A valLen of 0xFFFFFFFF marks a tombstone
// (the key is deleted; no value bytes follow), so an empty value and a
// deletion are distinct on disk. The crc (IEEE CRC-32 over the length
// fields, epoch, key and value) exists for group commit: a batch is
// written as one contiguous record span after the terminator, so a
// crash can tear the span mid-record, leaving a head sector whose
// lengths parse but whose tail was never written. Replay detects that
// with the crc and truncates the log at the torn record — the longest
// valid prefix wins. The store is crash-simple: reopening scans the log
// and rebuilds the index.
//
// Write ordering: every commit (single Put/Delete or a batched Apply)
// writes the *new* terminator first, then the record span. A torn
// sequence therefore always replays to a valid prefix of the committed
// ops. When the device implements Flusher (see WriteCoalescer), the
// store inserts a flush barrier between the terminator and the span so
// coalescing cannot reorder them into one request. If the span itself
// fails mid-commit, the error path seals the log: the landed prefix is
// zeroed back out so a later crash cannot replay mutations the caller
// was told had failed.
//
// Compaction: a region initialised with FormatCompactable carries a
// versioned superblock sector followed by two equal log halves. Only
// one half is live at a time; Compact rewrites the live records as one
// group-committed span into the idle half and then flips the
// superblock — a single sector-atomic write — to the new half and a new
// epoch. A crash at any point replays either the old log or the new
// one, never a mix: before the flip the superblock still names the old
// half, and after it the epoch tag in every record header lets replay
// reject stale debris left over from the half's previous life.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// BlockDev is the sector interface the store persists through — satisfied
// by the baseline and both protected front-ends.
type BlockDev interface {
	WriteSectors(lba uint64, data []byte) error
	ReadSectors(lba uint64, buf []byte) error
}

// SectorSize matches the platform's disk sector size.
const SectorSize = 512

const magic = 0xF1DE1105

// superMagic marks the superblock sector of a compactable region.
const superMagic = 0xF1DE5B0C

// headerSize is the fixed record prefix: magic, keyLen, valLen, epoch, crc.
const headerSize = 24

// Bounds enforced on both the write path (append/Apply) and replay. The
// pair must agree: a record accepted by Put but rejected by replay would
// make the store unopenable.
const (
	MaxKeyLen   = 4096
	MaxValueLen = 1 << 20
)

// tombstoneLen in the valLen header field marks a deletion record. The
// sentinel keeps tombstones distinct from legitimate empty values, which
// earlier versions conflated (a Put of an empty value acted as a Delete).
const tombstoneLen = ^uint32(0)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kv: key not found")

// ErrCorrupt reports an undecodable log.
var ErrCorrupt = errors.New("kv: corrupt log")

// ErrTooLarge reports a key or value exceeding the on-disk bounds. It is
// returned at append time — before this check existed an oversized Put
// succeeded and then poisoned the log, so the *next* Open failed with
// ErrCorrupt.
var ErrTooLarge = errors.New("kv: key or value too large")

// ErrFull reports a commit (or a compaction's live set) that does not
// fit the log region. The store is unchanged; compactable stores can
// reclaim dead records with Compact and retry.
var ErrFull = errors.New("kv: store full")

// ErrNotCompactable reports a Compact on a store whose region was not
// initialised with FormatCompactable (no superblock, no idle half).
var ErrNotCompactable = errors.New("kv: store has no compaction superblock")

// Flusher is implemented by buffering devices (WriteCoalescer). The
// store flushes at its two commit barriers: after the terminator write
// and after the record span.
type Flusher interface {
	Flush() error
}

// Op is one mutation in a group commit. Delete ignores Value.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// StoreStats counts maintenance activity since Open.
type StoreStats struct {
	Compactions      uint64 // completed Compact cycles
	ReclaimedSectors uint64 // log sectors reclaimed across all compactions
	SealedCommits    uint64 // failed Apply spans zeroed back out of the log
}

// Format initialises a fresh single-log store region by writing the log
// terminator. It is required before the first Open when the device is an
// encrypting front-end: a never-written disk does not read back as zeros
// through an encryption layer. Regions formatted this way cannot
// compact; see FormatCompactable.
func Format(dev BlockDev, baseLBA uint64) error {
	return dev.WriteSectors(baseLBA, make([]byte, SectorSize))
}

// FormatCompactable initialises a fresh compactable region: a versioned
// superblock at baseLBA naming the active half and epoch, followed by
// two equal log halves of (sectors-1)/2 sectors each. Only the active
// half needs a terminator; the idle half is fully rewritten (terminator
// first) by the Compact that activates it.
func FormatCompactable(dev BlockDev, baseLBA uint64, sectors int) error {
	if sectors < 3 {
		return fmt.Errorf("kv: compactable region needs >= 3 sectors, got %d", sectors)
	}
	if err := writeSuper(dev, baseLBA, 1, 0); err != nil {
		return err
	}
	if err := dev.WriteSectors(baseLBA+1, make([]byte, SectorSize)); err != nil {
		return err
	}
	if fl, ok := dev.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

// writeSuper encodes and writes the superblock: magic, epoch, active
// half, crc. The write is one sector, so a flip is atomic under the
// sector-granular crash model.
func writeSuper(dev BlockDev, lba uint64, epoch uint64, half int) error {
	buf := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	binary.LittleEndian.PutUint64(buf[4:], epoch)
	binary.LittleEndian.PutUint32(buf[12:], uint32(half))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[4:16]))
	return dev.WriteSectors(lba, buf)
}

// Store is one open key-value store.
type Store struct {
	dev     BlockDev
	fl      Flusher // dev's flush barrier, nil when dev does not buffer
	baseLBA uint64
	super   bool   // region carries a superblock and two halves
	epoch   uint64 // commit epoch stamped into every record (0 for legacy)
	half    int    // active half, compactable regions only
	halfLen uint64 // sectors per half, compactable regions only
	logBase uint64 // first sector of the active log
	maxLBA  uint64 // end of the active log (exclusive)
	nextLBA uint64
	index   map[string][]byte
	live    uint64 // sectors a compaction would keep (latest record per live key)
	stats   StoreStats
}

// Open creates or recovers a store occupying [baseLBA, baseLBA+sectors)
// on the device, replaying any existing log. The region's layout is
// auto-detected: a superblock first sector selects the compactable
// two-half layout, anything else is a legacy single log.
func Open(dev BlockDev, baseLBA uint64, sectors int) (*Store, error) {
	s := &Store{
		dev:     dev,
		baseLBA: baseLBA,
		index:   make(map[string][]byte),
	}
	s.fl, _ = dev.(Flusher)
	head := make([]byte, SectorSize)
	if err := dev.ReadSectors(baseLBA, head); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(head[0:]) == superMagic {
		if sectors < 3 {
			return nil, fmt.Errorf("%w: compactable region needs >= 3 sectors", ErrCorrupt)
		}
		if binary.LittleEndian.Uint32(head[16:]) != crc32.ChecksumIEEE(head[4:16]) {
			return nil, fmt.Errorf("%w: superblock crc mismatch", ErrCorrupt)
		}
		half := int(binary.LittleEndian.Uint32(head[12:]))
		if half > 1 {
			return nil, fmt.Errorf("%w: superblock names half %d", ErrCorrupt, half)
		}
		s.super = true
		s.epoch = binary.LittleEndian.Uint64(head[4:])
		s.half = half
		s.halfLen = uint64((sectors - 1) / 2)
		s.logBase = baseLBA + 1 + uint64(half)*s.halfLen
		s.maxLBA = s.logBase + s.halfLen
		s.nextLBA = s.logBase
		head = nil // replay reads the log half itself
	} else {
		s.logBase = baseLBA
		s.maxLBA = baseLBA + uint64(sectors)
		s.nextLBA = baseLBA
		// head already holds the first log sector — hand it to replay so
		// the layout sniff does not double-read it.
	}
	if err := s.replay(head); err != nil {
		return nil, err
	}
	return s, nil
}

func recordSectors(keyLen, valLen int) int {
	return (headerSize + keyLen + valLen + SectorSize - 1) / SectorSize
}

// recordCRC covers the length fields, epoch and payload so a torn or
// patched record cannot keep a stale checksum from a different geometry
// or a different life of the half.
func recordCRC(hdr []byte, key string, value []byte) uint32 {
	c := crc32.ChecksumIEEE(hdr[4:20])
	c = crc32.Update(c, crc32.IEEETable, []byte(key))
	return crc32.Update(c, crc32.IEEETable, value)
}

// replay scans the active log rebuilding the index. Each record is read
// exactly once: the head sector is parsed in place and only the tail
// sectors (if any) are fetched afterwards — an earlier version re-read
// the head inside the full-record read, doubling replay's sector
// traffic. pre, when non-nil, is the already-read first log sector.
//
// Legacy single-log regions keep loud corruption detection: a bad magic
// or silly lengths before the terminator is ErrCorrupt. A compactable
// half cannot afford that — after a flip the idle half is recycled full
// of old record bytes, and a torn commit there legitimately leaves
// arbitrary debris (even mid-value bytes of a prior epoch) at the log
// tail. There, any unparseable or stale-epoch record simply ends the
// log: the epoch tag plus crc decide what is part of this half's
// current life.
func (s *Store) replay(pre []byte) error {
	var buf []byte
	head := make([]byte, SectorSize)
	first := true
	for s.nextLBA < s.maxLBA {
		if first && pre != nil {
			copy(head, pre)
		} else {
			if err := s.dev.ReadSectors(s.nextLBA, head); err != nil {
				return err
			}
		}
		first = false
		m := binary.LittleEndian.Uint32(head[0:])
		if m == 0 {
			return nil // end of log
		}
		if m != magic {
			if s.super {
				return nil // recycled-half debris: the log ends here
			}
			return fmt.Errorf("%w: bad magic %#x at lba %d", ErrCorrupt, m, s.nextLBA)
		}
		keyLen := int(binary.LittleEndian.Uint32(head[4:]))
		rawVal := binary.LittleEndian.Uint32(head[8:])
		dead := rawVal == tombstoneLen
		valLen := int(rawVal)
		if dead {
			valLen = 0
		}
		if keyLen <= 0 || keyLen > MaxKeyLen || valLen < 0 || valLen > MaxValueLen {
			if s.super {
				return nil
			}
			return fmt.Errorf("%w: silly lengths %d/%d", ErrCorrupt, keyLen, valLen)
		}
		n := recordSectors(keyLen, valLen)
		if s.nextLBA+uint64(n) > s.maxLBA {
			if s.super {
				return nil
			}
			return fmt.Errorf("%w: record overruns the region", ErrCorrupt)
		}
		if binary.LittleEndian.Uint64(head[12:]) != s.epoch {
			// A record from a previous life of this half (pre-compaction
			// debris): not part of the current log.
			return nil
		}
		if cap(buf) < n*SectorSize {
			buf = make([]byte, n*SectorSize)
		}
		buf = buf[:n*SectorSize]
		copy(buf, head)
		if n > 1 {
			if err := s.dev.ReadSectors(s.nextLBA+1, buf[SectorSize:]); err != nil {
				return err
			}
		}
		key := string(buf[headerSize : headerSize+keyLen])
		val := buf[headerSize+keyLen : headerSize+keyLen+valLen]
		if binary.LittleEndian.Uint32(buf[20:]) != recordCRC(buf, key, val) {
			// Torn tail of a group commit: the head sector landed but the
			// rest of the span did not. Everything before this record is
			// the longest valid prefix — stop here and let the next commit
			// overwrite the debris.
			return nil
		}
		s.applyIndex(key, val, dead)
		s.nextLBA += uint64(n)
	}
	return nil
}

// applyIndex installs one decoded mutation into the index, keeping the
// live-sector count (what a compaction would rewrite) in step.
func (s *Store) applyIndex(key string, val []byte, dead bool) {
	if old, ok := s.index[key]; ok {
		s.live -= uint64(recordSectors(len(key), len(old)))
	}
	if dead {
		delete(s.index, key)
	} else {
		s.index[key] = append([]byte{}, val...)
		s.live += uint64(recordSectors(len(key), len(val)))
	}
}

// validate enforces the same bounds replay does, at append time.
func validate(op Op) error {
	if op.Key == "" {
		return errors.New("kv: empty key")
	}
	if len(op.Key) > MaxKeyLen {
		return fmt.Errorf("%w: key is %d bytes (max %d)", ErrTooLarge, len(op.Key), MaxKeyLen)
	}
	if !op.Delete && len(op.Value) > MaxValueLen {
		return fmt.Errorf("%w: value is %d bytes (max %d)", ErrTooLarge, len(op.Value), MaxValueLen)
	}
	return nil
}

// encodeRecord fills buf (recordSectors worth, pre-zeroed) with op's
// on-disk record, stamped with the store's current commit epoch.
func encodeRecord(buf []byte, op Op, epoch uint64) {
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(op.Key)))
	if op.Delete {
		binary.LittleEndian.PutUint32(buf[8:], tombstoneLen)
	} else {
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(op.Value)))
	}
	binary.LittleEndian.PutUint64(buf[12:], epoch)
	val := op.Value
	if op.Delete {
		val = nil
	}
	binary.LittleEndian.PutUint32(buf[20:], recordCRC(buf, op.Key, val))
	copy(buf[headerSize:], op.Key)
	copy(buf[headerSize+len(op.Key):], val)
}

func (s *Store) flush() error {
	if s.fl != nil {
		return s.fl.Flush()
	}
	return nil
}

// seal re-establishes "the log ends at nextLBA" after a failed commit.
// Without it the landed prefix of the failed span is a valid log
// extension — the caller was told those mutations failed, but a later
// crash would replay them and they would resurrect. Zeroing only the
// head sector is not enough either: the orphan records behind it have
// valid crcs and could be re-exposed at a record boundary by a later
// torn commit, so the whole failed span is zeroed. Best effort — the
// device is already failing, and the original commit error is what the
// caller sees.
func (s *Store) seal(total uint64) {
	_ = s.dev.WriteSectors(s.nextLBA, make([]byte, total*SectorSize))
	_ = s.flush()
	s.stats.SealedCommits++
}

// Apply group-commits a batch of mutations: one terminator write plus
// one contiguous record span, so a batch of N ops costs the same two
// non-sequential disk writes a single Put used to. Ops land in the index
// in slice order (a later op on the same key wins), and the resulting
// log bytes are identical to issuing the ops serially. On error nothing
// is applied to the index and the log is sealed back to its pre-batch
// length; a torn span on disk replays to a valid prefix of the batch.
func (s *Store) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	total := uint64(0)
	for _, op := range ops {
		if err := validate(op); err != nil {
			return err
		}
		valLen := len(op.Value)
		if op.Delete {
			valLen = 0
		}
		total += uint64(recordSectors(len(op.Key), valLen))
	}
	if s.nextLBA+total > s.maxLBA {
		return ErrFull
	}
	// Terminator first, then the span: a torn sequence still replays. An
	// exact-fit span has nowhere to put a terminator — replay's region
	// bound is the terminator there, and the next commit reports ErrFull.
	if s.nextLBA+total < s.maxLBA {
		if err := Format(s.dev, s.nextLBA+total); err != nil {
			return err
		}
	}
	// Barrier: the terminator must reach the device before any record so
	// a buffering device cannot merge them into one (reorderable) write.
	if err := s.flush(); err != nil {
		return err
	}
	lba := s.nextLBA
	for _, op := range ops {
		valLen := len(op.Value)
		if op.Delete {
			valLen = 0
		}
		n := recordSectors(len(op.Key), valLen)
		buf := make([]byte, n*SectorSize)
		encodeRecord(buf, op, s.epoch)
		if err := s.dev.WriteSectors(lba, buf); err != nil {
			s.seal(total)
			return err
		}
		lba += uint64(n)
	}
	if err := s.flush(); err != nil {
		s.seal(total)
		return err
	}
	s.nextLBA = lba
	for _, op := range ops {
		s.applyIndex(op.Key, op.Value, op.Delete)
	}
	return nil
}

// Compact rewrites the live records (sorted by key, current epoch + 1)
// as one group-committed span into the idle half, then flips the
// superblock to name the new half — a single sector-atomic write, the
// only point where the live log changes. A crash strictly before the
// flip replays the old half untouched; a crash at or after it replays
// exactly the compacted log (plus any later commits). Old-epoch debris
// beyond the compacted span is rejected by replay's epoch check, so the
// two logs can never mix.
func (s *Store) Compact() error {
	if !s.super {
		return ErrNotCompactable
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := uint64(0)
	for _, k := range keys {
		total += uint64(recordSectors(len(k), len(s.index[k])))
	}
	if total > s.halfLen {
		return ErrFull // the live set alone overflows a half
	}
	newEpoch := s.epoch + 1
	newHalf := 1 - s.half
	dstBase := s.baseLBA + 1 + uint64(newHalf)*s.halfLen
	// Same ordering as Apply: terminator, barrier, span, barrier. None of
	// it is live until the flip, but the final flush below must know the
	// whole new log is on the device before the superblock moves.
	if total < s.halfLen {
		if err := Format(s.dev, dstBase+total); err != nil {
			return err
		}
	}
	if err := s.flush(); err != nil {
		return err
	}
	lba := dstBase
	for _, k := range keys {
		v := s.index[k]
		n := recordSectors(len(k), len(v))
		buf := make([]byte, n*SectorSize)
		encodeRecord(buf, Op{Key: k, Value: v}, newEpoch)
		if err := s.dev.WriteSectors(lba, buf); err != nil {
			return err // old half still live; new half is inert debris
		}
		lba += uint64(n)
	}
	if err := s.flush(); err != nil {
		return err
	}
	// The flip.
	if err := writeSuper(s.dev, s.baseLBA, newEpoch, newHalf); err != nil {
		return err
	}
	if err := s.flush(); err != nil {
		return err
	}
	reclaimed := s.UsedSectors() - total
	s.epoch = newEpoch
	s.half = newHalf
	s.logBase = dstBase
	s.maxLBA = dstBase + s.halfLen
	s.nextLBA = lba
	s.live = total
	s.stats.Compactions++
	s.stats.ReclaimedSectors += reclaimed
	return nil
}

// GarbageRatio reports the fraction of the log occupied by dead records
// (superseded versions and applied tombstones).
func (s *Store) GarbageRatio() float64 {
	used := s.UsedSectors()
	if used == 0 {
		return 0
	}
	return 1 - float64(s.live)/float64(used)
}

// NeedsCompact reports whether a Compact would both succeed and reclaim
// space: the region is compactable, at least minGarbage of the log is
// dead, and the live set fits a half.
func (s *Store) NeedsCompact(minGarbage float64) bool {
	return s.super && s.UsedSectors() > s.live && s.GarbageRatio() >= minGarbage && s.live <= s.halfLen
}

// PutBatch group-commits a set of puts. It is Apply restricted to
// non-tombstone ops.
func (s *Store) PutBatch(ops []Op) error {
	for _, op := range ops {
		if op.Delete {
			return errors.New("kv: PutBatch cannot carry tombstones, use Apply")
		}
	}
	return s.Apply(ops)
}

// Put appends a record and updates the index. An empty (or nil) value is
// a real value: it is stored, returned by Get as an empty slice, and the
// key stays live — deletion is a distinct tombstone record (see Delete).
// The new log terminator is written first so a crash between the two
// writes leaves a valid log.
func (s *Store) Put(key string, value []byte) error {
	return s.Apply([]Op{{Key: key, Value: value}})
}

// Get returns a copy of the current value of a key.
func (s *Store) Get(key string) ([]byte, error) {
	v, err := s.GetView(key)
	if err != nil {
		return nil, err
	}
	return append([]byte{}, v...), nil
}

// GetView returns the store's own backing bytes for a key, without the
// per-call copy Get pays. The slice is read-only and only valid until
// the next mutation of that key; callers that hold it across commits
// must copy it first.
func (s *Store) GetView(key string) ([]byte, error) {
	v, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

// Delete writes a tombstone record and drops the key from the index.
// Deleting an absent key still logs a tombstone (idempotent on replay).
func (s *Store) Delete(key string) error {
	return s.Apply([]Op{{Key: key, Delete: true}})
}

// Len reports the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Keys returns the live keys (order unspecified).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// UsedSectors reports the active log length in sectors (superblock
// excluded).
func (s *Store) UsedSectors() uint64 { return s.nextLBA - s.logBase }

// LiveSectors reports the sectors a compaction would keep.
func (s *Store) LiveSectors() uint64 { return s.live }

// HalfSectors reports the per-half capacity of a compactable region
// (0 for legacy single-log regions).
func (s *Store) HalfSectors() uint64 { return s.halfLen }

// Compactable reports whether the region carries a superblock.
func (s *Store) Compactable() bool { return s.super }

// Epoch reports the current commit epoch (0 for legacy regions, >= 1
// for compactable ones; each Compact advances it).
func (s *Store) Epoch() uint64 { return s.epoch }

// Stats reports maintenance counters accumulated since Open.
func (s *Store) Stats() StoreStats { return s.stats }
