package xen

import (
	"fmt"
	"sync/atomic"

	"fidelius/internal/cycles"
	"fidelius/internal/lockrank"
	"fidelius/internal/telemetry"
)

// EventBus is the event-channel mechanism: a guest (or the toolstack)
// kicks a port, and the bound handler runs in host context. The PV block
// protocol uses it to signal requests from front-end to back-end.
//
// The handler table is its own shard (lock rank: events). Notify looks
// the handler up under the read lock, releases it, and then invokes the
// handler through the injected invoke hook — under the gate lock when
// wired by the hypervisor — so the table shard is never held across
// handler execution and concurrent signal storms only contend at the
// genuine sharing point (the handler's shared ring state), never on the
// table itself.
type EventBus struct {
	ctlCharge func(uint64)
	hub       *telemetry.Hub

	mu       lockrank.RWMutex
	handlers map[evtKey]func() error

	// invoke runs a bound handler; the hypervisor wires it to take the
	// gate lock. The default (used by bare buses in tests) calls the
	// handler directly.
	invoke func(func() error) error
}

type evtKey struct {
	dom  DomID
	port uint32
}

// newEventBus returns an empty bus charging cycles through fn.
func newEventBus(charge func(uint64), hub *telemetry.Hub) *EventBus {
	return &EventBus{
		ctlCharge: charge,
		hub:       hub,
		handlers:  make(map[evtKey]func() error),
		invoke:    func(h func() error) error { return h() },
	}
}

// SetLockInfo ranks the handler-table lock and wires its contention
// counter.
func (b *EventBus) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	b.mu.Init(rank, waits)
}

// Bind installs the handler for (dom, port), replacing any previous one.
func (b *EventBus) Bind(dom DomID, port uint32, handler func() error) {
	b.mu.Lock()
	b.handlers[evtKey{dom, port}] = handler
	b.mu.Unlock()
}

// Unbind removes the handler for (dom, port).
func (b *EventBus) Unbind(dom DomID, port uint32) {
	b.mu.Lock()
	delete(b.handlers, evtKey{dom, port})
	b.mu.Unlock()
}

// Notify kicks a port. The bound handler runs synchronously in host
// context before the notifying hypercall returns.
func (b *EventBus) Notify(dom DomID, port uint32) error {
	b.mu.RLock()
	h, ok := b.handlers[evtKey{dom, port}]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("xen: event channel %d/%d not bound", dom, port)
	}
	b.ctlCharge(cycles.EventChannelSignal)
	if t := b.hub; t != nil {
		t.M.EvtSignals.Inc()
		if t.Tracing() {
			t.Emit(telemetry.KindEvtSignal, uint32(dom), 0,
				cycles.EventChannelSignal, uint64(port), 0)
		}
	}
	return b.invoke(h)
}

// XenStore is the toolstack's small key-value store, used to advertise
// ring GPAs and grant references between front and back ends. It is an
// independently locked shard (lock rank: store).
type XenStore struct {
	mu lockrank.RWMutex
	kv map[string]string
}

// newXenStore returns an empty store.
func newXenStore() *XenStore { return &XenStore{kv: make(map[string]string)} }

// SetLockInfo ranks the store lock and wires its contention counter.
func (s *XenStore) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	s.mu.Init(rank, waits)
}

// Set stores a value.
func (s *XenStore) Set(key, val string) {
	s.mu.Lock()
	s.kv[key] = val
	s.mu.Unlock()
}

// Get reads a value.
func (s *XenStore) Get(key string) (string, bool) {
	s.mu.RLock()
	v, ok := s.kv[key]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes a key.
func (s *XenStore) Delete(key string) {
	s.mu.Lock()
	delete(s.kv, key)
	s.mu.Unlock()
}
