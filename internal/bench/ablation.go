package bench

import (
	"fmt"

	"fidelius/internal/core"
	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/workload"
	"fidelius/internal/xen"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// paper's arguments in Sections 4.1.3 (gate choice), 4.3.4 (eager NPT
// population) and 5.1 (shadowing vs write-protecting the VMCB).

// GateAblation compares the three context-transition approaches of
// Section 4.1.3 for one protected update.
type GateAblation struct {
	// CR3Switch is the separate-address-space approach: two CR3 writes,
	// each with a full TLB flush on AMD.
	CR3Switch uint64
	// WPToggle is the type 1 gate Fidelius adopts for the common case.
	WPToggle uint64
	// AddMapping is the type 3 gate used for unmapped resources.
	AddMapping uint64
}

// MeasureGateAblation runs each transition mechanism on a protected
// platform and reports per-transition costs.
func MeasureGateAblation(n int) (GateAblation, error) {
	p, err := NewPlatform(ConfigFidelius, 16)
	if err != nil {
		return GateAblation{}, err
	}
	var a GateAblation
	a.WPToggle = p.F.BenchGate1(n)
	a.AddMapping = p.F.BenchGate3(n)

	// The CR3-switch approach: enter a (here: the same) address space
	// and back, paying the full TLB flush twice. Executed on the real
	// CPU via the trusted context, since Fidelius itself never does
	// this at runtime — that is the point of the ablation.
	c := p.X.M.CPU
	c.TrustedContext = true
	root := c.CR3
	start := c.Ctl.Cycles.Total()
	for i := 0; i < n; i++ {
		if err := c.Hooks.CR3Write(c, c.CR3, root); err != nil {
			return a, err
		}
		c.CR3 = root
		c.TLB.FlushAll()
		c.Ctl.Cycles.Charge(cycles.TLBFlushFull)
		c.CR3 = root
		c.TLB.FlushAll()
		c.Ctl.Cycles.Charge(cycles.TLBFlushFull)
	}
	c.TrustedContext = false
	a.CR3Switch = c.Ctl.Cycles.Sub(start) / uint64(n)
	return a, nil
}

// String renders the ablation.
func (a GateAblation) String() string {
	return fmt.Sprintf(
		"Gate ablation (§4.1.3): CR3 switch %d cycles, WP toggle (type 1) %d cycles, add-mapping (type 3) %d cycles",
		a.CR3Switch, a.WPToggle, a.AddMapping)
}

// NPTAblation compares eager (batched at boot, the paper's observation in
// Section 4.3.4) against lazy NPT population for a protected guest.
type NPTAblation struct {
	EagerBoot    uint64 // domain-build cycles, eager
	EagerRun     uint64 // workload cycles, eager
	EagerNPF     uint64 // NPT violations during the run
	LazyBoot     uint64
	LazyRun      uint64
	LazyNPF      uint64
	WorkingPages int
}

// MeasureNPTAblation builds a protected guest both ways and touches its
// working set.
func MeasureNPTAblation(memPages int) (NPTAblation, error) {
	run := func(lazy bool) (boot, runc, npf uint64, err error) {
		m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
		if err != nil {
			return 0, 0, 0, err
		}
		x, err := xen.New(m)
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := core.Enable(x); err != nil {
			return 0, 0, 0, err
		}
		b0 := m.Ctl.Cycles.Total()
		d, err := x.CreateDomain(xen.DomainConfig{Name: "npt", MemPages: memPages, Lazy: lazy})
		if err != nil {
			return 0, 0, 0, err
		}
		boot = m.Ctl.Cycles.Sub(b0)
		r0 := m.Ctl.Cycles.Total()
		x.StartVCPU(d, func(g *xen.GuestEnv) error {
			var w [8]byte
			for pg := 0; pg < memPages; pg++ {
				if err := g.Read(uint64(pg)<<hw.PageShift, w[:]); err != nil {
					return err
				}
			}
			return nil
		})
		if err := x.Run(d); err != nil {
			return 0, 0, 0, err
		}
		runc = m.Ctl.Cycles.Sub(r0)
		npf = x.ExitCount(cpu.ExitNPF)
		return boot, runc, npf, nil
	}
	var a NPTAblation
	a.WorkingPages = memPages
	var err error
	if a.EagerBoot, a.EagerRun, a.EagerNPF, err = run(false); err != nil {
		return a, err
	}
	if a.LazyBoot, a.LazyRun, a.LazyNPF, err = run(true); err != nil {
		return a, err
	}
	return a, nil
}

// String renders the ablation.
func (a NPTAblation) String() string {
	return fmt.Sprintf(
		"NPT population ablation (§4.3.4), %d pages:\n"+
			"  eager: boot %d cycles, run %d cycles, %d NPT violations\n"+
			"  lazy:  boot %d cycles, run %d cycles, %d NPT violations",
		a.WorkingPages, a.EagerBoot, a.EagerRun, a.EagerNPF,
		a.LazyBoot, a.LazyRun, a.LazyNPF)
}

// ShadowVsTrap models the Section 5.1 design choice for the VMCB: shadow
// it once per exit (Fidelius) versus strictly write-protecting it, which
// would fault-and-gate on every hypervisor access.
type ShadowVsTrap struct {
	TouchesPerExit int
	ShadowCost     uint64 // per exit
	TrapCost       uint64 // per exit
}

// ModelShadowVsTrap computes the per-exit costs for a handler that reads
// or writes the VMCB touches times.
func ModelShadowVsTrap(touchesPerExit int) ShadowVsTrap {
	return ShadowVsTrap{
		TouchesPerExit: touchesPerExit,
		ShadowCost:     cycles.ShadowCheck,
		TrapCost:       uint64(touchesPerExit) * (cycles.NPTViolation + cycles.Gate1),
	}
}

// String renders the model.
func (s ShadowVsTrap) String() string {
	return fmt.Sprintf(
		"VMCB shadow-vs-trap model (§5.1): %d accesses/exit → shadow %d cycles, trap-per-access %d cycles",
		s.TouchesPerExit, s.ShadowCost, s.TrapCost)
}

// PagingAblation compares guest memory access cost with paging disabled
// (one-dimensional NPT walk) against paging enabled (full two-dimensional
// GVA→GPA→HPA walk) — the nested-paging cost AMD-V trades for
// hypervisor-transparent memory management.
type PagingAblation struct {
	FlatCycles   uint64 // per access, paging off
	NestedCycles uint64 // per access, paging on
	Accesses     int
}

// MeasurePagingAblation touches n distinct cold lines in both modes.
func MeasurePagingAblation(n int) (PagingAblation, error) {
	run := func(paging bool) (uint64, error) {
		m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 16})
		if err != nil {
			return 0, err
		}
		x, err := xen.New(m)
		if err != nil {
			return 0, err
		}
		d, err := x.CreateDomain(xen.DomainConfig{Name: "pg", MemPages: 128, SEV: true})
		if err != nil {
			return 0, err
		}
		var total uint64
		x.StartVCPU(d, func(g *xen.GuestEnv) error {
			if paging {
				root, err := g.BuildIdentityPT(nil)
				if err != nil {
					return err
				}
				g.EnablePaging(root)
			}
			var w [8]byte
			start := g.Cycles()
			for i := 0; i < n; i++ {
				// Distinct pages defeat the guest TLB; a tiny cache
				// keeps every access cold.
				addr := uint64(16+(i%64)) << hw.PageShift
				if err := g.Read(addr+uint64(i)*64%4096, w[:]); err != nil {
					return err
				}
			}
			total = g.Cycles() - start
			return nil
		})
		if err := x.Run(d); err != nil {
			return 0, err
		}
		return total / uint64(n), nil
	}
	var a PagingAblation
	a.Accesses = n
	var err error
	if a.FlatCycles, err = run(false); err != nil {
		return a, err
	}
	if a.NestedCycles, err = run(true); err != nil {
		return a, err
	}
	return a, nil
}

// String renders the ablation.
func (a PagingAblation) String() string {
	return fmt.Sprintf("Guest paging ablation: flat %d cycles/access, nested %d cycles/access (n=%d)",
		a.FlatCycles, a.NestedCycles, a.Accesses)
}

// MeasureFioSEVPath complements Table 3 with the SEV-API I/O path, so the
// two protection mechanisms can be compared on the same workload.
func MeasureFioSEVPath(pattern workload.FioPattern, totalSectors int) (base, sevRes workload.FioResult, err error) {
	base, err = runFio(ConfigXen, pattern, totalSectors)
	if err != nil {
		return
	}
	sevRes, err = runFioSEV(pattern, totalSectors)
	return
}

// runFioSEV runs one fio pattern on a fully protected SEV guest using the
// SEV-API front-end.
func runFioSEV(pattern workload.FioPattern, totalSectors int) (workload.FioResult, error) {
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		return workload.FioResult{}, err
	}
	x, err := xen.New(m)
	if err != nil {
		return workload.FioResult{}, err
	}
	f, err := core.Enable(x)
	if err != nil {
		return workload.FioResult{}, err
	}
	owner, err := sev.NewOwner()
	if err != nil {
		return workload.FioResult{}, err
	}
	pub, err := m.FW.PublicKey()
	if err != nil {
		return workload.FioResult{}, err
	}
	bundle, _, err := core.PrepareGuest(owner, pub, nil, nil)
	if err != nil {
		return workload.FioResult{}, err
	}
	d, err := f.LaunchVM("fio-sev", fioDomainPages, bundle)
	if err != nil {
		return workload.FioResult{}, err
	}
	if err := f.SetupIOSession(d); err != nil {
		return workload.FioResult{}, err
	}
	dk := disk.New(fioRegionSectors + 64)
	if _, err := f.AttachProtectedDisk(d, dk, fioDataPages, fioPort, nil); err != nil {
		return workload.FioResult{}, err
	}
	if err := x.WriteStartInfo(d); err != nil {
		return workload.FioResult{}, err
	}
	var res workload.FioResult
	res.Config = "fidelius-sev-io"
	open := func(g *xen.GuestEnv) (workload.BlockDev, error) {
		bf, err := xen.NewBlockFrontend(g)
		if err != nil {
			return nil, err
		}
		return core.NewSEVFront(g, bf), nil
	}
	x.StartVCPU(d, workload.FioGuest(pattern, totalSectors, fioRegionSectors, open, &res))
	if err := x.Run(d); err != nil {
		return workload.FioResult{}, err
	}
	return res, nil
}
