package fidelius_test

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

// Example demonstrates the minimal protected-VM session: the owner
// prepares an encrypted kernel image, Fidelius boots it through the SEV
// RECEIVE protocol, the guest computes over private memory, and the
// hypervisor's attempt to read that memory is blocked.
func Example() {
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := fidelius.NewOwner()
	if err != nil {
		log.Fatal(err)
	}
	kernel := bytes.Repeat([]byte("EXAMPLE-KERNEL!!"), 256)
	bundle, _, err := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := plat.LaunchVM("example", 64, bundle)
	if err != nil {
		log.Fatal(err)
	}
	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		return g.Write(0x8000, []byte("guest secret"))
	})
	if err := plat.Run(vm); err != nil {
		log.Fatal(err)
	}
	pfn, _ := vm.GPAFrame(8)
	if err := plat.X.M.CPU.ReadVA(uint64(pfn.Addr()), make([]byte, 12)); err != nil {
		fmt.Println("hypervisor read blocked")
	}
	raw := make([]byte, 12)
	plat.X.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
	fmt.Println("DRAM plaintext:", bytes.Equal(raw, []byte("guest secret")))
	if err := plat.Shutdown(vm); err != nil {
		log.Fatal(err)
	}
	// Output:
	// hypervisor read blocked
	// DRAM plaintext: false
}

// ExamplePlatform_Attest shows remote attestation: a verifier checks the
// platform quote binding the hypervisor measurement to its nonce.
func ExamplePlatform_Attest() {
	plat, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	nonce := []byte("verifier nonce")
	quote, err := plat.Attest(nonce)
	if err != nil {
		log.Fatal(err)
	}
	key, err := plat.AttestationKey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quote verifies:", fidelius.VerifyQuote(key, quote, nonce) == nil)
	fmt.Println("stale nonce verifies:", fidelius.VerifyQuote(key, quote, []byte("other")) == nil)
	// Output:
	// quote verifies: true
	// stale nonce verifies: false
}
