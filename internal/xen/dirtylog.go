package xen

import (
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/mmu"
)

// Dirty-page tracking over the NPT, the substrate of pre-copy live
// migration: StartDirtyLog write-protects every backed leaf so guest
// writes fault into handleNPF (which logs the GFN and restores W), and
// CollectDirty drains the log while re-protecting exactly the collected
// pages for the next round. All leaf rewrites go through the interposer
// seam, so under Fidelius they are type 1 gates subject to PIT policy —
// a same-frame permission change, which the gatekeeper permits.

// setLeafW clears or restores the W bit on the NPT leaf backing gfn,
// preserving every other attribute. Unbacked GFNs are skipped.
func (x *Xen) setLeafW(d *Domain, gfn uint64, writable bool) error {
	if _, ok := d.GPAFrame(gfn); !ok {
		return nil
	}
	gpa := gfn << hw.PageShift
	slot, err := x.NPTLeafSlot(d, gpa)
	if err != nil {
		return nil // lazily-populated hole: nothing to protect yet
	}
	cur, err := x.readPTE(d, slot)
	if err != nil {
		return err
	}
	if !cur.Present() {
		return nil
	}
	want := cur.WithoutFlags(mmu.FlagW)
	if writable {
		want = cur.WithFlags(mmu.FlagW)
	}
	if want == cur {
		return nil
	}
	return x.Interpose.WritePTE(d, slot, want)
}

// StartDirtyLog arms the domain's dirty log and write-protects all backed
// guest frames, so that every subsequent guest write faults once and is
// recorded. The NPT generation bumps so vCPU translation caches flush.
// Like the other dirty-log toolstack entry points it takes the domain
// lock, serializing against the domain's own quanta.
func (x *Xen) StartDirtyLog(d *Domain) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Dirty == nil {
		d.Dirty = mmu.NewDirtyLog(d.MemPages)
	}
	d.Dirty.Collect() // discard stale bits from a previous session
	d.Dirty.Start()
	for gfn := uint64(0); gfn < uint64(d.MemPages); gfn++ {
		if err := x.setLeafW(d, gfn, false); err != nil {
			return fmt.Errorf("xen: dirty-log protect gfn %d: %w", gfn, err)
		}
	}
	d.NPTGen++
	return nil
}

// CollectDirty drains the dirty log and re-write-protects the collected
// pages, opening the next tracking round. The returned GFNs are the pages
// written since the previous collection (or since StartDirtyLog).
func (x *Xen) CollectDirty(d *Domain) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dirty := d.Dirty.Collect()
	for _, gfn := range dirty {
		if err := x.setLeafW(d, gfn, false); err != nil {
			return nil, fmt.Errorf("xen: dirty-log reprotect gfn %d: %w", gfn, err)
		}
	}
	if len(dirty) > 0 {
		d.NPTGen++
	}
	return dirty, nil
}

// PeekDirty drains the dirty log without re-protecting — the final
// stop-and-copy round, after which tracking ends.
func (x *Xen) PeekDirty(d *Domain) []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Dirty.Collect()
}

// StopDirtyLog disarms the log and restores the W bit on every backed
// frame, returning the domain to normal full-speed operation.
func (x *Xen) StopDirtyLog(d *Domain) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Dirty.Stop()
	d.Dirty.Collect()
	for gfn := uint64(0); gfn < uint64(d.MemPages); gfn++ {
		if err := x.setLeafW(d, gfn, true); err != nil {
			return fmt.Errorf("xen: dirty-log unprotect gfn %d: %w", gfn, err)
		}
	}
	d.NPTGen++
	return nil
}

// BackedGFNs lists every guest frame currently backed by a host frame, in
// ascending order — the page set a full-copy migration round must ship.
func (d *Domain) BackedGFNs() []uint64 {
	d.framesMu.RLock()
	defer d.framesMu.RUnlock()
	var out []uint64
	for gfn := range d.Frames {
		if d.Frames[gfn] != 0 {
			out = append(out, uint64(gfn))
		}
	}
	return out
}
