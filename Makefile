GO ?= go

.PHONY: all build test race bench vet fmt check trace examples tables attacks xsa demo clean

all: build test

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secureio
	$(GO) run ./examples/migration
	$(GO) run ./examples/memsharing
	$(GO) run ./examples/extensions

tables:
	$(GO) run ./cmd/benchtab

attacks:
	$(GO) run ./cmd/attacksim

xsa:
	$(GO) run ./cmd/xsastats -mechanisms

demo:
	$(GO) run ./cmd/fidelius-demo

trace:
	$(GO) run ./cmd/fidelius-demo -trace fidelius-trace.json -metrics
	@echo "load fidelius-trace.json in chrome://tracing or https://ui.perfetto.dev"

clean:
	$(GO) clean ./...
