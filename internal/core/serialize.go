package core

import (
	"bytes"
	"crypto/ecdh"
	"encoding/gob"
	"fmt"

	"fidelius/internal/sev"
)

// Wire formats: guest bundles and migration snapshots travel between
// machines (the owner's trusted environment → the platform; origin →
// target), so they need stable serialisation. ECDH public keys are
// carried as their SEC1 encoding.

type guestBundleWire struct {
	Image     *sev.EncryptedImage
	Kwrap     sev.WrappedKeys
	OwnerPub  []byte
	Nonce     []byte
	DiskImage []byte
}

type migrationBundleWire struct {
	Name     string
	MemPages int
	Kwrap    sev.WrappedKeys
	Nonce    []byte
	Packets  []sev.Packet
	Mvm      sev.Measurement
}

type gekBundleWire struct {
	Image    *sev.GEKImage
	GEKWrap  sev.WrappedKeys
	OwnerPub []byte
	Nonce    []byte
}

func encodePub(pub *ecdh.PublicKey) []byte {
	if pub == nil {
		return nil
	}
	return pub.Bytes()
}

func decodePub(b []byte) (*ecdh.PublicKey, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("core: missing public key")
	}
	return ecdh.P256().NewPublicKey(b)
}

// MarshalBinary implements encoding.BinaryMarshaler for GuestBundle.
func (b *GuestBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(guestBundleWire{
		Image:     b.Image,
		Kwrap:     b.Kwrap,
		OwnerPub:  encodePub(b.OwnerPub),
		Nonce:     b.Nonce,
		DiskImage: b.DiskImage,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for GuestBundle.
func (b *GuestBundle) UnmarshalBinary(data []byte) error {
	var w guestBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	pub, err := decodePub(w.OwnerPub)
	if err != nil {
		return err
	}
	*b = GuestBundle{
		Image:     w.Image,
		Kwrap:     w.Kwrap,
		OwnerPub:  pub,
		Nonce:     w.Nonce,
		DiskImage: w.DiskImage,
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for MigrationBundle.
func (b *MigrationBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(migrationBundleWire{
		Name:     b.Name,
		MemPages: b.MemPages,
		Kwrap:    b.Kwrap,
		Nonce:    b.Nonce,
		Packets:  b.Packets,
		Mvm:      b.Mvm,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for
// MigrationBundle.
func (b *MigrationBundle) UnmarshalBinary(data []byte) error {
	var w migrationBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*b = MigrationBundle{
		Name:     w.Name,
		MemPages: w.MemPages,
		Kwrap:    w.Kwrap,
		Nonce:    w.Nonce,
		Packets:  w.Packets,
		Mvm:      w.Mvm,
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for GEKBundle.
func (b *GEKBundle) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gekBundleWire{
		Image:    b.Image,
		GEKWrap:  b.GEKWrap,
		OwnerPub: encodePub(b.OwnerPub),
		Nonce:    b.Nonce,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for GEKBundle.
func (b *GEKBundle) UnmarshalBinary(data []byte) error {
	var w gekBundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	pub, err := decodePub(w.OwnerPub)
	if err != nil {
		return err
	}
	*b = GEKBundle{
		Image:    w.Image,
		GEKWrap:  w.GEKWrap,
		OwnerPub: pub,
		Nonce:    w.Nonce,
	}
	return nil
}
