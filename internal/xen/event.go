package xen

import (
	"fmt"

	"fidelius/internal/cycles"
	"fidelius/internal/telemetry"
)

// EventBus is the event-channel mechanism: a guest (or the toolstack)
// kicks a port, and the bound handler runs in host context. The PV block
// protocol uses it to signal requests from front-end to back-end.
type EventBus struct {
	ctlCharge func(uint64)
	hub       *telemetry.Hub
	handlers  map[evtKey]func() error
}

type evtKey struct {
	dom  DomID
	port uint32
}

// newEventBus returns an empty bus charging cycles through fn.
func newEventBus(charge func(uint64), hub *telemetry.Hub) *EventBus {
	return &EventBus{ctlCharge: charge, hub: hub, handlers: make(map[evtKey]func() error)}
}

// Bind installs the handler for (dom, port), replacing any previous one.
func (b *EventBus) Bind(dom DomID, port uint32, handler func() error) {
	b.handlers[evtKey{dom, port}] = handler
}

// Unbind removes the handler for (dom, port).
func (b *EventBus) Unbind(dom DomID, port uint32) {
	delete(b.handlers, evtKey{dom, port})
}

// Notify kicks a port. The bound handler runs synchronously in host
// context before the notifying hypercall returns.
func (b *EventBus) Notify(dom DomID, port uint32) error {
	h, ok := b.handlers[evtKey{dom, port}]
	if !ok {
		return fmt.Errorf("xen: event channel %d/%d not bound", dom, port)
	}
	b.ctlCharge(cycles.EventChannelSignal)
	if t := b.hub; t != nil {
		t.M.EvtSignals.Inc()
		if t.Tracing() {
			t.Emit(telemetry.KindEvtSignal, uint32(dom), 0,
				cycles.EventChannelSignal, uint64(port), 0)
		}
	}
	return h()
}

// XenStore is the toolstack's small key-value store, used to advertise
// ring GPAs and grant references between front and back ends.
type XenStore struct {
	kv map[string]string
}

// newXenStore returns an empty store.
func newXenStore() *XenStore { return &XenStore{kv: make(map[string]string)} }

// Set stores a value.
func (s *XenStore) Set(key, val string) { s.kv[key] = val }

// Get reads a value.
func (s *XenStore) Get(key string) (string, bool) {
	v, ok := s.kv[key]
	return v, ok
}

// Delete removes a key.
func (s *XenStore) Delete(key string) { delete(s.kv, key) }
