package cpu

import (
	"errors"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/mmu"
)

func TestWRMSRUnknownMSRIsHarmless(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpMovImm, Reg: 0, Imm: 0x1234}, // not EFER
		{Op: isa.OpMovImm, Reg: 1, Imm: 0xFFFF},
		{Op: isa.OpWrmsr},
		{Op: isa.OpHlt},
	})
	before := c.EFER
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
	if c.EFER != before {
		t.Fatal("unknown MSR write changed EFER")
	}
}

func TestVMRunWithoutHandlerErrors(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{{Op: isa.OpVmrun, Reg: 0}})
	if err := c.Run(0x1000, 10); err == nil {
		t.Fatal("vmrun without world switch should error")
	}
}

func TestAddrHookErrorStopsExecution(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	sentinel := errors.New("checking loop veto")
	c.Hooks.Addr = map[uint64]func(*CPU) error{
		0x1001: func(*CPU) error { return sentinel },
	}
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpMovImm, Reg: 1, Imm: 42}, // must never run
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); !errors.Is(err, sentinel) {
		t.Fatalf("want the hook error, got %v", err)
	}
	if c.Regs[1] == 42 {
		t.Fatal("instruction after the vetoing hook executed")
	}
}

func TestExecHookVeto(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	sentinel := errors.New("execute-once veto")
	c.Hooks.Exec = func(c *CPU, addr uint64, op isa.Op) error {
		if op == isa.OpLgdt {
			return sentinel
		}
		return nil
	}
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpLgdt, Reg: 0},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); !errors.Is(err, sentinel) {
		t.Fatalf("want exec veto, got %v", err)
	}
}

func TestLgdtLidtExecuteWhenUnhooked(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	loadCode(t, c, 0x1000, []isa.Inst{
		{Op: isa.OpLgdt, Reg: 0},
		{Op: isa.OpLidt, Reg: 0},
		{Op: isa.OpHlt},
	})
	if err := c.Run(0x1000, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTrustedSetWPBypassesVeto(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	c.Hooks.CR0Write = func(c *CPU, old, new uint64) error {
		if !c.TrustedContext && old&CR0WP != 0 && new&CR0WP == 0 {
			return &ProtectionError{Op: "mov cr0", Detail: "WP"}
		}
		return nil
	}
	c.TrustedContext = true
	if err := c.SetWP(false); err != nil {
		t.Fatalf("trusted WP clear vetoed: %v", err)
	}
	if err := c.SetWP(true); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteAcrossPageBoundary(t *testing.T) {
	c, _, _ := testMachine(t, 64)
	data := make([]byte, 5000) // crosses two pages
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.WriteVA(0x7F00, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadVA(0x7F00, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestWriteFaultMidway(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	// Page 9 read-only: a write spanning pages 8..9 fails partway.
	if err := sp.SetLeaf(0x9000, mmu.MakePTE(9, mmu.FlagP)); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	err := c.WriteVA(0x8F00, make([]byte, 0x200))
	var pf *mmu.PageFault
	if !errors.As(err, &pf) || pf.VA != 0x9000 {
		t.Fatalf("want fault at 0x9000, got %v", err)
	}
}

func TestStepRetryAfterHandledFetchFault(t *testing.T) {
	c, sp, _ := testMachine(t, 64)
	if err := sp.Unmap(0x5000); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll()
	loaded := false
	c.PageFaultFn = func(c *CPU, f *mmu.PageFault) bool {
		if f.Access != mmu.Execute || loaded {
			return false
		}
		// Map the page and install code (demand paging of code).
		if err := sp.Map(nullAlloc{}, 0x5000, mmu.MakePTE(5, mmu.FlagP|mmu.FlagW)); err != nil {
			return false
		}
		c.Ctl.Mem.WriteRaw(0x5000, isa.Inst{Op: isa.OpHlt}.Encode(nil))
		c.TLB.FlushAll()
		loaded = true
		return true
	}
	if err := c.Run(0x5000, 10); err != nil {
		t.Fatalf("demand-paged code should run: %v", err)
	}
}

// nullAlloc never allocates: the demand-paging test maps an existing leaf
// whose intermediate tables already exist.
type nullAlloc struct{}

func (nullAlloc) AllocFrame() (hw.PFN, error) {
	return 0, errors.New("nullAlloc: no frames")
}
