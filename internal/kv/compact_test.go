package kv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// failDev injects one WriteSectors error at a chosen call number (1-based,
// counted from arming), simulating a device fault mid-span.
type failDev struct {
	*memDev
	armed    bool
	calls    int
	failAt   int
	injected error
}

func (d *failDev) WriteSectors(lba uint64, data []byte) error {
	if d.armed {
		d.calls++
		if d.calls == d.failAt {
			return d.injected
		}
	}
	return d.memDev.WriteSectors(lba, data)
}

// TestApplyErrorSealsLog is the regression test for the failure-path
// resurrection bug: a mid-span WriteSectors error used to leave the
// landed record prefix as a valid log extension, so mutations the
// caller was told had failed came back after a crash. The error path
// now seals the log (zeroes the whole failed span); this fails the
// write at every record index and proves the reopened store never shows
// any of the erred batch.
func TestApplyErrorSealsLog(t *testing.T) {
	base := map[string]string{"alpha": "one", "beta": "two"}
	batch := []Op{
		{Key: "alpha", Value: bytes.Repeat([]byte{0xA1}, 100)},   // overwrite, 1 sector
		{Key: "gamma", Value: bytes.Repeat([]byte{0xB2}, 900)},   // new, 2 sectors
		{Key: "beta", Delete: true},                              // tombstone, 1 sector
		{Key: "delta", Value: bytes.Repeat([]byte{0xC3}, 1600)},  // new, 4 sectors
		{Key: "epsilon", Value: bytes.Repeat([]byte{0xD4}, 100)}, // new, 1 sector
	}
	boom := errors.New("injected device fault")
	for rec := 0; rec < len(batch); rec++ {
		dev := &failDev{memDev: newMemDev(64), injected: boom}
		s, err := Open(dev, 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range base {
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		preUsed := s.UsedSectors()
		// Apply's write calls: terminator first, then one per record.
		dev.armed, dev.calls, dev.failAt = true, 0, rec+2
		if err := s.Apply(batch); !errors.Is(err, boom) {
			t.Fatalf("record %d: Apply = %v, want injected fault", rec, err)
		}
		dev.armed = false
		// In-memory state: untouched.
		if s.Len() != len(base) || s.UsedSectors() != preUsed {
			t.Fatalf("record %d: erred Apply mutated the store", rec)
		}
		// Crash and replay: the reopened store must be exactly the
		// pre-batch state — no record of the erred batch visible.
		r, err := Open(dev.memDev, 0, 64)
		if err != nil {
			t.Fatalf("record %d: reopen: %v", rec, err)
		}
		if r.Len() != len(base) {
			t.Fatalf("record %d: reopen found %d keys, want %d", rec, r.Len(), len(base))
		}
		for k, v := range base {
			got, err := r.Get(k)
			if err != nil || string(got) != v {
				t.Fatalf("record %d: reopen %q = %q, %v", rec, k, got, err)
			}
		}
		if r.UsedSectors() != preUsed {
			t.Fatalf("record %d: reopen used %d sectors, want %d — failed span replayed",
				rec, r.UsedSectors(), preUsed)
		}
		// The seal must have zeroed the whole failed span, not just its
		// head: orphan records with valid crcs could otherwise be
		// re-exposed by a later torn commit.
		for lba := preUsed; lba < preUsed+9; lba++ {
			var sec [SectorSize]byte
			if err := dev.memDev.ReadSectors(lba, sec[:]); err != nil {
				break
			}
			if !bytes.Equal(sec[:], make([]byte, SectorSize)) {
				t.Fatalf("record %d: sector %d of the failed span not zeroed", rec, lba)
			}
		}
		if s.Stats().SealedCommits != 1 {
			t.Fatalf("record %d: SealedCommits = %d", rec, s.Stats().SealedCommits)
		}
		// The surviving store keeps working: the same batch applies
		// cleanly once the fault clears.
		if err := s.Apply(batch); err != nil {
			t.Fatalf("record %d: retry after fault: %v", rec, err)
		}
		r2, err := Open(dev.memDev, 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := r2.Get("delta"); err != nil || len(v) != 1600 {
			t.Fatalf("record %d: retry not replayed: %v", rec, err)
		}
	}
}

// TestExactFitCommit pins the exact-fit boundary behavior: a span that
// fills the region to exactly maxLBA has nowhere to put a terminator —
// the region bound itself ends the log. The commit must succeed, replay
// fully, and the next commit must report ErrFull instead of corrupting.
func TestExactFitCommit(t *testing.T) {
	val := bytes.Repeat([]byte{7}, 2*SectorSize-headerSize-2) // key "kN" => exactly 2 sectors
	for _, tc := range []struct {
		name    string
		format  func(dev BlockDev) error
		sectors int
	}{
		{"legacy", func(dev BlockDev) error { return Format(dev, 0) }, 8},
		// 17 sectors = superblock + two halves of 8.
		{"compactable", func(dev BlockDev) error { return FormatCompactable(dev, 0, 17) }, 17},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dev := newMemDev(32)
			if err := tc.format(dev); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dev, 0, tc.sectors)
			if err != nil {
				t.Fatal(err)
			}
			var batch []Op
			for i := 0; i < 4; i++ {
				batch = append(batch, Op{Key: fmt.Sprintf("k%d", i), Value: val})
			}
			if err := s.Apply(batch); err != nil {
				t.Fatalf("exact-fit commit: %v", err)
			}
			if free := s.UsedSectors(); free != 8 {
				t.Fatalf("used %d sectors, want 8 (exact fit)", free)
			}
			r, err := Open(dev, 0, tc.sectors)
			if err != nil {
				t.Fatalf("reopen after exact fit: %v", err)
			}
			if r.Len() != 4 || r.UsedSectors() != 8 {
				t.Fatalf("replayed %d keys over %d sectors, want 4 over 8", r.Len(), r.UsedSectors())
			}
			// The next commit must fail loudly, not overrun or corrupt.
			if err := r.Put("overflow", []byte("x")); !errors.Is(err, ErrFull) {
				t.Fatalf("post-fill Put = %v, want ErrFull", err)
			}
			if _, err := Open(dev, 0, tc.sectors); err != nil {
				t.Fatalf("store corrupted by rejected overflow: %v", err)
			}
		})
	}
}

// compactFixture builds a compactable store with a garbage-heavy log:
// live keys a (A1) and b (B1), dead keys c/d/e, one dead version of b.
func compactFixture(t *testing.T) (*memDev, *Store) {
	t.Helper()
	dev := newMemDev(64)
	if err := FormatCompactable(dev, 0, 41); err != nil { // halves of 20
		t.Fatal(err)
	}
	s, err := Open(dev, 0, 41)
	if err != nil {
		t.Fatal(err)
	}
	puts := []Op{
		{Key: "a", Value: []byte("A1")},
		{Key: "b", Value: []byte("B-old")},
		{Key: "c", Value: []byte("C1")},
		{Key: "d", Value: []byte("D1")},
		{Key: "e", Value: []byte("E1")},
	}
	if err := s.Apply(puts); err != nil {
		t.Fatal(err)
	}
	dels := []Op{
		{Key: "c", Delete: true},
		{Key: "d", Delete: true},
		{Key: "e", Delete: true},
	}
	if err := s.Apply(dels); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("B1")); err != nil {
		t.Fatal(err)
	}
	return dev, s
}

func TestCompactReclaimsGarbage(t *testing.T) {
	dev, s := compactFixture(t)
	if got := s.UsedSectors(); got != 9 {
		t.Fatalf("fixture used %d sectors, want 9", got)
	}
	if got := s.LiveSectors(); got != 2 {
		t.Fatalf("fixture live %d sectors, want 2", got)
	}
	if !s.NeedsCompact(0.5) {
		t.Fatalf("garbage ratio %.2f did not trigger", s.GarbageRatio())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedSectors(); got != 2 {
		t.Fatalf("compacted log uses %d sectors, want 2", got)
	}
	if st := s.Stats(); st.Compactions != 1 || st.ReclaimedSectors != 7 {
		t.Fatalf("stats = %+v, want 1 compaction, 7 reclaimed", st)
	}
	if s.GarbageRatio() != 0 {
		t.Fatalf("garbage ratio %.2f after compact", s.GarbageRatio())
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after compact, want 2", s.Epoch())
	}
	// Live content preserved, in memory and across a reopen.
	for _, r := range []*Store{s, reopen(t, dev, 41)} {
		if r.Len() != 2 {
			t.Fatalf("%d keys after compact, want 2", r.Len())
		}
		for k, want := range map[string]string{"a": "A1", "b": "B1"} {
			if v, err := r.Get(k); err != nil || string(v) != want {
				t.Fatalf("%q = %q, %v after compact", k, v, err)
			}
		}
		for _, k := range []string{"c", "d", "e"} {
			if _, err := r.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("dead key %q visible after compact", k)
			}
		}
	}
	// The compacted store keeps accepting commits that land in the new
	// half and replay.
	if err := s.Put("f", []byte("F1")); err != nil {
		t.Fatal(err)
	}
	if v, err := reopen(t, dev, 41).Get("f"); err != nil || string(v) != "F1" {
		t.Fatalf("post-compact put lost: %q, %v", v, err)
	}
}

func reopen(t *testing.T, dev BlockDev, sectors int) *Store {
	t.Helper()
	s, err := Open(dev, 0, sectors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompactCrashAtEveryPoint cuts the device at every sector boundary
// during a compaction and proves the invariant: the reopened store is
// always exactly the live state — either read from the old half (crash
// before the superblock flip) or from the new one (after), never a mix,
// never a resurrection of a dead key or value.
func TestCompactCrashAtEveryPoint(t *testing.T) {
	want := map[string]string{"a": "A1", "b": "B1"}
	for budget := 0; budget <= 12; budget++ {
		dev, s := compactFixture(t)
		preEpoch := s.Epoch()
		torn := &tornDev{memDev: dev, budget: budget}
		s.dev = torn // crash: writes past the budget silently vanish
		_ = s.Compact()
		r := reopen(t, dev, 41)
		if r.Len() != len(want) {
			t.Fatalf("budget %d: reopened %d keys, want %d", budget, r.Len(), len(want))
		}
		for k, v := range want {
			got, err := r.Get(k)
			if err != nil || string(got) != v {
				t.Fatalf("budget %d: %q = %q, %v", budget, k, got, err)
			}
		}
		for _, k := range []string{"c", "d", "e"} {
			if _, err := r.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("budget %d: dead key %q resurrected", budget, k)
			}
		}
		// The replayed log is wholly old or wholly new, visible in the
		// epoch: pre-flip crashes keep the old epoch and full old log,
		// post-flip ones the new epoch and the compacted log.
		switch r.Epoch() {
		case preEpoch:
			if r.UsedSectors() != 9 {
				t.Fatalf("budget %d: old-half replay used %d sectors, want 9", budget, r.UsedSectors())
			}
		case preEpoch + 1:
			if r.UsedSectors() != 2 {
				t.Fatalf("budget %d: new-half replay used %d sectors, want 2", budget, r.UsedSectors())
			}
		default:
			t.Fatalf("budget %d: epoch %d", budget, r.Epoch())
		}
		// And the survivor keeps working.
		if err := r.Put("post", []byte("crash")); err != nil {
			t.Fatalf("budget %d: post-crash put: %v", budget, err)
		}
		if v, err := reopen(t, dev, 41).Get("post"); err != nil || string(v) != "crash" {
			t.Fatalf("budget %d: post-crash put lost", budget)
		}
	}
}

// TestEpochRejectsStaleDebris builds the cross-epoch resurrection
// scenario: after two compactions a half is recycled with valid-crc
// records from its previous life sitting right behind the log tail. A
// torn commit that lands its first record but not its second would —
// without the epoch tag — splice those old records back into the log as
// a "valid" extension, resurrecting a deleted key.
func TestEpochRejectsStaleDebris(t *testing.T) {
	dev, s := compactFixture(t)
	// Compact twice: live log back in half 0, epoch 3. The old half-0
	// bytes beyond the 2-record span + terminator are epoch-1 debris —
	// in particular the tombstoned key d's original record.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 3 || s.UsedSectors() != 2 {
		t.Fatalf("epoch %d, used %d after double compact", s.Epoch(), s.UsedSectors())
	}
	// Sanity: the debris really is there (old record for d at lba 4 of
	// the pre-compaction log: a, b-old, c, then d).
	var debris [SectorSize]byte
	if err := dev.ReadSectors(4, debris[:]); err != nil {
		t.Fatal(err)
	}
	if string(debris[headerSize:headerSize+1]) != "d" {
		t.Fatalf("fixture drift: expected old record for d at lba 4, got %q", debris[headerSize:headerSize+1])
	}
	// Torn two-record commit: terminator and first record land, second
	// record does not — its slot still holds the old epoch-1 record.
	torn := &tornDev{memDev: dev, budget: 2}
	s.dev = torn
	_ = s.Apply([]Op{
		{Key: "f", Value: []byte("F1")},
		{Key: "g", Value: []byte("G1")},
	})
	r := reopen(t, dev, 41)
	if v, err := r.Get("f"); err != nil || string(v) != "F1" {
		t.Fatalf("landed prefix record lost: %q, %v", v, err)
	}
	if _, err := r.Get("g"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unlanded record visible")
	}
	if _, err := r.Get("d"); !errors.Is(err, ErrNotFound) {
		t.Fatal("stale-epoch debris resurrected a deleted key")
	}
	if v, err := r.Get("b"); err != nil || string(v) != "B1" {
		t.Fatalf("b = %q, %v — stale debris leaked", v, err)
	}
}

// TestCompactAllLiveNoReclaim: a half entirely full of live data has
// nothing to reclaim — NeedsCompact must say so (the guest's trigger),
// and an explicit Compact is an exact-fit rewrite into the other half
// that loses nothing. (Live can never *exceed* a half: it was written
// into one, so Compact's own ErrFull bound is unreachable from here.)
func TestCompactAllLiveNoReclaim(t *testing.T) {
	dev := newMemDev(32)
	if err := FormatCompactable(dev, 0, 9); err != nil { // halves of 4
		t.Fatal(err)
	}
	s, err := Open(dev, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{1}, SectorSize)
	for i := 0; i < 2; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil { // 2 sectors each
			t.Fatal(err)
		}
	}
	if s.NeedsCompact(0.0) {
		t.Fatal("all-live store claims compaction would help")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("exact-fit all-live compact: %v", err)
	}
	if st := s.Stats(); st.ReclaimedSectors != 0 {
		t.Fatalf("reclaimed %d sectors from an all-live log", st.ReclaimedSectors)
	}
	for i := 0; i < 2; i++ {
		if v, err := reopen(t, dev, 9).Get(fmt.Sprintf("k%d", i)); err != nil || len(v) != SectorSize {
			t.Fatalf("k%d damaged by all-live compact: %v", i, err)
		}
	}
}

func TestLegacyStoreNotCompactable(t *testing.T) {
	s, err := Open(newMemDev(16), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Compactable() || s.Epoch() != 0 {
		t.Fatal("legacy store claims a superblock")
	}
	if s.NeedsCompact(0) {
		t.Fatal("legacy store volunteers for compaction")
	}
	if err := s.Compact(); !errors.Is(err, ErrNotCompactable) {
		t.Fatalf("Compact on legacy store = %v, want ErrNotCompactable", err)
	}
}

func TestSuperblockCorruptionDetected(t *testing.T) {
	dev := newMemDev(16)
	if err := FormatCompactable(dev, 0, 9); err != nil {
		t.Fatal(err)
	}
	dev.data[5] ^= 0xFF // flip an epoch byte under the crc
	if _, err := Open(dev, 0, 9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt superblock opened: %v", err)
	}
}

// TestGarbageAccounting cross-checks the incremental live counter
// against a from-scratch recomputation across puts, overwrites,
// deletes and replay.
func TestGarbageAccounting(t *testing.T) {
	dev := newMemDev(128)
	if err := FormatCompactable(dev, 0, 101); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dev, 0, 101)
	if err != nil {
		t.Fatal(err)
	}
	check := func(tag string, st *Store) {
		want := uint64(0)
		for _, k := range st.Keys() {
			v, _ := st.GetView(k)
			want += uint64(recordSectors(len(k), len(v)))
		}
		if st.LiveSectors() != want {
			t.Fatalf("%s: live = %d, recomputed %d", tag, st.LiveSectors(), want)
		}
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%3), bytes.Repeat([]byte{byte(i)}, 80*(i%4+1))); err != nil {
			t.Fatal(err)
		}
		check("put", s)
	}
	s.Delete("k1")
	check("delete", s)
	check("replay", reopen(t, dev, 101))
}

// TestGetViewZeroCopy: GetView must alias the index's own backing
// array (that is the point — no per-get allocation), while Get returns
// an independent copy.
func TestGetViewZeroCopy(t *testing.T) {
	s, err := Open(newMemDev(16), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	view, err := s.GetView("k")
	if err != nil {
		t.Fatal(err)
	}
	if &view[0] != &s.index["k"][0] {
		t.Fatal("GetView copied")
	}
	cp, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if &cp[0] == &view[0] {
		t.Fatal("Get aliases the index")
	}
	if _, err := s.GetView("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetView on absent key: %v", err)
	}
}
