package xen

import (
	"fmt"
	"strconv"
	"sync"

	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/parallel"
	"fidelius/internal/telemetry"
)

// ScheduleParallel runs a set of started domains concurrently: one runner
// goroutine per domain, bounded by a slot semaphore of width scheduling
// slots (the internal/parallel pool), each slot a simulated core brought
// online with Machine.NewCore. Every runner drives its own vCPU through
// the existing VMEXIT dispatch; guest code executes truly concurrently on
// per-vCPU controller views, and — since the big hypervisor lock was
// sharded away — host-side work is concurrent too: a runner holds only
// its domain's own lock for the quantum and touches shared shards (grant
// bytes, event handlers, the registry, allocators) through their own
// locks at the moments it genuinely shares. Quanta of distinct domains
// therefore contend only at real sharing points; the xen.lock_waits
// counters prove it. A width <= 0 picks GOMAXPROCS.
//
// The serial Schedule remains the default: its round-robin interleaving
// is deterministic, which the paper's attack demos and the golden traces
// rely on. ScheduleParallel trades that determinism for throughput; the
// per-domain memory images and launch measurements are identical either
// way (see TestScheduleParallelMatchesSerial).
//
// One deliberate divergence from the serial path: runners enter the guest
// directly instead of calling Interpose.VMRun, because the VMRUN stub
// executes on the single shared boot CPU and would re-serialize every
// quantum. The PreVMRun/OnVMExit boundary hooks — where Fidelius shadows
// and verifies the VMCB — still run for every quantum; under Fidelius
// they take the gate lock themselves for the shared-machine steps.
func (x *Xen) ScheduleParallel(doms []*Domain, width int) map[DomID]error {
	sp := x.M.Ctl.Telem.OpenScope("schedule-parallel", 0, 0).
		Attr("domains", strconv.Itoa(len(doms)))
	defer sp.Close()
	errs := make(map[DomID]error)
	var emu sync.Mutex
	pool := parallel.New(width)
	pool.Register(x.M.Ctl.Telem.Reg)
	pool.AttachHub(x.M.Ctl.Telem)
	_ = pool.ForEach(len(doms), func(i int) error {
		d := doms[i]
		if err := x.runDomain(d, sp.ID()); err != nil {
			emu.Lock()
			errs[d.ID] = err
			emu.Unlock()
		}
		return nil
	})
	return errs
}

// runDomain drives one domain to completion on a freshly onlined core.
// sched is the scheduler session span every quantum parents under —
// runner goroutines pass it explicitly because the ambient register
// cannot attribute concurrent quanta.
func (x *Xen) runDomain(d *Domain, sched uint64) error {
	v := d.vcpu
	if v == nil {
		return fmt.Errorf("xen: domain %d not started", d.ID)
	}
	if v.halted {
		return v.err
	}
	core := x.M.NewCore()
	defer x.M.ReleaseCore(core)
	// Hand the vCPU and the domain's host-side dispatch this core's
	// controller view; the guest goroutine is parked (StartVCPU blocks on
	// the first resume, a completed quantum blocks in exit()), so the
	// swap is ordered by the resume send below. The domain lock orders
	// the d.ctl swap against any other host-side reader.
	d.mu.Lock()
	v.ctl = core.Ctl
	d.ctl = core.Ctl
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		v.ctl = x.M.Ctl
		d.ctl = x.M.Ctl
		d.mu.Unlock()
	}()
	for {
		done, err := x.runQuantum(d, core, sched)
		if done {
			return err
		}
	}
}

// runQuantum is the parallel counterpart of RunOnce: enter the guest, take
// one VMEXIT through the interposer boundary hooks, and dispatch it. The
// runner holds the domain's own lock for the whole quantum — including
// the guest window, which is harmless because nothing else schedules this
// domain — and no global lock at all. The quantum's cycles, measured on
// the runner's private counter, accumulate into the domain's own account
// with a lock-free atomic add.
func (x *Xen) runQuantum(d *Domain, core *cpu.CPU, sched uint64) (done bool, err error) {
	v := d.vcpu
	ctl := core.Ctl
	d.mu.Lock()
	defer d.mu.Unlock()
	start := ctl.Cycles.Total()
	// Explicit parent: concurrent quanta cannot rely on the ambient
	// register across goroutines, so host-side child spans parent to the
	// scheduler session scope.
	sp := ctl.Telem.OpenSpan("quantum", uint32(d.ID), uint32(d.ASID), sched)
	defer func() {
		spent := ctl.Cycles.Sub(start)
		d.cycles.Add(spent)
		ctl.Telem.M.ExitCycles.Observe(spent)
		sp.Close()
	}()

	if err := x.Interpose.PreVMRun(d, d.VMCBPA()); err != nil {
		return true, fmt.Errorf("xen: entry to %s vetoed: %w", d.Name, err)
	}
	vmcb, err := cpu.LoadVMCB(ctl, d.VMCBPA())
	if err != nil {
		return true, err
	}
	fault := d.pendingFault
	d.pendingFault = false
	tel := ctl.Telem
	tel.M.VMRuns.Inc()
	if tel.Tracing() {
		tel.Emit(telemetry.KindVMRun, uint32(d.ID), uint32(d.ASID),
			cycles.VMEntry, uint64(d.VMCBPA()), 0)
	}
	ctl.Cycles.Charge(cycles.VMEntry)

	// Guest quantum: the vCPU goroutine runs against this core's
	// controller view until its next exit. Other domains' runners are in
	// their own quanta concurrently.
	v.resume <- resumeMsg{regs: vmcb.Regs, fault: fault}
	ev := <-v.exitCh

	ctl.Cycles.Charge(cycles.VMExit)
	tel.M.VMExits.Inc()
	if tel.Tracing() {
		tel.Emit(telemetry.KindVMExit, uint32(d.ID), uint32(d.ASID),
			cycles.VMExit, uint64(ev.reason), 0)
	}

	if ev.done {
		v.halted = true
		v.err = ev.err
	}
	vmcb.ExitCode = ev.reason
	vmcb.ExitInfo1 = ev.info1
	vmcb.ExitInfo2 = ev.info2
	vmcb.Regs = ev.regs
	vmcb.RIP = ev.rip
	if err := cpu.StoreVMCB(ctl, d.VMCBPA(), vmcb); err != nil {
		return true, err
	}
	// The guest's general purpose registers land in this core's register
	// file in plaintext — the SEV-without-ES exposure of Section 2.2.
	core.Regs = ev.regs
	if err := x.Interpose.OnVMExit(d, d.VMCBPA()); err != nil {
		return true, err
	}
	if v.halted {
		return true, v.err
	}
	if err := x.handleExit(d); err != nil {
		return true, err
	}
	return false, nil
}
