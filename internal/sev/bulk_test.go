package sev

import (
	"bytes"
	"math/rand"
	"testing"

	"fidelius/internal/hw"
)

// twinContexts builds two firmware contexts with identical Kvek,
// transport keys and lifecycle state, so the serial and bulk command
// paths can be compared byte for byte on the same inputs.
func twinContexts(t *testing.T, f *Firmware, state State) (*Context, *Context, Handle, Handle) {
	t.Helper()
	h1, err := f.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := f.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := f.ctxs[h1], f.ctxs[h2]
	c2.kvek = c1.kvek
	c2.cipher = c1.cipher
	tk := TransportKeys{}
	copy(tk.TEK[:], bytes.Repeat([]byte{0x5a}, 32))
	copy(tk.TIK[:], bytes.Repeat([]byte{0xa5}, 32))
	c1.transport, c2.transport = tk, tk
	c1.state, c2.state = state, state
	return c1, c2, h1, h2
}

func fillPages(t *testing.T, ctl *hw.Controller, pfns []hw.PFN, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var page [hw.PageSize]byte
	for _, pfn := range pfns {
		rng.Read(page[:])
		if err := ctl.Mem.WriteRaw(pfn.Addr(), page[:]); err != nil {
			t.Fatal(err)
		}
	}
}

func snapshotPages(t *testing.T, ctl *hw.Controller, pfns []hw.PFN) [][]byte {
	t.Helper()
	out := make([][]byte, len(pfns))
	for i, pfn := range pfns {
		out[i] = make([]byte, hw.PageSize)
		if err := ctl.Mem.ReadRaw(pfn.Addr(), out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestSendUpdatePagesMatchesSerial(t *testing.T) {
	f, ctl := newFW(t, 16)
	f.Pool().SetWidth(4)
	c1, c2, h1, h2 := twinContexts(t, f, StateSending)
	pfns := []hw.PFN{2, 3, 5, 7, 11}
	fillPages(t, ctl, pfns, 77)

	serial := make([]Packet, len(pfns))
	for i, pfn := range pfns {
		pkt, err := f.SendUpdate(h1, pfn)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = pkt
	}
	bulk, err := f.SendUpdatePages(h2, pfns)
	if err != nil {
		t.Fatal(err)
	}
	if len(bulk) != len(serial) {
		t.Fatalf("bulk produced %d packets, want %d", len(bulk), len(serial))
	}
	for i := range serial {
		if bulk[i].Seq != serial[i].Seq {
			t.Fatalf("packet %d: seq %d != %d", i, bulk[i].Seq, serial[i].Seq)
		}
		if !bytes.Equal(bulk[i].Data, serial[i].Data) {
			t.Fatalf("packet %d: ciphertext diverges from serial path", i)
		}
		if bulk[i].Tag != serial[i].Tag {
			t.Fatalf("packet %d: tag diverges from serial path", i)
		}
	}
	if c1.measure != c2.measure {
		t.Fatal("bulk measurement chain diverges from serial path")
	}
	if c1.seq != c2.seq {
		t.Fatalf("sequence counters diverge: %d != %d", c1.seq, c2.seq)
	}
}

func TestReceiveUpdatePagesMatchesSerial(t *testing.T) {
	f, ctl := newFW(t, 16)
	f.Pool().SetWidth(4)
	sc, _, sh, _ := twinContexts(t, f, StateSending)
	pfns := []hw.PFN{4, 6, 9, 10}
	fillPages(t, ctl, pfns, 13)
	pkts, err := f.SendUpdatePages(sh, pfns)
	if err != nil {
		t.Fatal(err)
	}

	r1, r2, rh1, rh2 := twinContexts(t, f, StateReceiving)
	r1.transport, r2.transport = sc.transport, sc.transport

	// Serial application, snapshot, then scrub the target pages.
	for i, pfn := range pfns {
		if err := f.ReceiveUpdate(rh1, pfn, pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotPages(t, ctl, pfns)
	var zero [hw.PageSize]byte
	for _, pfn := range pfns {
		if err := ctl.Mem.WriteRaw(pfn.Addr(), zero[:]); err != nil {
			t.Fatal(err)
		}
	}

	// Bulk application must land identical DRAM bytes. The two contexts
	// share a Kvek, so the re-encrypted pages are comparable.
	if err := f.ReceiveUpdatePages(rh2, pfns, pkts); err != nil {
		t.Fatal(err)
	}
	got := snapshotPages(t, ctl, pfns)
	for i := range pfns {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("page %d: bulk receive DRAM bytes diverge from serial path", i)
		}
	}
	if r1.measure != r2.measure {
		t.Fatal("bulk receive measurement diverges from serial path")
	}
	if r1.seq != r2.seq {
		t.Fatalf("receive sequence counters diverge: %d != %d", r1.seq, r2.seq)
	}

	// Out-of-window packets are rejected before any page is committed.
	if err := f.ReceiveUpdatePages(rh2, pfns, pkts); err == nil {
		t.Fatal("replayed batch should fail the sequence check")
	}
}

func TestLaunchUpdatePagesMatchesSerial(t *testing.T) {
	f, ctl := newFW(t, 16)
	f.Pool().SetWidth(4)
	c1, c2, h1, h2 := twinContexts(t, f, StateLaunching)
	pfns := []hw.PFN{1, 8, 12, 13, 14}
	fillPages(t, ctl, pfns, 5)
	plain := snapshotPages(t, ctl, pfns)

	for _, pfn := range pfns {
		if err := f.LaunchUpdateData(h1, pfn); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotPages(t, ctl, pfns)

	// Restore the plaintext and run the bulk command on the twin.
	for i, pfn := range pfns {
		if err := ctl.Mem.WriteRaw(pfn.Addr(), plain[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.LaunchUpdatePages(h2, pfns); err != nil {
		t.Fatal(err)
	}
	got := snapshotPages(t, ctl, pfns)
	for i := range pfns {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("page %d: bulk launch-update DRAM bytes diverge from serial path", i)
		}
	}
	if c1.measure != c2.measure {
		t.Fatal("bulk launch measurement diverges from serial path")
	}
}

func TestBulkStateChecks(t *testing.T) {
	f, _ := newFW(t, 8)
	h, err := f.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SendUpdatePages(h, []hw.PFN{1}); err == nil {
		t.Fatal("send_update_pages in launching state should fail")
	}
	if err := f.ReceiveUpdatePages(h, []hw.PFN{1}, []Packet{{}}); err == nil {
		t.Fatal("receive_update_pages in launching state should fail")
	}
	if err := f.LaunchUpdatePages(h, nil); err != nil {
		t.Fatalf("empty launch_update_pages: %v", err)
	}
}
