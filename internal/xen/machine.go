// Package xen implements the untrusted virtualization stack of the paper's
// platform: the hypervisor (domains, VMCB lifecycle, VMEXIT dispatch,
// nested-page-table management, hypercalls), the grant-table memory sharing
// mechanism, event channels, a XenStore, and para-virtualized block I/O
// front and back ends — all running over the simulated hardware in
// internal/hw, internal/cpu and internal/mmu, with SEV support from
// internal/sev.
//
// Everything in this package is *outside* Fidelius's trust boundary. The
// package deliberately exposes the raw capabilities a malicious hypervisor
// has (direct frame access, NPT rewrites, grant-table forgery); Fidelius
// (internal/core) revokes them via the interposer seams and the host page
// tables, and internal/attack demonstrates both sides.
package xen

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync/atomic"

	"fidelius/internal/cpu"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
	"fidelius/internal/lockrank"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
)

// LockWaits counts contended acquisitions per lock class — an acquisition
// that could not be satisfied immediately bumps its class counter. The
// hypervisor exports these as the xen.lock_waits metric family; the
// 64-domain stress test asserts the domain and gate classes stay at zero
// across concurrent quanta, which is the "quanta of distinct domains do
// not contend" property in checkable form.
type LockWaits struct {
	Domain   atomic.Uint64 // per-domain locks (rank: domain)
	Events   atomic.Uint64 // event-channel handler table (rank: events)
	Store    atomic.Uint64 // XenStore (rank: store)
	ASIDPool atomic.Uint64 // ASID allocator (rank: asid-pool)
	Gate     atomic.Uint64 // host/gate lock (rank: gate)
	Doms     atomic.Uint64 // domain registry (rank: doms)
	Firmware atomic.Uint64 // SEV firmware tables (rank: firmware)
	Frames   atomic.Uint64 // per-domain gfn→pfn maps (rank: frames)
	Alloc    atomic.Uint64 // physical page allocator (rank: alloc)
	Bus      atomic.Uint64 // TLB shootdown bus (rank: bus)
}

// Stubs records where the hypervisor's privileged-instruction stubs live.
// Each stub is the single sanctioned copy of one privileged instruction
// (Section 4.1.2): the "checking loop" instructions remain mapped and get
// monopolisation plus a post-instruction hook; VMRUN and MOV CR3 sit on
// their own pages so Fidelius can unmap them, and MOV CR3 is placed in the
// last bytes of its page with the following HLT on the next page.
type Stubs struct {
	Base     uint64 // first code page VA (== PA, direct map)
	MovCR0   uint64
	MovCR4   uint64
	Wrmsr    uint64
	Lgdt     uint64
	Lidt     uint64
	VmrunPg  uint64 // page base of the VMRUN stub
	Vmrun    uint64
	MovCR3Pg uint64 // page base of the MOV CR3 stub
	MovCR3   uint64
	ContPg   uint64 // page after MOV CR3 holding its continuation
	Pages    []hw.PFN
}

// Config sizes a machine.
type Config struct {
	MemPages   int // physical memory size in 4 KiB pages
	CacheLines int // CPU cache capacity in 64-byte lines
}

// DefaultConfig is a small machine adequate for tests and examples.
func DefaultConfig() Config { return Config{MemPages: 4096, CacheLines: 1024} }

// Machine is one physical host: memory, controller, CPU, SEV firmware,
// the frame allocator, the host page table (an identity "direct map" as in
// Xen) and the privileged instruction stubs.
type Machine struct {
	Ctl    *hw.Controller
	CPU    *cpu.CPU
	FW     *sev.Firmware
	Alloc  *FrameAlloc
	HostPT *mmu.Space
	Stubs  Stubs

	// TLBs is the TLB shootdown bus: every online core's TLB is
	// registered here, so protection-relevant invalidations (the type 3
	// gate unmaps in particular) reach remote cores as INVLPGA IPIs
	// would. The boot CPU registers at machine build; ScheduleParallel
	// registers one core per domain slot.
	TLBs *mmu.ShootdownBus

	// Host is the host/gate lock (lock rank: gate): it serializes the
	// genuinely shared host-side machinery — the boot CPU's register
	// file and privileged stubs, gate transitions and trusted-context
	// entry, and raw grant-table bytes. Per-quantum work of distinct
	// domains must never need it except at real sharing points (grant
	// map/unmap, event-channel handler invocation, serve-ring
	// doorbells); the Waits.Gate counter proves it.
	Host lockrank.Mutex

	// Waits aggregates lock contention per class for the whole machine.
	Waits *LockWaits
}

// NewMachine builds and boots the bare machine: physical memory, an
// identity-mapped host address space (code pages read-only and executable,
// everything else writable and NX), the assembled privileged stubs, and an
// initialised SEV firmware.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.MemPages < 64 {
		return nil, fmt.Errorf("xen: need at least 64 pages, got %d", cfg.MemPages)
	}
	ctl := hw.NewController(hw.NewMemory(cfg.MemPages), cfg.CacheLines)
	m := &Machine{
		Ctl:   ctl,
		CPU:   cpu.New(ctl),
		FW:    sev.NewFirmware(ctl),
		Alloc: NewFrameAlloc(1, cfg.MemPages),
		TLBs:  &mmu.ShootdownBus{},
		Waits: &LockWaits{},
	}
	m.Host.Init(lockrank.RankGate, &m.Waits.Gate)
	m.Alloc.SetLockInfo(lockrank.RankAlloc, &m.Waits.Alloc)
	m.TLBs.SetLockInfo(lockrank.RankBus, &m.Waits.Bus)
	m.FW.SetLockInfo(lockrank.RankFirmware, &m.Waits.Firmware)
	m.TLBs.Register(m.CPU.TLB)
	// BIOS enables SME: a random host key lives in slot 0 from boot.
	var smeKey hw.Key
	if _, err := io.ReadFull(rand.Reader, smeKey[:]); err != nil {
		return nil, err
	}
	if err := ctl.Eng.Install(hw.HostASID, smeKey); err != nil {
		return nil, err
	}
	if err := m.buildStubs(); err != nil {
		return nil, err
	}
	if err := m.buildHostPT(); err != nil {
		return nil, err
	}
	m.CPU.CR3 = uint64(m.HostPT.Root.Addr())
	m.CPU.CR0 = cpu.CR0PG | cpu.CR0WP
	m.CPU.CR4 = cpu.CR4SMEP
	m.CPU.EFER = cpu.EFERNXE
	return m, nil
}

// buildStubs assembles the privileged instruction stubs into four
// dedicated code pages.
func (m *Machine) buildStubs() error {
	var pages []hw.PFN
	for i := 0; i < 4; i++ {
		pfn, err := m.Alloc.Alloc(UseXenCode, 0)
		if err != nil {
			return err
		}
		pages = append(pages, pfn)
	}
	s := &m.Stubs
	s.Pages = pages
	s.Base = uint64(pages[0].Addr())

	// Page 0: the monopolised, always-mapped instructions. Each stub is
	// instruction (2 bytes) + HLT (1 byte).
	var code []byte
	place := func(in isa.Inst) uint64 {
		addr := s.Base + uint64(len(code))
		code = in.Encode(code)
		code = isa.Inst{Op: isa.OpHlt}.Encode(code)
		return addr
	}
	s.MovCR0 = place(isa.Inst{Op: isa.OpMovCR0, Reg: 0})
	s.MovCR4 = place(isa.Inst{Op: isa.OpMovCR4, Reg: 0})
	s.Wrmsr = place(isa.Inst{Op: isa.OpWrmsr})
	s.Lgdt = place(isa.Inst{Op: isa.OpLgdt, Reg: 0})
	s.Lidt = place(isa.Inst{Op: isa.OpLidt, Reg: 0})
	if err := m.Ctl.Mem.WriteRaw(pages[0].Addr(), code); err != nil {
		return err
	}

	// Page 1: VMRUN on its own page (type 3 gate target).
	s.VmrunPg = uint64(pages[1].Addr())
	s.Vmrun = s.VmrunPg
	vm := isa.Inst{Op: isa.OpVmrun, Reg: 0}.Encode(nil)
	vm = isa.Inst{Op: isa.OpHlt}.Encode(vm)
	if err := m.Ctl.Mem.WriteRaw(pages[1].Addr(), vm); err != nil {
		return err
	}

	// Page 2: MOV CR3 in the last two bytes; page 3: the continuation
	// HLT — the Section 4.1.2 placement rule.
	s.MovCR3Pg = uint64(pages[2].Addr())
	s.MovCR3 = s.MovCR3Pg + hw.PageSize - 2
	cr3 := isa.Inst{Op: isa.OpMovCR3, Reg: 0}.Encode(nil)
	if err := m.Ctl.Mem.WriteRaw(hw.PhysAddr(s.MovCR3), cr3); err != nil {
		return err
	}
	s.ContPg = uint64(pages[3].Addr())
	if err := m.Ctl.Mem.WriteRaw(pages[3].Addr(), isa.Inst{Op: isa.OpHlt}.Encode(nil)); err != nil {
		return err
	}
	return nil
}

// buildHostPT constructs the identity direct map: every physical frame is
// mapped at the virtual address equal to its physical address. Code pages
// are read-only and executable; all other pages are writable and NX (data
// execution prevention).
func (m *Machine) buildHostPT() error {
	root, err := m.Alloc.Alloc(UseXenPageTable, 0)
	if err != nil {
		return err
	}
	var zero [hw.PageSize]byte
	if err := m.Ctl.Mem.WriteRaw(root.Addr(), zero[:]); err != nil {
		return err
	}
	m.HostPT = &mmu.Space{Ctl: m.Ctl, Root: root}
	code := map[hw.PFN]bool{}
	for _, p := range m.Stubs.Pages {
		code[p] = true
	}
	ad := allocAdapter{a: m.Alloc, use: UseXenPageTable}
	for pfn := hw.PFN(0); pfn < hw.PFN(m.Alloc.Total()); pfn++ {
		flags := mmu.FlagP | mmu.FlagW | mmu.FlagNX
		if code[pfn] {
			flags = mmu.FlagP // read-only, executable
		}
		if err := m.HostPT.Map(ad, uint64(pfn.Addr()), mmu.MakePTE(pfn, flags)); err != nil {
			return err
		}
	}
	return nil
}

// NewCore brings an additional simulated core online for a parallel
// domain runner: a private register file and TLB over a per-vCPU
// controller view, sharing the machine's control-register state. The TLB
// joins the shootdown bus so cross-core invalidations reach it; events it
// emits land on the shared hub, but its metrics are not re-registered
// (the boot CPU's TLB serves the tlb.* metric names).
func (m *Machine) NewCore() *cpu.CPU {
	c := &cpu.CPU{
		Ctl:  m.Ctl.View(),
		TLB:  mmu.NewTLB(),
		IF:   true,
		CR0:  m.CPU.CR0,
		CR3:  m.CPU.CR3,
		CR4:  m.CPU.CR4,
		EFER: m.CPU.EFER,
	}
	c.TLB.Hub = m.Ctl.Telem
	m.TLBs.Register(c.TLB)
	return c
}

// ReleaseCore takes a NewCore core offline: its TLB leaves the shootdown
// bus and its private cycle counter folds back into the machine clock.
func (m *Machine) ReleaseCore(c *cpu.CPU) {
	m.TLBs.Unregister(c.TLB)
	c.Ctl.Release()
}

// ExecStub runs a privileged stub on the CPU with r0 preloaded. This is
// how hypervisor (and Fidelius) logic executes its single sanctioned copy
// of a privileged instruction.
func (m *Machine) ExecStub(addr, r0 uint64) error {
	m.CPU.Regs[0] = r0
	return m.CPU.Run(addr, 16)
}

// CodeRegion reads back the hypervisor's code pages for binary scanning.
func (m *Machine) CodeRegion() ([]byte, error) {
	out := make([]byte, 0, len(m.Stubs.Pages)*hw.PageSize)
	var page [hw.PageSize]byte
	for _, pfn := range m.Stubs.Pages {
		if err := m.Ctl.Mem.ReadRaw(pfn.Addr(), page[:]); err != nil {
			return nil, err
		}
		out = append(out, page[:]...)
	}
	return out, nil
}
