package migrate

import (
	"errors"
	"fmt"

	"fidelius/internal/sev"
)

// Target is the receiving platform as the engine sees it: the four
// RECEIVE-side operations, applied strictly in arrival order. A nil
// error from ReceiveFinish means the measurement verified and the VM
// activated on the target.
type Target interface {
	ReceiveStart(name string, memPages int, kwrap sev.WrappedKeys, nonce []byte) error
	ReceivePage(gfn uint64, pkt sev.Packet) error
	ReceiveFinish(mvm sev.Measurement) error
	// Abort scrubs any partially-received state.
	Abort() error
}

// Receive runs the target side of a migration until FrameFinish is
// applied successfully, the sender aborts, or the connection dies. It is
// the ARQ peer of Send: frames apply strictly in sequence order —
// duplicates (a retry whose original ack was lost) are re-acked without
// re-applying, gaps (a dropped frame the sender will retry) are nacked,
// and an apply failure (a tampered packet failing its tag or the final
// measurement check) nacks without advancing, so a clean retransmission
// of the same sequence number can still succeed.
func Receive(tgt Target, conn Conn) error {
	var expected uint64
	for {
		f, err := conn.Recv(0)
		if err != nil {
			_ = tgt.Abort()
			return fmt.Errorf("migrate: receive: %w", err)
		}
		switch {
		case f.Type == FrameAbort:
			_ = tgt.Abort()
			return fmt.Errorf("%w by sender: %s", ErrAborted, f.Err)
		case f.Type == FrameAck:
			continue // not ours to handle; ignore
		case f.Seq < expected:
			// Duplicate of an already-applied frame: its ack was lost or
			// the network duplicated it. Re-ack, do not re-apply — the
			// firmware stream must see each packet exactly once.
			if err := sendAck(conn, f.Seq, nil); err != nil {
				_ = tgt.Abort()
				return err
			}
			continue
		case f.Seq > expected:
			// Gap: an earlier frame is still missing. Nack so the sender
			// keeps retrying it; applying out of order would desequence
			// the firmware stream.
			err := fmt.Errorf("sequence gap: got %d, want %d", f.Seq, expected)
			if err := sendAck(conn, f.Seq, err); err != nil {
				_ = tgt.Abort()
				return err
			}
			continue
		}

		applyErr := apply(tgt, f)
		if ackErr := sendAck(conn, f.Seq, applyErr); ackErr != nil {
			_ = tgt.Abort()
			return ackErr
		}
		if applyErr != nil {
			// The frame was delivered but rejected (bad tag, bad
			// measurement, bad geometry). Do not advance: the sender may
			// retransmit an uncorrupted copy under the same sequence
			// number. Terminal errors end here when the sender's retry
			// budget runs out and it sends FrameAbort.
			continue
		}
		expected++
		if f.Type == FrameFinish {
			return nil
		}
	}
}

func apply(tgt Target, f *Frame) error {
	switch f.Type {
	case FrameStart:
		return tgt.ReceiveStart(f.Name, f.MemPages, f.Kwrap, f.Nonce)
	case FramePage:
		return tgt.ReceivePage(f.GFN, f.Pkt)
	case FrameFinish:
		return tgt.ReceiveFinish(f.Mvm)
	}
	return fmt.Errorf("migrate: unexpected frame type %v", f.Type)
}

func sendAck(conn Conn, seq uint64, applyErr error) error {
	ack := &Frame{Type: FrameAck, AckSeq: seq, OK: applyErr == nil}
	if applyErr != nil {
		ack.Err = applyErr.Error()
	}
	if err := conn.Send(ack); err != nil {
		if errors.Is(err, ErrClosed) {
			return fmt.Errorf("migrate: receive: %w", err)
		}
		return err
	}
	return nil
}
