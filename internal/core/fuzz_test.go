package core

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/gob"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/sev"
)

// The bundle unmarshalers face attacker-controlled bytes relayed by the
// untrusted hypervisor. The fuzz targets assert two things: no input
// panics, and any input the validator accepts satisfies the structural
// invariants the rest of the platform relies on.

func seedPub(f *testing.F) []byte {
	f.Helper()
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	return priv.PublicKey().Bytes()
}

func mustGob(f *testing.F, v any) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func validWrap() sev.WrappedKeys {
	return sev.WrappedKeys{Ciphertext: make([]byte, wrappedKeyLen)}
}

func pagePacket(seq uint64) sev.Packet {
	return sev.Packet{Seq: seq, Data: make([]byte, hw.PageSize)}
}

func FuzzUnmarshalGuestBundle(f *testing.F) {
	pub := seedPub(f)
	good := guestBundleWire{
		Image: &sev.EncryptedImage{Pages: []sev.Packet{pagePacket(0), pagePacket(1)}},
		Kwrap: validWrap(), OwnerPub: pub, Nonce: make([]byte, sessionNonceLen),
	}
	f.Add(mustGob(f, good))
	bad := good
	bad.Image = &sev.EncryptedImage{Pages: []sev.Packet{{Data: []byte("short")}}}
	f.Add(mustGob(f, bad))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b GuestBundle
		if err := b.UnmarshalBinary(data); err != nil {
			return
		}
		if b.Image == nil || b.Image.NumPages() == 0 || b.Image.NumPages() > maxBundlePages {
			t.Fatalf("accepted bundle with bad image: %+v", b.Image)
		}
		for i, p := range b.Image.Pages {
			if len(p.Data) != hw.PageSize {
				t.Fatalf("accepted %d-byte page %d", len(p.Data), i)
			}
		}
		if len(b.Kwrap.Ciphertext) != wrappedKeyLen || len(b.Nonce) != sessionNonceLen {
			t.Fatalf("accepted bad key material: wrap=%d nonce=%d",
				len(b.Kwrap.Ciphertext), len(b.Nonce))
		}
		if b.OwnerPub == nil {
			t.Fatal("accepted bundle without owner key")
		}
		// Accepted input must survive a round trip.
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		var b2 GuestBundle
		if err := b2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
	})
}

func FuzzUnmarshalMigrationBundle(f *testing.F) {
	good := migrationBundleWire{
		Name: "vm", MemPages: 4, Kwrap: validWrap(),
		Nonce:   make([]byte, sessionNonceLen),
		Packets: []sev.Packet{pagePacket(0), pagePacket(1)},
	}
	f.Add(mustGob(f, good))
	bad := good
	bad.MemPages = 1 // fewer pages than packets
	f.Add(mustGob(f, bad))
	huge := good
	huge.MemPages = maxBundlePages + 1
	f.Add(mustGob(f, huge))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b MigrationBundle
		if err := b.UnmarshalBinary(data); err != nil {
			return
		}
		if b.MemPages <= 0 || b.MemPages > maxBundlePages {
			t.Fatalf("accepted MemPages=%d", b.MemPages)
		}
		if len(b.Packets) > b.MemPages {
			t.Fatalf("accepted %d packets for %d pages", len(b.Packets), b.MemPages)
		}
		for i, p := range b.Packets {
			if len(p.Data) != hw.PageSize {
				t.Fatalf("accepted %d-byte packet %d", len(p.Data), i)
			}
		}
		if len(b.Kwrap.Ciphertext) != wrappedKeyLen || len(b.Nonce) != sessionNonceLen {
			t.Fatalf("accepted bad key material: wrap=%d nonce=%d",
				len(b.Kwrap.Ciphertext), len(b.Nonce))
		}
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		var b2 MigrationBundle
		if err := b2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
	})
}

func FuzzUnmarshalGEKBundle(f *testing.F) {
	pub := seedPub(f)
	good := gekBundleWire{
		Image:   &sev.GEKImage{Pages: [][]byte{make([]byte, hw.PageSize)}},
		GEKWrap: validWrap(), OwnerPub: pub, Nonce: make([]byte, sessionNonceLen),
	}
	f.Add(mustGob(f, good))
	bad := good
	bad.Image = &sev.GEKImage{Pages: [][]byte{[]byte("tiny")}}
	f.Add(mustGob(f, bad))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b GEKBundle
		if err := b.UnmarshalBinary(data); err != nil {
			return
		}
		if b.Image == nil || b.Image.NumPages() == 0 || b.Image.NumPages() > maxBundlePages {
			t.Fatalf("accepted bundle with bad image: %+v", b.Image)
		}
		for i, p := range b.Image.Pages {
			if len(p) != hw.PageSize {
				t.Fatalf("accepted %d-byte page %d", len(p), i)
			}
		}
		if len(b.GEKWrap.Ciphertext) != wrappedKeyLen || len(b.Nonce) != sessionNonceLen {
			t.Fatalf("accepted bad key material: wrap=%d nonce=%d",
				len(b.GEKWrap.Ciphertext), len(b.Nonce))
		}
		if b.OwnerPub == nil {
			t.Fatal("accepted bundle without owner key")
		}
	})
}
