// Package kv is a small append-only key-value store designed to run
// *inside* a protected guest: it keeps its index in guest (encrypted)
// memory and persists records through any of the platform's block
// front-ends. Running it under Fidelius demonstrates the paper's
// motivating scenario — a tenant service whose data stays confidential
// against the hypervisor, the driver domain and the physical disk.
//
// On-disk layout: a sequence of sector-aligned records,
//
//	[4B magic][4B keyLen][4B valLen][key][value][padding to sector]
//
// terminated by a zero sector. A valLen of 0xFFFFFFFF marks a tombstone
// (the key is deleted; no value bytes follow), so an empty value and a
// deletion are distinct on disk. The store is crash-simple: reopening
// scans the log and rebuilds the index.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockDev is the sector interface the store persists through — satisfied
// by the baseline and both protected front-ends.
type BlockDev interface {
	WriteSectors(lba uint64, data []byte) error
	ReadSectors(lba uint64, buf []byte) error
}

// SectorSize matches the platform's disk sector size.
const SectorSize = 512

const magic = 0xF1DE1105

// tombstoneLen in the valLen header field marks a deletion record. The
// sentinel keeps tombstones distinct from legitimate empty values, which
// earlier versions conflated (a Put of an empty value acted as a Delete).
const tombstoneLen = ^uint32(0)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kv: key not found")

// ErrCorrupt reports an undecodable log.
var ErrCorrupt = errors.New("kv: corrupt log")

// Format initialises a fresh store region by writing the log terminator.
// It is required before the first Open when the device is an encrypting
// front-end: a never-written disk does not read back as zeros through an
// encryption layer.
func Format(dev BlockDev, baseLBA uint64) error {
	return dev.WriteSectors(baseLBA, make([]byte, SectorSize))
}

// Store is one open key-value store.
type Store struct {
	dev     BlockDev
	baseLBA uint64
	maxLBA  uint64
	nextLBA uint64
	index   map[string][]byte
}

// Open creates or recovers a store occupying [baseLBA, baseLBA+sectors)
// on the device, replaying any existing log.
func Open(dev BlockDev, baseLBA uint64, sectors int) (*Store, error) {
	s := &Store{
		dev:     dev,
		baseLBA: baseLBA,
		maxLBA:  baseLBA + uint64(sectors),
		nextLBA: baseLBA,
		index:   make(map[string][]byte),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	return s, nil
}

func recordSectors(keyLen, valLen int) int {
	return (12 + keyLen + valLen + SectorSize - 1) / SectorSize
}

// replay scans the log rebuilding the index.
func (s *Store) replay() error {
	head := make([]byte, SectorSize)
	for s.nextLBA < s.maxLBA {
		if err := s.dev.ReadSectors(s.nextLBA, head); err != nil {
			return err
		}
		m := binary.LittleEndian.Uint32(head[0:])
		if m == 0 {
			return nil // end of log
		}
		if m != magic {
			return fmt.Errorf("%w: bad magic %#x at lba %d", ErrCorrupt, m, s.nextLBA)
		}
		keyLen := int(binary.LittleEndian.Uint32(head[4:]))
		rawVal := binary.LittleEndian.Uint32(head[8:])
		dead := rawVal == tombstoneLen
		valLen := int(rawVal)
		if dead {
			valLen = 0
		}
		if keyLen <= 0 || keyLen > 4096 || valLen < 0 || valLen > 1<<20 {
			return fmt.Errorf("%w: silly lengths %d/%d", ErrCorrupt, keyLen, valLen)
		}
		n := recordSectors(keyLen, valLen)
		if s.nextLBA+uint64(n) > s.maxLBA {
			return fmt.Errorf("%w: record overruns the region", ErrCorrupt)
		}
		buf := make([]byte, n*SectorSize)
		if err := s.dev.ReadSectors(s.nextLBA, buf); err != nil {
			return err
		}
		key := string(buf[12 : 12+keyLen])
		if dead {
			delete(s.index, key) // tombstone
		} else {
			s.index[key] = append([]byte{}, buf[12+keyLen:12+keyLen+valLen]...)
		}
		s.nextLBA += uint64(n)
	}
	return nil
}

// Put appends a record and updates the index. An empty (or nil) value is
// a real value: it is stored, returned by Get as an empty slice, and the
// key stays live — deletion is a distinct tombstone record (see Delete).
// The new log terminator is written first so a crash between the two
// writes leaves a valid log.
func (s *Store) Put(key string, value []byte) error {
	if err := s.append(key, value, false); err != nil {
		return err
	}
	s.index[key] = append([]byte{}, value...)
	return nil
}

// append writes one record (value or tombstone) with terminator-first
// crash safety, advancing the log head.
func (s *Store) append(key string, value []byte, dead bool) error {
	if key == "" {
		return errors.New("kv: empty key")
	}
	n := recordSectors(len(key), len(value))
	if s.nextLBA+uint64(n) > s.maxLBA {
		return errors.New("kv: store full")
	}
	// Terminator first, then the record: a torn sequence still replays.
	if s.nextLBA+uint64(n) < s.maxLBA {
		if err := Format(s.dev, s.nextLBA+uint64(n)); err != nil {
			return err
		}
	}
	buf := make([]byte, n*SectorSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(key)))
	if dead {
		binary.LittleEndian.PutUint32(buf[8:], tombstoneLen)
	} else {
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(value)))
	}
	copy(buf[12:], key)
	copy(buf[12+len(key):], value)
	if err := s.dev.WriteSectors(s.nextLBA, buf); err != nil {
		return err
	}
	s.nextLBA += uint64(n)
	return nil
}

// Get returns the current value of a key.
func (s *Store) Get(key string) ([]byte, error) {
	v, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte{}, v...), nil
}

// Delete writes a tombstone record and drops the key from the index.
// Deleting an absent key still logs a tombstone (idempotent on replay).
func (s *Store) Delete(key string) error {
	if err := s.append(key, nil, true); err != nil {
		return err
	}
	delete(s.index, key)
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int { return len(s.index) }

// Keys returns the live keys (order unspecified).
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// UsedSectors reports the log length in sectors.
func (s *Store) UsedSectors() uint64 { return s.nextLBA - s.baseLBA }
