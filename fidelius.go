// Package fidelius is a full-system reproduction of "Comprehensive VM
// Protection against Untrusted Hypervisor through Retrofitted AMD Memory
// Encryption" (Wu et al., HPCA 2018): the Fidelius software extension to
// AMD SEV, together with every substrate it needs — a simulated machine
// with an inline AES memory-encryption engine, SEV firmware, and a
// Xen-like hypervisor with para-virtualized block I/O.
//
// The package is a facade over the internal packages. A typical protected
// VM session:
//
//	plat, _ := fidelius.NewPlatform(fidelius.Config{Protected: true})
//	owner, _ := fidelius.NewOwner()
//	bundle, kblk, _ := fidelius.PrepareGuest(owner, plat.PlatformKey(), kernel, diskImage)
//	vm, _ := plat.LaunchVM("my-vm", 64, bundle)
//	plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error { ... })
//	err := plat.Run(vm)
//	plat.Shutdown(vm)
//
// The guest function runs against GuestEnv: memory access through the
// two-dimensional SEV translation, hypercalls, and the protected I/O
// front-ends. See the examples directory for complete programs.
package fidelius

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"fmt"
	"io"

	"fidelius/internal/core"
	"fidelius/internal/disk"
	"fidelius/internal/migrate"
	"fidelius/internal/serve"
	"fidelius/internal/sev"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

// Re-exported core types. These aliases are the public names of the
// system's working parts.
type (
	// Platform is a booted machine: hardware, hypervisor and (when
	// protected) the Fidelius trusted context.
	Platform struct {
		// X is the hypervisor; it is untrusted in the threat model but
		// fully scriptable here (that is the point of the reproduction).
		X *xen.Xen
		// F is the Fidelius context; nil on unprotected platforms.
		F *core.Fidelius
	}

	// Domain is a guest VM.
	Domain = xen.Domain

	// GuestEnv is the world as seen from inside a guest vCPU.
	GuestEnv = xen.GuestEnv

	// GuestFunc is a guest kernel.
	GuestFunc = xen.GuestFunc

	// GuestBundle is the owner-prepared encrypted kernel + disk images.
	GuestBundle = core.GuestBundle

	// MigrationBundle is an encrypted VM snapshot in transit.
	MigrationBundle = core.MigrationBundle

	// Owner is the guest owner's offline trusted environment.
	Owner = sev.Owner

	// Disk is a virtual disk backing a PV block device.
	Disk = disk.Disk

	// BlockBackend is the driver-domain half of a PV block device.
	BlockBackend = xen.BlockBackend

	// BlockFrontend is the baseline (unprotected) guest block driver.
	BlockFrontend = xen.BlockFrontend

	// AESNIFront is the AES-NI protected guest block driver.
	AESNIFront = core.AESNIFront

	// SEVFront is the SEV-API protected guest block driver.
	SEVFront = core.SEVFront

	// Violation is one policy violation recorded by Fidelius.
	Violation = core.Violation

	// Quote is a signed attestation statement.
	Quote = sev.Quote

	// GEKImage is a portable encrypted kernel image (Section 8
	// customized-keys extension).
	GEKImage = sev.GEKImage

	// GEK is a customized guest encryption key.
	GEK = sev.GEK

	// GEKBundle binds a portable image to one platform.
	GEKBundle = core.GEKBundle

	// MigrateConn is one endpoint of a live-migration channel.
	MigrateConn = migrate.Conn

	// MigrateConfig tunes the live pre-copy engine (rounds, convergence
	// threshold, retry budget, stop-and-copy baseline mode).
	MigrateConfig = migrate.Config

	// MigrateStats is the engine's account of one migration: rounds,
	// pages, re-dirtied traffic, retries, bytes on wire and downtime.
	MigrateStats = migrate.Stats

	// MigrateLink wraps an endpoint with a bandwidth/latency cost model.
	MigrateLink = migrate.Link

	// MigrateFrame is one protocol frame on a migration channel.
	MigrateFrame = migrate.Frame

	// MigrateFaulty injects drops, duplicates and corruption into a
	// migration channel, for exercising the retry protocol.
	MigrateFaulty = migrate.Faulty
)

// MigrateFramePage identifies a page-carrying migration frame.
const MigrateFramePage = migrate.FramePage

// Config sizes and configures a platform.
type Config struct {
	// MemPages is physical memory in 4 KiB pages (default 4096).
	MemPages int
	// CacheLines is the CPU cache size in 64-byte lines (default 1024).
	CacheLines int
	// Protected enables Fidelius (late launch at boot).
	Protected bool
}

// NewPlatform boots a machine, the hypervisor and — if requested —
// Fidelius on top.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.MemPages == 0 {
		cfg.MemPages = 4096
	}
	if cfg.CacheLines == 0 {
		cfg.CacheLines = 1024
	}
	m, err := xen.NewMachine(xen.Config{MemPages: cfg.MemPages, CacheLines: cfg.CacheLines})
	if err != nil {
		return nil, err
	}
	x, err := xen.New(m)
	if err != nil {
		return nil, err
	}
	p := &Platform{X: x}
	if cfg.Protected {
		if p.F, err = core.Enable(x); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Protected reports whether Fidelius is active.
func (p *Platform) Protected() bool { return p.F != nil }

// PlatformKey returns the SEV platform public key guest owners encrypt
// their images for.
func (p *Platform) PlatformKey() *ecdh.PublicKey {
	pub, err := p.X.M.FW.PublicKey()
	if err != nil {
		panic("fidelius: platform firmware not initialised: " + err.Error())
	}
	return pub
}

// NewOwner creates a guest-owner identity.
func NewOwner() (*Owner, error) { return sev.NewOwner() }

// PrepareGuest runs the owner's offline preparation: the encrypted kernel
// image (with Kblk embedded), the wrapped transport keys, and the
// Kblk-encrypted disk image.
func PrepareGuest(owner *Owner, platformKey *ecdh.PublicKey, kernel, diskImage []byte) (*GuestBundle, [32]byte, error) {
	return core.PrepareGuest(owner, platformKey, kernel, diskImage)
}

// LaunchVM boots a protected VM from an owner bundle (requires a
// protected platform). For unprotected guests use CreateVM.
func (p *Platform) LaunchVM(name string, memPages int, b *GuestBundle) (*Domain, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: LaunchVM requires a protected platform")
	}
	return p.F.LaunchVM(name, memPages, b)
}

// CreateVM builds a guest without Fidelius's boot protocol. With sev
// true the guest gets its own memory encryption key (hypervisor-managed,
// as on stock SEV).
func (p *Platform) CreateVM(name string, memPages int, sevEnabled bool) (*Domain, error) {
	return p.X.CreateDomain(xen.DomainConfig{Name: name, MemPages: memPages, SEV: sevEnabled})
}

// AttachDisk wires a disk to a VM through the PV block protocol. On a
// protected platform it also declares the shared pages and loads the
// bundle's encrypted disk image (pass nil to skip).
func (p *Platform) AttachDisk(d *Domain, dk *Disk, dataPages int, port uint32, b *GuestBundle) (*BlockBackend, error) {
	var backend *BlockBackend
	var err error
	if p.F != nil {
		backend, err = p.F.AttachProtectedDisk(d, dk, dataPages, port, b)
	} else {
		backend, err = p.X.AttachBlockDevice(d, dk, dataPages, port)
		if err == nil && b != nil {
			for lba := 0; lba*SectorSize < len(b.DiskImage); lba++ {
				if werr := dk.WriteSector(uint64(lba), b.DiskImage[lba*SectorSize:]); werr != nil {
					return nil, werr
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return backend, p.X.WriteStartInfo(d)
}

// SetupIOSession establishes the SEV-API I/O encryption contexts (s-dom
// and r-dom) for a protected VM, enabling SEVFront.
func (p *Platform) SetupIOSession(d *Domain) error {
	if p.F == nil {
		return fmt.Errorf("fidelius: SEV I/O sessions require a protected platform")
	}
	return p.F.SetupIOSession(d)
}

// StartVCPU launches a guest kernel on a VM's vCPU.
func (p *Platform) StartVCPU(d *Domain, fn GuestFunc) { p.X.StartVCPU(d, fn) }

// Run schedules the VM until its guest function returns.
func (p *Platform) Run(d *Domain) error { return p.X.Run(d) }

// Schedule round-robins several started VMs until all their guest
// functions return, returning per-domain errors.
func (p *Platform) Schedule(doms []*Domain) map[xen.DomID]error { return p.X.Schedule(doms) }

// ScheduleParallel runs several started VMs concurrently, one runner per
// VM bounded by width scheduling slots (width <= 0 picks GOMAXPROCS).
// Guest code overlaps in time and each domain's quanta run under that
// domain's own lock; domains contend only at genuine sharing points —
// grant operations, event signalling, XenStore, the gatekeeper's trusted
// state — each behind its own lock. Use Schedule when deterministic
// interleaving matters (the attack demos and golden traces do).
func (p *Platform) ScheduleParallel(doms []*Domain, width int) map[xen.DomID]error {
	return p.X.ScheduleParallel(doms, width)
}

// Shutdown terminates a VM with full key and metadata scrubbing.
func (p *Platform) Shutdown(d *Domain) error {
	if p.F != nil {
		if _, ok := p.F.VM(d); ok {
			return p.F.ShutdownVM(d)
		}
	}
	return p.X.DestroyDomain(d, false)
}

// MigrateOut snapshots a stopped protected VM for the target platform.
func (p *Platform) MigrateOut(d *Domain, target *Platform) (*MigrationBundle, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: migration requires a protected platform")
	}
	return p.F.MigrateOut(d, target.PlatformKey())
}

// MigrateIn materialises a migrated VM on this platform.
func (p *Platform) MigrateIn(bundle *MigrationBundle, origin *Platform) (*Domain, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: migration requires a protected platform")
	}
	return p.F.MigrateIn(bundle, origin.PlatformKey())
}

// NewMigrationPipe returns two connected in-memory migration endpoints
// with the given per-direction frame buffer.
func NewMigrationPipe(buf int) (MigrateConn, MigrateConn) { return migrate.Pipe(buf) }

// MigrateOutLive streams a running protected VM to the platform behind
// conn using iterative pre-copy: the vCPU keeps executing while dirty
// pages are tracked in the NPT and re-sent round by round; only the
// final round stops it. On failure the source VM is left running.
func (p *Platform) MigrateOutLive(d *Domain, target *Platform, conn MigrateConn, cfg MigrateConfig) (*MigrateStats, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: migration requires a protected platform")
	}
	return p.F.MigrateOutLive(d, target.PlatformKey(), conn, cfg)
}

// MigrateInLive receives a live migration arriving on conn and returns
// the activated VM.
func (p *Platform) MigrateInLive(conn MigrateConn, origin *Platform) (*Domain, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: migration requires a protected platform")
	}
	return p.F.MigrateInLive(conn, origin.PlatformKey())
}

// LiveMigrate moves a running protected VM from one platform to another
// over an in-memory link with the default bandwidth/latency cost model,
// running both protocol ends and returning the activated target domain
// plus the engine's statistics.
func LiveMigrate(source *Platform, d *Domain, target *Platform, cfg MigrateConfig) (*Domain, *MigrateStats, error) {
	if source.F == nil || target.F == nil {
		return nil, nil, fmt.Errorf("fidelius: live migration requires protected platforms")
	}
	a, b := migrate.Pipe(8)
	sc := &migrate.Link{Conn: a, Counter: source.X.M.Ctl.Cycles,
		CyclesPerByte: migrate.DefaultCyclesPerByte, LatencyCycles: migrate.DefaultLatencyCycles}
	tc := &migrate.Link{Conn: b, Counter: target.X.M.Ctl.Cycles,
		CyclesPerByte: migrate.DefaultCyclesPerByte, LatencyCycles: migrate.DefaultLatencyCycles}
	type inRes struct {
		d   *Domain
		err error
	}
	done := make(chan inRes, 1)
	go func() {
		vm, err := target.MigrateInLive(tc, source)
		done <- inRes{vm, err}
	}()
	stats, err := source.MigrateOutLive(d, target, sc, cfg)
	r := <-done
	if err != nil {
		return nil, stats, err
	}
	if r.err != nil {
		return nil, stats, r.err
	}
	return r.d, stats, nil
}

// Violations returns the policy violations Fidelius has logged.
func (p *Platform) Violations() []Violation {
	if p.F == nil {
		return nil
	}
	return p.F.ViolationLog()
}

// DumpViolations writes the Fidelius audit log in a human-readable form.
func (p *Platform) DumpViolations(w io.Writer) {
	vs := p.Violations()
	if len(vs) == 0 {
		fmt.Fprintln(w, "no policy violations recorded")
		return
	}
	fmt.Fprintf(w, "%d policy violation(s):\n", len(vs))
	for i, v := range vs {
		fmt.Fprintf(w, "  %3d  [%s] %s\n", i+1, v.Kind, v.Detail)
	}
}

// Telemetry returns the platform's telemetry hub: the unified metrics
// registry plus the event tracer every layer of the machine reports into.
func (p *Platform) Telemetry() *telemetry.Hub { return p.X.M.Ctl.Telem }

// Metrics snapshots every counter, gauge and histogram on the platform.
func (p *Platform) Metrics() telemetry.Snapshot { return p.Telemetry().Reg.Snapshot() }

// StartTrace begins capturing timeline events into a bounded ring buffer
// (capacity in events; 0 selects the default). Tracing costs one event
// record per instrumented operation; when no trace is active the
// instrumentation reduces to a single atomic load.
func (p *Platform) StartTrace(capacity int) { p.Telemetry().StartTrace(capacity) }

// StopTrace stops capturing and detaches the current trace buffer.
func (p *Platform) StopTrace() { p.Telemetry().StopTrace() }

// WriteTrace renders the captured events as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. Processes are VMs (pid =
// domain ID), threads are ASIDs. Causal spans (scheduler sessions,
// quanta, SEV firmware commands, migration rounds, pool batches) are
// exported alongside, with parent→child flow arrows.
func (p *Platform) WriteTrace(w io.Writer) error { return p.Telemetry().WriteChromeTrace(w) }

// SLOObjective is one declarative latency objective over a platform
// histogram (see telemetry.Objective).
type SLOObjective = telemetry.Objective

// SLOEvaluation is one objective's pass/fail verdict with its measured
// quantile and burn rate.
type SLOEvaluation = telemetry.Evaluation

// DefaultSLOs returns the platform's stock latency objectives (VMEXIT
// round-trip p50/p99).
func DefaultSLOs() []SLOObjective { return telemetry.DefaultObjectives() }

// EvaluateSLOs checks the objectives against the live registry, emitting
// burn-rate alert events for failures; render the result with
// telemetry.WriteSLOTable.
func (p *Platform) EvaluateSLOs(objs []SLOObjective) []SLOEvaluation {
	return p.Telemetry().EvaluateSLOs(objs)
}

// AuditRecord is one entry of the hash-chained security audit ledger.
type AuditRecord = telemetry.Record

// StartAudit arms the platform's append-only, hash-chained security
// audit ledger: gatekeeper denials, integrity-tag failures, NPT remap and
// ASID-reuse detections, SEV state transitions and attestation quotes all
// append records. When no ledger is armed the instrumentation reduces to
// a single atomic load.
func (p *Platform) StartAudit() { p.Telemetry().StartLedger() }

// StopAudit disarms and detaches the current audit ledger.
func (p *Platform) StopAudit() { p.Telemetry().StopLedger() }

// AuditRecords returns a copy of the ledger's chain, oldest first.
func (p *Platform) AuditRecords() []AuditRecord { return p.Telemetry().Ledger().Records() }

// AuditHead returns the ledger's live head hash. A verifier that holds
// the head out of band detects truncation of an exported copy, not just
// in-place tampering.
func (p *Platform) AuditHead() [32]byte { return p.Telemetry().Ledger().Head() }

// VerifyAuditChain checks an exported ledger copy against a head hash;
// any mutation, reorder, insertion, deletion or truncation fails.
func VerifyAuditChain(recs []AuditRecord, head [32]byte) error {
	return telemetry.VerifyChain(recs, head)
}

// NewDisk creates a virtual disk with the given number of 512-byte
// sectors.
func NewDisk(sectors int) *Disk { return disk.New(sectors) }

// NewBlockFrontend opens the baseline PV block front-end inside a guest.
func NewBlockFrontend(g *GuestEnv) (*BlockFrontend, error) { return xen.NewBlockFrontend(g) }

// NewAESNIFront opens the AES-NI protected front-end with the guest's
// block key.
func NewAESNIFront(g *GuestEnv, f *BlockFrontend, kblk [32]byte) (*AESNIFront, error) {
	return core.NewAESNIFront(g, f, kblk)
}

// NewSEVFront opens the SEV-API protected front-end (requires
// SetupIOSession on the domain first).
func NewSEVFront(g *GuestEnv, f *BlockFrontend) *SEVFront { return core.NewSEVFront(g, f) }

// ServeConfig sizes a multi-tenant serving scenario (see internal/serve).
type ServeConfig = serve.Config

// ServeService is one multi-tenant KV serving scenario: per-tenant
// protected VMs running the kv store behind a sector-framed request ring,
// with open-loop load and attestation-gated admission.
type ServeService = serve.Service

// ServeTenantReport is one tenant's serving scorecard.
type ServeTenantReport = serve.TenantReport

// NewServeService builds the serving scenario on a protected platform:
// tenant VMs launched, disks attached, rings mapped, and every client
// session admitted (or refused) through the attestation handshake.
func (p *Platform) NewServeService(cfg ServeConfig) (*ServeService, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: serving requires a protected platform")
	}
	return serve.New(p.F, cfg)
}

// DefaultServeSLOs returns the stock serving-latency objectives
// (arrival-to-response p50/p99 over the fleet serve.latency histogram).
func DefaultServeSLOs() []SLOObjective { return telemetry.DefaultServeObjectives() }

// WriteServeReportTable renders per-tenant serving scorecards.
func WriteServeReportTable(w io.Writer, reports []ServeTenantReport) error {
	return serve.WriteReportTable(w, reports)
}

// Useful re-exported constants.
const (
	// PageSize is the platform page size.
	PageSize = 4096
	// SectorSize is the disk sector size.
	SectorSize = disk.SectorSize
	// KblkOffset is where PrepareGuest embeds Kblk in the kernel image.
	KblkOffset = core.KblkOffset
	// HCVoid is the no-op hypercall number.
	HCVoid = xen.HCVoid
	// HCPreSharingOp declares a sharing to Fidelius before granting.
	HCPreSharingOp = xen.HCPreSharingOp
	// HCGrantTableOp manipulates grant tables.
	HCGrantTableOp = xen.HCGrantTableOp
)

// Attest produces a signed platform quote bound to the verifier's nonce,
// covering the hypervisor-code measurement and the integrity-tree root.
func (p *Platform) Attest(nonce []byte) (*Quote, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: attestation requires a protected platform")
	}
	return p.F.Attest(nonce)
}

// AttestVM produces a signed quote bound to one protected VM: the
// platform measurements plus the VM's launch measurement from its
// firmware context. Clients verify it against the measurement of the
// owner image before sending the VM any key material.
func (p *Platform) AttestVM(d *Domain, nonce []byte) (*Quote, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: attestation requires a protected platform")
	}
	return p.F.AttestVM(d, nonce)
}

// AttestationKey returns the platform's attestation public key for
// verifiers.
func (p *Platform) AttestationKey() (*ecdsa.PublicKey, error) {
	return p.X.M.FW.AttestationKey()
}

// VerifyQuote checks a quote against a platform attestation key.
func VerifyQuote(pub *ecdsa.PublicKey, q *Quote, nonce []byte) error {
	return sev.VerifyQuote(pub, q, nonce)
}

// SnapshotVM checkpoints a stopped protected VM into an encrypted bundle
// restorable on this platform.
func (p *Platform) SnapshotVM(d *Domain) (*MigrationBundle, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: snapshots require a protected platform")
	}
	return p.F.SnapshotVM(d)
}

// RestoreVM materialises a snapshot taken on this platform.
func (p *Platform) RestoreVM(b *MigrationBundle) (*Domain, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: snapshots require a protected platform")
	}
	return p.F.RestoreVM(b)
}

// EnableIntegrity puts a protected VM's memory under the Bonsai-Merkle
// integrity engine (the Section 8 extension): physical tampering is then
// detected rather than merely scrambled.
func (p *Platform) EnableIntegrity(d *Domain) error {
	if p.F == nil {
		return fmt.Errorf("fidelius: integrity requires a protected platform")
	}
	return p.F.EnableIntegrity(d)
}

// PrepareGEKGuest builds a portable encrypted kernel image under a
// customized key (the Section 8 extension); BindGEKGuest authorises one
// platform at deployment time; LaunchVMFromGEK boots it.
func PrepareGEKGuest(owner *Owner, kernel []byte) (*GEKImage, GEK, error) {
	return core.PrepareGEKGuest(owner, kernel)
}

// BindGEKGuest wraps a portable image's key for one platform.
func BindGEKGuest(owner *Owner, platformKey *ecdh.PublicKey, img *GEKImage, gek GEK) (*GEKBundle, error) {
	return core.BindGEKGuest(owner, platformKey, img, gek)
}

// LaunchVMFromGEK boots a protected VM from a portable GEK image.
func (p *Platform) LaunchVMFromGEK(name string, memPages int, b *GEKBundle) (*Domain, error) {
	if p.F == nil {
		return nil, fmt.Errorf("fidelius: LaunchVMFromGEK requires a protected platform")
	}
	return p.F.LaunchVMFromGEK(name, memPages, b)
}

// KernelBase returns the guest frame where a protected VM's kernel was
// loaded.
func (p *Platform) KernelBase(d *Domain, b *GuestBundle) uint64 {
	if p.F == nil {
		return 0
	}
	return p.F.KernelBase(d, b)
}
