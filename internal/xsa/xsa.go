// Package xsa reproduces the paper's quantitative vulnerability analysis
// (Section 6.2): a corpus of 235 Xen Security Advisories classified by
// affected component and vulnerability class, and the analysis of which
// ones Fidelius thwarts.
//
// The paper reports: of 235 XSAs, 177 concern the hypervisor (the rest are
// QEMU); Fidelius thwarts the 31 privilege-escalation (17.5%) and 22
// information-leakage (12.4%) advisories, 14 (7.9%) are flaws inside the
// guest, and the remainder are denial-of-service, which is outside the
// threat model. The corpus here is synthetic — advisory texts are not
// redistributed — but its ID range and class counts match the paper
// exactly, so the analysis reproduces Table-level numbers.
package xsa

import (
	"fmt"
	"strings"
)

// Component is the part of the stack an advisory affects.
type Component int

// Components.
const (
	Hypervisor Component = iota
	QEMU
)

func (c Component) String() string {
	if c == QEMU {
		return "qemu"
	}
	return "hypervisor"
}

// Class is the vulnerability class.
type Class int

// Vulnerability classes.
const (
	PrivilegeEscalation Class = iota
	InfoLeak
	GuestInternal
	DoS
)

func (c Class) String() string {
	switch c {
	case PrivilegeEscalation:
		return "privilege escalation"
	case InfoLeak:
		return "information leakage"
	case GuestInternal:
		return "guest-internal flaw"
	case DoS:
		return "denial of service"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Advisory is one Xen Security Advisory.
type Advisory struct {
	ID        int
	Component Component
	Class     Class
	// Mechanism names the Fidelius defence that thwarts the advisory
	// (empty if not thwarted).
	Mechanism string
}

// Thwarted reports whether Fidelius blocks exploitation of the advisory:
// hypervisor-component privilege escalations and information leaks.
func (a Advisory) Thwarted() bool {
	return a.Component == Hypervisor &&
		(a.Class == PrivilegeEscalation || a.Class == InfoLeak)
}

// Paper-anchored corpus counts (Section 6.2).
const (
	TotalAdvisories = 235
	HypervisorCount = 177
	QEMUCount       = TotalAdvisories - HypervisorCount // 58
	PrivEscCount    = 31
	InfoLeakCount   = 22
	GuestFlawCount  = 14
	DoSCount        = HypervisorCount - PrivEscCount - InfoLeakCount - GuestFlawCount // 110
)

// mechanisms cycles through the Fidelius defences credited for thwarted
// advisories.
var privEscMechanisms = []string{
	"non-bypassable write protection of page-table-pages (§4.1.1)",
	"PIT policy on NPT updates (§5.2)",
	"privileged instruction monopolisation and checking loops (§4.1.2)",
	"GIT policy on grant-table updates (§5.2)",
	"write-forbidding policy on hypervisor code pages (§5.3)",
}

var infoLeakMechanisms = []string{
	"VMCB and register shadowing with exit-reason masking (§4.2.1)",
	"guest pages unmapped from the hypervisor (§4.3.4)",
	"SEV memory encryption with per-VM keys (§2.1)",
	"para-virtualized I/O encryption (§4.3.5)",
}

// Corpus returns the 235-advisory corpus. The assignment of classes to ID
// positions is deterministic: classes are interleaved through the ID space
// so subsets remain representative.
func Corpus() []Advisory {
	var out []Advisory
	// Fill a class schedule: the hypervisor advisories first (by class
	// quota), then QEMU, then interleave deterministically by striding.
	var schedule []Advisory
	for i := 0; i < PrivEscCount; i++ {
		schedule = append(schedule, Advisory{
			Component: Hypervisor, Class: PrivilegeEscalation,
			Mechanism: privEscMechanisms[i%len(privEscMechanisms)],
		})
	}
	for i := 0; i < InfoLeakCount; i++ {
		schedule = append(schedule, Advisory{
			Component: Hypervisor, Class: InfoLeak,
			Mechanism: infoLeakMechanisms[i%len(infoLeakMechanisms)],
		})
	}
	for i := 0; i < GuestFlawCount; i++ {
		schedule = append(schedule, Advisory{Component: Hypervisor, Class: GuestInternal})
	}
	for i := 0; i < DoSCount; i++ {
		schedule = append(schedule, Advisory{Component: Hypervisor, Class: DoS})
	}
	for i := 0; i < QEMUCount; i++ {
		schedule = append(schedule, Advisory{Component: QEMU, Class: DoS})
	}
	// Deterministic interleave: stride through the schedule with a step
	// coprime to 235 so IDs of each class spread across the range.
	const stride = 89 // coprime to 235
	perm := make([]int, TotalAdvisories)
	pos := 0
	for i := range perm {
		perm[i] = pos
		pos = (pos + stride) % TotalAdvisories
	}
	out = make([]Advisory, TotalAdvisories)
	for i, p := range perm {
		a := schedule[i]
		a.ID = p + 1
		out[p] = a
	}
	return out
}

// Report is the outcome of analysing a corpus.
type Report struct {
	Total            int
	Hypervisor       int
	QEMU             int
	ThwartedPrivEsc  int
	ThwartedInfoLeak int
	GuestFlaws       int
	DoS              int
}

// Analyze classifies a corpus the way Section 6.2 does.
func Analyze(advs []Advisory) Report {
	var r Report
	for _, a := range advs {
		r.Total++
		if a.Component == QEMU {
			r.QEMU++
			continue
		}
		r.Hypervisor++
		switch a.Class {
		case PrivilegeEscalation:
			r.ThwartedPrivEsc++
		case InfoLeak:
			r.ThwartedInfoLeak++
		case GuestInternal:
			r.GuestFlaws++
		case DoS:
			r.DoS++
		}
	}
	return r
}

// Thwarted reports the total advisories Fidelius blocks.
func (r Report) Thwarted() int { return r.ThwartedPrivEsc + r.ThwartedInfoLeak }

// Pct formats n as a percentage of the hypervisor-relevant advisories.
func (r Report) Pct(n int) float64 {
	if r.Hypervisor == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Hypervisor)
}

// String renders the Section 6.2 analysis.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XSA quantitative analysis (paper §6.2)\n")
	fmt.Fprintf(&b, "  total advisories:        %d\n", r.Total)
	fmt.Fprintf(&b, "  hypervisor-related:      %d (QEMU: %d, out of scope)\n", r.Hypervisor, r.QEMU)
	fmt.Fprintf(&b, "  thwarted priv. esc.:     %d (%.1f%%)\n", r.ThwartedPrivEsc, r.Pct(r.ThwartedPrivEsc))
	fmt.Fprintf(&b, "  thwarted info leak:      %d (%.1f%%)\n", r.ThwartedInfoLeak, r.Pct(r.ThwartedInfoLeak))
	fmt.Fprintf(&b, "  guest-internal flaws:    %d (%.1f%%)\n", r.GuestFlaws, r.Pct(r.GuestFlaws))
	fmt.Fprintf(&b, "  DoS (out of scope):      %d\n", r.DoS)
	return b.String()
}
