package sev

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"fidelius/internal/cycles"
)

// Remote attestation: the paper's system initialisation "leverages
// existing hardware support to issue a measurement on [Fidelius's]
// integrity, which can be used in remote attestation to verify its
// validity" (Section 4.3.1). The firmware holds an attestation signing
// key (the PSP's endorsement identity); quotes bind a caller nonce, the
// hypervisor-code measurement and — when the Section 8 integrity engine
// runs — the current Merkle root.
type attestKey struct {
	priv *ecdsa.PrivateKey
}

// Quote is a signed attestation statement. VMMeasurement is zero on
// platform quotes; guest-bound quotes (AttestGuest) fill it with the
// launch measurement held in the guest's firmware context, binding the
// statement to one specific VM image.
type Quote struct {
	Nonce         []byte
	HVMeasurement [32]byte
	IntegrityRoot [32]byte
	VMMeasurement [32]byte
	Sig           []byte // ASN.1 ECDSA signature over the digest
}

// digest folds the quote fields into the signed hash.
func (q *Quote) digest() [32]byte {
	h := sha256.New()
	h.Write([]byte("fidelius-quote-v1"))
	h.Write(q.Nonce)
	h.Write(q.HVMeasurement[:])
	h.Write(q.IntegrityRoot[:])
	h.Write(q.VMMeasurement[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ErrNoAttestKey reports attestation before platform initialisation.
var ErrNoAttestKey = errors.New("sev: attestation key not provisioned")

func (f *Firmware) attestPriv() (*ecdsa.PrivateKey, error) {
	if !f.initialized {
		return nil, ErrNoAttestKey
	}
	if f.attest == nil {
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, err
		}
		f.attest = &attestKey{priv: priv}
	}
	return f.attest.priv, nil
}

// AttestationKey returns the platform's attestation public key, which a
// remote verifier obtains out of band (manufacturer certificate chain).
func (f *Firmware) AttestationKey() (*ecdsa.PublicKey, error) {
	priv, err := f.attestPriv()
	if err != nil {
		return nil, err
	}
	return &priv.PublicKey, nil
}

// sign completes a quote with the platform's attestation signature.
func (f *Firmware) sign(q *Quote) error {
	priv, err := f.attestPriv()
	if err != nil {
		return err
	}
	d := q.digest()
	sig, err := ecdsa.SignASN1(rand.Reader, priv, d[:])
	if err != nil {
		return err
	}
	q.Sig = sig
	return nil
}

// Attest signs a quote over the supplied measurements. Like all guest
// context commands it honours the authorization guard: once Fidelius owns
// the SEV interface, the hypervisor cannot mint quotes.
func (f *Firmware) Attest(nonce []byte, hvMeasurement, integrityRoot [32]byte) (*Quote, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	q := &Quote{
		Nonce:         append([]byte{}, nonce...),
		HVMeasurement: hvMeasurement,
		IntegrityRoot: integrityRoot,
	}
	if err := f.sign(q); err != nil {
		return nil, err
	}
	if f.auditing() {
		f.audit("attest-quote", 0,
			fmt.Sprintf("quote issued: hv measurement %x.., integrity root %x..",
				hvMeasurement[:4], integrityRoot[:4]))
	}
	return q, nil
}

// AttestGuest signs a quote additionally bound to one guest: the
// VMMeasurement field carries the launch measurement accumulated in the
// guest's firmware context, so a remote client can check the running VM
// was built from exactly the image it expects before provisioning
// secrets ("Insecure Until Proven Updated" is the attack this blocks —
// verify first, then send keys). The context must be past its launch or
// receive protocol: a running guest retains the measurement RECEIVE_FINISH
// verified; contexts mid-transport have had it scrubbed or not yet folded.
func (f *Firmware) AttestGuest(h Handle, nonce []byte, hvMeasurement, integrityRoot [32]byte) (*Quote, error) {
	c, err := f.ctx(h)
	if err != nil {
		return nil, err
	}
	if c.state != StateRunning {
		return nil, fmt.Errorf("%w: attest_guest in %v", ErrBadState, c.state)
	}
	q := &Quote{
		Nonce:         append([]byte{}, nonce...),
		HVMeasurement: hvMeasurement,
		IntegrityRoot: integrityRoot,
		VMMeasurement: [32]byte(c.measure),
	}
	if err := f.sign(q); err != nil {
		return nil, err
	}
	f.charge(cycles.SEVCommand)
	f.command("attest-guest", h)
	if f.auditing() {
		f.audit("attest-quote", 0,
			fmt.Sprintf("guest quote issued: handle %d, vm measurement %x..",
				uint32(h), c.measure[:4]))
	}
	return q, nil
}

// VerifyQuote checks a quote against a platform's attestation key and the
// verifier's nonce.
func VerifyQuote(pub *ecdsa.PublicKey, q *Quote, nonce []byte) error {
	if q == nil {
		return errors.New("sev: nil quote")
	}
	if string(q.Nonce) != string(nonce) {
		return fmt.Errorf("sev: quote nonce mismatch")
	}
	d := q.digest()
	if !ecdsa.VerifyASN1(pub, d[:], q.Sig) {
		return errors.New("sev: quote signature invalid")
	}
	return nil
}
