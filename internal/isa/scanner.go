package isa

// Finding is one privileged opcode byte located by the binary scanner.
type Finding struct {
	Offset int
	Op     Op
	// Aligned reports whether the byte also sits on an instruction
	// boundary of the straight-line disassembly from offset 0. Unaligned
	// findings are the gadgets a control-flow-hijacking attacker could
	// jump into mid-instruction (Section 4.1.2).
	Aligned bool
}

// ScanPrivileged scans a code region for privileged opcode bytes at every
// byte offset, aligned to instruction boundaries or not. This is the
// paper's binary scanner: Fidelius uses it at initialisation to prove that
// each privileged instruction is monopolised — i.e. occurs nowhere in the
// hypervisor's code region except the single sanctioned copy inside
// Fidelius's own gates.
func ScanPrivileged(code []byte) []Finding {
	boundaries := make(map[int]bool)
	for off := 0; off < len(code); {
		boundaries[off] = true
		_, n, err := Decode(code[off:])
		if err != nil {
			// Undecodable bytes advance one at a time; every byte
			// of an undecodable region is a potential boundary.
			off++
			continue
		}
		off += n
	}
	var out []Finding
	for i, b := range code {
		if Privileged(Op(b)) {
			out = append(out, Finding{Offset: i, Op: Op(b), Aligned: boundaries[i]})
		}
	}
	return out
}

// Monopolised reports whether the code region contains privileged opcode
// bytes only at the allowed offsets. allowed maps offset to the expected
// opcode. Any extra or mismatched finding fails the check.
func Monopolised(code []byte, allowed map[int]Op) bool {
	for _, f := range ScanPrivileged(code) {
		want, ok := allowed[f.Offset]
		if !ok || want != f.Op {
			return false
		}
	}
	return true
}
