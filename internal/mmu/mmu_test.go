package mmu

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"fidelius/internal/hw"
)

// bumpAlloc hands out frames sequentially starting at a base.
type bumpAlloc struct {
	next hw.PFN
	max  hw.PFN
}

func (a *bumpAlloc) AllocFrame() (hw.PFN, error) {
	if a.next >= a.max {
		return 0, errors.New("out of frames")
	}
	f := a.next
	a.next++
	return f, nil
}

func newTestSpace(t *testing.T, pages int) (*Space, *bumpAlloc, *hw.Controller) {
	t.Helper()
	ctl := hw.NewController(hw.NewMemory(pages), 256)
	alloc := &bumpAlloc{next: 1, max: hw.PFN(pages)}
	root, err := alloc.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	s := &Space{Ctl: ctl, Root: root}
	if err := s.zeroFrame(root); err != nil {
		t.Fatal(err)
	}
	return s, alloc, ctl
}

func TestMapTranslateRoundTrip(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	target, _ := alloc.AllocFrame()
	va := uint64(0x40002000)
	if err := s.Map(alloc, va, MakePTE(target, FlagP|FlagW)); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Translate(va, Read, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.HPA != target.Addr() {
		t.Fatalf("hpa %#x want %#x", tr.HPA, target.Addr())
	}
	if _, err := s.Translate(va+0x1000, Read, true, false); err == nil {
		t.Fatal("adjacent page should be unmapped")
	}
}

func TestWPSemantics(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	target, _ := alloc.AllocFrame()
	va := uint64(0x1000)
	if err := s.Map(alloc, va, MakePTE(target, FlagP)); err != nil { // read-only
		t.Fatal(err)
	}
	// Supervisor write with WP set: fault.
	if _, err := s.Translate(va, Write, true, false); err == nil {
		t.Fatal("expected write-protect fault with WP=1")
	} else {
		var pf *PageFault
		if !errors.As(err, &pf) || pf.Reason != WriteProtected {
			t.Fatalf("unexpected fault %v", err)
		}
	}
	// Supervisor write with WP clear: allowed — the type 1 gate mechanism.
	if _, err := s.Translate(va, Write, false, false); err != nil {
		t.Fatalf("WP=0 supervisor write should pass: %v", err)
	}
	// User write ignores WP relaxation.
	if _, err := s.Translate(va, Write, false, true); err == nil {
		t.Fatal("user write to read-only page must fault regardless of WP")
	}
}

func TestNXAndUserChecks(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	target, _ := alloc.AllocFrame()
	if err := s.Map(alloc, 0x1000, MakePTE(target, FlagP|FlagW|FlagNX)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(0x1000, Execute, true, false); err == nil {
		t.Fatal("expected NX fault")
	}
	target2, _ := alloc.AllocFrame()
	if err := s.Map(alloc, 0x2000, MakePTE(target2, FlagP)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(0x2000, Read, true, true); err == nil {
		t.Fatal("expected user/supervisor fault")
	}
}

func TestNonCanonical(t *testing.T) {
	s, _, _ := newTestSpace(t, 8)
	if _, err := s.Translate(1<<40, Read, true, false); err == nil {
		t.Fatal("expected non-canonical fault")
	}
}

func TestUnmapAndSetLeaf(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	target, _ := alloc.AllocFrame()
	va := uint64(0x5000)
	if err := s.Map(alloc, va, MakePTE(target, FlagP|FlagW)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLeaf(va, MakePTE(target, FlagP)); err != nil {
		t.Fatal(err)
	}
	leaf, err := s.Leaf(va)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Writable() {
		t.Fatal("SetLeaf failed to clear W")
	}
	if err := s.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(va, Read, true, false); err == nil {
		t.Fatal("still mapped after Unmap")
	}
	// Unmapping an unmapped address is not an error.
	if err := s.Unmap(0x77000); err != nil {
		t.Fatal(err)
	}
}

func TestTablePages(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 128)
	target, _ := alloc.AllocFrame()
	// Two VAs far apart force distinct intermediate tables.
	if err := s.Map(alloc, 0x1000, MakePTE(target, FlagP)); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(alloc, 0x10_0000_0000, MakePTE(target, FlagP)); err != nil {
		t.Fatal(err)
	}
	pages, err := s.TablePages()
	if err != nil {
		t.Fatal(err)
	}
	// root + 2×L1 + 2×L0 = 5
	if len(pages) != 5 {
		t.Fatalf("got %d table pages, want 5: %v", len(pages), pages)
	}
	if pages[0] != s.Root {
		t.Fatal("root must come first")
	}
}

func TestLeafSlot(t *testing.T) {
	s, alloc, ctl := newTestSpace(t, 64)
	target, _ := alloc.AllocFrame()
	va := uint64(0x3000)
	if err := s.Map(alloc, va, MakePTE(target, FlagP|FlagW)); err != nil {
		t.Fatal(err)
	}
	slot, err := s.LeafSlot(va)
	if err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	if err := ctl.Read(hw.Access{PA: slot}, b[:]); err != nil {
		t.Fatal(err)
	}
	got := PTE(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
	if got.PFN() != target {
		t.Fatalf("slot holds %v, want pfn %#x", got, uint64(target))
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB()
	tr := Translation{HPA: 0x1000}
	tlb.Insert(1, 0x2000, Read, tr)
	tlb.Insert(2, 0x2000, Read, Translation{HPA: 0x3000})
	if got, ok := tlb.Lookup(1, 0x2abc, Read); !ok || got.HPA != 0x1000 {
		t.Fatal("ASID-1 lookup failed or collided")
	}
	tlb.FlushEntry(1, 0x2000)
	if _, ok := tlb.Lookup(1, 0x2000, Read); ok {
		t.Fatal("entry survived FlushEntry")
	}
	if _, ok := tlb.Lookup(2, 0x2000, Read); !ok {
		t.Fatal("FlushEntry flushed the wrong ASID")
	}
	tlb.Insert(2, 0x9000, Write, tr)
	tlb.FlushASID(2)
	if tlb.Len() != 0 {
		t.Fatalf("FlushASID left %d entries", tlb.Len())
	}
	tlb.Insert(3, 0x1000, Read, tr)
	tlb.FlushAll()
	if tlb.Len() != 0 || tlb.FullFlushes != 1 {
		t.Fatal("FlushAll bookkeeping wrong")
	}
}

func buildNested(t *testing.T) (*Nested, *bumpAlloc, *hw.Controller, hw.PFN) {
	t.Helper()
	ctl := hw.NewController(hw.NewMemory(256), 0)
	var key hw.Key
	key[0] = 42
	if err := ctl.Eng.Install(7, key); err != nil {
		t.Fatal(err)
	}
	alloc := &bumpAlloc{next: 1, max: 256}

	// NPT: GPA -> HPA, identity-with-offset (gpa n -> hpa n+64 pages).
	nptRoot, _ := alloc.AllocFrame()
	npt := &Space{Ctl: ctl, Root: nptRoot}
	if err := npt.zeroFrame(nptRoot); err != nil {
		t.Fatal(err)
	}
	for gfn := hw.PFN(0); gfn < 32; gfn++ {
		if err := npt.Map(alloc, uint64(gfn.Addr()), MakePTE(gfn+64, FlagP|FlagW)); err != nil {
			t.Fatal(err)
		}
	}

	n := &Nested{Ctl: ctl, NPT: npt, ASID: 7, GuestPTEncrypted: true}

	// Guest page table lives at GPA page 0 (=HPA page 64), encrypted.
	// Build it by writing through the controller with the guest key.
	gRoot := uint64(0) // GPA of guest root table
	n.GuestRoot = gRoot
	zero := make([]byte, hw.PageSize)
	for _, gfn := range []hw.PFN{0, 1, 2} {
		if err := ctl.Write(hw.Access{PA: (gfn + 64).Addr(), Encrypted: true, ASID: 7}, zero); err != nil {
			t.Fatal(err)
		}
	}
	// Map GVA 0x4000 -> GPA page 5, encrypted (C-bit in guest PTE).
	writeGuestPTE := func(tableGFN hw.PFN, idx int, pte PTE) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(pte) >> (8 * i))
		}
		pa := (tableGFN + 64).Addr() + hw.PhysAddr(idx*8)
		if err := ctl.Write(hw.Access{PA: pa, Encrypted: true, ASID: 7}, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	gva := uint64(0x4000)
	writeGuestPTE(0, Index(gva, 2), MakePTE(1, FlagP|FlagW|FlagU))
	writeGuestPTE(1, Index(gva, 1), MakePTE(2, FlagP|FlagW|FlagU))
	writeGuestPTE(2, Index(gva, 0), MakePTE(5, FlagP|FlagW|FlagC))
	// And GVA 0x5000 -> GPA page 6, *without* guest C-bit.
	writeGuestPTE(2, Index(0x5000, 0), MakePTE(6, FlagP|FlagW))
	return n, alloc, ctl, 64
}

func TestNestedTranslate(t *testing.T) {
	n, _, _, off := buildNested(t)
	tr, err := n.Translate(0x4000, Write, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.GPA != 5*hw.PageSize {
		t.Fatalf("gpa %#x want %#x", tr.GPA, 5*hw.PageSize)
	}
	if tr.HPA != hw.PFN(5+int(off)).Addr() {
		t.Fatalf("hpa %#x want %#x", tr.HPA, hw.PFN(5+int(off)).Addr())
	}
	if !tr.Encrypted || tr.ASID != 7 {
		t.Fatalf("C-bit in guest PTE must select the guest key: %+v", tr)
	}
}

func TestNestedCBitPriority(t *testing.T) {
	n, _, _, _ := buildNested(t)
	// Without NPT C-bit, a guest-plaintext page is plaintext.
	tr, err := n.Translate(0x5000, Read, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Encrypted {
		t.Fatalf("no C-bit anywhere, yet encrypted: %+v", tr)
	}
	// Set the C-bit in the NPT entry for GPA page 6 (the SME simulation
	// trick from Section 7.1): now the host key applies.
	leaf, err := n.NPT.Leaf(6 * hw.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.NPT.SetLeaf(6*hw.PageSize, leaf.WithFlags(FlagC)); err != nil {
		t.Fatal(err)
	}
	tr, err = n.Translate(0x5000, Read, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Encrypted || tr.ASID != hw.HostASID {
		t.Fatalf("NPT C-bit must select host key: %+v", tr)
	}
	// Guest C-bit still takes priority over NPT C-bit.
	tr, err = n.Translate(0x4000, Read, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ASID != 7 {
		t.Fatalf("guest C-bit must take priority: %+v", tr)
	}
}

func TestNestedFaultKinds(t *testing.T) {
	n, _, _, _ := buildNested(t)
	// Guest-dimension fault: unmapped GVA.
	_, err := n.Translate(0x9000, Read, false)
	var pf *PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("want guest PageFault, got %v", err)
	}
	// NPT-dimension fault: GVA mapped to a GPA beyond the NPT range.
	// GPA page 40 is not mapped in the NPT.
	var b [8]byte
	pte := MakePTE(40, FlagP|FlagW)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(pte) >> (8 * i))
	}
	pa := hw.PFN(2+64).Addr() + hw.PhysAddr(Index(0x6000, 0)*8)
	if err := n.Ctl.Write(hw.Access{PA: pa, Encrypted: true, ASID: 7}, b[:]); err != nil {
		t.Fatal(err)
	}
	_, err = n.Translate(0x6000, Read, false)
	var nv *NPTViolation
	if !errors.As(err, &nv) {
		t.Fatalf("want NPTViolation, got %v", err)
	}
	if nv.GPA != 40*hw.PageSize {
		t.Fatalf("violation gpa %#x want %#x", nv.GPA, 40*hw.PageSize)
	}
}

func TestNestedGuestPermissions(t *testing.T) {
	n, _, _, _ := buildNested(t)
	// User access to a supervisor-only page.
	if _, err := n.Translate(0x4000, Read, true); err == nil {
		t.Fatal("guest leaf lacks U on the final level... ")
	}
}

func TestEndToEndEncryptedGuestMemory(t *testing.T) {
	n, _, ctl, _ := buildNested(t)
	tr, err := n.Translate(0x4000, Write, false)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("guest secret visible only with Kvek!")
	if err := ctl.Write(hw.Access{PA: tr.HPA, Encrypted: tr.Encrypted, ASID: tr.ASID}, secret); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, len(secret))
	if err := ctl.Mem.ReadRaw(tr.HPA, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, secret) {
		t.Fatal("guest memory is plaintext in DRAM")
	}
	got := make([]byte, len(secret))
	if err := ctl.Read(hw.Access{PA: tr.HPA, Encrypted: true, ASID: 7}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("guest cannot read its own memory back")
	}
}

func TestPTEBits(t *testing.T) {
	p := MakePTE(0x1234, FlagP|FlagW|FlagC|FlagNX)
	if !p.Present() || !p.Writable() || !p.Encrypted() || !p.NoExec() || p.User() {
		t.Fatalf("bit accessors wrong: %v", p)
	}
	if p.PFN() != 0x1234 {
		t.Fatalf("pfn %#x", uint64(p.PFN()))
	}
	q := p.WithoutFlags(FlagW | FlagNX).WithFlags(FlagU)
	if q.Writable() || q.NoExec() || !q.User() {
		t.Fatalf("flag editing wrong: %v", q)
	}
	if PTE(0).String() != "<not present>" {
		t.Fatal("String for non-present")
	}
}

func TestPropertyPFNRoundTrip(t *testing.T) {
	f := func(pfn uint32, flags uint8) bool {
		var fl Flags
		if flags&1 != 0 {
			fl |= FlagP
		}
		if flags&2 != 0 {
			fl |= FlagW
		}
		if flags&4 != 0 {
			fl |= FlagC
		}
		if flags&8 != 0 {
			fl |= FlagNX
		}
		p := MakePTE(hw.PFN(pfn), fl)
		return p.PFN() == hw.PFN(pfn) &&
			p.Present() == (flags&1 != 0) &&
			p.Writable() == (flags&2 != 0) &&
			p.Encrypted() == (flags&4 != 0) &&
			p.NoExec() == (flags&8 != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIndexDecomposition(t *testing.T) {
	f := func(va uint64) bool {
		va &= 1<<VABits - 1
		recomposed := uint64(Index(va, 2))<<30 | uint64(Index(va, 1))<<21 | uint64(Index(va, 0))<<12 | va&0xfff
		return recomposed == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapOutOfFrames(t *testing.T) {
	s, alloc, _ := newTestSpace(t, 64)
	alloc.max = alloc.next // exhaust
	err := s.Map(alloc, 0x1000, MakePTE(1, FlagP))
	if err == nil {
		t.Fatal("expected allocation failure")
	}
	if want := "allocating"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q should mention %q", err, want)
	}
}
