package mmu

import (
	"sync/atomic"

	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
)

// ShootdownBus broadcasts TLB invalidations to every registered core TLB —
// the software analogue of the INVLPGA IPIs a multi-core hypervisor sends
// so remote cores drop stale translations before a protection-relevant
// unmap takes effect. Cores register their TLB when they come online (the
// boot CPU at machine build, per-domain cores in ScheduleParallel) and
// unregister when they go offline.
//
// Lock order: the bus mutex (lock rank: bus) sits below every hypervisor
// lock and above only the per-TLB leaf mutexes; nothing acquires the bus
// while holding a TLB lock.
type ShootdownBus struct {
	lock   lockrank.Mutex
	tlbs   []*TLB
	bcasts uint64
}

// SetLockInfo ranks the bus lock and wires its contention counter. The
// machine calls it once at build, before any concurrent use.
func (b *ShootdownBus) SetLockInfo(rank lockrank.Rank, waits *atomic.Uint64) {
	if b == nil {
		return
	}
	b.lock.Init(rank, waits)
}

// Register adds a core's TLB to the broadcast set.
func (b *ShootdownBus) Register(t *TLB) {
	if b == nil || t == nil {
		return
	}
	b.lock.Lock()
	b.tlbs = append(b.tlbs, t)
	b.lock.Unlock()
}

// Unregister removes a core's TLB from the broadcast set.
func (b *ShootdownBus) Unregister(t *TLB) {
	if b == nil {
		return
	}
	b.lock.Lock()
	for i, x := range b.tlbs {
		if x == t {
			b.tlbs = append(b.tlbs[:i], b.tlbs[i+1:]...)
			break
		}
	}
	b.lock.Unlock()
}

// FlushEntry invalidates one page of one ASID on every registered core.
func (b *ShootdownBus) FlushEntry(asid hw.ASID, va uint64) {
	if b == nil {
		return
	}
	b.lock.Lock()
	defer b.lock.Unlock()
	b.bcasts++
	for _, t := range b.tlbs {
		t.FlushEntry(asid, va)
	}
}

// FlushASID invalidates every entry of one ASID on every registered core.
func (b *ShootdownBus) FlushASID(asid hw.ASID) {
	if b == nil {
		return
	}
	b.lock.Lock()
	defer b.lock.Unlock()
	b.bcasts++
	for _, t := range b.tlbs {
		t.FlushASID(asid)
	}
}

// FlushAll empties every registered core's TLB.
func (b *ShootdownBus) FlushAll() {
	if b == nil {
		return
	}
	b.lock.Lock()
	defer b.lock.Unlock()
	b.bcasts++
	for _, t := range b.tlbs {
		t.FlushAll()
	}
}

// Cores reports how many TLBs are registered.
func (b *ShootdownBus) Cores() int {
	if b == nil {
		return 0
	}
	b.lock.Lock()
	defer b.lock.Unlock()
	return len(b.tlbs)
}

// Broadcasts reports how many invalidation broadcasts have been sent.
func (b *ShootdownBus) Broadcasts() uint64 {
	if b == nil {
		return 0
	}
	b.lock.Lock()
	defer b.lock.Unlock()
	return b.bcasts
}
