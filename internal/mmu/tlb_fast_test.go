package mmu

import "testing"

// TestTLBLastEntryCoherent exercises the one-entry last-translation cache
// in front of the map: repeated lookups of the same page must hit without
// going stale across Insert, FlushEntry, FlushASID and FlushAll.
func TestTLBLastEntryCoherent(t *testing.T) {
	tlb := NewTLB()
	tr := Translation{HPA: 0x1000}
	tlb.Insert(1, 0x2000, Read, tr)

	// Back-to-back lookups of the same key: both hit, same result.
	for i := 0; i < 3; i++ {
		got, ok := tlb.Lookup(1, 0x2345, Read)
		if !ok || got.HPA != 0x1000 {
			t.Fatalf("lookup %d: ok=%v hpa=%#x", i, ok, got.HPA)
		}
	}
	if tlb.Hits != 3 || tlb.Misses != 0 {
		t.Fatalf("hits=%d misses=%d, want 3/0", tlb.Hits, tlb.Misses)
	}

	// Re-inserting the same page must update what Lookup returns.
	tlb.Insert(1, 0x2000, Read, Translation{HPA: 0x7000})
	if got, _ := tlb.Lookup(1, 0x2000, Read); got.HPA != 0x7000 {
		t.Fatalf("stale last-entry after re-insert: %#x", got.HPA)
	}

	// FlushEntry of the cached page must drop the fast path too.
	tlb.FlushEntry(1, 0x2000)
	if _, ok := tlb.Lookup(1, 0x2000, Read); ok {
		t.Fatal("last-entry survived FlushEntry")
	}

	// FlushASID of the cached ASID must drop it.
	tlb.Insert(2, 0x5000, Write, tr)
	if _, ok := tlb.Lookup(2, 0x5000, Write); !ok {
		t.Fatal("insert+lookup failed")
	}
	tlb.FlushASID(2)
	if _, ok := tlb.Lookup(2, 0x5000, Write); ok {
		t.Fatal("last-entry survived FlushASID")
	}

	// FlushAll must drop it.
	tlb.Insert(3, 0x9000, Execute, tr)
	tlb.FlushAll()
	if _, ok := tlb.Lookup(3, 0x9000, Execute); ok {
		t.Fatal("last-entry survived FlushAll")
	}

	// A different access type for the same page is a distinct key: the
	// fast path must not conflate them.
	tlb.Insert(4, 0xa000, Read, tr)
	if _, ok := tlb.Lookup(4, 0xa000, Write); ok {
		t.Fatal("last-entry conflated access types")
	}
}
