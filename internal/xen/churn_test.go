package xen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/lockrank"
	"fidelius/internal/sev"
)

// TestParallelQuantaContentionFree is the checkable form of the sharding
// claim: 64 eagerly populated domains run concurrently and their quanta
// touch only per-domain state, so the domain-lock and gate-lock
// contention counters must not move at all. Any hot-path acquisition of
// shared machine state would show up here as a non-zero delta. The lock
// rank checker is armed for the duration, so an ordering violation
// panics rather than deadlocking.
func TestParallelQuantaContentionFree(t *testing.T) {
	const (
		nDoms    = 64
		memPages = 8
		workGFN  = 2
		rounds   = 3
	)
	lockrank.SetEnabled(true)
	defer lockrank.SetEnabled(false)
	m, err := NewMachine(Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	var doms []*Domain
	for i := 0; i < nDoms; i++ {
		d, err := x.CreateDomain(DomainConfig{
			Name:     fmt.Sprintf("fleet%d", i),
			MemPages: memPages,
			SEV:      i%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		id := d.ID
		x.StartVCPU(d, func(g *GuestEnv) error {
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				for i := range buf {
					buf[i] = byte(uint64(id)*13 + uint64(r))
				}
				if err := g.Write(workGFN*hw.PageSize, buf); err != nil {
					return err
				}
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
			return nil
		})
	}
	domWaits := m.Waits.Domain.Load()
	gateWaits := m.Waits.Gate.Load()
	if errs := x.ScheduleParallel(doms, 0); len(errs) != 0 {
		t.Fatalf("parallel scheduler errors: %v", errs)
	}
	if delta := m.Waits.Domain.Load() - domWaits; delta != 0 {
		t.Errorf("domain locks contended %d times during disjoint quanta, want 0", delta)
	}
	if delta := m.Waits.Gate.Load() - gateWaits; delta != 0 {
		t.Errorf("gate lock contended %d times during disjoint quanta, want 0", delta)
	}
	for _, d := range doms {
		if x.DomainCycles(d.ID) == 0 {
			t.Errorf("dom %d: no cycles attributed", d.ID)
		}
	}
}

// TestConcurrentGrantAndEventStorm hammers the genuine sharing points
// from 16 concurrent domains: every guest loops grant → map → write
// through the alias → unmap → revoke against its own table (the grant
// bytes and NPT writes all cross the gate lock) and kicks its event
// channel every round (handler-table shard plus gate-locked handler
// invocation). Correctness, not absence of contention, is the assertion
// here: aliased writes must land and every signal must be delivered.
func TestConcurrentGrantAndEventStorm(t *testing.T) {
	const (
		nDoms    = 16
		memPages = 8
		srcGFN   = 3
		rounds   = 5
		port     = 1
	)
	lockrank.SetEnabled(true)
	defer lockrank.SetEnabled(false)
	m, err := NewMachine(Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	var signals atomic.Uint64
	var doms []*Domain
	for i := 0; i < nDoms; i++ {
		d, err := x.CreateDomain(DomainConfig{
			Name:     fmt.Sprintf("storm%d", i),
			MemPages: memPages,
		})
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
		x.Events.Bind(d.ID, port, func() error {
			signals.Add(1)
			return nil
		})
		id := d.ID
		x.StartVCPU(d, func(g *GuestEnv) error {
			dstGFN := uint64(memPages) // alias slot beyond guest memory
			for r := 0; r < rounds; r++ {
				ref, err := g.Hypercall(HCGrantTableOp, GntOpGrant, uint64(id), srcGFN, 0)
				if err != nil {
					return fmt.Errorf("dom %d round %d grant: %w", id, r, err)
				}
				if _, err := g.Hypercall(HCGrantTableOp, GntOpMap, uint64(id), ref, dstGFN); err != nil {
					return fmt.Errorf("dom %d round %d map: %w", id, r, err)
				}
				pat := []byte(fmt.Sprintf("dom%d-round%d", id, r))
				if err := g.Write(dstGFN*hw.PageSize, pat); err != nil {
					return fmt.Errorf("dom %d round %d aliased write: %w", id, r, err)
				}
				got := make([]byte, len(pat))
				if err := g.Read(srcGFN*hw.PageSize, got); err != nil {
					return fmt.Errorf("dom %d round %d readback: %w", id, r, err)
				}
				for i := range pat {
					if got[i] != pat[i] {
						return fmt.Errorf("dom %d round %d: alias write did not land: %q != %q", id, r, got, pat)
					}
				}
				if _, err := g.Hypercall(HCGrantTableOp, GntOpUnmap, dstGFN); err != nil {
					return fmt.Errorf("dom %d round %d unmap: %w", id, r, err)
				}
				if _, err := g.Hypercall(HCGrantTableOp, GntOpRevoke, ref); err != nil {
					return fmt.Errorf("dom %d round %d revoke: %w", id, r, err)
				}
				if _, err := g.Hypercall(HCEventChannelOp, EvtOpSend, port); err != nil {
					return fmt.Errorf("dom %d round %d signal: %w", id, r, err)
				}
			}
			return nil
		})
	}
	if errs := x.ScheduleParallel(doms, 0); len(errs) != 0 {
		t.Fatalf("parallel scheduler errors: %v", errs)
	}
	if got := signals.Load(); got != nDoms*rounds {
		t.Errorf("event storm delivered %d signals, want %d", got, nDoms*rounds)
	}
}

// TestConcurrentLifecycleChurn is the fleet-scale boot storm: eight
// workers each run 40 full domain lifetimes (create with a live SEV
// context, run a quantum, destroy) — 320 lifetimes against a pool of
// 254 ASIDs, so the churn must cross the hardware limit and recycle
// ASIDs behind a batch DF_FLUSH. The pool never hands out an ASID above
// the limit, the allocator ends where it started (no frame leaks,
// start-info page included), and every live resource drains to zero.
func TestConcurrentLifecycleChurn(t *testing.T) {
	const (
		workers   = 8
		lifetimes = 40
	)
	lockrank.SetEnabled(true)
	defer lockrank.SetEnabled(false)
	x := newXen(t)
	freeBefore := x.M.Alloc.FreeCount()
	var maxASID atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for l := 0; l < lifetimes; l++ {
				d, err := x.CreateDomain(DomainConfig{
					Name:     fmt.Sprintf("churn%d-%d", w, l),
					MemPages: 8,
					SEV:      true,
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d lifetime %d create: %w", w, l, err)
					return
				}
				for {
					cur := maxASID.Load()
					if uint64(d.ASID) <= cur || maxASID.CompareAndSwap(cur, uint64(d.ASID)) {
						break
					}
				}
				x.StartVCPU(d, func(g *GuestEnv) error {
					if err := g.Write(2*hw.PageSize, []byte("alive")); err != nil {
						return err
					}
					_, err := g.Hypercall(HCVoid)
					return err
				})
				if serrs := x.ScheduleParallel([]*Domain{d}, 1); len(serrs) != 0 {
					errs <- fmt.Errorf("worker %d lifetime %d run: %v", w, l, serrs)
					return
				}
				if err := x.DestroyDomain(d, false); err != nil {
					errs <- fmt.Errorf("worker %d lifetime %d destroy: %w", w, l, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := maxASID.Load(); got > sev.DefaultASIDLimit {
		t.Errorf("pool handed out ASID %d beyond the hardware limit %d", got, sev.DefaultASIDLimit)
	}
	if x.ASIDs.Flushes() == 0 {
		t.Error("320 lifetimes over 254 ASIDs never forced a DF_FLUSH recycle")
	}
	if x.ASIDs.Recycles() == 0 {
		t.Error("no allocation was ever served from a recycled ASID")
	}
	if live := x.ASIDs.Live(); live != 0 {
		t.Errorf("%d ASIDs still live after every domain was destroyed", live)
	}
	if freeAfter := x.M.Alloc.FreeCount(); freeAfter != freeBefore {
		t.Errorf("allocator leaked %d frames across churn (free %d -> %d)",
			freeBefore-freeAfter, freeBefore, freeAfter)
	}
}

// TestASIDReuseRefusedWithoutFlush pins the CROSSLINE defense at the
// firmware boundary: activating a fresh guest context on an ASID that
// was retired without an intervening DF_FLUSH must fail with
// ErrASIDDirty and leave an "asid-reuse" record in the audit ledger;
// after the flush the same activation succeeds. The hypervisor's pool
// never takes this path (it flushes before recycling) — this is the
// backstop for a hypervisor that tries.
func TestASIDReuseRefusedWithoutFlush(t *testing.T) {
	x := newXen(t)
	led := x.M.Ctl.Telem.StartLedger()
	const asid = hw.ASID(7)

	h1, err := x.M.FW.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.M.FW.LaunchFinish(h1); err != nil {
		t.Fatal(err)
	}
	if err := x.M.FW.Activate(h1, asid); err != nil {
		t.Fatal(err)
	}
	if err := x.M.FW.Deactivate(h1); err != nil {
		t.Fatal(err)
	}

	// Relaunch into the retired-but-unflushed ASID.
	h2, err := x.M.FW.LaunchStart(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.M.FW.LaunchFinish(h2); err != nil {
		t.Fatal(err)
	}
	err = x.M.FW.Activate(h2, asid)
	if !errors.Is(err, sev.ErrASIDDirty) {
		t.Fatalf("activate on dirty asid: got %v, want ErrASIDDirty", err)
	}
	found := false
	for _, r := range led.Records() {
		if r.Class == "asid-reuse" {
			found = true
		}
	}
	if !found {
		t.Error("dirty-ASID activation left no asid-reuse audit record")
	}

	// DF_FLUSH scrubs the fabric; the same activation now succeeds.
	if err := x.M.FW.DFFlush(); err != nil {
		t.Fatal(err)
	}
	if err := x.M.FW.Activate(h2, asid); err != nil {
		t.Fatalf("activate after DF_FLUSH: %v", err)
	}
}
