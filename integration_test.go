package fidelius

// Whole-system integration stress: many protected VMs with mixed
// workloads (compute, disk I/O on both protection paths, sharing,
// console) scheduled round-robin on one platform, while the hypervisor
// interleaves attack attempts between quanta. At the end: every guest's
// data is intact, no attack succeeded, and the platform's accounting is
// consistent.

import (
	"bytes"
	"fmt"
	"testing"

	"fidelius/internal/kv"
	"fidelius/internal/mmu"
	"fidelius/internal/xen"
)

func TestIntegrationManyVMsUnderAttack(t *testing.T) {
	plat, err := NewPlatform(Config{Protected: true, MemPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}

	const nVMs = 4
	type vmState struct {
		d       *Domain
		backend *BlockBackend
		dk      *Disk
		secret  []byte
	}
	var vms []*vmState
	for i := 0; i < nVMs; i++ {
		kernel := bytes.Repeat([]byte(fmt.Sprintf("KERNEL-%02d-16byte", i)), 256)
		bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := plat.LaunchVM(fmt.Sprintf("vm%d", i), 64, bundle)
		if err != nil {
			t.Fatal(err)
		}
		if err := plat.SetupIOSession(d); err != nil {
			t.Fatal(err)
		}
		dk := NewDisk(128)
		backend, err := plat.AttachDisk(d, dk, 2, uint32(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		backend.SnoopEnabled = true
		vms = append(vms, &vmState{
			d: d, backend: backend, dk: dk,
			secret: bytes.Repeat([]byte(fmt.Sprintf("SECRET-%02d-16byte", i)), 32),
		})
	}

	// Guest kernels: compute, write memory, push the secret through the
	// SEV I/O path, read it back, print to the console.
	var doms []*Domain
	for i, vm := range vms {
		i, vm := i, vm
		doms = append(doms, vm.d)
		plat.StartVCPU(vm.d, func(g *GuestEnv) error {
			if err := g.Write(0x8000, vm.secret); err != nil {
				return err
			}
			bf, err := NewBlockFrontend(g)
			if err != nil {
				return err
			}
			front := NewSEVFront(g, bf)
			if err := front.WriteSectors(uint64(4+i), vm.secret); err != nil {
				return err
			}
			got := make([]byte, len(vm.secret))
			if err := front.ReadSectors(uint64(4+i), got); err != nil {
				return err
			}
			if !bytes.Equal(got, vm.secret) {
				return fmt.Errorf("vm%d: disk round trip mismatch", i)
			}
			// Several scheduling quanta of compute + exits.
			for r := 0; r < 6; r++ {
				g.Charge(10_000)
				if _, err := g.Hypercall(HCVoid); err != nil {
					return err
				}
			}
			return g.ConsolePrint(fmt.Sprintf("vm%d ok", i))
		})
	}

	// Interleave: one scheduler quantum per domain, then one attack
	// attempt, repeated until all guests finish.
	attackRound := 0
	pending := append([]*Domain{}, doms...)
	for len(pending) > 0 {
		next := pending[:0]
		for _, d := range pending {
			done, err := plat.X.RunOnce(d)
			if err != nil {
				t.Fatalf("domain %d: %v", d.ID, err)
			}
			if !done {
				next = append(next, d)
			}
		}
		pending = next

		// The hypervisor misbehaves between quanta.
		victim := vms[attackRound%nVMs]
		switch attackRound % 3 {
		case 0: // direct read of a guest page
			pfn, _ := victim.d.GPAFrame(8)
			if err := plat.X.M.CPU.ReadVA(uint64(pfn.Addr()), make([]byte, 8)); err == nil {
				t.Fatal("mid-run direct read succeeded")
			}
		case 1: // NPT remap attempt through the gate
			slot, err := plat.X.NPTLeafSlot(victim.d, 9<<12)
			if err == nil {
				frame, _ := victim.d.GPAFrame(10)
				if werr := plat.X.Interpose.WritePTE(victim.d, slot, mmu.MakePTE(frame, mmu.FlagP|mmu.FlagW|mmu.FlagU)); werr == nil {
					t.Fatal("mid-run replay remap succeeded")
				}
			}
		case 2: // grant forgery
			slot, _ := victim.d.Grant.SlotPA(0)
			forged := xen.GrantEntry{Flags: xen.GrantInUse, Grantee: 0, GFN: 9}
			var buf [xen.GrantEntrySize]byte
			forged.Marshal(buf[:])
			if werr := plat.X.M.CPU.WriteVA(uint64(slot), buf[:]); werr == nil {
				t.Fatal("mid-run grant forgery succeeded")
			}
		}
		attackRound++
	}

	// Aftermath: every guest's data intact and private.
	dump := make([]byte, plat.X.M.Ctl.Mem.Size())
	plat.X.M.Ctl.Mem.ReadRaw(0, dump)
	for i, vm := range vms {
		if got := plat.X.ConsoleLog(vm.d.ID); string(got) != fmt.Sprintf("vm%d ok", i) {
			t.Errorf("vm%d console: %q", i, got)
		}
		if bytes.Contains(vm.backend.Snoop, vm.secret[:16]) {
			t.Errorf("vm%d: secret leaked to the backend", i)
		}
		if bytes.Contains(vm.dk.Snapshot(), vm.secret[:16]) {
			t.Errorf("vm%d: secret leaked to the disk", i)
		}
		if bytes.Contains(dump, vm.secret[:16]) {
			t.Errorf("vm%d: secret visible in a physical dump", i)
		}
	}
	// The mid-run attacks were logged.
	if len(plat.Violations()) == 0 {
		t.Error("no violations logged despite interleaved attacks")
	}
	// Clean teardown of everything.
	for _, vm := range vms {
		if err := plat.Shutdown(vm.d); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
}

func TestIntegrationMixedProtectedAndPlainVMs(t *testing.T) {
	// Protected and unprotected guests coexist; protection is per-VM.
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := NewOwner()
	bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := plat.LaunchVM("prot", 32, bundle)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plat.CreateVM("plain", 32, false)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("protected-only-secret!!!")
	public := []byte("plain-guest-data")
	plat.StartVCPU(prot, func(g *GuestEnv) error { return g.Write(0x4000, secret) })
	plat.StartVCPU(plain, func(g *GuestEnv) error { return g.Write(0x4000, public) })
	if errs := plat.Schedule([]*Domain{prot, plain}); len(errs) != 0 {
		t.Fatalf("schedule: %v", errs)
	}
	// DRAM shows the plain guest's data but not the protected one's.
	pp, _ := prot.GPAFrame(4)
	qq, _ := plain.GPAFrame(4)
	bufP := make([]byte, len(secret))
	bufQ := make([]byte, len(public))
	plat.X.M.Ctl.Mem.ReadRaw(pp.Addr(), bufP)
	plat.X.M.Ctl.Mem.ReadRaw(qq.Addr(), bufQ)
	if bytes.Equal(bufP, secret) {
		t.Error("protected guest's memory in plaintext")
	}
	if !bytes.Equal(bufQ, public) {
		t.Error("plain guest's memory should be plaintext")
	}
	// The non-SEV guest's pages are still unmapped from the hypervisor
	// (Fidelius protects the mapping layer for every guest it sees).
	if err := plat.X.M.CPU.ReadVA(uint64(pp.Addr()), make([]byte, 4)); err == nil {
		t.Error("hypervisor reads protected guest page")
	}
}

func TestIntegrationKVStoreAcrossGenerations(t *testing.T) {
	// The kvstore example as a test: tenant records written by one VM
	// generation are recovered by the next from the Kblk-encrypted disk,
	// with nothing visible outside the guests in between — including
	// across the frame recycling that VM teardown causes.
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := NewOwner()
	kernel := bytes.Repeat([]byte("KV-TEST-KERNEL!!"), 256)
	bundle, kblk, err := PrepareGuest(owner, plat.PlatformKey(), kernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dk := NewDisk(256)
	secret := []byte("pan=4111111111111111")

	runGen := func(name string, fn func(g *GuestEnv, dev *AESNIFront) error) {
		t.Helper()
		vm, err := plat.LaunchVM(name, 64, bundle)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plat.AttachDisk(vm, dk, 2, 1, nil); err != nil {
			t.Fatal(err)
		}
		plat.StartVCPU(vm, func(g *GuestEnv) error {
			bf, err := NewBlockFrontend(g)
			if err != nil {
				return err
			}
			dev, err := NewAESNIFront(g, bf, kblk)
			if err != nil {
				return err
			}
			return fn(g, dev)
		})
		if err := plat.Run(vm); err != nil {
			t.Fatal(err)
		}
		if err := plat.Shutdown(vm); err != nil {
			t.Fatal(err)
		}
	}

	runGen("gen1", func(g *GuestEnv, dev *AESNIFront) error {
		if err := kvFormat(dev); err != nil {
			return err
		}
		return kvPut(dev, "card", secret)
	})
	runGen("gen2", func(g *GuestEnv, dev *AESNIFront) error {
		got, err := kvGet(dev, "card")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, secret) {
			return fmt.Errorf("recovered %q", got)
		}
		return nil
	})
	if bytes.Contains(dk.Snapshot(), secret) {
		t.Fatal("tenant record visible on the physical disk")
	}
}

// Minimal kv helpers over the internal store, kept here so the root test
// does not grow a dependency cycle.
func kvFormat(dev *AESNIFront) error { return kv.Format(dev, 8) }

func kvPut(dev *AESNIFront, key string, val []byte) error {
	s, err := kv.Open(dev, 8, 64)
	if err != nil {
		return err
	}
	return s.Put(key, val)
}

func kvGet(dev *AESNIFront, key string) ([]byte, error) {
	s, err := kv.Open(dev, 8, 64)
	if err != nil {
		return nil, err
	}
	return s.Get(key)
}
