package xen

import (
	"errors"
	"fmt"

	"fidelius/internal/hw"
)

// GrantEntrySize is the marshalled size of one grant-table entry.
const GrantEntrySize = 16

// GrantEntriesPerPage is the number of entries in one grant-table page.
const GrantEntriesPerPage = hw.PageSize / GrantEntrySize

// Grant entry flags.
const (
	// GrantInUse marks the entry valid.
	GrantInUse uint16 = 1 << 0
	// GrantReadOnly restricts the grantee's mapping to read-only. The
	// paper's grant-table attack flips exactly this bit (Section 2.2).
	GrantReadOnly uint16 = 1 << 1
)

// GrantEntry is one row of a domain's grant table: the granter offers its
// guest frame GFN to domain Grantee with the given flags. Grant tables are
// memory-resident (and hence write-protectable by Fidelius).
type GrantEntry struct {
	Flags   uint16
	Grantee DomID
	GFN     uint64
}

// Marshal encodes the entry into a 16-byte slot.
func (e GrantEntry) Marshal(b []byte) {
	b[0] = byte(e.Flags)
	b[1] = byte(e.Flags >> 8)
	b[2] = byte(e.Grantee)
	b[3] = byte(e.Grantee >> 8)
	for i := 0; i < 8; i++ {
		b[4+i] = byte(e.GFN >> (8 * i))
	}
	b[12], b[13], b[14], b[15] = 0, 0, 0, 0
}

// UnmarshalGrantEntry decodes a 16-byte slot.
func UnmarshalGrantEntry(b []byte) GrantEntry {
	var e GrantEntry
	e.Flags = uint16(b[0]) | uint16(b[1])<<8
	e.Grantee = DomID(uint16(b[2]) | uint16(b[3])<<8)
	for i := 0; i < 8; i++ {
		e.GFN |= uint64(b[4+i]) << (8 * i)
	}
	return e
}

// ErrBadGrant reports an invalid grant reference or a failed validation.
var ErrBadGrant = errors.New("xen: bad grant reference")

// GrantTable is one domain's grant table, stored in a dedicated physical
// page so it appears in the memory permission map (Table 1).
//
// The table page is shared host state: a foreign domain's map operation
// reads entries a concurrent WriteGrant may be rewriting. Callers of
// Entry and FreeRef therefore hold the machine's gate lock (the same
// lock the interposed grant writes run under), keeping 16-byte entries
// untearable without giving the table a lock of its own.
type GrantTable struct {
	PagePFN hw.PFN
	ctl     *hw.Controller
}

// newGrantTable allocates and zeroes a grant-table page.
func newGrantTable(ctl *hw.Controller, alloc *FrameAlloc, owner DomID) (*GrantTable, error) {
	pfn, err := alloc.Alloc(UseGrantTable, owner)
	if err != nil {
		return nil, err
	}
	var zero [hw.PageSize]byte
	if err := ctl.Mem.WriteRaw(pfn.Addr(), zero[:]); err != nil {
		return nil, err
	}
	ctl.Cache.Invalidate(pfn.Addr(), hw.PageSize)
	return &GrantTable{PagePFN: pfn, ctl: ctl}, nil
}

// SlotPA returns the physical address of entry ref.
func (g *GrantTable) SlotPA(ref int) (hw.PhysAddr, error) {
	if ref < 0 || ref >= GrantEntriesPerPage {
		return 0, fmt.Errorf("%w: ref %d", ErrBadGrant, ref)
	}
	return g.PagePFN.Addr() + hw.PhysAddr(ref*GrantEntrySize), nil
}

// Entry reads entry ref from memory.
func (g *GrantTable) Entry(ref int) (GrantEntry, error) {
	pa, err := g.SlotPA(ref)
	if err != nil {
		return GrantEntry{}, err
	}
	var buf [GrantEntrySize]byte
	if err := g.ctl.Read(hw.Access{PA: pa}, buf[:]); err != nil {
		return GrantEntry{}, err
	}
	return UnmarshalGrantEntry(buf[:]), nil
}

// FreeRef finds the first unused entry index.
func (g *GrantTable) FreeRef() (int, error) {
	for i := 0; i < GrantEntriesPerPage; i++ {
		e, err := g.Entry(i)
		if err != nil {
			return 0, err
		}
		if e.Flags&GrantInUse == 0 {
			return i, nil
		}
	}
	return 0, errors.New("xen: grant table full")
}
