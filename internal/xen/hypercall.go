package xen

import (
	"errors"

	"fidelius/internal/cpu"
	"fidelius/internal/cycles"
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
	"fidelius/internal/telemetry"
)

// Hypercall numbers. Arguments travel in guest registers R1..R5 and the
// result returns in R0 with an errno in R1.
const (
	// HCVoid does nothing — the paper's shadowing micro-benchmark
	// (Section 7.2) measures its round trip.
	HCVoid = iota
	// HCConsoleIO is a debug write: R1 carries up to 8 bytes
	// little-endian, R2 the byte count.
	HCConsoleIO
	// HCGrantTableOp manipulates grant tables (sub-op in R1).
	HCGrantTableOp
	// HCEventChannelOp signals event channels (sub-op in R1).
	HCEventChannelOp
	// HCPreSharingOp is Fidelius's added hypercall (Section 4.3.7):
	// the initiator declares an intended sharing before creating the
	// grant; handled directly by the trusted context.
	HCPreSharingOp
	// HCEnableSME asks Fidelius to set C-bits on the NPT for SME-based
	// encryption of subsequently allocated pages (Section 7.1).
	HCEnableSME
	// HCFideliusIO is the retrofitted event channel of the SEV-based
	// I/O path: R1=op (0 read, 1 write), R2=Md GFN, R3=lba, R4=sector
	// count, R5=shared-area sector index.
	HCFideliusIO
)

// Grant-table sub-operations (R1).
const (
	// GntOpGrant creates a grant: R2=grantee, R3=gfn, R4=flags → ref.
	GntOpGrant = iota
	// GntOpMap maps a foreign grant: R2=granter, R3=ref, R4=dstGFN.
	GntOpMap
	// GntOpRevoke revokes the caller's own grant: R2=ref.
	GntOpRevoke
	// GntOpUnmap removes a foreign mapping: R2=dstGFN.
	GntOpUnmap
)

// Event-channel sub-operations (R1).
const (
	// EvtOpSend kicks a port: R2=port.
	EvtOpSend = iota
)

// Hypercall errno values (R1 after return).
const (
	errnoOK     = 0
	errnoFail   = 1
	errnoAccess = 13 // policy veto
	errnoNoSys  = 38
)

// GrantWindowPages is the size of the guest-physical window above a
// guest's own memory where foreign grants are mapped.
const GrantWindowPages = 16

func errnoFor(err error) uint64 {
	if err == nil {
		return errnoOK
	}
	var pe *cpu.ProtectionError
	if errors.As(err, &pe) {
		return errnoAccess
	}
	if errors.Is(err, ErrNoSuchHypercall) {
		return errnoNoSys
	}
	return errnoFail
}

// hypercall dispatches one hypercall from domain d. It returns the result
// and errno values for R0 and R1. It runs with the domain lock held; the
// dispatch cost is charged to the domain's own controller port, so
// parallel quanta account their hypercalls to themselves.
func (x *Xen) hypercall(d *Domain, regs [cpu.NumRegs]uint64) (res, errno uint64) {
	d.ctl.Cycles.Charge(200) // dispatch cost (part of the hypercall path)
	tel := d.ctl.Telem
	tel.M.Hypercalls.Inc()
	if tel.Tracing() {
		tel.Emit(telemetry.KindHypercall, uint32(d.ID), uint32(d.ASID),
			200, regs[0], regs[1])
	}
	switch regs[0] {
	case HCVoid:
		return 0, errnoOK
	case HCConsoleIO:
		// R1 holds up to 8 bytes little-endian, R2 the byte count.
		n := regs[2]
		if n > 8 {
			n = 8
		}
		for i := uint64(0); i < n; i++ {
			d.console = append(d.console, byte(regs[1]>>(8*i)))
		}
		return 0, errnoOK
	case HCGrantTableOp:
		return x.grantOp(d, regs)
	case HCEventChannelOp:
		switch regs[1] {
		case EvtOpSend:
			return 0, errnoFor(x.Events.Notify(d.ID, uint32(regs[2])))
		}
		return 0, errnoNoSys
	case HCPreSharingOp:
		return 0, errnoFor(x.Interpose.PreSharing(d.ID, DomID(regs[1]), regs[2], regs[3], regs[4]))
	case HCEnableSME:
		return 0, errnoFor(x.Interpose.EnableSME(d))
	case HCFideliusIO:
		return 0, errnoFor(x.Interpose.IOCrypt(d, regs[1] == 1, regs[2], regs[3], regs[4], regs[5]))
	}
	return 0, errnoNoSys
}

// grantOp handles the grant-table hypercall sub-operations. Grant-table
// *bytes* are shared host state (a foreign domain's map reads the
// granter's table), so raw entry reads take the gate lock — sequential
// with, never nested inside, the interposed WriteGrant's own gate
// section. Same-domain read-then-write races are excluded by the
// caller's domain lock.
func (x *Xen) grantOp(d *Domain, regs [cpu.NumRegs]uint64) (res, errno uint64) {
	switch regs[1] {
	case GntOpGrant:
		grantee, gfn, flags := DomID(regs[2]), regs[3], uint16(regs[4])
		pfn, ok := d.GPAFrame(gfn)
		if !ok {
			return 0, errnoFail
		}
		x.M.Host.Lock()
		ref, err := d.Grant.FreeRef()
		x.M.Host.Unlock()
		if err != nil {
			return 0, errnoFail
		}
		slot, err := d.Grant.SlotPA(ref)
		if err != nil {
			return 0, errnoFail
		}
		entry := GrantEntry{Flags: GrantInUse | flags, Grantee: grantee, GFN: gfn}
		if err := x.Interpose.WriteGrant(d, slot, entry); err != nil {
			return 0, errnoFor(err)
		}
		x.M.Alloc.SetUse(pfn, UseShared, d.ID)
		return uint64(ref), errnoOK

	case GntOpMap:
		granter, ref, dstGFN := DomID(regs[2]), int(regs[3]), regs[4]
		// Registry lookup first (doms ranks above gate, so it must be
		// released before the grant bytes are read).
		gd, ok := x.Dom(granter)
		if !ok {
			return 0, errnoFail
		}
		x.M.Host.Lock()
		e, err := gd.Grant.Entry(ref)
		x.M.Host.Unlock()
		if err != nil || e.Flags&GrantInUse == 0 || e.Grantee != d.ID {
			return 0, errnoFail
		}
		pfn, ok := gd.GPAFrame(e.GFN)
		if !ok {
			return 0, errnoFail
		}
		flags := mmu.FlagP | mmu.FlagU
		if e.Flags&GrantReadOnly == 0 {
			flags |= mmu.FlagW
		}
		if err := x.MapNPT(d, dstGFN<<hw.PageShift, mmu.MakePTE(pfn, flags)); err != nil {
			return 0, errnoFor(err)
		}
		return 0, errnoOK

	case GntOpRevoke:
		ref := int(regs[2])
		slot, err := d.Grant.SlotPA(ref)
		if err != nil {
			return 0, errnoFail
		}
		if err := x.Interpose.WriteGrant(d, slot, GrantEntry{}); err != nil {
			return 0, errnoFor(err)
		}
		return 0, errnoOK

	case GntOpUnmap:
		dstGFN := regs[2]
		slot, err := x.NPTLeafSlot(d, dstGFN<<hw.PageShift)
		if err != nil {
			return 0, errnoFail
		}
		if err := x.Interpose.WritePTE(d, slot, 0); err != nil {
			return 0, errnoFor(err)
		}
		return 0, errnoOK
	}
	return 0, errnoNoSys
}

// VoidHypercallCost is the modelled cost of a void hypercall round trip
// without Fidelius: exit, dispatch, entry.
const VoidHypercallCost = cycles.Hypercall
