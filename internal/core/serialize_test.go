package core

import (
	"bytes"
	"testing"

	"fidelius/internal/hw"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

func TestGuestBundleSerialisationBootsRemotely(t *testing.T) {
	// The owner serialises the bundle in its trusted environment; the
	// platform deserialises it from the wire and boots it.
	_, f := newPlatform(t)
	kernel := bytes.Repeat([]byte("WIRE-FORMAT-KERN"), 256)
	b, _ := newBundle(t, f, kernel, []byte("disk payload"))

	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b2 GuestBundle
	if err := b2.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2.DiskImage, b.DiskImage) || b2.Image.NumPages() != b.Image.NumPages() {
		t.Fatal("bundle fields lost on the wire")
	}
	d, err := f.LaunchVM("wire", 32, &b2)
	if err != nil {
		t.Fatalf("deserialised bundle failed to boot: %v", err)
	}
	kbase := f.KernelBase(d, &b2) << hw.PageShift
	got := make([]byte, 16)
	f.X.StartVCPU(d, func(g *xen.GuestEnv) error { return g.Read(kbase, got) })
	if err := f.X.Run(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("WIRE-FORMAT-KERN")) {
		t.Fatalf("kernel mismatch after wire round trip: %q", got)
	}
}

func TestMigrationBundleSerialisation(t *testing.T) {
	x1, f1 := newPlatform(t)
	_, f2 := newPlatform(t)
	b, _ := newBundle(t, f1, make([]byte, hw.PageSize), nil)
	d, err := f1.LaunchVM("m", 16, b)
	if err != nil {
		t.Fatal(err)
	}
	x1.StartVCPU(d, func(g *xen.GuestEnv) error {
		return g.Write(0x2000, []byte("wired state"))
	})
	if err := x1.Run(d); err != nil {
		t.Fatal(err)
	}
	targetPub, _ := f2.M.FW.PublicKey()
	snap, err := f1.MigrateOut(d, targetPub)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var snap2 MigrationBundle
	if err := snap2.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	originPub, _ := f1.M.FW.PublicKey()
	d2, err := f2.MigrateIn(&snap2, originPub)
	if err != nil {
		t.Fatalf("deserialised snapshot failed to restore: %v", err)
	}
	got := make([]byte, 11)
	f2.X.StartVCPU(d2, func(g *xen.GuestEnv) error { return g.Read(0x2000, got) })
	if err := f2.X.Run(d2); err != nil {
		t.Fatal(err)
	}
	if string(got) != "wired state" {
		t.Fatalf("state %q", got)
	}
}

func TestGEKBundleSerialisation(t *testing.T) {
	_, f := newPlatform(t)
	owner, img, gek := gekFixture(t)
	pub, _ := f.M.FW.PublicKey()
	b, err := BindGEKGuest(owner, pub, img, gek)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b2 GEKBundle
	if err := b2.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LaunchVMFromGEK("wire-gek", 32, &b2); err != nil {
		t.Fatalf("deserialised GEK bundle failed to boot: %v", err)
	}
}

func TestSerialisationErrors(t *testing.T) {
	var b GuestBundle
	if err := b.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	var m MigrationBundle
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func gekFixture(t *testing.T) (*sev.Owner, *sev.GEKImage, sev.GEK) {
	t.Helper()
	owner, err := sev.NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	img, gek, err := PrepareGEKGuest(owner, bytes.Repeat([]byte("GEK-WIRE-KERNEL!"), 256))
	if err != nil {
		t.Fatal(err)
	}
	return owner, img, gek
}
