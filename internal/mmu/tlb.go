package mmu

import "fidelius/internal/hw"

type tlbKey struct {
	asid   hw.ASID
	vaPage uint64
	access AccessType
}

// TLB caches permission-checked translations, tagged by ASID so that guest
// and host entries coexist (AMD-V tagged TLBs). Fidelius's gate-cost
// analysis revolves around what each context-transition approach flushes:
// a CR3 switch flushes everything, the type 3 gate flushes single entries,
// the type 1 gate flushes nothing.
type TLB struct {
	entries map[tlbKey]Translation
	// Flush statistics, used by the micro-benchmarks.
	FullFlushes  uint64
	EntryFlushes uint64
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[tlbKey]Translation)}
}

// Lookup returns a cached translation for (asid, va, access).
func (t *TLB) Lookup(asid hw.ASID, va uint64, access AccessType) (Translation, bool) {
	tr, ok := t.entries[tlbKey{asid, PageBase(va), access}]
	return tr, ok
}

// Insert caches a translation.
func (t *TLB) Insert(asid hw.ASID, va uint64, access AccessType, tr Translation) {
	t.entries[tlbKey{asid, PageBase(va), access}] = tr
}

// FlushAll empties the TLB (MOV CR3 without PCID, or explicit full flush).
func (t *TLB) FlushAll() {
	t.entries = make(map[tlbKey]Translation)
	t.FullFlushes++
}

// FlushEntry drops all cached translations of one page for one ASID
// (INVLPG / INVLPGA).
func (t *TLB) FlushEntry(asid hw.ASID, va uint64) {
	base := PageBase(va)
	for _, a := range []AccessType{Read, Write, Execute} {
		delete(t.entries, tlbKey{asid, base, a})
	}
	t.EntryFlushes++
}

// FlushASID drops every entry of one ASID.
func (t *TLB) FlushASID(asid hw.ASID) {
	for k := range t.entries {
		if k.asid == asid {
			delete(t.entries, k)
		}
	}
}

// Len reports the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }
