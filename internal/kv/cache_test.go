package kv

import (
	"fmt"
	"testing"
)

func TestValueCacheLRU(t *testing.T) {
	c := NewValueCache(3)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// k0 was least recently used and must have been evicted.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	// Touch k1, then insert: k2 becomes the victim.
	if v, ok := c.Get("k1"); !ok || v[0] != 1 {
		t.Fatalf("k1 = %v, %v", v, ok)
	}
	c.Put("k4", []byte{4})
	if _, ok := c.Get("k2"); ok {
		t.Fatal("recency not updated: k2 should have been evicted, not k1")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently used entry evicted")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2 hits, 2 misses", hits, misses)
	}
}

func TestValueCacheReplaceAndInvalidate(t *testing.T) {
	c := NewValueCache(2)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache to %d", c.Len())
	}
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("replace kept %q", v)
	}
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated entry still present")
	}
	c.Invalidate("never-there") // must not panic
	// Eviction still works after churn.
	c.Put("a", nil)
	c.Put("b", nil)
	c.Put("c", nil)
	if c.Len() != 2 {
		t.Fatalf("len %d after churn, want 2", c.Len())
	}
}
