package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SLO engine: declarative latency/throughput objectives evaluated against
// the registry's labelled histograms. An Objective states "quantile q of
// metric M must be <= Max, and at least Target of all observations must
// be within Max"; evaluation produces a pass/fail verdict plus the
// burn rate — how fast the error budget (1-Target) is being consumed,
// SRE-style: badFraction / (1-Target), where 1.0 means exactly on
// budget and anything above means the objective will be violated if the
// workload continues. Objectives that burn emit KindSLOAlert events and
// bump the slo.alerts counter so alerts land in the same trace stream as
// the spans that explain them.

// Objective is one declarative service-level objective over a histogram.
type Objective struct {
	Name     string  `json:"name"`     // display name, e.g. "vmexit-p99"
	Metric   string  `json:"metric"`   // registry histogram name (canonical, incl. labels)
	Quantile float64 `json:"quantile"` // e.g. 0.99
	Max      float64 `json:"max"`      // bound on the quantile value, in the metric's unit
	Target   float64 `json:"target"`   // required fraction of observations <= Max (0 = use Quantile)
	MinCount uint64  `json:"min_count"`
}

// Evaluation is the verdict for one objective against one snapshot.
type Evaluation struct {
	Objective
	Count    uint64  `json:"count"`
	Value    float64 `json:"value"`     // measured quantile
	BadFrac  float64 `json:"bad_frac"`  // fraction of observations above Max
	BurnRate float64 `json:"burn_rate"` // BadFrac / (1-Target); 0 when Target is 0 or 1
	Pass     bool    `json:"pass"`
	Skipped  bool    `json:"skipped"` // metric absent or below MinCount
}

// DefaultObjectives are the platform's stock latency objectives over the
// per-quantum VMEXIT round-trip histogram: the median must stay within a
// cheap exit (gates plus dispatch), and the p99 tail within a full
// page-fault service. The bounds are deliberately loose — they are the
// "is the platform grossly regressing" guardrail, not a benchmark.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "vmexit-p50", Metric: "vmexit.cycles", Quantile: 0.50, Max: 262144, Target: 0.50, MinCount: 8},
		{Name: "vmexit-p99", Metric: "vmexit.cycles", Quantile: 0.99, Max: 4194304, Target: 0.99, MinCount: 8},
	}
}

// DefaultServeObjectives are the stock serving-latency objectives over
// the serve-ring arrival-to-response histogram. The bounds assume the
// seek-dominated put mix of the default scenario at moderate utilisation:
// a median request waits behind a handful of other tenants' disk-bound
// puts in the round-robin (~10 seeks), and the p99 tail absorbs open-loop
// queueing bursts about an order of magnitude deeper. Like
// DefaultObjectives, they are gross-regression guardrails, not benchmarks
// — a healthy default run passes with ~2x headroom.
func DefaultServeObjectives() []Objective {
	return []Objective{
		{Name: "serve-p50", Metric: "serve.latency", Quantile: 0.50, Max: 8388608, Target: 0.50, MinCount: 16},
		{Name: "serve-p99", Metric: "serve.latency", Quantile: 0.99, Max: 134217728, Target: 0.99, MinCount: 16},
	}
}

// TenantServeObjectives scopes the stock serve objectives to one tenant's
// labelled latency histogram (serve.latency{tenant=<name>}).
func TenantServeObjectives(tenant string) []Objective {
	objs := DefaultServeObjectives()
	for i := range objs {
		objs[i].Name = objs[i].Name + ":" + tenant
		objs[i].Metric = MetricName(objs[i].Metric, "tenant", tenant)
	}
	return objs
}

// EvaluateSLOs checks every objective against the snapshot.
func EvaluateSLOs(s Snapshot, objs []Objective) []Evaluation {
	out := make([]Evaluation, 0, len(objs))
	for _, o := range objs {
		ev := Evaluation{Objective: o}
		h, ok := s.Histograms[o.Metric]
		if !ok || h.Count < o.MinCount {
			ev.Skipped = true
			ev.Count = h.Count
			out = append(out, ev)
			continue
		}
		ev.Count = h.Count
		ev.Value = h.Quantile(o.Quantile)
		ev.BadFrac = 1 - h.FracAtMost(o.Max)
		if ev.BadFrac < 0 {
			ev.BadFrac = 0
		}
		if o.Target > 0 && o.Target < 1 {
			ev.BurnRate = ev.BadFrac / (1 - o.Target)
			ev.Pass = ev.BurnRate <= 1
		} else {
			ev.Pass = ev.Value <= o.Max
		}
		out = append(out, ev)
	}
	return out
}

// EvaluateSLOs evaluates the objectives against the hub's live registry
// and emits a burn-rate alert (KindSLOAlert event + slo.alerts counter)
// for every failing objective.
func (h *Hub) EvaluateSLOs(objs []Objective) []Evaluation {
	if h == nil {
		return nil
	}
	evals := EvaluateSLOs(h.Reg.Snapshot(), objs)
	for _, ev := range evals {
		if ev.Skipped || ev.Pass {
			continue
		}
		h.M.SLOAlerts.Inc()
		if h.tracer.Load() != nil {
			h.EmitDetail(KindSLOAlert, 0, 0, 0, uint64(ev.BurnRate*1000), 0, ev.Name)
		}
		if h.Auditing() {
			h.Audit("slo-burn", 0, ev.Name+" burn rate "+
				strconv.FormatFloat(ev.BurnRate, 'f', 2, 64)+" on "+ev.Metric)
		}
	}
	return evals
}

// WriteSLOTable renders evaluations as a human-readable pass/fail table,
// sorted by objective name.
func WriteSLOTable(w io.Writer, evals []Evaluation) error {
	sorted := append([]Evaluation{}, evals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	if _, err := fmt.Fprintf(w, "%-14s %-22s %5s %12s %12s %8s %8s  %s\n",
		"objective", "metric", "q", "value", "max", "burn", "count", "verdict"); err != nil {
		return err
	}
	for _, ev := range sorted {
		verdict := "PASS"
		switch {
		case ev.Skipped:
			verdict = "SKIP (insufficient samples)"
		case !ev.Pass:
			verdict = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "%-14s %-22s %5.2f %12.0f %12.0f %8.2f %8d  %s\n",
			ev.Name, ev.Metric, ev.Quantile, ev.Value, ev.Max, ev.BurnRate, ev.Count, verdict); err != nil {
			return err
		}
	}
	return nil
}
