package serve

import (
	"fmt"
	"math/rand"
)

// Open-loop load generation: every tenant gets a Poisson arrival process
// at a configured offered rate, materialised up front as absolute arrival
// timestamps on the platform's cycle clock. Arrival times never move —
// if the service falls behind, requests queue with their original
// timestamps and the measured latency includes the queueing delay. That
// is the point: a closed-loop generator (issue, wait, issue) slows its
// offered load to whatever the server sustains and silently hides tail
// latency — the coordinated-omission trap. Here the only admission
// throttles are the per-client in-flight window and the ring capacity,
// and both show up in the histogram as queueing, not as missing samples.

// genOp is one generated client operation.
type genOp struct {
	seq     int // index into the tenant's arrival order
	client  int
	kind    uint32
	key     string
	val     []byte
	arrival uint64 // relative cycle offset; rebased at Run
	// Injection-time bookkeeping.
	id       uint64
	injected bool
	// expect models what the client knows it wrote: the value a get must
	// return (nil + expectMiss for a key that should be absent).
	expect     []byte
	expectMiss bool
}

// loadGen holds one tenant's precomputed open-loop schedule plus the
// injection cursor state. All mutation happens in the event-channel
// handlers (under the machine's gate lock); construction is setup-time.
type loadGen struct {
	ops      []genOp
	cursor   int   // first op not yet injected (ops before it are all injected)
	next     []int // per-client index of the next op to inject (per-client FIFO)
	inflight []int // per-client in-flight count
	window   int
	injected int
	// model tracks the value each key holds as of the ops injected so
	// far, giving every get an expected answer at injection time.
	model map[string][]byte
}

// buildLoad generates a tenant's schedule: clients*opsPerClient ops,
// Poisson arrivals at ratePerMCycle (expected ops per million cycles),
// assigned round-robin to clients so each client is an in-order
// subsequence of the tenant stream. keySpace overrides the per-client
// key population (<= 0 selects the default opsPerClient/2+1).
func buildLoad(tenantIdx, clients, opsPerClient, keySpace int, ratePerMCycle float64, putFrac, delFrac float64, valueBytes, window int, rng *rand.Rand) *loadGen {
	total := clients * opsPerClient
	g := &loadGen{
		ops:      make([]genOp, 0, total),
		next:     make([]int, clients),
		inflight: make([]int, clients),
		window:   window,
		model:    make(map[string][]byte),
	}
	if g.window <= 0 {
		g.window = 4
	}
	// Per-client op scripts: the first touch of every key is a put, later
	// ops mix gets, overwrites and deletes over a small keyspace.
	keyspace := keySpace
	if keyspace <= 0 {
		keyspace = opsPerClient/2 + 1
	}
	perClient := make([][]genOp, clients)
	for c := 0; c < clients; c++ {
		seen := make(map[string]bool)
		for j := 0; j < opsPerClient; j++ {
			key := fmt.Sprintf("t%d/c%d/k%d", tenantIdx, c, rng.Intn(keyspace))
			op := genOp{client: c, key: key}
			r := rng.Float64()
			switch {
			case !seen[key] || r < putFrac:
				op.kind = OpPut
				op.val = randValue(rng, valueBytes)
				seen[key] = true
			case r < putFrac+delFrac:
				op.kind = OpDelete
			default:
				op.kind = OpGet
			}
			perClient[c] = append(perClient[c], op)
		}
	}
	// One Poisson arrival stream for the tenant, ops dealt round-robin.
	meanGap := 1e6 / ratePerMCycle
	now := 0.0
	taken := make([]int, clients)
	for i := 0; i < total; i++ {
		now += rng.ExpFloat64() * meanGap
		c := i % clients
		op := perClient[c][taken[c]]
		taken[c]++
		op.seq = i
		op.arrival = uint64(now)
		g.ops = append(g.ops, op)
	}
	return g
}

func randValue(rng *rand.Rand, n int) []byte {
	if n <= 0 {
		n = 1
	}
	if n > MaxValLen {
		n = MaxValLen
	}
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// rebase shifts all arrival offsets onto the absolute cycle clock.
func (g *loadGen) rebase(start uint64) {
	for i := range g.ops {
		g.ops[i].arrival += start
	}
}

// nextDue returns the next injectable op at the given cycle time — due,
// its client's turn in FIFO order, and within the client's in-flight
// window — or nil. The scan skips window-blocked clients so one slow
// client cannot head-of-line block the whole tenant.
func (g *loadGen) nextDue(now uint64) *genOp {
	for i := g.cursor; i < len(g.ops); i++ {
		op := &g.ops[i]
		if op.injected {
			if i == g.cursor {
				g.cursor++
			}
			continue
		}
		if op.arrival > now {
			return nil // arrivals are sorted: nothing further is due
		}
		if g.next[op.client] != g.clientPos(op) || g.inflight[op.client] >= g.window {
			continue // not this client's turn, or its window is full
		}
		return op
	}
	return nil
}

// clientPos is the op's position within its client's FIFO stream; ops
// are dealt round-robin, so it is the tenant sequence number divided by
// the client count.
func (g *loadGen) clientPos(op *genOp) int { return op.seq / len(g.next) }

// duePressure summarises the uninjected backlog at a cycle time: how
// many ops are due (capped at cap — past that the hold policy's answer
// cannot change, so the scan stops), how many of those are mutations,
// and whether the schedule still has arrivals beyond now. The fill
// handler's hold policy weighs due against its depth target, and a
// hold is only worth anything while future is true: once the last
// arrival is in the past the batch can never get deeper.
func (g *loadGen) duePressure(now uint64, cap int) (due, muts int, future bool) {
	for i := g.cursor; i < len(g.ops); i++ {
		op := &g.ops[i]
		if op.injected {
			continue
		}
		if op.arrival > now {
			return due, muts, true // arrivals are sorted: the rest is future
		}
		due++
		if op.kind != OpGet {
			muts++
		}
		if due >= cap {
			return due, muts, true
		}
	}
	return due, muts, false
}

// markInjected commits an op returned by nextDue: the client model is
// advanced so later gets know what to expect, and the window charged.
func (g *loadGen) markInjected(op *genOp, id uint64) {
	op.id = id
	op.injected = true
	switch op.kind {
	case OpPut:
		g.model[op.key] = op.val
	case OpDelete:
		delete(g.model, op.key)
	case OpGet:
		if v, ok := g.model[op.key]; ok {
			op.expect = v
		} else {
			op.expectMiss = true
		}
	}
	g.next[op.client]++
	g.inflight[op.client]++
	g.injected++
}

// markDone releases the client's window slot on completion.
func (g *loadGen) markDone(op *genOp) {
	g.inflight[op.client]--
}

// exhausted reports whether every generated op has been injected.
func (g *loadGen) exhausted() bool { return g.injected == len(g.ops) }

// total reports the schedule length.
func (g *loadGen) total() int { return len(g.ops) }
