package attack

import (
	"bytes"
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/mmu"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// ColdBoot dumps all of DRAM and searches for the secret (Section 6.1).
// SEV hardware alone defeats this: DRAM holds ciphertext.
type ColdBoot struct{}

// Name implements Attack.
func (ColdBoot) Name() string { return "cold-boot" }

// Description implements Attack.
func (ColdBoot) Description() string {
	return "physically dump DRAM and search for guest secrets (§6.1)"
}

// Run implements Attack.
func (ColdBoot) Run(p *Platform) Outcome {
	dump := make([]byte, p.X.M.Ctl.Mem.Size())
	if err := p.X.M.Ctl.Mem.ReadRaw(0, dump); err != nil {
		return Outcome{Name: "cold-boot", Config: p.ConfigName(), Detail: err.Error()}
	}
	found := bytes.Contains(dump, p.Secret[:16])
	return Outcome{
		Name: "cold-boot", Config: p.ConfigName(), Succeeded: found,
		Detail: fmt.Sprintf("secret in DRAM dump: %v", found),
	}
}

// DMASnoop reads the victim's page through the DMA port (Section 2.2:
// DMA cannot operate on encrypted guest memory).
type DMASnoop struct{}

// Name implements Attack.
func (DMASnoop) Name() string { return "dma-snoop" }

// Description implements Attack.
func (DMASnoop) Description() string {
	return "device-initiated DMA read of guest memory (§2.2)"
}

// Run implements Attack.
func (DMASnoop) Run(p *Platform) Outcome {
	buf := make([]byte, len(p.Secret))
	if err := p.X.M.Ctl.DMA().Read(p.VictimFrame().Addr(), buf); err != nil {
		return Outcome{Name: "dma-snoop", Config: p.ConfigName(), Detail: err.Error()}
	}
	ok := bytes.Equal(buf, p.Secret)
	return Outcome{
		Name: "dma-snoop", Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("plaintext via DMA: %v", ok),
	}
}

// HypervisorDirectRead maps and reads the victim's page from hypervisor
// context. On pre-SNP hardware a cache hit returns the victim's plaintext
// even though DRAM is encrypted (Section 6.2, "Breaking memory privacy").
type HypervisorDirectRead struct{}

// Name implements Attack.
func (HypervisorDirectRead) Name() string { return "direct-map-read" }

// Description implements Attack.
func (HypervisorDirectRead) Description() string {
	return "hypervisor reads guest memory through its own mapping; cache hits leak plaintext (§6.2)"
}

// Run implements Attack.
func (HypervisorDirectRead) Run(p *Platform) Outcome {
	buf := make([]byte, len(p.Secret))
	err := p.X.M.CPU.ReadVA(uint64(p.VictimFrame().Addr()), buf)
	if err != nil {
		return Outcome{
			Name: "direct-map-read", Config: p.ConfigName(),
			Detail: fmt.Sprintf("guest page unreachable: %v", err),
		}
	}
	ok := bytes.Equal(buf, p.Secret)
	return Outcome{
		Name: "direct-map-read", Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("plaintext via cached read: %v", ok),
	}
}

// InterVMRemap maps the victim's frame into the conspirator VM's NPT; the
// conspirator's access hits the plaintext cache line (Section 6.2).
type InterVMRemap struct{}

// Name implements Attack.
func (InterVMRemap) Name() string { return "inter-vm-remap" }

// Description implements Attack.
func (InterVMRemap) Description() string {
	return "map victim memory into a conspirator VM's NPT and read via cache hit (§6.2)"
}

// Run implements Attack.
func (InterVMRemap) Run(p *Platform) Outcome {
	dst := uint64(p.Conspirator.MemPages) // grant-window slot
	err := p.X.MapNPT(p.Conspirator, dst<<hw.PageShift, mmu.MakePTE(p.VictimFrame(), mmu.FlagP|mmu.FlagU))
	if err != nil {
		return Outcome{
			Name: "inter-vm-remap", Config: p.ConfigName(),
			Detail: fmt.Sprintf("NPT update rejected: %v", err),
		}
	}
	got := make([]byte, len(p.Secret))
	var readErr error
	p.X.StartVCPU(p.Conspirator, func(g *xen.GuestEnv) error {
		readErr = g.ReadUnencrypted(dst<<hw.PageShift, got)
		return nil
	})
	if err := p.X.Run(p.Conspirator); err != nil {
		return Outcome{Name: "inter-vm-remap", Config: p.ConfigName(), Detail: err.Error()}
	}
	if readErr != nil {
		return Outcome{Name: "inter-vm-remap", Config: p.ConfigName(), Detail: readErr.Error()}
	}
	ok := bytes.Equal(got, p.Secret)
	return Outcome{
		Name: "inter-vm-remap", Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("conspirator read plaintext: %v", ok),
	}
}

// NPTReplay swaps the victim's NPT mapping between two of its own pages,
// making the guest observe stale/substituted state — the Hetzelt-Buhren
// replay (Section 2.2, defeated per Section 6.2).
type NPTReplay struct{}

// Name implements Attack.
func (NPTReplay) Name() string { return "npt-replay" }

// Description implements Attack.
func (NPTReplay) Description() string {
	return "remap a guest GPA to a different (stale) frame of the same guest (§2.2)"
}

// Run implements Attack.
func (a NPTReplay) Run(p *Platform) Outcome {
	// Victim writes distinct values into two pages.
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		if err := g.Write(10<<hw.PageShift, []byte("CURRENT-VALUE-AA")); err != nil {
			return err
		}
		return g.Write(11<<hw.PageShift, []byte("STALE-SNAPSHOT-B"))
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	// The hypervisor redirects GPA 10 to the frame backing GPA 11.
	frameB, _ := p.Victim.GPAFrame(11)
	slot, err := p.X.NPTLeafSlot(p.Victim, 10<<hw.PageShift)
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	// Direct store first (baseline path)...
	werr := p.X.M.CPU.Write64(uint64(slot), uint64(mmu.MakePTE(frameB, mmu.FlagP|mmu.FlagW|mmu.FlagU)))
	if werr != nil {
		// ...then through the gate (Fidelius path): the policy must
		// also refuse.
		werr = p.X.Interpose.WritePTE(p.Victim, slot, mmu.MakePTE(frameB, mmu.FlagP|mmu.FlagW|mmu.FlagU))
	}
	if werr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("remap rejected: %v", werr),
		}
	}
	// Victim reads GPA 10: does it see the substituted content?
	got := make([]byte, 16)
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		return g.Read(10<<hw.PageShift, got)
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	ok := bytes.Equal(got, []byte("STALE-SNAPSHOT-B"))
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("victim observed substituted page: %v", ok),
	}
}

// GrantForgery escalates a read-only grant to writable by editing the
// grant table directly (Section 2.2: "the hypervisor can tamper the
// permission to writable, while the origin VM shares its memory with only
// read permission").
type GrantForgery struct{}

// Name implements Attack.
func (GrantForgery) Name() string { return "grant-forgery" }

// Description implements Attack.
func (GrantForgery) Description() string {
	return "flip a read-only grant's permission bit in the grant table (§2.2)"
}

// Run implements Attack.
func (a GrantForgery) Run(p *Platform) Outcome {
	// Victim shares page 12 read-only with the conspirator.
	var ref uint64
	var grantErr error
	p.X.StartVCPU(p.Victim, func(g *xen.GuestEnv) error {
		if p.Protected() {
			if _, err := g.Hypercall(xen.HCPreSharingOp, uint64(p.Conspirator.ID), 12, 1, uint64(xen.GrantReadOnly)); err != nil {
				return err
			}
		}
		r, err := g.Hypercall(xen.HCGrantTableOp, xen.GntOpGrant, uint64(p.Conspirator.ID), 12, uint64(xen.GrantReadOnly))
		ref, grantErr = r, err
		return nil
	})
	if err := p.X.Run(p.Victim); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	if grantErr != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: grantErr.Error()}
	}
	// The hypervisor rewrites the entry without the read-only bit.
	slot, err := p.Victim.Grant.SlotPA(int(ref))
	if err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	forged := xen.GrantEntry{Flags: xen.GrantInUse, Grantee: p.Conspirator.ID, GFN: 12}
	var buf [xen.GrantEntrySize]byte
	forged.Marshal(buf[:])
	if werr := p.X.M.CPU.WriteVA(uint64(slot), buf[:]); werr != nil {
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: fmt.Sprintf("grant table write rejected: %v", werr),
		}
	}
	// The conspirator maps it and writes.
	var writeErr error
	p.X.StartVCPU(p.Conspirator, func(g *xen.GuestEnv) error {
		dst := uint64(p.Conspirator.MemPages)
		if _, err := g.Hypercall(xen.HCGrantTableOp, xen.GntOpMap, uint64(p.Victim.ID), ref, dst); err != nil {
			return err
		}
		writeErr = g.WriteUnencrypted(dst<<hw.PageShift, []byte("OVERWRITTEN"))
		return nil
	})
	if err := p.X.Run(p.Conspirator); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	ok := writeErr == nil
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("conspirator wrote through forged grant: %v", ok),
	}
}

// KeyAbuse rebinds the victim's SEV handle to an attacker-chosen ASID so
// the victim's key decrypts for the attacker (Section 2.2: the
// handle-ASID relationship is hypervisor-managed and unprotected).
type KeyAbuse struct{}

// Name implements Attack.
func (KeyAbuse) Name() string { return "key-sharing-abuse" }

// Description implements Attack.
func (KeyAbuse) Description() string {
	return "DEACTIVATE the victim's handle and ACTIVATE it under the attacker's ASID (§2.2)"
}

// Run implements Attack.
func (a KeyAbuse) Run(p *Platform) Outcome {
	fw := p.X.M.FW
	handle := p.Victim.Handle
	if p.Protected() {
		// The hypervisor does not know the handle: the SEV metadata is
		// self-maintained. Try every plausible handle.
		for h := uint32(1); h < 16; h++ {
			if err := fw.Deactivate(sev.Handle(h)); err == nil {
				return Outcome{
					Name: a.Name(), Config: p.ConfigName(), Succeeded: true,
					Detail: "firmware accepted a hypervisor-issued DEACTIVATE",
				}
			}
		}
		return Outcome{
			Name: a.Name(), Config: p.ConfigName(),
			Detail: "firmware rejects hypervisor-issued SEV commands",
		}
	}
	const evilASID = 99
	if err := fw.Deactivate(handle); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	if err := fw.Activate(handle, evilASID); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	p.X.M.Ctl.Cache.Flush() // go straight to the engine
	got := make([]byte, len(p.Secret))
	if err := p.X.M.Ctl.Read(hw.Access{PA: p.VictimFrame().Addr(), Encrypted: true, ASID: evilASID}, got); err != nil {
		return Outcome{Name: a.Name(), Config: p.ConfigName(), Detail: err.Error()}
	}
	ok := bytes.Equal(got, p.Secret)
	return Outcome{
		Name: a.Name(), Config: p.ConfigName(), Succeeded: ok,
		Detail: fmt.Sprintf("victim key decrypts under attacker ASID: %v", ok),
	}
}
