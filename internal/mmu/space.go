package mmu

import (
	"encoding/binary"
	"fmt"

	"fidelius/internal/hw"
)

// FrameAllocator hands out free physical frames for page-table pages.
type FrameAllocator interface {
	AllocFrame() (hw.PFN, error)
}

// Space is one page-table hierarchy: either a host page table (rooted at
// host CR3), a guest page table (rooted at the guest's CR3, stored in
// encrypted guest memory), or a nested page table (GPA→HPA).
//
// Table pages are read and written through the memory controller with the
// space's own (Encrypted, ASID) attributes: SEV guest page tables live in
// guest-key-encrypted memory, host and nested tables in plaintext (or
// host-key) memory.
type Space struct {
	Ctl       *hw.Controller
	Root      hw.PFN
	Encrypted bool
	ASID      hw.ASID
}

func (s *Space) readEntry(table hw.PFN, idx int) (PTE, error) {
	var b [8]byte
	a := hw.Access{PA: table.Addr() + hw.PhysAddr(idx*8), Encrypted: s.Encrypted, ASID: s.ASID}
	if err := s.Ctl.Read(a, b[:]); err != nil {
		return 0, err
	}
	return PTE(binary.LittleEndian.Uint64(b[:])), nil
}

func (s *Space) writeEntry(table hw.PFN, idx int, pte PTE) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(pte))
	a := hw.Access{PA: table.Addr() + hw.PhysAddr(idx*8), Encrypted: s.Encrypted, ASID: s.ASID}
	return s.Ctl.Write(a, b[:])
}

// Walk resolves va to its leaf PTE without permission checks. It returns
// the leaf entry, the frame holding it and its index, so callers can
// inspect or modify the entry in place.
func (s *Space) Walk(va uint64) (leaf PTE, table hw.PFN, idx int, err error) {
	if !CanonicalVA(va) {
		return 0, 0, 0, &PageFault{VA: va, Reason: NonCanonical, Level: Levels - 1}
	}
	table = s.Root
	for level := Levels - 1; level > 0; level-- {
		idx = Index(va, level)
		pte, err := s.readEntry(table, idx)
		if err != nil {
			return 0, 0, 0, err
		}
		if !pte.Present() {
			return 0, 0, 0, &PageFault{VA: va, Reason: NotPresent, Level: level}
		}
		table = pte.PFN()
	}
	idx = Index(va, 0)
	leaf, err = s.readEntry(table, idx)
	if err != nil {
		return 0, 0, 0, err
	}
	return leaf, table, idx, nil
}

// Translation is the outcome of a successful permission-checked walk.
type Translation struct {
	HPA       hw.PhysAddr // physical address of the page base
	PTE       PTE         // leaf entry
	Encrypted bool        // effective C-bit of the leaf
}

// Translate walks va and enforces permissions. wp is the current CR0.WP
// value: when clear, supervisor writes ignore the W bit — which is exactly
// the machinery Fidelius's type 1 gate exploits. user selects user-mode
// permission checks.
func (s *Space) Translate(va uint64, access AccessType, wp, user bool) (Translation, error) {
	if s.Ctl != nil {
		s.Ctl.Telem.M.PTWalks.Inc()
	}
	leaf, _, _, err := s.Walk(va)
	if err != nil {
		return Translation{}, err
	}
	if !leaf.Present() {
		return Translation{}, &PageFault{VA: va, Access: access, Reason: NotPresent, Level: 0}
	}
	if user && !leaf.User() {
		return Translation{}, &PageFault{VA: va, Access: access, Reason: UserSupervisor, Level: 0}
	}
	switch access {
	case Write:
		if !leaf.Writable() && (wp || user) {
			return Translation{}, &PageFault{VA: va, Access: access, Reason: WriteProtected, Level: 0}
		}
	case Execute:
		if leaf.NoExec() {
			return Translation{}, &PageFault{VA: va, Access: access, Reason: NXViolation, Level: 0}
		}
	}
	return Translation{
		HPA:       leaf.PFN().Addr(),
		PTE:       leaf,
		Encrypted: leaf.Encrypted(),
	}, nil
}

// Map installs a leaf mapping for va, allocating intermediate table pages
// from alloc as needed. Intermediate entries are created present+writable.
// This is the raw construction path used by trusted setup code (boot, and
// Fidelius itself); the hypervisor's runtime PTE updates instead go through
// CPU stores so that write protection applies.
func (s *Space) Map(alloc FrameAllocator, va uint64, pte PTE) error {
	if !CanonicalVA(va) {
		return fmt.Errorf("mmu: map non-canonical va %#x", va)
	}
	table := s.Root
	for level := Levels - 1; level > 0; level-- {
		idx := Index(va, level)
		entry, err := s.readEntry(table, idx)
		if err != nil {
			return err
		}
		if !entry.Present() {
			frame, err := alloc.AllocFrame()
			if err != nil {
				return fmt.Errorf("mmu: allocating level-%d table: %w", level-1, err)
			}
			if err := s.zeroFrame(frame); err != nil {
				return err
			}
			entry = MakePTE(frame, FlagP|FlagW|FlagU)
			if err := s.writeEntry(table, idx, entry); err != nil {
				return err
			}
		}
		table = entry.PFN()
	}
	return s.writeEntry(table, Index(va, 0), pte)
}

// Unmap clears the leaf mapping for va. Missing mappings are not an error.
func (s *Space) Unmap(va uint64) error {
	leaf, table, idx, err := s.Walk(va)
	if err != nil {
		if _, ok := err.(*PageFault); ok {
			return nil
		}
		return err
	}
	_ = leaf
	return s.writeEntry(table, idx, 0)
}

// SetLeaf overwrites the leaf entry for va, which must already have a full
// walk path.
func (s *Space) SetLeaf(va uint64, pte PTE) error {
	_, table, idx, err := s.Walk(va)
	if err != nil {
		return err
	}
	return s.writeEntry(table, idx, pte)
}

// Leaf returns the leaf entry for va (zero if the walk fails short).
func (s *Space) Leaf(va uint64) (PTE, error) {
	leaf, _, _, err := s.Walk(va)
	if err != nil {
		if _, ok := err.(*PageFault); ok {
			return 0, nil
		}
		return 0, err
	}
	return leaf, nil
}

// LeafSlot returns the physical address of the PTE slot holding va's leaf
// entry. Fidelius uses this to locate the page-table-pages it must write
// protect.
func (s *Space) LeafSlot(va uint64) (hw.PhysAddr, error) {
	_, table, idx, err := s.Walk(va)
	if err != nil {
		return 0, err
	}
	return table.Addr() + hw.PhysAddr(idx*8), nil
}

// TablePages lists every page-table page reachable from the root,
// root first. Fidelius write-protects exactly this set.
func (s *Space) TablePages() ([]hw.PFN, error) {
	var out []hw.PFN
	seen := map[hw.PFN]bool{}
	var rec func(table hw.PFN, level int) error
	rec = func(table hw.PFN, level int) error {
		if seen[table] {
			return nil
		}
		seen[table] = true
		out = append(out, table)
		if level == 0 {
			return nil
		}
		for i := 0; i < EntriesPerPage; i++ {
			pte, err := s.readEntry(table, i)
			if err != nil {
				return err
			}
			if pte.Present() {
				if err := rec(pte.PFN(), level-1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(s.Root, Levels-1); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Space) zeroFrame(pfn hw.PFN) error {
	var zero [hw.PageSize]byte
	return s.Ctl.Write(hw.Access{PA: pfn.Addr(), Encrypted: s.Encrypted, ASID: s.ASID}, zero[:])
}
