package mmu

import "fidelius/internal/hw"

// DirtyLog is a per-domain dirty-page bitmap driven by write-protection
// faults: pre-copy live migration clears the W bit on every NPT leaf,
// and each faulting guest write logs its GFN here before the hypervisor
// restores the mapping. This mirrors how real NPT dirty logging works —
// the MMU cannot hook successful walks, only faults — so the log records
// exactly the set of pages written since the last collection.
//
// DirtyLog is not internally locked. In the simulator's synchronous vCPU
// model the guest goroutine and the host alternate through channel
// handoffs, which provide the necessary happens-before edges; collection
// only runs from host context while the vCPU is parked.
type DirtyLog struct {
	enabled bool
	pages   uint64
	bits    []uint64
	marks   uint64 // lifetime mark count, for telemetry
}

// NewDirtyLog sizes a log for a guest of the given page count.
func NewDirtyLog(pages int) *DirtyLog {
	return &DirtyLog{pages: uint64(pages), bits: make([]uint64, (pages+63)/64)}
}

// Start arms the log. Marks while disarmed are dropped.
func (l *DirtyLog) Start() {
	if l != nil {
		l.enabled = true
	}
}

// Stop disarms the log without clearing accumulated bits.
func (l *DirtyLog) Stop() {
	if l != nil {
		l.enabled = false
	}
}

// Enabled reports whether the log is armed. Nil-safe.
func (l *DirtyLog) Enabled() bool { return l != nil && l.enabled }

// Mark records a faulting write to gfn. It reports whether the bit was
// newly set (false when disarmed, out of range, or already dirty).
func (l *DirtyLog) Mark(gfn uint64) bool {
	if l == nil || !l.enabled || gfn >= l.pages {
		return false
	}
	w, b := gfn/64, gfn%64
	if l.bits[w]&(1<<b) != 0 {
		return false
	}
	l.bits[w] |= 1 << b
	l.marks++
	return true
}

// MarkGPA records a faulting write by guest physical address.
func (l *DirtyLog) MarkGPA(gpa uint64) bool { return l.Mark(gpa >> hw.PageShift) }

// Test reports whether gfn is currently dirty.
func (l *DirtyLog) Test(gfn uint64) bool {
	if l == nil || gfn >= l.pages {
		return false
	}
	return l.bits[gfn/64]&(1<<(gfn%64)) != 0
}

// Count returns the number of dirty pages without clearing them.
func (l *DirtyLog) Count() int {
	if l == nil {
		return 0
	}
	n := 0
	for _, w := range l.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Marks reports the lifetime number of distinct bits set, across all
// collection rounds.
func (l *DirtyLog) Marks() uint64 {
	if l == nil {
		return 0
	}
	return l.marks
}

// Collect drains the log: it returns the dirty GFNs in ascending order
// and clears every bit, starting a fresh tracking round.
func (l *DirtyLog) Collect() []uint64 {
	if l == nil {
		return nil
	}
	var out []uint64
	for i, w := range l.bits {
		for w != 0 {
			b := uint64(0)
			for ; w&(1<<b) == 0; b++ {
			}
			out = append(out, uint64(i)*64+b)
			w &^= 1 << b
		}
		l.bits[i] = 0
	}
	return out
}
