package mmu

import "fmt"

// AccessType distinguishes read, write and instruction-fetch accesses.
type AccessType int

// Access types.
const (
	Read AccessType = iota
	Write
	Execute
)

func (a AccessType) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// FaultReason classifies a translation failure.
type FaultReason int

// Fault reasons.
const (
	NotPresent FaultReason = iota
	WriteProtected
	NXViolation
	UserSupervisor
	NonCanonical
)

func (r FaultReason) String() string {
	switch r {
	case NotPresent:
		return "not present"
	case WriteProtected:
		return "write protected"
	case NXViolation:
		return "nx violation"
	case UserSupervisor:
		return "user/supervisor violation"
	case NonCanonical:
		return "non-canonical address"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// PageFault is a fault raised while walking an ordinary page table.
type PageFault struct {
	VA     uint64
	Access AccessType
	Reason FaultReason
	Level  int // level at which the walk stopped
}

func (f *PageFault) Error() string {
	return fmt.Sprintf("page fault: %s at va %#x (%s, level %d)", f.Access, f.VA, f.Reason, f.Level)
}

// NPTViolation is a fault raised while walking the nested page table; it
// surfaces to the hypervisor as a nested-page-fault VMEXIT.
type NPTViolation struct {
	GPA    uint64
	Access AccessType
	Reason FaultReason
}

func (f *NPTViolation) Error() string {
	return fmt.Sprintf("npt violation: %s at gpa %#x (%s)", f.Access, f.GPA, f.Reason)
}
