package sev

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"

	"fidelius/internal/hw"
)

// Owner is the guest owner's trusted offline environment. The paper's VM
// preparation step (Section 4.3.2) has the owner run the SEND APIs on a
// trusted machine to produce an encrypted kernel image, the wrapped
// transport keys Kwrap, and the measurement Mvm; the target platform later
// replays them through RECEIVE_START/UPDATE/FINISH. Owner implements the
// sender side in pure software with the same cryptography.
type Owner struct {
	priv  *ecdh.PrivateKey
	nonce [16]byte
}

// NewOwner creates an owner identity with a fresh ECDH key and session
// nonce (the paper's Nvm).
func NewOwner() (*Owner, error) {
	priv, err := GenerateIdentity()
	if err != nil {
		return nil, err
	}
	o := &Owner{priv: priv}
	if _, err := io.ReadFull(rand.Reader, o.nonce[:]); err != nil {
		return nil, err
	}
	return o, nil
}

// PublicKey returns the owner's public ECDH key (public data).
func (o *Owner) PublicKey() *ecdh.PublicKey { return o.priv.PublicKey() }

// Nonce returns the session nonce (public data).
func (o *Owner) Nonce() []byte { return o.nonce[:] }

// EncryptedImage is an encrypted kernel image: a sequence of page-sized
// transport packets plus the sender-side measurement. Everything here is
// safe to hand to the untrusted hypervisor; only a platform that can
// unwrap Kwrap can recover the plaintext.
type EncryptedImage struct {
	Pages       []Packet
	Measurement Measurement
}

// NumPages reports the image size in pages.
func (img *EncryptedImage) NumPages() int { return len(img.Pages) }

// PrepareImage encrypts a kernel image for the platform identified by
// platformPub. The image is padded to a whole number of pages. It returns
// the image and the wrapped transport keys (Kwrap) that Fidelius needs to
// boot it.
func (o *Owner) PrepareImage(platformPub *ecdh.PublicKey, kernel []byte) (*EncryptedImage, WrappedKeys, error) {
	tek, err := randomKey()
	if err != nil {
		return nil, WrappedKeys{}, err
	}
	tik, err := randomKey()
	if err != nil {
		return nil, WrappedKeys{}, err
	}
	tk := TransportKeys{TEK: tek, TIK: tik}

	shared, err := ECDHAgree(o.priv, platformPub)
	if err != nil {
		return nil, WrappedKeys{}, fmt.Errorf("sev: owner key agreement: %w", err)
	}
	w, err := wrapKeys(deriveKEK(shared, o.nonce[:]), tk)
	if err != nil {
		return nil, WrappedKeys{}, err
	}

	pages := (len(kernel) + hw.PageSize - 1) / hw.PageSize
	img := &EncryptedImage{}
	for i := 0; i < pages; i++ {
		var page [hw.PageSize]byte
		copy(page[:], kernel[i*hw.PageSize:])
		pkt, err := sealPacket(tk, uint64(i), page[:])
		if err != nil {
			return nil, WrappedKeys{}, err
		}
		img.Pages = append(img.Pages, pkt)
		img.Measurement = measureChain(img.Measurement, pkt.Tag)
	}
	return img, w, nil
}
