package isa

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := []Inst{
		{Op: OpNop},
		{Op: OpALU, Reg: 3},
		{Op: OpMovImm, Reg: 1, Imm: 0xDEADBEEFCAFE},
		{Op: OpLoad, Reg: 2, Imm: 0x1000},
		{Op: OpStore, Reg: 2, Imm: 0x2000},
		{Op: OpJmp, Rel: -12},
		{Op: OpCall, Rel: 1 << 20},
		{Op: OpCpuid},
		{Op: OpVmmcall},
		{Op: OpMovCR0, Reg: 4},
		{Op: OpMovCR3, Reg: 5},
		{Op: OpVmrun, Reg: 6},
		{Op: OpRet},
		{Op: OpHlt},
	}
	code := Assemble(prog)
	got, err := Disassemble(code)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, prog) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, prog)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, err := Decode([]byte{0xEE}); err == nil {
		t.Fatal("expected error for unknown opcode")
	}
	if _, _, err := Decode([]byte{byte(OpLoad), 1, 2}); err == nil {
		t.Fatal("expected error for truncated instruction")
	}
}

func TestPrivilegedClassification(t *testing.T) {
	for _, op := range []Op{OpMovCR0, OpMovCR3, OpMovCR4, OpWrmsr, OpVmrun, OpLgdt, OpLidt} {
		if !Privileged(op) {
			t.Errorf("%v should be privileged", op)
		}
	}
	for _, op := range []Op{OpNop, OpALU, OpLoad, OpStore, OpJmp, OpCall, OpRet, OpHlt, OpCpuid, OpVmmcall, OpMovImm} {
		if Privileged(op) {
			t.Errorf("%v should not be privileged", op)
		}
	}
}

func TestScannerFindsAlignedInstruction(t *testing.T) {
	code := Assemble([]Inst{
		{Op: OpNop},
		{Op: OpMovCR3, Reg: 1},
		{Op: OpRet},
	})
	fs := ScanPrivileged(code)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	if fs[0].Op != OpMovCR3 || fs[0].Offset != 1 || !fs[0].Aligned {
		t.Fatalf("unexpected finding %+v", fs[0])
	}
}

func TestScannerFindsUnalignedGadget(t *testing.T) {
	// A privileged opcode hidden inside a MOVI immediate: an attacker who
	// jumps into the middle of the instruction executes VMRUN.
	code := Assemble([]Inst{
		{Op: OpMovImm, Reg: 0, Imm: uint64(OpVmrun) | uint64(OpNop)<<8},
		{Op: OpRet},
	})
	fs := ScanPrivileged(code)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	if fs[0].Op != OpVmrun || fs[0].Aligned {
		t.Fatalf("expected unaligned vmrun gadget, got %+v", fs[0])
	}
	if fs[0].Offset != 2 {
		t.Fatalf("gadget at offset %d, want 2", fs[0].Offset)
	}
}

func TestMonopolised(t *testing.T) {
	code := Assemble([]Inst{
		{Op: OpNop},
		{Op: OpVmrun, Reg: 0},
	})
	if !Monopolised(code, map[int]Op{1: OpVmrun}) {
		t.Fatal("sanctioned copy should pass")
	}
	if Monopolised(code, nil) {
		t.Fatal("unsanctioned privileged instruction should fail")
	}
	if Monopolised(code, map[int]Op{1: OpMovCR0}) {
		t.Fatal("opcode mismatch should fail")
	}
}

func TestMonopolisedCatchesHiddenGadget(t *testing.T) {
	code := Assemble([]Inst{
		{Op: OpMovImm, Reg: 0, Imm: uint64(OpMovCR0)},
		{Op: OpRet},
	})
	if Monopolised(code, nil) {
		t.Fatal("scanner missed a privileged byte inside an immediate")
	}
}

func TestPropertyDecodeNeverPanicsAndLengthsAgree(t *testing.T) {
	f := func(b []byte) bool {
		in, n, err := Decode(b)
		if err != nil {
			return n == 0
		}
		if n != in.Op.Len() {
			return false
		}
		// Re-encoding the decoded instruction reproduces the prefix.
		enc := in.Encode(nil)
		if len(enc) != n {
			return false
		}
		for i := range enc {
			if enc[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScannerCompleteness(t *testing.T) {
	// Every privileged byte value present anywhere in the region must be
	// reported, whatever surrounds it.
	f := func(pre, post []byte, privIdx uint8) bool {
		op := Op(0xF0 + privIdx%7)
		code := append(append(append([]byte{}, pre...), byte(op)), post...)
		for _, f := range ScanPrivileged(code) {
			if f.Offset == len(pre) && f.Op == op {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpStringAndLen(t *testing.T) {
	if OpMovCR3.String() != "mov cr3" {
		t.Fatalf("got %q", OpMovCR3.String())
	}
	if Op(0xEE).String() != "op(0xee)" {
		t.Fatalf("got %q", Op(0xEE).String())
	}
	if Op(0xEE).Len() != 0 {
		t.Fatal("unknown opcode must have length 0")
	}
}
