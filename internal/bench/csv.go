package bench

import (
	"encoding/csv"
	"fmt"
	"io"

	"fidelius/internal/workload"
)

// CSV export, so the figure data can be re-plotted outside Go.

// WriteFigureCSV streams a figure's rows (plus the average) as CSV.
func WriteFigureCSV(w io.Writer, rows []FigRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "fidelius_pct", "fidelius_enc_pct", "paper_fid_pct", "paper_enc_pct"}); err != nil {
		return err
	}
	all := append(append([]FigRow{}, rows...), Average(rows))
	for _, r := range all {
		rec := []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Fid),
			fmt.Sprintf("%.3f", r.Enc),
			fmt.Sprintf("%.3f", r.PaperFid),
			fmt.Sprintf("%.3f", r.PaperEnc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFioCSV streams Table 3 as CSV.
func WriteFioCSV(w io.Writer, rows []FioRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"operation", "xen_cycles_per_sector", "fidelius_cycles_per_sector", "slowdown_pct", "paper_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Pattern.String(),
			fmt.Sprintf("%.1f", r.BaseCycles),
			fmt.Sprintf("%.1f", r.FidCycles),
			fmt.Sprintf("%.3f", r.Slowdown),
			fmt.Sprintf("%.3f", r.PaperSlowdown),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FioPatterns lists Table 3's patterns in row order, for callers driving
// runFio themselves.
var FioPatterns = []workload.FioPattern{
	workload.RandRead, workload.SeqRead, workload.RandWrite, workload.SeqWrite,
}
