package core

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"

	"fidelius/internal/hw"
	"fidelius/internal/migrate"
	"fidelius/internal/sev"
	"fidelius/internal/xen"
)

// Live migration glue: the internal/migrate engine drives the pre-copy
// protocol against these adapters, which translate its Source/Target
// operations into firmware commands (under the trusted context), NPT
// dirty-log operations (through the gatekeeper seam) and vCPU quanta.
//
// This is the deliberate retrofit beyond stock SEV that the paper stops
// short of (Section 4.3.6 supports only stop-and-copy): the guest's
// memory encryption runs off the ASID-installed Kvek in the controller,
// so the firmware context sitting in the sending state does not stop
// the vCPU — Fidelius keeps scheduling it and tracks its writes in the
// NPT dirty log until the final round.

// liveSource adapts one protected VM on this platform to migrate.Source.
type liveSource struct {
	f         *Fidelius
	d         *xen.Domain
	st        *VMState
	targetPub *ecdh.PublicKey
}

func (s *liveSource) Name() string         { return s.d.Name }
func (s *liveSource) MemPages() int        { return s.d.MemPages }
func (s *liveSource) BackedGFNs() []uint64 { return s.d.BackedGFNs() }

func (s *liveSource) StartDirty() error {
	return s.f.X.StartDirtyLog(s.d)
}

func (s *liveSource) CollectDirty() ([]uint64, error) {
	return s.f.X.CollectDirty(s.d)
}

func (s *liveSource) StopDirty() error {
	if s.d.Dirty == nil || !s.d.Dirty.Enabled() {
		return nil
	}
	return s.f.X.StopDirtyLog(s.d)
}

func (s *liveSource) SendStart() (sev.WrappedKeys, []byte, error) {
	defer s.f.enterTrusted()()
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return sev.WrappedKeys{}, nil, err
	}
	kwrap, err := s.f.M.FW.SendStart(s.st.Handle, s.targetPub, nonce)
	if err != nil {
		return sev.WrappedKeys{}, nil, err
	}
	return kwrap, nonce, nil
}

func (s *liveSource) SendPage(gfn uint64) (sev.Packet, error) {
	defer s.f.enterTrusted()()
	pfn, ok := s.d.GPAFrame(gfn)
	if !ok {
		return sev.Packet{}, fmt.Errorf("core: live migration gfn %d unbacked", gfn)
	}
	return s.f.M.FW.SendUpdate(s.st.Handle, pfn)
}

// SendPages implements migrate.BatchSource: one SEND_UPDATE fan-out over
// the firmware's worker pool per chunk, with packets (and sequence
// numbers) in gfn order.
func (s *liveSource) SendPages(gfns []uint64) ([]sev.Packet, error) {
	defer s.f.enterTrusted()()
	pfns := make([]hw.PFN, len(gfns))
	for i, gfn := range gfns {
		pfn, ok := s.d.GPAFrame(gfn)
		if !ok {
			return nil, fmt.Errorf("core: live migration gfn %d unbacked", gfn)
		}
		pfns[i] = pfn
	}
	return s.f.M.FW.SendUpdatePages(s.st.Handle, pfns)
}

func (s *liveSource) SendFinish() (sev.Measurement, error) {
	defer s.f.enterTrusted()()
	return s.f.M.FW.SendFinish(s.st.Handle)
}

func (s *liveSource) Cancel() error {
	defer s.f.enterTrusted()()
	return s.f.M.FW.SendCancel(s.st.Handle)
}

func (s *liveSource) RunQuantum() (bool, error) {
	return s.f.X.RunOnce(s.d)
}

func (s *liveSource) Cycles() uint64 {
	return s.f.M.Ctl.Cycles.Total()
}

// MigrateOutLive migrates a running protected VM to the platform behind
// conn using iterative pre-copy: the vCPU keeps executing between page
// sends while the NPT dirty log captures its writes, and only the final
// round stops it. On failure the engine cancels the SEND session and
// tears down the dirty log, leaving the source VM running and intact.
//
// cfg.StopAndCopy selects the offline baseline over the same transport,
// for downtime comparisons. A nil cfg.Hub defaults to this machine's hub.
func (f *Fidelius) MigrateOutLive(d *xen.Domain, targetPub *ecdh.PublicKey, conn migrate.Conn, cfg migrate.Config) (*migrate.Stats, error) {
	st, _ := f.lookupVM(d.ID)
	if st == nil {
		return nil, fmt.Errorf("core: domain %d is not a Fidelius-protected VM", d.ID)
	}
	if cfg.Hub == nil {
		cfg.Hub = f.hub()
	}
	return migrate.Send(&liveSource{f: f, d: d, st: st, targetPub: targetPub}, conn, cfg)
}

// liveTarget adapts this platform to migrate.Target: the domain is
// created on FrameStart, pages land via RECEIVE_UPDATE, and the final
// measurement check activates the VM.
type liveTarget struct {
	f         *Fidelius
	originPub *ecdh.PublicKey
	d         *xen.Domain
	h         sev.Handle
	active    bool
}

func (t *liveTarget) ReceiveStart(name string, memPages int, kwrap sev.WrappedKeys, nonce []byte) error {
	defer t.f.enterTrusted()()
	if t.d != nil {
		return fmt.Errorf("core: migration already started")
	}
	if memPages <= 0 {
		return fmt.Errorf("core: bad migration geometry: %d pages", memPages)
	}
	d, err := t.f.X.CreateDomain(xen.DomainConfig{
		Name:        name,
		MemPages:    memPages,
		SEV:         true,
		ExternalSEV: true,
	})
	if err != nil {
		return err
	}
	h, err := t.f.M.FW.ReceiveStart(kwrap, t.originPub, nonce)
	if err != nil {
		_ = t.f.X.DestroyDomain(d, true)
		return err
	}
	t.d, t.h = d, h
	return nil
}

func (t *liveTarget) ReceivePage(gfn uint64, pkt sev.Packet) error {
	defer t.f.enterTrusted()()
	if t.d == nil {
		return fmt.Errorf("core: page before migration start")
	}
	pfn, ok := t.d.GPAFrame(gfn)
	if !ok {
		return fmt.Errorf("core: migration gfn %d unbacked", gfn)
	}
	return t.f.M.FW.ReceiveUpdate(t.h, pfn, pkt)
}

func (t *liveTarget) ReceiveFinish(mvm sev.Measurement) error {
	defer t.f.enterTrusted()()
	if t.d == nil {
		return fmt.Errorf("core: finish before migration start")
	}
	if err := t.f.M.FW.ReceiveFinish(t.h, mvm); err != nil {
		return err
	}
	if err := t.f.M.FW.Activate(t.h, t.d.ASID); err != nil {
		return err
	}
	t.f.storeVM(&VMState{Dom: t.d, Handle: t.h})
	t.active = true
	return nil
}

// Abort scrubs the half-received VM: the firmware context is erased and
// the domain destroyed with its frames scrubbed.
func (t *liveTarget) Abort() error {
	defer t.f.enterTrusted()()
	if t.active || t.d == nil {
		return nil // nothing provisional to scrub
	}
	if t.h != 0 {
		_ = t.f.M.FW.Deactivate(t.h)
		_ = t.f.M.FW.Decommission(t.h)
	}
	err := t.f.X.DestroyDomain(t.d, true)
	t.d, t.h = nil, 0
	return err
}

// MigrateInLive runs the target side of a live migration arriving on
// conn from the platform identified by originPub, returning the
// activated domain. On abort (either side) any partially-received state
// is scrubbed.
func (f *Fidelius) MigrateInLive(conn migrate.Conn, originPub *ecdh.PublicKey) (*xen.Domain, error) {
	t := &liveTarget{f: f, originPub: originPub}
	if err := migrate.Receive(t, conn); err != nil {
		return nil, err
	}
	return t.d, nil
}
