// attacksim runs the adversary suite of Section 6 against one or both
// platform configurations and prints the outcome matrix.
//
// Usage:
//
//	attacksim [-config xen|fidelius|both] [-trace dir] [-metrics] [-ledger]
//
// -trace writes a Chrome trace_event timeline per attack into the
// directory; -metrics prints each attack's key telemetry counters
// (violations raised, gate crossings) next to its verdict; -ledger
// prints the security audit ledger each attack left behind (record
// count, classes, and whether the hash chain still verifies).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"fidelius/internal/attack"
)

var (
	traceDir = flag.String("trace", "", "write per-attack Chrome trace_event timelines into this directory")
	metrics  = flag.Bool("metrics", false, "print per-attack telemetry counters")
	ledger   = flag.Bool("ledger", false, "print each attack's audit-ledger summary (records, classes, chain verdict)")
)

// ledgerLine summarizes the audit trail one attack left behind:
// "<n> records [class xN, ...] chain=ok|BROKEN".
func ledgerLine(o attack.Outcome) string {
	byClass := map[string]int{}
	for _, r := range o.Audit {
		byClass[r.Class]++
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s x%d", c, byClass[c]))
	}
	verdict := "ok"
	if !o.AuditOK {
		verdict = "BROKEN"
	}
	return fmt.Sprintf("%d records [%s] chain=%s", len(o.Audit), strings.Join(parts, ", "), verdict)
}

func run(protected bool) {
	outcomes, err := attack.RunAllTo(protected, *traceDir)
	if err != nil {
		log.Fatal(err)
	}
	blocked := 0
	for _, o := range outcomes {
		fmt.Println(o)
		if *metrics {
			c := o.Metrics.Counters
			fmt.Printf("%-28s %-9s   violations.total=%d gate.type1=%d gate.type2=%d gate.type3=%d cpu.vmexits=%d\n",
				"", "", c["violations.total"], c["gate.type1"], c["gate.type2"], c["gate.type3"], c["cpu.vmexits"])
		}
		if *ledger {
			fmt.Printf("%-28s %-9s   ledger: %s\n", "", "", ledgerLine(o))
		}
		if !o.Succeeded {
			blocked++
		}
	}
	fmt.Printf("-- %d/%d attacks blocked --\n\n", blocked, len(outcomes))
}

func main() {
	config := flag.String("config", "both", "configuration to attack: xen, fidelius, or both")
	flag.Parse()

	fmt.Printf("%-28s %-9s %-9s %s\n", "attack", "config", "verdict", "detail")
	fmt.Println("--------------------------------------------------------------------------------")
	switch *config {
	case "xen":
		run(false)
	case "fidelius":
		run(true)
	case "both":
		run(false)
		run(true)
	default:
		log.Fatalf("unknown config %q", *config)
	}
}
