package hw

import (
	"fidelius/internal/cycles"
	"fidelius/internal/telemetry"
)

// Access describes one memory transaction as seen by the memory controller:
// the physical address, whether the translation carried the C-bit, and the
// ASID tag of the issuing context.
type Access struct {
	PA        PhysAddr
	Encrypted bool
	ASID      ASID
}

// Controller is the memory controller: every CPU-originated access goes
// through it, consulting the cache and the AES engine. DMA bypasses it via
// the DMA type.
type Controller struct {
	Mem    *Memory
	Eng    *Engine
	Cache  *Cache
	Cycles *cycles.Counter

	// Telem is this machine's telemetry hub: the controller owns it
	// because every layer above (MMU, CPU, SEV firmware, hypervisor)
	// already holds a controller reference, and the hub's clock is the
	// controller's cycle counter. Hub methods are nil-safe, so a
	// hand-built Controller{} without a hub still works.
	Telem *telemetry.Hub

	// Integ, when non-nil, is the optional Bonsai-Merkle integrity
	// engine of Section 8: protected lines are verified on every read
	// from DRAM and re-hashed on every mediated write. Physical writes
	// that bypass the controller (DMA, rowhammer) break verification.
	Integ *Integrity

	// Transaction accounting. Plain fields, same single-owner discipline
	// as Cycles: the vCPU handoff is synchronous, so exactly one
	// goroutine drives the controller at a time and the channel edges
	// order the increments. Served through Telem.Reg as reader funcs —
	// one accounting mechanism, no duplicate atomics on the hot path.
	reads, writes         uint64
	readBytes, writeBytes uint64
	decLines, encLines    uint64 // cache lines through the AES engine
	dmaReads, dmaWrites   uint64
}

// NewController wires a controller over memory with a cache of cacheLines
// lines.
func NewController(mem *Memory, cacheLines int) *Controller {
	c := &Controller{
		Mem:    mem,
		Eng:    NewEngine(),
		Cache:  NewCache(cacheLines),
		Cycles: &cycles.Counter{},
	}
	c.Telem = telemetry.New(c.Cycles.Total)
	reg := c.Telem.Reg
	reg.RegisterFunc("cycles.total", c.Cycles.Total)
	reg.RegisterFunc("mem.reads", func() uint64 { return c.reads })
	reg.RegisterFunc("mem.writes", func() uint64 { return c.writes })
	reg.RegisterFunc("mem.read_bytes", func() uint64 { return c.readBytes })
	reg.RegisterFunc("mem.write_bytes", func() uint64 { return c.writeBytes })
	reg.RegisterFunc("mem.dec_lines", func() uint64 { return c.decLines })
	reg.RegisterFunc("mem.enc_lines", func() uint64 { return c.encLines })
	reg.RegisterFunc("dma.reads", func() uint64 { return c.dmaReads })
	reg.RegisterFunc("dma.writes", func() uint64 { return c.dmaWrites })
	reg.RegisterFunc("cache.hits", func() uint64 { h, _ := c.Cache.Stats(); return h })
	reg.RegisterFunc("cache.misses", func() uint64 { _, m := c.Cache.Stats(); return m })
	reg.RegisterFunc("cache.lines", func() uint64 { return uint64(len(c.Cache.lines)) })
	reg.RegisterFunc("engine.keys", func() uint64 { return uint64(c.Eng.Keys()) })
	return c
}

func (c *Controller) charge(n uint64) {
	if c.Cycles != nil {
		c.Cycles.Charge(n)
	}
}

// Read performs a CPU read. Plaintext is returned for encrypted pages only
// when the issuing ASID's key is installed; a missing key is a fault.
//
// Cache hits return the cached plaintext regardless of the accessing ASID —
// this deliberately reproduces the pre-SNP micro-architecture the paper's
// inter-VM remapping attack exploits (Section 6.2, "a cache-hit may happen
// in a high probability to leak privacy").
func (c *Controller) Read(a Access, buf []byte) error {
	if err := c.Mem.check(a.PA, len(buf)); err != nil {
		return err
	}
	c.reads++
	c.readBytes += uint64(len(buf))
	decrypted := uint64(0)
	done := 0
	for done < len(buf) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		line, hit := c.Cache.Lookup(pa)
		if hit {
			c.charge(cycles.CacheAccess)
			copy(buf[done:done+n], line[off:off+n])
			done += n
			continue
		}
		c.charge(cycles.MemAccess)
		if a.Encrypted {
			c.charge(cycles.MemEncryptExtra)
		}
		if c.Integ != nil && c.Integ.Protected(base.Frame()) {
			c.charge(cycles.IntegrityCheck)
			if err := c.Integ.Verify(base, LineSize); err != nil {
				return err
			}
		}
		var fill [LineSize]byte
		end := base + LineSize
		span := LineSize
		if uint64(end) > c.Mem.Size() {
			span = int(PhysAddr(c.Mem.Size()) - base)
		}
		if err := c.Mem.ReadRaw(base, fill[:span]); err != nil {
			return err
		}
		if a.Encrypted {
			for b := 0; b+BlockSize <= span; b += BlockSize {
				if err := c.Eng.DecryptBlock(a.ASID, base+PhysAddr(b), fill[b:b+BlockSize]); err != nil {
					return err
				}
			}
			c.decLines++
			decrypted++
		}
		if span == LineSize {
			c.Cache.Fill(base, &fill)
		}
		copy(buf[done:done+n], fill[off:off+n])
		done += n
	}
	if decrypted > 0 && c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemDecrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			decrypted*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(buf)))
	}
	return nil
}

// Write performs a CPU write. The cache is write-through: DRAM always holds
// the current (ciphertext, for encrypted pages) contents.
func (c *Controller) Write(a Access, data []byte) error {
	if err := c.Mem.check(a.PA, len(data)); err != nil {
		return err
	}
	c.writes++
	c.writeBytes += uint64(len(data))
	// Update any cached plaintext lines in place (no write-allocate).
	done := 0
	for done < len(data) {
		pa := a.PA + PhysAddr(done)
		base := lineBase(pa)
		off := int(pa - base)
		n := LineSize - off
		if n > len(data)-done {
			n = len(data) - done
		}
		if line, ok := c.Cache.lines[base]; ok {
			copy(line[off:off+n], data[done:done+n])
		}
		done += n
	}
	// Charge per cache line touched, as the write buffer drains them.
	lines := uint64((a.PA+PhysAddr(len(data))-1)/LineSize - a.PA/LineSize + 1)
	c.charge(lines * cycles.MemAccess)
	defer func() {
		if c.Integ != nil {
			c.charge(lines * cycles.IntegrityCheck)
			_ = c.Integ.Update(a.PA, len(data))
		}
	}()
	if !a.Encrypted {
		return c.Mem.WriteRaw(a.PA, data)
	}
	c.charge(lines * cycles.MemEncryptExtra)
	c.encLines += lines
	if c.Telem.Tracing() {
		c.Telem.Emit(telemetry.KindMemEncrypt,
			c.Telem.VMForASID(uint32(a.ASID)), uint32(a.ASID),
			lines*cycles.MemEncryptExtra, uint64(a.PA), uint64(len(data)))
	}
	// Read-modify-write every overlapped 16-byte block through the engine.
	first := a.PA &^ (BlockSize - 1)
	last := (a.PA + PhysAddr(len(data)) - 1) &^ (BlockSize - 1)
	for b := first; b <= last; b += BlockSize {
		var blk [BlockSize]byte
		full := b >= a.PA && b+BlockSize <= a.PA+PhysAddr(len(data))
		if !full {
			if err := c.Mem.ReadRaw(b, blk[:]); err != nil {
				return err
			}
			if err := c.Eng.DecryptBlock(a.ASID, b, blk[:]); err != nil {
				return err
			}
		}
		lo := 0
		if b < a.PA {
			lo = int(a.PA - b)
		}
		hi := BlockSize
		if b+BlockSize > a.PA+PhysAddr(len(data)) {
			hi = int(a.PA + PhysAddr(len(data)) - b)
		}
		copy(blk[lo:hi], data[int(b)+lo-int(a.PA):])
		if err := c.Eng.EncryptBlock(a.ASID, b, blk[:]); err != nil {
			return err
		}
		if err := c.Mem.WriteRaw(b, blk[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadPage reads a full page.
func (c *Controller) ReadPage(pfn PFN, encrypted bool, asid ASID, buf *[PageSize]byte) error {
	return c.Read(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, buf[:])
}

// WritePage writes a full page.
func (c *Controller) WritePage(pfn PFN, encrypted bool, asid ASID, data *[PageSize]byte) error {
	return c.Write(Access{PA: pfn.Addr(), Encrypted: encrypted, ASID: asid}, data[:])
}

// FirmwareWrite stores bytes on behalf of the SEV firmware: raw DRAM
// write with cache invalidation and — because the firmware lives in the
// secure processor next to the BMT root — an integrity-tree update.
func (c *Controller) FirmwareWrite(pa PhysAddr, data []byte) error {
	c.Cache.Invalidate(pa, len(data))
	if err := c.Mem.WriteRaw(pa, data); err != nil {
		return err
	}
	if c.Integ != nil {
		return c.Integ.Update(pa, len(data))
	}
	return nil
}

// DMA is the I/O device view of memory: raw DRAM, no keys. SEV hardware
// forbids DMA into encrypted pages precisely because this path cannot
// decrypt; a DMA read of an encrypted page observes ciphertext.
type DMA struct {
	ctl *Controller
}

// DMA returns the DMA port of the controller.
func (c *Controller) DMA() *DMA { return &DMA{ctl: c} }

// Read copies raw DRAM bytes (ciphertext for encrypted pages).
func (d *DMA) Read(pa PhysAddr, buf []byte) error {
	d.ctl.charge(cycles.MemAccess)
	d.ctl.dmaReads++
	return d.ctl.Mem.ReadRaw(pa, buf)
}

// Write stores raw bytes and invalidates overlapping cache lines, exactly
// as a coherent DMA write would.
func (d *DMA) Write(pa PhysAddr, data []byte) error {
	d.ctl.charge(cycles.MemAccess)
	d.ctl.dmaWrites++
	d.ctl.Cache.Invalidate(pa, len(data))
	return d.ctl.Mem.WriteRaw(pa, data)
}
