package kv

import (
	"bytes"
	"testing"
)

func TestCoalescerMergesAdjacentWrites(t *testing.T) {
	cd := &countingDev{memDev: newMemDev(64)}
	c := NewWriteCoalescer(cd, 8)

	sec := func(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n*SectorSize) }
	if err := c.WriteSectors(2, sec(0xA1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSectors(3, sec(0xA2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSectors(5, sec(0xA3, 1)); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 0 {
		t.Fatalf("adjacent writes reached the device early: %d calls", cd.writeCalls)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 1 {
		t.Fatalf("flush issued %d requests, want 1", cd.writeCalls)
	}
	for i, b := range []byte{0xA1, 0xA2, 0xA2, 0xA3} {
		got := cd.data[(2+i)*SectorSize]
		if got != b {
			t.Fatalf("sector %d = %#x, want %#x", 2+i, got, b)
		}
	}
	st := c.Stats()
	if st.Writes != 3 || st.SeqWrites != 2 || st.Flushes != 1 || st.GroupCommits != 1 || st.MaxSpan != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCoalescerFlushesOnGap(t *testing.T) {
	cd := &countingDev{memDev: newMemDev(64)}
	c := NewWriteCoalescer(cd, 8)
	one := make([]byte, SectorSize)
	if err := c.WriteSectors(2, one); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSectors(10, one); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 1 {
		t.Fatalf("gap write flushed %d requests, want 1", cd.writeCalls)
	}
	st := c.Stats()
	if st.SeqWrites != 0 || st.GroupCommits != 0 {
		t.Fatalf("non-adjacent writes counted as sequential: %+v", st)
	}
	// Backward jump (the terminator-then-record pattern) also flushes.
	if err := c.WriteSectors(4, one); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 2 {
		t.Fatalf("backward write flushed %d requests, want 2", cd.writeCalls)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 3 {
		t.Fatalf("final flush: %d requests, want 3", cd.writeCalls)
	}
}

func TestCoalescerReadSeesPendingSpan(t *testing.T) {
	cd := &countingDev{memDev: newMemDev(64)}
	c := NewWriteCoalescer(cd, 8)
	payload := bytes.Repeat([]byte{0x5A}, SectorSize)
	if err := c.WriteSectors(4, payload); err != nil {
		t.Fatal(err)
	}
	// Disjoint read passes through without disturbing the span.
	buf := make([]byte, SectorSize)
	if err := c.ReadSectors(20, buf); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 0 {
		t.Fatal("disjoint read flushed the span")
	}
	// Overlapping read must observe the buffered write.
	if err := c.ReadSectors(4, buf); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 1 {
		t.Fatal("overlapping read did not flush the span")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("read missed the pending write")
	}
}

func TestCoalescerOversizedSpanPassesThrough(t *testing.T) {
	cd := &countingDev{memDev: newMemDev(64)}
	c := NewWriteCoalescer(cd, 4)
	big := bytes.Repeat([]byte{1}, 6*SectorSize)
	if err := c.WriteSectors(0, big); err != nil {
		t.Fatal(err)
	}
	if cd.writeCalls != 1 {
		t.Fatalf("oversized span buffered: %d calls", cd.writeCalls)
	}
	if st := c.Stats(); st.MaxSpan != 6 || st.Flushes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestStoreApplyThroughCoalescerTwoRequests is the heart of the group
// commit claim: a batched Apply through the coalescer reaches the block
// device as exactly two requests — the terminator, then the whole record
// span — regardless of batch depth.
func TestStoreApplyThroughCoalescerTwoRequests(t *testing.T) {
	cd := &countingDev{memDev: newMemDev(256)}
	c := NewWriteCoalescer(cd, 0)
	s, err := Open(c, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for i := 0; i < 7; i++ {
		ops = append(ops, Op{Key: string(rune('a' + i)), Value: bytes.Repeat([]byte{byte(i)}, 100*(i+1))})
	}
	before := cd.writeCalls
	if err := s.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if got := cd.writeCalls - before; got != 2 {
		t.Fatalf("batched Apply issued %d device requests, want 2", got)
	}
	// The span request is sequential from the old log head.
	if st := c.Stats(); st.GroupCommits < 1 || st.SeqWrites < uint64(len(ops)-1) {
		t.Fatalf("stats %+v: span did not coalesce", st)
	}
	// And the result replays (through a fresh coalescer, too).
	s2, err := Open(NewWriteCoalescer(cd.memDev, 0), 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(ops) {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), len(ops))
	}
}
