package migrate

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"fidelius/internal/sev"
	"fidelius/internal/telemetry"
)

// Source is the sending platform as the engine sees it. internal/core
// implements it over Fidelius and the firmware; tests implement fakes.
// The engine never touches guest plaintext: SendPage returns transport
// ciphertext produced inside the firmware.
type Source interface {
	Name() string
	MemPages() int
	// BackedGFNs lists the frames the full-copy round must ship.
	BackedGFNs() []uint64

	// StartDirty write-protects the guest and arms dirty tracking.
	StartDirty() error
	// CollectDirty drains the dirty set and re-protects it for the next
	// round.
	CollectDirty() ([]uint64, error)
	// StopDirty disarms tracking and restores full-speed mappings.
	StopDirty() error

	// SendStart opens the firmware SEND session wrapped for the target
	// platform, returning the wrapped transport keys and the nonce.
	SendStart() (sev.WrappedKeys, []byte, error)
	// SendPage produces the next transport packet for gfn. Sequence
	// numbers advance per call, so each transmitted packet is produced
	// exactly once and retries re-send the same packet.
	SendPage(gfn uint64) (sev.Packet, error)
	// SendFinish closes the session and returns Mvm.
	SendFinish() (sev.Measurement, error)
	// Cancel aborts the session (SEND_CANCEL) and resumes the guest.
	Cancel() error

	// RunQuantum executes one scheduling quantum of the source vCPU,
	// reporting done when the guest function has returned.
	RunQuantum() (bool, error)
	// Cycles reads the source machine's clock, for downtime measurement.
	Cycles() uint64
}

// BatchSource is an optional Source extension: a source that can produce
// several transport packets in one firmware command (bulk page crypto)
// implements it, and the engine then batches packet production per round
// chunk. Transmission stays serial — one frame per gfn, in order, with
// the same sequence numbers — so the wire protocol and the receiver are
// oblivious to batching.
type BatchSource interface {
	Source
	// SendPages produces one packet per gfn, in order, advancing the
	// session sequence exactly as len(gfns) SendPage calls would.
	SendPages(gfns []uint64) ([]sev.Packet, error)
}

// batchPages is the engine's packet-production chunk size for batch
// sources: big enough to amortise the fan-out, small enough that a live
// guest still gets its quanta at a reasonable cadence.
const batchPages = 32

// Config tunes the engine.
type Config struct {
	// MaxRounds forces the final stop-and-copy round after this many
	// pre-copy rounds regardless of convergence (default 8).
	MaxRounds int
	// FinalPages converges when a round's dirty set is at most this many
	// pages (default 8).
	FinalPages int
	// QuantaPerPage runs this many guest quanta per page sent during
	// pre-copy rounds (default 1) — the "source keeps running" knob.
	QuantaPerPage int
	// MaxRetries bounds retransmissions per frame (default 4).
	MaxRetries int
	// AckTimeout is the initial ack wait; it doubles on every retry of a
	// frame (default 100ms).
	AckTimeout time.Duration
	// StopAndCopy freezes the guest before the first page is sent — the
	// offline baseline, over the same transport, for downtime
	// comparisons.
	StopAndCopy bool
	// Hub, when set, receives migration telemetry.
	Hub *telemetry.Hub
}

func (c Config) withDefaults() Config {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 8
	}
	if c.FinalPages <= 0 {
		c.FinalPages = 8
	}
	if c.QuantaPerPage <= 0 {
		c.QuantaPerPage = 1
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 100 * time.Millisecond
	}
	return c
}

// Stats is the engine's account of one migration.
type Stats struct {
	// Rounds counts memory-copy rounds, including round 0 (full copy)
	// and the final stop-and-copy round.
	Rounds int
	// PagesPerRound is the page count shipped in each round.
	PagesPerRound []int
	// PagesSent is the total packets shipped (retries not included).
	PagesSent int
	// Redirtied is the number of page sends beyond the first copy of
	// each frame — the re-dirtied traffic pre-copy pays for liveness.
	Redirtied int
	// BytesOnWire is the modelled wire volume including retransmissions
	// and acks are not counted (they flow the other way).
	BytesOnWire uint64
	// Retries counts frame retransmissions.
	Retries int
	// DowntimeCycles is the source-clock span from vCPU freeze to the
	// target's final-round acknowledgement.
	DowntimeCycles uint64
	// ForcedFinal reports that the convergence heuristic gave up (dirty
	// rate outran the link) rather than converged.
	ForcedFinal bool
	// GuestDone reports that the guest function returned during the
	// migration (the vCPU had nothing left to run).
	GuestDone bool
}

// ErrAborted reports a migration torn down by either side.
var ErrAborted = errors.New("migrate: migration aborted")

type sender struct {
	src   Source
	conn  Conn
	cfg   Config
	stats *Stats
	seq   uint64
}

// Send drives a live pre-copy migration of src over conn. On any
// transport or protocol failure the source is cancelled back to the
// running state and the error returned; the returned Stats are valid in
// both outcomes. The frozen window (downtime) spans only the final round.
//
// Note the deliberate divergence from stock SEV semantics the paper
// adopts (Section 4.3.6): SEND_START there stops guest execution for the
// whole transfer. Here execution continues through the pre-copy rounds —
// the memory key stays installed in the controller, so the running guest
// is unaffected by the firmware context sitting in the sending state —
// and only the final round stops the vCPU.
func Send(src Source, conn Conn, cfg Config) (*Stats, error) {
	s := &sender{src: src, conn: conn, cfg: cfg.withDefaults(), stats: &Stats{}}
	sp := s.cfg.Hub.OpenScope("migrate-send", 0, 0).Attr("source", src.Name())
	defer sp.Close()
	err := s.run()
	if err != nil {
		s.abort(err)
		if s.cfg.Hub != nil {
			s.cfg.Hub.Reg.Counter("migrate.aborts").Inc()
			if s.cfg.Hub.Auditing() {
				s.cfg.Hub.Audit("migrate-abort", 0, err.Error())
			}
		}
	}
	s.publish()
	return s.stats, err
}

func (s *sender) run() error {
	kwrap, nonce, err := s.src.SendStart()
	if err != nil {
		return err
	}
	if err := s.xfer(&Frame{
		Type:     FrameStart,
		Name:     s.src.Name(),
		MemPages: s.src.MemPages(),
		Kwrap:    kwrap,
		Nonce:    nonce,
	}); err != nil {
		return err
	}

	if s.cfg.StopAndCopy {
		// Baseline: freeze first, ship everything once, finish.
		freeze := s.src.Cycles()
		if err := s.sendRound(0, s.src.BackedGFNs(), false); err != nil {
			return err
		}
		if err := s.finish(); err != nil {
			return err
		}
		s.stats.DowntimeCycles = s.src.Cycles() - freeze
		return nil
	}

	if err := s.src.StartDirty(); err != nil {
		return err
	}

	// Round 0: full copy with the guest running.
	if err := s.sendRound(0, s.src.BackedGFNs(), true); err != nil {
		return err
	}

	// Pre-copy rounds: ship each round's dirty set while the guest keeps
	// dirtying, until the working set converges below FinalPages — or
	// until the heuristic concludes it never will (the dirty rate matches
	// or outruns what a round can ship) and forces the final round.
	prev := -1
	for round := 1; ; round++ {
		dirty, err := s.src.CollectDirty()
		if err != nil {
			return err
		}
		final := false
		switch {
		case len(dirty) <= s.cfg.FinalPages:
			final = true
		case round >= s.cfg.MaxRounds:
			final, s.stats.ForcedFinal = true, true
		case prev >= 0 && len(dirty) >= prev:
			// The dirty set stopped shrinking: sending a round's pages
			// re-dirties at least as many. More rounds only burn wire.
			final, s.stats.ForcedFinal = true, true
		}
		prev = len(dirty)
		if !final {
			if err := s.sendRound(round, dirty, true); err != nil {
				return err
			}
			continue
		}
		// Final stop-and-copy round: the vCPU freezes (no more quanta),
		// the residual dirty set drains, and the measurement seals the
		// stream. Downtime is everything from here to the target's
		// final ack.
		freeze := s.src.Cycles()
		if err := s.src.StopDirty(); err != nil {
			return err
		}
		if err := s.sendRound(round, dirty, false); err != nil {
			return err
		}
		if err := s.finish(); err != nil {
			return err
		}
		s.stats.DowntimeCycles = s.src.Cycles() - freeze
		return nil
	}
}

func (s *sender) finish() error {
	mvm, err := s.src.SendFinish()
	if err != nil {
		return err
	}
	return s.xfer(&Frame{Type: FrameFinish, Mvm: mvm, Round: s.stats.Rounds - 1})
}

// sendRound ships one round of pages, optionally interleaving guest
// quanta so the source stays live. Batch-capable sources produce packets
// in chunks; frames still go out one per gfn, in order, so the receiver
// and the wire protocol are unchanged. A batched live round snapshots
// each chunk before its quanta run — any write that lands after the
// snapshot is caught by the dirty log and re-sent, exactly as with
// per-page production.
func (s *sender) sendRound(round int, gfns []uint64, live bool) error {
	sp := s.cfg.Hub.OpenScope("migrate-round", 0, 0).
		Attr("round", strconv.Itoa(round)).
		Attr("pages", strconv.Itoa(len(gfns)))
	defer sp.Close()
	bs, _ := s.src.(BatchSource)
	for rest := gfns; len(rest) > 0; {
		n := len(rest)
		if bs != nil && n > batchPages {
			n = batchPages
		}
		chunk := rest[:n]
		rest = rest[n:]
		var pkts []sev.Packet
		if bs != nil {
			var err error
			pkts, err = bs.SendPages(chunk)
			if err != nil {
				return err
			}
			if len(pkts) != len(chunk) {
				return fmt.Errorf("migrate: batch source returned %d packets for %d pages", len(pkts), len(chunk))
			}
		}
		for i, gfn := range chunk {
			var pkt sev.Packet
			if bs != nil {
				pkt = pkts[i]
			} else {
				var err error
				pkt, err = s.src.SendPage(gfn)
				if err != nil {
					return err
				}
			}
			if err := s.xfer(&Frame{Type: FramePage, Round: round, GFN: gfn, Pkt: pkt}); err != nil {
				return err
			}
			s.stats.PagesSent++
			if round > 0 {
				s.stats.Redirtied++
			}
			if live && !s.stats.GuestDone {
				for q := 0; q < s.cfg.QuantaPerPage; q++ {
					done, err := s.src.RunQuantum()
					if err != nil {
						return fmt.Errorf("migrate: source guest failed mid-migration: %w", err)
					}
					if done {
						s.stats.GuestDone = true
						break
					}
				}
			}
		}
	}
	s.stats.Rounds++
	s.stats.PagesPerRound = append(s.stats.PagesPerRound, len(gfns))
	if h := s.cfg.Hub; h != nil {
		h.Reg.Counter("migrate.rounds").Inc()
		h.Reg.Counter("migrate.pages_sent").Add(uint64(len(gfns)))
		if h.Tracing() {
			h.Emit(telemetry.KindMigrateRound, 0, 0, 0, uint64(round), uint64(len(gfns)))
		}
	}
	return nil
}

// xfer sends one frame reliably: stop-and-wait with per-frame sequence
// numbers, bounded retries and exponential backoff. A receiver nack (bad
// tag after in-flight tampering, say) retries the same frame; retry
// exhaustion is the abort trigger.
func (s *sender) xfer(f *Frame) error {
	f.Seq = s.seq
	timeout := s.cfg.AckTimeout
	lastErr := "no acknowledgement"
	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			s.stats.Retries++
			if s.cfg.Hub != nil {
				s.cfg.Hub.Reg.Counter("migrate.retries").Inc()
			}
		}
		if err := s.conn.Send(f); err != nil {
			return err
		}
		s.stats.BytesOnWire += WireSize(f)
		ack, err := s.waitAck(f.Seq, timeout)
		switch {
		case err == nil && ack.OK:
			s.seq++
			return nil
		case err == nil:
			lastErr = ack.Err
		case errors.Is(err, ErrTimeout):
			lastErr = "ack timeout"
		default:
			return err
		}
		timeout *= 2
	}
	return fmt.Errorf("%w: %v frame seq %d undeliverable after %d retries: %s",
		ErrAborted, f.Type, f.Seq, s.cfg.MaxRetries, lastErr)
}

func (s *sender) waitAck(seq uint64, timeout time.Duration) (*Frame, error) {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, ErrTimeout
		}
		f, err := s.conn.Recv(remain)
		if err != nil {
			return nil, err
		}
		switch {
		case f.Type == FrameAbort:
			return nil, fmt.Errorf("%w by receiver: %s", ErrAborted, f.Err)
		case f.Type == FrameAck && f.AckSeq == seq:
			return f, nil
		}
		// Stale ack from a duplicated frame: keep waiting.
	}
}

// abort tears the migration down after a failure: best-effort abort frame
// to the peer, then SEND_CANCEL and dirty-log teardown so the source VM
// is intact and runnable.
func (s *sender) abort(cause error) {
	_ = s.conn.Send(&Frame{Type: FrameAbort, Seq: s.seq, Err: cause.Error()})
	_ = s.src.StopDirty()
	_ = s.src.Cancel()
}

func (s *sender) publish() {
	h := s.cfg.Hub
	if h == nil {
		return
	}
	h.Reg.Counter("migrate.redirtied").Add(uint64(s.stats.Redirtied))
	h.Reg.Counter("migrate.bytes_wire").Add(s.stats.BytesOnWire)
	h.Reg.Gauge("migrate.downtime_cycles").Set(int64(s.stats.DowntimeCycles))
	h.Reg.Gauge("migrate.last_rounds").Set(int64(s.stats.Rounds))
	if h.Tracing() {
		h.Emit(telemetry.KindMigrateDone, 0, 0, s.stats.DowntimeCycles,
			uint64(s.stats.Rounds), s.stats.DowntimeCycles)
	}
}
