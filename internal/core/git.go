package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fidelius/internal/hw"
	"fidelius/internal/xen"
)

// GITEntrySize is the marshalled size of one grant-information entry.
const GITEntrySize = 32

// GITEntriesPerPage is the number of entries per GIT page.
const GITEntriesPerPage = hw.PageSize / GITEntrySize

// GITEntry is one grant-information record, created by the initiator's
// pre_sharing_op hypercall before any grant-table entry exists (Section
// 5.2): which domain shares which of its frames with whom, and with what
// permission. Fidelius later validates every grant-table and NPT update
// against these records.
type GITEntry struct {
	Valid     bool
	Initiator xen.DomID
	Target    xen.DomID
	ReadOnly  bool
	// GFNStart is the first shared frame in the initiator's space.
	GFNStart uint64
	// PFNStart is the corresponding first host frame, resolved when the
	// record is created.
	PFNStart hw.PFN
	Count    uint64
}

func (e GITEntry) marshal(b []byte) {
	le := binary.LittleEndian
	var flags uint16
	if e.Valid {
		flags |= 1
	}
	if e.ReadOnly {
		flags |= 2
	}
	le.PutUint16(b[0:], flags)
	le.PutUint16(b[2:], uint16(e.Initiator))
	le.PutUint16(b[4:], uint16(e.Target))
	le.PutUint64(b[8:], e.GFNStart)
	le.PutUint64(b[16:], uint64(e.PFNStart))
	le.PutUint64(b[24:], e.Count)
}

func unmarshalGITEntry(b []byte) GITEntry {
	le := binary.LittleEndian
	flags := le.Uint16(b[0:])
	return GITEntry{
		Valid:     flags&1 != 0,
		ReadOnly:  flags&2 != 0,
		Initiator: xen.DomID(le.Uint16(b[2:])),
		Target:    xen.DomID(le.Uint16(b[4:])),
		GFNStart:  le.Uint64(b[8:]),
		PFNStart:  hw.PFN(le.Uint64(b[16:])),
		Count:     le.Uint64(b[24:]),
	}
}

// CoversPFN reports whether the record covers a host frame.
func (e GITEntry) CoversPFN(pfn hw.PFN) bool {
	return e.Valid && pfn >= e.PFNStart && uint64(pfn-e.PFNStart) < e.Count
}

// CoversGFN reports whether the record covers an initiator frame.
func (e GITEntry) CoversGFN(gfn uint64) bool {
	return e.Valid && gfn >= e.GFNStart && gfn-e.GFNStart < e.Count
}

// ErrGITFull reports GIT exhaustion.
var ErrGITFull = errors.New("core: grant information table full")

// GIT is the grant information table, stored in a Fidelius-owned page
// mapped read-only to the hypervisor.
type GIT struct {
	ctl     *hw.Controller
	PagePFN hw.PFN
}

// NewGIT allocates and zeroes the GIT page.
func NewGIT(ctl *hw.Controller, alloc *xen.FrameAlloc) (*GIT, error) {
	pfn, err := alloc.Alloc(xen.UseFidelius, 0)
	if err != nil {
		return nil, err
	}
	var zero [hw.PageSize]byte
	if err := ctl.Mem.WriteRaw(pfn.Addr(), zero[:]); err != nil {
		return nil, err
	}
	ctl.Cache.Invalidate(pfn.Addr(), hw.PageSize)
	return &GIT{ctl: ctl, PagePFN: pfn}, nil
}

// Entry reads record i.
func (g *GIT) Entry(i int) (GITEntry, error) {
	if i < 0 || i >= GITEntriesPerPage {
		return GITEntry{}, fmt.Errorf("core: git index %d out of range", i)
	}
	var b [GITEntrySize]byte
	if err := g.ctl.Read(hw.Access{PA: g.PagePFN.Addr() + hw.PhysAddr(i*GITEntrySize)}, b[:]); err != nil {
		return GITEntry{}, err
	}
	return unmarshalGITEntry(b[:]), nil
}

// set writes record i.
func (g *GIT) set(i int, e GITEntry) error {
	var b [GITEntrySize]byte
	e.marshal(b[:])
	return g.ctl.Write(hw.Access{PA: g.PagePFN.Addr() + hw.PhysAddr(i*GITEntrySize)}, b[:])
}

// Add appends a record into the first free slot.
func (g *GIT) Add(e GITEntry) error {
	for i := 0; i < GITEntriesPerPage; i++ {
		cur, err := g.Entry(i)
		if err != nil {
			return err
		}
		if !cur.Valid {
			e.Valid = true
			return g.set(i, e)
		}
	}
	return ErrGITFull
}

// Find returns the first valid record matching pred.
func (g *GIT) Find(pred func(GITEntry) bool) (GITEntry, bool, error) {
	for i := 0; i < GITEntriesPerPage; i++ {
		e, err := g.Entry(i)
		if err != nil {
			return GITEntry{}, false, err
		}
		if e.Valid && pred(e) {
			return e, true, nil
		}
	}
	return GITEntry{}, false, nil
}

// RemoveFor invalidates every record involving the domain (teardown).
func (g *GIT) RemoveFor(dom xen.DomID) error {
	for i := 0; i < GITEntriesPerPage; i++ {
		e, err := g.Entry(i)
		if err != nil {
			return err
		}
		if e.Valid && (e.Initiator == dom || e.Target == dom) {
			if err := g.set(i, GITEntry{}); err != nil {
				return err
			}
		}
	}
	return nil
}
