package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed event sequence covering every export shape:
// spans, instants, details, multiple VMs/ASIDs, and an out-of-order
// timestamp (the exporter must sort).
func goldenEvents() []Event {
	return []Event{
		{Seq: 0, TS: 100, Dur: 306, Kind: KindGate1, VM: 1, ASID: 1},
		{Seq: 1, TS: 500, Dur: 661, Kind: KindShadowVerify, VM: 1, ASID: 1},
		{Seq: 2, TS: 1200, Kind: KindNPTViolation, VM: 2, ASID: 2, Arg1: 0x7000},
		{Seq: 3, TS: 900, Dur: 5000, Kind: KindSEVCommand, VM: 0, ASID: 0, Arg1: 1, Detail: "launch-start"},
		{Seq: 4, TS: 2000, Dur: 128, Kind: KindMemEncrypt, VM: 1, ASID: 1, Arg1: 0x1000, Arg2: 64},
		{Seq: 5, TS: 2500, Kind: KindViolation, VM: 2, ASID: 2, Detail: "write-once: PIT overwrite"},
	}
}

// TestChromeTraceGolden locks the exporter's byte-exact output. Regenerate
// with: go test ./internal/telemetry -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	names := map[uint32]string{1: "guest-a", 2: "guest-b"}
	if err := WriteChromeTrace(&buf, goldenEvents(), names); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceStructure validates the export semantically: valid JSON,
// sorted timestamps, metadata naming, µs conversion, span vs instant
// phases.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	names := map[uint32]string{1: "guest-a", 2: "guest-b"}
	if err := WriteChromeTrace(&buf, goldenEvents(), names); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var meta, spans, instants int
	procNames := map[float64]string{}
	lastTS := -1.0
	for _, e := range trace.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
			if e["name"] == "process_name" {
				args := e["args"].(map[string]any)
				procNames[e["pid"].(float64)] = args["name"].(string)
			}
		case "X":
			spans++
			if _, ok := e["dur"]; !ok {
				t.Errorf("span without dur: %v", e)
			}
			ts := e["ts"].(float64)
			if ts < lastTS {
				t.Errorf("timestamps not sorted: %v after %v", ts, lastTS)
			}
			lastTS = ts
		case "i":
			instants++
			if e["s"] != "t" {
				t.Errorf("instant without thread scope: %v", e)
			}
			ts := e["ts"].(float64)
			if ts < lastTS {
				t.Errorf("timestamps not sorted: %v after %v", ts, lastTS)
			}
			lastTS = ts
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if spans != 4 || instants != 2 {
		t.Errorf("spans=%d instants=%d, want 4/2", spans, instants)
	}
	if procNames[0] != "host" || procNames[1] != "guest-a" || procNames[2] != "guest-b" {
		t.Errorf("process names = %v", procNames)
	}

	// The SEV command at cycle 900 must convert to 900/3400 µs.
	found := false
	for _, e := range trace.TraceEvents {
		if e["name"] == "sev-command" {
			found = true
			wantTS := 900.0 / CyclesPerMicrosecond
			if ts := e["ts"].(float64); ts != wantTS {
				t.Errorf("sev-command ts = %v, want %v", ts, wantTS)
			}
			args := e["args"].(map[string]any)
			if args["detail"] != "launch-start" {
				t.Errorf("detail = %v", args["detail"])
			}
			if args["cycles"].(float64) != 5000 {
				t.Errorf("cycles = %v", args["cycles"])
			}
		}
	}
	if !found {
		t.Error("sev-command event missing from export")
	}
}

// TestHubWriteChromeTrace exports straight from a hub's live tracer.
func TestHubWriteChromeTrace(t *testing.T) {
	clock := uint64(0)
	h := New(func() uint64 { return clock })
	h.NameVM(1, "vm-one")
	h.StartTrace(16)
	clock = 3400
	h.Emit(KindVMExit, 1, 1, 1200, 0x64, 0)
	var buf bytes.Buffer
	if err := h.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"vm-one"`)) {
		t.Error("VM name missing from hub export")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"vmexit"`)) {
		t.Error("vmexit event missing from hub export")
	}
}
