// xsastats prints the quantitative Xen Security Advisory analysis of
// Section 6.2: how many of the 235 XSAs Fidelius thwarts, and through
// which mechanism.
//
// Usage:
//
//	xsastats [-mechanisms]
package main

import (
	"flag"
	"fmt"

	"fidelius/internal/xsa"
)

func main() {
	mechanisms := flag.Bool("mechanisms", false, "list each thwarted advisory and its blocking mechanism")
	flag.Parse()

	corpus := xsa.Corpus()
	fmt.Print(xsa.Analyze(corpus))

	if *mechanisms {
		fmt.Println("\nThwarted advisories:")
		for _, a := range corpus {
			if a.Thwarted() {
				fmt.Printf("  XSA-%-4d %-22s %s\n", a.ID, a.Class, a.Mechanism)
			}
		}
	}
}
