// attacksim runs the adversary suite of Section 6 against one or both
// platform configurations and prints the outcome matrix.
//
// Usage:
//
//	attacksim [-config xen|fidelius|both] [-trace dir] [-metrics]
//
// -trace writes a Chrome trace_event timeline per attack into the
// directory; -metrics prints each attack's key telemetry counters
// (violations raised, gate crossings) next to its verdict.
package main

import (
	"flag"
	"fmt"
	"log"

	"fidelius/internal/attack"
)

var (
	traceDir = flag.String("trace", "", "write per-attack Chrome trace_event timelines into this directory")
	metrics  = flag.Bool("metrics", false, "print per-attack telemetry counters")
)

func run(protected bool) {
	outcomes, err := attack.RunAllTo(protected, *traceDir)
	if err != nil {
		log.Fatal(err)
	}
	blocked := 0
	for _, o := range outcomes {
		fmt.Println(o)
		if *metrics {
			c := o.Metrics.Counters
			fmt.Printf("%-28s %-9s   violations.total=%d gate.type1=%d gate.type2=%d gate.type3=%d cpu.vmexits=%d\n",
				"", "", c["violations.total"], c["gate.type1"], c["gate.type2"], c["gate.type3"], c["cpu.vmexits"])
		}
		if !o.Succeeded {
			blocked++
		}
	}
	fmt.Printf("-- %d/%d attacks blocked --\n\n", blocked, len(outcomes))
}

func main() {
	config := flag.String("config", "both", "configuration to attack: xen, fidelius, or both")
	flag.Parse()

	fmt.Printf("%-28s %-9s %-9s %s\n", "attack", "config", "verdict", "detail")
	fmt.Println("--------------------------------------------------------------------------------")
	switch *config {
	case "xen":
		run(false)
	case "fidelius":
		run(true)
	case "both":
		run(false)
		run(true)
	default:
		log.Fatalf("unknown config %q", *config)
	}
}
