// Extensions: the paper's Section 8 hardware suggestions in action —
// remote attestation of the trusted context, portable encrypted kernel
// images with customized keys (SETENC_GEK / ENC / DEC), and
// Bonsai-Merkle-tree memory integrity that turns silent rowhammer
// corruption into detected tampering.
//
// Run with: go run ./examples/extensions
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidelius"
)

func main() {
	// Two independent cloud machines.
	platA, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	platB, err := fidelius.NewPlatform(fidelius.Config{Protected: true})
	if err != nil {
		log.Fatal(err)
	}

	// --- Remote attestation (§4.3.1) -------------------------------
	fmt.Println("[attestation]")
	nonce := []byte("fresh-verifier-nonce")
	quote, err := platA.Attest(nonce)
	if err != nil {
		log.Fatal(err)
	}
	keyA, _ := platA.AttestationKey()
	if err := fidelius.VerifyQuote(keyA, quote, nonce); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  platform A quote verified; hypervisor measurement %x…\n", quote.HVMeasurement[:8])
	keyB, _ := platB.AttestationKey()
	if err := fidelius.VerifyQuote(keyB, quote, nonce); err != nil {
		fmt.Printf("  platform B's key rejects A's quote: good (%v)\n", err)
	}

	// --- Customized keys: one image, many platforms (§8) ------------
	fmt.Println("[customized keys]")
	owner, _ := fidelius.NewOwner()
	kernel := bytes.Repeat([]byte("WRITE-ONCE-RUN-ANYWHERE-KERNEL!!"), 128)
	img, gek, err := fidelius.PrepareGEKGuest(owner, kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  image prepared offline with NO platform key: %d pages\n", img.NumPages())
	for i, plat := range []*fidelius.Platform{platA, platB} {
		bundle, err := fidelius.BindGEKGuest(owner, plat.PlatformKey(), img, gek)
		if err != nil {
			log.Fatal(err)
		}
		vm, err := plat.LaunchVMFromGEK(fmt.Sprintf("portable-%c", 'A'+i), 48, bundle)
		if err != nil {
			log.Fatal(err)
		}
		head := make([]byte, 32)
		kbase := uint64(vm.MemPages-img.NumPages()) * fidelius.PageSize
		plat.StartVCPU(vm, func(g *fidelius.GuestEnv) error { return g.Read(kbase, head) })
		if err := plat.Run(vm); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  same image booted on platform %c: %q\n", 'A'+i, head[:24])
	}

	// --- Bonsai-Merkle integrity (§8) -------------------------------
	fmt.Println("[integrity]")
	bundle, err := fidelius.BindGEKGuest(owner, platA.PlatformKey(), img, gek)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := platA.LaunchVMFromGEK("guarded", 48, bundle)
	if err != nil {
		log.Fatal(err)
	}
	platA.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		return g.Write(0x5000, []byte("precious data"))
	})
	if err := platA.Run(vm); err != nil {
		log.Fatal(err)
	}
	if err := platA.EnableIntegrity(vm); err != nil {
		log.Fatal(err)
	}
	// Rowhammer the guest's DRAM.
	pfn, _ := vm.GPAFrame(5)
	platA.X.M.Ctl.Mem.FlipBit(pfn.Addr()+2, 4)
	platA.X.M.Ctl.Cache.Flush()
	platA.StartVCPU(vm, func(g *fidelius.GuestEnv) error {
		if err := g.Read(0x5000, make([]byte, 13)); err != nil {
			fmt.Printf("  rowhammer flip DETECTED at read time: %v\n", err)
			return nil
		}
		fmt.Println("  rowhammer flip went unnoticed (should not happen)")
		return nil
	})
	if err := platA.Run(vm); err != nil {
		log.Fatal(err)
	}
	// Attestation now covers the tree root.
	q2, _ := platA.Attest([]byte("post-enable"))
	fmt.Printf("  quotes now bind the integrity root: %x…\n", q2.IntegrityRoot[:8])
}
