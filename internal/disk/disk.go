// Package disk provides the sector-addressed backing store behind the PV
// block backend, plus the Kblk image cipher the guest owner uses to
// pre-encrypt disk images (Section 4.3.2).
//
// The image cipher is an XEX construction tweaked by byte offset, so
// identical sectors at different LBAs encrypt differently — the same
// property the memory engine has, applied at rest.
package disk

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// SectorSize is the disk sector size in bytes.
const SectorSize = 512

// ErrOutOfRange reports an access beyond the end of the disk.
var ErrOutOfRange = errors.New("disk: sector out of range")

// Disk is a flat array of sectors. It stores exactly the bytes it is
// given: ciphertext if the writer encrypts, plaintext if not — the
// backend and the physical disk are both outside the trust boundary.
type Disk struct {
	data []byte
}

// New returns a zeroed disk with the given number of sectors.
func New(sectors int) *Disk {
	return &Disk{data: make([]byte, sectors*SectorSize)}
}

// Sectors reports the disk capacity in sectors.
func (d *Disk) Sectors() int { return len(d.data) / SectorSize }

func (d *Disk) check(lba uint64, n int) error {
	if (lba+uint64(n))*SectorSize > uint64(len(d.data)) {
		return fmt.Errorf("%w: lba %d + %d", ErrOutOfRange, lba, n)
	}
	return nil
}

// ReadSector copies one sector into buf (len >= SectorSize).
func (d *Disk) ReadSector(lba uint64, buf []byte) error {
	if err := d.check(lba, 1); err != nil {
		return err
	}
	copy(buf[:SectorSize], d.data[lba*SectorSize:])
	return nil
}

// WriteSector stores one sector.
func (d *Disk) WriteSector(lba uint64, data []byte) error {
	if err := d.check(lba, 1); err != nil {
		return err
	}
	if len(data) < SectorSize {
		return fmt.Errorf("disk: short sector write (%d bytes)", len(data))
	}
	copy(d.data[lba*SectorSize:(lba+1)*SectorSize], data)
	return nil
}

// Snapshot returns a copy of the raw disk contents — the view of anyone
// holding the physical medium or the backend.
func (d *Disk) Snapshot() []byte {
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}

// ImageCipher encrypts disk sectors under the guest owner's block key
// Kblk. It is used by the owner to prepare the image and by the guest's
// front-end driver (with AES-NI) at runtime.
type ImageCipher struct {
	data  cipher.Block
	tweak cipher.Block
}

// NewImageCipher derives the XEX subkeys from Kblk.
func NewImageCipher(kblk [32]byte) (*ImageCipher, error) {
	dk := sha256.Sum256(append([]byte("kblk-data:"), kblk[:]...))
	tk := sha256.Sum256(append([]byte("kblk-tweak:"), kblk[:]...))
	data, err := aes.NewCipher(dk[:16])
	if err != nil {
		return nil, err
	}
	tweak, err := aes.NewCipher(tk[:16])
	if err != nil {
		return nil, err
	}
	return &ImageCipher{data: data, tweak: tweak}, nil
}

func (c *ImageCipher) tweakFor(off uint64) [16]byte {
	var in, out [16]byte
	binary.LittleEndian.PutUint64(in[:8], off)
	c.tweak.Encrypt(out[:], in[:])
	return out
}

func (c *ImageCipher) xex(lba uint64, b []byte, encrypt bool) error {
	if len(b)%16 != 0 {
		return fmt.Errorf("disk: buffer length %d not block aligned", len(b))
	}
	for i := 0; i < len(b); i += 16 {
		t := c.tweakFor(lba*SectorSize + uint64(i))
		for j := 0; j < 16; j++ {
			b[i+j] ^= t[j]
		}
		if encrypt {
			c.data.Encrypt(b[i:i+16], b[i:i+16])
		} else {
			c.data.Decrypt(b[i:i+16], b[i:i+16])
		}
		for j := 0; j < 16; j++ {
			b[i+j] ^= t[j]
		}
	}
	return nil
}

// EncryptSector encrypts a sector-sized buffer in place for the given LBA.
func (c *ImageCipher) EncryptSector(lba uint64, b []byte) error { return c.xex(lba, b, true) }

// DecryptSector decrypts a sector-sized buffer in place for the given LBA.
func (c *ImageCipher) DecryptSector(lba uint64, b []byte) error { return c.xex(lba, b, false) }

// EncryptImage encrypts a whole image starting at LBA 0, padding to a
// sector boundary. Used by the owner's offline preparation.
func (c *ImageCipher) EncryptImage(plain []byte) ([]byte, error) {
	n := (len(plain) + SectorSize - 1) / SectorSize
	out := make([]byte, n*SectorSize)
	copy(out, plain)
	for lba := 0; lba < n; lba++ {
		if err := c.EncryptSector(uint64(lba), out[lba*SectorSize:(lba+1)*SectorSize]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
