package xen

import (
	"testing"

	"fidelius/internal/cpu"
)

func TestDirtyLogTracksGuestWrites(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "dirty", MemPages: 16, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.StartDirtyLog(d); err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *GuestEnv) error {
		if err := g.Write(0x2000, []byte("round one")); err != nil {
			return err
		}
		if err := g.Write(0x3000, []byte("round one")); err != nil {
			return err
		}
		g.Halt() // phase boundary: the host collects here
		if err := g.Write64(0x3008, 42); err != nil {
			return err
		}
		// Fresh page first touched by a read, then written: the write
		// must still be logged.
		buf := make([]byte, 8)
		if err := g.Read(0x5000, buf); err != nil {
			return err
		}
		return g.Write(0x5000, []byte("fresh"))
	})

	// Phase one: run up to the HLT.
	for x.ExitCount(cpu.ExitHLT) == 0 {
		done, err := x.RunOnce(d)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("guest finished before the phase boundary")
		}
	}
	dirty, err := x.CollectDirty(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 2 || dirty[1] != 3 {
		t.Fatalf("phase one dirty = %v, want [2 3]", dirty)
	}

	// Phase two: collected pages were re-protected, so the rewrite of
	// gfn 3 is caught again, and the read-then-written fresh gfn 5 too.
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	dirty, err = x.CollectDirty(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 3 || dirty[1] != 5 {
		t.Fatalf("phase two dirty = %v, want [3 5]", dirty)
	}
	if got := x.M.Ctl.Telem.M.DirtyMarks.Value(); got < 4 {
		t.Fatalf("dirty-mark telemetry = %d, want >= 4", got)
	}

	// Teardown restores writable leaves and stops logging.
	if err := x.StopDirtyLog(d); err != nil {
		t.Fatal(err)
	}
	slot, err := x.NPTLeafSlot(d, 2<<12)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x.readPTE(d, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !leaf.Present() || !leaf.Writable() {
		t.Fatalf("leaf for gfn 2 not restored writable: %#x", uint64(leaf))
	}
	if got := d.Dirty.Count(); got != 0 {
		t.Fatalf("stopped log still holds %d marks", got)
	}
}
