// Package workload provides the synthetic benchmark suites of the paper's
// evaluation (Section 7): SPEC CPU 2006-like and PARSEC-like compute
// profiles, and an fio-like block-I/O generator.
//
// We obviously cannot run the real suites inside the simulator, and the
// evaluation compares *relative overheads*, which are set by each
// benchmark's instruction mix: how much of its time is spent in DRAM
// (memory encryption exposure) versus compute, and how often it exits to
// the hypervisor (shadowing exposure). Each profile therefore carries a
// per-iteration mix calibrated so that the *baseline-relative* overhead
// shape reproduces the published per-benchmark sensitivities: mcf and
// omnetpp are memory-bound and suffer most from encryption; bzip2, hmmer
// and h264ref are compute-bound and suffer none; canneal is PARSEC's
// memory-intensive outlier. PaperFid and PaperEnc record the published
// numbers for side-by-side reporting in EXPERIMENTS.md.
package workload

// Profile is one synthetic benchmark.
type Profile struct {
	Name  string
	Suite string // "speccpu2006" or "parsec"

	// ALUPerIter is the compute work per iteration, in ALU ops.
	ALUPerIter int
	// MemPerIter is the number of memory accesses per iteration.
	MemPerIter int
	// MissRate is the fraction of accesses that reach DRAM.
	MissRate float64
	// HCPerKIter is the number of hypercalls (service exits) per 1000
	// iterations.
	HCPerKIter int

	// PaperFid and PaperEnc are the paper's normalized overheads (%)
	// for the Fidelius and Fidelius-enc configurations (Figures 5, 6).
	PaperFid float64
	PaperEnc float64
}

// SPEC returns the SPEC CPU 2006 C-benchmark profiles of Figure 5.
// Calibration: with MemPerIter = 1000, the encryption overhead is
// approximately 14·miss/(ALU + 1000·(4 + 76·miss)); ALU and miss rate are
// solved per benchmark for its published Fidelius-enc overhead.
func SPEC() []Profile {
	return []Profile{
		{Name: "perlbench", Suite: "speccpu2006", ALUPerIter: 74100, MemPerIter: 1000, MissRate: 0.20, HCPerKIter: 820, PaperFid: 0.9, PaperEnc: 3.0},
		{Name: "bzip2", Suite: "speccpu2006", ALUPerIter: 104900, MemPerIter: 1000, MissRate: 0.04, HCPerKIter: 990, PaperFid: 0.9, PaperEnc: 0.5},
		{Name: "gcc", Suite: "speccpu2006", ALUPerIter: 51700, MemPerIter: 1000, MissRate: 0.40, HCPerKIter: 760, PaperFid: 0.9, PaperEnc: 6.5},
		{Name: "mcf", Suite: "speccpu2006", ALUPerIter: 1200, MemPerIter: 1000, MissRate: 0.92, HCPerKIter: 640, PaperFid: 0.9, PaperEnc: 17.3},
		{Name: "gobmk", Suite: "speccpu2006", ALUPerIter: 70800, MemPerIter: 1000, MissRate: 0.12, HCPerKIter: 740, PaperFid: 0.9, PaperEnc: 2.0},
		{Name: "hmmer", Suite: "speccpu2006", ALUPerIter: 87800, MemPerIter: 1000, MissRate: 0.02, HCPerKIter: 820, PaperFid: 0.9, PaperEnc: 0.3},
		{Name: "sjeng", Suite: "speccpu2006", ALUPerIter: 81700, MemPerIter: 1000, MissRate: 0.10, HCPerKIter: 800, PaperFid: 0.9, PaperEnc: 1.5},
		{Name: "libquantum", Suite: "speccpu2006", ALUPerIter: 35700, MemPerIter: 1000, MissRate: 0.50, HCPerKIter: 690, PaperFid: 0.9, PaperEnc: 9.0},
		{Name: "h264ref", Suite: "speccpu2006", ALUPerIter: 104900, MemPerIter: 1000, MissRate: 0.04, HCPerKIter: 990, PaperFid: 0.9, PaperEnc: 0.5},
		{Name: "omnetpp", Suite: "speccpu2006", ALUPerIter: 3900, MemPerIter: 1000, MissRate: 0.80, HCPerKIter: 620, PaperFid: 0.9, PaperEnc: 16.3},
		{Name: "astar", Suite: "speccpu2006", ALUPerIter: 75900, MemPerIter: 1000, MissRate: 0.15, HCPerKIter: 810, PaperFid: 0.9, PaperEnc: 2.3},
	}
}

// PARSEC returns the PARSEC profiles of Figure 6.
func PARSEC() []Profile {
	return []Profile{
		{Name: "blackscholes", Suite: "parsec", ALUPerIter: 87800, MemPerIter: 1000, MissRate: 0.02, HCPerKIter: 400, PaperFid: 0.4, PaperEnc: 0.3},
		{Name: "bodytrack", Suite: "parsec", ALUPerIter: 96400, MemPerIter: 1000, MissRate: 0.06, HCPerKIter: 430, PaperFid: 0.4, PaperEnc: 0.8},
		{Name: "canneal", Suite: "parsec", ALUPerIter: 7000, MemPerIter: 1000, MissRate: 0.78, HCPerKIter: 300, PaperFid: 0.4, PaperEnc: 14.27},
		{Name: "dedup", Suite: "parsec", ALUPerIter: 89600, MemPerIter: 1000, MissRate: 0.15, HCPerKIter: 450, PaperFid: 0.4, PaperEnc: 2.0},
		{Name: "facesim", Suite: "parsec", ALUPerIter: 105000, MemPerIter: 1000, MissRate: 0.10, HCPerKIter: 470, PaperFid: 0.4, PaperEnc: 1.2},
		{Name: "ferret", Suite: "parsec", ALUPerIter: 98800, MemPerIter: 1000, MissRate: 0.12, HCPerKIter: 460, PaperFid: 0.4, PaperEnc: 1.5},
		{Name: "fluidanimate", Suite: "parsec", ALUPerIter: 101900, MemPerIter: 1000, MissRate: 0.08, HCPerKIter: 450, PaperFid: 0.4, PaperEnc: 1.0},
		{Name: "freqmine", Suite: "parsec", ALUPerIter: 99500, MemPerIter: 1000, MissRate: 0.07, HCPerKIter: 440, PaperFid: 0.4, PaperEnc: 0.9},
		{Name: "raytrace", Suite: "parsec", ALUPerIter: 108800, MemPerIter: 1000, MissRate: 0.05, HCPerKIter: 480, PaperFid: 0.4, PaperEnc: 0.6},
		{Name: "streamcluster", Suite: "parsec", ALUPerIter: 83100, MemPerIter: 1000, MissRate: 0.18, HCPerKIter: 420, PaperFid: 0.4, PaperEnc: 2.5},
		{Name: "swaptions", Suite: "parsec", ALUPerIter: 99800, MemPerIter: 1000, MissRate: 0.015, HCPerKIter: 440, PaperFid: 0.4, PaperEnc: 0.2},
		{Name: "vips", Suite: "parsec", ALUPerIter: 98700, MemPerIter: 1000, MissRate: 0.03, HCPerKIter: 430, PaperFid: 0.4, PaperEnc: 0.4},
		{Name: "x264", Suite: "parsec", ALUPerIter: 87800, MemPerIter: 1000, MissRate: 0.02, HCPerKIter: 400, PaperFid: 0.4, PaperEnc: 0.3},
	}
}

// ByName finds a profile across both suites.
func ByName(name string) (Profile, bool) {
	for _, p := range append(SPEC(), PARSEC()...) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
