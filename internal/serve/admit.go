package serve

import (
	"fmt"
	"math/rand"

	"fidelius/internal/sev"
)

// Attestation-gated admission (the "Insecure Until Proven Updated"
// discipline applied to serving): before a client session provisions its
// session data key, it demands a fresh, VM-bound quote and checks that
// the quote's launch measurement matches the image the client prepared.
// A hypervisor that booted a different (backdoored, downgraded) image
// cannot produce a matching quote — the firmware signs the measurement it
// verified at RECEIVE_FINISH — so the session is refused before any key
// material exists on the host side, and the refusal is a ledger fact.

// admit runs the admission handshake for one tenant's client session.
// On success the tenant holds a freshly generated session data key and
// the fill handler will deliver it as the ring's first frame; on failure
// the tenant is marked rejected, an attest-reject record lands in the
// audit ledger, and no key is ever generated.
func (s *Service) admit(t *tenant, rng *rand.Rand) {
	hub := s.hub()
	nonce := make([]byte, 16)
	rng.Read(nonce)

	reject := func(why string) {
		t.rejected = true
		hub.M.ServeRejects.Inc()
		if hub.Auditing() {
			hub.Audit("attest-reject", uint32(t.dom.ID), t.name+": "+why)
		}
	}

	quote, err := s.F.AttestVM(t.dom, nonce)
	if err != nil {
		reject("quote request failed: " + err.Error())
		return
	}
	pub, err := s.X.M.FW.AttestationKey()
	if err != nil {
		reject("no attestation key: " + err.Error())
		return
	}
	if err := sev.VerifyQuote(pub, quote, nonce); err != nil {
		reject("signature/nonce check failed: " + err.Error())
		return
	}
	if quote.VMMeasurement != t.expectMeasure {
		reject(fmt.Sprintf("launch measurement mismatch: quoted %x.. want %x..",
			quote.VMMeasurement[:4], t.expectMeasure[:4]))
		return
	}
	// Verified: only now does the client mint the session data key.
	rng.Read(t.dataKey[:])
	t.admitted = true
	if hub.Auditing() {
		hub.Audit("attest-admit", uint32(t.dom.ID),
			fmt.Sprintf("%s: measurement %x.. verified, session key provisioned", t.name, quote.VMMeasurement[:4]))
	}
}
