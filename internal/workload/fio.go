package workload

import (
	"fmt"

	"fidelius/internal/disk"
	"fidelius/internal/xen"
)

// BlockDev is the guest-side block interface all three front-ends
// implement: the plaintext baseline (xen.BlockFrontend) and the two
// protected paths (core.AESNIFront, core.SEVFront).
type BlockDev interface {
	WriteSectors(lba uint64, data []byte) error
	ReadSectors(lba uint64, buf []byte) error
}

// FioPattern is one of the four fio configurations of Table 3.
type FioPattern int

// Patterns.
const (
	SeqRead FioPattern = iota
	SeqWrite
	RandRead
	RandWrite
)

func (p FioPattern) String() string {
	switch p {
	case SeqRead:
		return "seq-read"
	case SeqWrite:
		return "seq-write"
	case RandRead:
		return "rand-read"
	case RandWrite:
		return "rand-write"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// PaperSlowdown returns the paper's measured slowdown for the pattern
// under Fidelius AES-NI (Table 3), in percent.
func (p FioPattern) PaperSlowdown() float64 {
	switch p {
	case SeqRead:
		return 22.91
	case SeqWrite:
		return 3.61
	case RandRead:
		return 1.38
	case RandWrite:
		return 0.70
	}
	return 0
}

// FioResult is one fio run.
type FioResult struct {
	Pattern FioPattern
	Config  string
	Sectors int
	Cycles  uint64
}

// CyclesPerSector reports the average per-sector cost.
func (r FioResult) CyclesPerSector() float64 {
	if r.Sectors == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Sectors)
}

// Slowdown reports r's slowdown against a baseline run, in percent.
func (r FioResult) Slowdown(base FioResult) float64 {
	b := base.CyclesPerSector()
	if b == 0 {
		return 0
	}
	return 100 * (r.CyclesPerSector() - b) / b
}

const (
	seqOpSectors  = 16 // large sequential requests (two data pages)
	randOpSectors = 8  // 4 KiB random requests, as fio issues them
)

// FioGuest returns the guest kernel running one fio pattern over
// totalSectors sectors of the region [0, regionSectors). The open
// callback constructs the configuration's front-end inside the guest.
func FioGuest(pattern FioPattern, totalSectors, regionSectors int, open func(*xen.GuestEnv) (BlockDev, error), out *FioResult) xen.GuestFunc {
	return func(g *xen.GuestEnv) error {
		dev, err := open(g)
		if err != nil {
			return err
		}
		buf := make([]byte, seqOpSectors*disk.SectorSize)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		// Preparation (untimed): populate the region so reads hit
		// initialised sectors.
		if pattern == SeqRead || pattern == RandRead {
			for lba := 0; lba+seqOpSectors <= regionSectors; lba += seqOpSectors {
				if err := dev.WriteSectors(uint64(lba), buf); err != nil {
					return err
				}
			}
		}
		lcg := uint64(12345)
		nextRand := func(op int) uint64 {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			slots := uint64(regionSectors / op)
			return (lcg >> 33) % slots * uint64(op)
		}

		start := g.Cycles()
		done := 0
		seqLBA := 0
		for done < totalSectors {
			switch pattern {
			case SeqRead:
				if seqLBA+seqOpSectors > regionSectors {
					seqLBA = 0
				}
				if err := dev.ReadSectors(uint64(seqLBA), buf); err != nil {
					return err
				}
				seqLBA += seqOpSectors
				done += seqOpSectors
			case SeqWrite:
				if seqLBA+seqOpSectors > regionSectors {
					seqLBA = 0
				}
				if err := dev.WriteSectors(uint64(seqLBA), buf); err != nil {
					return err
				}
				seqLBA += seqOpSectors
				done += seqOpSectors
			case RandRead:
				if err := dev.ReadSectors(nextRand(randOpSectors), buf[:randOpSectors*disk.SectorSize]); err != nil {
					return err
				}
				done += randOpSectors
			case RandWrite:
				if err := dev.WriteSectors(nextRand(randOpSectors), buf[:randOpSectors*disk.SectorSize]); err != nil {
					return err
				}
				done += randOpSectors
			}
		}
		out.Pattern = pattern
		out.Sectors = done
		out.Cycles = g.Cycles() - start
		return nil
	}
}
