package xen

import (
	"bytes"
	"errors"
	"testing"

	"fidelius/internal/cpu"
	"fidelius/internal/disk"
	"fidelius/internal/hw"
	"fidelius/internal/isa"
)

func newXen(t *testing.T) *Xen {
	t.Helper()
	m, err := NewMachine(Config{MemPages: 2048, CacheLines: 512})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMachineStubsMonopolised(t *testing.T) {
	x := newXen(t)
	code, err := x.M.CodeRegion()
	if err != nil {
		t.Fatal(err)
	}
	fs := isa.ScanPrivileged(code)
	// Exactly the seven sanctioned instructions, nothing else.
	if len(fs) != 7 {
		t.Fatalf("found %d privileged opcodes, want 7: %+v", len(fs), fs)
	}
	allowed := map[int]isa.Op{}
	base := x.M.Stubs.Base
	for addr, op := range map[uint64]isa.Op{
		x.M.Stubs.MovCR0: isa.OpMovCR0,
		x.M.Stubs.MovCR4: isa.OpMovCR4,
		x.M.Stubs.Wrmsr:  isa.OpWrmsr,
		x.M.Stubs.Lgdt:   isa.OpLgdt,
		x.M.Stubs.Lidt:   isa.OpLidt,
		x.M.Stubs.Vmrun:  isa.OpVmrun,
		x.M.Stubs.MovCR3: isa.OpMovCR3,
	} {
		allowed[int(addr-base)] = op
	}
	if !isa.Monopolised(code, allowed) {
		t.Fatal("stub region not monopolised at expected offsets")
	}
}

func TestMovCR3StubAtPageEnd(t *testing.T) {
	x := newXen(t)
	if x.M.Stubs.MovCR3%hw.PageSize != hw.PageSize-2 {
		t.Fatalf("mov cr3 stub at offset %#x, want page end", x.M.Stubs.MovCR3%hw.PageSize)
	}
	if x.M.Stubs.ContPg != x.M.Stubs.MovCR3Pg+hw.PageSize {
		t.Fatal("continuation page must immediately follow the mov cr3 page")
	}
}

func TestGuestMemoryEncryption(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "guest", MemPages: 32, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}
	secret := []byte("this never leaves the guest key domain")
	var capturedHPA hw.PhysAddr
	x.StartVCPU(d, func(g *GuestEnv) error {
		if err := g.Write(0x5000, secret); err != nil {
			return err
		}
		got := make([]byte, len(secret))
		if err := g.Read(0x5000, got); err != nil {
			return err
		}
		if !bytes.Equal(got, secret) {
			t.Error("guest read-back mismatch")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	// Find the backing frame and confirm DRAM ciphertext.
	pfn, ok := d.GPAFrame(5)
	if !ok {
		t.Fatal("gfn 5 unbacked despite eager population")
	}
	capturedHPA = pfn.Addr()
	raw := make([]byte, len(secret))
	if err := x.M.Ctl.Mem.ReadRaw(capturedHPA, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, secret) {
		t.Fatal("SEV guest memory is plaintext in DRAM")
	}
}

func TestNonSEVGuestIsPlaintext(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "plain", MemPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *GuestEnv) error {
		return g.Write(0x3000, []byte("visible"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	pfn, _ := d.GPAFrame(3)
	raw := make([]byte, 7)
	x.M.Ctl.Mem.ReadRaw(pfn.Addr(), raw)
	if !bytes.Equal(raw, []byte("visible")) {
		t.Fatal("non-SEV guest memory should be plaintext")
	}
}

func TestVoidHypercallAndCPUID(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "hc", MemPages: 16, SEV: true})
	var cpuidRegs [4]uint64
	x.StartVCPU(d, func(g *GuestEnv) error {
		if _, err := g.Hypercall(HCVoid); err != nil {
			return err
		}
		cpuidRegs = g.CPUID(0)
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if cpuidRegs[0] != 0x0F1DE115 || cpuidRegs[1] != 0x414D44 {
		t.Fatalf("cpuid regs %#x", cpuidRegs)
	}
	if x.ExitCount(cpu.ExitVMMCALL) != 1 || x.ExitCount(cpu.ExitCPUID) != 1 {
		t.Fatalf("exit counts %v", x.ExitCountsSnapshot())
	}
}

func TestLazyNPTPopulation(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "lazy", MemPages: 16, SEV: true, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	x.StartVCPU(d, func(g *GuestEnv) error {
		if err := g.Write(0x2000, []byte("lazy fill")); err != nil {
			return err
		}
		buf := make([]byte, 9)
		if err := g.Read(0x2000, buf); err != nil {
			return err
		}
		if string(buf) != "lazy fill" {
			t.Error("lazy read-back mismatch")
		}
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if x.ExitCount(cpu.ExitNPF) == 0 {
		t.Fatal("expected NPT violations with lazy population")
	}
	if _, ok := d.GPAFrame(2); !ok {
		t.Fatal("faulted frame not backed")
	}
}

func TestGuestBeyondMemoryGetsInjectedFault(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "oob", MemPages: 8, SEV: true})
	var accessErr error
	x.StartVCPU(d, func(g *GuestEnv) error {
		// Far beyond guest memory and the grant window.
		accessErr = g.Write(uint64(1000)<<hw.PageShift, []byte{1})
		return nil
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(accessErr, ErrInjectedFault) {
		t.Fatalf("want injected fault, got %v", accessErr)
	}
}

func TestGuestPagingAndCBitControl(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "paging", MemPages: 48, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	secretGFN := uint64(5)
	plainGFN := uint64(6)
	x.StartVCPU(d, func(g *GuestEnv) error {
		root, err := g.BuildIdentityPT(map[uint64]bool{plainGFN: true})
		if err != nil {
			return err
		}
		g.EnablePaging(root)
		if err := g.Write(secretGFN<<hw.PageShift, []byte("encrypted page")); err != nil {
			return err
		}
		return g.Write(plainGFN<<hw.PageShift, []byte("plain page data"))
	})
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
	// The C-bit page is ciphertext in DRAM, the C=0 page plaintext.
	spfn, _ := d.GPAFrame(secretGFN)
	ppfn, _ := d.GPAFrame(plainGFN)
	raw := make([]byte, 14)
	x.M.Ctl.Mem.ReadRaw(spfn.Addr(), raw)
	if bytes.Equal(raw, []byte("encrypted page")) {
		t.Fatal("C-bit page is plaintext in DRAM")
	}
	raw2 := make([]byte, 15)
	x.M.Ctl.Mem.ReadRaw(ppfn.Addr(), raw2)
	if !bytes.Equal(raw2, []byte("plain page data")) {
		t.Fatal("C=0 page should be plaintext in DRAM")
	}
}

func TestGrantSharingBetweenGuests(t *testing.T) {
	x := newXen(t)
	granter, err := x.CreateDomain(DomainConfig{Name: "granter", MemPages: 16, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	grantee, err := x.CreateDomain(DomainConfig{Name: "grantee", MemPages: 16, SEV: true})
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("shared plaintext region")
	var ref uint64
	x.StartVCPU(granter, func(g *GuestEnv) error {
		// Shared data must be unencrypted for the peer to read it.
		if err := g.WriteUnencrypted(7<<hw.PageShift, msg); err != nil {
			return err
		}
		r, err := g.Hypercall(HCGrantTableOp, GntOpGrant, uint64(grantee.ID), 7, 0)
		if err != nil {
			return err
		}
		ref = r
		return nil
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(msg))
	x.StartVCPU(grantee, func(g *GuestEnv) error {
		dst := uint64(grantee.MemPages) // first grant-window slot
		if _, err := g.Hypercall(HCGrantTableOp, GntOpMap, uint64(granter.ID), ref, dst); err != nil {
			return err
		}
		return g.ReadUnencrypted(dst<<hw.PageShift, got)
	})
	if err := x.Run(grantee); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("grantee read %q, want %q", got, msg)
	}
}

func TestReadOnlyGrantBlocksWrites(t *testing.T) {
	x := newXen(t)
	granter, _ := x.CreateDomain(DomainConfig{Name: "granter", MemPages: 16, SEV: true})
	grantee, _ := x.CreateDomain(DomainConfig{Name: "grantee", MemPages: 16, SEV: true})

	var ref uint64
	x.StartVCPU(granter, func(g *GuestEnv) error {
		r, err := g.Hypercall(HCGrantTableOp, GntOpGrant, uint64(grantee.ID), 3, uint64(GrantReadOnly))
		ref = r
		return err
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}
	var writeErr error
	x.StartVCPU(grantee, func(g *GuestEnv) error {
		dst := uint64(grantee.MemPages)
		if _, err := g.Hypercall(HCGrantTableOp, GntOpMap, uint64(granter.ID), ref, dst); err != nil {
			return err
		}
		writeErr = g.WriteUnencrypted(dst<<hw.PageShift, []byte{1})
		return nil
	})
	if err := x.Run(grantee); err != nil {
		t.Fatal(err)
	}
	if writeErr == nil {
		t.Fatal("write through read-only grant mapping should fail")
	}
}

func TestGrantValidation(t *testing.T) {
	x := newXen(t)
	granter, _ := x.CreateDomain(DomainConfig{Name: "granter", MemPages: 16, SEV: true})
	grantee, _ := x.CreateDomain(DomainConfig{Name: "grantee", MemPages: 16, SEV: true})
	other, _ := x.CreateDomain(DomainConfig{Name: "other", MemPages: 16, SEV: true})

	var ref uint64
	x.StartVCPU(granter, func(g *GuestEnv) error {
		r, err := g.Hypercall(HCGrantTableOp, GntOpGrant, uint64(grantee.ID), 2, 0)
		ref = r
		return err
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}
	// A third domain cannot map a grant addressed to someone else.
	var mapErr error
	x.StartVCPU(other, func(g *GuestEnv) error {
		_, mapErr = g.Hypercall(HCGrantTableOp, GntOpMap, uint64(granter.ID), ref, uint64(other.MemPages))
		return nil
	})
	if err := x.Run(other); err != nil {
		t.Fatal(err)
	}
	if mapErr == nil {
		t.Fatal("mapping someone else's grant must fail")
	}
}

func runBlockGuest(t *testing.T, x *Xen, d *Domain, fn GuestFunc) {
	t.Helper()
	x.StartVCPU(d, fn)
	if err := x.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestPVBlockIO(t *testing.T) {
	x := newXen(t)
	d, err := x.CreateDomain(DomainConfig{Name: "io", MemPages: 32, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	dk := disk.New(256)
	backend, err := x.AttachBlockDevice(d, dk, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	backend.SnoopEnabled = true
	if err := x.WriteStartInfo(d); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte("PLAINTEXT-SECTOR"), disk.SectorSize/16*3) // 3 sectors
	runBlockGuest(t, x, d, func(g *GuestEnv) error {
		f, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		if err := f.WriteSectors(10, payload); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := f.ReadSectors(10, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("block I/O round trip mismatch")
		}
		return nil
	})
	// The baseline front-end leaks plaintext to the backend — the attack
	// surface Fidelius's I/O protection closes.
	if !bytes.Contains(backend.Snoop, []byte("PLAINTEXT-SECTOR")) {
		t.Fatal("baseline backend should observe plaintext")
	}
	// And the disk itself holds plaintext.
	if !bytes.Contains(dk.Snapshot(), []byte("PLAINTEXT-SECTOR")) {
		t.Fatal("baseline disk should hold plaintext")
	}
}

func TestPVBlockLargeTransferChunks(t *testing.T) {
	x := newXen(t)
	d, _ := x.CreateDomain(DomainConfig{Name: "io2", MemPages: 32, SEV: true})
	dk := disk.New(256)
	if _, err := x.AttachBlockDevice(d, dk, 1, 1); err != nil { // 8-sector window
		t.Fatal(err)
	}
	x.WriteStartInfo(d)
	payload := make([]byte, 20*disk.SectorSize) // 20 sectors > window
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var requests uint64
	runBlockGuest(t, x, d, func(g *GuestEnv) error {
		f, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		if err := f.WriteSectors(0, payload); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := f.ReadSectors(0, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("chunked transfer mismatch")
		}
		requests = f.Requests()
		return nil
	})
	if requests != 6 { // 20 sectors / 8-sector window = 3 writes + 3 reads
		t.Fatalf("expected 6 ring round trips, got %d", requests)
	}
}

func TestStartInfoRoundTrip(t *testing.T) {
	si := &StartInfo{DomID: 3, MemPages: 64, RingGFN: 1, DataGFN: 2, DataLen: 4, Port: 9, ServeGFN: 7, ServePort: 11}
	got, err := UnmarshalStartInfo(si.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *si {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, si)
	}
	if _, err := UnmarshalStartInfo([]byte{1}); err == nil {
		t.Fatal("short start info must error")
	}
}

func TestGrantEntryRoundTrip(t *testing.T) {
	e := GrantEntry{Flags: GrantInUse | GrantReadOnly, Grantee: 7, GFN: 0x1234}
	var b [GrantEntrySize]byte
	e.Marshal(b[:])
	if got := UnmarshalGrantEntry(b[:]); got != e {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
}

func TestDestroyDomainReclaimsFrames(t *testing.T) {
	x := newXen(t)
	before := x.M.Alloc.FreeCount()
	d, err := x.CreateDomain(DomainConfig{Name: "temp", MemPages: 16, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	mid := x.M.Alloc.FreeCount()
	if mid >= before {
		t.Fatal("domain creation should consume frames")
	}
	if err := x.DestroyDomain(d, false); err != nil {
		t.Fatal(err)
	}
	after := x.M.Alloc.FreeCount()
	// Start-info page is not reclaimed (write-once regions persist);
	// everything else returns.
	if after < before-1 {
		t.Fatalf("frames leaked: before=%d after=%d", before, after)
	}
	if _, ok := x.Dom(d.ID); ok {
		t.Fatal("domain still registered after destroy")
	}
	// Destroy is idempotent.
	if err := x.DestroyDomain(d, false); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAllocAccounting(t *testing.T) {
	a := NewFrameAlloc(2, 10)
	if a.Total() != 10 || a.FreeCount() != 8 {
		t.Fatalf("total=%d free=%d", a.Total(), a.FreeCount())
	}
	pfn, err := a.Alloc(UseGuest, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fi := a.Info(pfn); fi.Use != UseGuest || fi.Owner != 3 {
		t.Fatalf("info %+v", fi)
	}
	a.SetUse(pfn, UseShared, 3)
	if fi := a.Info(pfn); fi.Use != UseShared {
		t.Fatal("SetUse failed")
	}
	a.Free(pfn)
	if a.FreeCount() != 8 {
		t.Fatal("free count after Free")
	}
	a.Free(pfn) // double free is a no-op
	if a.FreeCount() != 8 {
		t.Fatal("double free changed accounting")
	}
	if a.Info(0).Use != UseReserved {
		t.Fatal("reserved frame")
	}
	count := 0
	a.ForEach(func(hw.PFN, FrameInfo) { count++ })
	if count != 10 {
		t.Fatal("ForEach visited wrong count")
	}
}

func TestEventBusBinding(t *testing.T) {
	x := newXen(t)
	fired := 0
	x.Events.Bind(5, 2, func() error { fired++; return nil })
	if err := x.Events.Notify(5, 2); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("handler did not fire")
	}
	if err := x.Events.Notify(5, 3); err == nil {
		t.Fatal("unbound port should error")
	}
	x.Events.Unbind(5, 2)
	if err := x.Events.Notify(5, 2); err == nil {
		t.Fatal("unbound port should error")
	}
}

func TestXenStore(t *testing.T) {
	s := newXenStore()
	s.Set("device/vbd/0/ring-ref", "3")
	if v, ok := s.Get("device/vbd/0/ring-ref"); !ok || v != "3" {
		t.Fatal("get after set")
	}
	s.Delete("device/vbd/0/ring-ref")
	if _, ok := s.Get("device/vbd/0/ring-ref"); ok {
		t.Fatal("get after delete")
	}
}

func TestRevokeAndUnmapGrant(t *testing.T) {
	x := newXen(t)
	granter, _ := x.CreateDomain(DomainConfig{Name: "g1", MemPages: 16, SEV: true})
	grantee, _ := x.CreateDomain(DomainConfig{Name: "g2", MemPages: 16, SEV: true})
	var ref uint64
	x.StartVCPU(granter, func(g *GuestEnv) error {
		r, err := g.Hypercall(HCGrantTableOp, GntOpGrant, uint64(grantee.ID), 4, 0)
		ref = r
		if err != nil {
			return err
		}
		_, err = g.Hypercall(HCGrantTableOp, GntOpRevoke, r)
		return err
	})
	if err := x.Run(granter); err != nil {
		t.Fatal(err)
	}
	// After revocation the grantee cannot map it.
	var mapErr error
	x.StartVCPU(grantee, func(g *GuestEnv) error {
		_, mapErr = g.Hypercall(HCGrantTableOp, GntOpMap, uint64(granter.ID), ref, uint64(grantee.MemPages))
		return nil
	})
	if err := x.Run(grantee); err != nil {
		t.Fatal(err)
	}
	if mapErr == nil {
		t.Fatal("mapping a revoked grant must fail")
	}
}
