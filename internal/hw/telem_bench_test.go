package hw

import (
	"testing"
)

// The telemetry instrumentation on the controller's hot path must be
// near-free when no trace is active: plain single-owner counter
// increments plus, on the encrypted path, one nil check and one atomic
// load (Hub.Tracing). These benchmarks and the guard test below pin that
// property.

func benchController(tb testing.TB, withHub bool) *Controller {
	tb.Helper()
	c := NewController(NewMemory(64), 32)
	var k Key
	copy(k[:], "telemetry-bench-key-############")
	if err := c.Eng.Install(1, k); err != nil {
		tb.Fatal(err)
	}
	if !withHub {
		c.Telem = nil
	}
	return c
}

// readLoop drives the controller through the tight memory-access loop the
// disabled-path guarantee is stated against: mostly cache-hit plaintext
// reads, with one uncached encrypted read per iteration to exercise the
// Tracing() check on the decrypt path. Each iteration also opens and
// closes a span and offers one audit record, so the guard covers the
// whole disabled flight-recorder surface: with no tracer the span calls
// are a nil test plus one atomic load returning a nil handle, and with
// no ledger armed Audit returns after one atomic pointer load.
func readLoop(tb testing.TB, c *Controller, iters int) {
	tb.Helper()
	var buf [LineSize]byte
	enc := Access{PA: 0, Encrypted: true, ASID: 1}
	for i := 0; i < iters; i++ {
		sp := c.Telem.OpenScope("bench-quantum", 1, 1)
		for l := 0; l < 16; l++ {
			if err := c.Read(Access{PA: PageSize + PhysAddr(l*LineSize)}, buf[:]); err != nil {
				tb.Fatal(err)
			}
		}
		c.Cache.Invalidate(0, LineSize)
		if err := c.Read(enc, buf[:]); err != nil {
			tb.Fatal(err)
		}
		c.Telem.Audit("bench-noop", 1, "disabled-path probe")
		sp.Close()
	}
}

// BenchmarkTelemetryOff measures the hot path with the hub attached but
// no tracer — the default state of every machine.
func BenchmarkTelemetryOff(b *testing.B) {
	c := benchController(b, true)
	b.ResetTimer()
	readLoop(b, c, b.N)
}

// BenchmarkTelemetryNilHub is the floor: no hub at all.
func BenchmarkTelemetryNilHub(b *testing.B) {
	c := benchController(b, false)
	b.ResetTimer()
	readLoop(b, c, b.N)
}

// BenchmarkTelemetryTracing measures the same loop with a tracer
// attached, for comparison; this path is allowed to cost more.
func BenchmarkTelemetryTracing(b *testing.B) {
	c := benchController(b, true)
	c.Telem.StartTrace(1 << 12)
	b.ResetTimer()
	readLoop(b, c, b.N)
}

// TestTelemetryOffOverhead guards the disabled-path promise: with a hub
// attached but no tracer, the loop may cost at most 5% more than with no
// hub at all. Timing comparisons flake under load, so the test takes the
// best of several interleaved rounds before judging.
func TestTelemetryOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const iters = 2000
	time := func(c *Controller) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				readLoop(b, c, iters)
			}
		})
		return res.NsPerOp()
	}
	bare := benchController(t, false)
	hub := benchController(t, true)
	// Interleave the rounds so a load spike hits both sides equally, and
	// take each side's minimum — the least-perturbed sample.
	bareNs := int64(1<<63 - 1)
	hubNs := int64(1<<63 - 1)
	for round := 0; round < 4; round++ {
		if ns := time(bare); ns < bareNs {
			bareNs = ns
		}
		if ns := time(hub); ns < hubNs {
			hubNs = ns
		}
	}
	if bareNs == 0 {
		t.Skip("timer resolution too coarse")
	}
	overhead := 100 * float64(hubNs-bareNs) / float64(bareNs)
	t.Logf("bare=%dns hub=%dns overhead=%.2f%%", bareNs, hubNs, overhead)
	if overhead > 5.0 {
		t.Fatalf("telemetry-off overhead %.2f%% exceeds 5%% (bare=%dns hub=%dns)",
			overhead, bareNs, hubNs)
	}
}
