package parallel

import (
	"errors"
	"sync/atomic"
	"testing"

	"fidelius/internal/telemetry"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 4, 16} {
		p := New(width)
		const n = 1000
		var visits [n]atomic.Int32
		if err := p.ForEach(n, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("width %d: unexpected error: %v", width, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("width %d: index %d visited %d times", width, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, width := range []int{1, 3} {
		p := New(width)
		err := p.ForEach(100, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 80:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("width %d: got %v, want lowest-index error %v", width, err, errLow)
		}
	}
}

func TestNilAndZeroPoolRunInline(t *testing.T) {
	var p *Pool
	sum := 0
	if err := p.ForEach(10, func(i int) error { sum += i; return nil }); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("nil pool sum = %d, want 45", sum)
	}
	var z Pool
	if got := z.Width(); got != 1 {
		t.Fatalf("zero pool width = %d, want 1", got)
	}
}

func TestForEachEmpty(t *testing.T) {
	p := New(4)
	if err := p.ForEach(0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0 must not invoke fn: %v", err)
	}
}

func TestRegisterPublishesMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(2)
	p.Register(reg)
	if err := p.ForEach(5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["pool.jobs"]; got != 5 {
		t.Fatalf("pool.jobs = %d, want 5", got)
	}
	if got := s.Gauges["pool.workers"]; got != 2 {
		t.Fatalf("pool.workers = %d, want 2", got)
	}
}
