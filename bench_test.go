package fidelius

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 7), plus the ablations of DESIGN.md §4.
// The simulation is deterministic, so each benchmark reports its derived
// metrics (overhead percentages, gate cycle counts) via b.ReportMetric;
// wall-clock ns/op measures only the simulator itself.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"fidelius/internal/bench"
	"fidelius/internal/hw"
	"fidelius/internal/kv"
	"fidelius/internal/sev"
	"fidelius/internal/workload"
)

// BenchmarkFig5SPECCPU2006 regenerates Figure 5: SPEC CPU 2006 normalized
// overheads of Fidelius and Fidelius-enc versus original Xen.
func BenchmarkFig5SPECCPU2006(b *testing.B) {
	var rows []bench.FigRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Figure5(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := bench.Average(rows)
	b.ReportMetric(avg.Fid, "fid-overhead-%")
	b.ReportMetric(avg.Enc, "enc-overhead-%")
	for _, r := range rows {
		if r.Name == "mcf" {
			b.ReportMetric(r.Enc, "mcf-enc-%")
		}
		if r.Name == "omnetpp" {
			b.ReportMetric(r.Enc, "omnetpp-enc-%")
		}
	}
}

// BenchmarkFig6PARSEC regenerates Figure 6: PARSEC normalized overheads.
func BenchmarkFig6PARSEC(b *testing.B) {
	var rows []bench.FigRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Figure6(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := bench.Average(rows)
	b.ReportMetric(avg.Fid, "fid-overhead-%")
	b.ReportMetric(avg.Enc, "enc-overhead-%")
	for _, r := range rows {
		if r.Name == "canneal" {
			b.ReportMetric(r.Enc, "canneal-enc-%")
		}
	}
}

// BenchmarkTable3Fio regenerates Table 3: fio under original Xen versus
// Fidelius with AES-NI I/O protection.
func BenchmarkTable3Fio(b *testing.B) {
	var rows []bench.FioRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table3(320)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Slowdown, r.Pattern.String()+"-%")
	}
}

// BenchmarkMicroGates regenerates Section 7.2's first micro-benchmark:
// the three gate transition costs (paper: 306 / 16 / 339 cycles).
func BenchmarkMicroGates(b *testing.B) {
	var g bench.MicroGates
	for i := 0; i < b.N; i++ {
		var err error
		g, err = bench.MicroBenchGates(1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Gate1), "gate1-cycles")
	b.ReportMetric(float64(g.Gate2), "gate2-cycles")
	b.ReportMetric(float64(g.Gate3), "gate3-cycles")
}

// BenchmarkMicroShadow regenerates the second micro-benchmark: the
// shadow-and-check cost per void hypercall (paper: 661 cycles).
func BenchmarkMicroShadow(b *testing.B) {
	var s bench.MicroShadow
	for i := 0; i < b.N; i++ {
		var err error
		s, err = bench.MicroBenchShadow(500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Shadow), "shadow-cycles")
	b.ReportMetric(float64(s.XenRT), "xen-roundtrip-cycles")
	b.ReportMetric(float64(s.FideliusRT), "fidelius-roundtrip-cycles")
}

// BenchmarkMicroIOCrypt regenerates the third micro-benchmark: a 512 MB
// guest memory copy under the three encryption techniques (paper: AES-NI
// 11.49%, SME 8.69%, software >20x).
func BenchmarkMicroIOCrypt(b *testing.B) {
	var r bench.MicroIOCrypt
	for i := 0; i < b.N; i++ {
		r = bench.MicroBenchIOCrypt(512 << 20)
	}
	b.ReportMetric(r.AESNISlowdown, "aesni-%")
	b.ReportMetric(r.SEVSlowdown, "sev-%")
	b.ReportMetric(r.SoftwareRatio, "software-x")
}

// BenchmarkGateAblation quantifies the context-transition design choice
// of Section 4.1.3: CR3 switch vs WP toggle vs temporary mapping.
func BenchmarkGateAblation(b *testing.B) {
	var a bench.GateAblation
	for i := 0; i < b.N; i++ {
		var err error
		a, err = bench.MeasureGateAblation(100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.CR3Switch), "cr3-switch-cycles")
	b.ReportMetric(float64(a.WPToggle), "wp-toggle-cycles")
	b.ReportMetric(float64(a.AddMapping), "add-mapping-cycles")
}

// BenchmarkNPTEagerLazy quantifies the eager-versus-lazy NPT population
// choice of Section 4.3.4.
func BenchmarkNPTEagerLazy(b *testing.B) {
	var a bench.NPTAblation
	for i := 0; i < b.N; i++ {
		var err error
		a, err = bench.MeasureNPTAblation(48)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.EagerRun), "eager-run-cycles")
	b.ReportMetric(float64(a.LazyRun), "lazy-run-cycles")
	b.ReportMetric(float64(a.LazyNPF), "lazy-npf-count")
}

// BenchmarkPagingAblation quantifies the nested-paging walk cost a guest
// pays once it enables its own page tables.
func BenchmarkPagingAblation(b *testing.B) {
	var a bench.PagingAblation
	for i := 0; i < b.N; i++ {
		var err error
		a, err = bench.MeasurePagingAblation(256)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.FlatCycles), "flat-cycles/access")
	b.ReportMetric(float64(a.NestedCycles), "nested-cycles/access")
}

// BenchmarkShadowVsTrap quantifies the Section 5.1 choice of shadowing
// the VMCB once per exit over trapping every hypervisor access to it.
func BenchmarkShadowVsTrap(b *testing.B) {
	var m bench.ShadowVsTrap
	for i := 0; i < b.N; i++ {
		m = bench.ModelShadowVsTrap(5)
	}
	b.ReportMetric(float64(m.ShadowCost), "shadow-cycles")
	b.ReportMetric(float64(m.TrapCost), "trap-cycles")
}

// BenchmarkFioSEVPath extends Table 3 with the SEV-API I/O protection
// path on the sequential-write workload.
func BenchmarkFioSEVPath(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		base, sevRes, err := bench.MeasureFioSEVPath(workload.SeqWrite, 160)
		if err != nil {
			b.Fatal(err)
		}
		slow = sevRes.Slowdown(base)
	}
	b.ReportMetric(slow, "sev-io-slowdown-%")
}

// BenchmarkProtectedBoot measures the full protected-VM boot path
// (RECEIVE chain, measurement verification, activation).
func BenchmarkProtectedBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plat, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		owner, err := NewOwner()
		if err != nil {
			b.Fatal(err)
		}
		bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), make([]byte, 4*PageSize), nil)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := plat.LaunchVM("bench", 64, bundle)
		if err != nil {
			b.Fatal(err)
		}
		if err := plat.Shutdown(vm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuestMemoryThroughput measures raw guest memory access through
// the full two-dimensional translation and encryption pipeline.
func BenchmarkGuestMemoryThroughput(b *testing.B) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		b.Fatal(err)
	}
	owner, _ := NewOwner()
	bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	vm, err := plat.LaunchVM("tput", 64, bundle)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, PageSize)
	b.ResetTimer()
	plat.StartVCPU(vm, func(g *GuestEnv) error {
		for i := 0; i < b.N; i++ {
			if err := g.Write(0x8000, buf); err != nil {
				return err
			}
			if err := g.Read(0x8000, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err := plat.Run(vm); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * PageSize)
}

// BenchmarkBulkPageCrypt measures the firmware's bulk page-crypto fan-out
// (SEND_UPDATE over the worker pool) at pool widths 1, 2 and 4. The output
// is byte-identical across widths; what scales is the parallel seal phase.
// Note that on a single-CPU host (GOMAXPROCS=1) the widths serialize onto
// one core, so wall-clock scaling only shows on multi-core machines.
func BenchmarkBulkPageCrypt(b *testing.B) {
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", width), func(b *testing.B) {
			ctl := hw.NewController(hw.NewMemory(256), 0)
			fw := sev.NewFirmware(ctl)
			if err := fw.Init(); err != nil {
				b.Fatal(err)
			}
			h, err := fw.LaunchStart(0)
			if err != nil {
				b.Fatal(err)
			}
			if err := fw.LaunchFinish(h); err != nil {
				b.Fatal(err)
			}
			pub, err := fw.PublicKey()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fw.SendStart(h, pub, make([]byte, 16)); err != nil {
				b.Fatal(err)
			}
			fw.Pool().SetWidth(width)
			pfns := make([]hw.PFN, 64)
			for i := range pfns {
				pfns[i] = hw.PFN(i + 8)
			}
			b.SetBytes(int64(len(pfns)) * PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fw.SendUpdatePages(h, pfns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleParallel compares serial Schedule against the
// goroutine-per-domain ScheduleParallel for 1 through 64 concurrent
// domains running identical CPU-plus-memory-bound guests. The fleet
// sizes (16, 64) are the point of the per-domain locking split: quanta
// of distinct domains touch no shared lock, so parallel throughput is
// bounded by cores, not by a big hypervisor lock. On a single-CPU host
// (GOMAXPROCS=1) the runners serialize onto one core and parallel
// ~matches serial plus a small coordination tax; the >1x speedup the
// design targets shows on multi-core machines.
func BenchmarkScheduleParallel(b *testing.B) {
	const (
		guestRounds = 16
		workPages   = 4
	)
	guestFor := func(id int) func(*GuestEnv) error {
		return func(g *GuestEnv) error {
			buf := make([]byte, PageSize)
			for r := 0; r < guestRounds; r++ {
				for p := uint64(0); p < workPages; p++ {
					for i := range buf {
						buf[i] = byte(uint64(id)*31 + p*17 + uint64(r)*7 + uint64(i))
					}
					if err := g.Write((2+p)*PageSize, buf); err != nil {
						return err
					}
					if _, err := g.Hypercall(HCVoid); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	for _, nDoms := range []int{1, 2, 4, 16, 64} {
		for _, mode := range []string{"serial", "parallel"} {
			b.Run(fmt.Sprintf("domains=%d/%s", nDoms, mode), func(b *testing.B) {
				cfg := Config{}
				if nDoms > 4 {
					// 64 domains x 16 guest pages plus VMCB/NPT/start-info
					// overhead per domain: give the fleet headroom.
					cfg.MemPages = 8192
				}
				plat, err := NewPlatform(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(nDoms * guestRounds * workPages * PageSize))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					doms := make([]*Domain, nDoms)
					for d := range doms {
						vm, err := plat.CreateVM(fmt.Sprintf("bench%d", d), 16, d%2 == 0)
						if err != nil {
							b.Fatal(err)
						}
						plat.StartVCPU(vm, guestFor(d))
						doms[d] = vm
					}
					b.StartTimer()
					if mode == "serial" {
						for _, vm := range doms {
							if err := plat.Run(vm); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						if errs := plat.ScheduleParallel(doms, 0); len(errs) != 0 {
							b.Fatal(errs)
						}
					}
					b.StopTimer()
					for _, vm := range doms {
						if err := plat.Shutdown(vm); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkLifecycleChurn measures fleet-scale domain lifecycle churn:
// each iteration is a 64-lifetime launch/run/decommission storm driven
// by 8 concurrent workers against one long-lived platform, so the SEV
// ASID pool crosses the 254-ASID hardware limit within a few iterations
// and later lifetimes ride the batch-DF_FLUSH recycle path. Wall-clock
// ns/op measures the concurrent storm; the deterministic cycle metrics
// come from a fixed-size serial churn on a fresh platform (independent
// of goroutine interleaving), so `make benchdiff` can gate them.
func BenchmarkLifecycleChurn(b *testing.B) {
	const (
		workers   = 8
		perWorker = 8 // 64 lifetimes per iteration
	)
	guest := func(g *GuestEnv) error {
		if err := g.Write(2*PageSize, []byte("churn")); err != nil {
			return err
		}
		_, err := g.Hypercall(HCVoid)
		return err
	}
	lifetime := func(plat *Platform, name string) error {
		vm, err := plat.CreateVM(name, 8, true)
		if err != nil {
			return err
		}
		plat.StartVCPU(vm, guest)
		if errs := plat.ScheduleParallel([]*Domain{vm}, 1); len(errs) != 0 {
			return fmt.Errorf("run %s: %v", name, errs)
		}
		return plat.Shutdown(vm)
	}
	plat, err := NewPlatform(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for l := 0; l < perWorker; l++ {
					if err := lifetime(plat, fmt.Sprintf("churn%d-%d", w, l)); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Deterministic cycle account: 320 serial lifetimes over 254 ASIDs
	// forces the recycle path, so the per-lifetime average folds in the
	// amortized DF_FLUSH cost.
	const serialLifetimes = 320
	sp, err := NewPlatform(Config{})
	if err != nil {
		b.Fatal(err)
	}
	start := sp.X.M.Ctl.Now()
	for l := 0; l < serialLifetimes; l++ {
		if err := lifetime(sp, fmt.Sprintf("serial%d", l)); err != nil {
			b.Fatal(err)
		}
	}
	total := sp.X.M.Ctl.Now() - start
	b.ReportMetric(float64(total)/serialLifetimes, "lifetime-cycles")
	b.ReportMetric(float64(sp.X.ASIDs.Flushes()), "df-flushes")
	b.ReportMetric(float64(total), "churn-cycles")
}

// BenchmarkServeGetPut measures the multi-tenant KV serving front end
// end to end: per-tenant protected VMs behind sector-framed request
// rings, attestation-gated admission, and an open-loop Poisson load of
// gets/puts/deletes. Each iteration boots a fresh platform and drains a
// full scenario; the derived metrics report what the simulation
// measures — completed ops per million simulated cycles and the
// arrival-to-response latency quantiles.
func BenchmarkServeGetPut(b *testing.B) {
	var (
		throughput float64
		p50, p99   float64
	)
	for i := 0; i < b.N; i++ {
		plat, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := plat.NewServeService(ServeConfig{
			Tenants:          4,
			ClientsPerTenant: 16,
			OpsPerClient:     2,
			RatePerMCycle:    0.2,
			Seed:             7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for dom, err := range svc.Run() {
			if err != nil {
				b.Fatalf("domain %d: %v", dom, err)
			}
		}
		var ops uint64
		for _, r := range svc.Reports() {
			ops += r.Ops
		}
		if el := svc.Elapsed(); el > 0 {
			throughput = float64(ops) / (float64(el) / 1e6)
		}
		if h, ok := plat.Metrics().Histograms["serve.latency"]; ok {
			p50, p99 = h.Quantile(0.50), h.Quantile(0.99)
		}
		if err := svc.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(throughput, "ops/Mcycle")
	b.ReportMetric(p50, "p50-cycles")
	b.ReportMetric(p99, "p99-cycles")
}

// BenchmarkKVGroupCommit measures the kv store's group-commit put path
// through the full protected block stack (AES-NI front-end + write
// coalescer + PV ring + seek model) at increasing batch depths. The
// deterministic metrics are the whole point: put-cycles is the amortized
// cost of one put, and seeks/put shows the 2-seeks-per-put terminator
// dance collapsing to 2-seeks-per-batch (depth 1 ≈ 2.0, depth 7 ≤ 0.3).
func BenchmarkKVGroupCommit(b *testing.B) {
	for _, depth := range []int{1, 7, 15} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			plat, err := NewPlatform(Config{Protected: true})
			if err != nil {
				b.Fatal(err)
			}
			owner, err := NewOwner()
			if err != nil {
				b.Fatal(err)
			}
			bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), make([]byte, PageSize), nil)
			if err != nil {
				b.Fatal(err)
			}
			vm, err := plat.LaunchVM("kv-commit", 64, bundle)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plat.AttachDisk(vm, NewDisk(512), 2, 1, nil); err != nil {
				b.Fatal(err)
			}
			hub := plat.Telemetry()
			const batches = 12
			var spent, seeks, puts uint64
			plat.StartVCPU(vm, func(g *GuestEnv) error {
				bf, err := NewBlockFrontend(g)
				if err != nil {
					return err
				}
				var kblk [32]byte
				kbase := plat.KernelBase(vm, bundle) * PageSize
				if err := g.Read(kbase+KblkOffset, kblk[:]); err != nil {
					return err
				}
				aes, err := NewAESNIFront(g, bf, kblk)
				if err != nil {
					return err
				}
				dev := kv.NewWriteCoalescer(aes, 0)
				val := make([]byte, 48)
				for i := 0; i < b.N; i++ {
					if err := kv.Format(dev, 8); err != nil {
						return err
					}
					store, err := kv.Open(dev, 8, 256)
					if err != nil {
						return err
					}
					start, seekStart := hub.Now(), hub.M.DiskSeekWrites.Value()
					for batch := 0; batch < batches; batch++ {
						ops := make([]kv.Op, depth)
						for d := range ops {
							ops[d] = kv.Op{Key: fmt.Sprintf("key-%02d-%02d", batch, d), Value: val}
						}
						if err := store.Apply(ops); err != nil {
							return err
						}
					}
					spent += hub.Now() - start
					seeks += hub.M.DiskSeekWrites.Value() - seekStart
					puts += batches * uint64(depth)
				}
				return nil
			})
			if err := plat.Run(vm); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(spent)/float64(puts), "put-cycles")
			b.ReportMetric(float64(seeks)/float64(puts), "seeks/put")
		})
	}
}

// BenchmarkServePutHeavyKnee drives the serving front end far past the
// old seek-bound saturation point (offered 3.2 ops/Mcycle per tenant ×
// 4 tenants = 12.8 fleet) on a mutation-heavy mix, so the reported
// ops/Mcycle *is* the capacity knee. BENCH_7's knee on this mix was
// ~1.4 ops/Mcycle; group commit + the deeper ring move it past 3×.
func BenchmarkServePutHeavyKnee(b *testing.B) {
	var throughput, seeksPerOp, p99 float64
	for i := 0; i < b.N; i++ {
		plat, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := plat.NewServeService(ServeConfig{
			Tenants:          4,
			ClientsPerTenant: 16,
			OpsPerClient:     2,
			RatePerMCycle:    3.2,
			PutFrac:          0.7,
			DelFrac:          0.1,
			Seed:             7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for dom, err := range svc.Run() {
			if err != nil {
				b.Fatalf("domain %d: %v", dom, err)
			}
		}
		var ops uint64
		for _, r := range svc.Reports() {
			ops += r.Ops
		}
		if el := svc.Elapsed(); el > 0 {
			throughput = float64(ops) / (float64(el) / 1e6)
		}
		hub := plat.Telemetry()
		if ops > 0 {
			seeks := hub.M.DiskSeekReads.Value() + hub.M.DiskSeekWrites.Value()
			seeksPerOp = float64(seeks) / float64(ops)
		}
		if h, ok := plat.Metrics().Histograms["serve.latency"]; ok {
			p99 = h.Quantile(0.99)
		}
		if err := svc.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(throughput, "ops/Mcycle")
	b.ReportMetric(seeksPerOp, "seeks/op")
	b.ReportMetric(p99, "p99-cycles")
}

// BenchmarkServePutHeavySLO runs the put-heavy mix at offered 1.6
// ops/Mcycle per tenant — the exact knee BENCH_9 left FAILing its p50
// objective — so the adaptive-depth hold policy's win is a gated number:
// p50-cycles must stay under the 8.4M serve-p50 objective and holds must
// be nonzero (the policy actually engaged, not just the rate being low).
func BenchmarkServePutHeavySLO(b *testing.B) {
	var p50, throughput, holds float64
	for i := 0; i < b.N; i++ {
		plat, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := plat.NewServeService(ServeConfig{
			Tenants:          4,
			ClientsPerTenant: 16,
			OpsPerClient:     2,
			RatePerMCycle:    1.6,
			PutFrac:          0.7,
			DelFrac:          0.1,
			Seed:             7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for dom, err := range svc.Run() {
			if err != nil {
				b.Fatalf("domain %d: %v", dom, err)
			}
		}
		var ops uint64
		for _, r := range svc.Reports() {
			ops += r.Ops
		}
		if el := svc.Elapsed(); el > 0 {
			throughput = float64(ops) / (float64(el) / 1e6)
		}
		snap := plat.Metrics()
		if h, ok := snap.Histograms["serve.latency"]; ok {
			p50 = h.Quantile(0.50)
		}
		holds = float64(snap.Counters["serve.holds"])
		if err := svc.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p50, "p50-cycles")
	b.ReportMetric(throughput, "ops/Mcycle")
	b.ReportMetric(holds, "holds")
}

// BenchmarkServeGetHeavy drives the read-dominated mix (93% gets over a
// hot 3-key-per-client working set) with the guest read cache enabled and
// disabled. The cached run's hit-% is the headline: every hit skips the
// store-index copy and the session-cipher recharge, which is also where
// the wall-clock ns/op difference between the two sub-benchmarks comes
// from.
func BenchmarkServeGetHeavy(b *testing.B) {
	for _, cache := range []struct {
		name    string
		entries int
	}{{"cache=on", 0}, {"cache=off", -1}} {
		b.Run(cache.name, func(b *testing.B) {
			var hitPct, p50, throughput float64
			for i := 0; i < b.N; i++ {
				plat, err := NewPlatform(Config{Protected: true})
				if err != nil {
					b.Fatal(err)
				}
				svc, err := plat.NewServeService(ServeConfig{
					Tenants:          4,
					ClientsPerTenant: 8,
					OpsPerClient:     8,
					RatePerMCycle:    1.0,
					PutFrac:          0.05,
					DelFrac:          0.02,
					KeySpace:         3,
					ReadCacheEntries: cache.entries,
					Seed:             7,
				})
				if err != nil {
					b.Fatal(err)
				}
				for dom, err := range svc.Run() {
					if err != nil {
						b.Fatalf("domain %d: %v", dom, err)
					}
				}
				var ops uint64
				for _, r := range svc.Reports() {
					ops += r.Ops
				}
				if el := svc.Elapsed(); el > 0 {
					throughput = float64(ops) / (float64(el) / 1e6)
				}
				snap := plat.Metrics()
				hits := snap.Counters["kv.cache_hits"]
				misses := snap.Counters["kv.cache_misses"]
				if hits+misses > 0 {
					hitPct = 100 * float64(hits) / float64(hits+misses)
				}
				if h, ok := snap.Histograms["serve.latency"]; ok {
					p50 = h.Quantile(0.50)
				}
				if err := svc.Shutdown(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(hitPct, "hit-%")
			b.ReportMetric(p50, "p50-cycles")
			b.ReportMetric(throughput, "ops/Mcycle")
		})
	}
}

// BenchmarkKVCompact measures online log compaction through the full
// protected block stack: a store is churned until half its log is dead
// records, then compacted. compact-cycles is one full live-set rewrite
// plus the superblock flip; reclaimed-sectors is what the rewrite bought.
func BenchmarkKVCompact(b *testing.B) {
	plat, err := NewPlatform(Config{Protected: true})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := NewOwner()
	if err != nil {
		b.Fatal(err)
	}
	bundle, _, err := PrepareGuest(owner, plat.PlatformKey(), make([]byte, PageSize), nil)
	if err != nil {
		b.Fatal(err)
	}
	vm, err := plat.LaunchVM("kv-compact", 64, bundle)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plat.AttachDisk(vm, NewDisk(512), 2, 1, nil); err != nil {
		b.Fatal(err)
	}
	hub := plat.Telemetry()
	var spent, reclaimed, rounds uint64
	plat.StartVCPU(vm, func(g *GuestEnv) error {
		bf, err := NewBlockFrontend(g)
		if err != nil {
			return err
		}
		var kblk [32]byte
		kbase := plat.KernelBase(vm, bundle) * PageSize
		if err := g.Read(kbase+KblkOffset, kblk[:]); err != nil {
			return err
		}
		aes, err := NewAESNIFront(g, bf, kblk)
		if err != nil {
			return err
		}
		dev := kv.NewWriteCoalescer(aes, 0)
		val := make([]byte, 48)
		for i := 0; i < b.N; i++ {
			if err := kv.FormatCompactable(dev, 8, 257); err != nil {
				return err
			}
			store, err := kv.Open(dev, 8, 257)
			if err != nil {
				return err
			}
			// Churn: 16 keys overwritten 6 times each fills the half with
			// ~83% garbage.
			for round := 0; round < 6; round++ {
				ops := make([]kv.Op, 16)
				for d := range ops {
					ops[d] = kv.Op{Key: fmt.Sprintf("key-%02d", d), Value: val}
				}
				if err := store.Apply(ops); err != nil {
					return err
				}
			}
			before := store.UsedSectors()
			start := hub.Now()
			if err := store.Compact(); err != nil {
				return err
			}
			spent += hub.Now() - start
			reclaimed += before - store.UsedSectors()
			rounds++
		}
		return nil
	})
	if err := plat.Run(vm); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(spent)/float64(rounds), "compact-cycles")
	b.ReportMetric(float64(reclaimed)/float64(rounds), "reclaimed-sectors")
}

// BenchmarkMigrationRound measures one full live migration of a protected
// 64-page VM between two platforms, pre-copy rounds included; the batched
// SEND_UPDATE path carries every round's pages.
func BenchmarkMigrationRound(b *testing.B) {
	owner, err := NewOwner()
	if err != nil {
		b.Fatal(err)
	}
	var stats *MigrateStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		dst, err := NewPlatform(Config{Protected: true})
		if err != nil {
			b.Fatal(err)
		}
		bundle, _, err := PrepareGuest(owner, src.PlatformKey(), make([]byte, 16*PageSize), nil)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := src.LaunchVM("mig", 64, bundle)
		if err != nil {
			b.Fatal(err)
		}
		// A live workload that dirties a small working set between
		// quanta, so pre-copy has re-dirtied pages to chase.
		src.StartVCPU(vm, func(g *GuestEnv) error {
			for s := uint64(0); s < 20; s++ {
				for w := uint64(0); w < 3; w++ {
					if err := g.Write64(0x6000+w*0x1000, s); err != nil {
						return err
					}
				}
				g.Halt()
			}
			return nil
		})
		b.StartTimer()
		_, stats, err = LiveMigrate(src, vm, dst, MigrateConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if stats != nil {
		b.ReportMetric(float64(stats.PagesSent), "pages-sent")
		b.ReportMetric(float64(stats.DowntimeCycles), "downtime-cycles")
	}
}
