package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fidelius/internal/core"
	"fidelius/internal/hw"
	"fidelius/internal/telemetry"
	"fidelius/internal/xen"
)

func newServePlatform(t *testing.T) *core.Fidelius {
	t.Helper()
	m, err := xen.NewMachine(xen.Config{MemPages: 4096, CacheLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	x, err := xen.New(m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.Enable(x)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestServeEndToEnd(t *testing.T) {
	f := newServePlatform(t)
	hub := f.X.M.Ctl.Telem
	hub.StartLedger()
	cfg := Config{
		Tenants:          2,
		ClientsPerTenant: 8,
		OpsPerClient:     4,
		RatePerMCycle:    0.5,
	}
	s, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for domID, err := range s.Run() {
		if err != nil {
			t.Fatalf("domain %d: %v", domID, err)
		}
	}

	wantOps := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
	reports := s.Reports()
	if len(reports) != cfg.Tenants {
		t.Fatalf("got %d reports, want %d", len(reports), cfg.Tenants)
	}
	for _, r := range reports {
		if !r.Admitted {
			t.Fatalf("%s: admission refused with an untampered measurement", r.Name)
		}
		if r.Ops != wantOps {
			t.Errorf("%s: completed %d ops, want %d", r.Name, r.Ops, wantOps)
		}
		if r.Mismatches != 0 {
			t.Errorf("%s: %d responses disagreed with the client model", r.Name, r.Mismatches)
		}
		if r.Gets+r.Puts+r.Dels != r.Ops {
			t.Errorf("%s: op mix %d+%d+%d does not add to %d", r.Name, r.Gets, r.Puts, r.Dels, r.Ops)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: implausible latency quantiles p50=%.0f p99=%.0f", r.Name, r.P50, r.P99)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: no throughput recorded", r.Name)
		}
	}

	snap := hub.Reg.Snapshot()
	if got := snap.Counters["serve.ops"]; got != wantOps*uint64(cfg.Tenants) {
		t.Errorf("serve.ops counter %d, want %d", got, wantOps*uint64(cfg.Tenants))
	}
	if h, ok := snap.Histograms["serve.latency"]; !ok || h.Count != wantOps*uint64(cfg.Tenants) {
		t.Errorf("fleet serve.latency histogram missing or short: %+v", h)
	}

	// The stock serve SLOs must evaluate (not skip) end to end.
	evals := s.EvaluateSLOs()
	evaluated := 0
	for _, ev := range evals {
		if !ev.Skipped {
			evaluated++
		}
	}
	if evaluated == 0 {
		t.Error("no serve SLO evaluated against the run")
	}
	if err := hub.Ledger().Verify(); err != nil {
		t.Errorf("audit ledger: %v", err)
	}
}

// TestServeAdmissionDenied is the "Insecure Until Proven Updated" check:
// a client whose expected launch measurement disagrees with the quote
// must be refused before any key material exists, the refusal must land
// in the audit ledger as attest-reject, and the hash chain must verify.
func TestServeAdmissionDenied(t *testing.T) {
	f := newServePlatform(t)
	hub := f.X.M.Ctl.Telem
	hub.StartLedger()
	cfg := Config{
		Tenants:          2,
		ClientsPerTenant: 4,
		OpsPerClient:     2,
		RatePerMCycle:    2,
		TamperTenants:    []int{1},
	}
	s, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}

	victim := s.tenants[1]
	if !victim.rejected || victim.admitted {
		t.Fatal("tampered tenant was admitted")
	}
	if victim.dataKey != ([32]byte{}) {
		t.Fatal("key material was minted for a refused session")
	}

	for domID, err := range s.Run() {
		if err != nil {
			t.Fatalf("domain %d: %v", domID, err)
		}
	}
	if victim.keySent {
		t.Error("a key frame was enqueued for a refused session")
	}
	reports := s.Reports()
	if reports[1].Admitted || reports[1].Ops != 0 {
		t.Errorf("refused tenant served traffic: %+v", reports[1])
	}
	if !reports[0].Admitted || reports[0].Ops == 0 {
		t.Errorf("healthy tenant did not serve: %+v", reports[0])
	}

	led := hub.Ledger()
	found := false
	for _, rec := range led.Records() {
		if rec.Class == "attest-reject" && strings.Contains(rec.Detail, "tenant-1") {
			found = true
		}
	}
	if !found {
		t.Error("no attest-reject record in the audit ledger")
	}
	if err := telemetry.VerifyChain(led.Records(), led.Head()); err != nil {
		t.Errorf("ledger chain: %v", err)
	}
	if got := hub.Reg.Snapshot().Counters["serve.rejects"]; got != 1 {
		t.Errorf("serve.rejects = %d, want 1", got)
	}
}

// TestConcurrentServeTenants drives eight tenants through the parallel
// scheduler; it exists to run under -race (make stress picks it up by
// name).
func TestConcurrentServeTenants(t *testing.T) {
	f := newServePlatform(t)
	cfg := Config{
		Tenants:          8,
		ClientsPerTenant: 4,
		OpsPerClient:     2,
		RatePerMCycle:    2,
		Parallel:         true,
		Width:            4,
	}
	s, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for domID, err := range s.Run() {
		if err != nil {
			t.Fatalf("domain %d: %v", domID, err)
		}
	}
	wantOps := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
	for _, r := range s.Reports() {
		if !r.Admitted || r.Ops != wantOps || r.Mismatches != 0 {
			t.Errorf("tenant %s: %+v", r.Name, r)
		}
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRingCiphertext proves the confidentiality property the ring
// design claims: at every point where the hypervisor can observe the
// shared pages — right after the host fills a request batch, and right
// when the guest posts its responses — no plaintext client value appears
// anywhere on the ring. The tenant disk image is scanned too (it must
// hold only Kblk-encrypted kv sectors). Three run shapes are covered:
// both ring geometries, and a read-cache-enabled overwrite-heavy run
// sized so the log compacts mid-flight — the disk is re-scanned right
// after every compaction, since Compact rewrites the whole live set into
// the other half and a plaintext rewrite would be a fresh leak.
func TestServeRingCiphertext(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		// wantCompact asserts the run actually went through at least one
		// live compaction (and that the cache actually served hits), so
		// the scans provably covered the rewrite path.
		wantCompact bool
	}{
		{
			name: "legacy-frames",
			cfg: Config{
				Tenants: 1, ClientsPerTenant: 8, OpsPerClient: 4,
				RatePerMCycle: 2, PutFrac: 0.6, DelFrac: 0.1,
				RingFrames: LegacyRingFrames,
			},
		},
		{
			name: "default-frames",
			cfg: Config{
				Tenants: 1, ClientsPerTenant: 8, OpsPerClient: 4,
				RatePerMCycle: 2, PutFrac: 0.6, DelFrac: 0.1,
				RingFrames: DefaultRingFrames,
			},
		},
		{
			name: "compacting-cached",
			cfg: Config{
				Tenants: 1, ClientsPerTenant: 8, OpsPerClient: 16,
				RatePerMCycle: 2, PutFrac: 0.5, DelFrac: 0.15,
				// 3 hot keys per client over a 48-sector half: the write
				// volume (~80 record sectors) overflows the half, so the
				// guest must compact while traffic is still flowing.
				KeySpace: 3, StoreSectors: 97,
				RingFrames: DefaultRingFrames,
			},
			wantCompact: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newServePlatform(t)
			hub := f.X.M.Ctl.Telem
			s, err := New(f, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			tn := s.tenants[0]
			if tn.frames != tc.cfg.RingFrames {
				t.Fatalf("tenant ring depth %d, want %d", tn.frames, tc.cfg.RingFrames)
			}
			// Every plaintext value a client will ever send. Values are
			// random 48-byte strings, so a substring hit in host-visible
			// bytes is an actual leak, not a coincidence.
			var secrets [][]byte
			for i := range tn.gen.ops {
				if op := tn.gen.ops[i]; op.kind == OpPut && len(op.val) > 0 {
					secrets = append(secrets, op.val)
				}
			}
			if len(secrets) == 0 {
				t.Fatal("load has no put values to leak")
			}
			page := make([]byte, hw.PageSize)
			scan := func(stage string) error {
				pas := append(append([]hw.PhysAddr{}, tn.reqPAs...), tn.respPAs...)
				for _, pa := range pas {
					if err := s.readPA(pa, page); err != nil {
						return err
					}
					for _, sec := range secrets {
						if bytes.Contains(page, sec) {
							t.Errorf("%s: plaintext value on ring page %#x", stage, pa)
						}
					}
				}
				return nil
			}
			scanDisk := func(stage string) {
				img := tn.disk.Snapshot()
				for _, sec := range secrets {
					if bytes.Contains(img, sec) {
						t.Errorf("%s: plaintext value in the tenant disk image", stage)
					}
				}
			}
			// Re-bind the two ring ports with scanning wrappers around the
			// stock handlers; Bind replaces, so the data path is unchanged.
			// The fill wrapper also watches the compaction counter: the
			// guest compacts between batches, so by the next doorbell a
			// fresh compaction's rewritten half is on disk — scan it then.
			var seenCompactions uint64
			fill, drain := s.fillHandler(tn), s.drainHandler(tn)
			s.X.Events.Bind(tn.dom.ID, DoorbellPort, func() error {
				if err := fill(); err != nil {
					return err
				}
				if n := hub.Reg.Snapshot().Counters["kv.compactions"]; n > seenCompactions {
					seenCompactions = n
					scanDisk("after compaction")
				}
				return scan("after fill")
			})
			s.X.Events.Bind(tn.dom.ID, CompletionPort, func() error {
				if err := scan("at completion"); err != nil {
					return err
				}
				return drain()
			})
			for domID, err := range s.Run() {
				if err != nil {
					t.Fatalf("domain %d: %v", domID, err)
				}
			}
			r := s.Reports()[0]
			want := uint64(tc.cfg.ClientsPerTenant * tc.cfg.OpsPerClient)
			if r.Ops != want || r.Mismatches != 0 || r.Errors != 0 {
				t.Fatalf("ops=%d (want %d), mismatches=%d, errors=%d", r.Ops, want, r.Mismatches, r.Errors)
			}
			scanDisk("after run")
			if tc.wantCompact {
				snap := hub.Reg.Snapshot()
				if snap.Counters["kv.compactions"] == 0 {
					t.Error("run never compacted: the scans did not cover a compaction cycle")
				}
				if snap.Counters["kv.cache_hits"] == 0 {
					t.Error("read cache never hit: the scans did not cover the cached read path")
				}
			}
		})
	}
}

// TestServeGuestServedCounter pins the guest's console accounting to the
// host's serve.ops telemetry: both count exactly the ops answered with a
// definitive status (OK or not-found). The exhausted-store run matters —
// its commits fail wholesale, and the old guest counter incremented for
// those errored ops too, so console and telemetry disagreed exactly when
// an operator needed them to agree.
func TestServeGuestServedCounter(t *testing.T) {
	consoleServed := func(t *testing.T, log []byte) uint64 {
		t.Helper()
		for _, line := range strings.Split(string(log), "\n") {
			var n uint64
			if _, err := fmt.Sscanf(line, "served %d ops", &n); err == nil {
				return n
			}
		}
		t.Fatalf("no served line in console log %q", log)
		return 0
	}
	run := func(t *testing.T, cfg Config) (uint64, uint64, TenantReport) {
		t.Helper()
		f := newServePlatform(t)
		s, err := New(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for domID, err := range s.Run() {
			if err != nil {
				t.Fatalf("domain %d: %v", domID, err)
			}
		}
		got := consoleServed(t, s.X.ConsoleLog(s.tenants[0].dom.ID))
		snap := f.X.M.Ctl.Telem.Reg.Snapshot()
		return got, snap.Counters["serve.ops"], s.Reports()[0]
	}

	t.Run("healthy", func(t *testing.T) {
		cfg := Config{Tenants: 1, ClientsPerTenant: 8, OpsPerClient: 4, RatePerMCycle: 2}
		console, telem, r := run(t, cfg)
		want := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
		if console != telem || console != want {
			t.Errorf("console served %d, serve.ops %d, want both %d", console, telem, want)
		}
		if r.Errors != 0 {
			t.Errorf("healthy run reported %d errors", r.Errors)
		}
	})

	t.Run("store-exhausted", func(t *testing.T) {
		// A 4-sector half cannot hold the ~24-key live set: most commits
		// fail even after the compact-and-retry, so a large slice of ops
		// comes back StatusError. Console and telemetry must still agree.
		cfg := Config{
			Tenants: 1, ClientsPerTenant: 8, OpsPerClient: 4,
			RatePerMCycle: 2, PutFrac: 0.8, DelFrac: 0.05,
			StoreSectors: 9,
		}
		console, telem, r := run(t, cfg)
		total := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
		if r.Errors == 0 {
			t.Fatal("exhausted store produced no errored ops; the run does not exercise the disputed accounting")
		}
		if console != telem {
			t.Errorf("console served %d but serve.ops = %d", console, telem)
		}
		if console+r.Errors != total {
			t.Errorf("served %d + errors %d != %d completions", console, r.Errors, total)
		}
	})
}

// TestServeAdaptiveDepth exercises the fill handler's hold policy at the
// put-heavy saturating rate this PR targets (1.6 ops/Mcycle/tenant, the
// old knee): with the default hold budget the handler must actually hold
// doorbells to form deeper batches, the posted-depth histogram must show
// batching, and p50 must both beat the hold-disabled baseline and clear
// the serve-p50 objective. A negative budget must disable holding
// entirely.
func TestServeAdaptiveDepth(t *testing.T) {
	run := func(t *testing.T, hold int64) (p50 float64, holds uint64, depth float64) {
		t.Helper()
		f := newServePlatform(t)
		cfg := Config{
			Tenants: 4, ClientsPerTenant: 16, OpsPerClient: 2,
			RatePerMCycle: 1.6, PutFrac: 0.7, DelFrac: 0.1,
			Seed: 7, HoldBudgetCycles: hold,
		}
		s, err := New(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for domID, err := range s.Run() {
			if err != nil {
				t.Fatalf("domain %d: %v", domID, err)
			}
		}
		want := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
		for _, r := range s.Reports() {
			if r.Ops != want || r.Mismatches != 0 || r.Errors != 0 {
				t.Fatalf("tenant %s: ops=%d (want %d), mismatches=%d, errors=%d",
					r.Name, r.Ops, want, r.Mismatches, r.Errors)
			}
		}
		snap := f.X.M.Ctl.Telem.Reg.Snapshot()
		lat, ok := snap.Histograms["serve.latency"]
		if !ok || lat.Count == 0 {
			t.Fatal("no serve.latency histogram")
		}
		d, ok := snap.Histograms["serve.batch_depth"]
		if !ok || d.Count == 0 {
			t.Fatal("no serve.batch_depth histogram")
		}
		return lat.Quantile(0.50), snap.Counters["serve.holds"], d.Mean()
	}

	p50Hold, holds, depth := run(t, 0) // 0 = default budget
	p50Free, freeHolds, _ := run(t, -1)
	if holds == 0 {
		t.Error("hold policy never engaged at the saturating rate")
	}
	if freeHolds != 0 {
		t.Errorf("%d holds recorded with holding disabled", freeHolds)
	}
	if depth <= 1 {
		t.Errorf("average posted batch depth %.2f; want batching above depth 1", depth)
	}
	if p50Hold >= p50Free {
		t.Errorf("hold policy did not improve p50: %.0f (hold) vs %.0f (disabled)", p50Hold, p50Free)
	}
	if limit := float64(8 << 20); p50Hold > limit {
		t.Errorf("p50 %.0f above the %.0f-cycle serve-p50 objective at 1.6 ops/Mcycle/tenant", p50Hold, limit)
	}
}

// TestServeBatchedGroupCommit drives one tenant far past the old
// per-put saturation rate and checks the batch path end to end: every
// response still matches the client model (the overlay preserves FIFO
// reads-own-writes inside a batch), mutations ride group commits with
// average depth above one, and the write-seek counter shows the
// collapse — the old path paid ~2 write seeks per mutation.
func TestServeBatchedGroupCommit(t *testing.T) {
	f := newServePlatform(t)
	hub := f.X.M.Ctl.Telem
	cfg := Config{
		Tenants:          1,
		ClientsPerTenant: 16,
		OpsPerClient:     4,
		RatePerMCycle:    6,
		PutFrac:          0.7,
		DelFrac:          0.1,
	}
	s, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for domID, err := range s.Run() {
		if err != nil {
			t.Fatalf("domain %d: %v", domID, err)
		}
	}
	r := s.Reports()[0]
	want := uint64(cfg.ClientsPerTenant * cfg.OpsPerClient)
	if r.Ops != want || r.Mismatches != 0 {
		t.Fatalf("ops=%d (want %d), mismatches=%d", r.Ops, want, r.Mismatches)
	}
	muts := r.Puts + r.Dels
	if muts == 0 {
		t.Fatal("put-heavy mix produced no mutations")
	}
	snap := hub.Reg.Snapshot()
	commits := snap.Counters["kv.group_commits"]
	seq := snap.Counters["kv.seq_writes"]
	if commits == 0 {
		t.Fatal("no kv group commits recorded")
	}
	if commits >= muts {
		t.Errorf("%d group commits for %d mutations: batches never deeper than one", commits, muts)
	}
	if seq == 0 {
		t.Error("no coalesced sequential writes recorded")
	}
	seeks := snap.Counters["xen.disk_seeks{kind=write}"]
	if perMut := float64(seeks) / float64(muts); perMut >= 1 {
		t.Errorf("%.2f write seeks per mutation; group commit should stay well under the old path's 2", perMut)
	}
}

func TestRingCodecRoundTrip(t *testing.T) {
	buf := make([]byte, SectorSize)
	val := bytes.Repeat([]byte{0xAB}, MaxValLen)
	if err := encodeRequest(buf, 42, OpPut, strings.Repeat("k", MaxKeyLen), val); err != nil {
		t.Fatal(err)
	}
	id, op, key, gotVal, err := decodeRequest(buf)
	if err != nil || id != 42 || op != OpPut || len(key) != MaxKeyLen || !bytes.Equal(gotVal, val) {
		t.Fatalf("request round trip: id=%d op=%d keyLen=%d err=%v", id, op, len(key), err)
	}
	if err := encodeRequest(buf, 1, OpPut, "k", make([]byte, MaxValLen+1)); err == nil {
		t.Error("oversized value encoded")
	}

	if err := encodeResponse(buf, 7, StatusNotFound, []byte("v")); err != nil {
		t.Fatal(err)
	}
	id, status, gotVal, err := decodeResponse(buf)
	if err != nil || id != 7 || status != StatusNotFound || string(gotVal) != "v" {
		t.Fatalf("response round trip: id=%d status=%d val=%q err=%v", id, status, gotVal, err)
	}

	encodeReqCtl(buf, 5, FlagStop)
	count, flags, err := decodeReqCtl(buf)
	if err != nil || count != 5 || flags != FlagStop {
		t.Fatalf("req ctl round trip: count=%d flags=%d err=%v", count, flags, err)
	}
	encodeRespCtl(buf, 3)
	if count, err := decodeRespCtl(buf); err != nil || count != 3 {
		t.Fatalf("resp ctl round trip: count=%d err=%v", count, err)
	}
	buf[0] ^= 1
	if _, err := decodeRespCtl(buf); err == nil {
		t.Error("corrupt control sector decoded")
	}
}

// TestLoadGenOpenLoop checks the generator's invariants: arrivals are
// monotone, injection respects per-client FIFO order and the in-flight
// window, and the model predicts every get.
func TestLoadGenOpenLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildLoad(0, 4, 16, 0, 10, 0.35, 0.10, 16, 2, rng)
	if g.total() != 64 {
		t.Fatalf("generated %d ops, want 64", g.total())
	}
	for i := 1; i < len(g.ops); i++ {
		if g.ops[i].arrival < g.ops[i-1].arrival {
			t.Fatal("arrivals not monotone")
		}
	}

	// Drain the whole schedule through the window machinery.
	lastSeq := make(map[int]int)
	var clock uint64
	id := uint64(1)
	inflight := map[int][]*genOp{}
	for g.injected < g.total() {
		clock += 1 << 16
		for {
			op := g.nextDue(clock)
			if op == nil {
				break
			}
			if last, ok := lastSeq[op.client]; ok && op.seq <= last {
				t.Fatal("per-client FIFO order violated")
			}
			lastSeq[op.client] = op.seq
			g.markInjected(op, id)
			id++
			inflight[op.client] = append(inflight[op.client], op)
			if len(inflight[op.client]) > 2 {
				t.Fatal("in-flight window exceeded")
			}
			if op.kind == OpGet && !op.expectMiss && op.expect == nil {
				t.Fatal("get injected without an expectation")
			}
			// Complete the oldest op for this client half the time, so
			// windows genuinely fill and drain.
			if len(inflight[op.client]) == 2 {
				done := inflight[op.client][0]
				inflight[op.client] = inflight[op.client][1:]
				g.markDone(done)
			}
		}
	}
	if !g.exhausted() {
		t.Fatal("generator not exhausted after full drain")
	}
}
