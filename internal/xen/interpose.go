package xen

import (
	"fidelius/internal/hw"
	"fidelius/internal/mmu"
)

// Interposer is the seam between the hypervisor's service-provision logic
// and the management of critical resources. The paper's core idea is to
// separate the two (Section 3.1): in an unprotected system both sides are
// the hypervisor (the Direct implementation below); under Fidelius the
// management half is re-routed through gates into the trusted context,
// which enforces policy.
//
// The split mirrors Table 1: VMCB and registers are shadowed around the
// exit/entry boundary (OnVMExit / PreVMRun); memory-mapping structures and
// grant tables are updated through write gates (WritePTE / NewPTPage /
// WriteGrant); VMRUN is executed through its gate (VMRun); and the
// Fidelius-only hypercalls are forwarded (PreSharing / EnableSME).
type Interposer interface {
	// Name identifies the configuration in benchmarks ("xen",
	// "fidelius", "fidelius-enc").
	Name() string

	// OnVMExit runs at the guest→host boundary, before any hypervisor
	// handler sees the exit. Fidelius shadows the VMCB and registers
	// here and masks confidential fields by exit reason.
	OnVMExit(d *Domain, vmcbPA hw.PhysAddr) error

	// PreVMRun runs at the host→guest boundary, after all hypervisor
	// handling. Fidelius verifies VMCB integrity against the shadow and
	// restores the true register file.
	PreVMRun(d *Domain, vmcbPA hw.PhysAddr) error

	// VMRun executes the VMRUN instruction for the given VMCB. Under
	// Fidelius this is the type 3 gate (map stub, check, run, unmap).
	// The hypervisor invokes it with the machine's gate lock held (the
	// stub runs on the shared boot CPU); implementations must not
	// re-acquire it.
	VMRun(vmcbPA hw.PhysAddr) error

	// NewPTPage reports a freshly allocated page-table page (level > 0
	// intermediate or the root) of domain d's NPT, or of the host page
	// table when d is nil. Fidelius write-protects it and tags the PIT.
	NewPTPage(d *Domain, pfn hw.PFN) error

	// WritePTE performs a page-table entry write on behalf of the
	// hypervisor: slot is the physical address of the entry. Under
	// Fidelius this is the type 1 gate with PIT policy enforcement.
	WritePTE(d *Domain, slot hw.PhysAddr, val mmu.PTE) error

	// WriteGrant performs a grant-table entry write on behalf of the
	// hypervisor. Under Fidelius this is the type 1 gate with GIT
	// policy enforcement.
	WriteGrant(d *Domain, slot hw.PhysAddr, entry GrantEntry) error

	// PreSharing handles the pre_sharing_op hypercall (a Fidelius
	// extension; rejected by the direct implementation): the initiator
	// declares the target domain, the shared GFN range and the intended
	// permissions before any grant is created (Section 4.3.7).
	PreSharing(initiator DomID, target DomID, gfn, count, flags uint64) error

	// IOCrypt handles the retrofitted event-channel hypercall of the
	// SEV-based I/O protection path (Section 4.3.5): re-encrypting
	// between the guest's dedicated buffer Md and the shared I/O pages
	// through the s-dom/r-dom firmware contexts.
	IOCrypt(d *Domain, write bool, mdGFN, lba, count, sharedIdx uint64) error

	// EnableSME sets the C-bit on the NPT leaf entries of d's memory,
	// simulating SEV with the host SME key (Section 7.1's methodology).
	EnableSME(d *Domain) error

	// RegisterWriteOnce marks a page under the write-once policy
	// (start-info and shared-info pages, Section 5.3).
	RegisterWriteOnce(pfn hw.PFN) error

	// DomainDestroyed runs at guest teardown so the trusted context can
	// scrub its PIT and GIT records (Section 4.3.8).
	DomainDestroyed(d *Domain) error
}

// Direct is the unprotected baseline: the hypervisor manages everything
// itself with plain stores. All the attacks in internal/attack succeed
// against this configuration.
type Direct struct {
	X *Xen
}

// Name implements Interposer.
func (Direct) Name() string { return "xen" }

// OnVMExit implements Interposer (no shadowing).
func (Direct) OnVMExit(*Domain, hw.PhysAddr) error { return nil }

// PreVMRun implements Interposer (no verification).
func (Direct) PreVMRun(*Domain, hw.PhysAddr) error { return nil }

// VMRun executes the VMRUN stub directly; the stub page is mapped.
func (dr Direct) VMRun(vmcbPA hw.PhysAddr) error {
	return dr.X.M.ExecStub(dr.X.M.Stubs.Vmrun, uint64(vmcbPA))
}

// NewPTPage implements Interposer (no tracking).
func (Direct) NewPTPage(*Domain, hw.PFN) error { return nil }

// WritePTE writes the entry with an ordinary supervisor store on the
// boot CPU, under the gate lock (the CPU's register file is shared).
func (dr Direct) WritePTE(_ *Domain, slot hw.PhysAddr, val mmu.PTE) error {
	dr.X.M.Host.Lock()
	defer dr.X.M.Host.Unlock()
	return dr.X.M.CPU.Write64(uint64(slot), uint64(val))
}

// WriteGrant writes the entry with an ordinary supervisor store on the
// boot CPU, under the gate lock.
func (dr Direct) WriteGrant(_ *Domain, slot hw.PhysAddr, entry GrantEntry) error {
	var buf [GrantEntrySize]byte
	entry.Marshal(buf[:])
	dr.X.M.Host.Lock()
	defer dr.X.M.Host.Unlock()
	return dr.X.M.CPU.WriteVA(uint64(slot), buf[:])
}

// PreSharing is not available without Fidelius.
func (Direct) PreSharing(DomID, DomID, uint64, uint64, uint64) error {
	return ErrNoSuchHypercall
}

// IOCrypt is not available without Fidelius.
func (Direct) IOCrypt(*Domain, bool, uint64, uint64, uint64, uint64) error {
	return ErrNoSuchHypercall
}

// EnableSME is not available without Fidelius.
func (Direct) EnableSME(*Domain) error { return ErrNoSuchHypercall }

// RegisterWriteOnce implements Interposer (no policy without Fidelius).
func (Direct) RegisterWriteOnce(hw.PFN) error { return nil }

// DomainDestroyed implements Interposer (nothing to scrub).
func (Direct) DomainDestroyed(*Domain) error { return nil }
